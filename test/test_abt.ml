(* The Argobots-flavored facade. *)

open Desim
open Oskern
open Preempt_core

let with_rt ?(xstreams = 2) ?preemption f =
  let eng = Engine.create () in
  let kernel = Kernel.create eng (Machine.with_cores Machine.skylake xstreams) in
  let rt = Abt.init ?preemption kernel ~num_xstreams:xstreams () in
  f eng rt

let test_create_join () =
  with_rt (fun eng rt ->
      let done_ = ref false in
      ignore
        (Abt.thread_create rt ~name:"main" (fun () ->
             let t =
               Abt.thread_create rt (fun () ->
                   Abt.work 1e-3;
                   done_ := true)
             in
             Abt.thread_join rt t));
      Engine.run eng;
      Alcotest.(check bool) "joined after completion" true !done_;
      Alcotest.(check int) "xstreams" 2 (Abt.num_xstreams rt))

let test_yield_and_kinds () =
  with_rt ~xstreams:1 ~preemption:1e-3 (fun eng rt ->
      let log = ref [] in
      let mk kind name =
        ignore
          (Abt.thread_create rt ~kind ~name (fun () ->
               Abt.work 3e-3;
               log := name :: !log))
      in
      mk Abt.Cooperative "coop";
      mk Abt.Preemptive_signal_yield "sy";
      mk Abt.Preemptive_klt_switching "ks";
      Engine.run eng;
      Alcotest.(check int) "all three kinds ran" 3 (List.length !log))

let test_suspend_resume () =
  with_rt (fun eng rt ->
      let parked = ref None in
      let resumed = ref false in
      ignore
        (Abt.thread_create rt ~name:"sleeper" (fun () ->
             Abt.self_suspend (fun self -> parked := Some self);
             resumed := true));
      ignore
        (Engine.after eng 0.01 (fun () ->
             match !parked with
             | Some t -> Abt.thread_resume rt t
             | None -> Alcotest.fail "never parked"));
      Engine.run eng;
      Alcotest.(check bool) "resumed" true !resumed)

let test_eventual () =
  with_rt (fun eng rt ->
      let got = ref 0 in
      let ev = Abt.Eventual.create rt in
      ignore (Abt.thread_create rt (fun () -> got := Abt.Eventual.read ev));
      ignore
        (Abt.thread_create rt (fun () ->
             Abt.work 1e-3;
             Abt.Eventual.fill ev 9));
      Engine.run eng;
      Alcotest.(check int) "eventual value" 9 !got)

let test_invalid_preemption () =
  let eng = Engine.create () in
  let kernel = Kernel.create eng (Machine.with_cores Machine.skylake 1) in
  Alcotest.check_raises "bad interval"
    (Invalid_argument "Config: interval = 0 (must be positive)") (fun () ->
      ignore (Abt.init ~preemption:0.0 kernel ~num_xstreams:1 ()))

let suite =
  [
    Alcotest.test_case "create/join" `Quick test_create_join;
    Alcotest.test_case "three kinds coexist" `Quick test_yield_and_kinds;
    Alcotest.test_case "suspend/resume" `Quick test_suspend_resume;
    Alcotest.test_case "eventual" `Quick test_eventual;
    Alcotest.test_case "invalid preemption" `Quick test_invalid_preemption;
  ]
