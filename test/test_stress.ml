(* Randomized stress tests: generate arbitrary workloads over the
   kernel and the M:N runtime and check global invariants — everything
   completes, CPU accounting is conserved, no thread is lost — across
   thread kinds, timer strategies and scheduler mixes. *)

open Desim
open Oskern
open Preempt_core

(* Build a runtime with pseudo-random configuration drawn from [rng]. *)
let random_config rng =
  let strategies =
    [|
      Config.No_timer;
      Config.Per_worker_creation;
      Config.Per_worker_aligned;
      Config.Per_process_one_to_all;
      Config.Per_process_chain;
    |]
  in
  let intervals = [| 0.5e-3; 1e-3; 2e-3 |] in
  {
    Config.default with
    Config.timer_strategy = strategies.(Rng.int rng (Array.length strategies));
    interval = intervals.(Rng.int rng (Array.length intervals));
    suspend_mode =
      (if Rng.int rng 2 = 0 then Config.Futex_suspend else Config.Sigsuspend);
    use_local_klt_pool = Rng.int rng 2 = 0;
  }

let kinds = [| Types.Nonpreemptive; Types.Signal_yield; Types.Klt_switching |]

let run_random_workload seed =
  let rng = Rng.make seed in
  let workers = 1 + Rng.int rng 6 in
  let eng = Engine.create ~seed () in
  let kernel = Kernel.create eng (Machine.with_cores Machine.skylake workers) in
  let config = random_config rng in
  let rt = Runtime.create ~config kernel ~n_workers:workers in
  let n_threads = 1 + Rng.int rng 24 in
  let completed = ref 0 in
  let total_work = ref 0.0 in
  for i = 0 to n_threads - 1 do
    let kind = kinds.(Rng.int rng 3) in
    let work = Rng.range rng 1e-4 8e-3 in
    let yields = Rng.int rng 3 in
    total_work := !total_work +. work;
    ignore
      (Runtime.spawn rt ~kind ~home:(Rng.int rng workers)
         ~name:(Printf.sprintf "s%d" i)
         (fun () ->
           let chunk = work /. float_of_int (yields + 1) in
           for _ = 0 to yields do
             Ult.compute chunk;
             if yields > 0 then Ult.yield ()
           done;
           incr completed))
  done;
  Runtime.start rt;
  Engine.run ~until:60.0 ~max_events:20_000_000 eng;
  (rt, kernel, eng, n_threads, !completed, !total_work)

let prop_all_threads_complete =
  QCheck.Test.make ~name:"random workloads: all threads complete" ~count:60
    QCheck.small_nat
    (fun seed ->
      let rt, _, _, n, completed, _ = run_random_workload (seed + 1) in
      completed = n && Runtime.unfinished rt = 0)

let prop_cpu_conservation =
  QCheck.Test.make ~name:"random workloads: CPU accounting conserved" ~count:40
    QCheck.small_nat
    (fun seed ->
      let _, kernel, eng, _, _, total_work = run_random_workload (seed + 1000) in
      let busy = Kernel.total_busy_time kernel in
      let cores = float_of_int (Kernel.machine kernel).Machine.cores in
      (* Busy time covers at least the requested work and never exceeds
         cores x elapsed. *)
      busy >= total_work *. 0.999 && busy <= (cores *. Engine.now eng) +. 1e-9)

let prop_all_klts_quiesce =
  QCheck.Test.make ~name:"random workloads: all KLTs exit" ~count:40
    QCheck.small_nat
    (fun seed ->
      let _, kernel, _, _, _, _ = run_random_workload (seed + 2000) in
      Kernel.live_klts kernel = [])

let prop_deterministic_replay =
  QCheck.Test.make ~name:"random workloads: bit-identical replay" ~count:15
    QCheck.small_nat
    (fun seed ->
      let _, k1, e1, _, _, _ = run_random_workload (seed + 3000) in
      let _, k2, e2, _, _, _ = run_random_workload (seed + 3000) in
      Engine.now e1 = Engine.now e2
      && Kernel.total_busy_time k1 = Kernel.total_busy_time k2
      && Kernel.signals_delivered k1 = Kernel.signals_delivered k2)

(* Mixed sync stress: threads hammer a mutex, a barrier and a channel
   under KLT-switching preemption at a deliberately aggressive timer
   interval (0.3 ms, vs the 10 ms production default); deadlock-free
   completion with no lost wakeup is the invariant.  8 threads x 40
   iterations x 4 sync ops ≈ 1280 operations. *)
let test_sync_stress_under_preemption () =
  let iters = 40 in
  let eng = Engine.create ~seed:99 () in
  let kernel = Kernel.create eng (Machine.with_cores Machine.skylake 4) in
  let config =
    {
      Config.default with
      Config.timer_strategy = Config.Per_worker_aligned;
      interval = 0.3e-3;
      metrics_enabled = true;
    }
  in
  let rt = Runtime.create ~config kernel ~n_workers:4 in
  let m = Usync.Mutex.create rt in
  let b = Usync.Barrier.create rt 8 in
  let ch = Usync.Channel.create rt in
  let counter = ref 0 in
  for i = 0 to 7 do
    ignore
      (Runtime.spawn rt ~kind:Types.Klt_switching ~home:(i mod 4)
         ~name:(Printf.sprintf "x%d" i)
         (fun () ->
           for _ = 1 to iters do
             Usync.Mutex.lock m;
             Ult.compute 3e-4;
             incr counter;
             Usync.Mutex.unlock m;
             Usync.Barrier.wait b;
             Usync.Channel.send ch i;
             ignore (Usync.Channel.recv ch)
           done))
  done;
  Runtime.start rt;
  Engine.run ~until:120.0 eng;
  Alcotest.(check int) "all iterations done" (8 * iters) !counter;
  Alcotest.(check int) "no stuck threads" 0 (Runtime.unfinished rt);
  let s = Runtime.metrics rt in
  Alcotest.(check bool) "preemption actually happened" true
    (s.Metrics.s_totals.Metrics.preempts > 0);
  Alcotest.(check bool) "sync layer exercised" true (s.Metrics.s_sync_blocks > 0);
  Alcotest.(check int) "every sync block woken" s.Metrics.s_sync_blocks
    s.Metrics.s_sync_wakeups

(* Packing stress: shrink and grow the active worker count while a
   preemptive workload runs. *)
let test_packing_flapping () =
  let eng = Engine.create ~seed:7 () in
  let kernel = Kernel.create eng (Machine.with_cores Machine.skylake 6) in
  let config =
    {
      Config.default with
      Config.timer_strategy = Config.Per_worker_aligned;
      interval = 1e-3;
    }
  in
  let rt =
    Runtime.create ~config ~scheduler:(Sched_packing.make ()) kernel ~n_workers:6
  in
  let done_count = ref 0 in
  for i = 0 to 11 do
    ignore
      (Runtime.spawn rt ~kind:Types.Klt_switching ~home:(i mod 6)
         ~name:(Printf.sprintf "p%d" i)
         (fun () ->
           Ult.compute 0.02;
           incr done_count))
  done;
  Runtime.start rt;
  (* Flap the active core count while running. *)
  List.iteri
    (fun idx n ->
      ignore
        (Engine.after eng (float_of_int (idx + 1) *. 5e-3) (fun () ->
             Runtime.set_active_workers rt n)))
    [ 3; 1; 5; 2; 6; 4 ];
  Engine.run ~until:30.0 eng;
  Alcotest.(check int) "all done despite flapping" 12 !done_count

let suite =
  [
    QCheck_alcotest.to_alcotest prop_all_threads_complete;
    QCheck_alcotest.to_alcotest prop_cpu_conservation;
    QCheck_alcotest.to_alcotest prop_all_klts_quiesce;
    QCheck_alcotest.to_alcotest prop_deterministic_replay;
    Alcotest.test_case "sync stress under preemption" `Quick test_sync_stress_under_preemption;
    Alcotest.test_case "packing flapping" `Quick test_packing_flapping;
  ]
