(* The Chrome trace_events exporter: schema validity of a real export,
   an exact round-trip of a hand-built three-span Gantt, and the empty
   trace.  All JSON checks go through the bundled parser, as a consumer
   of the files would. *)

open Desim
open Oskern
open Preempt_core
open Experiments

module CT = Chrome_trace
module J = Chrome_trace.Json

let num j = match j with J.Num f -> f | _ -> Alcotest.fail "expected number"
let str j = match j with J.Str s -> s | _ -> Alcotest.fail "expected string"

let events_of_json s =
  match J.parse s with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok j -> (
      match J.member "traceEvents" j with
      | Some (J.Arr evs) -> evs
      | _ -> Alcotest.fail "no traceEvents array")

let field name ev =
  match J.member name ev with
  | Some v -> v
  | None -> Alcotest.failf "missing field %s" name

(* ------------------------------------------------------------------ *)

let test_roundtrip_gantt () =
  (* Two cores, three occupied spans:
       core0: A from 1ms to 3ms, C from 4ms to the 5ms horizon
       core1: B from 2ms to the 5ms horizon *)
  let tr = Trace.create () in
  Trace.enable tr;
  Trace.emit tr 1e-3 "dispatch" "A on core0";
  Trace.emit tr 2e-3 "dispatch" "B on core1";
  Trace.emit tr 3e-3 "exit" "A";
  Trace.emit tr 4e-3 "dispatch" "C on core0";
  let events = CT.of_trace ~cores:2 ~t_end:5e-3 tr in
  let json = CT.to_json events in
  (match CT.validate json with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "export rejected: %s" e);
  let xs =
    events_of_json json
    |> List.filter (fun ev -> str (field "ph" ev) = "X")
    |> List.map (fun ev ->
           Printf.sprintf "%s tid=%.0f ts=%.1f dur=%.1f"
             (str (field "name" ev))
             (num (field "tid" ev))
             (num (field "ts" ev))
             (num (field "dur" ev)))
    |> List.sort compare
  in
  (* Timestamps are microseconds in the file. *)
  Alcotest.(check (list string)) "spans survive the round trip"
    [
      "A tid=0 ts=1000.0 dur=2000.0";
      "B tid=1 ts=2000.0 dur=3000.0";
      "C tid=0 ts=4000.0 dur=1000.0";
    ]
    xs

let test_empty_trace () =
  let tr = Trace.create () in
  Trace.enable tr;
  let events = CT.of_trace ~cores:2 tr in
  Alcotest.(check int) "no events" 0 (List.length events);
  let json = CT.to_json events in
  (match CT.validate json with
  | Ok n -> Alcotest.(check int) "valid, zero events" 0 n
  | Error e -> Alcotest.failf "empty export rejected: %s" e);
  match J.parse json with
  | Ok j -> (
      match J.member "traceEvents" j with
      | Some (J.Arr []) -> ()
      | _ -> Alcotest.fail "traceEvents is not the empty array")
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_real_export () =
  (* A preemptive 2-worker run with kernel tracing and metrics on; the
     export must pass the validator and contain every phase kind. *)
  let eng = Engine.create () in
  let tr = Trace.create () in
  Trace.enable tr;
  let kernel = Kernel.create ~trace:tr eng (Machine.with_cores Machine.skylake 2) in
  let config =
    {
      Config.default with
      Config.timer_strategy = Config.Per_worker_aligned;
      interval = 1e-3;
      metrics_enabled = true;
    }
  in
  let rt = Runtime.create ~config kernel ~n_workers:2 in
  for i = 0 to 3 do
    ignore
      (Runtime.spawn rt ~kind:Types.Klt_switching ~home:(i mod 2)
         ~name:(Printf.sprintf "t%d" i)
         (fun () -> Ult.compute 5e-3))
  done;
  Runtime.start rt;
  Engine.run ~until:1.0 eng;
  let events =
    CT.of_trace ~cores:2 ~metrics:(Runtime.metrics rt) ~t_end:(Kernel.now kernel) tr
  in
  let json = CT.to_json events in
  (match CT.validate json with
  | Ok n ->
      Alcotest.(check int) "validator count agrees" (List.length events) n;
      Alcotest.(check bool) "nonempty" true (n > 0)
  | Error e -> Alcotest.failf "real export rejected: %s" e);
  let phases =
    events_of_json json |> List.map (fun ev -> str (field "ph" ev))
  in
  List.iter
    (fun ph ->
      Alcotest.(check bool) (Printf.sprintf "has %s events" ph) true
        (List.mem ph phases))
    [ "X"; "i"; "C"; "M" ];
  (* Every ts is finite and non-negative; X durs are non-negative. *)
  List.iter
    (fun ev ->
      let ts = num (field "ts" ev) in
      Alcotest.(check bool) "ts sane" true (Float.is_finite ts && ts >= 0.0);
      if str (field "ph" ev) = "X" then
        Alcotest.(check bool) "dur sane" true (num (field "dur" ev) >= 0.0))
    (events_of_json json)

let test_validator_rejects () =
  let bad =
    [
      ("not json", "nonsense");
      ("no traceEvents", {|{"foo": []}|});
      ("traceEvents not array", {|{"traceEvents": 3}|});
      ("event missing ph", {|{"traceEvents":[{"ts":1,"pid":1,"tid":0}]}|});
      ("event ts not number", {|{"traceEvents":[{"ph":"X","ts":"one","pid":1,"tid":0}]}|});
      ("trailing garbage", {|{"traceEvents":[]} extra|});
    ]
  in
  List.iter
    (fun (label, s) ->
      match CT.validate s with
      | Ok _ -> Alcotest.failf "%s: accepted" label
      | Error _ -> ())
    bad

let test_json_parser () =
  (* Escapes, nesting, numbers. *)
  (match J.parse {|{"a": [1, -2.5e3, true, null, "x\nA"], "b": {"c": ""}}|} with
  | Ok j -> (
      (match J.member "a" j with
      | Some (J.Arr [ J.Num 1.0; J.Num -2500.0; J.Bool true; J.Null; J.Str s ]) ->
          Alcotest.(check string) "escapes decoded" "x\nA" s
      | _ -> Alcotest.fail "array mismatch");
      match J.member "b" j with
      | Some inner -> (
          match J.member "c" inner with
          | Some (J.Str "") -> ()
          | _ -> Alcotest.fail "nested member")
      | None -> Alcotest.fail "missing b")
  | Error e -> Alcotest.failf "parse failed: %s" e);
  match J.parse "[1," with
  | Ok _ -> Alcotest.fail "accepted truncated input"
  | Error _ -> ()

let suite =
  [
    Alcotest.test_case "gantt round trip" `Quick test_roundtrip_gantt;
    Alcotest.test_case "empty trace" `Quick test_empty_trace;
    Alcotest.test_case "real export validates" `Quick test_real_export;
    Alcotest.test_case "validator rejects malformed" `Quick test_validator_rejects;
    Alcotest.test_case "json parser" `Quick test_json_parser;
  ]
