(* Focused edge-case tests for ULT-level synchronization beyond the
   basic coverage in test_runtime.ml. *)

open Desim
open Oskern
open Preempt_core

let make ?(cores = 2) ?(workers = 2) () =
  let eng = Engine.create () in
  let kernel = Kernel.create eng (Machine.with_cores Machine.skylake cores) in
  let rt = Runtime.create kernel ~n_workers:workers in
  (eng, rt)

let test_mutex_fifo_handoff () =
  let eng, rt = make ~cores:4 ~workers:4 () in
  let m = Usync.Mutex.create rt in
  let order = ref [] in
  for i = 0 to 3 do
    ignore
      (Runtime.spawn rt ~home:0 ~name:(Printf.sprintf "m%d" i) (fun () ->
           Ult.compute (float_of_int i *. 1e-4);
           Usync.Mutex.lock m;
           order := i :: !order;
           Ult.compute 1e-3;
           Usync.Mutex.unlock m))
  done;
  Runtime.start rt;
  Engine.run eng;
  Alcotest.(check (list int)) "FIFO handoff" [ 0; 1; 2; 3 ] (List.rev !order)

let test_mutex_trylock_under_contention () =
  let eng, rt = make () in
  let m = Usync.Mutex.create rt in
  let attempts = ref [] in
  ignore
    (Runtime.spawn rt ~name:"holder" (fun () ->
         Usync.Mutex.lock m;
         Ult.compute 5e-3;
         Usync.Mutex.unlock m));
  ignore
    (Runtime.spawn rt ~name:"prober" (fun () ->
         Ult.compute 1e-3;
         attempts := Usync.Mutex.try_lock m :: !attempts;
         Ult.compute 6e-3;
         attempts := Usync.Mutex.try_lock m :: !attempts;
         if Usync.Mutex.locked m then Usync.Mutex.unlock m));
  Runtime.start rt;
  Engine.run eng;
  Alcotest.(check (list bool)) "fail then succeed" [ true; false ] !attempts

let test_barrier_reusable () =
  let eng, rt = make ~cores:3 ~workers:3 () in
  let b = Usync.Barrier.create rt 3 in
  let phase_counts = Array.make 3 0 in
  for i = 0 to 2 do
    ignore
      (Runtime.spawn rt ~home:i ~name:(Printf.sprintf "b%d" i) (fun () ->
           for phase = 0 to 2 do
             Ult.compute (1e-4 *. float_of_int (i + 1));
             Usync.Barrier.wait b;
             phase_counts.(phase) <- phase_counts.(phase) + 1
           done))
  done;
  Runtime.start rt;
  Engine.run eng;
  Array.iteri
    (fun p c -> if c <> 3 then Alcotest.failf "phase %d: %d crossings" p c)
    phase_counts

let test_barrier_one_party () =
  let eng, rt = make () in
  let b = Usync.Barrier.create rt 1 in
  let passed = ref 0 in
  ignore
    (Runtime.spawn rt ~name:"solo" (fun () ->
         Usync.Barrier.wait b;
         Usync.Barrier.wait b;
         passed := 2));
  Runtime.start rt;
  Engine.run eng;
  Alcotest.(check int) "no self-deadlock" 2 !passed

let test_barrier_invalid () =
  let _eng, rt = make () in
  Alcotest.check_raises "zero parties"
    (Invalid_argument "Usync.Barrier.create: parties <= 0") (fun () ->
      ignore (Usync.Barrier.create rt 0))

let test_channel_fifo_many () =
  let eng, rt = make () in
  let ch = Usync.Channel.create rt in
  let got = ref [] in
  ignore
    (Runtime.spawn rt ~name:"cons" (fun () ->
         for _ = 1 to 50 do
           got := Usync.Channel.recv ch :: !got
         done));
  ignore
    (Runtime.spawn rt ~name:"prod" (fun () ->
         for i = 1 to 50 do
           Ult.compute 1e-5;
           Usync.Channel.send ch i
         done));
  Runtime.start rt;
  Engine.run eng;
  Alcotest.(check (list int)) "in order" (List.init 50 (fun i -> i + 1)) (List.rev !got)

let test_channel_send_from_event_context () =
  let eng, rt = make () in
  let ch = Usync.Channel.create rt in
  let got = ref 0 in
  ignore (Runtime.spawn rt ~name:"cons" (fun () -> got := Usync.Channel.recv ch));
  ignore (Engine.after eng 0.01 (fun () -> Usync.Channel.send ch 99));
  Runtime.start rt;
  Engine.run eng;
  Alcotest.(check int) "delivered" 99 !got

let test_ivar_multiple_readers_cross_worker () =
  let eng, rt = make ~cores:4 ~workers:4 () in
  let iv = Usync.Ivar.create rt in
  let sum = ref 0 in
  for i = 0 to 3 do
    ignore
      (Runtime.spawn rt ~home:i ~name:(Printf.sprintf "r%d" i) (fun () ->
           sum := !sum + Usync.Ivar.read iv))
  done;
  ignore (Engine.after eng 5e-3 (fun () -> Usync.Ivar.fill iv 10));
  Runtime.start rt;
  Engine.run eng;
  Alcotest.(check int) "all read" 40 !sum;
  Alcotest.(check (option int)) "peek" (Some 10) (Usync.Ivar.peek iv)

let test_join_many_waiters () =
  let eng, rt = make ~cores:4 ~workers:4 () in
  let target = Runtime.spawn rt ~name:"t" (fun () -> Ult.compute 5e-3) in
  let joined = ref 0 in
  for i = 0 to 5 do
    ignore
      (Runtime.spawn rt ~name:(Printf.sprintf "j%d" i) (fun () ->
           Usync.join rt target;
           incr joined))
  done;
  Runtime.start rt;
  Engine.run eng;
  Alcotest.(check int) "all joined" 6 !joined

let test_mutex_with_preemption () =
  (* A preemptible thread holding a ULT mutex is preempted; the lock
     still ends up handed over correctly. *)
  let eng = Engine.create () in
  let kernel = Kernel.create eng (Machine.with_cores Machine.skylake 1) in
  let config =
    {
      Config.default with
      Config.timer_strategy = Config.Per_worker_aligned;
      interval = 1e-3;
    }
  in
  let rt = Runtime.create ~config kernel ~n_workers:1 in
  let m = Usync.Mutex.create rt in
  let order = ref [] in
  ignore
    (Runtime.spawn rt ~kind:Types.Signal_yield ~home:0 ~name:"holder" (fun () ->
         Usync.Mutex.lock m;
         Ult.compute 5e-3;
         (* preempted at least 4 times while holding the lock *)
         Usync.Mutex.unlock m;
         order := "holder" :: !order));
  ignore
    (Runtime.spawn rt ~kind:Types.Signal_yield ~home:0 ~name:"waiter" (fun () ->
         Usync.Mutex.lock m;
         order := "waiter" :: !order;
         Usync.Mutex.unlock m));
  Runtime.start rt;
  Engine.run eng;
  Alcotest.(check (list string)) "handoff order" [ "holder"; "waiter" ] (List.rev !order)

(* ------------------------------------------------------------------ *)
(* Hardening: the same primitives under KLT-switching preemption, now
   explored with Check.run across a fixed budget of controller-driven
   schedules (with fault injection: delayed/coalesced timers, KLT-pool
   exhaustion, spurious futex wakeups, worker stalls) instead of one
   seeded run.  Per-schedule workloads are smaller, but the total
   operation count across the budget stays well above 1000. *)

let check_budget = 200

let checked_rt (env : Check.env) ?(cores = 2) ?(workers = 2)
    ?(interval = 0.3e-3) () =
  let kernel =
    Kernel.create ~trace:env.Check.trace env.Check.eng
      (Machine.with_cores Machine.skylake cores)
  in
  let config =
    {
      Config.default with
      Config.timer_strategy = Config.Per_worker_aligned;
      interval;
      metrics_enabled = true;
    }
  in
  Runtime.create ~config kernel ~n_workers:workers

let assert_ok name (r : Check.report) =
  match r.Check.result with
  | `Ok -> ()
  | `Violation cx -> Alcotest.failf "%s:\n%s" name (Check.describe cx)

let test_mutex_fairness_checked () =
  (* Six KLT-switching threads hammer one mutex; FIFO handoff bounds
     the starvation window: between two consecutive acquisitions by the
     same thread, at most 2N-1 others can slip in.  Must hold in every
     explored schedule. *)
  let n_threads = 6 and rounds = 4 in
  let prog env =
    let rt = checked_rt env () in
    let m = Usync.Mutex.create rt in
    let seq = ref [] in
    let us =
      List.init n_threads (fun i ->
          Runtime.spawn rt ~kind:Types.Klt_switching ~home:(i mod 2)
            ~name:(Printf.sprintf "f%d" i)
            (fun () ->
              Ult.compute (float_of_int i *. 1e-5);
              for _ = 1 to rounds do
                Usync.Mutex.lock m;
                seq := i :: !seq;
                Ult.compute 4e-4;
                (* long enough to be preempted while holding *)
                Usync.Mutex.unlock m;
                Ult.compute 1e-5
              done))
    in
    Runtime.start rt;
    Check.program ~runtime:rt ~ults:us ~cores:2
      ~oracle:(fun () ->
        Check.all_finished rt;
        let seq = List.rev !seq in
        Check.require
          (List.length seq = n_threads * rounds)
          "%d acquisitions, expected %d" (List.length seq)
          (n_threads * rounds);
        let per_thread = Array.make n_threads 0 in
        List.iter (fun i -> per_thread.(i) <- per_thread.(i) + 1) seq;
        Array.iteri
          (fun i c ->
            Check.require (c = rounds) "thread %d acquired %d times" i c)
          per_thread;
        let last = Array.make n_threads (-1) in
        List.iteri
          (fun pos i ->
            Check.require
              (last.(i) < 0 || pos - last.(i) <= (2 * n_threads) - 1)
              "thread %d starved for %d acquisitions" i (pos - last.(i));
            last.(i) <- pos)
          seq;
        Check.require
          (Runtime.preempt_signals rt > 0)
          "holders were never preempted";
        Check.no_lost_wakeups rt)
      ()
  in
  assert_ok "mutex fairness"
    (Check.run ~seed:7 ~faults:true ~budget:check_budget
       ~strategy:Check.Random_walk prog)

let test_channel_fifo_checked () =
  (* 60 messages per schedule through one channel, both ends preempted
     mid-stream: order preserved, nothing lost, in every schedule
     (12000 messages across the budget). *)
  let n_msgs = 60 in
  let prog env =
    let rt = checked_rt env () in
    let ch = Usync.Channel.create rt in
    let got = ref [] in
    let cons =
      Runtime.spawn rt ~kind:Types.Klt_switching ~home:0 ~name:"cons"
        (fun () ->
          for _ = 1 to n_msgs do
            got := Usync.Channel.recv ch :: !got;
            if List.length !got mod 20 = 0 then Ult.compute 3e-4
          done)
    in
    let prod =
      Runtime.spawn rt ~kind:Types.Klt_switching ~home:1 ~name:"prod"
        (fun () ->
          for i = 1 to n_msgs do
            Usync.Channel.send ch i;
            if i mod 15 = 0 then Ult.compute 4e-4
          done)
    in
    Runtime.start rt;
    Check.program ~runtime:rt ~ults:[ cons; prod ] ~cores:2
      ~oracle:(fun () ->
        Check.all_finished rt;
        Check.require
          (List.length !got = n_msgs)
          "%d of %d messages delivered" (List.length !got) n_msgs;
        Check.require
          (List.rev !got = List.init n_msgs (fun i -> i + 1))
          "messages reordered";
        Check.no_lost_wakeups rt)
      ()
  in
  assert_ok "channel FIFO"
    (Check.run ~seed:3 ~faults:true ~budget:check_budget
       ~strategy:Check.Random_walk prog)

let test_barrier_stress_checked () =
  (* Six KLT-switching threads cross a shared barrier with skewed
     per-phase work; every phase must see exactly six crossings and no
     thread may run ahead, in every schedule. *)
  let n_threads = 6 and phases = 5 in
  let prog env =
    let rt = checked_rt env ~cores:3 ~workers:3 () in
    let b = Usync.Barrier.create rt n_threads in
    let counts = Array.make phases 0 in
    let skew_violation = ref false in
    let us =
      List.init n_threads (fun i ->
          Runtime.spawn rt ~kind:Types.Klt_switching ~home:(i mod 3)
            ~name:(Printf.sprintf "b%d" i)
            (fun () ->
              for p = 0 to phases - 1 do
                Ult.compute (1e-5 *. float_of_int (((i + p) mod n_threads) + 1));
                (* Everyone still in phase p: no count for p+1 yet. *)
                if p + 1 < phases && counts.(p + 1) > 0 then
                  skew_violation := true;
                Usync.Barrier.wait b;
                counts.(p) <- counts.(p) + 1
              done))
    in
    Runtime.start rt;
    Check.program ~runtime:rt ~ults:us ~cores:3
      ~oracle:(fun () ->
        Check.all_finished rt;
        Array.iteri
          (fun p c ->
            Check.require (c = n_threads) "phase %d: %d crossings" p c)
          counts;
        Check.require (not !skew_violation) "phase skew observed";
        Check.no_lost_wakeups rt)
      ()
  in
  assert_ok "barrier stress"
    (Check.run ~seed:11 ~faults:true ~budget:check_budget
       ~strategy:Check.Random_walk prog)

let test_no_lost_wakeups_checked () =
  (* Mixed mutex + channel + barrier traffic: every block recorded by
     the sync layer must be matched by a wakeup once the run drains, in
     every schedule — a lost wakeup shows up as blocks > wakeups plus a
     stuck thread (which the deadlock watchdog reports first). *)
  let rounds = 8 in
  let prog env =
    let rt = checked_rt env () in
    let m = Usync.Mutex.create rt in
    let ch = Usync.Channel.create rt in
    let b = Usync.Barrier.create rt 4 in
    let us =
      List.init 4 (fun i ->
          Runtime.spawn rt ~kind:Types.Klt_switching ~home:(i mod 2)
            ~name:(Printf.sprintf "w%d" i)
            (fun () ->
              for r = 1 to rounds do
                Usync.Mutex.lock m;
                Ult.compute 5e-5;
                Usync.Mutex.unlock m;
                if i land 1 = 0 then Usync.Channel.send ch ((r * 4) + i)
                else ignore (Usync.Channel.recv ch);
                Usync.Barrier.wait b
              done))
    in
    Runtime.start rt;
    Check.program ~runtime:rt ~ults:us ~cores:2
      ~oracle:(fun () ->
        Check.all_finished rt;
        let s = Runtime.metrics rt in
        Check.require (s.Metrics.s_sync_blocks > 0) "sync layer not exercised";
        Check.no_lost_wakeups rt)
      ()
  in
  assert_ok "no lost wakeups"
    (Check.run ~seed:5 ~faults:true ~budget:check_budget
       ~strategy:Check.Random_walk prog)

let suite =
  [
    Alcotest.test_case "mutex FIFO handoff" `Quick test_mutex_fifo_handoff;
    Alcotest.test_case "try_lock under contention" `Quick test_mutex_trylock_under_contention;
    Alcotest.test_case "barrier reusable across phases" `Quick test_barrier_reusable;
    Alcotest.test_case "barrier of one" `Quick test_barrier_one_party;
    Alcotest.test_case "barrier invalid arg" `Quick test_barrier_invalid;
    Alcotest.test_case "channel FIFO x50" `Quick test_channel_fifo_many;
    Alcotest.test_case "channel send from event" `Quick test_channel_send_from_event_context;
    Alcotest.test_case "ivar cross-worker broadcast" `Quick test_ivar_multiple_readers_cross_worker;
    Alcotest.test_case "join many waiters" `Quick test_join_many_waiters;
    Alcotest.test_case "mutex survives preemption" `Quick test_mutex_with_preemption;
    Alcotest.test_case "mutex fairness, checked x200" `Quick test_mutex_fairness_checked;
    Alcotest.test_case "channel FIFO, checked x200" `Quick test_channel_fifo_checked;
    Alcotest.test_case "barrier stress, checked x200" `Quick test_barrier_stress_checked;
    Alcotest.test_case "no lost wakeups, checked x200" `Quick test_no_lost_wakeups_checked;
  ]
