(* Focused edge-case tests for ULT-level synchronization beyond the
   basic coverage in test_runtime.ml. *)

open Desim
open Oskern
open Preempt_core

let make ?(cores = 2) ?(workers = 2) () =
  let eng = Engine.create () in
  let kernel = Kernel.create eng (Machine.with_cores Machine.skylake cores) in
  let rt = Runtime.create kernel ~n_workers:workers in
  (eng, rt)

let test_mutex_fifo_handoff () =
  let eng, rt = make ~cores:4 ~workers:4 () in
  let m = Usync.Mutex.create rt in
  let order = ref [] in
  for i = 0 to 3 do
    ignore
      (Runtime.spawn rt ~home:0 ~name:(Printf.sprintf "m%d" i) (fun () ->
           Ult.compute (float_of_int i *. 1e-4);
           Usync.Mutex.lock m;
           order := i :: !order;
           Ult.compute 1e-3;
           Usync.Mutex.unlock m))
  done;
  Runtime.start rt;
  Engine.run eng;
  Alcotest.(check (list int)) "FIFO handoff" [ 0; 1; 2; 3 ] (List.rev !order)

let test_mutex_trylock_under_contention () =
  let eng, rt = make () in
  let m = Usync.Mutex.create rt in
  let attempts = ref [] in
  ignore
    (Runtime.spawn rt ~name:"holder" (fun () ->
         Usync.Mutex.lock m;
         Ult.compute 5e-3;
         Usync.Mutex.unlock m));
  ignore
    (Runtime.spawn rt ~name:"prober" (fun () ->
         Ult.compute 1e-3;
         attempts := Usync.Mutex.try_lock m :: !attempts;
         Ult.compute 6e-3;
         attempts := Usync.Mutex.try_lock m :: !attempts;
         if Usync.Mutex.locked m then Usync.Mutex.unlock m));
  Runtime.start rt;
  Engine.run eng;
  Alcotest.(check (list bool)) "fail then succeed" [ true; false ] !attempts

let test_barrier_reusable () =
  let eng, rt = make ~cores:3 ~workers:3 () in
  let b = Usync.Barrier.create rt 3 in
  let phase_counts = Array.make 3 0 in
  for i = 0 to 2 do
    ignore
      (Runtime.spawn rt ~home:i ~name:(Printf.sprintf "b%d" i) (fun () ->
           for phase = 0 to 2 do
             Ult.compute (1e-4 *. float_of_int (i + 1));
             Usync.Barrier.wait b;
             phase_counts.(phase) <- phase_counts.(phase) + 1
           done))
  done;
  Runtime.start rt;
  Engine.run eng;
  Array.iteri
    (fun p c -> if c <> 3 then Alcotest.failf "phase %d: %d crossings" p c)
    phase_counts

let test_barrier_one_party () =
  let eng, rt = make () in
  let b = Usync.Barrier.create rt 1 in
  let passed = ref 0 in
  ignore
    (Runtime.spawn rt ~name:"solo" (fun () ->
         Usync.Barrier.wait b;
         Usync.Barrier.wait b;
         passed := 2));
  Runtime.start rt;
  Engine.run eng;
  Alcotest.(check int) "no self-deadlock" 2 !passed

let test_barrier_invalid () =
  let _eng, rt = make () in
  Alcotest.check_raises "zero parties"
    (Invalid_argument "Usync.Barrier.create: parties <= 0") (fun () ->
      ignore (Usync.Barrier.create rt 0))

let test_channel_fifo_many () =
  let eng, rt = make () in
  let ch = Usync.Channel.create rt in
  let got = ref [] in
  ignore
    (Runtime.spawn rt ~name:"cons" (fun () ->
         for _ = 1 to 50 do
           got := Usync.Channel.recv ch :: !got
         done));
  ignore
    (Runtime.spawn rt ~name:"prod" (fun () ->
         for i = 1 to 50 do
           Ult.compute 1e-5;
           Usync.Channel.send ch i
         done));
  Runtime.start rt;
  Engine.run eng;
  Alcotest.(check (list int)) "in order" (List.init 50 (fun i -> i + 1)) (List.rev !got)

let test_channel_send_from_event_context () =
  let eng, rt = make () in
  let ch = Usync.Channel.create rt in
  let got = ref 0 in
  ignore (Runtime.spawn rt ~name:"cons" (fun () -> got := Usync.Channel.recv ch));
  ignore (Engine.after eng 0.01 (fun () -> Usync.Channel.send ch 99));
  Runtime.start rt;
  Engine.run eng;
  Alcotest.(check int) "delivered" 99 !got

let test_ivar_multiple_readers_cross_worker () =
  let eng, rt = make ~cores:4 ~workers:4 () in
  let iv = Usync.Ivar.create rt in
  let sum = ref 0 in
  for i = 0 to 3 do
    ignore
      (Runtime.spawn rt ~home:i ~name:(Printf.sprintf "r%d" i) (fun () ->
           sum := !sum + Usync.Ivar.read iv))
  done;
  ignore (Engine.after eng 5e-3 (fun () -> Usync.Ivar.fill iv 10));
  Runtime.start rt;
  Engine.run eng;
  Alcotest.(check int) "all read" 40 !sum;
  Alcotest.(check (option int)) "peek" (Some 10) (Usync.Ivar.peek iv)

let test_join_many_waiters () =
  let eng, rt = make ~cores:4 ~workers:4 () in
  let target = Runtime.spawn rt ~name:"t" (fun () -> Ult.compute 5e-3) in
  let joined = ref 0 in
  for i = 0 to 5 do
    ignore
      (Runtime.spawn rt ~name:(Printf.sprintf "j%d" i) (fun () ->
           Usync.join rt target;
           incr joined))
  done;
  Runtime.start rt;
  Engine.run eng;
  Alcotest.(check int) "all joined" 6 !joined

let test_mutex_with_preemption () =
  (* A preemptible thread holding a ULT mutex is preempted; the lock
     still ends up handed over correctly. *)
  let eng = Engine.create () in
  let kernel = Kernel.create eng (Machine.with_cores Machine.skylake 1) in
  let config =
    {
      Config.default with
      Config.timer_strategy = Config.Per_worker_aligned;
      interval = 1e-3;
    }
  in
  let rt = Runtime.create ~config kernel ~n_workers:1 in
  let m = Usync.Mutex.create rt in
  let order = ref [] in
  ignore
    (Runtime.spawn rt ~kind:Types.Signal_yield ~home:0 ~name:"holder" (fun () ->
         Usync.Mutex.lock m;
         Ult.compute 5e-3;
         (* preempted at least 4 times while holding the lock *)
         Usync.Mutex.unlock m;
         order := "holder" :: !order));
  ignore
    (Runtime.spawn rt ~kind:Types.Signal_yield ~home:0 ~name:"waiter" (fun () ->
         Usync.Mutex.lock m;
         order := "waiter" :: !order;
         Usync.Mutex.unlock m));
  Runtime.start rt;
  Engine.run eng;
  Alcotest.(check (list string)) "handoff order" [ "holder"; "waiter" ] (List.rev !order)

(* ------------------------------------------------------------------ *)
(* Hardening: the same primitives under KLT-switching preemption with a
   small timer interval, at >= 1000 operations. *)

let preemptive_rt ?(seed = 0) ?(cores = 2) ?(workers = 2) ?(interval = 0.3e-3)
    ?(metrics = false) () =
  let eng = Engine.create ~seed () in
  let kernel = Kernel.create eng (Machine.with_cores Machine.skylake cores) in
  let config =
    {
      Config.default with
      Config.timer_strategy = Config.Per_worker_aligned;
      interval;
      metrics_enabled = metrics;
    }
  in
  (eng, Runtime.create ~config kernel ~n_workers:workers)

let test_mutex_fairness_preempted () =
  (* Six KLT-switching threads hammer one mutex for 25 rounds each.
     FIFO handoff bounds the starvation window: between two consecutive
     acquisitions by the same thread, at most 2N-1 others can slip in
     (the queue ahead of it, plus threads that re-enqueued while it was
     being handed the lock). *)
  let n_threads = 6 and rounds = 25 in
  let eng, rt = preemptive_rt () in
  let m = Usync.Mutex.create rt in
  let seq = ref [] in
  for i = 0 to n_threads - 1 do
    ignore
      (Runtime.spawn rt ~kind:Types.Klt_switching ~home:(i mod 2)
         ~name:(Printf.sprintf "f%d" i)
         (fun () ->
           Ult.compute (float_of_int i *. 1e-5);
           for _ = 1 to rounds do
             Usync.Mutex.lock m;
             seq := i :: !seq;
             Ult.compute 4e-4;
             (* long enough to be preempted while holding *)
             Usync.Mutex.unlock m;
             Ult.compute 1e-5
           done))
  done;
  Runtime.start rt;
  Engine.run ~until:60.0 eng;
  let seq = List.rev !seq in
  Alcotest.(check int) "every acquisition happened" (n_threads * rounds)
    (List.length seq);
  let per_thread = Array.make n_threads 0 in
  List.iter (fun i -> per_thread.(i) <- per_thread.(i) + 1) seq;
  Array.iteri
    (fun i c ->
      if c <> rounds then Alcotest.failf "thread %d acquired %d times" i c)
    per_thread;
  (* Starvation bound. *)
  let last = Array.make n_threads (-1) in
  List.iteri
    (fun pos i ->
      if last.(i) >= 0 && pos - last.(i) > (2 * n_threads) - 1 then
        Alcotest.failf "thread %d starved for %d acquisitions" i (pos - last.(i));
      last.(i) <- pos)
    seq;
  Alcotest.(check int) "no stuck threads" 0 (Runtime.unfinished rt);
  Alcotest.(check bool) "holders were really preempted" true
    (Runtime.preempt_signals rt > 0)

let test_channel_fifo_preempted_1000 () =
  (* 1200 messages through one channel, both ends KLT-switching and
     preempted mid-stream: order preserved, nothing lost. *)
  let n_msgs = 1200 in
  let eng, rt = preemptive_rt ~seed:3 () in
  let ch = Usync.Channel.create rt in
  let got = ref [] in
  ignore
    (Runtime.spawn rt ~kind:Types.Klt_switching ~home:0 ~name:"cons" (fun () ->
         for _ = 1 to n_msgs do
           got := Usync.Channel.recv ch :: !got;
           if List.length !got mod 100 = 0 then Ult.compute 3e-4
         done));
  ignore
    (Runtime.spawn rt ~kind:Types.Klt_switching ~home:1 ~name:"prod" (fun () ->
         for i = 1 to n_msgs do
           Usync.Channel.send ch i;
           if i mod 150 = 0 then Ult.compute 4e-4
         done));
  Runtime.start rt;
  Engine.run ~until:60.0 eng;
  Alcotest.(check int) "all delivered" n_msgs (List.length !got);
  Alcotest.(check (list int)) "in order"
    (List.init n_msgs (fun i -> i + 1))
    (List.rev !got);
  Alcotest.(check int) "no stuck threads" 0 (Runtime.unfinished rt)

let test_barrier_stress_preempted () =
  (* Six KLT-switching threads cross a shared barrier 50 times with
     skewed per-phase work; every phase must see exactly six crossings
     and no thread may run ahead. *)
  let n_threads = 6 and phases = 50 in
  let eng, rt = preemptive_rt ~seed:11 ~cores:3 ~workers:3 () in
  let b = Usync.Barrier.create rt n_threads in
  let counts = Array.make phases 0 in
  let skew_violation = ref false in
  for i = 0 to n_threads - 1 do
    ignore
      (Runtime.spawn rt ~kind:Types.Klt_switching ~home:(i mod 3)
         ~name:(Printf.sprintf "b%d" i)
         (fun () ->
           for p = 0 to phases - 1 do
             Ult.compute (1e-5 *. float_of_int (((i + p) mod n_threads) + 1));
             (* Everyone still in phase p: no count for p+1 may exist. *)
             if p + 1 < phases && counts.(p + 1) > 0 then skew_violation := true;
             Usync.Barrier.wait b;
             counts.(p) <- counts.(p) + 1
           done))
  done;
  Runtime.start rt;
  Engine.run ~until:60.0 eng;
  Array.iteri
    (fun p c -> if c <> n_threads then Alcotest.failf "phase %d: %d crossings" p c)
    counts;
  Alcotest.(check bool) "no phase skew" false !skew_violation;
  Alcotest.(check int) "no stuck threads" 0 (Runtime.unfinished rt)

let test_no_lost_wakeups () =
  (* Every block recorded by the sync layer must be matched by a wakeup
     once the run drains — a lost wakeup shows up as blocks > wakeups
     plus a stuck thread. *)
  let eng, rt = preemptive_rt ~seed:5 ~metrics:true () in
  let m = Usync.Mutex.create rt in
  let ch = Usync.Channel.create rt in
  let b = Usync.Barrier.create rt 4 in
  for i = 0 to 3 do
    ignore
      (Runtime.spawn rt ~kind:Types.Klt_switching ~home:(i mod 2)
         ~name:(Printf.sprintf "w%d" i)
         (fun () ->
           for r = 1 to 60 do
             Usync.Mutex.lock m;
             Ult.compute 5e-5;
             Usync.Mutex.unlock m;
             if i land 1 = 0 then Usync.Channel.send ch (r * 4 + i)
             else ignore (Usync.Channel.recv ch);
             Usync.Barrier.wait b
           done))
  done;
  Runtime.start rt;
  Engine.run ~until:60.0 eng;
  let s = Runtime.metrics rt in
  Alcotest.(check int) "no stuck threads" 0 (Runtime.unfinished rt);
  Alcotest.(check bool) "sync layer exercised" true (s.Metrics.s_sync_blocks > 0);
  Alcotest.(check int) "every block woken" s.Metrics.s_sync_blocks
    s.Metrics.s_sync_wakeups

let suite =
  [
    Alcotest.test_case "mutex FIFO handoff" `Quick test_mutex_fifo_handoff;
    Alcotest.test_case "try_lock under contention" `Quick test_mutex_trylock_under_contention;
    Alcotest.test_case "barrier reusable across phases" `Quick test_barrier_reusable;
    Alcotest.test_case "barrier of one" `Quick test_barrier_one_party;
    Alcotest.test_case "barrier invalid arg" `Quick test_barrier_invalid;
    Alcotest.test_case "channel FIFO x50" `Quick test_channel_fifo_many;
    Alcotest.test_case "channel send from event" `Quick test_channel_send_from_event_context;
    Alcotest.test_case "ivar cross-worker broadcast" `Quick test_ivar_multiple_readers_cross_worker;
    Alcotest.test_case "join many waiters" `Quick test_join_many_waiters;
    Alcotest.test_case "mutex survives preemption" `Quick test_mutex_with_preemption;
    Alcotest.test_case "mutex fairness, preempted x150" `Quick test_mutex_fairness_preempted;
    Alcotest.test_case "channel FIFO, preempted x1200" `Quick test_channel_fifo_preempted_1000;
    Alcotest.test_case "barrier stress, preempted x300" `Quick test_barrier_stress_preempted;
    Alcotest.test_case "no lost wakeups" `Quick test_no_lost_wakeups;
  ]
