(* Flight recorder (Preempt_core.Recorder): ring wraparound as a QCheck
   property against a reference model, binary-dump round-trips,
   lifecycle reconstruction on a hand-built stream, attribution
   exactness against the live sig_to_switch histogram, and the
   check-integration path (a counterexample's flight dump decodes). *)

open Preempt_core

(* ------------------------------------------------------------------ *)
(* Wraparound property: after any emission sequence, every ring holds
   exactly the last [capacity] events emitted to it, oldest first, with
   monotone emission indices — and the binary dump round-trips the
   whole decoded state.                                                *)
(* ------------------------------------------------------------------ *)

let ops_arb =
  let open QCheck in
  let gen =
    Gen.(
      triple (int_range 1 40) (int_range 1 3)
        (list_size (int_range 0 300)
           (triple (int_range 0 100) (int_range 1 21) (int_range 0 1000))))
  in
  let print (cap, nw, ops) =
    Printf.sprintf "capacity=%d n_workers=%d ops=%d" cap nw (List.length ops)
  in
  make ~print gen

let wraparound_prop (cap, nw, ops) =
  let t = Recorder.create ~n_workers:nw ~capacity:cap in
  Recorder.set_enabled t true;
  let n_rings = Recorder.n_rings t in
  (* Reference: per-ring list of emitted records, newest first. *)
  let model = Array.make n_rings [] in
  let ts = ref 0.0 in
  List.iter
    (fun (r, code, a) ->
      let ring = r mod n_rings in
      ts := !ts +. 1e-6;
      Recorder.emit t ring !ts code a (a * 2);
      model.(ring) <- (!ts, code, a, a * 2) :: model.(ring))
    ops;
  let ok = ref true in
  let check_ring decoded ring =
    let emitted = List.length model.(ring) in
    let expect =
      List.filteri (fun i _ -> i < min cap emitted) model.(ring) |> List.rev
    in
    let got =
      Array.to_list decoded |> List.filter (fun e -> e.Recorder.e_ring = ring)
    in
    if List.length got <> List.length expect then ok := false
    else
      List.iteri
        (fun i ((ts, code, a, b), e) ->
          if
            e.Recorder.e_ts <> ts || e.Recorder.e_code <> code
            || e.Recorder.e_a <> a || e.Recorder.e_b <> b
            || e.Recorder.e_seq <> emitted - List.length expect + i
          then ok := false)
        (List.combine expect got)
  in
  let all = Recorder.events t in
  for ring = 0 to n_rings - 1 do
    check_ring all ring;
    check_ring (Recorder.ring_events t ring) ring
  done;
  (* Round-trip: the dump decodes to the identical event stream. *)
  (match Recorder.decode (Recorder.encode t) with
  | Error _ -> ok := false
  | Ok d ->
      if
        d.Recorder.d_n_rings <> n_rings
        || d.Recorder.d_capacity <> cap
        || d.Recorder.d_events <> all
      then ok := false);
  !ok

let wraparound_check =
  QCheck.Test.make ~count:300 ~name:"ring = last-capacity suffix; dump round-trips"
    ops_arb wraparound_prop

(* ------------------------------------------------------------------ *)

let test_decode_garbage () =
  (match Recorder.decode "not a flight record" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage decoded");
  match Recorder.decode "FLTREC01truncated" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated dump decoded"

(* Hand-built stream through the lifecycle state machine: spawn ->
   ready -> run -> preempt -> run -> block -> wake -> run -> finish. *)
let test_lifecycle_reconstruction () =
  let t = Recorder.create ~n_workers:1 ~capacity:64 in
  Recorder.set_enabled t true;
  let g = Recorder.global_ring t in
  Recorder.emit t g 0.0 Recorder.ev_spawn 7 0;
  Recorder.emit t g 0.0 Recorder.ev_ready 7 0;
  Recorder.emit t 0 1.0 Recorder.ev_run 7 0;
  Recorder.emit t 0 2.0 Recorder.ev_preempt 7 1;
  Recorder.emit t 0 3.0 Recorder.ev_resume 7 0;
  Recorder.emit t 0 4.0 Recorder.ev_block 7 0;
  Recorder.emit t g 5.0 Recorder.ev_ready 7 0;
  Recorder.emit t 0 6.0 Recorder.ev_run 7 0;
  Recorder.emit t g 7.0 Recorder.ev_finish 7 0;
  match Recorder.lifecycles (Recorder.events t) with
  | [ lc ] ->
      Alcotest.(check int) "uid" 7 lc.Recorder.lc_uid;
      Alcotest.(check (float 0.0)) "spawned" 0.0 lc.Recorder.lc_spawned;
      Alcotest.(check (float 0.0)) "finished" 7.0 lc.Recorder.lc_finished;
      Alcotest.(check int) "runs" 3 lc.Recorder.lc_runs;
      Alcotest.(check int) "preempts" 1 lc.Recorder.lc_preempts;
      Alcotest.(check int) "blocks" 1 lc.Recorder.lc_blocks;
      (* run slices: 1->2, 3->4, 6->7 *)
      Alcotest.(check (float 1e-9)) "run time" 3.0 lc.Recorder.lc_run_time;
      Alcotest.(check bool) "all spans closed" true
        (List.for_all
           (fun s -> not (Float.is_nan s.Recorder.s_to))
           lc.Recorder.lc_spans)
  | lcs -> Alcotest.failf "expected 1 lifecycle, got %d" (List.length lcs)

(* Attribution exactness on a real preemptive run: the stage sums,
   rebucketed, must reproduce the runtime's sig_to_switch histogram
   bucket-for-bucket — same samples from the same timestamps, so no
   one-bucket tolerance is needed here. *)
let test_attribution_matches_histogram () =
  let rt, uids = Experiments.Observe.run_workload () in
  let report = Experiments.Observe.of_runtime rt in
  let m = Runtime.metrics rt in
  let chains = report.Experiments.Observe.r_chains in
  Alcotest.(check bool) "chains found" true (chains <> []);
  let rebuilt = Metrics.Hist.create () in
  List.iter
    (fun c -> Metrics.Hist.add rebuilt (Recorder.chain_total c))
    chains;
  Alcotest.(check int) "sample count"
    (Metrics.Hist.count m.Metrics.s_sig_to_switch)
    (Metrics.Hist.count rebuilt);
  for b = 0 to Metrics.Hist.n_buckets - 1 do
    Alcotest.(check int)
      (Printf.sprintf "bucket %d" b)
      (Metrics.Hist.bucket_count m.Metrics.s_sig_to_switch b)
      (Metrics.Hist.bucket_count rebuilt b)
  done;
  (* And the packaged smoke checks agree. *)
  match Experiments.Observe.smoke ~spawned:uids report with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

(* Per-ring overwritten counters: wraparound losses are visible live,
   survive the binary dump (recovered from each ring's emitted-vs-
   stored header counts, so the FLTREC01 format is unchanged), and
   surface in the observe report built from that dump. *)
let test_overwritten_through_dump () =
  let cap = 3 in
  let t = Recorder.create ~n_workers:2 ~capacity:cap in
  Recorder.set_enabled t true;
  let n_rings = Recorder.n_rings t in
  (* Ring 0 wraps (7 emits into 3 slots), the last ring does not. *)
  for i = 1 to 7 do
    Recorder.emit t 0 (float_of_int i *. 1e-6) Recorder.ev_timer_fire i 0
  done;
  let last = n_rings - 1 in
  for i = 1 to 2 do
    Recorder.emit t last (float_of_int i *. 1e-6) Recorder.ev_timer_fire i 0
  done;
  Alcotest.(check int) "wrapped ring lost 4" 4 (Recorder.overwritten t 0);
  Alcotest.(check int) "unwrapped ring lost 0" 0 (Recorder.overwritten t last);
  Alcotest.(check int) "total" 4 (Recorder.total_overwritten t);
  let live = Array.init n_rings (Recorder.overwritten t) in
  match Recorder.decode (Recorder.encode t) with
  | Error e -> Alcotest.failf "dump does not decode: %s" e
  | Ok d ->
      Alcotest.(check (array int)) "dump carries per-ring losses" live
        d.Recorder.d_overwritten;
      let rep = Experiments.Observe.of_dump d in
      Alcotest.(check (array int)) "observe report surfaces them" live
        rep.Experiments.Observe.r_overwritten

(* A caught violation carries a decodable flight record whose
   reconstruction shows the stuck threads. *)
let test_counterexample_flight_decodes () =
  let s =
    match Check.Scenarios.find "deadlock" with
    | Some s -> s
    | None -> Alcotest.fail "deadlock scenario missing"
  in
  let r =
    Check.run ~seed:1 ~budget:s.Check.Scenarios.sbudget
      ~strategy:Check.Random_walk s.Check.Scenarios.prog
  in
  match r.Check.result with
  | `Ok -> Alcotest.fail "deadlock not caught"
  | `Violation cx -> (
      Alcotest.(check bool) "flight dump attached" true
        (cx.Check.cx_flight <> "");
      match Recorder.decode cx.Check.cx_flight with
      | Error e -> Alcotest.failf "flight dump does not decode: %s" e
      | Ok d ->
          Alcotest.(check bool) "events retained" true
            (Array.length d.Recorder.d_events > 0);
          let lcs = Recorder.lifecycles d.Recorder.d_events in
          Alcotest.(check bool) "both ULTs reconstructed" true
            (List.length lcs >= 2);
          Alcotest.(check bool) "stuck threads never finish" true
            (List.for_all
               (fun lc -> Float.is_nan lc.Recorder.lc_finished)
               lcs))

let suite =
  [
    QCheck_alcotest.to_alcotest wraparound_check;
    Alcotest.test_case "decode rejects garbage" `Quick test_decode_garbage;
    Alcotest.test_case "lifecycle reconstruction" `Quick
      test_lifecycle_reconstruction;
    Alcotest.test_case "attribution matches sig_to_switch" `Quick
      test_attribution_matches_histogram;
    Alcotest.test_case "overwritten counters through dumps" `Quick
      test_overwritten_through_dump;
    Alcotest.test_case "counterexample flight decodes" `Quick
      test_counterexample_flight_decodes;
  ]
