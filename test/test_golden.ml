(* Golden determinism test: the heap/dispatch rewrite must preserve the
   seeded (time, seq) event order bit-for-bit.  The fig4 fast preset is
   the canary — it sweeps all four timer strategies over four worker
   counts, exercising timers, signals, futexes and the scheduler loop —
   and its committed CSV (results/fig4.csv, a dune dep of this test) was
   produced by the pre-rewrite engine.  Running it twice in-process also
   pins run-to-run determinism within one binary. *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* The experiment writes results/fig4.csv relative to the cwd (the test
   sandbox), so it never touches the committed copy. *)
let regenerate () =
  ignore (Experiments.Fig4_interrupt.run ~fast:true ());
  read_file "results/fig4.csv"

let test_fig4_golden () =
  let committed = read_file "../results/fig4.csv" in
  let first = regenerate () in
  let second = regenerate () in
  Alcotest.(check string) "two in-process runs byte-identical" first second;
  Alcotest.(check string) "matches committed results/fig4.csv" committed first

let suite = [ Alcotest.test_case "fig4 fast preset golden" `Quick test_fig4_golden ]
