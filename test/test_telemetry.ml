(* Live telemetry unit tests: ring wraparound against a reference
   model (QCheck), input clamping, the disabled zero-write path,
   sampler determinism (two instances fed the same sequence are
   indistinguishable), sliding-window rotation semantics, and the pure
   rendering half of the [repro top] live view. *)

open Preempt_core
module T = Telemetry
module H = Metrics.Hist

let mk ?(workers = 1) ?(capacity = 4) ?(channels = 1) () =
  let t = T.create ~n_workers:workers ~capacity ~channels in
  T.set_enabled t true;
  t

(* Feed a deterministic sample stream; [i] seeds every field so equal
   indices produce byte-equal points. *)
let feed t ~worker i =
  T.sample t ~worker
    ~ts:(float_of_int i *. 1e-3)
    ~depth:(i mod 5) ~steals_in:i ~steals_out:(i / 2) ~parks:(i * 2)
    ~wakes:((i * 2) - 1)
    ~quantum:(1e-3 +. (float_of_int i *. 1e-5))
    ~util:(float_of_int (i mod 10) /. 10.0)

(* ------------------------------------------------------------------ *)
(* Ring model: after n samples the series is exactly the last
   [min n capacity] indices, oldest first, seq = index. *)

let wraparound_check =
  QCheck.Test.make ~count:200 ~name:"telemetry ring vs reference model"
    QCheck.(pair (int_range 1 16) (int_range 0 64))
    (fun (capacity, n) ->
      let t = T.create ~n_workers:1 ~capacity ~channels:0 in
      T.set_enabled t true;
      for i = 0 to n - 1 do
        feed t ~worker:0 i
      done;
      let s = T.series t ~worker:0 in
      let kept = min n capacity in
      let first = n - kept in
      T.total_samples t = n
      && T.samples t ~worker:0 = n
      && Array.length s = kept
      && Array.for_all Fun.id
           (Array.mapi
              (fun k (p : T.point) ->
                p.T.p_seq = first + k
                && p.T.p_steals_in = first + k
                && p.T.p_ts = float_of_int (first + k) *. 1e-3)
              s))

let test_latest () =
  let t = mk ~capacity:3 () in
  Alcotest.(check bool) "empty latest" true (T.latest t ~worker:0 = None);
  for i = 0 to 6 do
    feed t ~worker:0 i
  done;
  match T.latest t ~worker:0 with
  | None -> Alcotest.fail "latest missing after samples"
  | Some p -> Alcotest.(check int) "latest is the newest seq" 6 p.T.p_seq

let test_clamping () =
  let t = mk ~capacity:4 () in
  T.sample t ~worker:0 ~ts:0.0 ~depth:(-3) ~steals_in:(-1) ~steals_out:(-2)
    ~parks:(-4) ~wakes:(-5) ~quantum:1e-3 ~util:7.5;
  T.sample t ~worker:0 ~ts:1.0 ~depth:1 ~steals_in:1 ~steals_out:1 ~parks:1
    ~wakes:1 ~quantum:1e-3 ~util:(-0.5);
  let s = T.series t ~worker:0 in
  let p0 = s.(0) and p1 = s.(1) in
  Alcotest.(check int) "depth clamped" 0 p0.T.p_depth;
  Alcotest.(check int) "steals_in clamped" 0 p0.T.p_steals_in;
  Alcotest.(check int) "steals_out clamped" 0 p0.T.p_steals_out;
  Alcotest.(check int) "parks clamped" 0 p0.T.p_parks;
  Alcotest.(check int) "wakes clamped" 0 p0.T.p_wakes;
  Alcotest.(check (float 0.0)) "util ceiling" 1.0 p0.T.p_util;
  Alcotest.(check (float 0.0)) "util floor" 0.0 p1.T.p_util

let test_disabled_writes_nothing () =
  let t = T.create ~n_workers:2 ~capacity:4 ~channels:1 in
  Alcotest.(check bool) "starts disabled" false (T.enabled t);
  feed t ~worker:0 0;
  T.observe t ~worker:0 ~channel:0 1e-3;
  Alcotest.(check int) "no samples recorded" 0 (T.total_samples t);
  Alcotest.(check int) "no series points" 0
    (Array.length (T.series t ~worker:0));
  Alcotest.(check int) "no window samples" 0
    (H.count (T.channel_sketch t ~channel:0))

let test_determinism () =
  (* Two instances fed the identical stream — interleaved across
     workers differently — retain byte-identical per-worker series. *)
  let a = mk ~workers:2 ~capacity:5 () and b = mk ~workers:2 ~capacity:5 () in
  for i = 0 to 17 do
    feed a ~worker:(i mod 2) i;
    T.observe a ~worker:(i mod 2) ~channel:0 (float_of_int i *. 1e-4)
  done;
  (* b: all of worker 0's stream first, then worker 1's. *)
  for w = 0 to 1 do
    for i = 0 to 17 do
      if i mod 2 = w then begin
        feed b ~worker:w i;
        T.observe b ~worker:w ~channel:0 (float_of_int i *. 1e-4)
      end
    done
  done;
  for w = 0 to 1 do
    Alcotest.(check bool)
      (Printf.sprintf "worker %d series equal" w)
      true
      (T.series a ~worker:w = T.series b ~worker:w)
  done;
  Alcotest.(check int) "sketch counts equal"
    (H.count (T.channel_sketch a ~channel:0))
    (H.count (T.channel_sketch b ~channel:0))

let test_clear () =
  let t = mk () in
  for i = 0 to 5 do
    feed t ~worker:0 i;
    T.observe t ~worker:0 ~channel:0 1e-3
  done;
  T.clear t;
  Alcotest.(check bool) "still enabled" true (T.enabled t);
  Alcotest.(check int) "samples dropped" 0 (T.total_samples t);
  Alcotest.(check int) "window dropped" 0
    (H.count (T.channel_sketch t ~channel:0))

(* ------------------------------------------------------------------ *)
(* Sliding window: sketch covers current + previous rotation period
   and nothing older. *)

let test_window_rotation () =
  let w = T.Window.create () in
  Alcotest.(check int) "empty" 0 (T.Window.count w);
  T.Window.add w 1e-3;
  T.Window.add w 1e-3;
  Alcotest.(check int) "current counted" 2 (T.Window.count w);
  T.Window.rotate w;
  T.Window.add w 1e-6;
  (* One rotation back: both periods visible. *)
  Alcotest.(check int) "previous + current" 3 (T.Window.count w);
  let sk = T.Window.sketch w in
  Alcotest.(check int) "sketch covers both" 3 (H.count sk);
  T.Window.rotate w;
  (* Two rotations: the first period's 1e-3 samples age out. *)
  Alcotest.(check int) "oldest period retired" 1 (T.Window.count w);
  T.Window.rotate w;
  Alcotest.(check int) "fully drained" 0 (T.Window.count w)

let test_channel_sketch_merges_workers () =
  let t = mk ~workers:3 ~channels:2 () in
  T.observe t ~worker:0 ~channel:0 1e-3;
  T.observe t ~worker:1 ~channel:0 1e-3;
  T.observe t ~worker:2 ~channel:1 1e-6;
  Alcotest.(check int) "channel 0 spans workers" 2
    (H.count (T.channel_sketch t ~channel:0));
  Alcotest.(check int) "channel 1 isolated" 1
    (H.count (T.channel_sketch t ~channel:1))

let test_create_validation () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s accepted" name
  in
  expect_invalid "n_workers = 0" (fun () ->
      T.create ~n_workers:0 ~capacity:4 ~channels:0);
  expect_invalid "capacity = 0" (fun () ->
      T.create ~n_workers:1 ~capacity:0 ~channels:0);
  expect_invalid "channels < 0" (fun () ->
      T.create ~n_workers:1 ~capacity:4 ~channels:(-1))

(* ------------------------------------------------------------------ *)
(* The pure rendering half of the live view (lib/serve/top.ml). *)

let test_sparkline () =
  Alcotest.(check string) "empty" "" (Top.sparkline [||]);
  Alcotest.(check string) "all zero is blank" "   " (Top.sparkline [| 0; 0; 0 |]);
  let s = Top.sparkline [| 0; 1; 8 |] in
  Alcotest.(check bool) "max renders full block" true
    (Astring_contains.contains s "█");
  (* Rendering is scale-relative: doubling every depth is invisible. *)
  Alcotest.(check string) "scale invariant"
    (Top.sparkline [| 1; 2; 4 |])
    (Top.sparkline [| 2; 4; 8 |])

let test_frame_to_json_shape () =
  let frame =
    {
      Top.f_ts = 1.5;
      f_rows =
        [
          {
            Top.t_worker = 0;
            t_subpool = "default";
            t_depth = 2;
            t_steals_in = 3;
            t_steals_out = 1;
            t_parks = 10;
            t_wakes = 9;
            t_quantum = 2e-3;
            t_util = 0.5;
            t_spark = [| 0; 1; 2 |];
          };
        ];
      f_subpools = [];
      f_quantum_lo = 1e-3;
      f_quantum_hi = 2e-3;
      f_quantiles = [ ("short", 0, Float.nan, Float.nan) ];
    }
  in
  let j = Top.frame_to_json frame in
  List.iter
    (fun sub ->
      Alcotest.(check bool) (sub ^ " present") true
        (Astring_contains.contains j sub))
    [
      "\"ts\":1.5";
      "\"quantum_hi_s\":0.002";
      "\"class\":\"short\"";
      (* Empty windows serialize as null, not NaN (invalid JSON). *)
      "\"p50_s\":null";
      "\"worker\":0";
      "\"util\":0.5";
    ];
  Alcotest.(check bool) "no bare nan leaks" false
    (Astring_contains.contains j "nan");
  let t = Top.frame_to_string frame in
  Alcotest.(check bool) "text view mentions the worker table" true
    (Astring_contains.contains t "wkr")

let suite =
  [
    QCheck_alcotest.to_alcotest wraparound_check;
    Alcotest.test_case "latest" `Quick test_latest;
    Alcotest.test_case "hostile inputs clamp" `Quick test_clamping;
    Alcotest.test_case "disabled path writes nothing" `Quick
      test_disabled_writes_nothing;
    Alcotest.test_case "sampler determinism" `Quick test_determinism;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "window rotation" `Quick test_window_rotation;
    Alcotest.test_case "channel sketch merges workers" `Quick
      test_channel_sketch_merges_workers;
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "sparkline" `Quick test_sparkline;
    Alcotest.test_case "frame rendering" `Quick test_frame_to_json_shape;
  ]
