open Preempt_core

let rec pops n pop =
  if n = 0 then []
  else
    let x = pop () in
    x :: pops (n - 1) pop

let test_fifo () =
  let q = Dq.create () in
  List.iter (Dq.push_back q) [ 1; 2; 3 ];
  Alcotest.(check (list (option int)))
    "fifo order"
    [ Some 1; Some 2; Some 3; None ]
    (pops 4 (fun () -> Dq.pop_front q))

let test_lifo () =
  let q = Dq.create () in
  List.iter (Dq.push_back q) [ 1; 2; 3 ];
  Alcotest.(check (list (option int)))
    "lifo order"
    [ Some 3; Some 2; Some 1 ]
    (pops 3 (fun () -> Dq.pop_back q))

let test_steal_pattern () =
  let q = Dq.create () in
  List.iter (Dq.push_back q) [ 1; 2; 3; 4 ];
  Alcotest.(check (option int)) "owner front" (Some 1) (Dq.pop_front q);
  Alcotest.(check (option int)) "thief back" (Some 4) (Dq.pop_back q);
  Alcotest.(check int) "two left" 2 (Dq.length q)

let test_push_front () =
  let q = Dq.create () in
  Dq.push_back q 2;
  Dq.push_front q 1;
  Alcotest.(check (list int)) "order" [ 1; 2 ] (Dq.to_list q)

let test_remove () =
  let q = Dq.create () in
  List.iter (Dq.push_back q) [ 1; 2; 3; 4 ];
  Alcotest.(check (option int)) "remove 3" (Some 3) (Dq.remove q (fun x -> x = 3));
  Alcotest.(check (option int)) "remove missing" None (Dq.remove q (fun x -> x = 9));
  Alcotest.(check (list int)) "rest intact" [ 1; 2; 4 ] (Dq.to_list q)

let test_clear_empty () =
  let q = Dq.create () in
  Alcotest.(check bool) "empty" true (Dq.is_empty q);
  Dq.push_back q 1;
  Dq.clear q;
  Alcotest.(check bool) "cleared" true (Dq.is_empty q);
  Alcotest.(check (option int)) "pop empty" None (Dq.pop_back q)

let prop_deque_model =
  (* Compare against a list model under random front/back operations. *)
  QCheck.Test.make ~name:"deque matches list model" ~count:300
    QCheck.(list (pair bool (pair bool small_nat)))
    (fun ops ->
      let q = Dq.create () in
      let model = ref [] in
      let ok = ref true in
      List.iter
        (fun (is_push, (front, v)) ->
          if is_push then
            if front then begin
              Dq.push_front q v;
              model := v :: !model
            end
            else begin
              Dq.push_back q v;
              model := !model @ [ v ]
            end
          else if front then begin
            let got = Dq.pop_front q in
            let expect =
              match !model with
              | [] -> None
              | x :: rest ->
                  model := rest;
                  Some x
            in
            if got <> expect then ok := false
          end
          else begin
            let got = Dq.pop_back q in
            let expect =
              match List.rev !model with
              | [] -> None
              | x :: rest ->
                  model := List.rev rest;
                  Some x
            in
            if got <> expect then ok := false
          end)
        ops;
      !ok && Dq.to_list q = !model)

let test_model_10k () =
  (* 10,000 seeded operations over the full API — pushes, pops from both
     ends, predicate removal, occasional clear — checked move-by-move
     against a list model.  Deterministic (Desim.Rng), so a failure
     reproduces exactly. *)
  let rng = Desim.Rng.make 20260806 in
  let q = Dq.create () in
  let model = ref [] in
  let step op =
    match op with
    | 0 | 1 | 2 ->
        let v = Desim.Rng.int rng 50 in
        Dq.push_back q v;
        model := !model @ [ v ]
    | 3 | 4 ->
        let v = Desim.Rng.int rng 50 in
        Dq.push_front q v;
        model := v :: !model
    | 5 | 6 -> (
        let got = Dq.pop_front q in
        match !model with
        | [] -> if got <> None then Alcotest.fail "pop_front on empty"
        | x :: rest ->
            model := rest;
            if got <> Some x then Alcotest.failf "pop_front: got wrong element"
        )
    | 7 | 8 -> (
        let got = Dq.pop_back q in
        match List.rev !model with
        | [] -> if got <> None then Alcotest.fail "pop_back on empty"
        | x :: rest ->
            model := List.rev rest;
            if got <> Some x then Alcotest.failf "pop_back: got wrong element")
    | 9 ->
        let target = Desim.Rng.int rng 50 in
        let got = Dq.remove q (fun x -> x = target) in
        let expect =
          if List.mem target !model then begin
            let removed = ref false in
            model :=
              List.filter
                (fun x ->
                  if (not !removed) && x = target then begin
                    removed := true;
                    false
                  end
                  else true)
                !model;
            Some target
          end
          else None
        in
        if got <> expect then Alcotest.failf "remove %d mismatch" target
    | _ ->
        Dq.clear q;
        model := []
  in
  for i = 1 to 10_000 do
    (* clear is rare: op 10 only on a 1-in-500 side roll *)
    let op = Desim.Rng.int rng 10 in
    let op = if op = 9 && Desim.Rng.int rng 50 = 0 then 10 else op in
    step op;
    if Dq.length q <> List.length !model then
      Alcotest.failf "length diverged at op %d" i;
    if Dq.is_empty q <> (!model = []) then
      Alcotest.failf "is_empty diverged at op %d" i;
    if i mod 1000 = 0 && Dq.to_list q <> !model then
      Alcotest.failf "contents diverged at op %d" i
  done;
  Alcotest.(check (list int)) "final contents" !model (Dq.to_list q)

let suite =
  [
    Alcotest.test_case "fifo" `Quick test_fifo;
    Alcotest.test_case "model x10k seeded" `Quick test_model_10k;
    Alcotest.test_case "lifo" `Quick test_lifo;
    Alcotest.test_case "steal pattern" `Quick test_steal_pattern;
    Alcotest.test_case "push_front" `Quick test_push_front;
    Alcotest.test_case "remove" `Quick test_remove;
    Alcotest.test_case "clear/empty" `Quick test_clear_empty;
    QCheck_alcotest.to_alcotest prop_deque_model;
  ]
