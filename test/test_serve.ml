(* Deterministic tests for the serving workload's pure pieces: the
   adaptive-quantum controller (a pure function of a queueing
   snapshot), the seeded arrival schedule, the config rejections, and
   the shared re-measure-once perf gate.  Nothing here builds a pool,
   spawns a domain, or reads the wall clock — the suite is exact and
   single-threaded by construction. *)

module Q = Serve.Quantum
module G = Experiments.Gate

let feq msg expected actual =
  Alcotest.(check (float 1e-12)) msg expected actual

(* ------------------------------------------------------------------ *)
(* Quantum controller. *)

let snap ?(current = 2e-3) ?(base = 2e-3) ?(q_min = 2.5e-4) ?(q_max = 2e-3)
    ?(depth = 0) ?(members = 1) () =
  {
    Q.q_current = current;
    q_base = base;
    q_min;
    q_max;
    q_depth = depth;
    q_members = members;
  }

let test_quantum_monotone_in_depth () =
  (* Deeper queue, equal-or-shorter quantum — across a wide depth
     sweep, from the base quantum. *)
  let prev = ref infinity in
  for depth = 0 to 64 do
    let q = Q.next (snap ~depth ()) in
    Alcotest.(check bool)
      (Printf.sprintf "next at depth %d <= next at depth %d" depth (depth - 1))
      true
      (q <= !prev);
    prev := q
  done;
  (* Strictly shorter as soon as there is any backlog. *)
  let q0 = Q.next (snap ~depth:0 ()) in
  let q1 = Q.next (snap ~depth:1 ()) in
  Alcotest.(check bool) "backlog shrinks the quantum" true (q1 < q0)

let test_quantum_respects_bounds () =
  (* A huge backlog pins the quantum at the floor, never below. *)
  let q = Q.next (snap ~depth:1_000_000 ()) in
  feq "huge depth clamps to q_min" 2.5e-4 q;
  (* Even from a stale over-range current, the result obeys the
     ceiling. *)
  let q = Q.next (snap ~current:1.0 ~depth:0 ~q_max:2e-3 ()) in
  Alcotest.(check bool) "never exceeds q_max" true (q <= 2e-3);
  let q = Q.next (snap ~current:1e-9 ~depth:5 ()) in
  Alcotest.(check bool) "never drops below q_min" true (q >= 2.5e-4)

let test_quantum_members_soften_backlog () =
  (* The same backlog split across more workers shrinks less. *)
  let solo = Q.next (snap ~depth:8 ~members:1 ()) in
  let team = Q.next (snap ~depth:8 ~members:4 ()) in
  Alcotest.(check bool) "more members, longer quantum" true (team > solo)

let test_quantum_idle_decay () =
  (* From the floor, each idle decision halves the gap to base and
     snaps onto base once within 1% — so it converges exactly, fast. *)
  let base = 2e-3 in
  let q = ref 2.5e-4 in
  let steps = ref 0 in
  while !q <> base && !steps < 64 do
    let next = Q.next (snap ~current:!q ~base ~depth:0 ()) in
    Alcotest.(check bool) "idle decay moves toward base" true (next > !q);
    q := next;
    incr steps
  done;
  feq "idle decay reaches base exactly (1% snap)" base !q;
  Alcotest.(check bool)
    (Printf.sprintf "half-gap decay converges quickly (%d steps)" !steps)
    true (!steps <= 10)

let test_quantum_base_fixpoint () =
  (* At base with an empty queue the controller holds still. *)
  feq "base is a fixpoint at depth 0" 2e-3
    (Q.next (snap ~current:2e-3 ~base:2e-3 ~depth:0 ()))

let test_quantum_defaults () =
  feq "default floor is base/8" 2.5e-4 (Q.default_min ~base:2e-3);
  feq "default ceiling is base" 2e-3 (Q.default_max ~base:2e-3)

(* ------------------------------------------------------------------ *)
(* Arrival schedule: pure, seeded, ascending. *)

let small =
  { Serve.default with Serve.rate = 5_000.0; duration = 0.05; seed = 7 }

let test_schedule_deterministic () =
  let a = Serve.schedule small and b = Serve.schedule small in
  Alcotest.(check bool) "equal configs give identical schedules" true (a = b);
  let c = Serve.schedule { small with Serve.seed = 8 } in
  Alcotest.(check bool) "a different seed moves the arrivals" true (a <> c)

let check_rows name rows duration =
  Alcotest.(check bool) (name ^ ": non-empty") true (Array.length rows > 0);
  Array.iteri
    (fun i (t, _) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: row %d offset in [0, duration)" name i)
        true
        (t >= 0.0 && t < duration);
      if i > 0 then
        let tp, _ = rows.(i - 1) in
        Alcotest.(check bool)
          (Printf.sprintf "%s: row %d ascending" name i)
          true (t >= tp))
    rows

let test_schedule_shape () =
  check_rows "poisson" (Serve.schedule small) small.Serve.duration;
  let bursty =
    {
      small with
      Serve.arrival = Serve.Bursty { period = 0.01; on_frac = 0.25 };
    }
  in
  check_rows "bursty" (Serve.schedule bursty) bursty.Serve.duration

let test_schedule_class_purity () =
  let all cls rows = Array.for_all (fun (_, c) -> c = cls) rows in
  Alcotest.(check bool) "long_frac 0 offers only Short" true
    (all Serve.Short (Serve.schedule { small with Serve.long_frac = 0.0 }));
  Alcotest.(check bool) "long_frac 1 offers only Long" true
    (all Serve.Long (Serve.schedule { small with Serve.long_frac = 1.0 }))

let test_schedule_bursty_on_window () =
  let period = 0.01 and on_frac = 0.25 in
  let rows =
    Serve.schedule
      { small with Serve.arrival = Serve.Bursty { period; on_frac } }
  in
  Array.iteri
    (fun i (t, _) ->
      let phase = Float.rem t period in
      Alcotest.(check bool)
        (Printf.sprintf "bursty row %d lands inside the on-window" i)
        true
        (phase <= (period *. on_frac) +. 1e-9))
    rows

(* ------------------------------------------------------------------ *)
(* Config rejections: exact "Serve: <field> = <value> (must be ...)"
   strings, so the CLI error surface is pinned. *)

let check_rejects msg config =
  Alcotest.check_raises msg (Invalid_argument msg) (fun () ->
      Serve.validate config)

let test_validate_rejections () =
  check_rejects "Serve: rate = 0 (must be positive)"
    { small with Serve.rate = 0.0 };
  check_rejects "Serve: duration = -1 (must be positive)"
    { small with Serve.duration = -1.0 };
  check_rejects "Serve: long_frac = 2 (must be within 0..1)"
    { small with Serve.long_frac = 2.0 };
  check_rejects "Serve: short_service = 0 (must be positive)"
    { small with Serve.short_service = 0.0 };
  check_rejects "Serve: long_service = -0.001 (must be positive)"
    { small with Serve.long_service = -0.001 };
  check_rejects "Serve: arrival.period = 0 (must be positive)"
    { small with Serve.arrival = Serve.Bursty { period = 0.0; on_frac = 0.5 } };
  check_rejects "Serve: arrival.on_frac = 0 (must be within (0, 1])"
    { small with Serve.arrival = Serve.Bursty { period = 0.1; on_frac = 0.0 } };
  check_rejects "Serve: arrival.on_frac = 1.5 (must be within (0, 1])"
    { small with Serve.arrival = Serve.Bursty { period = 0.1; on_frac = 1.5 } }

(* ------------------------------------------------------------------ *)
(* The shared re-measure-once perf gate, driven by stub measurements
   so every branch is exercised without a single wall-clock read. *)

let counting_remeasure value =
  let calls = ref 0 in
  let f () =
    incr calls;
    value
  in
  (f, calls)

let test_gate_pass_no_retry () =
  let remeasure, calls = counting_remeasure 9.9 in
  (match G.ratio_gate ~host_cores:8 ~minimum:2.0 ~remeasure 3.0 with
  | G.Pass { ratio; retried } ->
      feq "passing first sample is reported" 3.0 ratio;
      Alcotest.(check bool) "no retry on a clean pass" false retried
  | _ -> Alcotest.fail "expected Pass");
  Alcotest.(check int) "remeasure never called" 0 !calls

let test_gate_retry_pass () =
  let remeasure, calls = counting_remeasure 2.5 in
  (match G.ratio_gate ~host_cores:8 ~minimum:2.0 ~remeasure 1.2 with
  | G.Pass { ratio; retried } ->
      feq "retry's ratio is reported" 2.5 ratio;
      Alcotest.(check bool) "marked as retried" true retried
  | _ -> Alcotest.fail "expected Pass after retry");
  Alcotest.(check int) "remeasure called exactly once" 1 !calls

let test_gate_retry_fail () =
  let remeasure, calls = counting_remeasure 1.5 in
  (match G.ratio_gate ~host_cores:8 ~minimum:2.0 ~remeasure 1.2 with
  | G.Fail { ratio } -> feq "failure carries the retry's ratio" 1.5 ratio
  | _ -> Alcotest.fail "expected Fail");
  Alcotest.(check int) "remeasure called exactly once" 1 !calls

let test_gate_skip_below_cores () =
  let remeasure, calls = counting_remeasure 9.9 in
  (match
     G.ratio_gate ~required_cores:4 ~host_cores:2 ~minimum:2.0 ~remeasure 0.5
   with
  | G.Skipped { ratio; cores } ->
      feq "skip still reports the measured ratio" 0.5 ratio;
      Alcotest.(check int) "skip reports the host's cores" 2 cores
  | _ -> Alcotest.fail "expected Skipped below required_cores");
  Alcotest.(check int) "no remeasure on skip" 0 !calls;
  (* A skip — unlike a failure — does not fail the smoke run. *)
  Alcotest.(check bool) "report treats skip as success" true
    (G.report ~name:"stub" ~minimum:2.0 (G.Skipped { ratio = 0.5; cores = 2 }));
  Alcotest.(check bool) "report treats fail as failure" false
    (G.report ~name:"stub" ~minimum:2.0 (G.Fail { ratio = 0.5 }))

let suite =
  [
    Alcotest.test_case "quantum monotone in depth" `Quick
      test_quantum_monotone_in_depth;
    Alcotest.test_case "quantum respects min/max" `Quick
      test_quantum_respects_bounds;
    Alcotest.test_case "quantum members soften backlog" `Quick
      test_quantum_members_soften_backlog;
    Alcotest.test_case "quantum idle decay to base" `Quick
      test_quantum_idle_decay;
    Alcotest.test_case "quantum base fixpoint" `Quick
      test_quantum_base_fixpoint;
    Alcotest.test_case "quantum bound defaults" `Quick test_quantum_defaults;
    Alcotest.test_case "schedule deterministic in seed" `Quick
      test_schedule_deterministic;
    Alcotest.test_case "schedule ascending within horizon" `Quick
      test_schedule_shape;
    Alcotest.test_case "schedule class purity at 0/1" `Quick
      test_schedule_class_purity;
    Alcotest.test_case "bursty arrivals stay in on-window" `Quick
      test_schedule_bursty_on_window;
    Alcotest.test_case "config rejections" `Quick test_validate_rejections;
    Alcotest.test_case "gate: pass without retry" `Quick
      test_gate_pass_no_retry;
    Alcotest.test_case "gate: transient fail then retry pass" `Quick
      test_gate_retry_pass;
    Alcotest.test_case "gate: fail on retry" `Quick test_gate_retry_fail;
    Alcotest.test_case "gate: skip below core floor" `Quick
      test_gate_skip_below_cores;
  ]
