(* The observability layer: histogram bucketing exactness, counter
   monotonicity under a real preemptive workload, snapshot determinism
   across identical seeded runs, and the zero-recording disabled path. *)

open Desim
open Oskern
open Preempt_core

module H = Metrics.Hist

(* ------------------------------------------------------------------ *)
(* Histogram unit tests. *)

let test_bucket_boundaries () =
  (* A value exactly at a bucket's lower edge lands in that bucket, and
     the value just below (the previous upper edge shrunk one ulp) does
     not — exhaustively, for every core bucket. *)
  for b = 1 to H.n_buckets - 2 do
    let lo, hi = H.bucket_bounds b in
    Alcotest.(check int) (Printf.sprintf "lower edge of bucket %d" b) b (H.bucket_of lo);
    let below = Float.pred lo in
    Alcotest.(check int)
      (Printf.sprintf "just below lower edge of bucket %d" b)
      (b - 1) (H.bucket_of below);
    (* The upper edge belongs to the next bucket. *)
    if b < H.n_buckets - 2 then
      Alcotest.(check int) (Printf.sprintf "upper edge of bucket %d" b) (b + 1) (H.bucket_of hi)
  done

let test_bucket_extremes () =
  Alcotest.(check int) "zero underflows" 0 (H.bucket_of 0.0);
  Alcotest.(check int) "negative underflows" 0 (H.bucket_of (-1.0));
  Alcotest.(check int) "sub-ns underflows" 0 (H.bucket_of 1e-12);
  Alcotest.(check int) "nan underflows" 0 (H.bucket_of Float.nan);
  Alcotest.(check int) "huge overflows" (H.n_buckets - 1) (H.bucket_of 1e9);
  Alcotest.(check int) "inf overflows" (H.n_buckets - 1) (H.bucket_of infinity);
  (* 1e2 is the exclusive top of the covered range. *)
  Alcotest.(check int) "range top overflows" (H.n_buckets - 1) (H.bucket_of 100.0);
  (* 1 ns is the inclusive bottom: first core bucket. *)
  Alcotest.(check int) "range bottom" 1 (H.bucket_of 1e-9)

let test_hist_add_count_percentile () =
  let h = H.create () in
  Alcotest.check_raises "empty percentile"
    (Invalid_argument "Metrics.Hist.percentile: empty histogram") (fun () ->
      ignore (H.percentile h 50.0));
  for _ = 1 to 90 do
    H.add h 1e-6
  done;
  for _ = 1 to 10 do
    H.add h 1e-3
  done;
  Alcotest.(check int) "count" 100 (H.count h);
  Alcotest.(check (float 1e-12)) "sum" (90. *. 1e-6 +. 10. *. 1e-3) (H.sum h);
  let lo50, hi50 = H.bucket_bounds (H.bucket_of 1e-6) in
  Alcotest.(check (float 1e-12)) "p50 is the 1us bucket midpoint" (sqrt (lo50 *. hi50))
    (H.percentile h 50.0);
  let lo99, hi99 = H.bucket_bounds (H.bucket_of 1e-3) in
  Alcotest.(check (float 1e-12)) "p99 is the 1ms bucket midpoint" (sqrt (lo99 *. hi99))
    (H.percentile h 99.0);
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Metrics.Hist.percentile: p outside [0,100]") (fun () ->
      ignore (H.percentile h 101.0));
  (* nonzero rows account for every sample. *)
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 (H.nonzero h) in
  Alcotest.(check int) "nonzero covers all" 100 total

(* The interpolating estimator's edge cases: the serving report leans
   on p99.9, which routinely asks for a rank beyond the last occupied
   bucket of a small histogram. *)
let test_quantile_edges () =
  let h = H.create () in
  Alcotest.check_raises "empty quantile"
    (Invalid_argument "Metrics.Hist.quantile: empty histogram") (fun () ->
      ignore (H.quantile h 50.0));
  (* Single occupied bucket: every quantile interpolates inside that
     bucket's bounds and stays monotone in p. *)
  for _ = 1 to 7 do
    H.add h 1e-6
  done;
  let lo, hi = H.bucket_bounds (H.bucket_of 1e-6) in
  let prev = ref 0.0 in
  List.iter
    (fun p ->
      let q = H.quantile h p in
      Alcotest.(check bool)
        (Printf.sprintf "single bucket: q(%g) within bucket bounds" p)
        true
        (q >= lo && q <= hi);
      Alcotest.(check bool)
        (Printf.sprintf "single bucket: q(%g) monotone in p" p)
        true (q >= !prev);
      prev := q)
    [ 0.0; 50.0; 99.0; 99.9; 100.0 ];
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Metrics.Hist.quantile: p outside [0,100]") (fun () ->
      ignore (H.quantile h 100.5));
  (* A p99.9 rank beyond the last occupied bucket resolves inside that
     bucket (never scans past it), even with samples split across
     buckets below. *)
  let h = H.create () in
  for _ = 1 to 9 do
    H.add h 1e-6
  done;
  H.add h 1e-4;
  let lo, hi = H.bucket_bounds (H.bucket_of 1e-4) in
  let q = H.quantile h 99.9 in
  Alcotest.(check bool) "p99.9 lands in the last occupied bucket" true
    (q >= lo && q <= hi);
  Alcotest.(check bool) "quantile within a bucket of percentile" true
    (Float.abs (q -. H.percentile h 99.9) <= hi -. lo)

(* The merge used by telemetry's sliding windows and cross-worker
   sketches: bucket-wise sum, so quantiles of the merge equal the
   quantiles of adding both sample streams to one histogram. *)
let test_merge () =
  let a = H.create () and b = H.create () in
  let m0 = H.merge a b in
  Alcotest.(check int) "empty merge count" 0 (H.count m0);
  for _ = 1 to 90 do
    H.add a 1e-6
  done;
  for _ = 1 to 10 do
    H.add b 1e-3
  done;
  let m = H.merge a b in
  Alcotest.(check int) "merged count" 100 (H.count m);
  Alcotest.(check (float 1e-12)) "merged sum"
    ((90. *. 1e-6) +. (10. *. 1e-3))
    (H.sum m);
  (* Inputs untouched (merge is fresh, not in-place). *)
  Alcotest.(check int) "left input untouched" 90 (H.count a);
  Alcotest.(check int) "right input untouched" 10 (H.count b);
  H.add m 1.0;
  Alcotest.(check int) "merge is independent of inputs" 90 (H.count a)

let test_quantile_after_merge () =
  (* Quantiles of the merge match a single histogram fed the union of
     both streams — exactly, since merge is bucket-wise. *)
  let a = H.create () and b = H.create () and whole = H.create () in
  let feed h v = H.add h v in
  for i = 1 to 200 do
    let v = 1e-6 *. float_of_int i in
    feed (if i mod 3 = 0 then a else b) v;
    feed whole v
  done;
  let m = H.merge a b in
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-15))
        (Printf.sprintf "q(%g) of merge = q of union" p)
        (H.quantile whole p) (H.quantile m p))
    [ 0.0; 10.0; 50.0; 90.0; 99.0; 99.9; 100.0 ];
  (* Merging with empty is the identity on counts and quantiles. *)
  let id = H.merge whole (H.create ()) in
  Alcotest.(check int) "identity count" (H.count whole) (H.count id);
  Alcotest.(check (float 1e-15)) "identity p50" (H.quantile whole 50.0)
    (H.quantile id 50.0)

(* ------------------------------------------------------------------ *)
(* Runtime integration. *)

let run_workload ?(enable = true) ?(seed = 42) () =
  let eng = Engine.create ~seed () in
  let kernel = Kernel.create eng (Machine.with_cores Machine.skylake 2) in
  let config =
    {
      Config.default with
      Config.timer_strategy = Config.Per_worker_aligned;
      interval = 1e-3;
      metrics_enabled = enable;
    }
  in
  let rt = Runtime.create ~config kernel ~n_workers:2 in
  let mid = ref None in
  for i = 0 to 3 do
    ignore
      (Runtime.spawn rt ~kind:Types.Klt_switching ~home:(i mod 2)
         ~name:(Printf.sprintf "w%d" i)
         (fun () ->
           Ult.compute 6e-3;
           ignore (Ult.blocking_io 2e-3);
           Ult.compute 2e-3))
  done;
  ignore (Engine.after eng 5e-3 (fun () -> mid := Some (Runtime.metrics rt)));
  Runtime.start rt;
  Engine.run ~until:10.0 eng;
  (rt, Runtime.metrics rt, !mid)

let ge_counters label (a : Metrics.wcounters) (b : Metrics.wcounters) =
  let check field av bv =
    if av < bv then
      Alcotest.failf "%s: %s decreased (%d -> %d)" label field bv av
  in
  check "preempts" a.Metrics.preempts b.Metrics.preempts;
  check "signal_yields" a.Metrics.signal_yields b.Metrics.signal_yields;
  check "klt_switches" a.Metrics.klt_switches b.Metrics.klt_switches;
  check "pool_gets" a.Metrics.pool_gets b.Metrics.pool_gets;
  check "pool_puts" a.Metrics.pool_puts b.Metrics.pool_puts;
  check "steals" a.Metrics.steals b.Metrics.steals;
  check "timer_fires" a.Metrics.timer_fires b.Metrics.timer_fires;
  check "io_restarts" a.Metrics.io_restarts b.Metrics.io_restarts

let test_counters_monotonic_and_nonzero () =
  let rt, final, mid = run_workload () in
  let mid = Option.get mid in
  (* Every counter is monotone: final >= mid-run snapshot, per worker
     and in total. *)
  ge_counters "totals" final.Metrics.s_totals mid.Metrics.s_totals;
  Array.iteri
    (fun r c -> ge_counters (Printf.sprintf "worker%d" r) c mid.Metrics.s_workers.(r))
    final.Metrics.s_workers;
  (* The acceptance check: a KLT-switching workload reports nonzero
     preemptions with a real signal-to-switch latency distribution. *)
  let t = final.Metrics.s_totals in
  Alcotest.(check bool) "preempts > 0" true (t.Metrics.preempts > 0);
  Alcotest.(check bool) "klt switches > 0" true (t.Metrics.klt_switches > 0);
  Alcotest.(check bool) "pool gets > 0" true (t.Metrics.pool_gets > 0);
  Alcotest.(check bool) "timer fires > 0" true (t.Metrics.timer_fires > 0);
  Alcotest.(check bool) "io restarts > 0" true (t.Metrics.io_restarts > 0);
  Alcotest.(check bool) "sig->switch sampled" true
    (H.count final.Metrics.s_sig_to_switch > 0);
  let p50 = H.percentile final.Metrics.s_sig_to_switch 50.0 in
  let p99 = H.percentile final.Metrics.s_sig_to_switch 99.0 in
  Alcotest.(check bool) "p50 > 0" true (p50 > 0.0);
  Alcotest.(check bool) "p99 >= p50" true (p99 >= p50);
  Alcotest.(check bool) "quanta recorded" true (H.count final.Metrics.s_run_quantum > 0);
  Alcotest.(check bool) "sched delays recorded" true
    (H.count final.Metrics.s_sched_delay > 0);
  (* The runtime's own counters agree with the metric totals. *)
  Alcotest.(check int) "preempt_signals agrees" (Runtime.preempt_signals rt)
    t.Metrics.preempts;
  Alcotest.(check int) "klt_switches agrees" (Runtime.klt_switches rt) t.Metrics.klt_switches

let test_snapshot_deterministic () =
  let _, s1, m1 = run_workload ~seed:7 () in
  let _, s2, m2 = run_workload ~seed:7 () in
  Alcotest.(check bool) "final snapshots identical" true (s1 = s2);
  Alcotest.(check bool) "mid-run snapshots identical" true (m1 = m2)

let test_disabled_records_nothing () =
  let _, s, _ = run_workload ~enable:false () in
  let t = s.Metrics.s_totals in
  Alcotest.(check int) "no preempts" 0 t.Metrics.preempts;
  Alcotest.(check int) "no sigyields" 0 t.Metrics.signal_yields;
  Alcotest.(check int) "no klt switches" 0 t.Metrics.klt_switches;
  Alcotest.(check int) "no pool gets" 0 t.Metrics.pool_gets;
  Alcotest.(check int) "no pool puts" 0 t.Metrics.pool_puts;
  Alcotest.(check int) "no steals" 0 t.Metrics.steals;
  Alcotest.(check int) "no timer fires" 0 t.Metrics.timer_fires;
  Alcotest.(check int) "no io restarts" 0 t.Metrics.io_restarts;
  Alcotest.(check int) "no sync blocks" 0 s.Metrics.s_sync_blocks;
  Alcotest.(check int) "no sync wakeups" 0 s.Metrics.s_sync_wakeups;
  Alcotest.(check int) "empty sig->switch" 0 (H.count s.Metrics.s_sig_to_switch);
  Alcotest.(check int) "empty sched delay" 0 (H.count s.Metrics.s_sched_delay);
  Alcotest.(check int) "empty run quantum" 0 (H.count s.Metrics.s_run_quantum)

let test_enable_midway () =
  (* set_metrics_enabled mid-run starts recording without garbage from
     stale timestamps. *)
  let eng = Engine.create () in
  let kernel = Kernel.create eng (Machine.with_cores Machine.skylake 1) in
  let config =
    {
      Config.default with
      Config.timer_strategy = Config.Per_worker_aligned;
      interval = 1e-3;
    }
  in
  let rt = Runtime.create ~config kernel ~n_workers:1 in
  for i = 0 to 1 do
    ignore
      (Runtime.spawn rt ~kind:Types.Signal_yield ~home:0
         ~name:(Printf.sprintf "m%d" i)
         (fun () -> Ult.compute 8e-3))
  done;
  ignore (Engine.after eng 4e-3 (fun () -> Runtime.set_metrics_enabled rt true));
  Runtime.start rt;
  Engine.run ~until:10.0 eng;
  let s = Runtime.metrics rt in
  Alcotest.(check bool) "recorded after enabling" true
    (s.Metrics.s_totals.Metrics.preempts > 0);
  (* No sched-delay sample can exceed the elapsed virtual time (a stale
     pre-enable timestamp would). *)
  Array.iter
    (fun (_, hi, c) ->
      if c > 0 then
        Alcotest.(check bool) "sched delay plausible" true
          (hi <= Engine.now eng || hi = infinity))
    (H.nonzero s.Metrics.s_sched_delay)

let test_usync_counters () =
  let eng = Engine.create () in
  let kernel = Kernel.create eng (Machine.with_cores Machine.skylake 2) in
  let config = { Config.default with Config.metrics_enabled = true } in
  let rt = Runtime.create ~config kernel ~n_workers:2 in
  let m = Usync.Mutex.create rt in
  for i = 0 to 3 do
    ignore
      (Runtime.spawn rt ~home:0 ~name:(Printf.sprintf "l%d" i) (fun () ->
           Usync.Mutex.lock m;
           Ult.compute 1e-3;
           Usync.Mutex.unlock m))
  done;
  Runtime.start rt;
  Engine.run eng;
  let s = Runtime.metrics rt in
  Alcotest.(check int) "three blocked" 3 s.Metrics.s_sync_blocks;
  Alcotest.(check int) "three handoffs" 3 s.Metrics.s_sync_wakeups

let suite =
  [
    Alcotest.test_case "bucket edges exact" `Quick test_bucket_boundaries;
    Alcotest.test_case "bucket extremes" `Quick test_bucket_extremes;
    Alcotest.test_case "hist add/percentile" `Quick test_hist_add_count_percentile;
    Alcotest.test_case "quantile edge cases" `Quick test_quantile_edges;
    Alcotest.test_case "merge" `Quick test_merge;
    Alcotest.test_case "quantile after merge" `Quick test_quantile_after_merge;
    Alcotest.test_case "counters monotone + nonzero" `Quick test_counters_monotonic_and_nonzero;
    Alcotest.test_case "snapshot deterministic" `Quick test_snapshot_deterministic;
    Alcotest.test_case "disabled records nothing" `Quick test_disabled_records_nothing;
    Alcotest.test_case "enable mid-run" `Quick test_enable_midway;
    Alcotest.test_case "usync block/wakeup counters" `Quick test_usync_counters;
  ]
