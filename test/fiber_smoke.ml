(* Multi-domain smoke for the lock-free fiber runtime (dune alias
   @fiber-smoke, part of @runtest).

   Everything here is a liveness/linearizability check that needs real
   domains, which alcotest's in-process suites exercise only lightly:

   1. Chase–Lev deque under contention: 1 owner (push/pop, with
      interleaved push_front) vs N stealer domains.  Every pushed value
      must be claimed exactly once — no losses, no duplicates — and the
      claimed checksum must equal the pushed checksum.
   2. Park/unpark hammer: repeated tiny spawn/await bursts separated by
      forced idle gaps, so workers continuously cross the
      spin -> park -> signal -> unpark path.  A lost wakeup hangs the
      run (the driver's timeout is the failure detector); completing all
      rounds is the pass.
   3. Cross-domain preemption ticker: greedy fibers on several domains
      must all be preempted at safe points and complete.

   Iteration counts are sized to finish in a few seconds on a single
   oversubscribed core (CI worst case). *)

let fail fmt = Printf.ksprintf (fun s -> print_endline ("FAIL: " ^ s); exit 1) fmt

(* ------------------------------------------------------------------ *)
(* 1. Deque: 1 owner vs N stealers. *)

let deque_stress ~stealers ~items =
  let d = Fiber.Deque.create () in
  let seen = Array.init items (fun _ -> Atomic.make 0) in
  let claimed = Atomic.make 0 in
  let claimed_sum = Atomic.make 0 in
  (* A sampler domain hammers the racy [length] snapshot throughout: it
     must clamp the ring term's negative transients (owner pop's
     bottom = top - 1 window, thief CAS between the index reads) and
     never report a negative backlog. *)
  let neg_lengths = Atomic.make 0 in
  let sampler =
    Domain.spawn (fun () ->
        while Atomic.get claimed < items do
          if Fiber.Deque.length d < 0 then Atomic.incr neg_lengths
        done)
  in
  let claim v =
    ignore (Atomic.fetch_and_add (Array.get seen v) 1);
    ignore (Atomic.fetch_and_add claimed_sum v);
    Atomic.incr claimed
  in
  (* Thieves alternate between classic single steals and batched
     raids of mixed sizes, so the iterated per-element claims race
     both the owner and each other. *)
  let thieves =
    List.init stealers (fun t ->
        Domain.spawn (fun () ->
            let rounds = ref 0 in
            while Atomic.get claimed < items do
              incr rounds;
              let r =
                if (t + !rounds) land 1 = 0 then Fiber.Deque.steal d
                else
                  Fiber.Deque.steal_batch d
                    ~max:(2 + ((t + !rounds) mod 7))
                    ~spill:claim
              in
              match r with Some v -> claim v | None -> Domain.cpu_relax ()
            done))
  in
  (* Owner: push everything (every 7th value via the front segment),
     popping a batch every so often so owner pops race the steals. *)
  for v = 0 to items - 1 do
    if v mod 7 = 3 then Fiber.Deque.push_front d v else Fiber.Deque.push d v;
    if v mod 64 = 63 then
      for _ = 1 to 16 do
        match Fiber.Deque.pop d with Some x -> claim x | None -> ()
      done
  done;
  let rec drain () =
    if Atomic.get claimed < items then begin
      (match Fiber.Deque.pop d with
      | Some x -> claim x
      | None -> Domain.cpu_relax ());
      drain ()
    end
  in
  drain ();
  List.iter Domain.join thieves;
  Domain.join sampler;
  if Atomic.get neg_lengths > 0 then
    fail "deque stress: length went negative %d time(s)"
      (Atomic.get neg_lengths);
  Array.iteri
    (fun v c ->
      let c = Atomic.get c in
      if c <> 1 then fail "deque stress: value %d claimed %d times" v c)
    seen;
  let expect = items * (items - 1) / 2 in
  if Atomic.get claimed_sum <> expect then
    fail "deque stress: checksum %d, expected %d" (Atomic.get claimed_sum) expect;
  if Fiber.Deque.length d <> 0 then
    fail "deque stress: %d left over" (Fiber.Deque.length d);
  Printf.printf "deque stress: %d items, %d stealers, no dup/loss\n%!" items
    stealers

(* ------------------------------------------------------------------ *)
(* 2. Park/unpark hammer. *)

let park_hammer ~domains ~rounds =
  let pool = Fiber.create ~domains () in
  let total = Atomic.make 0 in
  for round = 1 to rounds do
    let n =
      Fiber.run pool (fun () ->
          (* A burst small enough that workers go idle between rounds;
             a yield in each child forces a re-queue through the
             wake path as well. *)
          let ps =
            List.init (1 + (round mod 4)) (fun i ->
                Fiber.spawn (fun () ->
                    Fiber.yield ();
                    i + 1))
          in
          List.fold_left (fun acc p -> acc + Fiber.await p) 0 ps)
    in
    ignore (Atomic.fetch_and_add total n)
  done;
  Fiber.shutdown pool;
  let expect = ref 0 in
  for round = 1 to rounds do
    let k = 1 + (round mod 4) in
    expect := !expect + (k * (k + 1) / 2)
  done;
  if Atomic.get total <> !expect then
    fail "park hammer: sum %d, expected %d" (Atomic.get total) !expect;
  Printf.printf "park hammer: %d rounds x %d domains, no lost wakeup\n%!" rounds
    domains

(* ------------------------------------------------------------------ *)
(* 3. Preemption ticker across domains. *)

let preempt_smoke ~domains =
  let pool = Fiber.create ~domains ~preempt_interval:0.002 () in
  let finished =
    Fiber.run pool (fun () ->
        let ps =
          List.init (2 * domains) (fun _ ->
              Fiber.spawn (fun () ->
                  (* Greedy until somebody (us or a sibling) takes a
                     preemption, with a generous deadline: on an
                     oversubscribed single-core CI box the ticker
                     thread may only get scheduled every ~50 ms. *)
                  let t0 = Unix.gettimeofday () in
                  while
                    Fiber.preemptions pool = 0
                    && Unix.gettimeofday () -. t0 < 5.0
                  do
                    Fiber.check ()
                  done;
                  1))
        in
        List.fold_left (fun acc p -> acc + Fiber.await p) 0 ps)
  in
  let preempted = Fiber.preemptions pool in
  Fiber.shutdown pool;
  if finished <> 2 * domains then
    fail "preempt smoke: %d fibers finished, expected %d" finished (2 * domains);
  if preempted = 0 then fail "preempt smoke: ticker never preempted anybody";
  Printf.printf "preempt smoke: %d greedy fibers on %d domains, %d preemptions\n%!"
    finished domains preempted

(* ------------------------------------------------------------------ *)
(* 4. Concurrent stats sampler: [Fiber.stats] reads racy plain
   counters while workers mutate them (spawn / steal / complete), so
   individual reads can tear mid-update; the snapshot clamp must keep
   every published field nonnegative no matter when the sampler
   lands.  A dedicated domain hammers the snapshot for the whole
   run — the same access pattern as the [repro top] display thread. *)

let stats_sampler_smoke ~domains ~rounds =
  let pool = Fiber.create ~domains ~preempt_interval:0.002 () in
  let stop = Atomic.make false in
  let bad = Atomic.make 0 in
  let snapshots = Atomic.make 0 in
  let sampler =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          List.iter
            (fun st ->
              Atomic.incr snapshots;
              if
                st.Fiber.st_pending < 0
                || st.Fiber.st_spawned < 0
                || st.Fiber.st_local_steals < 0
                || st.Fiber.st_overflow_in < 0
                || st.Fiber.st_overflow_out < 0
                || st.Fiber.st_batch_stolen < 0
                || st.Fiber.st_recycled < 0
                || st.Fiber.st_recycle_miss < 0
                || st.Fiber.st_leapfrog < 0
              then Atomic.incr bad)
            (Fiber.stats pool)
        done)
  in
  for _round = 1 to rounds do
    let n =
      Fiber.run pool (fun () ->
          let ps =
            List.init 32 (fun i ->
                Fiber.spawn (fun () ->
                    Fiber.yield ();
                    i))
          in
          List.fold_left (fun acc p -> acc + Fiber.await p) 0 ps)
    in
    if n <> 32 * 31 / 2 then fail "stats sampler: round sum %d" n
  done;
  Atomic.set stop true;
  Domain.join sampler;
  Fiber.shutdown pool;
  if Atomic.get bad > 0 then
    fail "stats sampler: %d negative snapshot field(s)" (Atomic.get bad);
  Printf.printf
    "stats sampler: %d snapshots against %d rounds, every field >= 0\n%!"
    (Atomic.get snapshots) rounds

(* ------------------------------------------------------------------ *)
(* 5. Span round-trip: a small recorder+telemetry serving run, dumped
   and re-analyzed, must decompose every complete request span into
   queueing + service + preemption overhead whose sum reproduces the
   measured sojourn bucket-for-bucket — the exactness [repro observe]
   advertises. *)

let serve_span_smoke () =
  let cfg =
    {
      Serve.default with
      Serve.rate = 2000.0;
      duration = 0.25;
      domains = 3;
      recorder = true;
      telemetry = true;
    }
  in
  let path = Filename.temp_file "serve_span_smoke" ".flt" in
  let rep = Serve.run ~dump:path cfg in
  if rep.Serve.r_completed <> rep.Serve.r_offered then
    fail "span smoke: %d/%d requests completed" rep.Serve.r_completed
      rep.Serve.r_offered;
  let d =
    match Preempt_core.Recorder.load ~path with
    | Ok d -> d
    | Error e -> fail "span smoke: dump does not decode: %s" e
  in
  Sys.remove path;
  match (Experiments.Observe.of_dump d).Experiments.Observe.r_spans with
  | None -> fail "span smoke: no span section in the observe report"
  | Some s ->
      let open Experiments.Observe in
      if s.spn_complete = 0 then fail "span smoke: no complete spans";
      if s.spn_verified <> s.spn_complete then
        fail
          "span smoke: %d/%d spans verified (stage sum must reproduce the \
           measured sojourn bucket-for-bucket)"
          s.spn_verified s.spn_complete;
      Printf.printf
        "span smoke: %d/%d spans verified against measured sojourns\n%!"
        s.spn_verified s.spn_complete

(* ------------------------------------------------------------------ *)
(* 6. Spawn recycling: on a single-domain pool the spawner is also the
   runner, so dead fiber cells cycle deterministically through the
   worker's own free-list.  With bursts no larger than the free-list
   bound, only the first round's spawns can miss (cold list); every
   later spawn must be served from recycled cells. *)

let recycle_smoke ~rounds ~burst =
  let pool =
    Fiber.make (Fiber.Config.make ~domains:1 ~spawn_freelist:(2 * burst) ())
  in
  for _round = 1 to rounds do
    let n =
      Fiber.run pool (fun () ->
          let ps = List.init burst (fun i -> Fiber.spawn (fun () -> i)) in
          List.fold_left (fun acc p -> acc + Fiber.await p) 0 ps)
    in
    if n <> burst * (burst - 1) / 2 then fail "recycle smoke: round sum %d" n
  done;
  let st = List.hd (Fiber.stats pool) in
  Fiber.shutdown pool;
  let spawned = rounds * burst in
  if st.Fiber.st_recycled + st.Fiber.st_recycle_miss <> spawned then
    fail "recycle smoke: %d hits + %d misses <> %d spawns"
      st.Fiber.st_recycled st.Fiber.st_recycle_miss spawned;
  if st.Fiber.st_recycle_miss > burst then
    fail "recycle smoke: %d misses, expected at most the cold first burst (%d)"
      st.Fiber.st_recycle_miss burst;
  if st.Fiber.st_recycled < (rounds - 1) * burst then
    fail "recycle smoke: only %d spawns recycled, expected >= %d"
      st.Fiber.st_recycled
      ((rounds - 1) * burst);
  Printf.printf "recycle smoke: %d/%d spawns served from the free-list\n%!"
    st.Fiber.st_recycled spawned

let () =
  deque_stress ~stealers:3 ~items:30_000;
  park_hammer ~domains:3 ~rounds:400;
  preempt_smoke ~domains:2;
  stats_sampler_smoke ~domains:3 ~rounds:150;
  serve_span_smoke ();
  recycle_smoke ~rounds:25 ~burst:16;
  print_endline "fiber-smoke: OK"
