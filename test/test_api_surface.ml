(* Remaining public-API surface: pretty-printers, guards, and small
   accessors not covered elsewhere. *)

open Desim
open Oskern
open Preempt_core

let fmt_to_string pp v = Format.asprintf "%a" pp v

let test_pp_machine_cpuset () =
  let s = fmt_to_string Machine.pp Machine.skylake in
  Alcotest.(check bool) "machine pp" true (Astring_contains.contains s "56 cores");
  let s = fmt_to_string Cpuset.pp (Cpuset.of_list 4 [ 0; 2 ]) in
  Alcotest.(check string) "cpuset pp" "{0,2}" s

let test_pp_stats () =
  let st = Stats.create () in
  Stats.add st 1.0;
  Stats.add st 3.0;
  let s = fmt_to_string Stats.pp_summary st in
  Alcotest.(check bool) "stats pp has n=2" true (Astring_contains.contains s "n=2")

let test_exputil_formats () =
  Alcotest.(check string) "us" "2.50 us" (Experiments.Exputil.us 2.5e-6);
  Alcotest.(check string) "pct" "12.34%" (Experiments.Exputil.pct 0.12341);
  Alcotest.(check string) "seconds" "1.500 s" (Experiments.Exputil.seconds 1.5)

let test_set_preemption_interval_guard () =
  let eng = Engine.create () in
  let kernel = Kernel.create eng (Machine.with_cores Machine.skylake 1) in
  let rt = Runtime.create kernel ~n_workers:1 in
  Alcotest.check_raises "zero interval"
    (Invalid_argument "Runtime.set_preemption_interval: interval <= 0") (fun () ->
      Runtime.set_preemption_interval rt 0.0)

let test_runtime_create_guards () =
  let eng = Engine.create () in
  let kernel = Kernel.create eng (Machine.with_cores Machine.skylake 2) in
  Alcotest.check_raises "zero workers" (Invalid_argument "Runtime.create: n_workers <= 0")
    (fun () -> ignore (Runtime.create kernel ~n_workers:0));
  Alcotest.check_raises "too many workers"
    (Invalid_argument "Runtime.create: more workers than cores") (fun () ->
      ignore (Runtime.create kernel ~n_workers:3))

let test_double_start_rejected () =
  let eng = Engine.create () in
  let kernel = Kernel.create eng (Machine.with_cores Machine.skylake 1) in
  let rt = Runtime.create kernel ~n_workers:1 in
  ignore (Runtime.spawn rt ~name:"x" (fun () -> ()));
  Runtime.start rt;
  Alcotest.check_raises "double start" (Invalid_argument "Runtime.start: already started")
    (fun () -> Runtime.start rt);
  Engine.run eng

let test_ult_accessors () =
  let eng = Engine.create () in
  let kernel = Kernel.create eng (Machine.with_cores Machine.skylake 1) in
  let rt = Runtime.create kernel ~n_workers:1 in
  let u = Runtime.spawn rt ~kind:Types.Signal_yield ~priority:2 ~name:"acc" (fun () -> ()) in
  Alcotest.(check string) "name" "acc" (Ult.name u);
  Alcotest.(check int) "priority" 2 (Ult.priority u);
  Ult.set_priority u 5;
  Alcotest.(check int) "set_priority" 5 (Ult.priority u);
  Alcotest.(check bool) "kind" true (Ult.kind u = Types.Signal_yield);
  Alcotest.(check bool) "not finished yet" false (Ult.finished u);
  Alcotest.(check (float 0.0)) "no cpu yet" 0.0 (Ult.cpu u);
  Runtime.start rt;
  Engine.run eng;
  Alcotest.(check bool) "finished" true (Ult.finished u)

let test_kernel_accessors () =
  let eng = Engine.create () in
  let kernel = Kernel.create eng (Machine.with_cores Machine.skylake 2) in
  Alcotest.(check int) "cores" 2 (Kernel.machine kernel).Machine.cores;
  Alcotest.(check bool) "engine identity" true (Kernel.engine kernel == eng);
  let klt = Kernel.spawn kernel ~nice:3 ~name:"n" (fun _ -> ()) in
  Alcotest.(check int) "nice" 3 (Kernel.nice klt);
  Alcotest.(check string) "name" "n" (Kernel.klt_name klt);
  Alcotest.(check string) "created state" "created" (Kernel.state_name klt);
  Engine.run eng;
  Alcotest.(check string) "zombie state" "zombie" (Kernel.state_name klt)

let test_machine_with_cores_preserves_costs () =
  let m = Machine.with_cores Machine.knl 8 in
  Alcotest.(check (float 0.0)) "costs preserved"
    Machine.knl.Machine.costs.Machine.signal_lock_hold
    m.Machine.costs.Machine.signal_lock_hold;
  Alcotest.(check int) "cores" 8 m.Machine.cores

(* --- Unified construction path: Config.make / validate ------------- *)

let test_config_make_validation () =
  (* Every rejection names the field, the offending value and the
     requirement, in one uniform shape. *)
  Alcotest.check_raises "zero interval"
    (Invalid_argument "Config: interval = 0 (must be positive)") (fun () ->
      ignore (Config.make ~interval:0.0 ()));
  Alcotest.check_raises "negative interval"
    (Invalid_argument "Config: interval = -1 (must be positive)") (fun () ->
      ignore (Config.make ~interval:(-1.0) ()));
  Alcotest.check_raises "NaN interval"
    (Invalid_argument "Config: interval = nan (must be positive)") (fun () ->
      ignore (Config.make ~interval:Float.nan ()));
  Alcotest.check_raises "negative pool capacity"
    (Invalid_argument "Config: local_pool_capacity = -1 (must be non-negative)")
    (fun () -> ignore (Config.make ~local_pool_capacity:(-1) ()));
  Alcotest.check_raises "zero idle_poll"
    (Invalid_argument "Config: idle_poll = 0 (must be positive)") (fun () ->
      ignore (Config.make ~idle_poll:0.0 ()));
  Alcotest.check_raises "NaN idle_poll"
    (Invalid_argument "Config: idle_poll = nan (must be positive)") (fun () ->
      ignore (Config.make ~idle_poll:Float.nan ()))

let test_config_errors_uniform_shape () =
  (* The "Config: <field> = <value> (must be <requirement>)" shape is a
     stable contract: harness code greps the field name out of it. *)
  let message_of f =
    try
      ignore (f ());
      Alcotest.fail "expected Invalid_argument"
    with Invalid_argument m -> m
  in
  List.iter
    (fun (field, f) ->
      let m = message_of f in
      Alcotest.(check bool)
        (Printf.sprintf "%S names the field" m)
        true
        (Astring_contains.contains m ("Config: " ^ field ^ " = "));
      Alcotest.(check bool)
        (Printf.sprintf "%S states the requirement" m)
        true
        (Astring_contains.contains m "(must be "))
    [
      ("interval", fun () -> ignore (Config.make ~interval:(-2.5) ()));
      ( "local_pool_capacity",
        fun () -> ignore (Config.make ~local_pool_capacity:(-7) ()) );
      ("idle_poll", fun () -> ignore (Config.make ~idle_poll:(-1e-6) ()));
      ("recorder_capacity", fun () -> ignore (Config.make ~recorder_capacity:0 ()));
    ]

let test_config_make_defaults () =
  Alcotest.(check bool) "make () = default" true (Config.make () = Config.default);
  let c = Config.make ~interval:5e-4 ~suspend_mode:Config.Sigsuspend () in
  Alcotest.(check (float 0.0)) "interval set" 5e-4 c.Config.interval;
  Alcotest.(check bool) "suspend_mode set" true (c.Config.suspend_mode = Config.Sigsuspend)

let test_config_metrics_alias () =
  (* Canonical name; the deprecated [enable_metrics] alias is gone
     (docs/INTERNALS.md) — this pins the rename's end state. *)
  let c = Config.make ~metrics_enabled:true () in
  Alcotest.(check bool) "metrics_enabled" true c.Config.metrics_enabled;
  let c = Config.make () in
  Alcotest.(check bool) "off by default" false c.Config.metrics_enabled

(* Runtime.create routes any config — including hand-built records —
   through Config.validate. *)
let test_runtime_create_validates_config () =
  let eng = Engine.create () in
  let kernel = Kernel.create eng (Machine.with_cores Machine.skylake 1) in
  Alcotest.check_raises "bad config rejected"
    (Invalid_argument "Config: interval = nan (must be positive)") (fun () ->
      ignore
        (Runtime.create
           ~config:{ Config.default with Config.interval = Float.nan }
           kernel ~n_workers:1));
  (* Config.metrics_enabled is the one switch; Runtime reflects it. *)
  let rt =
    Runtime.create ~config:(Config.make ~metrics_enabled:true ()) kernel ~n_workers:1
  in
  Alcotest.(check bool) "metrics on via config" true (Runtime.metrics_enabled rt);
  Runtime.set_metrics_enabled rt false;
  Alcotest.(check bool) "runtime setter" false (Runtime.metrics_enabled rt)

(* --- Fiber pool construction: Fiber.Config.make / validate ---------- *)

(* The real fiber runtime's smart constructor speaks the same
   "Config: <field> = <value> (must be <requirement>)" contract as
   Core's Config (pinned above): every pool-shape rejection names the
   field, the offending value and the requirement. *)
let test_fiber_config_validation () =
  let sp = Fiber.Config.subpool in
  Alcotest.check_raises "zero domains"
    (Invalid_argument "Config: domains = 0 (must be >= 1)") (fun () ->
      ignore (Fiber.Config.make ~domains:0 ()));
  Alcotest.check_raises "bad preempt_interval"
    (Invalid_argument "Config: preempt_interval = -0.001 (must be positive)")
    (fun () ->
      ignore (Fiber.Config.make ~domains:1 ~preempt_interval:(-0.001) ()));
  Alcotest.check_raises "zero recorder_capacity"
    (Invalid_argument "Config: recorder_capacity = 0 (must be positive)")
    (fun () -> ignore (Fiber.Config.make ~domains:1 ~recorder_capacity:0 ()));
  Alcotest.check_raises "empty subpools"
    (Invalid_argument "Config: subpools = [] (must be non-empty)") (fun () ->
      ignore (Fiber.Config.make ~domains:1 ~subpools:[] ()));
  Alcotest.check_raises "empty sub-pool name"
    (Invalid_argument "Config: subpool.name = \"\" (must be non-empty)")
    (fun () ->
      ignore
        (Fiber.Config.make ~domains:1
           ~subpools:[ sp ~name:"" ~workers:[ 0 ] () ]
           ()));
  Alcotest.check_raises "duplicate sub-pool name"
    (Invalid_argument "Config: subpool.name = \"a\" (must be unique)")
    (fun () ->
      ignore
        (Fiber.Config.make ~domains:2
           ~subpools:[ sp ~name:"a" ~workers:[ 0 ] (); sp ~name:"a" ~workers:[ 1 ] () ]
           ()));
  Alcotest.check_raises "empty worker list"
    (Invalid_argument "Config: subpools[a].workers = [] (must be non-empty)")
    (fun () ->
      ignore
        (Fiber.Config.make ~domains:1 ~subpools:[ sp ~name:"a" ~workers:[] () ] ()));
  Alcotest.check_raises "worker out of range"
    (Invalid_argument
       "Config: subpools[a].workers = 2 (must be within 0..1 (domains = 2))")
    (fun () ->
      ignore
        (Fiber.Config.make ~domains:2
           ~subpools:[ sp ~name:"a" ~workers:[ 0; 1; 2 ] () ]
           ()));
  Alcotest.check_raises "overlapping sub-pools"
    (Invalid_argument
       "Config: subpools[b].workers = 0 (must be pinned to exactly one \
        sub-pool)") (fun () ->
      ignore
        (Fiber.Config.make ~domains:2
           ~subpools:
             [ sp ~name:"a" ~workers:[ 0; 1 ] (); sp ~name:"b" ~workers:[ 0 ] () ]
           ()));
  Alcotest.check_raises "unpinned worker"
    (Invalid_argument
       "Config: subpools = {a} (must be a partition of workers 0..1: worker 1 \
        is unpinned)") (fun () ->
      ignore
        (Fiber.Config.make ~domains:2 ~subpools:[ sp ~name:"a" ~workers:[ 0 ] () ] ()))

(* The adaptive-quantum knobs speak the same contract: bounds must be
   sane even when merely latent on a non-adaptive pool, and [adaptive]
   is meaningless without a base [preempt_interval] to adapt. *)
let test_fiber_quantum_config_validation () =
  Alcotest.check_raises "zero quantum_min"
    (Invalid_argument "Config: quantum_min = 0 (must be positive)") (fun () ->
      ignore
        (Fiber.Config.make ~domains:1 ~preempt_interval:1e-3 ~quantum_min:0.0 ()));
  Alcotest.check_raises "negative quantum_max"
    (Invalid_argument "Config: quantum_max = -0.002 (must be positive)")
    (fun () ->
      ignore
        (Fiber.Config.make ~domains:1 ~preempt_interval:1e-3
           ~quantum_max:(-0.002) ()));
  Alcotest.check_raises "inverted quantum bounds"
    (Invalid_argument
       "Config: quantum_min = 0.003 (must be <= quantum_max (0.002))")
    (fun () ->
      ignore
        (Fiber.Config.make ~domains:1 ~preempt_interval:1e-3 ~quantum_min:0.003
           ~quantum_max:0.002 ()));
  Alcotest.check_raises "adaptive without a base interval"
    (Invalid_argument
       "Config: adaptive = true (must be combined with preempt_interval)")
    (fun () -> ignore (Fiber.Config.make ~domains:1 ~adaptive:true ()))

(* The deprecated [Fiber.create] shim still builds a working pool — one
   "default" sub-pool spanning every worker under the work-stealing
   scheduler — so historical call sites compile and run unchanged. *)
let test_fiber_create_shim () =
  let pool = Fiber.create ~domains:2 () in
  Alcotest.(check (list string)) "one default sub-pool" [ "default" ]
    (Fiber.subpools pool);
  Alcotest.(check bool) "shim pools are never adaptive" false
    (Fiber.adaptive pool);
  Alcotest.(check int) "domains" 2 (Fiber.domains pool);
  let v = Fiber.run pool (fun () -> Fiber.await (Fiber.spawn (fun () -> 41 + 1))) in
  Alcotest.(check int) "shim pool runs" 42 v;
  (match Fiber.stats pool with
  | [ st ] ->
      Alcotest.(check string) "ws scheduler" "ws" st.Fiber.st_sched;
      Alcotest.(check int) "both workers" 2 st.Fiber.st_workers
  | sts -> Alcotest.fail (Printf.sprintf "%d stats rows, expected 1" (List.length sts)));
  Fiber.shutdown pool;
  (* [?preempt_interval] through the shim still means a fixed-interval
     pool: non-adaptive, every worker's quantum pinned at the
     interval. *)
  let pool = Fiber.create ~domains:2 ~preempt_interval:1e-3 () in
  Alcotest.(check bool) "preempting shim pool stays non-adaptive" false
    (Fiber.adaptive pool);
  (match Fiber.stats pool with
  | [ st ] ->
      Alcotest.(check int) "quantum per member" 2
        (List.length st.Fiber.st_quanta);
      List.iter
        (fun (_, q) ->
          Alcotest.(check (float 0.0)) "quantum pinned at the interval" 1e-3 q)
        st.Fiber.st_quanta
  | sts -> Alcotest.fail (Printf.sprintf "%d stats rows, expected 1" (List.length sts)));
  Fiber.shutdown pool

(* Abt.init no longer hard-codes per-worker-aligned timers. *)
let test_abt_init_strategies () =
  let eng = Engine.create () in
  let kernel = Kernel.create eng (Machine.with_cores Machine.skylake 2) in
  let rt =
    Abt.init ~preemption:1e-3 ~timer_strategy:Config.Per_process_chain
      ~suspend_mode:Config.Sigsuspend kernel ~num_xstreams:2 ()
  in
  Alcotest.(check (float 0.0)) "interval" 1e-3 (Runtime.preemption_interval rt);
  let t = Abt.thread_create rt ~kind:Abt.Preemptive_signal_yield (fun () -> Abt.work 3e-3) in
  ignore t;
  Engine.run eng;
  Alcotest.(check bool) "chain strategy preempts" true (Runtime.preempt_signals rt > 0);
  Alcotest.check_raises "invalid via Config.make"
    (Invalid_argument "Config: interval = nan (must be positive)") (fun () ->
      ignore (Abt.init ~preemption:Float.nan kernel ~num_xstreams:1 ()))

let suite =
  [
    Alcotest.test_case "pp machine/cpuset" `Quick test_pp_machine_cpuset;
    Alcotest.test_case "pp stats" `Quick test_pp_stats;
    Alcotest.test_case "exputil formats" `Quick test_exputil_formats;
    Alcotest.test_case "set_preemption_interval guard" `Quick test_set_preemption_interval_guard;
    Alcotest.test_case "runtime create guards" `Quick test_runtime_create_guards;
    Alcotest.test_case "double start rejected" `Quick test_double_start_rejected;
    Alcotest.test_case "ult accessors" `Quick test_ult_accessors;
    Alcotest.test_case "kernel accessors" `Quick test_kernel_accessors;
    Alcotest.test_case "with_cores preserves costs" `Quick test_machine_with_cores_preserves_costs;
    Alcotest.test_case "Config.make validation" `Quick test_config_make_validation;
    Alcotest.test_case "Config errors name field and value" `Quick
      test_config_errors_uniform_shape;
    Alcotest.test_case "Config.make defaults" `Quick test_config_make_defaults;
    Alcotest.test_case "metrics naming unified" `Quick test_config_metrics_alias;
    Alcotest.test_case "Runtime.create validates config" `Quick test_runtime_create_validates_config;
    Alcotest.test_case "Abt.init strategy/suspend knobs" `Quick test_abt_init_strategies;
    Alcotest.test_case "Fiber.Config validation shape" `Quick
      test_fiber_config_validation;
    Alcotest.test_case "Fiber.Config quantum knobs" `Quick
      test_fiber_quantum_config_validation;
    Alcotest.test_case "Fiber.create shim" `Quick test_fiber_create_shim;
  ]
