(* The checker checking itself: DFS completeness on a toy program with
   a known interleaving count, seeded regressions that must be caught
   within their committed budgets, deterministic replay of shrunk
   counterexamples, and the trail/strategy plumbing. *)

open Desim

let violation_of name (r : Check.report) =
  match r.Check.result with
  | `Violation cx -> cx
  | `Ok -> Alcotest.failf "%s: expected a violation, got none" name

let assert_ok name (r : Check.report) =
  match r.Check.result with
  | `Ok -> ()
  | `Violation cx -> Alcotest.failf "%s:\n%s" name (Check.describe cx)

(* ------------------------------------------------------------------ *)
(* DFS completeness: two processes, each "mark; delay 0; mark", give
   exactly C(4,2) = 6 interleavings of aabb.  DFS must enumerate every
   one exactly once and then report the space exhausted. *)

let toy_prog orders env =
  let order = Buffer.create 4 in
  let proc name () =
    Buffer.add_string order name;
    Engine.delay 0.0;
    Buffer.add_string order name
  in
  Engine.spawn env.Check.eng "A" (proc "a");
  Engine.spawn env.Check.eng "B" (proc "b");
  Check.program ~oracle:(fun () -> orders := Buffer.contents order :: !orders) ()

let test_dfs_enumerates_toy () =
  let orders = ref [] in
  let r = Check.run ~budget:100 ~strategy:Check.Dfs (toy_prog orders) in
  assert_ok "toy program" r;
  Alcotest.(check bool) "space exhausted" true r.Check.exhausted;
  Alcotest.(check int) "six schedules run" 6 r.Check.schedules;
  let seen = List.sort compare !orders in
  Alcotest.(check (list string)) "every interleaving exactly once"
    [ "aabb"; "abab"; "abba"; "baab"; "baba"; "bbaa" ]
    seen

let test_dfs_is_deterministic () =
  let once () =
    let orders = ref [] in
    ignore (Check.run ~budget:100 ~strategy:Check.Dfs (toy_prog orders));
    !orders
  in
  Alcotest.(check (list string)) "same enumeration order" (once ()) (once ())

(* Random walk on the same toy: every schedule is legal, none crashes,
   and distinct seeds reach more than one interleaving. *)
let test_random_walk_toy () =
  let orders = ref [] in
  let r =
    Check.run ~seed:13 ~budget:40 ~strategy:Check.Random_walk (toy_prog orders)
  in
  assert_ok "toy program" r;
  Alcotest.(check int) "all schedules run" 40 r.Check.schedules;
  let distinct = List.sort_uniq compare !orders in
  Alcotest.(check bool) "explored more than one interleaving" true
    (List.length distinct > 1);
  List.iter
    (fun o ->
      if not (List.mem o [ "aabb"; "abab"; "abba"; "baab"; "baba"; "bbaa" ])
      then Alcotest.failf "illegal interleaving %S" o)
    distinct

(* PCT keeps the default schedule when d = 0 and diverges for d > 0. *)
let test_pct_depth_zero_is_default () =
  let orders = ref [] in
  let r = Check.run ~budget:5 ~strategy:(Check.Pct 0) (toy_prog orders) in
  assert_ok "toy program" r;
  (* "abab": each [delay 0.] re-posts behind the already-queued peer,
     so the default tie-break alternates the two processes. *)
  Alcotest.(check (list string)) "always the default interleaving"
    [ "abab"; "abab"; "abab"; "abab"; "abab" ]
    !orders

let scenario name =
  match Check.Scenarios.find name with
  | Some s -> s
  | None -> Alcotest.failf "scenario %S missing from registry" name

(* ------------------------------------------------------------------ *)
(* DPOR: on a *labeled* variant of the toy, partial-order reduction
   must reach the same verdicts as plain DFS while exploring strictly
   fewer schedules.  A's first step and B's second step share footprint
   "s" (the only dependent pair); every other step touches a private
   atom.  The 6 interleavings therefore collapse to 2 Mazurkiewicz
   traces: A1 before B2 (5 interleavings) and B2 before A1 (only
   "bbaa"). *)

let labeled_toy ?(violating = false) orders env =
  let order = Buffer.create 4 in
  let step name = Buffer.add_string order name in
  Engine.spawn ~footprint:"s" env.Check.eng "A" (fun () ->
      step "a";
      Engine.set_footprint "pa";
      Engine.delay 0.0;
      step "a");
  Engine.spawn ~footprint:"pb" env.Check.eng "B" (fun () ->
      step "b";
      Engine.set_footprint "s";
      Engine.delay 0.0;
      step "b");
  Check.program
    ~oracle:(fun () ->
      let o = Buffer.contents order in
      orders := o :: !orders;
      if violating && o = "bbaa" then
        Check.violate "B overtook A's first step")
    ()

let test_dpor_explores_fewer_schedules_than_dfs () =
  let o_dfs = ref [] and o_dpor = ref [] in
  let dfs = Check.run ~budget:100 ~strategy:Check.Dfs (labeled_toy o_dfs) in
  let dpor = Check.run ~budget:100 ~strategy:Check.Dpor (labeled_toy o_dpor) in
  assert_ok "dfs" dfs;
  assert_ok "dpor" dpor;
  Alcotest.(check bool) "dfs exhausted" true dfs.Check.exhausted;
  Alcotest.(check bool) "dpor exhausted" true dpor.Check.exhausted;
  Alcotest.(check int) "dfs explores all six" 6 dfs.Check.schedules;
  Alcotest.(check int) "dpor explores one per trace" 2 dpor.Check.schedules;
  (* The two representatives must come from distinct traces. *)
  let classes =
    List.sort_uniq compare (List.map (fun o -> o = "bbaa") !o_dpor)
  in
  Alcotest.(check int) "both Mazurkiewicz classes covered" 2
    (List.length classes)

let test_dpor_finds_the_dfs_violation () =
  let o1 = ref [] and o2 = ref [] in
  let dfs =
    Check.run ~budget:100 ~strategy:Check.Dfs
      (labeled_toy ~violating:true o1)
  in
  let dpor =
    Check.run ~budget:100 ~strategy:Check.Dpor
      (labeled_toy ~violating:true o2)
  in
  let cd = violation_of "dfs" dfs in
  let cp = violation_of "dpor" dpor in
  Alcotest.(check string) "same violation" cd.Check.cx_message
    cp.Check.cx_message;
  Alcotest.(check bool) "dpor needed strictly fewer schedules" true
    (dpor.Check.schedules < dfs.Check.schedules)

(* Three writers on disjoint footprints (two labeled steps each): all
   90 interleavings are equivalent, so DPOR must run exactly the
   default schedule and stop — nothing pruned, space exhausted. *)
let test_dpor_collapses_independent_writers () =
  let prog env =
    for p = 0 to 2 do
      let cell = ref 0 in
      Engine.spawn
        ~footprint:(Printf.sprintf "p%d" p)
        env.Check.eng
        (Printf.sprintf "W%d" p)
        (fun () ->
          incr cell;
          Engine.delay 0.0;
          incr cell)
    done;
    Check.program ()
  in
  let r = Check.run ~budget:100 ~strategy:Check.Dpor prog in
  assert_ok "independent writers" r;
  Alcotest.(check bool) "exhausted" true r.Check.exhausted;
  Alcotest.(check int) "single representative schedule" 1 r.Check.schedules;
  Alcotest.(check int) "nothing pruned" 0 r.Check.pruned

(* The registry's dpor-writers program has 12 events in 4 processes =
   12!/(3!)^4 = 369,600 plain interleavings; DPOR must exhaust the
   space within its committed budget, well under 10% of that. *)
let test_dpor_writers_scenario_exhausts () =
  let s = scenario "dpor-writers" in
  (match s.Check.Scenarios.sstrategy with
  | Some Check.Dpor -> ()
  | _ -> Alcotest.fail "dpor-writers must be registered for Dpor");
  let r =
    Check.run ~seed:1 ~budget:s.Check.Scenarios.sbudget ~strategy:Check.Dpor
      s.Check.Scenarios.prog
  in
  assert_ok "dpor-writers" r;
  Alcotest.(check bool) "space exhausted" true r.Check.exhausted;
  Alcotest.(check bool) "within the committed budget" true
    (r.Check.schedules <= s.Check.Scenarios.sbudget);
  Alcotest.(check bool) "at most 10% of the 369,600 plain interleavings"
    true
    (r.Check.schedules * 10 <= 369_600)

(* ------------------------------------------------------------------ *)
(* Parallel exploration: the counterexample must not depend on how many
   domains scanned the seed space. *)

let test_jobs_determinism () =
  let s = scenario "racy-flag" in
  let go jobs =
    Check.run ~seed:1 ~jobs ~faults:s.Check.Scenarios.sfaults
      ~budget:s.Check.Scenarios.sbudget ~strategy:Check.Random_walk
      s.Check.Scenarios.prog
  in
  let r1 = go 1 and r4 = go 4 in
  let c1 = violation_of "jobs=1" r1 in
  let c4 = violation_of "jobs=4" r4 in
  Alcotest.(check int) "same failing schedule" c1.Check.cx_schedule
    c4.Check.cx_schedule;
  Alcotest.(check string) "same message" c1.Check.cx_message
    c4.Check.cx_message;
  Alcotest.(check string) "same shrunk trail"
    (Check.Trail.signature c1.Check.cx_trail)
    (Check.Trail.signature c4.Check.cx_trail);
  Alcotest.(check int) "same schedule count" r1.Check.schedules
    r4.Check.schedules

(* ------------------------------------------------------------------ *)
(* Seeded regressions over the scenario registry: the committed budgets
   in Scenarios.all must suffice, the shrunk counterexample must be
   small, and replaying it must deterministically reproduce the same
   violation. *)

let run_scenario (s : Check.Scenarios.t) =
  Check.run ~seed:1 ~faults:s.Check.Scenarios.sfaults
    ~budget:s.Check.Scenarios.sbudget ~strategy:Check.Random_walk
    s.Check.Scenarios.prog

let test_deadlock_caught_and_shrunk () =
  let s = scenario "deadlock" in
  let cx = violation_of "deadlock" (run_scenario s) in
  Alcotest.(check bool) "reported as deadlock" true
    (Astring_contains.contains cx.Check.cx_message "deadlock");
  Alcotest.(check bool) "names both threads" true
    (Astring_contains.contains cx.Check.cx_message "lock-ab"
    && Astring_contains.contains cx.Check.cx_message "lock-ba");
  (* The AB/BA inversion deadlocks even in the default schedule, so
     greedy shrinking must drive every forced pick back to 0. *)
  Alcotest.(check int) "shrunk to the default schedule" 0
    (Check.Trail.forced cx.Check.cx_trail)

let test_deadlock_replay_is_deterministic () =
  let s = scenario "deadlock" in
  let cx = violation_of "first run" (run_scenario s) in
  (* Same (seed, strategy, budget) triple: identical counterexample. *)
  let cx' = violation_of "second run" (run_scenario s) in
  Alcotest.(check string) "same message" cx.Check.cx_message
    cx'.Check.cx_message;
  Alcotest.(check int) "same failing schedule" cx.Check.cx_schedule
    cx'.Check.cx_schedule;
  Alcotest.(check string) "same shrunk trail"
    (Check.Trail.signature cx.Check.cx_trail)
    (Check.Trail.signature cx'.Check.cx_trail);
  (* Replaying the shrunk trail reproduces the violation. *)
  let rep = Check.replay cx s.Check.Scenarios.prog in
  let cxr = violation_of "trail replay" rep in
  Alcotest.(check string) "replay reproduces the message" cx.Check.cx_message
    cxr.Check.cx_message

let test_lost_wakeup_caught () =
  let s = scenario "lost-wakeup" in
  let cx = violation_of "lost-wakeup" (run_scenario s) in
  Alcotest.(check bool) "waiter is stuck" true
    (Astring_contains.contains cx.Check.cx_message "waiter");
  (* The bug needs a worker stall: the shrunk schedule keeps at least
     one forced pick, and replaying it still deadlocks. *)
  Alcotest.(check bool) "shrunk schedule still forces choices" true
    (Check.Trail.forced cx.Check.cx_trail > 0);
  let cxr =
    violation_of "trail replay" (Check.replay cx s.Check.Scenarios.prog)
  in
  Alcotest.(check string) "deterministic replay" cx.Check.cx_message
    cxr.Check.cx_message

let test_racy_flag_caught () =
  let s = scenario "racy-flag" in
  let cx = violation_of "racy-flag" (run_scenario s) in
  Alcotest.(check bool) "mutual-exclusion violation" true
    (Astring_contains.contains cx.Check.cx_message "mutual exclusion")

let test_pass_scenarios_pass () =
  List.iter
    (fun (s : Check.Scenarios.t) ->
      if s.Check.Scenarios.expect = Check.Scenarios.Pass then
        assert_ok s.Check.Scenarios.sname (run_scenario s))
    Check.Scenarios.all

(* Each seeded broken lock variant must be caught within its committed
   budget, deterministically (same run twice = same shrunk trail), and
   replaying the shrunk trail must reproduce the same violation. *)
let test_lock_regressions_caught () =
  List.iter
    (fun (name, needle) ->
      let s = scenario name in
      let cx = violation_of name (run_scenario s) in
      if not (Astring_contains.contains cx.Check.cx_message needle) then
        Alcotest.failf "%s: %S does not mention %S" name cx.Check.cx_message
          needle;
      let cx' = violation_of (name ^ " rerun") (run_scenario s) in
      Alcotest.(check string) (name ^ ": deterministic message")
        cx.Check.cx_message cx'.Check.cx_message;
      Alcotest.(check string) (name ^ ": deterministic shrunk trail")
        (Check.Trail.signature cx.Check.cx_trail)
        (Check.Trail.signature cx'.Check.cx_trail);
      let cxr =
        violation_of (name ^ " replay")
          (Check.replay cx s.Check.Scenarios.prog)
      in
      Alcotest.(check string) (name ^ ": replay reproduces the violation")
        cx.Check.cx_message cxr.Check.cx_message)
    [
      ("ticket-unfair", "lost wakeup");
      ("ttas-racy", "mutual exclusion");
      ("mcs-drop", "deadlock");
    ]

(* ------------------------------------------------------------------ *)
(* Plumbing: trails, oracles, controller validation. *)

let test_trail_summary () =
  let t =
    [|
      { Check.Trail.tag = "engine.tie"; n = 3; picked = 0 };
      { Check.Trail.tag = "steal.victim"; n = 2; picked = 1 };
      { Check.Trail.tag = "engine.tie"; n = 2; picked = 0 };
    |]
  in
  Alcotest.(check int) "forced" 1 (Check.Trail.forced t);
  Alcotest.(check int) "length" 3 (Check.Trail.length t);
  Alcotest.(check bool) "summary names the forced pick" true
    (Astring_contains.contains (Check.Trail.to_string t) "steal.victim = 1/2");
  Alcotest.(check string) "signature" "0.1.0." (Check.Trail.signature t)

let test_excl_monitor () =
  let e = Check.Excl.create "crit" in
  Check.Excl.enter e;
  Check.Excl.leave e;
  Check.Excl.critical e (fun () -> ());
  Alcotest.(check int) "entries counted" 2 (Check.Excl.entries e);
  Check.Excl.enter e;
  Alcotest.check_raises "second entrant trips the monitor"
    (Check.Violation "mutual exclusion violated: 2 threads inside crit")
    (fun () -> Check.Excl.enter e)

let test_choice_validates_picks () =
  let c = Choice.create ~choose:(fun ~n:_ ~tag:_ ~alts:_ -> 7) () in
  Alcotest.check_raises "out-of-range pick rejected"
    (Invalid_argument "Choice: x picked 7 of 3") (fun () ->
      ignore (Choice.pick c ~n:3 ~tag:"x"))

let test_fifo_oracle () =
  let ok = Check.Fifo.create "q" in
  Check.Fifo.arrived ok 1;
  Check.Fifo.arrived ok 2;
  Check.Fifo.granted ok 1;
  Check.Fifo.granted ok 2;
  Check.Fifo.check ok;
  let bad = Check.Fifo.create "q" in
  Check.Fifo.arrived bad 1;
  Check.Fifo.arrived bad 2;
  Check.Fifo.granted bad 2;
  Check.Fifo.granted bad 1;
  match Check.Fifo.check bad with
  | () -> Alcotest.fail "out-of-order grant not reported"
  | exception Check.Violation m ->
      Alcotest.(check bool) "names the fairness break" true
        (Astring_contains.contains m "FIFO fairness violated")

(* Shrinker cost pins: the replay functions below are synthetic, so the
   exact number of replays the shrinker spends is deterministic and
   guards the early-exit paths (phase 2 skipped when nothing is forced;
   chunk loop stops once a full pass attempts no candidate). *)

let entry picked = { Check.Trail.tag = "engine.tie"; n = 2; picked }

let test_shrink_skips_phase2_when_nothing_forced () =
  let trail = Array.make 8 (entry 0) in
  let calls = ref 0 in
  let replay _ =
    incr calls;
    None
  in
  let best, _, attempts = Check.shrink ~replay ~max_replays:100 trail "boom" in
  (* Binary search for the shortest failing prefix costs 3 replays on a
     length-8 trail; an all-defaults trail must not enter phase 2. *)
  Alcotest.(check int) "exactly the phase-1 replays" 3 attempts;
  Alcotest.(check int) "replay called once per attempt" 3 !calls;
  Alcotest.(check int) "trail kept" 8 (Check.Trail.length best)

let test_shrink_stops_once_zeroed () =
  let trail = Array.init 8 (fun i -> entry (if i = 0 then 1 else 0)) in
  (* Prefixes never reproduce; the full-length trail always does. *)
  let replay cand =
    if Check.Trail.length cand < 8 then None else Some (cand, "boom")
  in
  let best, msg, attempts =
    Check.shrink ~replay ~max_replays:100 trail "boom"
  in
  (* 3 failed prefix probes + 1 successful chunk zeroing; once the
     trail is all-defaults the remaining chunk sizes attempt nothing
     and the loop must stop instead of replaying identical trails. *)
  Alcotest.(check int) "phase-1 + one zeroing replay" 4 attempts;
  Alcotest.(check int) "fully zeroed" 0 (Check.Trail.forced best);
  Alcotest.(check string) "message kept" "boom" msg

let test_shrink_worst_case_cost () =
  let trail = Array.make 8 (entry 1) in
  let replay _ = None in
  let _, _, attempts = Check.shrink ~replay ~max_replays:100 trail "boom" in
  (* 3 prefix probes, then chunk passes at sizes 4 (2), 2 (4), 1 (8):
     every range holds a forced pick, so every candidate is attempted. *)
  Alcotest.(check int) "bounded worst case" 17 attempts

let test_registry_names_sorted () =
  let names = Check.Scenarios.names () in
  Alcotest.(check (list string)) "names are sorted"
    (List.sort compare names) names;
  List.iter
    (fun n ->
      if not (List.mem n names) then
        Alcotest.failf "scenario %S missing from the registry" n)
    [
      "ticket-lock";
      "ticket-unfair";
      "ttas-lock";
      "ttas-racy";
      "mcs-lock";
      "mcs-drop";
      "dpor-writers";
    ];
  Alcotest.(check int) "lock tag groups the ulock suite" 6
    (List.length (Check.Scenarios.find_tag "lock"))

let test_run_rejects_bad_budget () =
  Alcotest.check_raises "budget must be positive"
    (Invalid_argument "Check.run: budget must be positive") (fun () ->
      ignore
        (Check.run ~budget:0 ~strategy:Check.Random_walk (fun _ ->
             Check.program ())))

let suite =
  [
    Alcotest.test_case "DFS enumerates the toy space" `Quick
      test_dfs_enumerates_toy;
    Alcotest.test_case "DFS is deterministic" `Quick test_dfs_is_deterministic;
    Alcotest.test_case "random walk stays legal" `Quick test_random_walk_toy;
    Alcotest.test_case "PCT depth 0 is the default schedule" `Quick
      test_pct_depth_zero_is_default;
    Alcotest.test_case "DPOR explores fewer schedules than DFS" `Quick
      test_dpor_explores_fewer_schedules_than_dfs;
    Alcotest.test_case "DPOR finds the DFS violation" `Quick
      test_dpor_finds_the_dfs_violation;
    Alcotest.test_case "DPOR collapses independent writers" `Quick
      test_dpor_collapses_independent_writers;
    Alcotest.test_case "dpor-writers scenario exhausts" `Quick
      test_dpor_writers_scenario_exhausts;
    Alcotest.test_case "jobs=1 and jobs=4 agree" `Quick test_jobs_determinism;
    Alcotest.test_case "deadlock caught and shrunk" `Quick
      test_deadlock_caught_and_shrunk;
    Alcotest.test_case "deadlock replay deterministic" `Quick
      test_deadlock_replay_is_deterministic;
    Alcotest.test_case "lost wakeup caught" `Quick test_lost_wakeup_caught;
    Alcotest.test_case "racy flag caught" `Quick test_racy_flag_caught;
    Alcotest.test_case "pass scenarios pass" `Quick test_pass_scenarios_pass;
    Alcotest.test_case "lock regressions caught" `Quick
      test_lock_regressions_caught;
    Alcotest.test_case "trail summary" `Quick test_trail_summary;
    Alcotest.test_case "excl monitor" `Quick test_excl_monitor;
    Alcotest.test_case "fifo oracle" `Quick test_fifo_oracle;
    Alcotest.test_case "shrink skips phase 2 when nothing forced" `Quick
      test_shrink_skips_phase2_when_nothing_forced;
    Alcotest.test_case "shrink stops once zeroed" `Quick
      test_shrink_stops_once_zeroed;
    Alcotest.test_case "shrink worst-case cost" `Quick
      test_shrink_worst_case_cost;
    Alcotest.test_case "registry names sorted" `Quick
      test_registry_names_sorted;
    Alcotest.test_case "choice validates picks" `Quick
      test_choice_validates_picks;
    Alcotest.test_case "run rejects bad budget" `Quick
      test_run_rejects_bad_budget;
  ]
