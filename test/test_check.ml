(* The checker checking itself: DFS completeness on a toy program with
   a known interleaving count, seeded regressions that must be caught
   within their committed budgets, deterministic replay of shrunk
   counterexamples, and the trail/strategy plumbing. *)

open Desim

let violation_of name (r : Check.report) =
  match r.Check.result with
  | `Violation cx -> cx
  | `Ok -> Alcotest.failf "%s: expected a violation, got none" name

let assert_ok name (r : Check.report) =
  match r.Check.result with
  | `Ok -> ()
  | `Violation cx -> Alcotest.failf "%s:\n%s" name (Check.describe cx)

(* ------------------------------------------------------------------ *)
(* DFS completeness: two processes, each "mark; delay 0; mark", give
   exactly C(4,2) = 6 interleavings of aabb.  DFS must enumerate every
   one exactly once and then report the space exhausted. *)

let toy_prog orders env =
  let order = Buffer.create 4 in
  let proc name () =
    Buffer.add_string order name;
    Engine.delay 0.0;
    Buffer.add_string order name
  in
  Engine.spawn env.Check.eng "A" (proc "a");
  Engine.spawn env.Check.eng "B" (proc "b");
  Check.program ~oracle:(fun () -> orders := Buffer.contents order :: !orders) ()

let test_dfs_enumerates_toy () =
  let orders = ref [] in
  let r = Check.run ~budget:100 ~strategy:Check.Dfs (toy_prog orders) in
  assert_ok "toy program" r;
  Alcotest.(check bool) "space exhausted" true r.Check.exhausted;
  Alcotest.(check int) "six schedules run" 6 r.Check.schedules;
  let seen = List.sort compare !orders in
  Alcotest.(check (list string)) "every interleaving exactly once"
    [ "aabb"; "abab"; "abba"; "baab"; "baba"; "bbaa" ]
    seen

let test_dfs_is_deterministic () =
  let once () =
    let orders = ref [] in
    ignore (Check.run ~budget:100 ~strategy:Check.Dfs (toy_prog orders));
    !orders
  in
  Alcotest.(check (list string)) "same enumeration order" (once ()) (once ())

(* Random walk on the same toy: every schedule is legal, none crashes,
   and distinct seeds reach more than one interleaving. *)
let test_random_walk_toy () =
  let orders = ref [] in
  let r =
    Check.run ~seed:13 ~budget:40 ~strategy:Check.Random_walk (toy_prog orders)
  in
  assert_ok "toy program" r;
  Alcotest.(check int) "all schedules run" 40 r.Check.schedules;
  let distinct = List.sort_uniq compare !orders in
  Alcotest.(check bool) "explored more than one interleaving" true
    (List.length distinct > 1);
  List.iter
    (fun o ->
      if not (List.mem o [ "aabb"; "abab"; "abba"; "baab"; "baba"; "bbaa" ])
      then Alcotest.failf "illegal interleaving %S" o)
    distinct

(* PCT keeps the default schedule when d = 0 and diverges for d > 0. *)
let test_pct_depth_zero_is_default () =
  let orders = ref [] in
  let r = Check.run ~budget:5 ~strategy:(Check.Pct 0) (toy_prog orders) in
  assert_ok "toy program" r;
  (* "abab": each [delay 0.] re-posts behind the already-queued peer,
     so the default tie-break alternates the two processes. *)
  Alcotest.(check (list string)) "always the default interleaving"
    [ "abab"; "abab"; "abab"; "abab"; "abab" ]
    !orders

(* ------------------------------------------------------------------ *)
(* Seeded regressions over the scenario registry: the committed budgets
   in Scenarios.all must suffice, the shrunk counterexample must be
   small, and replaying it must deterministically reproduce the same
   violation. *)

let scenario name =
  match Check.Scenarios.find name with
  | Some s -> s
  | None -> Alcotest.failf "scenario %S missing from registry" name

let run_scenario (s : Check.Scenarios.t) =
  Check.run ~seed:1 ~faults:s.Check.Scenarios.sfaults
    ~budget:s.Check.Scenarios.sbudget ~strategy:Check.Random_walk
    s.Check.Scenarios.prog

let test_deadlock_caught_and_shrunk () =
  let s = scenario "deadlock" in
  let cx = violation_of "deadlock" (run_scenario s) in
  Alcotest.(check bool) "reported as deadlock" true
    (Astring_contains.contains cx.Check.cx_message "deadlock");
  Alcotest.(check bool) "names both threads" true
    (Astring_contains.contains cx.Check.cx_message "lock-ab"
    && Astring_contains.contains cx.Check.cx_message "lock-ba");
  (* The AB/BA inversion deadlocks even in the default schedule, so
     greedy shrinking must drive every forced pick back to 0. *)
  Alcotest.(check int) "shrunk to the default schedule" 0
    (Check.Trail.forced cx.Check.cx_trail)

let test_deadlock_replay_is_deterministic () =
  let s = scenario "deadlock" in
  let cx = violation_of "first run" (run_scenario s) in
  (* Same (seed, strategy, budget) triple: identical counterexample. *)
  let cx' = violation_of "second run" (run_scenario s) in
  Alcotest.(check string) "same message" cx.Check.cx_message
    cx'.Check.cx_message;
  Alcotest.(check int) "same failing schedule" cx.Check.cx_schedule
    cx'.Check.cx_schedule;
  Alcotest.(check string) "same shrunk trail"
    (Check.Trail.signature cx.Check.cx_trail)
    (Check.Trail.signature cx'.Check.cx_trail);
  (* Replaying the shrunk trail reproduces the violation. *)
  let rep = Check.replay cx s.Check.Scenarios.prog in
  let cxr = violation_of "trail replay" rep in
  Alcotest.(check string) "replay reproduces the message" cx.Check.cx_message
    cxr.Check.cx_message

let test_lost_wakeup_caught () =
  let s = scenario "lost-wakeup" in
  let cx = violation_of "lost-wakeup" (run_scenario s) in
  Alcotest.(check bool) "waiter is stuck" true
    (Astring_contains.contains cx.Check.cx_message "waiter");
  (* The bug needs a worker stall: the shrunk schedule keeps at least
     one forced pick, and replaying it still deadlocks. *)
  Alcotest.(check bool) "shrunk schedule still forces choices" true
    (Check.Trail.forced cx.Check.cx_trail > 0);
  let cxr =
    violation_of "trail replay" (Check.replay cx s.Check.Scenarios.prog)
  in
  Alcotest.(check string) "deterministic replay" cx.Check.cx_message
    cxr.Check.cx_message

let test_racy_flag_caught () =
  let s = scenario "racy-flag" in
  let cx = violation_of "racy-flag" (run_scenario s) in
  Alcotest.(check bool) "mutual-exclusion violation" true
    (Astring_contains.contains cx.Check.cx_message "mutual exclusion")

let test_pass_scenarios_pass () =
  List.iter
    (fun (s : Check.Scenarios.t) ->
      if s.Check.Scenarios.expect = Check.Scenarios.Pass then
        assert_ok s.Check.Scenarios.sname (run_scenario s))
    Check.Scenarios.all

(* ------------------------------------------------------------------ *)
(* Plumbing: trails, oracles, controller validation. *)

let test_trail_summary () =
  let t =
    [|
      { Check.Trail.tag = "engine.tie"; n = 3; picked = 0 };
      { Check.Trail.tag = "steal.victim"; n = 2; picked = 1 };
      { Check.Trail.tag = "engine.tie"; n = 2; picked = 0 };
    |]
  in
  Alcotest.(check int) "forced" 1 (Check.Trail.forced t);
  Alcotest.(check int) "length" 3 (Check.Trail.length t);
  Alcotest.(check bool) "summary names the forced pick" true
    (Astring_contains.contains (Check.Trail.to_string t) "steal.victim = 1/2");
  Alcotest.(check string) "signature" "0.1.0." (Check.Trail.signature t)

let test_excl_monitor () =
  let e = Check.Excl.create "crit" in
  Check.Excl.enter e;
  Check.Excl.leave e;
  Check.Excl.critical e (fun () -> ());
  Alcotest.(check int) "entries counted" 2 (Check.Excl.entries e);
  Check.Excl.enter e;
  Alcotest.check_raises "second entrant trips the monitor"
    (Check.Violation "mutual exclusion violated: 2 threads inside crit")
    (fun () -> Check.Excl.enter e)

let test_choice_validates_picks () =
  let c = Choice.create ~choose:(fun ~n:_ ~tag:_ -> 7) () in
  Alcotest.check_raises "out-of-range pick rejected"
    (Invalid_argument "Choice: x picked 7 of 3") (fun () ->
      ignore (Choice.pick c ~n:3 ~tag:"x"))

let test_run_rejects_bad_budget () =
  Alcotest.check_raises "budget must be positive"
    (Invalid_argument "Check.run: budget must be positive") (fun () ->
      ignore
        (Check.run ~budget:0 ~strategy:Check.Random_walk (fun _ ->
             Check.program ())))

let suite =
  [
    Alcotest.test_case "DFS enumerates the toy space" `Quick
      test_dfs_enumerates_toy;
    Alcotest.test_case "DFS is deterministic" `Quick test_dfs_is_deterministic;
    Alcotest.test_case "random walk stays legal" `Quick test_random_walk_toy;
    Alcotest.test_case "PCT depth 0 is the default schedule" `Quick
      test_pct_depth_zero_is_default;
    Alcotest.test_case "deadlock caught and shrunk" `Quick
      test_deadlock_caught_and_shrunk;
    Alcotest.test_case "deadlock replay deterministic" `Quick
      test_deadlock_replay_is_deterministic;
    Alcotest.test_case "lost wakeup caught" `Quick test_lost_wakeup_caught;
    Alcotest.test_case "racy flag caught" `Quick test_racy_flag_caught;
    Alcotest.test_case "pass scenarios pass" `Quick test_pass_scenarios_pass;
    Alcotest.test_case "trail summary" `Quick test_trail_summary;
    Alcotest.test_case "excl monitor" `Quick test_excl_monitor;
    Alcotest.test_case "choice validates picks" `Quick
      test_choice_validates_picks;
    Alcotest.test_case "run rejects bad budget" `Quick
      test_run_rejects_bad_budget;
  ]
