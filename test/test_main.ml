let () =
  Alcotest.run "preempt"
    [
      ("heap", Test_heap.suite);
      ("rng", Test_rng.suite);
      ("stats", Test_stats.suite);
      ("engine", Test_engine.suite);
      ("sync", Test_sync.suite);
      ("resource", Test_resource.suite);
      ("cpuset", Test_cpuset.suite);
      ("kernel", Test_kernel.suite);
      ("kernel-edge", Test_kernel_edge.suite);
      ("dq", Test_dq.suite);
      ("runtime", Test_runtime.suite);
      ("schedulers", Test_schedulers.suite);
      ("omp", Test_omp.suite);
      ("matrix", Test_matrix.suite);
      ("tiled", Test_tiled.suite);
      ("lu", Test_lu.suite);
      ("multigrid", Test_grid.suite);
      ("multigrid-3d", Test_grid3d.suite);
      ("lj", Test_lj.suite);
      ("workloads", Test_workloads.suite);
      ("fiber", Test_fiber.suite);
      ("experiments", Test_experiments.suite);
      ("usync", Test_usync.suite);
      ("rt-policy", Test_rt_policy.suite);
      ("chart", Test_chart.suite);
      ("gantt", Test_gantt.suite);
      ("fsync", Test_fsync.suite);
      ("misc", Test_misc.suite);
      ("stress", Test_stress.suite);
      ("abt", Test_abt.suite);
      ("syscalls", Test_syscalls.suite);
      ("api-surface", Test_api_surface.suite);
      ("metrics", Test_metrics.suite);
      ("chrome-trace", Test_chrome_trace.suite);
    ]
