(* QCheck linearizability-style model test: Fiber.Deque — now a
   Chase–Lev lock-free ring with free-running atomic indices plus a
   CAS-swapped front segment for push_front — against a reference
   two-list functional deque, including wraparound of the indices,
   growth past the initial capacity (16), and the segment/ring boundary.
   Sequential use is exact (length included); the concurrent guarantees
   are exercised by test/fiber_smoke.ml under real domains. *)

(* Reference model: [front] head-first, [back] tail-first.  The owner
   end is the back, the thief end is the front. *)
type 'a model = { mutable front : 'a list; mutable back : 'a list }

let m_create () = { front = []; back = [] }

let m_push m x = m.back <- x :: m.back

let m_push_front m x = m.front <- x :: m.front

let m_pop m =
  match m.back with
  | x :: r ->
      m.back <- r;
      Some x
  | [] -> (
      match List.rev m.front with
      | [] -> None
      | x :: r ->
          m.front <- List.rev r;
          Some x)

let m_steal m =
  match m.front with
  | x :: r ->
      m.front <- r;
      Some x
  | [] -> (
      match List.rev m.back with
      | [] -> None
      | x :: r ->
          m.back <- List.rev r;
          Some x)

let m_length m = List.length m.front + List.length m.back

(* Sequential semantics of [steal_batch]: a front-segment element is
   returned alone (the segment is never batched); otherwise exactly
   [min max ((run+1)/2)] ring elements leave FIFO from the thief end —
   the first is the return value, the rest go to [spill] in order.
   Uncontended, the iterated per-element claims never fail, so the
   count is deterministic. *)
let m_steal_batch m ~max =
  if max <= 1 then (m_steal m, [])
  else
    match m.front with
    | x :: r ->
        m.front <- r;
        (Some x, [])
    | [] -> (
        match List.rev m.back with
        | [] -> (None, [])
        | ring ->
            let run = List.length ring in
            let want = min max ((run + 1) / 2) in
            let rec split k l =
              if k = 0 then ([], l)
              else
                match l with
                | [] -> ([], [])
                | x :: r ->
                    let a, b = split (k - 1) r in
                    (x :: a, b)
            in
            let taken, rest = split want ring in
            m.back <- List.rev rest;
            (Some (List.hd taken), List.tl taken))

type op = Push of int | Push_front of int | Pop | Steal | Steal_batch of int

let op_print = function
  | Push v -> Printf.sprintf "push %d" v
  | Push_front v -> Printf.sprintf "push_front %d" v
  | Pop -> "pop"
  | Steal -> "steal"
  | Steal_batch max -> Printf.sprintf "steal_batch %d" max

(* Push-biased op sequences so the live population regularly exceeds
   the initial capacity of 16 and the ring both grows and wraps. *)
let ops_arb =
  let open QCheck in
  let gen =
    Gen.(
      list_size (int_range 30 250)
        (frequency
           [
             (3, map (fun v -> Push v) small_nat);
             (2, map (fun v -> Push_front v) small_nat);
             (2, return Pop);
             (2, return Steal);
             (2, map (fun max -> Steal_batch max) (int_range 0 6));
           ]))
  in
  make ~print:(fun ops -> String.concat "; " (List.map op_print ops)) gen

let agree what step a b =
  if a <> b then
    QCheck.Test.fail_reportf "step %d: %s returned %s, model says %s" step what
      (match a with Some v -> string_of_int v | None -> "None")
      (match b with Some v -> string_of_int v | None -> "None")

let model_check =
  QCheck.Test.make ~name:"Fiber.Deque agrees with the two-list model"
    ~count:300 ops_arb (fun ops ->
      let d = Fiber.Deque.create () in
      let m = m_create () in
      List.iteri
        (fun step op ->
          (match op with
          | Push v ->
              Fiber.Deque.push d v;
              m_push m v
          | Push_front v ->
              Fiber.Deque.push_front d v;
              m_push_front m v
          | Pop -> agree "pop" step (Fiber.Deque.pop d) (m_pop m)
          | Steal -> agree "steal" step (Fiber.Deque.steal d) (m_steal m)
          | Steal_batch max ->
              let spilled = ref [] in
              let r =
                Fiber.Deque.steal_batch d ~max ~spill:(fun v ->
                    spilled := v :: !spilled)
              in
              let mr, mspill = m_steal_batch m ~max in
              agree "steal_batch first" step r mr;
              let spilled = List.rev !spilled in
              if spilled <> mspill then
                QCheck.Test.fail_reportf
                  "step %d: steal_batch %d spilled [%s], model says [%s]" step
                  max
                  (String.concat "; " (List.map string_of_int spilled))
                  (String.concat "; " (List.map string_of_int mspill)));
          if Fiber.Deque.length d <> m_length m then
            QCheck.Test.fail_reportf "step %d: length %d, model says %d" step
              (Fiber.Deque.length d) (m_length m))
        ops;
      (* Drain from alternating ends: contents must match element for
         element, not just in length. *)
      let i = ref 0 in
      while Fiber.Deque.length d > 0 || m_length m > 0 do
        if !i land 1 = 0 then agree "drain pop" !i (Fiber.Deque.pop d) (m_pop m)
        else agree "drain steal" !i (Fiber.Deque.steal d) (m_steal m);
        incr i
      done;
      true)

(* Free-running indices pass the capacity boundary many times while the
   live population stays below it: pure wraparound, no growth. *)
let test_wraparound_without_growth () =
  let d = Fiber.Deque.create () in
  let m = m_create () in
  for cycle = 0 to 9 do
    for k = 0 to 9 do
      let v = (cycle * 10) + k in
      Fiber.Deque.push d v;
      m_push m v
    done;
    for _ = 1 to 6 do
      Alcotest.(check (option int)) "pop" (m_pop m) (Fiber.Deque.pop d)
    done;
    for _ = 1 to 4 do
      Alcotest.(check (option int)) "steal" (m_steal m) (Fiber.Deque.steal d)
    done
  done;
  Alcotest.(check int) "drained" 0 (Fiber.Deque.length d)

(* Growth past the initial capacity: order must survive the resize. *)
let test_growth_past_capacity () =
  let d = Fiber.Deque.create () in
  for i = 0 to 99 do
    Fiber.Deque.push d i
  done;
  Alcotest.(check int) "all live" 100 (Fiber.Deque.length d);
  for i = 0 to 49 do
    Alcotest.(check (option int)) "steal FIFO" (Some i) (Fiber.Deque.steal d)
  done;
  for i = 99 downto 50 do
    Alcotest.(check (option int)) "pop LIFO" (Some i) (Fiber.Deque.pop d)
  done;
  Alcotest.(check (option int)) "pop empty" None (Fiber.Deque.pop d);
  Alcotest.(check (option int)) "steal empty" None (Fiber.Deque.steal d)

(* push_front interleaved with growth: the owner reaches a front-pushed
   element only after everything pushed at the back. *)
let test_push_front_ordering () =
  let d = Fiber.Deque.create () in
  Fiber.Deque.push_front d (-1);
  for i = 0 to 19 do
    Fiber.Deque.push d i
  done;
  Fiber.Deque.push_front d (-2);
  Alcotest.(check (option int)) "thief sees newest front" (Some (-2))
    (Fiber.Deque.steal d);
  Alcotest.(check (option int)) "then the older front" (Some (-1))
    (Fiber.Deque.steal d);
  for i = 19 downto 0 do
    Alcotest.(check (option int)) "owner pops back" (Some i)
      (Fiber.Deque.pop d)
  done;
  Alcotest.(check int) "empty" 0 (Fiber.Deque.length d)

(* Directed walk across the segment/ring boundary: the owner crosses
   from the ring into the front segment (oldest-first) and back, and
   thieves cross from the segment (newest-first) into the ring; both
   internal list reversals of the segment get exercised. *)
let test_segment_ring_boundary () =
  let d = Fiber.Deque.create () in
  let m = m_create () in
  let both_push v =
    Fiber.Deque.push d v;
    m_push m v
  and both_push_front v =
    Fiber.Deque.push_front d v;
    m_push_front m v
  in
  for v = 0 to 4 do
    both_push_front (100 + v)
  done;
  for v = 0 to 4 do
    both_push v
  done;
  (* Owner drains the ring, then continues into the segment: it must
     see 4,3,2,1,0 then the *oldest* front pushes 100,101,... *)
  for step = 0 to 6 do
    Alcotest.(check (option int))
      (Printf.sprintf "pop across boundary %d" step)
      (m_pop m) (Fiber.Deque.pop d)
  done;
  both_push_front 200;
  (* Thief: newest front first (200, then 104, 103, 102); the ring
     would follow if anything were left. *)
  for step = 0 to 3 do
    Alcotest.(check (option int))
      (Printf.sprintf "steal across boundary %d" step)
      (m_steal m) (Fiber.Deque.steal d)
  done;
  Alcotest.(check int) "drained" 0 (Fiber.Deque.length d);
  Alcotest.(check int) "model drained" 0 (m_length m)

(* The [length] snapshot must clamp its ring term: the owner's pop
   briefly publishes [bottom = top - 1] on the race-to-empty path, and a
   thief's CAS can advance [top] between the snapshot's two index reads
   — either way a raw [bottom - top] would go negative and drag the
   total below the (always non-negative) front-segment contribution.
   The owner here keeps the ring hovering around empty (one push, two
   pops) against a concurrent thief, so both windows are hit; a third
   domain samples [length] throughout.  fiber_smoke's deque stress
   samples the same invariant under heavier contention. *)
let test_length_never_negative () =
  let d = Fiber.Deque.create () in
  let stop = Atomic.make false in
  let bad = Atomic.make 0 in
  let sampler =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          if Fiber.Deque.length d < 0 then Atomic.incr bad
        done)
  in
  let thief =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          ignore (Fiber.Deque.steal d)
        done)
  in
  for round = 1 to 20_000 do
    Fiber.Deque.push d round;
    if round land 3 = 0 then Fiber.Deque.push_front d (-round);
    ignore (Fiber.Deque.pop d);
    ignore (Fiber.Deque.pop d)
  done;
  Atomic.set stop true;
  Domain.join sampler;
  Domain.join thief;
  Alcotest.(check int) "length never negative" 0 (Atomic.get bad);
  let rec drain () =
    match Fiber.Deque.pop d with Some _ -> drain () | None -> ()
  in
  drain ();
  Alcotest.(check int) "drained exact" 0 (Fiber.Deque.length d)

(* Directed steal_batch shapes: steal-half on a short run, the spill
   order on a long one, segment precedence, and degradation to a plain
   steal at [max <= 1]. *)
let test_steal_batch_shapes () =
  let spills d ~max =
    let acc = ref [] in
    let r = Fiber.Deque.steal_batch d ~max ~spill:(fun v -> acc := v :: !acc) in
    (r, List.rev !acc)
  in
  (* Steal-half: run of 3 and max 8 claims (3+1)/2 = 2. *)
  let d = Fiber.Deque.create () in
  List.iter (Fiber.Deque.push d) [ 0; 1; 2 ];
  Alcotest.(check (pair (option int) (list int)))
    "half of a short run" (Some 0, [ 1 ]) (spills d ~max:8);
  Alcotest.(check (option int)) "victim keeps the rest" (Some 2)
    (Fiber.Deque.pop d);
  (* FIFO spill order on a long run: first returned, next max-1 spilled. *)
  let d = Fiber.Deque.create () in
  for i = 0 to 19 do
    Fiber.Deque.push d i
  done;
  Alcotest.(check (pair (option int) (list int)))
    "FIFO batch from the thief end"
    (Some 0, [ 1; 2; 3 ])
    (spills d ~max:4);
  Alcotest.(check (option int)) "next steal continues" (Some 4)
    (Fiber.Deque.steal d);
  (* A front-segment element is returned alone, never batched. *)
  let d = Fiber.Deque.create () in
  List.iter (Fiber.Deque.push d) [ 0; 1; 2; 3 ];
  Fiber.Deque.push_front d 100;
  Alcotest.(check (pair (option int) (list int)))
    "segment element alone" (Some 100, []) (spills d ~max:8);
  Alcotest.(check (pair (option int) (list int)))
    "then the ring batches" (Some 0, [ 1 ])
    (spills d ~max:2);
  (* max <= 1 degrades to a plain steal. *)
  Alcotest.(check (pair (option int) (list int)))
    "max 1 is steal" (Some 2, []) (spills d ~max:1);
  Alcotest.(check (pair (option int) (list int)))
    "max 0 is steal" (Some 3, []) (spills d ~max:0);
  Alcotest.(check (pair (option int) (list int)))
    "empty" (None, []) (spills d ~max:8)

(* Batched steals across the wraparound and growth boundaries: the
   free-running indices pass the capacity several times, and the batch
   spans a ring resize's re-laid-out buffer. *)
let test_steal_batch_boundaries () =
  let d = Fiber.Deque.create () in
  let m = m_create () in
  (* Advance the indices past the initial capacity with the live
     population below it, batching as we go. *)
  for cycle = 0 to 9 do
    for k = 0 to 9 do
      let v = (cycle * 10) + k in
      Fiber.Deque.push d v;
      m_push m v
    done;
    let spilled = ref [] in
    let r =
      Fiber.Deque.steal_batch d ~max:4 ~spill:(fun v -> spilled := v :: !spilled)
    in
    let mr, mspill = m_steal_batch m ~max:4 in
    Alcotest.(check (option int))
      (Printf.sprintf "wrap cycle %d first" cycle)
      mr r;
    Alcotest.(check (list int))
      (Printf.sprintf "wrap cycle %d spills" cycle)
      mspill (List.rev !spilled);
    for _ = 1 to 6 do
      Alcotest.(check (option int)) "wrap pop" (m_pop m) (Fiber.Deque.pop d)
    done
  done;
  (* Growth: push far past capacity, then batch straight across the
     grown buffer. *)
  for i = 1000 to 1099 do
    Fiber.Deque.push d i;
    m_push m i
  done;
  let spilled = ref [] in
  let r =
    Fiber.Deque.steal_batch d ~max:8 ~spill:(fun v -> spilled := v :: !spilled)
  in
  let mr, mspill = m_steal_batch m ~max:8 in
  Alcotest.(check (option int)) "grown first" mr r;
  Alcotest.(check (list int)) "grown spills" mspill (List.rev !spilled);
  let i = ref 0 in
  while m_length m > 0 do
    Alcotest.(check (option int))
      (Printf.sprintf "drain %d" !i)
      (m_pop m) (Fiber.Deque.pop d);
    incr i
  done;
  Alcotest.(check int) "drained" 0 (Fiber.Deque.length d)

(* Exactly-once under an owner popping concurrently with a batched
   thief: every pushed value is claimed by exactly one side.  The
   owner's race-to-empty and push-restore paths run against the
   thief's iterated per-element claims.  fiber_smoke's deque stress
   exercises the same invariant with more thieves and mixed batch
   sizes. *)
let test_steal_batch_owner_race () =
  let items = 30_000 in
  let d = Fiber.Deque.create () in
  let seen = Array.init items (fun _ -> Atomic.make 0) in
  let claim v = Atomic.incr seen.(v) in
  let stop = Atomic.make false in
  let thief =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          match Fiber.Deque.steal_batch d ~max:4 ~spill:claim with
          | Some v -> claim v
          | None -> Domain.cpu_relax ()
        done;
        (* Final sweep so nothing is left when the owner quit early. *)
        let rec sweep () =
          match Fiber.Deque.steal_batch d ~max:4 ~spill:claim with
          | Some v ->
              claim v;
              sweep ()
          | None -> ()
        in
        sweep ())
  in
  for v = 0 to items - 1 do
    Fiber.Deque.push d v;
    if v land 1 = 0 then
      match Fiber.Deque.pop d with Some x -> claim x | None -> ()
  done;
  let rec drain () =
    match Fiber.Deque.pop d with
    | Some x ->
        claim x;
        drain ()
    | None -> ()
  in
  drain ();
  Atomic.set stop true;
  Domain.join thief;
  let missing = ref 0 and dup = ref 0 in
  Array.iter
    (fun c ->
      match Atomic.get c with
      | 0 -> incr missing
      | 1 -> ()
      | _ -> incr dup)
    seen;
  Alcotest.(check int) "no value lost" 0 !missing;
  Alcotest.(check int) "no value claimed twice" 0 !dup

let suite =
  [
    QCheck_alcotest.to_alcotest model_check;
    Alcotest.test_case "wraparound without growth" `Quick
      test_wraparound_without_growth;
    Alcotest.test_case "growth past capacity" `Quick test_growth_past_capacity;
    Alcotest.test_case "push_front ordering" `Quick test_push_front_ordering;
    Alcotest.test_case "segment/ring boundary" `Quick test_segment_ring_boundary;
    Alcotest.test_case "length clamps negative transients" `Quick
      test_length_never_negative;
    Alcotest.test_case "steal_batch shapes" `Quick test_steal_batch_shapes;
    Alcotest.test_case "steal_batch wrap/growth boundaries" `Quick
      test_steal_batch_boundaries;
    Alcotest.test_case "steal_batch owner race exactly-once" `Quick
      test_steal_batch_owner_race;
  ]
