(* Tests for the real (executable, multicore) fiber runtime. *)

let with_pool ?(domains = 2) ?preempt_interval f =
  let pool = Fiber.create ~domains ?preempt_interval () in
  Fun.protect ~finally:(fun () -> Fiber.shutdown pool) (fun () -> f pool)

let test_run_returns () =
  with_pool (fun pool ->
      Alcotest.(check int) "result" 42 (Fiber.run pool (fun () -> 42)))

let test_run_propagates_exception () =
  with_pool (fun pool ->
      Alcotest.check_raises "exn" Exit (fun () ->
          Fiber.run pool (fun () -> raise Exit)))

let test_spawn_await () =
  with_pool (fun pool ->
      let r =
        Fiber.run pool (fun () ->
            let p = Fiber.spawn (fun () -> 7 * 6) in
            Fiber.await p)
      in
      Alcotest.(check int) "child result" 42 r)

let test_await_failed_child () =
  with_pool (fun pool ->
      Alcotest.check_raises "child exn" Not_found (fun () ->
          Fiber.run pool (fun () -> Fiber.await (Fiber.spawn (fun () -> raise Not_found)))))

let test_many_fibers () =
  with_pool ~domains:3 (fun pool ->
      let total =
        Fiber.run pool (fun () ->
            let ps = List.init 200 (fun i -> Fiber.spawn (fun () -> i)) in
            List.fold_left (fun acc p -> acc + Fiber.await p) 0 ps)
      in
      Alcotest.(check int) "sum 0..199" (199 * 200 / 2) total)

let test_nested_spawn () =
  with_pool (fun pool ->
      let r =
        Fiber.run pool (fun () ->
            let p =
              Fiber.spawn (fun () ->
                  let q = Fiber.spawn (fun () -> 10) in
                  Fiber.await q + 1)
            in
            Fiber.await p + 1)
      in
      Alcotest.(check int) "nested" 12 r)

let test_yield_progress () =
  with_pool ~domains:1 (fun pool ->
      (* Single worker: a yielding producer and a consumer must interleave. *)
      let r =
        Fiber.run pool (fun () ->
            let flag = Atomic.make false in
            let setter = Fiber.spawn (fun () -> Atomic.set flag true) in
            (* Yield until the other fiber has run. *)
            while not (Atomic.get flag) do
              Fiber.yield ()
            done;
            Fiber.await setter;
            true)
      in
      Alcotest.(check bool) "interleaved" true r)

let test_parallel_for_covers () =
  with_pool ~domains:3 (fun pool ->
      let hits = Array.make 1000 0 in
      Fiber.run pool (fun () ->
          Fiber.parallel_for 0 1000 (fun i -> hits.(i) <- hits.(i) + 1));
      Array.iteri (fun i h -> if h <> 1 then Alcotest.failf "index %d hit %d" i h) hits)

let test_parallel_speedup_runs () =
  (* Not a timing assertion (CI noise), just that parallel fib works. *)
  with_pool ~domains:3 (fun pool ->
      let rec fib n =
        if n < 12 then seq_fib n
        else
          let a = Fiber.spawn (fun () -> fib (n - 1)) in
          let b = fib (n - 2) in
          Fiber.await a + b
      and seq_fib n = if n < 2 then n else seq_fib (n - 1) + seq_fib (n - 2) in
      let r = Fiber.run pool (fun () -> fib 20) in
      Alcotest.(check int) "fib 20" 6765 r)

let test_preemption_ticker () =
  with_pool ~domains:1 ~preempt_interval:0.005 (fun pool ->
      (* Two greedy fibers calling [check] in their loops must interleave
         even on a single worker. *)
      let r =
        Fiber.run pool (fun () ->
            let progress = Atomic.make 0 in
            let greedy _i () =
              let t0 = Unix.gettimeofday () in
              while Unix.gettimeofday () -. t0 < 0.1 do
                Atomic.incr progress;
                Fiber.check ()
              done
            in
            let a = Fiber.spawn (greedy 0) in
            let b = Fiber.spawn (greedy 1) in
            Fiber.await a;
            Fiber.await b;
            true)
      in
      Alcotest.(check bool) "completed" true r;
      Alcotest.(check bool) "preemptions happened" true (Fiber.preemptions pool > 0))

let test_pool_reuse_across_runs () =
  with_pool (fun pool ->
      Alcotest.(check int) "first" 1 (Fiber.run pool (fun () -> 1));
      Alcotest.(check int) "second" 2 (Fiber.run pool (fun () -> 2)))

let test_shutdown_rejects_run () =
  let pool = Fiber.create ~domains:1 () in
  Fiber.shutdown pool;
  Alcotest.check_raises "rejected" (Invalid_argument "Fiber.run: pool is shut down")
    (fun () -> ignore (Fiber.run pool (fun () -> ())))

let test_parallel_map () =
  with_pool ~domains:3 (fun pool ->
      let r = Fiber.run pool (fun () -> Fiber.parallel_map (fun x -> x * x) [ 1; 2; 3; 4 ]) in
      Alcotest.(check (list int)) "squares in order" [ 1; 4; 9; 16 ] r)

(* --- Sharded sub-pools ---------------------------------------------- *)

let with_sharded ?(recorder = false) f =
  let pool =
    Fiber.make
      (Fiber.Config.make ~domains:2 ~recorder
         ~subpools:
           [
             Fiber.Config.subpool ~name:"compute" ~workers:[ 0 ] ();
             Fiber.Config.subpool ~name:"analysis" ~workers:[ 1 ] ();
           ]
         ())
  in
  Fun.protect ~finally:(fun () -> Fiber.shutdown pool) (fun () -> f pool)

let test_targeted_spawn () =
  with_sharded (fun pool ->
      Alcotest.(check (list string))
        "names in config order" [ "compute"; "analysis" ] (Fiber.subpools pool);
      let r =
        Fiber.run pool (fun () ->
            Fiber.await (Fiber.spawn ~pool:"analysis" (fun () -> 21 * 2)))
      in
      Alcotest.(check int) "targeted child" 42 r;
      let st =
        List.find (fun s -> s.Fiber.st_name = "analysis") (Fiber.stats pool)
      in
      Alcotest.(check bool) "counted against analysis" true
        (st.Fiber.st_spawned > 0))

let test_unknown_subpool_rejected () =
  with_sharded (fun pool ->
      Alcotest.check_raises "unknown target"
        (Invalid_argument "Fiber: unknown sub-pool \"nope\"") (fun () ->
          Fiber.run pool (fun () ->
              Fiber.await (Fiber.spawn ~pool:"nope" (fun () -> ()))));
      Alcotest.check_raises "unknown submit"
        (Invalid_argument "Fiber: unknown sub-pool \"nope\"") (fun () ->
          ignore (Fiber.submit pool ~pool:"nope" (fun () -> ()))))

(* All three ported policies run the same workload under the one
   SCHEDULER interface; stats reports each by name. *)
let test_pluggable_schedulers () =
  List.iter
    (fun sched ->
      let pool =
        Fiber.make
          (Fiber.Config.make ~domains:2
             ~subpools:
               [ Fiber.Config.subpool ~sched ~name:"main" ~workers:[ 0; 1 ] () ]
             ())
      in
      Fun.protect
        ~finally:(fun () -> Fiber.shutdown pool)
        (fun () ->
          let total =
            Fiber.run pool (fun () ->
                let ps =
                  List.init 100 (fun i ->
                      Fiber.spawn ~prio:(i land 1) (fun () -> i))
                in
                List.fold_left (fun acc p -> acc + Fiber.await p) 0 ps)
          in
          Alcotest.(check int)
            (Fiber.Scheduler.name sched ^ " sums")
            (99 * 100 / 2) total;
          match Fiber.stats pool with
          | [ st ] ->
              Alcotest.(check string) "scheduler name"
                (Fiber.Scheduler.name sched) st.Fiber.st_sched
          | sts ->
              Alcotest.failf "%d stats rows, expected 1" (List.length sts)))
    [ Fiber.Scheduler.ws; Fiber.Scheduler.packing; Fiber.Scheduler.priority ]

(* Regression: a targeted [~prio:1] spawn into an otherwise idle
   priority sub-pool must run.  External analysis submissions used to
   land on a round-robin-chosen member's *private* aux stack while the
   push's single wakeup could rouse a different member, which found
   nothing and re-parked against the bumped epoch — stranding the task
   (and the await below) until an unrelated push arrived.  They now go
   to the sub-pool-shared aux stack, reachable from whichever member
   wakes; the sequential awaits re-park the members between spawns, so
   under the old routing this test hung with probability ~1 - 2^-20. *)
let test_priority_targeted_prio_spawn () =
  let pool =
    Fiber.make
      (Fiber.Config.make ~domains:3
         ~subpools:
           [
             Fiber.Config.subpool ~name:"main" ~workers:[ 0 ] ();
             Fiber.Config.subpool ~sched:Fiber.Scheduler.priority
               ~name:"insitu" ~workers:[ 1; 2 ] ();
           ]
         ())
  in
  Fun.protect
    ~finally:(fun () -> Fiber.shutdown pool)
    (fun () ->
      let total =
        Fiber.run pool (fun () ->
            let acc = ref 0 in
            for i = 1 to 20 do
              acc :=
                !acc
                + Fiber.await (Fiber.spawn ~pool:"insitu" ~prio:1 (fun () -> i))
            done;
            !acc)
      in
      Alcotest.(check int) "all analysis spawns ran" (20 * 21 / 2) total)

(* Engineered overflow: 40 x ~2ms tasks pinned to a 1-worker compute
   sub-pool while the analysis worker idles, so analysis must
   overflow-steal; both the racy per-sub-pool counters and the flight
   recorder (through an encode/decode round trip and the Observe steal
   split) must attribute the cross-sub-pool traffic. *)
let test_overflow_attribution () =
  with_sharded ~recorder:true (fun pool ->
      Fiber.run pool (fun () ->
          let ps =
            List.init 40 (fun _ ->
                Fiber.spawn ~pool:"compute" (fun () ->
                    let t0 = Unix.gettimeofday () in
                    while Unix.gettimeofday () -. t0 < 0.002 do
                      ()
                    done))
          in
          List.iter Fiber.await ps);
      let find n = List.find (fun s -> s.Fiber.st_name = n) (Fiber.stats pool) in
      let analysis = find "analysis" and compute = find "compute" in
      Alcotest.(check bool) "analysis overflowed in" true
        (analysis.Fiber.st_overflow_in > 0);
      Alcotest.(check bool) "compute lost tasks" true
        (compute.Fiber.st_overflow_out > 0);
      let rec_ = Fiber.recorder pool in
      match Preempt_core.Recorder.(decode (encode rec_)) with
      | Error e -> Alcotest.failf "dump round-trip: %s" e
      | Ok dump -> (
          let open Experiments.Observe in
          let r = of_dump dump in
          match r.r_steals with
          | None -> Alcotest.fail "no steal split in the report"
          | Some s ->
              Alcotest.(check bool) "overflow steals recorded" true
                (s.ss_overflow > 0);
              List.iter
                (fun (thief, victim, n) ->
                  if not (thief = 1 && victim = 0 && n > 0) then
                    Alcotest.failf
                      "unexpected steal pair: sub-pool %d from %d (%d)" thief
                      victim n)
                s.ss_pairs))

let test_deque_basics () =
  let d = Fiber.Deque.create () in
  Fiber.Deque.push d 1;
  Fiber.Deque.push d 2;
  Fiber.Deque.push d 3;
  Alcotest.(check (option int)) "owner LIFO" (Some 3) (Fiber.Deque.pop d);
  Alcotest.(check (option int)) "thief FIFO" (Some 1) (Fiber.Deque.steal d);
  Alcotest.(check int) "len" 1 (Fiber.Deque.length d)

let suite =
  [
    Alcotest.test_case "run returns" `Quick test_run_returns;
    Alcotest.test_case "run propagates exception" `Quick test_run_propagates_exception;
    Alcotest.test_case "spawn/await" `Quick test_spawn_await;
    Alcotest.test_case "await failed child" `Quick test_await_failed_child;
    Alcotest.test_case "many fibers" `Quick test_many_fibers;
    Alcotest.test_case "nested spawn" `Quick test_nested_spawn;
    Alcotest.test_case "yield progress (1 worker)" `Quick test_yield_progress;
    Alcotest.test_case "parallel_for covers range" `Quick test_parallel_for_covers;
    Alcotest.test_case "parallel fib" `Quick test_parallel_speedup_runs;
    Alcotest.test_case "preemption ticker" `Quick test_preemption_ticker;
    Alcotest.test_case "pool reuse" `Quick test_pool_reuse_across_runs;
    Alcotest.test_case "shutdown rejects run" `Quick test_shutdown_rejects_run;
    Alcotest.test_case "parallel_map" `Quick test_parallel_map;
    Alcotest.test_case "targeted spawn" `Quick test_targeted_spawn;
    Alcotest.test_case "unknown sub-pool rejected" `Quick
      test_unknown_subpool_rejected;
    Alcotest.test_case "pluggable schedulers" `Quick test_pluggable_schedulers;
    Alcotest.test_case "priority: targeted prio spawn wakes" `Quick
      test_priority_targeted_prio_spawn;
    Alcotest.test_case "overflow attribution" `Quick test_overflow_attribution;
    Alcotest.test_case "deque basics" `Quick test_deque_basics;
  ]
