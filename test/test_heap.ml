open Desim

let test_empty () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check int) "length" 0 (Heap.length h);
  Alcotest.(check bool) "peek none" true (Heap.peek_min h = None);
  Alcotest.check_raises "pop raises" Not_found (fun () -> ignore (Heap.pop_min h))

let test_ordering () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h k (int_of_float k)) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let out = List.init 5 (fun _ -> fst (Heap.pop_min h)) in
  Alcotest.(check (list (float 0.0))) "sorted" [ 1.0; 2.0; 3.0; 4.0; 5.0 ] out

let test_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h 1.0 v) [ "a"; "b"; "c" ];
  Heap.push h 0.5 "first";
  let out = List.init 4 (fun _ -> snd (Heap.pop_min h)) in
  Alcotest.(check (list string)) "tie order is FIFO" [ "first"; "a"; "b"; "c" ] out

let test_interleaved () =
  let h = Heap.create () in
  Heap.push h 2.0 2;
  Heap.push h 1.0 1;
  Alcotest.(check int) "min" 1 (snd (Heap.pop_min h));
  Heap.push h 0.5 0;
  Alcotest.(check int) "new min" 0 (snd (Heap.pop_min h));
  Alcotest.(check int) "last" 2 (snd (Heap.pop_min h))

let test_clear () =
  let h = Heap.create () in
  Heap.push h 1.0 ();
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

let test_to_list () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h k ()) [ 3.0; 1.0; 2.0 ];
  let keys = List.sort compare (List.map fst (Heap.to_list h)) in
  Alcotest.(check (list (float 0.0))) "all present" [ 1.0; 2.0; 3.0 ] keys

let prop_heap_sort =
  QCheck.Test.make ~name:"heap sorts any float list" ~count:200
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun floats ->
      let h = Heap.create () in
      List.iter (fun f -> Heap.push h f ()) floats;
      let popped = List.init (List.length floats) (fun _ -> fst (Heap.pop_min h)) in
      popped = List.sort compare floats)

let prop_stable =
  QCheck.Test.make ~name:"equal keys pop FIFO" ~count:100
    QCheck.(small_nat)
    (fun n ->
      let n = n + 1 in
      let h = Heap.create () in
      for i = 0 to n - 1 do
        Heap.push h 1.0 i
      done;
      let popped = List.init n (fun _ -> snd (Heap.pop_min h)) in
      popped = List.init n Fun.id)

(* Unit coverage of the lazy-cancellation surface. *)
let test_cancel_basic () =
  let h = Heap.create () in
  Heap.push h 1.0 "keep1";
  let hn = Heap.push_handle h 0.5 "dropped" in
  Heap.push h 2.0 "keep2";
  Alcotest.(check bool) "pending before" true (Heap.pending hn);
  Alcotest.(check int) "length counts it" 3 (Heap.length h);
  Alcotest.(check bool) "cancel" true (Heap.cancel hn);
  Alcotest.(check bool) "cancel twice" false (Heap.cancel hn);
  Alcotest.(check bool) "not pending after" false (Heap.pending hn);
  Alcotest.(check int) "length excludes tombstone" 2 (Heap.length h);
  Alcotest.(check string) "tombstone skipped" "keep1" (snd (Heap.pop_min h));
  Alcotest.(check string) "rest intact" "keep2" (snd (Heap.pop_min h));
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let test_cancel_popped () =
  let h = Heap.create () in
  let hn = Heap.push_handle h 1.0 () in
  ignore (Heap.pop_min h);
  Alcotest.(check bool) "popped not pending" false (Heap.pending hn);
  Alcotest.(check bool) "cancel after pop" false (Heap.cancel hn)

let test_all_cancelled () =
  let h = Heap.create () in
  let hs = List.init 100 (fun i -> Heap.push_handle h (float_of_int i) i) in
  List.iter (fun hn -> ignore (Heap.cancel hn)) hs;
  Alcotest.(check bool) "only tombstones = empty" true (Heap.is_empty h);
  Alcotest.(check bool) "peek none" true (Heap.peek_min h = None);
  (* Compaction path: keep pushing over a tombstone majority. *)
  for i = 0 to 199 do
    Heap.push h (float_of_int i) i
  done;
  Alcotest.(check int) "live survive compaction" 200 (Heap.length h);
  Alcotest.(check int) "min live" 0 (snd (Heap.pop_min h))

(* Model test: random push/push_handle/pop/cancel interleavings against
   a sorted-association-list reference.  Keys are drawn from a small set
   so ties are common and the (key, seq) tie-break is exercised. *)
let prop_cancel_model =
  (* op: 0-1 push, 2 pop, 3 cancel; arg picks key or cancel victim *)
  QCheck.Test.make ~name:"lazy-cancel heap matches reference model" ~count:300
    QCheck.(list (pair (int_bound 3) (int_bound 7)))
    (fun ops ->
      let h = Heap.create () in
      (* model: (key, seq, id) for every live element, unsorted *)
      let model = ref [] in
      let handles = ref [] in (* (id, handle) still cancellable *)
      let seq = ref 0 and uid = ref 0 in
      let model_min () =
        match !model with
        | [] -> None
        | e :: rest ->
            Some
              (List.fold_left
                 (fun (bk, bs, bi) (k, s, i) ->
                   if k < bk || (k = bk && s < bs) then (k, s, i) else (bk, bs, bi))
                 e rest)
      in
      let ok = ref true in
      List.iter
        (fun (op, arg) ->
          if !ok then
            match op with
            | 0 | 1 ->
                let key = float_of_int arg /. 2.0 in
                let id = !uid in
                incr uid;
                if op = 0 then Heap.push h key id
                else handles := (id, Heap.push_handle h key id) :: !handles;
                model := (key, !seq, id) :: !model;
                incr seq
            | 2 -> (
                match model_min () with
                | None -> (
                    match Heap.pop_min h with
                    | exception Not_found -> ()
                    | _ -> ok := false)
                | Some (k, _, i) ->
                    let k', i' = Heap.pop_min h in
                    if k' <> k || i' <> i then ok := false;
                    model := List.filter (fun (_, _, j) -> j <> i) !model;
                    handles := List.filter (fun (j, _) -> j <> i) !handles)
            | _ -> (
                match !handles with
                | [] -> ()
                | hs ->
                    let j, hn = List.nth hs (arg mod List.length hs) in
                    if not (Heap.cancel hn) then ok := false;
                    if Heap.cancel hn then ok := false; (* double cancel *)
                    model := List.filter (fun (_, _, i) -> i <> j) !model;
                    handles := List.filter (fun (i, _) -> i <> j) !handles))
        ops;
      if Heap.length h <> List.length !model then ok := false;
      (* Drain: remaining elements must pop in (key, seq) order. *)
      while !ok && not (Heap.is_empty h) do
        match model_min () with
        | None -> ok := false
        | Some (k, _, i) ->
            let k', i' = Heap.pop_min h in
            if k' <> k || i' <> i then ok := false;
            model := List.filter (fun (_, _, j) -> j <> i) !model
      done;
      !ok && !model = [])

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "pop in key order" `Quick test_ordering;
    Alcotest.test_case "FIFO on equal keys" `Quick test_fifo_ties;
    Alcotest.test_case "interleaved push/pop" `Quick test_interleaved;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "to_list" `Quick test_to_list;
    Alcotest.test_case "cancel basics" `Quick test_cancel_basic;
    Alcotest.test_case "cancel after pop" `Quick test_cancel_popped;
    Alcotest.test_case "all cancelled + compaction" `Quick test_all_cancelled;
    QCheck_alcotest.to_alcotest prop_heap_sort;
    QCheck_alcotest.to_alcotest prop_stable;
    QCheck_alcotest.to_alcotest prop_cancel_model;
  ]
