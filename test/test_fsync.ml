(* Fiber-level synchronization on the real multicore runtime. *)

module Fsync = Fiber.Fsync

let with_pool ?(domains = 3) f =
  let pool = Fiber.create ~domains () in
  Fun.protect ~finally:(fun () -> Fiber.shutdown pool) (fun () -> f pool)

let test_mutex_counter () =
  (* Domain-level smoke; the schedule-exhaustive version of this
     pattern runs under Check.run below. *)
  with_pool (fun pool ->
      let m = Fsync.Mutex.create () in
      let counter = ref 0 in
      Fiber.run pool (fun () ->
          let ps =
            List.init 8 (fun _ ->
                Fiber.spawn (fun () ->
                    for _ = 1 to 100 do
                      Fsync.Mutex.with_lock m (fun () -> incr counter)
                    done))
          in
          List.iter Fiber.await ps);
      Alcotest.(check int) "no lost updates" 800 !counter)

let test_mutex_trylock () =
  with_pool ~domains:1 (fun pool ->
      Fiber.run pool (fun () ->
          let m = Fsync.Mutex.create () in
          Alcotest.(check bool) "free" true (Fsync.Mutex.try_lock m);
          Alcotest.(check bool) "held" false (Fsync.Mutex.try_lock m);
          Fsync.Mutex.unlock m;
          Alcotest.(check bool) "free again" true (Fsync.Mutex.try_lock m);
          Fsync.Mutex.unlock m))

let test_mutex_unlock_unlocked () =
  with_pool ~domains:1 (fun pool ->
      Fiber.run pool (fun () ->
          let m = Fsync.Mutex.create () in
          Alcotest.check_raises "invalid"
            (Invalid_argument "Fsync.Mutex.unlock: not locked") (fun () ->
              Fsync.Mutex.unlock m)))

let test_semaphore_bound () =
  with_pool (fun pool ->
      let sem = Fsync.Semaphore.create 2 in
      let active = Atomic.make 0 in
      let peak = Atomic.make 0 in
      Fiber.run pool (fun () ->
          let ps =
            List.init 10 (fun _ ->
                Fiber.spawn (fun () ->
                    Fsync.Semaphore.acquire sem;
                    let a = Atomic.fetch_and_add active 1 + 1 in
                    let rec bump () =
                      let p = Atomic.get peak in
                      if a > p && not (Atomic.compare_and_set peak p a) then bump ()
                    in
                    bump ();
                    Fiber.yield ();
                    ignore (Atomic.fetch_and_add active (-1));
                    Fsync.Semaphore.release sem))
          in
          List.iter Fiber.await ps);
      if Atomic.get peak > 2 then Alcotest.failf "peak %d > 2" (Atomic.get peak))

let test_channel_spmc () =
  with_pool (fun pool ->
      let ch = Fsync.Channel.create () in
      let total = Atomic.make 0 in
      Fiber.run pool (fun () ->
          let consumers =
            List.init 4 (fun _ ->
                Fiber.spawn (fun () ->
                    for _ = 1 to 25 do
                      ignore (Atomic.fetch_and_add total (Fsync.Channel.recv ch))
                    done))
          in
          for i = 1 to 100 do
            Fsync.Channel.send ch i
          done;
          List.iter Fiber.await consumers);
      Alcotest.(check int) "all received once" 5050 (Atomic.get total);
      Alcotest.(check int) "drained" 0 (Fsync.Channel.length ch))

let test_channel_try_recv () =
  with_pool ~domains:1 (fun pool ->
      Fiber.run pool (fun () ->
          let ch = Fsync.Channel.create () in
          Alcotest.(check (option int)) "empty" None (Fsync.Channel.try_recv ch);
          Fsync.Channel.send ch 5;
          Alcotest.(check (option int)) "item" (Some 5) (Fsync.Channel.try_recv ch)))

let test_barrier_phases () =
  with_pool (fun pool ->
      let n = 4 in
      let b = Fsync.Barrier.create n in
      let phase = Atomic.make 0 in
      let errors = Atomic.make 0 in
      Fiber.run pool (fun () ->
          let ps =
            List.init n (fun _ ->
                Fiber.spawn (fun () ->
                    for expected = 0 to 4 do
                      (* Everyone must observe the same phase here. *)
                      if Atomic.get phase <> expected then Atomic.incr errors;
                      Fsync.Barrier.wait b;
                      (* Exactly one CAS succeeds between the barriers. *)
                      ignore (Atomic.compare_and_set phase expected (expected + 1));
                      Fsync.Barrier.wait b
                    done))
          in
          List.iter Fiber.await ps);
      Alcotest.(check int) "no phase tearing" 0 (Atomic.get errors))

let test_producer_consumer_pipeline () =
  with_pool (fun pool ->
      let stage1 = Fsync.Channel.create () in
      let stage2 = Fsync.Channel.create () in
      let result = Fiber.run pool (fun () ->
          let squarer =
            Fiber.spawn (fun () ->
                for _ = 1 to 50 do
                  Fsync.Channel.send stage2 (Fsync.Channel.recv stage1 * 2)
                done)
          in
          let sum = Fiber.spawn (fun () ->
              let acc = ref 0 in
              for _ = 1 to 50 do
                acc := !acc + Fsync.Channel.recv stage2
              done;
              !acc)
          in
          for i = 1 to 50 do
            Fsync.Channel.send stage1 i
          done;
          Fiber.await squarer;
          Fiber.await sum)
      in
      Alcotest.(check int) "pipeline sum" (2 * 50 * 51 / 2) result)

(* ------------------------------------------------------------------ *)
(* FIFO waiter order.

   All wake closures — Fsync queues, Barrier arrivals, promise waiters —
   must run in FIFO registration order.  On a 1-domain pool the whole
   schedule is deterministic, and wake order is observable through the
   owner deque: each wake pushes a continuation at the owner (LIFO) end,
   so the *execution* order of the woken fibers is the exact reverse of
   the wake order.  Each test below derives the expected sequence from
   FIFO wakes; a LIFO regression flips it. *)

let test_channel_reader_fifo () =
  with_pool ~domains:1 (fun pool ->
      let got = Array.make 4 0 in
      Fiber.run pool (fun () ->
          let ch = Fsync.Channel.create () in
          (* Spawn order c1,c2,c3; the LIFO deque runs them c3,c2,c1, so
             the readers queue holds [c3; c2; c1].  Sends wake FIFO
             (c3 first); the woken continuations stack back up LIFO, so
             c1 runs first and takes item 1.  Net effect of FIFO wakes +
             LIFO re-queue: reader ci receives value i. *)
          let cs =
            List.init 3 (fun i ->
                Fiber.spawn (fun () -> got.(i + 1) <- Fsync.Channel.recv ch))
          in
          Fiber.yield ();
          (* All three readers are now registered. *)
          for v = 1 to 3 do
            Fsync.Channel.send ch v
          done;
          List.iter Fiber.await cs);
      Alcotest.(check (list int)) "FIFO delivery" [ 1; 2; 3 ]
        [ got.(1); got.(2); got.(3) ])

let test_promise_waiter_fifo () =
  with_pool ~domains:1 (fun pool ->
      let order = ref [] in
      Fiber.run pool (fun () ->
          let stop = Atomic.make false in
          let gate =
            Fiber.spawn (fun () ->
                while not (Atomic.get stop) do
                  Fiber.yield ()
                done;
                99)
          in
          (* a3 runs (and registers on [gate]) first, then a2, then a1:
             FIFO wakes fire a3,a2,a1, which re-queue LIFO, so the
             recorded resume order must be a1,a2,a3 = [1;2;3]. *)
          let waiters =
            List.init 3 (fun i ->
                Fiber.spawn (fun () ->
                    let v = Fiber.await gate in
                    order := (i + 1) :: !order;
                    v))
          in
          Atomic.set stop true;
          List.iter (fun p -> ignore (Fiber.await p)) waiters;
          Alcotest.(check int) "gate value" 99 (Fiber.await gate));
      Alcotest.(check (list int)) "promise wakes FIFO" [ 1; 2; 3 ]
        (List.rev !order))

let test_barrier_release_fifo () =
  with_pool ~domains:1 (fun pool ->
      let order = ref [] in
      Fiber.run pool (fun () ->
          let b = Fsync.Barrier.create 4 in
          (* Arrival order b3,b2,b1 (LIFO deque), main trips the
             barrier; FIFO release wakes b3 first, LIFO re-queue runs
             b1 first: recorded order [1;2;3]. *)
          let bs =
            List.init 3 (fun i ->
                Fiber.spawn (fun () ->
                    Fsync.Barrier.wait b;
                    order := (i + 1) :: !order))
          in
          Fiber.yield ();
          Fsync.Barrier.wait b;
          List.iter Fiber.await bs);
      Alcotest.(check (list int)) "barrier releases FIFO" [ 1; 2; 3 ]
        (List.rev !order))

(* ------------------------------------------------------------------ *)
(* The same synchronization patterns, ported onto the simulated
   preemptive runtime and explored under Check.run: instead of trusting
   one real-domain interleaving per CI run, each pattern is checked
   across a fixed budget of controller-driven schedules with fault
   injection, and any violation comes back as a replayable trail. *)

open Oskern
open Preempt_core

let check_budget = 200

let checked_rt (env : Check.env) =
  let kernel =
    Kernel.create ~trace:env.Check.trace env.Check.eng
      (Machine.with_cores Machine.skylake 2)
  in
  let config =
    {
      Config.default with
      Config.timer_strategy = Config.Per_worker_aligned;
      interval = 0.3e-3;
      metrics_enabled = true;
    }
  in
  Runtime.create ~config kernel ~n_workers:2

let assert_ok name (r : Check.report) =
  match r.Check.result with
  | `Ok -> ()
  | `Violation cx -> Alcotest.failf "%s:\n%s" name (Check.describe cx)

let test_mutex_counter_checked () =
  let n_threads = 4 and rounds = 25 in
  let prog env =
    let rt = checked_rt env in
    let m = Usync.Mutex.create rt in
    let counter = ref 0 in
    let us =
      List.init n_threads (fun i ->
          Runtime.spawn rt ~kind:Types.Klt_switching ~home:(i mod 2)
            ~name:(Printf.sprintf "c%d" i)
            (fun () ->
              for _ = 1 to rounds do
                Usync.Mutex.lock m;
                let v = !counter in
                Ult.compute 2e-5;
                (* preemption window inside the critical section *)
                counter := v + 1;
                Usync.Mutex.unlock m
              done))
    in
    Runtime.start rt;
    Check.program ~runtime:rt ~ults:us ~cores:2
      ~oracle:(fun () ->
        Check.all_finished rt;
        Check.require
          (!counter = n_threads * rounds)
          "lost updates: counter %d, expected %d" !counter
          (n_threads * rounds);
        Check.no_lost_wakeups rt)
      ()
  in
  assert_ok "mutex counter"
    (Check.run ~seed:21 ~faults:true ~budget:check_budget
       ~strategy:Check.Random_walk prog)

let test_channel_spmc_checked () =
  let consumers = 4 and per_consumer = 15 in
  let n = consumers * per_consumer in
  let prog env =
    let rt = checked_rt env in
    let ch = Usync.Channel.create rt in
    let total = ref 0 in
    let cs =
      List.init consumers (fun i ->
          Runtime.spawn rt ~kind:Types.Klt_switching ~home:(i mod 2)
            ~name:(Printf.sprintf "cons%d" i)
            (fun () ->
              for _ = 1 to per_consumer do
                total := !total + Usync.Channel.recv ch;
                Ult.compute 1e-5
              done))
    in
    let prod =
      Runtime.spawn rt ~kind:Types.Klt_switching ~home:0 ~name:"prod"
        (fun () ->
          for i = 1 to n do
            Usync.Channel.send ch i;
            if i mod 10 = 0 then Ult.compute 5e-5
          done)
    in
    Runtime.start rt;
    Check.program ~runtime:rt ~ults:(prod :: cs) ~cores:2
      ~oracle:(fun () ->
        Check.all_finished rt;
        Check.require
          (!total = n * (n + 1) / 2)
          "each message received exactly once: sum %d, expected %d" !total
          (n * (n + 1) / 2);
        Check.require (Usync.Channel.length ch = 0) "channel not drained";
        Check.no_lost_wakeups rt)
      ()
  in
  assert_ok "channel SPMC"
    (Check.run ~seed:23 ~faults:true ~budget:check_budget
       ~strategy:Check.Random_walk prog)

let test_pipeline_checked () =
  let n = 30 in
  let prog env =
    let rt = checked_rt env in
    let stage1 = Usync.Channel.create rt in
    let stage2 = Usync.Channel.create rt in
    let acc = ref 0 in
    let squarer =
      Runtime.spawn rt ~kind:Types.Klt_switching ~home:0 ~name:"squarer"
        (fun () ->
          for _ = 1 to n do
            Usync.Channel.send stage2 (Usync.Channel.recv stage1 * 2);
            Ult.compute 1e-5
          done)
    in
    let summer =
      Runtime.spawn rt ~kind:Types.Klt_switching ~home:1 ~name:"summer"
        (fun () ->
          for _ = 1 to n do
            acc := !acc + Usync.Channel.recv stage2
          done)
    in
    let feeder =
      Runtime.spawn rt ~kind:Types.Klt_switching ~home:1 ~name:"feeder"
        (fun () ->
          for i = 1 to n do
            Usync.Channel.send stage1 i
          done)
    in
    Runtime.start rt;
    Check.program ~runtime:rt ~ults:[ squarer; summer; feeder ] ~cores:2
      ~oracle:(fun () ->
        Check.all_finished rt;
        Check.require
          (!acc = n * (n + 1))
          "pipeline sum %d, expected %d" !acc
          (n * (n + 1));
        Check.no_lost_wakeups rt)
      ()
  in
  assert_ok "pipeline"
    (Check.run ~seed:29 ~faults:true ~budget:check_budget
       ~strategy:Check.Random_walk prog)

let suite =
  [
    Alcotest.test_case "mutex protects counter" `Quick test_mutex_counter;
    Alcotest.test_case "mutex try_lock" `Quick test_mutex_trylock;
    Alcotest.test_case "mutex unlock unlocked" `Quick test_mutex_unlock_unlocked;
    Alcotest.test_case "semaphore bounds concurrency" `Quick test_semaphore_bound;
    Alcotest.test_case "channel SPMC" `Quick test_channel_spmc;
    Alcotest.test_case "channel try_recv" `Quick test_channel_try_recv;
    Alcotest.test_case "barrier phases" `Quick test_barrier_phases;
    Alcotest.test_case "producer/consumer pipeline" `Quick test_producer_consumer_pipeline;
    Alcotest.test_case "channel readers wake FIFO" `Quick test_channel_reader_fifo;
    Alcotest.test_case "promise waiters wake FIFO" `Quick test_promise_waiter_fifo;
    Alcotest.test_case "barrier releases FIFO" `Quick test_barrier_release_fifo;
    Alcotest.test_case "mutex counter, checked x200" `Quick
      test_mutex_counter_checked;
    Alcotest.test_case "channel SPMC, checked x200" `Quick
      test_channel_spmc_checked;
    Alcotest.test_case "pipeline, checked x200" `Quick test_pipeline_checked;
  ]
