(* Shared mutable records of the simulated kernel.  This module is
   internal to the [oskern] library; the public face is [Kernel]. *)

type klt_state =
  | Created
  | Runnable
  | Running
  | Blocked of string  (* reason, e.g. "futex", "sleep", "pause" *)
  | Zombie

type interrupt_reason =
  | Slice_end  (* CFS time slice expired with other runnable KLTs *)
  | Signal_pending  (* a deliverable signal arrived *)
  | Wake_preempt  (* a woken KLT with smaller vruntime preempts us *)

type sched_policy =
  | Sched_other  (* CFS: fair time sharing, nice-weighted *)
  | Sched_fifo of int  (* POSIX real-time FIFO; higher value = higher priority *)

type klt = {
  kid : int;
  kname : string;
  mutable state : klt_state;
  mutable nice : int;
  mutable policy : sched_policy;
  mutable vruntime : float;
  mutable affinity : Cpuset.t;
  mutable core : int option;  (* core id while Running *)
  mutable last_core : int;
  mutable pending_signals : int list;  (* FIFO: oldest first *)
  mutable sigmask : int list;  (* blocked signal numbers (with multiplicity) *)
  mutable on_dispatch : (unit -> unit) option;
  mutable on_interrupt : (interrupt_reason -> unit) option;
  mutable on_blocked_signal : (unit -> unit) option;
  mutable exit_waiters : (unit -> unit) list;
  mutable cpu_time : float;
  mutable exec_start : float;
  mutable migrations : int;
  mutable cpu_since_move : float;
      (* CPU accumulated since the last core migration: proxies how much
         cache state the thread would lose by moving *)
  mutable kfootprint : float;
      (* relative working set in [0,1]: 1 for threads whose data lives
         with them (OMP threads), ~0 for thin carrier KLTs of an M:N
         runtime (the ULT layer charges its own data movement) *)
  mutable pending_overhead : float;
      (* dispatch / migration / timer costs charged at the next compute *)
  mutable wakeups : int;
}

type core_state = {
  cid : int;
  mutable current : klt option;
  mutable queued : klt list;  (* runnable, not running; sorted by vruntime *)
  mutable slice_ev : Desim.Engine.event option;
  mutable slice_deadline : float;
  mutable min_vruntime : float;
  mutable last_newidle : float;
  mutable last_klt : int;  (* last KLT that ran here, for switch cost *)
  mutable busy_time : float;
}

let nice_weight nice = 1024.0 /. (1.25 ** float_of_int nice)
