lib/oskernel/cpuset.mli: Format
