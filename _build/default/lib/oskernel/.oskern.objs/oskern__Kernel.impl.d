lib/oskernel/kernel.ml: Array Cpuset Desim Engine Float Hashtbl List Machine Printf Sync Trace Types
