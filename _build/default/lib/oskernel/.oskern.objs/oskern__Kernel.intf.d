lib/oskernel/kernel.mli: Cpuset Desim Machine
