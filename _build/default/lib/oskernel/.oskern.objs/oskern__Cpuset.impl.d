lib/oskernel/cpuset.ml: Array Format List String
