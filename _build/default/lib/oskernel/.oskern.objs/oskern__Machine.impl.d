lib/oskernel/machine.ml: Format
