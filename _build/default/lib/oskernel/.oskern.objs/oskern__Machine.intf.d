lib/oskernel/machine.mli: Format
