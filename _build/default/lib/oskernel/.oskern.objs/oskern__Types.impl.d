lib/oskernel/types.ml: Cpuset Desim
