(** CPU affinity masks ([cpu_set_t] analogue). *)

type t

(** [all n] allows cores [0 .. n-1]. *)
val all : int -> t

(** [of_list n cores] allows exactly [cores] on an [n]-core machine. *)
val of_list : int -> int list -> t

(** [range n lo hi] allows cores [lo .. hi] inclusive. *)
val range : int -> int -> int -> t

val mem : t -> int -> bool

val count : t -> int

val to_list : t -> int list

val equal : t -> t -> bool

(** Number of cores the mask was sized for. *)
val width : t -> int

val pp : Format.formatter -> t -> unit
