type costs = {
  klt_ctx_switch : float;
  klt_create : float;
  signal_handler_entry : float;
  signal_lock_hold : float;
  pthread_kill : float;
  timer_fire : float;
  futex_wake : float;
  futex_wake_latency : float;
  sigsuspend_extra : float;
  affinity_reset : float;
  migration_cache_penalty : float;
  ult_ctx_switch : float;
  handler_ctx_switch : float;
  ult_migration_cache_penalty : float;
  sched_latency : float;
  min_granularity : float;
  balance_interval : float;
  newidle_min_interval : float;
  wakeup_granularity : float;
}

type t = {
  name : string;
  cores : int;
  hw_threads : int;
  ghz : float;
  sockets : int;
  costs : costs;
}

let us x = x *. 1e-6

let ms x = x *. 1e-3

(* Calibration targets (paper): Table 1 gives preemption overheads on
   Skylake of 2.8 us (1:1), 3.5 us (signal-yield) and 9.9 us
   (KLT-switching); Fig. 4 shows ~1 us aligned interruptions growing to
   ~100 us under naive contention at 112 workers. *)
let skylake_costs =
  {
    klt_ctx_switch = us 1.4;
    klt_create = us 12.0;
    signal_handler_entry = us 1.3;
    signal_lock_hold = us 1.6;
    pthread_kill = us 0.4;
    timer_fire = us 0.3;
    futex_wake = us 0.5;
    futex_wake_latency = us 4.0;
    sigsuspend_extra = us 3.2;
    affinity_reset = us 1.8;
    migration_cache_penalty = us 40.0;
    ult_ctx_switch = us 0.05;
    handler_ctx_switch = us 0.3;
    ult_migration_cache_penalty = us 25.0;
    sched_latency = ms 12.0;
    min_granularity = ms 3.0;
    balance_interval = ms 4.0;
    newidle_min_interval = ms 0.1;
    wakeup_granularity = ms 1.0;
  }

(* KNL: "less powerful CPU architecture" — system-call-bound costs scale
   by roughly the Table 1 ratio (15/2.8 ~ 5.4x), cache penalties a bit
   less. *)
let knl_costs =
  let f = 5.4 in
  {
    klt_ctx_switch = us (1.4 *. f);
    klt_create = us (12.0 *. f);
    signal_handler_entry = us (1.3 *. f);
    signal_lock_hold = us (1.6 *. f);
    pthread_kill = us (0.4 *. f);
    timer_fire = us (0.3 *. f);
    futex_wake = us (0.5 *. f);
    futex_wake_latency = us (4.0 *. f);
    sigsuspend_extra = us (3.2 *. f);
    affinity_reset = us (1.8 *. f);
    migration_cache_penalty = us 80.0;
    ult_ctx_switch = us 0.2;
    handler_ctx_switch = us (0.3 *. f);
    ult_migration_cache_penalty = us 50.0;
    sched_latency = ms 12.0;
    min_granularity = ms 3.0;
    balance_interval = ms 4.0;
    newidle_min_interval = ms 0.1;
    wakeup_granularity = ms 1.0;
  }

let skylake =
  {
    name = "Skylake (Xeon Platinum 8180M)";
    cores = 56;
    hw_threads = 112;
    ghz = 2.5;
    sockets = 2;
    costs = skylake_costs;
  }

let knl =
  {
    name = "KNL (Xeon Phi 7250)";
    cores = 68;
    hw_threads = 272;
    ghz = 1.4;
    sockets = 1;
    costs = knl_costs;
  }

let with_cores m n =
  if n <= 0 then invalid_arg "Machine.with_cores: n <= 0";
  { m with cores = n }

let flops_seconds _m ~per_core_gflops flops = flops /. (per_core_gflops *. 1e9)

let pp ppf m =
  Format.fprintf ppf "%s: %d cores (%d HWT), %.1f GHz, %d socket(s)" m.name m.cores
    m.hw_threads m.ghz m.sockets
