(** Machine descriptions and calibrated cost models.

    Costs are in (virtual) seconds and were calibrated so that the
    microbenchmark experiments land near the paper's published
    magnitudes (Table 1, Fig. 4, Fig. 6); see EXPERIMENTS.md. *)

type costs = {
  klt_ctx_switch : float;
      (** kernel-level context switch (dispatch of a different KLT) *)
  klt_create : float;  (** [pthread_create]-equivalent *)
  signal_handler_entry : float;
      (** fixed kernel work to enter a user signal handler, excluding
          the serialized portion below *)
  signal_lock_hold : float;
      (** hold time of the global in-kernel signal-delivery lock — the
          contention source behind paper Fig. 4 *)
  pthread_kill : float;  (** cost to the {e sender} of [pthread_kill] *)
  timer_fire : float;  (** kernel timer-expiry bookkeeping per fire *)
  futex_wake : float;  (** cost to the caller of FUTEX_WAKE *)
  futex_wake_latency : float;
      (** delay until a futex-woken KLT becomes runnable *)
  sigsuspend_extra : float;
      (** extra signal round-trip of a sigsuspend-based resume compared
          with a futex-based one (paper §3.3.1) *)
  affinity_reset : float;
      (** [sched_setaffinity] when a pooled KLT moves between workers
          (paper §3.3.2) *)
  migration_cache_penalty : float;
      (** extra compute charged after a KLT runs on a new core (cache
          refill) *)
  ult_ctx_switch : float;  (** user-level context switch *)
  handler_ctx_switch : float;
      (** extra cost of context-switching out of a signal-handler frame
          (both the handler and the thread context are saved,
          paper §3.1.1) *)
  ult_migration_cache_penalty : float;
      (** cache refill when a ULT resumes on a different worker *)
  sched_latency : float;  (** CFS latency target *)
  min_granularity : float;  (** CFS minimum slice *)
  balance_interval : float;  (** CFS periodic load-balance period *)
  newidle_min_interval : float;
      (** rate limit for new-idle balancing per core *)
  wakeup_granularity : float;  (** CFS wake-preemption threshold *)
}

type t = {
  name : string;
  cores : int;  (** cores usable by workers *)
  hw_threads : int;
  ghz : float;
  sockets : int;
  costs : costs;
}

(** Intel Xeon Platinum 8180M, 2×28 cores, 2.5 GHz (paper Table 2). *)
val skylake : t

(** Intel Xeon Phi 7250, 68 cores, 1.4 GHz (paper Table 2). *)
val knl : t

(** [with_cores m n] is [m] restricted to [n] cores (for scaling sweeps). *)
val with_cores : t -> int -> t

(** Seconds for [flops] floating-point operations at [per_core_gflops]. *)
val flops_seconds : t -> per_core_gflops:float -> float -> float

val pp : Format.formatter -> t -> unit
