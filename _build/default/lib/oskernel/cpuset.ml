type t = bool array

let all n =
  if n <= 0 then invalid_arg "Cpuset.all: n <= 0";
  Array.make n true

let of_list n cores =
  if n <= 0 then invalid_arg "Cpuset.of_list: n <= 0";
  let t = Array.make n false in
  List.iter
    (fun c ->
      if c < 0 || c >= n then invalid_arg "Cpuset.of_list: core out of range";
      t.(c) <- true)
    cores;
  t

let range n lo hi =
  if lo < 0 || hi >= n || lo > hi then invalid_arg "Cpuset.range: bad range";
  of_list n (List.init (hi - lo + 1) (fun i -> lo + i))

let mem t c = c >= 0 && c < Array.length t && t.(c)

let count t = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t

let to_list t =
  let acc = ref [] in
  for i = Array.length t - 1 downto 0 do
    if t.(i) then acc := i :: !acc
  done;
  !acc

let equal a b = a = b

let width t = Array.length t

let pp ppf t =
  Format.fprintf ppf "{%s}" (String.concat "," (List.map string_of_int (to_list t)))
