lib/multigrid/packing_run.mli: Fmg_profile Oskern Preempt_core
