lib/multigrid/grid.ml: Array Float
