lib/multigrid/grid3d.ml: Array Float
