lib/multigrid/fmg_profile.mli:
