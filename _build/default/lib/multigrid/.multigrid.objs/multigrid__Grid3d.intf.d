lib/multigrid/grid3d.mli:
