lib/multigrid/fmg_profile.ml: List
