lib/multigrid/packing_run.ml: Config Cpuset Desim Engine Float Fmg_profile Kernel List Machine Ompmodel Oskern Preempt_core Printf Runtime Sched_packing Stdlib Types Ult Usync
