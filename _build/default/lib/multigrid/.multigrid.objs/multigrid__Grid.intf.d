lib/multigrid/grid.mli:
