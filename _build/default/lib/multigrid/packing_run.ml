open Desim
open Oskern
open Preempt_core
module Omp = Ompmodel.Omp

type config =
  | Bolt_packing of {
      kind : Types.thread_kind;
      timer : Config.timer_strategy;
      interval : float;
    }
  | Iomp_taskset

type result = { time : float; preemptions : int }

let config_name = function
  | Bolt_packing { kind = Types.Nonpreemptive; _ } -> "BOLT (nonpreemptive)"
  | Bolt_packing { interval; _ } ->
      Printf.sprintf "BOLT (preemptive; %g ms)" (interval *. 1e3)
  | Iomp_taskset -> "IOMP"

(* Worker thread body: equal share of each phase, then a barrier. *)
let bolt_thread rt barrier phases share () =
  List.iter
    (fun (p : Fmg_profile.phase) ->
      Ult.compute (p.Fmg_profile.work /. share);
      Usync.Barrier.wait barrier)
    phases;
  ignore rt

let run ?(machine = Machine.skylake) ~n_threads ~n_active ~phases config =
  match config with
  | Bolt_packing { kind; timer; interval } ->
      let machine = Machine.with_cores machine n_threads in
      let eng = Engine.create () in
      let kernel = Kernel.create eng machine in
      let cfg =
        {
          Config.default with
          Config.timer_strategy = timer;
          interval;
          idle_poll = 50e-6;
        }
      in
      let rt =
        Runtime.create ~config:cfg ~scheduler:(Sched_packing.make ()) kernel
          ~n_workers:n_threads
      in
      let barrier = Usync.Barrier.create rt n_threads in
      let finish = ref 0.0 in
      for i = 0 to n_threads - 1 do
        ignore
          (Runtime.spawn rt ~kind ~home:i ~name:(Printf.sprintf "mg%d" i) (fun () ->
               bolt_thread rt barrier phases (float_of_int n_threads) ();
               finish := Float.max !finish (Ult.now ())))
      done;
      Runtime.start rt;
      (* Pack immediately: reduce active workers before the solve. *)
      ignore (Engine.after eng 0.0 (fun () -> Runtime.set_active_workers rt n_active));
      Engine.run eng;
      { time = !finish; preemptions = Runtime.preempt_signals rt }
  | Iomp_taskset ->
      let machine = Machine.with_cores machine n_threads in
      let eng = Engine.create () in
      let kernel = Kernel.create eng machine in
      let omp = Omp.create kernel ~blocktime:0.0 ~bind:false () in
      let mask = Cpuset.range n_threads 0 (n_active - 1) in
      let finish = ref 0.0 in
      ignore
        (Kernel.spawn kernel ~affinity:mask ~name:"main" (fun master ->
             (* Warm the hot team, then taskset everyone. *)
             Omp.parallel omp ~master ~nthreads:n_threads (fun _ _ -> ());
             Omp.set_affinity_all omp mask;
             let t0 = Kernel.now kernel in
             List.iter
               (fun (p : Fmg_profile.phase) ->
                 Omp.parallel omp ~master ~nthreads:n_threads (fun _tid klt ->
                     Kernel.compute kernel klt
                       (p.Fmg_profile.work /. float_of_int n_threads)))
               phases;
             finish := Kernel.now kernel -. t0;
             Omp.shutdown omp));
      Engine.run eng;
      { time = !finish; preemptions = 0 }

let baseline ?(machine = Machine.skylake) ~n ~phases () =
  let machine = Machine.with_cores machine (Stdlib.max 1 n) in
  let eng = Engine.create () in
  let kernel = Kernel.create eng machine in
  let rt = Runtime.create kernel ~n_workers:n in
  let barrier = Usync.Barrier.create rt n in
  let finish = ref 0.0 in
  for i = 0 to n - 1 do
    ignore
      (Runtime.spawn rt ~home:i ~name:(Printf.sprintf "base%d" i) (fun () ->
           bolt_thread rt barrier phases (float_of_int n) ();
           finish := Float.max !finish (Ult.now ())))
  done;
  Runtime.start rt;
  Engine.run eng;
  !finish
