type level = { n : int; h : float; u : float array; f : float array; r : float array }

let make_level n =
  if n < 1 then invalid_arg "Grid.make_level: n < 1";
  {
    n;
    h = 1.0 /. float_of_int (n + 1);
    u = Array.make (n + 2) 0.0;
    f = Array.make (n + 2) 0.0;
    r = Array.make (n + 2) 0.0;
  }

(* Weighted Jacobi: u_i <- (1-w) u_i + w (u_{i-1} + u_{i+1} + h^2 f_i)/2. *)
let smooth lvl ~sweeps =
  let w = 2.0 /. 3.0 in
  let h2 = lvl.h *. lvl.h in
  let tmp = Array.make (lvl.n + 2) 0.0 in
  for _ = 1 to sweeps do
    for i = 1 to lvl.n do
      tmp.(i) <-
        ((1.0 -. w) *. lvl.u.(i))
        +. (w *. 0.5 *. (lvl.u.(i - 1) +. lvl.u.(i + 1) +. (h2 *. lvl.f.(i))))
    done;
    Array.blit tmp 1 lvl.u 1 lvl.n
  done

let residual lvl =
  let h2 = lvl.h *. lvl.h in
  let norm = ref 0.0 in
  for i = 1 to lvl.n do
    (* r = f + u'' = f + (u_{i-1} - 2 u_i + u_{i+1}) / h^2 *)
    lvl.r.(i) <- lvl.f.(i) +. ((lvl.u.(i - 1) -. (2.0 *. lvl.u.(i)) +. lvl.u.(i + 1)) /. h2);
    let a = Float.abs lvl.r.(i) in
    if a > !norm then norm := a
  done;
  !norm

let restrict ~fine ~coarse =
  assert (coarse.n = (fine.n - 1) / 2);
  for i = 1 to coarse.n do
    let fi = 2 * i in
    coarse.f.(i) <- 0.25 *. (fine.r.(fi - 1) +. (2.0 *. fine.r.(fi)) +. fine.r.(fi + 1));
    coarse.u.(i) <- 0.0
  done

let prolongate ~coarse ~fine =
  for i = 1 to coarse.n do
    let fi = 2 * i in
    fine.u.(fi) <- fine.u.(fi) +. coarse.u.(i)
  done;
  for i = 0 to coarse.n do
    let fi = (2 * i) + 1 in
    fine.u.(fi) <- fine.u.(fi) +. (0.5 *. (coarse.u.(i) +. coarse.u.(i + 1)))
  done

let solve_direct lvl =
  (* Thomas algorithm for -u'' = f: tridiagonal (-1, 2, -1)/h^2. *)
  let n = lvl.n in
  let h2 = lvl.h *. lvl.h in
  let c' = Array.make (n + 1) 0.0 in
  let d' = Array.make (n + 1) 0.0 in
  let a = -1.0 and b = 2.0 and c = -1.0 in
  c'.(1) <- c /. b;
  d'.(1) <- h2 *. lvl.f.(1) /. b;
  for i = 2 to n do
    let m = b -. (a *. c'.(i - 1)) in
    c'.(i) <- c /. m;
    d'.(i) <- ((h2 *. lvl.f.(i)) -. (a *. d'.(i - 1))) /. m
  done;
  lvl.u.(n) <- d'.(n);
  for i = n - 1 downto 1 do
    lvl.u.(i) <- d'.(i) -. (c'.(i) *. lvl.u.(i + 1))
  done

type hierarchy = { levels : level array (* 0 = finest *) }

let make_hierarchy ~levels ~n_finest =
  if levels < 1 then invalid_arg "Grid.make_hierarchy: levels < 1";
  let lv =
    Array.init levels (fun l ->
        let n = ref n_finest in
        for _ = 1 to l do
          n := (!n - 1) / 2
        done;
        if !n < 1 then invalid_arg "Grid.make_hierarchy: too many levels";
        make_level !n)
  in
  { levels = lv }

let finest h = h.levels.(0)

let rec v_cycle_at h l ~sweeps =
  let lvl = h.levels.(l) in
  if l = Array.length h.levels - 1 then solve_direct lvl
  else begin
    smooth lvl ~sweeps;
    ignore (residual lvl);
    restrict ~fine:lvl ~coarse:h.levels.(l + 1);
    v_cycle_at h (l + 1) ~sweeps;
    prolongate ~coarse:h.levels.(l + 1) ~fine:lvl;
    smooth lvl ~sweeps
  end

let v_cycle h ?(from_level = 0) ~sweeps () = v_cycle_at h from_level ~sweeps

let fmg h ~sweeps =
  let nl = Array.length h.levels in
  (* Restrict the rhs down by injection so every level has a problem. *)
  for l = 0 to nl - 2 do
    let fine = h.levels.(l) and coarse = h.levels.(l + 1) in
    for i = 1 to coarse.n do
      coarse.f.(i) <- fine.f.(2 * i)
    done
  done;
  solve_direct h.levels.(nl - 1);
  for l = nl - 2 downto 0 do
    let fine = h.levels.(l) in
    Array.fill fine.u 0 (fine.n + 2) 0.0;
    prolongate ~coarse:h.levels.(l + 1) ~fine;
    v_cycle_at h l ~sweeps;
    v_cycle_at h l ~sweeps
  done;
  residual (finest h)

let set_problem h frhs u_exact =
  let fine = finest h in
  for i = 1 to fine.n do
    let x = float_of_int i *. fine.h in
    fine.f.(i) <- frhs x
  done;
  fun () ->
    let err = ref 0.0 in
    for i = 1 to fine.n do
      let x = float_of_int i *. fine.h in
      let e = Float.abs (fine.u.(i) -. u_exact x) in
      if e > !err then err := e
    done;
    !err
