(** Real 3D geometric multigrid for the Poisson problem
    [-laplacian u = f] on the unit cube with homogeneous Dirichlet
    boundaries — the dimensionality HPGMG-FV actually runs.

    Levels store [n^3] interior points plus a ghost layer.  The smoother
    is weighted Jacobi (7-point stencil), restriction is full weighting
    over the 27-point neighbourhood, prolongation is trilinear. *)

type level

(** [make_level n] — [n] interior points per dimension. *)
val make_level : int -> level

val level_n : level -> int

val get_u : level -> int -> int -> int -> float

val set_f : level -> int -> int -> int -> float -> unit

val smooth : level -> sweeps:int -> unit

(** Residual into the level's scratch array; returns its max-norm. *)
val residual : level -> float

type hierarchy

(** [make ~levels ~n_finest] — [n_finest] must be of the form
    [2^k - 1] so that coarsening by [n -> (n-1)/2] stays odd. *)
val make : levels:int -> n_finest:int -> hierarchy

val finest : hierarchy -> level

(** One V-cycle from the finest level ([sweeps] pre- and post-smooths). *)
val v_cycle : hierarchy -> sweeps:int -> unit

(** [solve h ~sweeps ~tol ~max_cycles] — V-cycles until the residual
    max-norm drops below [tol]; returns (cycles, final residual). *)
val solve : hierarchy -> sweeps:int -> tol:float -> max_cycles:int -> int * float

(** [set_problem h f] fills the finest rhs with [f x y z]. *)
val set_problem : hierarchy -> (float -> float -> float -> float) -> unit

(** Max-norm error of the finest solution against [u x y z]. *)
val error_vs : hierarchy -> (float -> float -> float -> float) -> float
