(** Thread-packing runs of the HPGMG-style phase profile (paper Fig. 8).

    [n_threads] threads (= the initial core count) execute every phase
    in equal shares, separated by barriers, while only [n_active] cores
    may run them.  The BOLT variants suspend workers and reschedule
    their threads through the packing scheduler (Algorithm 1); the IOMP
    variant restricts 1:1 threads with a [taskset]-style affinity mask
    and leaves scheduling to the simulated CFS. *)

type config =
  | Bolt_packing of {
      kind : Preempt_core.Types.thread_kind;
      timer : Preempt_core.Config.timer_strategy;
      interval : float;
    }
  | Iomp_taskset

type result = { time : float; preemptions : int }

val config_name : config -> string

(** [run ~n_threads ~n_active ~phases cfg] — simulated solve time. *)
val run :
  ?machine:Oskern.Machine.t ->
  n_threads:int ->
  n_active:int ->
  phases:Fmg_profile.phase list ->
  config ->
  result

(** The paper's baseline: [n] threads on [n] cores from the beginning,
    nonpreemptive BOLT. *)
val baseline :
  ?machine:Oskern.Machine.t -> n:int -> phases:Fmg_profile.phase list -> unit -> float
