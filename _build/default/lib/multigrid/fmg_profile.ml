type phase = { level : int; work : float }

(* Work of one parallel phase at [level], in arbitrary units: cell count
   of a 3D grid halves per dimension per level. *)
let unit_work level = 1.0 /. (8.0 ** float_of_int level)

(* One V-cycle from [l] down: smooth, residual+restrict on the way down,
   prolongate+smooth on the way up — each a barrier-separated phase. *)
let v_cycle ~levels l =
  let down =
    List.concat_map
      (fun m ->
        [
          { level = m; work = unit_work m } (* pre-smooth sweep 1 *);
          { level = m; work = unit_work m } (* pre-smooth sweep 2 *);
          { level = m; work = unit_work m *. 0.5 } (* residual + restrict *);
        ])
      (List.init (levels - 1 - l) (fun i -> l + i))
  in
  let bottom = [ { level = levels - 1; work = unit_work (levels - 1) } ] in
  let up =
    List.concat_map
      (fun m ->
        [
          { level = m; work = unit_work m *. 0.25 } (* prolongate *);
          { level = m; work = unit_work m } (* post-smooth *);
        ])
      (List.rev (List.init (levels - 1 - l) (fun i -> l + i)))
  in
  down @ bottom @ up

let phases ~levels ~total_core_seconds =
  if levels < 2 then invalid_arg "Fmg_profile.phases: levels < 2";
  let raw =
    List.concat_map
      (fun l -> ({ level = l; work = unit_work l *. 0.25 } :: v_cycle ~levels l) @ v_cycle ~levels l)
      (List.rev (List.init (levels - 1) (fun i -> i)))
  in
  let raw_total = List.fold_left (fun acc p -> acc +. p.work) 0.0 raw in
  let scale = total_core_seconds /. raw_total in
  List.map (fun p -> { p with work = p.work *. scale }) raw

let total_work ps = List.fold_left (fun acc p -> acc +. p.work) 0.0 ps

let count = List.length
