(** Parallel-phase profile of an HPGMG-FV-style full-multigrid solve.

    The thread-packing experiment (paper Fig. 8) depends on the
    {e structure} of the solver — a long sequence of barrier-separated
    parallel phases whose sizes span orders of magnitude across levels —
    not on stencil arithmetic.  This module derives that sequence from
    the same FMG recursion as {!Grid.fmg} and scales it to a target
    total CPU time. *)

type phase = {
  level : int;  (** multigrid level, 0 = finest *)
  work : float;  (** total core-seconds in this phase *)
}

(** [phases ~levels ~total_core_seconds] — FMG phase list: for each FMG
    stage, prolongation plus two V-cycles, with per-level work scaling
    as [8^-level] (3D boxes). *)
val phases : levels:int -> total_core_seconds:float -> phase list

val total_work : phase list -> float

val count : phase list -> int
