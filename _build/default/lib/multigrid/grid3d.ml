type level = {
  n : int;  (* interior points per dimension *)
  h : float;
  stride : int;  (* n + 2 with ghosts *)
  u : float array;
  f : float array;
  r : float array;
  tmp : float array;
}

let idx lvl i j k = ((i * lvl.stride) + j) * lvl.stride + k

let make_level n =
  if n < 1 then invalid_arg "Grid3d.make_level: n < 1";
  let stride = n + 2 in
  let sz = stride * stride * stride in
  {
    n;
    h = 1.0 /. float_of_int (n + 1);
    stride;
    u = Array.make sz 0.0;
    f = Array.make sz 0.0;
    r = Array.make sz 0.0;
    tmp = Array.make sz 0.0;
  }

let level_n lvl = lvl.n

let get_u lvl i j k = lvl.u.(idx lvl i j k)

let set_f lvl i j k v = lvl.f.(idx lvl i j k) <- v

(* Weighted Jacobi on the 7-point stencil:
   u <- (1-w) u + w (sum_neighbours + h^2 f) / 6. *)
let smooth lvl ~sweeps =
  let w = 6.0 /. 7.0 in
  let h2 = lvl.h *. lvl.h in
  for _ = 1 to sweeps do
    for i = 1 to lvl.n do
      for j = 1 to lvl.n do
        for k = 1 to lvl.n do
          let c = idx lvl i j k in
          let s =
            lvl.u.(idx lvl (i - 1) j k)
            +. lvl.u.(idx lvl (i + 1) j k)
            +. lvl.u.(idx lvl i (j - 1) k)
            +. lvl.u.(idx lvl i (j + 1) k)
            +. lvl.u.(idx lvl i j (k - 1))
            +. lvl.u.(idx lvl i j (k + 1))
          in
          lvl.tmp.(c) <- ((1.0 -. w) *. lvl.u.(c)) +. (w *. (s +. (h2 *. lvl.f.(c))) /. 6.0)
        done
      done
    done;
    Array.blit lvl.tmp 0 lvl.u 0 (Array.length lvl.u)
  done

let residual lvl =
  let h2 = lvl.h *. lvl.h in
  let norm = ref 0.0 in
  for i = 1 to lvl.n do
    for j = 1 to lvl.n do
      for k = 1 to lvl.n do
        let c = idx lvl i j k in
        let lap =
          lvl.u.(idx lvl (i - 1) j k)
          +. lvl.u.(idx lvl (i + 1) j k)
          +. lvl.u.(idx lvl i (j - 1) k)
          +. lvl.u.(idx lvl i (j + 1) k)
          +. lvl.u.(idx lvl i j (k - 1))
          +. lvl.u.(idx lvl i j (k + 1))
          -. (6.0 *. lvl.u.(c))
        in
        lvl.r.(c) <- lvl.f.(c) +. (lap /. h2);
        let a = Float.abs lvl.r.(c) in
        if a > !norm then norm := a
      done
    done
  done;
  !norm

(* Full-weighting restriction of fine.r into coarse.f (27-point):
   weights 1/8 centre, 1/16 faces, 1/32 edges, 1/64 corners. *)
let restrict ~fine ~coarse =
  for i = 1 to coarse.n do
    for j = 1 to coarse.n do
      for k = 1 to coarse.n do
        let fi = 2 * i and fj = 2 * j and fk = 2 * k in
        let acc = ref 0.0 in
        for di = -1 to 1 do
          for dj = -1 to 1 do
            for dk = -1 to 1 do
              let w =
                1.0 /. float_of_int (8 * (1 lsl (abs di + abs dj + abs dk)))
              in
              acc := !acc +. (w *. fine.r.(idx fine (fi + di) (fj + dj) (fk + dk)))
            done
          done
        done;
        coarse.f.(idx coarse i j k) <- !acc;
        coarse.u.(idx coarse i j k) <- 0.0
      done
    done
  done

(* Trilinear prolongation of coarse.u added into fine.u. *)
let prolongate ~coarse ~fine =
  for i = 1 to fine.n do
    for j = 1 to fine.n do
      for k = 1 to fine.n do
        (* Fine point (i,j,k) sits between coarse nodes (i/2..i/2+1, ...):
           even fine indices coincide with a coarse node (frac 0), odd
           ones sit halfway (frac 0.5). *)
        let ci = i / 2 and cj = j / 2 and ck = k / 2 in
        let fi = if i land 1 = 0 then 0.0 else 0.5 in
        let fj = if j land 1 = 0 then 0.0 else 0.5 in
        let fk = if k land 1 = 0 then 0.0 else 0.5 in
        let cu di dj dk = coarse.u.(idx coarse (ci + di) (cj + dj) (ck + dk)) in
        let v =
          ((1.0 -. fi) *. (1.0 -. fj) *. (1.0 -. fk) *. cu 0 0 0)
          +. (fi *. (1.0 -. fj) *. (1.0 -. fk) *. cu 1 0 0)
          +. ((1.0 -. fi) *. fj *. (1.0 -. fk) *. cu 0 1 0)
          +. ((1.0 -. fi) *. (1.0 -. fj) *. fk *. cu 0 0 1)
          +. (fi *. fj *. (1.0 -. fk) *. cu 1 1 0)
          +. (fi *. (1.0 -. fj) *. fk *. cu 1 0 1)
          +. ((1.0 -. fi) *. fj *. fk *. cu 0 1 1)
          +. (fi *. fj *. fk *. cu 1 1 1)
        in
        fine.u.(idx fine i j k) <- fine.u.(idx fine i j k) +. v
      done
    done
  done

type hierarchy = { levels : level array }

let make ~levels ~n_finest =
  if levels < 1 then invalid_arg "Grid3d.make: levels < 1";
  let lv =
    Array.init levels (fun l ->
        let n = ref n_finest in
        for _ = 1 to l do
          if (!n - 1) mod 2 <> 0 then invalid_arg "Grid3d.make: n_finest must be 2^k - 1";
          n := (!n - 1) / 2
        done;
        if !n < 1 then invalid_arg "Grid3d.make: too many levels";
        make_level !n)
  in
  { levels = lv }

let finest h = h.levels.(0)

let rec v_cycle_at h l ~sweeps =
  let lvl = h.levels.(l) in
  if l = Array.length h.levels - 1 then
    (* Coarsest: smooth hard instead of a direct solve; the grid is tiny. *)
    smooth lvl ~sweeps:50
  else begin
    smooth lvl ~sweeps;
    ignore (residual lvl);
    restrict ~fine:lvl ~coarse:h.levels.(l + 1);
    v_cycle_at h (l + 1) ~sweeps;
    prolongate ~coarse:h.levels.(l + 1) ~fine:lvl;
    smooth lvl ~sweeps
  end

let v_cycle h ~sweeps = v_cycle_at h 0 ~sweeps

let solve h ~sweeps ~tol ~max_cycles =
  let rec go cycles =
    let r = residual (finest h) in
    if r <= tol || cycles >= max_cycles then (cycles, r)
    else begin
      v_cycle h ~sweeps;
      go (cycles + 1)
    end
  in
  go 0

let set_problem h f =
  let lvl = finest h in
  for i = 1 to lvl.n do
    for j = 1 to lvl.n do
      for k = 1 to lvl.n do
        let x = float_of_int i *. lvl.h
        and y = float_of_int j *. lvl.h
        and z = float_of_int k *. lvl.h in
        lvl.f.(idx lvl i j k) <- f x y z
      done
    done
  done

let error_vs h u_exact =
  let lvl = finest h in
  let err = ref 0.0 in
  for i = 1 to lvl.n do
    for j = 1 to lvl.n do
      for k = 1 to lvl.n do
        let x = float_of_int i *. lvl.h
        and y = float_of_int j *. lvl.h
        and z = float_of_int k *. lvl.h in
        let e = Float.abs (lvl.u.(idx lvl i j k) -. u_exact x y z) in
        if e > !err then err := e
      done
    done
  done;
  !err
