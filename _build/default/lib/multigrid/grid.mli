(** Real 1D geometric multigrid for the Poisson problem [-u'' = f] on
    [0,1] with homogeneous Dirichlet boundaries.

    This is the numerical core behind the HPGMG-FV substitution: a
    genuinely convergent full-multigrid solver whose level structure
    drives the thread-packing experiment's phase profile. *)

type level = {
  n : int;  (** interior points *)
  h : float;
  u : float array;  (** solution, with boundary ghosts at 0 and n+1 *)
  f : float array;  (** right-hand side *)
  r : float array;  (** residual scratch *)
}

val make_level : int -> level

(** [smooth lvl ~sweeps] runs weighted-Jacobi sweeps (w = 2/3). *)
val smooth : level -> sweeps:int -> unit

(** Residual [f + u''] into [lvl.r]; returns its max-norm. *)
val residual : level -> float

(** Full-weighting restriction of [fine.r] into [coarse.f]; zeroes
    [coarse.u]. *)
val restrict : fine:level -> coarse:level -> unit

(** Linear prolongation of [coarse.u] added into [fine.u]. *)
val prolongate : coarse:level -> fine:level -> unit

(** [solve_direct lvl] solves the coarsest level exactly (Thomas
    algorithm). *)
val solve_direct : level -> unit

type hierarchy

(** [make_hierarchy ~levels ~n_finest] builds levels n, n/2, ... *)
val make_hierarchy : levels:int -> n_finest:int -> hierarchy

val finest : hierarchy -> level

(** One V-cycle starting at level [l] (0 = finest). *)
val v_cycle : hierarchy -> ?from_level:int -> sweeps:int -> unit -> unit

(** Full multigrid: solve coarse first, prolong up, V-cycle at each
    level.  Returns the final residual max-norm on the finest level. *)
val fmg : hierarchy -> sweeps:int -> float

(** [set_problem h f u_exact] installs rhs [f(x)]; returns a function
    giving the max-norm error against [u_exact] on the finest level. *)
val set_problem : hierarchy -> (float -> float) -> (float -> float) -> unit -> float
