(** Paper Fig. 8: relative overhead of thread packing in HPGMG-FV.

    28 threads per process; the number of active cores shrinks from 28
    to n.  Baseline: n threads on n cores from the start.  Expected
    shape: IOMP (taskset + CFS) far from ideal, worst near n=28;
    nonpreemptive BOLT good only when n divides 28; preemptive BOLT
    close to ideal, 1 ms a bit better than 10 ms. *)

open Preempt_core
module PR = Multigrid.Packing_run

let n_threads = 28

let configs =
  [
    PR.Bolt_packing
      { kind = Types.Nonpreemptive; timer = Config.No_timer; interval = 1e-3 };
    PR.Bolt_packing
      { kind = Types.Klt_switching; timer = Config.Per_worker_aligned; interval = 10e-3 };
    PR.Bolt_packing
      { kind = Types.Klt_switching; timer = Config.Per_worker_aligned; interval = 1e-3 };
    PR.Iomp_taskset;
  ]

type point = { n_active : int; overhead : float; time : float; baseline : float }

type series = { config : PR.config; points : point list }

let active_counts ~fast =
  if fast then [ 5; 7; 14; 20; 27; 28 ] else List.init 25 (fun i -> i + 4)

(* The profile keeps the paper's scale even in fast mode: shrinking the
   solve would make phases shorter than the preemption intervals and
   change the physics; fast mode only trims the sweep points. *)
let phases ~fast =
  ignore fast;
  Multigrid.Fmg_profile.phases ~levels:7 ~total_core_seconds:25.0

let series ?(fast = false) () =
  let phases = phases ~fast in
  let baselines =
    List.map (fun n -> (n, PR.baseline ~n ~phases ())) (active_counts ~fast)
  in
  ( baselines,
    List.map
      (fun config ->
        {
          config;
          points =
            List.map
              (fun n ->
                let r = PR.run ~n_threads ~n_active:n ~phases config in
                let baseline = List.assoc n baselines in
                {
                  n_active = n;
                  time = r.PR.time;
                  baseline;
                  overhead = (r.PR.time /. baseline) -. 1.0;
                })
              (active_counts ~fast);
        })
      configs )

let run ?(fast = false) () =
  Exputil.heading
    "Figure 8: thread packing overhead in HPGMG-FV (28 threads packed onto n cores)";
  let baselines, data = series ~fast () in
  Exputil.table ~x_label:"n"
    ~columns:(List.map (fun s -> PR.config_name s.config) data @ [ "baseline time" ])
    ~rows:(List.map (fun n -> (string_of_int n, n)) (active_counts ~fast))
    ~cell:(fun n col ->
      if col = List.length data then Exputil.seconds (List.assoc n baselines)
      else
        let s = List.nth data col in
        match List.find_opt (fun p -> p.n_active = n) s.points with
        | Some p -> Exputil.pct p.overhead
        | None -> "-");
  print_newline ();
  print_string
    (Chart.render ~x_label:"active cores" ~y_label:"overhead %"
       (List.map
          (fun s ->
            {
              Chart.label = PR.config_name s.config;
              points =
                List.map (fun p -> (float_of_int p.n_active, p.overhead *. 100.0)) s.points;
            })
          data));
  Chart.write_csv "results/fig8.csv"
    ~header:("n_active" :: List.map (fun s -> PR.config_name s.config) data @ [ "baseline_s" ])
    (List.map
       (fun n ->
         (float_of_int n
          :: List.map
               (fun s ->
                 match List.find_opt (fun p -> p.n_active = n) s.points with
                 | Some p -> p.overhead *. 100.0
                 | None -> Float.nan)
               data)
         @ [ List.assoc n baselines ])
       (active_counts ~fast));
  Printf.printf
    "\nPaper: IOMP far from ideal (CFS load imbalance), nonpreemptive BOLT good only\n\
     at divisors of 28, preemptive BOLT near-ideal with 1 ms < 10 ms. (results/fig8.csv)\n";
  (baselines, data)
