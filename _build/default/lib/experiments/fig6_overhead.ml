(** Paper Fig. 6: relative overhead of preemptive M:N threads over
    nonpreemptive M:N threads, as a function of the preemption-timer
    interval, on Skylake and KNL.

    Five variants, matching the paper's lines: pure timer interruption,
    signal-yield, and KLT-switching in three optimization stages
    (sigsuspend-based, futex-based, futex + worker-local KLT pool).
    Expected shape: signal-yield ~= timer-only; each KLT-switching
    optimization cuts the gap; everything melts below 1% once the
    interval reaches ~1 ms (Skylake) / ~10 ms (KNL). *)

open Desim
open Oskern
open Preempt_core

type variant =
  | Timer_only
  | Signal_yield_v
  | Klt_naive  (** sigsuspend suspend/resume, global pool only *)
  | Klt_futex  (** futex suspend/resume, global pool only *)
  | Klt_futex_local  (** futex + worker-local KLT pools *)

let variant_name = function
  | Timer_only -> "Timer interruption only"
  | Signal_yield_v -> "Signal-yield"
  | Klt_naive -> "KLT-switching"
  | Klt_futex -> "KLT-switching (futex)"
  | Klt_futex_local -> "KLT-switching (futex, local pool)"

let variants = [ Klt_naive; Klt_futex; Klt_futex_local; Signal_yield_v; Timer_only ]

type point = { interval : float; overhead : float }

type series = { variant : variant; points : point list }

(* The paper's microbenchmark: each of [workers] workers runs
   [threads_per_worker] threads that just consume cycles. *)
let run_once machine ~workers ~threads_per_worker ~per_thread ~variant ~interval =
  let eng = Engine.create () in
  let kernel = Kernel.create eng (Machine.with_cores machine workers) in
  let timer_strategy =
    match (variant, interval) with
    | _, None -> Config.No_timer
    | _, Some _ -> Config.Per_worker_aligned
  in
  let config =
    {
      Config.default with
      Config.timer_strategy;
      interval = Option.value ~default:1e-3 interval;
      suspend_mode =
        (match variant with Klt_naive -> Config.Sigsuspend | _ -> Config.Futex_suspend);
      use_local_klt_pool = (match variant with Klt_futex_local -> true | _ -> false);
    }
  in
  let rt = Runtime.create ~config kernel ~n_workers:workers in
  let kind =
    match variant with
    | Timer_only -> Types.Nonpreemptive
    | Signal_yield_v -> Types.Signal_yield
    | Klt_naive | Klt_futex | Klt_futex_local -> Types.Klt_switching
  in
  let finish = ref 0.0 in
  for w = 0 to workers - 1 do
    for t = 0 to threads_per_worker - 1 do
      ignore
        (Runtime.spawn rt ~kind ~footprint:0.0 ~home:w
           ~name:(Printf.sprintf "spin%d.%d" w t) (fun () ->
             Ult.compute per_thread;
             finish := Float.max !finish (Ult.now ())))
    done
  done;
  Runtime.start rt;
  Engine.run eng;
  !finish

(* The shortest intervals are by far the most expensive to simulate
   (switch cost approaches the interval, especially on KNL); the fast
   preset trims them. *)
let intervals ?(knl = false) ~fast () =
  if fast then (if knl then [ 1e-3; 3e-3; 1e-2 ] else [ 3e-4; 1e-3; 1e-2 ])
  else [ 1e-4; 3e-4; 1e-3; 3e-3; 1e-2 ]

let series_for machine ?(fast = false) () =
  let workers = 56 and threads_per_worker = 10 in
  let knl = machine == Machine.knl in
  (* Long enough that end-of-run scheduling noise (max over 56 workers)
     stays below the per-switch signal, as in the paper's headline
     "overhead < 1% at 1 ms". *)
  let per_thread = 20e-3 in
  let baseline =
    run_once machine ~workers ~threads_per_worker ~per_thread ~variant:Timer_only
      ~interval:None
  in
  ( baseline,
    List.map
      (fun variant ->
        {
          variant;
          points =
            List.map
              (fun interval ->
                let t =
                  run_once machine ~workers ~threads_per_worker ~per_thread ~variant
                    ~interval:(Some interval)
                in
                { interval; overhead = (t /. baseline) -. 1.0 })
              (intervals ~knl ~fast ());
        })
      variants )

let run ?(fast = false) () =
  let go machine label =
    Exputil.subheading label;
    let baseline, data = series_for machine ~fast () in
    Printf.printf "(nonpreemptive baseline: %s)\n" (Exputil.seconds baseline);
    let knl = machine == Machine.knl in
    Exputil.table ~x_label:"interval"
      ~columns:(List.map (fun s -> variant_name s.variant) data)
      ~rows:
        (List.map (fun i -> (Printf.sprintf "%gus" (i *. 1e6), i)) (intervals ~knl ~fast ()))
      ~cell:(fun i col ->
        let s = List.nth data col in
        match List.find_opt (fun p -> p.interval = i) s.points with
        | Some p -> Exputil.pct p.overhead
        | None -> "-");
    print_newline ();
    print_string
      (Chart.render ~x_log:true ~y_log:true ~x_label:"interval us" ~y_label:"overhead %"
         (List.map
            (fun s ->
              {
                Chart.label = variant_name s.variant;
                points =
                  List.map (fun p -> (p.interval *. 1e6, p.overhead *. 100.0)) s.points;
              })
            data));
    Chart.write_csv
      (Printf.sprintf "results/fig6_%s.csv" (if machine == Machine.knl then "knl" else "skylake"))
      ~header:("interval_us" :: List.map (fun s -> variant_name s.variant) data)
      (List.map
         (fun i ->
           (i *. 1e6)
           :: List.map
                (fun s ->
                  match List.find_opt (fun p -> p.interval = i) s.points with
                  | Some p -> p.overhead *. 100.0
                  | None -> Float.nan)
                data)
         (intervals ~knl ~fast ()));
    data
  in
  Exputil.heading
    "Figure 6: overhead of preemptive vs nonpreemptive M:N threads (56 workers x 10 threads)";
  let sky = go Machine.skylake "(a) Skylake" in
  let knl = go Machine.knl "(b) KNL" in
  Printf.printf
    "\nPaper: signal-yield ~ timer-only; futex and local-pool each cut KLT-switching\n\
     overhead (~2x combined); <1%% at 1 ms on Skylake, ~10 ms on KNL.\n";
  (sky, knl)
