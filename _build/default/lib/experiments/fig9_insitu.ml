(** Paper Fig. 9: relative overhead of in-situ analysis with LAMMPS,
    versus the number of atoms, for analysis every 1 (a) and every 2 (b)
    simulation steps. *)

module IR = Moldyn.Insitu_run

let configs =
  [
    { IR.rk = IR.Pthreads; priority = false };
    { IR.rk = IR.Pthreads; priority = true };
    { IR.rk = IR.Argobots; priority = false };
    { IR.rk = IR.Argobots; priority = true };
  ]

type point = {
  atoms_global : float;
  overhead : float;
  time : float;
  baseline : float;
  idle_frac : float;
}

type series = { config : IR.config; points : point list }

(* Global atom counts (4 nodes); each simulated process holds 1/4. *)
let atom_counts ~fast =
  if fast then [ 1.4e7; 2.8e7; 5.6e7 ] else [ 0.7e7; 1.4e7; 2.8e7; 4.2e7; 5.6e7 ]

let steps ~fast = if fast then 20 else 100

let series ?(fast = false) ~interval () =
  let steps = steps ~fast in
  let baselines =
    List.map
      (fun atoms ->
        let r =
          IR.run ~atoms:(atoms /. 4.0) ~steps ~analysis_interval:None
            { IR.rk = IR.Argobots; priority = true }
        in
        (atoms, r.IR.time))
      (atom_counts ~fast)
  in
  ( baselines,
    List.map
      (fun config ->
        {
          config;
          points =
            List.map
              (fun atoms ->
                let r =
                  IR.run ~atoms:(atoms /. 4.0) ~steps ~analysis_interval:(Some interval)
                    config
                in
                let baseline = List.assoc atoms baselines in
                {
                  atoms_global = atoms;
                  time = r.IR.time;
                  baseline;
                  overhead = (r.IR.time /. baseline) -. 1.0;
                  idle_frac = r.IR.idle_frac;
                })
              (atom_counts ~fast);
        })
      configs )

let print_part ~fast ~interval label =
  Exputil.subheading label;
  let baselines, data = series ~fast ~interval () in
  Exputil.table ~x_label:"atoms"
    ~columns:(List.map (fun s -> IR.config_name s.config) data @ [ "sim-only time" ])
    ~rows:
      (List.map
         (fun a -> (Printf.sprintf "%.1fe7" (a /. 1e7), a))
         (atom_counts ~fast))
    ~cell:(fun a col ->
      if col = List.length data then Exputil.seconds (List.assoc a baselines)
      else
        let s = List.nth data col in
        match List.find_opt (fun p -> p.atoms_global = a) s.points with
        | Some p -> Printf.sprintf "%s (idle %s)" (Exputil.pct p.overhead) (Exputil.pct p.idle_frac)
        | None -> "-");
  (baselines, data)

let write_csv name (baselines, data) =
  Chart.write_csv
    (Printf.sprintf "results/fig9%s.csv" name)
    ~header:
      ("atoms_e7"
       :: List.map (fun s -> IR.config_name s.config) data
       @ [ "baseline_s" ])
    (List.map
       (fun a ->
         ((a /. 1e7)
          :: List.map
               (fun s ->
                 match List.find_opt (fun p -> p.atoms_global = a) s.points with
                 | Some p -> p.overhead *. 100.0
                 | None -> Float.nan)
               data)
         @ [ List.assoc a baselines ])
       (List.map (fun (a, _) -> a) baselines))

(* Ablation beyond the paper: strict SCHED_FIFO prioritization of the
   simulation threads — the "requires root" option §4.3 mentions. *)
let fifo_ablation ~fast () =
  Exputil.subheading "ablation: Pthreads with SCHED_FIFO simulation threads (interval 2)";
  let steps = steps ~fast in
  List.iter
    (fun atoms ->
      let base =
        IR.run ~atoms:(atoms /. 4.0) ~steps ~analysis_interval:None
          { IR.rk = IR.Argobots; priority = true }
      in
      let nice =
        IR.run ~atoms:(atoms /. 4.0) ~steps ~analysis_interval:(Some 2)
          { IR.rk = IR.Pthreads; priority = true }
      in
      let fifo =
        IR.run_pthreads_fifo ~atoms:(atoms /. 4.0) ~steps ~analysis_interval:(Some 2) ()
      in
      Printf.printf "%8.1fe7 atoms: nice(19) %s   SCHED_FIFO %s\n" (atoms /. 1e7)
        (Exputil.pct ((nice.IR.time /. base.IR.time) -. 1.0))
        (Exputil.pct ((fifo.IR.time /. base.IR.time) -. 1.0)))
    (atom_counts ~fast)

let run ?(fast = false) () =
  Exputil.heading
    "Figure 9: in-situ analysis overhead with LAMMPS-style MD (56 workers/process)";
  let a = print_part ~fast ~interval:1 "(a) analysis interval = 1" in
  let b = print_part ~fast ~interval:2 "(b) analysis interval = 2" in
  write_csv "a" a;
  write_csv "b" b;
  fifo_ablation ~fast ();
  Printf.printf
    "\nPaper: Argobots beats Pthreads; prioritization helps both at large atom counts;\n\
     the effect is more pronounced at interval 2 (analysis fits the MPI gaps).\n\
     (results/fig9a.csv, results/fig9b.csv)\n";
  (a, b)
