(** Shared output helpers for the experiment harnesses. *)

let heading title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subheading title = Printf.printf "\n-- %s --\n" title

let row_f fmt = Printf.printf fmt

(* Render a series table: first column is the x value, one column per
   line of the figure. *)
let table ~x_label ~columns ~rows ~cell =
  let w = 24 in
  Printf.printf "%-10s" x_label;
  List.iter (fun c -> Printf.printf "%*s" w c) columns;
  print_newline ();
  List.iter
    (fun r ->
      Printf.printf "%-10s" (fst r);
      List.iteri (fun i _ -> Printf.printf "%*s" w (cell (snd r) i)) columns;
      print_newline ())
    rows

let us v = Printf.sprintf "%.2f us" (v *. 1e6)

let pct v = Printf.sprintf "%.2f%%" (v *. 100.0)

let seconds v = Printf.sprintf "%.3f s" v
