(** Paper Fig. 7: Cholesky decomposition (SLATE kernel) performance in
    GFLOPS versus the number of tiles, for BOLT and Intel OpenMP
    configurations, plus the deadlock probe for stock MKL on
    nonpreemptive M:N threads. *)

open Preempt_core
module CR = Linalg.Cholesky_run

let configs =
  [
    CR.Bolt
      {
        kind = Types.Nonpreemptive;
        mkl = Linalg.Blas_model.Yield_wait;
        timer = Config.No_timer;
        interval = 1e-3;
      };
    CR.Bolt
      {
        kind = Types.Klt_switching;
        mkl = Linalg.Blas_model.Busy_wait;
        timer = Config.Per_worker_aligned;
        interval = 10e-3;
      };
    CR.Bolt
      {
        kind = Types.Klt_switching;
        mkl = Linalg.Blas_model.Busy_wait;
        timer = Config.Per_worker_aligned;
        interval = 1e-3;
      };
    CR.Iomp { flat = false };
    CR.Iomp { flat = true };
  ]

(* The paper's would-be-deadlock configuration, run separately. *)
let deadlock_probe =
  CR.Bolt
    {
      kind = Types.Nonpreemptive;
      mkl = Linalg.Blas_model.Busy_wait;
      timer = Config.No_timer;
      interval = 1e-3;
    }

type point = { tiles : int; result : CR.result }

type series = { config : CR.config; points : point list }

let tile_counts ~fast = if fast then [ 8; 12; 16 ] else [ 8; 12; 16; 20; 24 ]

let tile_dim = 1000

let series ?(fast = false) () =
  List.map
    (fun config ->
      {
        config;
        points =
          List.map
            (fun tiles -> { tiles; result = CR.run ~tiles ~tile_dim ~per_core_gflops:28.0 config })
            (tile_counts ~fast);
      })
    configs

let run ?(fast = false) () =
  Exputil.heading
    "Figure 7: Cholesky decomposition GFLOPS vs #tiles (tile 1000x1000, outer 8 x inner 8, 56 cores)";
  let data = series ~fast () in
  Exputil.table ~x_label:"#tiles"
    ~columns:(List.map (fun s -> CR.config_name s.config) data)
    ~rows:(List.map (fun t -> (Printf.sprintf "%dx%d" t t, t)) (tile_counts ~fast))
    ~cell:(fun t col ->
      let s = List.nth data col in
      match List.find_opt (fun p -> p.tiles = t) s.points with
      | Some p ->
          if p.result.CR.deadlocked then "DEADLOCK"
          else Printf.sprintf "%.0f GFLOPS" p.result.CR.gflops
      | None -> "-");
  (* Deadlock demonstration at the most oversubscribed point. *)
  let dl_tiles = List.hd (List.rev (tile_counts ~fast)) in
  let dl = CR.run ~tiles:dl_tiles ~tile_dim ~per_core_gflops:28.0 deadlock_probe in
  Printf.printf "\nBOLT (nonpreemptive, stock MKL busy-wait) at %dx%d tiles: %s\n" dl_tiles
    dl_tiles
    (if dl.CR.deadlocked then "DEADLOCK (as the paper reports for nonpreemptive M:N)"
     else Printf.sprintf "%.0f GFLOPS (no deadlock this run; schedule-dependent)" dl.CR.gflops);
  Chart.write_csv "results/fig7.csv"
    ~header:("tiles" :: List.map (fun s -> CR.config_name s.config) data)
    (List.map
       (fun t ->
         float_of_int t
         :: List.map
              (fun s ->
                match List.find_opt (fun p -> p.tiles = t) s.points with
                | Some p -> if p.result.CR.deadlocked then 0.0 else p.result.CR.gflops
                | None -> Float.nan)
              data)
       (tile_counts ~fast));
  print_newline ();
  print_string
    (Chart.render ~x_label:"#tiles" ~y_label:"GFLOPS"
       (List.map
          (fun s ->
            {
              Chart.label = CR.config_name s.config;
              points =
                List.map
                  (fun p -> (float_of_int p.tiles, p.result.CR.gflops))
                  s.points;
            })
          data));
  Printf.printf
    "\nPaper: preemptive BOLT >= reverse-engineered nonpreemptive BOLT > IOMP;\n\
     IOMP(flat) worst at small tile counts; 10 ms interval beats 1 ms (cache).\n\
     (results/fig7.csv)\n";
  (data, dl)
