type series = { label : string; points : (float * float) list }

let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&' |]

let finite v = Float.is_finite v

let render ?(width = 64) ?(height = 16) ?(x_log = false) ?(y_log = false)
    ?(x_label = "x") ?(y_label = "y") series =
  let tx v = if x_log then log10 v else v in
  let ty v = if y_log then log10 v else v in
  let usable (x, y) =
    finite x && finite y && ((not x_log) || x > 0.0) && ((not y_log) || y > 0.0)
  in
  let pts = List.concat_map (fun s -> List.filter usable s.points) series in
  if pts = [] then "(no data)\n"
  else begin
    let xs = List.map (fun (x, _) -> tx x) pts in
    let ys = List.map (fun (_, y) -> ty y) pts in
    let xmin = List.fold_left Float.min infinity xs in
    let xmax = List.fold_left Float.max neg_infinity xs in
    let ymin = List.fold_left Float.min infinity ys in
    let ymax = List.fold_left Float.max neg_infinity ys in
    let xspan = if xmax > xmin then xmax -. xmin else 1.0 in
    let yspan = if ymax > ymin then ymax -. ymin else 1.0 in
    let grid = Array.make_matrix height width ' ' in
    List.iteri
      (fun si s ->
        let g = glyphs.(si mod Array.length glyphs) in
        List.iter
          (fun p ->
            if usable p then begin
              let x, y = p in
              let cx =
                int_of_float ((tx x -. xmin) /. xspan *. float_of_int (width - 1))
              in
              let cy =
                int_of_float ((ty y -. ymin) /. yspan *. float_of_int (height - 1))
              in
              let row = height - 1 - cy in
              if row >= 0 && row < height && cx >= 0 && cx < width then
                grid.(row).(cx) <- g
            end)
          s.points)
      series;
    let buf = Buffer.create ((width + 16) * (height + 4)) in
    let axis_fmt v lg = if lg then Printf.sprintf "1e%.1f" v else Printf.sprintf "%.3g" v in
    Buffer.add_string buf (Printf.sprintf "%s (top=%s)\n" y_label (axis_fmt ymax y_log));
    Array.iter
      (fun row ->
        Buffer.add_string buf "  |";
        Array.iter (Buffer.add_char buf) row;
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf "  +";
    Buffer.add_string buf (String.make width '-');
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Printf.sprintf "   %s: %s .. %s%s  (bottom=%s)\n" x_label (axis_fmt xmin x_log)
         (axis_fmt xmax x_log)
         (if x_log then " [log]" else "")
         (axis_fmt ymin y_log));
    List.iteri
      (fun si s ->
        Buffer.add_string buf
          (Printf.sprintf "   %c %s\n" glyphs.(si mod Array.length glyphs) s.label))
      series;
    Buffer.contents buf
  end

let to_csv ~header rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (String.concat "," header);
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (String.concat "," (List.map (Printf.sprintf "%.9g") row));
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  end

let write_csv path ~header rows =
  mkdir_p (Filename.dirname path);
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_csv ~header rows))
