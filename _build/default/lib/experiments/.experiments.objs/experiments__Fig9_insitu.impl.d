lib/experiments/fig9_insitu.ml: Chart Exputil Float List Moldyn Printf
