lib/experiments/table1_preempt_cost.ml: Config Desim Engine Exputil Kernel List Machine Oskern Preempt_core Printf Runtime Stats Types Ult
