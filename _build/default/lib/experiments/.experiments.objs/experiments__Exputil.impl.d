lib/experiments/exputil.ml: List Printf String
