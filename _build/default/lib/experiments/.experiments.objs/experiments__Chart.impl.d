lib/experiments/chart.ml: Array Buffer Filename Float Fun List Printf String Sys
