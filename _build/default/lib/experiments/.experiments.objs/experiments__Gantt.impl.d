lib/experiments/gantt.ml: Array Buffer Desim Hashtbl List Printf String
