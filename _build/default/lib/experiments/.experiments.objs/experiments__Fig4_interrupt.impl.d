lib/experiments/fig4_interrupt.ml: Chart Config Desim Engine Exputil Float Kernel List Machine Oskern Preempt_core Printf Runtime Stats Types Ult
