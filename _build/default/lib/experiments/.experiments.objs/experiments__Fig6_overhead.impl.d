lib/experiments/fig6_overhead.ml: Chart Config Desim Engine Exputil Float Kernel List Machine Option Oskern Preempt_core Printf Runtime Types Ult
