lib/experiments/sec351_syscalls.ml: Config Desim Engine Exputil Kernel List Machine Oskern Preempt_core Printf Runtime Types Ult
