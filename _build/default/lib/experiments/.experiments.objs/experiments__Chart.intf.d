lib/experiments/chart.mli:
