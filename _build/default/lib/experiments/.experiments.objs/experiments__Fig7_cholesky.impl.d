lib/experiments/fig7_cholesky.ml: Chart Config Exputil Float Linalg List Preempt_core Printf Types
