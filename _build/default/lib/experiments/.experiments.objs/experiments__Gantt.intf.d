lib/experiments/gantt.mli: Desim
