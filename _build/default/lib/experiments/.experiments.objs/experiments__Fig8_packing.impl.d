lib/experiments/fig8_packing.ml: Chart Config Exputil Float List Multigrid Preempt_core Printf Types
