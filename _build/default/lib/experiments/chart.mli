(** Minimal ASCII line charts — the artifact's Plotly plots, terminal
    edition.  Pure string rendering, unit-testable. *)

type series = { label : string; points : (float * float) list }

(** [render ~width ~height ~x_log ~y_log series] draws all series into
    one plot; each series uses its own glyph, listed in the legend
    below the axes.  Points with non-finite or (for log axes)
    non-positive coordinates are skipped. *)
val render :
  ?width:int ->
  ?height:int ->
  ?x_log:bool ->
  ?y_log:bool ->
  ?x_label:string ->
  ?y_label:string ->
  series list ->
  string

(** [to_csv ~header rows] — simple CSV encoding (numbers via %.9g). *)
val to_csv : header:string list -> float list list -> string

(** [write_csv path ~header rows] writes the CSV file, creating parent
    directories as needed. *)
val write_csv : string -> header:string list -> float list list -> unit
