(** Paper §3.5.1 ablation: preemption timers vs. blocking system calls.

    "Users need to be aware that too short a timer interval would cause
    many restarts of system calls, which would affect the performance of
    blocking system calls that take a long time, such as I/O."

    An I/O-bound thread issues blocking calls under per-worker
    preemption timers; every expiry interrupts the call (handler +
    kernel re-entry) and SA_RESTART resumes it.  Shorter intervals →
    more restarts → visible I/O slowdown; compute threads are
    unaffected. *)

open Desim
open Oskern
open Preempt_core

type point = { interval : float; io_time : float; restarts : int; overhead : float }

let run_io ~interval_opt ~ops ~op_duration =
  let eng = Engine.create () in
  let kernel = Kernel.create eng (Machine.with_cores Machine.skylake 1) in
  let config =
    match interval_opt with
    | None -> Config.default
    | Some interval ->
        { Config.default with Config.timer_strategy = Config.Per_worker_aligned; interval }
  in
  let rt = Runtime.create ~config kernel ~n_workers:1 in
  let finish = ref 0.0 in
  let restarts = ref 0 in
  ignore
    (Runtime.spawn rt ~kind:Types.Signal_yield ~home:0 ~name:"io" (fun () ->
         for _ = 1 to ops do
           restarts := !restarts + Ult.blocking_io op_duration
         done;
         finish := Ult.now ()));
  Runtime.start rt;
  Engine.run eng;
  (!finish, !restarts)

let intervals ~fast = if fast then [ 1e-4; 1e-3; 1e-2 ] else [ 1e-4; 3e-4; 1e-3; 3e-3; 1e-2 ]

let series ?(fast = false) () =
  let ops = 50 and op_duration = 2e-3 in
  let baseline, _ = run_io ~interval_opt:None ~ops ~op_duration in
  ( baseline,
    List.map
      (fun interval ->
        let t, restarts = run_io ~interval_opt:(Some interval) ~ops ~op_duration in
        { interval; io_time = t; restarts; overhead = (t /. baseline) -. 1.0 })
      (intervals ~fast) )

let run ?(fast = false) () =
  Exputil.heading
    "Ablation (paper 3.5.1): blocking system calls under preemption timers";
  let baseline, points = series ~fast () in
  Printf.printf "(50 x 2 ms blocking I/O calls; no-timer baseline %s)\n\n"
    (Exputil.seconds baseline);
  Printf.printf "%-12s%14s%12s%12s\n" "interval" "io time" "restarts" "overhead";
  List.iter
    (fun p ->
      Printf.printf "%-12s%14s%12d%12s\n"
        (Printf.sprintf "%gus" (p.interval *. 1e6))
        (Exputil.seconds p.io_time) p.restarts (Exputil.pct p.overhead))
    points;
  Printf.printf
    "\nShorter intervals interrupt long syscalls more often (SA_RESTART resumes\n\
     them at a kernel re-entry + handler cost each time), as 3.5.1 warns.\n";
  (baseline, points)
