open Desim
open Oskern
open Preempt_core
module Omp = Ompmodel.Omp

type runtime_kind = Pthreads | Argobots

type config = { rk : runtime_kind; priority : bool }

type result = { time : float; idle_frac : float }

let config_name { rk; priority } =
  Printf.sprintf "%s (%s priority)"
    (match rk with Pthreads -> "Pthreads" | Argobots -> "Argobots")
    (if priority then "w/" else "w/o")

(* Calibrated so that a 1.4e7-atom, 100-step, 56-core node simulates in
   ~40 s like the paper's Fig. 9 bars (see EXPERIMENTS.md).  Force
   phases carry a +-15% per-thread spatial load imbalance: the straggler
   slack inside a region plus the MPI gap is where analysis threads can
   run without delaying the simulation. *)
let force_cost_per_atom = 1.4e-6 (* core-seconds per atom per step *)

let imbalance = 0.15

let comm_base = 0.01 (* sequential MPI time per step, plus a size term *)

let comm_cost_per_atom = 1.5e-9

let analysis_cost_per_atom = 2.4e-7 (* core-seconds per atom per snapshot *)

(* Per-(step, thread) force share: same deterministic pattern for every
   configuration so comparisons are apples-to-apples. *)
let force_share ~t_force ~workers rng_tbl step tid =
  let key = (step, tid) in
  match Hashtbl.find_opt rng_tbl key with
  | Some v -> v
  | None ->
      let u =
        let r = Rng.make ((step * 8191) + tid + 17) in
        Rng.float r
      in
      let v = t_force *. (1.0 -. imbalance +. (2.0 *. imbalance *. u)) in
      ignore workers;
      Hashtbl.replace rng_tbl key v;
      v

let run_argobots machine ~workers ~atoms ~steps ~analysis_interval ~priority =
  let eng = Engine.create () in
  let kernel = Kernel.create eng machine in
  let cfg =
    {
      Config.default with
      Config.timer_strategy =
        (if priority then Config.Per_process_chain else Config.No_timer);
      interval = 1e-3;
      idle_poll = 100e-6;
    }
  in
  let scheduler = if priority then Sched_priority.make () else Sched_ws.make () in
  let rt = Runtime.create ~config:cfg ~scheduler kernel ~n_workers:workers in
  let t_force = atoms *. force_cost_per_atom /. float_of_int workers in
  let t_comm = comm_base +. (atoms *. comm_cost_per_atom) in
  let n_analysis = workers - 1 in
  let t_analysis = atoms *. analysis_cost_per_atom /. float_of_int n_analysis in
  let shares = Hashtbl.create 1024 in
  let finish = ref 0.0 in
  let record_finish () = finish := Float.max !finish (Ult.now ()) in
  ignore
    (Runtime.spawn rt ~name:"md-main" (fun () ->
         for step = 1 to steps do
           (* Kokkos-style parallel region: one thread per worker. *)
           let sims =
             List.init workers (fun i ->
                 let share = force_share ~t_force ~workers shares step i in
                 Runtime.spawn rt ~home:i ~name:"sim" (fun () -> Ult.compute share))
           in
           (match analysis_interval with
           | Some k when step mod k = 0 ->
               for i = 0 to n_analysis - 1 do
                 ignore
                   (Runtime.spawn rt
                      ~kind:(if priority then Types.Signal_yield else Types.Nonpreemptive)
                      ~priority:(if priority then 1 else 0)
                      ~home:i ~name:"analysis"
                      (fun () ->
                        Ult.compute t_analysis;
                        record_finish ()))
               done
           | Some _ | None -> ());
           List.iter (fun u -> Usync.join rt u) sims;
           (* Sequential MPI communication: only the main thread busy. *)
           Ult.compute t_comm
         done;
         record_finish ()));
  Runtime.start rt;
  Engine.run eng;
  (* Idle = worker time spent spinning with no thread to run. *)
  let idle = ref 0.0 in
  for i = 0 to workers - 1 do
    idle := !idle +. Runtime.worker_idle_time rt i
  done;
  let idle_frac = !idle /. (float_of_int workers *. !finish) in
  (!finish, idle_frac)

let run_pthreads ?(fifo = false) machine ~workers ~atoms ~steps ~analysis_interval
    ~priority =
  let eng = Engine.create () in
  let kernel = Kernel.create eng machine in
  (* Oversubscribed (sim team + analysis threads): the paper's IOMP
     tuning disables binding and sets KMP_BLOCKTIME to 0. *)
  let omp = Omp.create kernel ~blocktime:0.0 ~bind:false () in
  let t_force = atoms *. force_cost_per_atom /. float_of_int workers in
  let t_comm = comm_base +. (atoms *. comm_cost_per_atom) in
  let n_analysis = workers - 1 in
  let t_analysis = atoms *. analysis_cost_per_atom /. float_of_int n_analysis in
  let shares = Hashtbl.create 1024 in
  let finish = ref 0.0 in
  let analysis_klts = ref [] in
  ignore
    (Kernel.spawn kernel ~name:"md-main" (fun master ->
         if fifo then begin
           (* Warm the hot team, then put the whole simulation side under
              SCHED_FIFO — the strict prioritization of paper §4.3 that
              real systems reserve for root. *)
           Omp.parallel omp ~master ~nthreads:workers (fun _ _ -> ());
           Kernel.set_policy kernel master (`Fifo 10);
           List.iter (fun klt -> Kernel.set_policy kernel klt (`Fifo 10)) (Omp.team_klts omp)
         end;
         for step = 1 to steps do
           Omp.parallel omp ~master ~nthreads:workers (fun tid klt ->
               Kernel.compute kernel klt (force_share ~t_force ~workers shares step tid));
           (match analysis_interval with
           | Some k when step mod k = 0 ->
               for _ = 1 to n_analysis do
                 let klt =
                   (* ~creator charges the master pthread_create cost. *)
                   Kernel.spawn kernel ~creator:master
                     ~nice:(if priority then 19 else 0)
                     ~name:"analysis"
                     (fun klt ->
                       Kernel.compute kernel klt t_analysis;
                       finish := Float.max !finish (Kernel.now kernel))
                 in
                 analysis_klts := klt :: !analysis_klts
               done
           | Some _ | None -> ());
           Kernel.compute kernel master t_comm
         done;
         List.iter (fun klt -> Kernel.join kernel ~joiner:master klt) !analysis_klts;
         finish := Float.max !finish (Kernel.now kernel);
         Omp.shutdown omp));
  Engine.run eng;
  let util = Kernel.total_busy_time kernel /. (float_of_int workers *. !finish) in
  (!finish, Float.max 0.0 (1.0 -. util))

let run ?(machine = Machine.skylake) ?workers ~atoms ~steps ~analysis_interval config =
  let workers = match workers with Some w -> w | None -> machine.Machine.cores in
  let time, idle_frac =
    match config.rk with
    | Argobots ->
        run_argobots machine ~workers ~atoms ~steps ~analysis_interval
          ~priority:config.priority
    | Pthreads ->
        run_pthreads machine ~workers ~atoms ~steps ~analysis_interval
          ~priority:config.priority
  in
  { time; idle_frac = Float.max 0.0 idle_frac }

let run_pthreads_fifo ?(machine = Machine.skylake) ?workers ~atoms ~steps
    ~analysis_interval () =
  let workers = match workers with Some w -> w | None -> machine.Machine.cores in
  let time, idle_frac =
    run_pthreads ~fifo:true machine ~workers ~atoms ~steps ~analysis_interval
      ~priority:false
  in
  { time; idle_frac = Float.max 0.0 idle_frac }
