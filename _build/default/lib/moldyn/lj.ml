type t = {
  n : int;
  box : float;
  rc2 : float;  (* squared cutoff *)
  x : float array;
  y : float array;
  z : float array;
  vx : float array;
  vy : float array;
  vz : float array;
  fx : float array;
  fy : float array;
  fz : float array;
  (* cell list *)
  ncell : int;  (* cells per side *)
  cell_size : float;
  head : int array;  (* first atom of each cell, -1 = empty *)
  next : int array;  (* next atom in the same cell *)
}

let atoms t = t.n

let box t = t.box

let wrap t v =
  let v = Float.rem v t.box in
  if v < 0.0 then v +. t.box else v

(* Minimum-image displacement. *)
let mi t d =
  let half = t.box /. 2.0 in
  if d > half then d -. t.box else if d < -.half then d +. t.box else d

let cell_index t cx cy cz =
  let m = t.ncell in
  let w v = ((v mod m) + m) mod m in
  (((w cz * m) + w cy) * m) + w cx

let rebuild_cells t =
  Array.fill t.head 0 (Array.length t.head) (-1);
  for i = 0 to t.n - 1 do
    let cx = int_of_float (t.x.(i) /. t.cell_size) in
    let cy = int_of_float (t.y.(i) /. t.cell_size) in
    let cz = int_of_float (t.z.(i) /. t.cell_size) in
    let c = cell_index t cx cy cz in
    t.next.(i) <- t.head.(c);
    t.head.(c) <- i
  done

(* LJ pair force (reduced units): f(r)/r = 24 (2 r^-14 - r^-8). *)
let compute_forces t =
  Array.fill t.fx 0 t.n 0.0;
  Array.fill t.fy 0 t.n 0.0;
  Array.fill t.fz 0 t.n 0.0;
  rebuild_cells t;
  let m = t.ncell in
  for cz = 0 to m - 1 do
    for cy = 0 to m - 1 do
      for cx = 0 to m - 1 do
        let c = cell_index t cx cy cz in
        let rec each_i i =
          if i >= 0 then begin
            (* neighbours: half the 27-cell stencil plus in-cell pairs *)
            for dz = -1 to 1 do
              for dy = -1 to 1 do
                for dx = -1 to 1 do
                  let c' = cell_index t (cx + dx) (cy + dy) (cz + dz) in
                  if c' >= c then begin
                    let rec each_j j =
                      if j >= 0 then begin
                        if (c' > c || j > i) && i <> j then begin
                          let ddx = mi t (t.x.(i) -. t.x.(j)) in
                          let ddy = mi t (t.y.(i) -. t.y.(j)) in
                          let ddz = mi t (t.z.(i) -. t.z.(j)) in
                          let r2 = (ddx *. ddx) +. (ddy *. ddy) +. (ddz *. ddz) in
                          if r2 < t.rc2 && r2 > 1e-12 then begin
                            let inv2 = 1.0 /. r2 in
                            let inv6 = inv2 *. inv2 *. inv2 in
                            let ff = 24.0 *. inv2 *. inv6 *. ((2.0 *. inv6) -. 1.0) in
                            t.fx.(i) <- t.fx.(i) +. (ff *. ddx);
                            t.fy.(i) <- t.fy.(i) +. (ff *. ddy);
                            t.fz.(i) <- t.fz.(i) +. (ff *. ddz);
                            t.fx.(j) <- t.fx.(j) -. (ff *. ddx);
                            t.fy.(j) <- t.fy.(j) -. (ff *. ddy);
                            t.fz.(j) <- t.fz.(j) -. (ff *. ddz)
                          end
                        end;
                        each_j t.next.(j)
                      end
                    in
                    each_j t.head.(c')
                  end
                done
              done
            done;
            each_i t.next.(i)
          end
        in
        each_i t.head.(c)
      done
    done
  done

let create rng ~cells_per_side ?(density = 0.8) ?(temperature = 1.0) () =
  let nc = cells_per_side in
  let n = 4 * nc * nc * nc in
  let box = (float_of_int n /. density) ** (1.0 /. 3.0) in
  let rc = 2.5 in
  let ncell = Stdlib.max 3 (int_of_float (box /. rc)) in
  let t =
    {
      n;
      box;
      rc2 = rc *. rc;
      x = Array.make n 0.0;
      y = Array.make n 0.0;
      z = Array.make n 0.0;
      vx = Array.make n 0.0;
      vy = Array.make n 0.0;
      vz = Array.make n 0.0;
      fx = Array.make n 0.0;
      fy = Array.make n 0.0;
      fz = Array.make n 0.0;
      ncell;
      cell_size = box /. float_of_int ncell;
      head = Array.make (ncell * ncell * ncell) (-1);
      next = Array.make n (-1);
    }
  in
  (* FCC lattice. *)
  let a = box /. float_of_int nc in
  let offsets = [| (0.0, 0.0, 0.0); (0.5, 0.5, 0.0); (0.5, 0.0, 0.5); (0.0, 0.5, 0.5) |] in
  let idx = ref 0 in
  for ix = 0 to nc - 1 do
    for iy = 0 to nc - 1 do
      for iz = 0 to nc - 1 do
        Array.iter
          (fun (ox, oy, oz) ->
            t.x.(!idx) <- (float_of_int ix +. ox) *. a;
            t.y.(!idx) <- (float_of_int iy +. oy) *. a;
            t.z.(!idx) <- (float_of_int iz +. oz) *. a;
            incr idx)
          offsets
      done
    done
  done;
  (* Maxwell-ish velocities with zero net momentum. *)
  let scale = sqrt temperature in
  let sum = [| 0.0; 0.0; 0.0 |] in
  for i = 0 to n - 1 do
    t.vx.(i) <- scale *. Desim.Rng.range rng (-1.0) 1.0;
    t.vy.(i) <- scale *. Desim.Rng.range rng (-1.0) 1.0;
    t.vz.(i) <- scale *. Desim.Rng.range rng (-1.0) 1.0;
    sum.(0) <- sum.(0) +. t.vx.(i);
    sum.(1) <- sum.(1) +. t.vy.(i);
    sum.(2) <- sum.(2) +. t.vz.(i)
  done;
  let fn = float_of_int n in
  for i = 0 to n - 1 do
    t.vx.(i) <- t.vx.(i) -. (sum.(0) /. fn);
    t.vy.(i) <- t.vy.(i) -. (sum.(1) /. fn);
    t.vz.(i) <- t.vz.(i) -. (sum.(2) /. fn)
  done;
  compute_forces t;
  t

let step t ~dt =
  let half = dt /. 2.0 in
  for i = 0 to t.n - 1 do
    t.vx.(i) <- t.vx.(i) +. (half *. t.fx.(i));
    t.vy.(i) <- t.vy.(i) +. (half *. t.fy.(i));
    t.vz.(i) <- t.vz.(i) +. (half *. t.fz.(i));
    t.x.(i) <- wrap t (t.x.(i) +. (dt *. t.vx.(i)));
    t.y.(i) <- wrap t (t.y.(i) +. (dt *. t.vy.(i)));
    t.z.(i) <- wrap t (t.z.(i) +. (dt *. t.vz.(i)))
  done;
  compute_forces t;
  for i = 0 to t.n - 1 do
    t.vx.(i) <- t.vx.(i) +. (half *. t.fx.(i));
    t.vy.(i) <- t.vy.(i) +. (half *. t.fy.(i));
    t.vz.(i) <- t.vz.(i) +. (half *. t.fz.(i))
  done

let potential_energy t =
  let e = ref 0.0 in
  rebuild_cells t;
  for i = 0 to t.n - 1 do
    for j = i + 1 to t.n - 1 do
      let ddx = mi t (t.x.(i) -. t.x.(j)) in
      let ddy = mi t (t.y.(i) -. t.y.(j)) in
      let ddz = mi t (t.z.(i) -. t.z.(j)) in
      let r2 = (ddx *. ddx) +. (ddy *. ddy) +. (ddz *. ddz) in
      if r2 < t.rc2 then begin
        let inv6 = 1.0 /. (r2 *. r2 *. r2) in
        e := !e +. (4.0 *. ((inv6 *. inv6) -. inv6))
      end
    done
  done;
  !e

let kinetic_energy t =
  let e = ref 0.0 in
  for i = 0 to t.n - 1 do
    e :=
      !e
      +. (0.5 *. ((t.vx.(i) *. t.vx.(i)) +. (t.vy.(i) *. t.vy.(i)) +. (t.vz.(i) *. t.vz.(i))))
  done;
  !e

let total_energy t = potential_energy t +. kinetic_energy t

let momentum t =
  let px = ref 0.0 and py = ref 0.0 and pz = ref 0.0 in
  for i = 0 to t.n - 1 do
    px := !px +. t.vx.(i);
    py := !py +. t.vy.(i);
    pz := !pz +. t.vz.(i)
  done;
  sqrt ((!px *. !px) +. (!py *. !py) +. (!pz *. !pz))

let temperature t = 2.0 *. kinetic_energy t /. (3.0 *. float_of_int t.n)

let snapshot t = (Array.copy t.x, Array.copy t.y, Array.copy t.z)

let rdf t ~bins ~r_max (x, y, z) =
  if bins <= 0 || r_max <= 0.0 then invalid_arg "Lj.rdf: bad parameters";
  let n = Array.length x in
  let counts = Array.make bins 0 in
  let dr = r_max /. float_of_int bins in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let dx = mi t (x.(i) -. x.(j)) in
      let dy = mi t (y.(i) -. y.(j)) in
      let dz = mi t (z.(i) -. z.(j)) in
      let r = sqrt ((dx *. dx) +. (dy *. dy) +. (dz *. dz)) in
      if r < r_max then begin
        let b = int_of_float (r /. dr) in
        if b >= 0 && b < bins then counts.(b) <- counts.(b) + 2
      end
    done
  done;
  (* Normalize by the ideal-gas expectation for each shell. *)
  let volume = t.box *. t.box *. t.box in
  let density = float_of_int n /. volume in
  let pi = 4.0 *. atan 1.0 in
  Array.mapi
    (fun b c ->
      let r_lo = float_of_int b *. dr in
      let r_hi = r_lo +. dr in
      let shell = 4.0 /. 3.0 *. pi *. ((r_hi ** 3.0) -. (r_lo ** 3.0)) in
      let ideal = density *. shell *. float_of_int n in
      if ideal > 0.0 then float_of_int c /. ideal else 0.0)
    counts

let speed_histogram t ~bins ~v_max =
  if bins <= 0 || v_max <= 0.0 then invalid_arg "Lj.speed_histogram: bad parameters";
  let h = Array.make bins 0 in
  for i = 0 to t.n - 1 do
    let v =
      sqrt ((t.vx.(i) *. t.vx.(i)) +. (t.vy.(i) *. t.vy.(i)) +. (t.vz.(i) *. t.vz.(i)))
    in
    let b = int_of_float (v /. v_max *. float_of_int bins) in
    let b = if b >= bins then bins - 1 else b in
    h.(b) <- h.(b) + 1
  done;
  h

let max_force t =
  let m = ref 0.0 in
  for i = 0 to t.n - 1 do
    let f =
      sqrt ((t.fx.(i) *. t.fx.(i)) +. (t.fy.(i) *. t.fy.(i)) +. (t.fz.(i) *. t.fz.(i)))
    in
    if f > !m then m := f
  done;
  !m
