(** Real 3D Lennard-Jones molecular dynamics (the LAMMPS substitution's
    numerical core): periodic box, cell lists, r_c = 2.5 sigma cutoff,
    velocity-Verlet integration, reduced units. *)

type t

(** [create rng ~cells_per_side ~density ~temperature] builds an FCC-ish
    lattice of [4 * cells_per_side^3] atoms with random velocities
    (zero net momentum). *)
val create :
  Desim.Rng.t -> cells_per_side:int -> ?density:float -> ?temperature:float -> unit -> t

val atoms : t -> int

val box : t -> float

(** One velocity-Verlet step of size [dt]. *)
val step : t -> dt:float -> unit

val potential_energy : t -> float

val kinetic_energy : t -> float

val total_energy : t -> float

(** Net momentum magnitude (conserved by correct forces). *)
val momentum : t -> float

(** Instantaneous temperature (2 KE / 3N). *)
val temperature : t -> float

(** Maximum force magnitude (finiteness check). *)
val max_force : t -> float

(** {1 In-situ analysis kernels (real, used on snapshots)} *)

(** [snapshot t] copies the positions (the paper's analysis works on a
    copied buffer while the simulation continues). *)
val snapshot : t -> float array * float array * float array

(** [rdf t ~bins ~r_max (x,y,z)] — radial distribution function g(r) of
    a position snapshot: histogram of pair distances normalized by the
    ideal-gas shell density.  O(N^2); the expensive analysis the paper's
    in-situ threads run. *)
val rdf : t -> bins:int -> r_max:float -> float array * float array * float array -> float array

(** Speed histogram of the current velocities ([bins] buckets up to
    [v_max]); sums to the atom count. *)
val speed_histogram : t -> bins:int -> v_max:float -> int array
