lib/moldyn/insitu_run.ml: Config Desim Engine Float Hashtbl Kernel List Machine Ompmodel Oskern Preempt_core Printf Rng Runtime Sched_priority Sched_ws Types Ult Usync
