lib/moldyn/lj.ml: Array Desim Float Stdlib
