lib/moldyn/lj.mli: Desim
