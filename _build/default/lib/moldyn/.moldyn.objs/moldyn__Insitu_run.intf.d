lib/moldyn/insitu_run.mli: Oskern
