(** In-situ analysis with a LAMMPS-style MD timeline (paper Fig. 9).

    Each of [steps] timesteps runs a parallel force phase on all
    workers, then a sequential MPI-communication gap on the main thread;
    every [analysis_interval] steps, 55 analysis threads are spawned to
    process a snapshot concurrently with the ongoing simulation.
    Simulation threads should have priority: analysis ought to run only
    in the gaps.

    Four configurations reproduce the paper's lines: Pthreads-style 1:1
    threads without/with [nice +19] analysis, and Argobots-style M:N
    threads without/with scheduler priority (where analysis threads are
    preemptive signal-yield threads driven by a 1 ms per-process chained
    timer). *)

type runtime_kind = Pthreads | Argobots

type config = { rk : runtime_kind; priority : bool }

type result = {
  time : float;  (** makespan: simulation and all analysis finished *)
  idle_frac : float;  (** fraction of core time left idle *)
}

val config_name : config -> string

(** [run ~atoms ~steps ~analysis_interval cfg] — [atoms] is the per-node
    atom count; [analysis_interval = None] disables analysis (the
    baseline). *)
val run :
  ?machine:Oskern.Machine.t ->
  ?workers:int ->
  atoms:float ->
  steps:int ->
  analysis_interval:int option ->
  config ->
  result

(** The paper's §4.3 "what if we had root" ablation: like the Pthreads
    configuration, but simulation threads run under SCHED_FIFO so
    analysis (CFS) can never delay them.  Strictly stronger than
    nice-based priority. *)
val run_pthreads_fifo :
  ?machine:Oskern.Machine.t ->
  ?workers:int ->
  atoms:float ->
  steps:int ->
  analysis_interval:int option ->
  unit ->
  result

(** Cost-model knobs (documented in EXPERIMENTS.md). *)
val force_cost_per_atom : float

val comm_base : float

val analysis_cost_per_atom : float
