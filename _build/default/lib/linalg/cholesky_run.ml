open Desim
open Oskern
open Preempt_core
module Omp = Ompmodel.Omp

type config =
  | Bolt of {
      kind : Types.thread_kind;
      mkl : Blas_model.barrier_style;
      timer : Config.timer_strategy;
      interval : float;
    }
  | Iomp of { flat : bool }

type result = {
  gflops : float;
  makespan : float;
  deadlocked : bool;
  tasks : int;
  preemptions : int;
}

let config_name = function
  | Bolt { kind; mkl; interval; _ } ->
      let kind_name =
        match kind with
        | Types.Nonpreemptive -> "nonpreemptive"
        | Types.Signal_yield -> "signal-yield"
        | Types.Klt_switching -> "KLT-switching"
      in
      let mkl_name =
        match mkl with
        | Blas_model.Busy_wait -> "stock MKL"
        | Blas_model.Yield_wait -> "reverse-engineered MKL"
      in
      if kind = Types.Nonpreemptive then Printf.sprintf "BOLT (%s, %s)" kind_name mkl_name
      else Printf.sprintf "BOLT (preemptive %s, intvl=%gms, %s)" kind_name (interval *. 1e3) mkl_name
  | Iomp { flat } -> if flat then "IOMP (flat)" else "IOMP"

(* Shared DAG-execution state. *)
type dag_state = {
  tasks : Tiled.task array;
  remaining : int array;  (* unmet dependencies per task *)
  ready : int Queue.t;
  mutable completed : int;
  mutable finish_time : float;
}

let dag_state tiles =
  let tasks = Tiled.dag tiles in
  let remaining = Array.map (fun (t : Tiled.task) -> List.length t.preds) tasks in
  let ready = Queue.create () in
  Array.iter (fun (t : Tiled.task) -> if remaining.(t.id) = 0 then Queue.add t.id ready) tasks;
  { tasks; remaining; ready; completed = 0; finish_time = 0.0 }

let complete st now id =
  st.completed <- st.completed + 1;
  if st.completed = Array.length st.tasks then st.finish_time <- now;
  List.iter
    (fun s ->
      st.remaining.(s) <- st.remaining.(s) - 1;
      if st.remaining.(s) = 0 then Queue.add s st.ready)
    st.tasks.(id).Tiled.succs

let seconds_of st machine ~per_core_gflops ~tile_dim id =
  ignore machine;
  Tiled.flops st.tasks.(id).Tiled.op ~b:tile_dim /. (per_core_gflops *. 1e9)

(* Watchdog: generous multiple of the ideal makespan. *)
let deadline machine ~per_core_gflops ~tiles ~tile_dim =
  let ideal =
    Tiled.total_flops tiles ~b:tile_dim
    /. (per_core_gflops *. 1e9)
    /. float_of_int machine.Machine.cores
  in
  (ideal *. 8.0) +. 1.0

let run_bolt machine ~outer ~inner ~per_core_gflops ~tiles ~tile_dim ~kind ~mkl ~timer
    ~interval =
  let eng = Engine.create () in
  let kernel = Kernel.create eng machine in
  let config =
    { Config.default with Config.timer_strategy = timer; interval; idle_poll = 50e-6 }
  in
  let rt = Runtime.create ~config kernel ~n_workers:machine.Machine.cores in
  let st = dag_state tiles in
  let n = Array.length st.tasks in
  let rec executor () =
    match Queue.take_opt st.ready with
    | Some id ->
        let seconds = seconds_of st machine ~per_core_gflops ~tile_dim id in
        Blas_model.ult_team_compute rt ~kind ~style:mkl ~seconds ~inner;
        complete st (Ult.now ()) id;
        executor ()
    | None ->
        if st.completed < n then begin
          (* BOLT's scheduler: poll politely for new ready tasks. *)
          Ult.compute 2e-6;
          Ult.yield ();
          executor ()
        end
  in
  for i = 0 to outer - 1 do
    ignore (Runtime.spawn rt ~kind ~home:i ~name:(Printf.sprintf "outer%d" i) executor)
  done;
  Runtime.start rt;
  Engine.run ~max_events:2_000_000_000
    ~until:(deadline machine ~per_core_gflops ~tiles ~tile_dim)
    eng;
  let deadlocked = st.completed < n in
  if not deadlocked then Engine.run ~max_events:2_000_000_000 eng (* drain shutdown *);
  (st, deadlocked, Runtime.preempt_signals rt)

let run_iomp machine ~outer ~inner ~per_core_gflops ~tiles ~tile_dim =
  let eng = Engine.create () in
  let kernel = Kernel.create eng machine in
  let oversubscribed = outer * inner > machine.Machine.cores in
  (* The paper's IOMP tuning: KMP_BLOCKTIME=0 and no binding when
     oversubscribed, 200 ms + binding otherwise. *)
  let omp =
    Omp.create kernel
      ~blocktime:(if oversubscribed then 0.0 else 0.2)
      ~bind:(not oversubscribed) ()
  in
  let st = dag_state tiles in
  let n = Array.length st.tasks in
  ignore
    (Kernel.spawn kernel ~name:"main" (fun master ->
         Omp.parallel omp ~master ~nthreads:outer (fun _tid klt ->
             let rec executor () =
               match Queue.take_opt st.ready with
               | Some id ->
                   let seconds = seconds_of st machine ~per_core_gflops ~tile_dim id in
                   Blas_model.omp_team_compute omp ~master:klt ~seconds ~inner;
                   complete st (Kernel.now kernel) id;
                   executor ()
               | None ->
                   if st.completed < n then begin
                     Kernel.compute kernel klt 2e-6;
                     executor ()
                   end
             in
             executor ());
         Omp.shutdown omp));
  Engine.run ~max_events:2_000_000_000
    ~until:(deadline machine ~per_core_gflops ~tiles ~tile_dim)
    eng;
  let deadlocked = st.completed < n in
  if not deadlocked then Engine.run ~max_events:2_000_000_000 eng;
  (st, deadlocked, 0)

let run ?(machine = Machine.skylake) ?(outer = 8) ?(inner = 8) ?(per_core_gflops = 25.0)
    ~tiles ~tile_dim config =
  let st, deadlocked, preemptions =
    match config with
    | Bolt { kind; mkl; timer; interval } ->
        run_bolt machine ~outer ~inner ~per_core_gflops ~tiles ~tile_dim ~kind ~mkl ~timer
          ~interval
    | Iomp { flat } ->
        if flat then
          run_iomp machine ~outer:machine.Machine.cores ~inner:1 ~per_core_gflops ~tiles
            ~tile_dim
        else run_iomp machine ~outer ~inner ~per_core_gflops ~tiles ~tile_dim
  in
  let total = Tiled.total_flops tiles ~b:tile_dim in
  let makespan = if deadlocked then Float.infinity else st.finish_time in
  {
    gflops = (if deadlocked then 0.0 else total /. makespan /. 1e9);
    makespan;
    deadlocked;
    tasks = Array.length st.tasks;
    preemptions;
  }
