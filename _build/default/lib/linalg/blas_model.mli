(** Simulated Intel-MKL-style parallel BLAS kernel execution.

    An OpenMP-parallel MKL kernel runs its flops on an inner thread team
    and synchronizes by {e busy-looping on a memory flag} — the behavior
    that deadlocks nonpreemptive M:N runtimes (paper §4.1).  The
    [Yield_wait] style is the paper's "reverse-engineered" MKL whose
    wait loops yield explicitly. *)

type barrier_style =
  | Busy_wait  (** stock MKL: spin without yielding *)
  | Yield_wait  (** reverse-engineered MKL: yield inside the wait loop *)

(** [ult_team_compute rt ~kind ~style ~seconds ~inner] — call from a
    ULT: burns [seconds] of total CPU across [inner] threads (the caller
    plus [inner-1] freshly spawned ULTs of the same [kind]), then joins
    them MKL-style. *)
val ult_team_compute :
  Preempt_core.Runtime.t ->
  kind:Preempt_core.Types.thread_kind ->
  style:barrier_style ->
  seconds:float ->
  inner:int ->
  unit

(** Same shape for the 1:1 OpenMP baseline — call from a KLT. *)
val omp_team_compute :
  Ompmodel.Omp.t ->
  master:Oskern.Kernel.klt ->
  seconds:float ->
  inner:int ->
  unit
