lib/linalg/blas_model.mli: Ompmodel Oskern Preempt_core
