lib/linalg/blas_model.ml: Ompmodel Oskern Preempt_core Runtime Ult
