lib/linalg/cholesky_run.ml: Array Blas_model Config Desim Engine Float Kernel List Machine Ompmodel Oskern Preempt_core Printf Queue Runtime Tiled Types Ult
