lib/linalg/cholesky_run.mli: Blas_model Oskern Preempt_core
