lib/linalg/lu.mli: Desim Matrix
