lib/linalg/tiled.ml: Array Float Hashtbl List Matrix Printf
