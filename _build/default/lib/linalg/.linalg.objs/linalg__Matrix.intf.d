lib/linalg/matrix.mli: Desim
