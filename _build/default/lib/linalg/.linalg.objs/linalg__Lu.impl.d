lib/linalg/lu.ml: Array Desim Float Hashtbl List Matrix
