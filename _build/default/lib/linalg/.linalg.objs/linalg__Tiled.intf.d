lib/linalg/tiled.mli: Matrix
