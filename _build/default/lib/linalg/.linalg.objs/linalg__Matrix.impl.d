lib/linalg/matrix.ml: Array Desim
