(** Dense square matrices (row-major [float array]) and the four BLAS
    kernels tiled Cholesky needs.  These are real computations, used to
    validate that the task DAG of {!Tiled} produces a correct
    factorization; the simulator charges their {e costs} via
    {!Blas_model}. *)

type t

val create : int -> t
(** Zero matrix of dimension [n]. *)

val dim : t -> int

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val copy : t -> t

val identity : int -> t

(** [random_spd rng n] builds a well-conditioned symmetric positive
    definite matrix ([M Mᵀ + n·I]). *)
val random_spd : Desim.Rng.t -> int -> t

(** [matmul a b] allocates [a·b]. *)
val matmul : t -> t -> t

val transpose : t -> t

val sub : t -> t -> t

(** Frobenius norm. *)
val norm : t -> float

(** {1 Cholesky kernels (all act on lower triangles, in place)} *)

(** [potrf a]: factor [a = L·Lᵀ], leaving [L] in the lower triangle.
    @raise Failure on a non-positive-definite pivot. *)
val potrf : t -> unit

(** [trsm l b]: solve [X·Lᵀ = B] in place in [b] ([b ← b·L⁻ᵀ]). *)
val trsm : t -> t -> unit

(** [syrk a c]: [c ← c − a·aᵀ] (lower triangle updated fully here). *)
val syrk : t -> t -> unit

(** [gemm a b c]: [c ← c − a·bᵀ]. *)
val gemm : t -> t -> t -> unit

(** [cholesky a] is a non-tiled reference factorization (copy of [a]
    with [L] in the lower triangle, upper zeroed). *)
val cholesky : t -> t

(** Zero the strict upper triangle (for comparing factors). *)
val lower : t -> t

(** Flop counts for a [b]-dimensional tile, used by the cost model. *)
val flops_potrf : int -> float

val flops_trsm : int -> float

val flops_syrk : int -> float

val flops_gemm : int -> float
