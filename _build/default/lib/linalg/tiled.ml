type op = Potrf of int | Trsm of int * int | Syrk of int * int | Gemm of int * int * int

type task = { id : int; op : op; preds : int list; succs : int list }

let op_name = function
  | Potrf k -> Printf.sprintf "potrf(%d)" k
  | Trsm (i, k) -> Printf.sprintf "trsm(%d,%d)" i k
  | Syrk (i, k) -> Printf.sprintf "syrk(%d,%d)" i k
  | Gemm (i, j, k) -> Printf.sprintf "gemm(%d,%d,%d)" i j k

(* Tiles read / written by each task; dependencies are derived from
   last-writer tracking in program order, which matches the OpenMP
   task-dependence semantics SLATE relies on. *)
let reads = function
  | Potrf _ -> []
  | Trsm (_, k) -> [ (k, k) ]
  | Syrk (i, k) -> [ (i, k) ]
  | Gemm (i, j, k) -> [ (i, k); (j, k) ]
  [@@warning "-27"]

let writes = function
  | Potrf k -> (k, k)
  | Trsm (i, k) -> (i, k)
  | Syrk (i, _) -> (i, i)
  | Gemm (i, j, _) -> (i, j)

let dag t =
  if t <= 0 then invalid_arg "Tiled.dag: t <= 0";
  let ops = ref [] in
  for k = 0 to t - 1 do
    ops := Potrf k :: !ops;
    for i = k + 1 to t - 1 do
      ops := Trsm (i, k) :: !ops
    done;
    for i = k + 1 to t - 1 do
      for j = k + 1 to i do
        if j = i then ops := Syrk (i, k) :: !ops else ops := Gemm (i, j, k) :: !ops
      done
    done
  done;
  let ops = Array.of_list (List.rev !ops) in
  let n = Array.length ops in
  let last_writer : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let preds = Array.make n [] in
  let succs = Array.make n [] in
  Array.iteri
    (fun id op ->
      let dep_tiles = writes op :: reads op in
      let ps =
        List.sort_uniq compare
          (List.filter_map (fun tile -> Hashtbl.find_opt last_writer tile) dep_tiles)
      in
      preds.(id) <- ps;
      List.iter (fun p -> succs.(p) <- id :: succs.(p)) ps;
      Hashtbl.replace last_writer (writes op) id)
    ops;
  Array.init n (fun id ->
      { id; op = ops.(id); preds = preds.(id); succs = List.rev succs.(id) })

let flops op ~b =
  match op with
  | Potrf _ -> Matrix.flops_potrf b
  | Trsm _ -> Matrix.flops_trsm b
  | Syrk _ -> Matrix.flops_syrk b
  | Gemm _ -> Matrix.flops_gemm b

let total_flops t ~b = Array.fold_left (fun acc tk -> acc +. flops tk.op ~b) 0.0 (dag t)

let critical_path_flops t ~b =
  let tasks = dag t in
  let finish = Array.make (Array.length tasks) 0.0 in
  Array.iter
    (fun tk ->
      let start = List.fold_left (fun acc p -> Float.max acc finish.(p)) 0.0 tk.preds in
      finish.(tk.id) <- start +. flops tk.op ~b)
    tasks;
  Array.fold_left Float.max 0.0 finish

(* ------------------------------------------------------------------ *)
(* Real tiled execution. *)

type tiles = { t : int; b : int; blocks : Matrix.t array }

let split m ~t =
  let n = Matrix.dim m in
  if n mod t <> 0 then invalid_arg "Tiled.split: dim not divisible by t";
  let b = n / t in
  let blocks =
    Array.init (t * t) (fun idx ->
        let bi = idx / t and bj = idx mod t in
        let blk = Matrix.create b in
        for i = 0 to b - 1 do
          for j = 0 to b - 1 do
            Matrix.set blk i j (Matrix.get m ((bi * b) + i) ((bj * b) + j))
          done
        done;
        blk)
  in
  { t; b; blocks }

let block ts i j = ts.blocks.((i * ts.t) + j)

let join ts =
  let n = ts.t * ts.b in
  let m = Matrix.create n in
  for bi = 0 to ts.t - 1 do
    for bj = 0 to ts.t - 1 do
      if bj <= bi then
        let blk = block ts bi bj in
        for i = 0 to ts.b - 1 do
          for j = 0 to ts.b - 1 do
            Matrix.set m ((bi * ts.b) + i) ((bj * ts.b) + j) (Matrix.get blk i j)
          done
        done
    done
  done;
  m

let apply_op ts = function
  | Potrf k -> Matrix.potrf (block ts k k)
  | Trsm (i, k) -> Matrix.trsm (block ts k k) (block ts i k)
  | Syrk (i, k) -> Matrix.syrk (block ts i k) (block ts i i)
  | Gemm (i, j, k) -> Matrix.gemm (block ts i k) (block ts j k) (block ts i j)

let factorize m ~t =
  let ts = split m ~t in
  Array.iter (fun tk -> apply_op ts tk.op) (dag t);
  join ts
