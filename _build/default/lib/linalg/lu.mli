(** Tiled LU factorization without pivoting — a second task-DAG workload
    exercising the same runtime machinery as {!Tiled} with a different
    dependence structure (two panel solves per step instead of one).

    Restricted to diagonally dominant matrices so that pivoting is
    unnecessary (the usual assumption for no-pivot LU benchmarks). *)

type op =
  | Getrf of int  (** factor diagonal tile (k,k) into L\U *)
  | Trsm_l of int * int  (** (k,j): U panel solve, j > k *)
  | Trsm_u of int * int  (** (i,k): L panel solve, i > k *)
  | Gemm of int * int * int  (** (i,j) -= (i,k)·(k,j) *)

type task = { id : int; op : op; preds : int list; succs : int list }

val dag : int -> task array

val flops : op -> b:int -> float

val total_flops : int -> b:int -> float

(** {1 Real kernels on full matrices (for validation)} *)

(** In-place LU of a tile: unit-lower L and U packed together.
    @raise Failure on a zero pivot. *)
val getrf : Matrix.t -> unit

(** [trsm_l l b]: solve [L·X = B] in place in [b] (unit lower [l]). *)
val trsm_l : Matrix.t -> Matrix.t -> unit

(** [trsm_u u b]: solve [X·U = B] in place in [b] (upper [u]). *)
val trsm_u : Matrix.t -> Matrix.t -> unit

(** [gemm a b c]: [c ← c − a·b]. *)
val gemm : Matrix.t -> Matrix.t -> Matrix.t -> unit

(** [factorize m ~t] — tiled LU; returns the packed L\U matrix. *)
val factorize : Matrix.t -> t:int -> Matrix.t

(** Split a packed L\U into (unit-lower L, upper U). *)
val split_lu : Matrix.t -> Matrix.t * Matrix.t

(** A random diagonally dominant matrix (no pivoting needed). *)
val random_dd : Desim.Rng.t -> int -> Matrix.t
