type t = { n : int; a : float array }

let create n = { n; a = Array.make (n * n) 0.0 }

let dim m = m.n

let get m i j = m.a.((i * m.n) + j)

let set m i j v = m.a.((i * m.n) + j) <- v

let copy m = { n = m.n; a = Array.copy m.a }

let identity n =
  let m = create n in
  for i = 0 to n - 1 do
    set m i i 1.0
  done;
  m

let random_spd rng n =
  let g = create n in
  for i = 0 to (n * n) - 1 do
    g.a.(i) <- Desim.Rng.range rng (-1.0) 1.0
  done;
  let m = create n in
  (* M·Mᵀ + n·I: symmetric, strictly diagonally dominant enough. *)
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let s = ref 0.0 in
      for k = 0 to n - 1 do
        s := !s +. (get g i k *. get g j k)
      done;
      set m i j (!s +. if i = j then float_of_int n else 0.0)
    done
  done;
  m

let matmul x y =
  assert (x.n = y.n);
  let n = x.n in
  let r = create n in
  for i = 0 to n - 1 do
    for k = 0 to n - 1 do
      let xik = get x i k in
      if xik <> 0.0 then
        for j = 0 to n - 1 do
          set r i j (get r i j +. (xik *. get y k j))
        done
    done
  done;
  r

let transpose x =
  let n = x.n in
  let r = create n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      set r j i (get x i j)
    done
  done;
  r

let sub x y =
  assert (x.n = y.n);
  { n = x.n; a = Array.init (Array.length x.a) (fun i -> x.a.(i) -. y.a.(i)) }

let norm x = sqrt (Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 x.a)

let potrf m =
  let n = m.n in
  for j = 0 to n - 1 do
    let s = ref (get m j j) in
    for k = 0 to j - 1 do
      s := !s -. (get m j k *. get m j k)
    done;
    if !s <= 0.0 then failwith "Matrix.potrf: not positive definite";
    let d = sqrt !s in
    set m j j d;
    for i = j + 1 to n - 1 do
      let s = ref (get m i j) in
      for k = 0 to j - 1 do
        s := !s -. (get m i k *. get m j k)
      done;
      set m i j (!s /. d)
    done
  done;
  (* Zero the strict upper triangle so the tile holds exactly L. *)
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      set m i j 0.0
    done
  done

let trsm l b =
  (* X·Lᵀ = B, i.e. for each row r of B: solve L·xᵀ = bᵀ by forward
     substitution (L is lower triangular). *)
  let n = l.n in
  for r = 0 to n - 1 do
    for j = 0 to n - 1 do
      let s = ref (get b r j) in
      for k = 0 to j - 1 do
        s := !s -. (get l j k *. get b r k)
      done;
      set b r j (!s /. get l j j)
    done
  done

let syrk a c =
  let n = a.n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let s = ref 0.0 in
      for k = 0 to n - 1 do
        s := !s +. (get a i k *. get a j k)
      done;
      set c i j (get c i j -. !s)
    done
  done

let gemm a b c =
  let n = a.n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let s = ref 0.0 in
      for k = 0 to n - 1 do
        s := !s +. (get a i k *. get b j k)
      done;
      set c i j (get c i j -. !s)
    done
  done

let lower x =
  let r = copy x in
  for i = 0 to x.n - 1 do
    for j = i + 1 to x.n - 1 do
      set r i j 0.0
    done
  done;
  r

let cholesky a =
  let r = copy a in
  potrf r;
  r

let flops_potrf b = float_of_int (b * b * b) /. 3.0

let flops_trsm b = float_of_int (b * b * b)

let flops_syrk b = float_of_int (b * b * b)

let flops_gemm b = 2.0 *. float_of_int (b * b * b)
