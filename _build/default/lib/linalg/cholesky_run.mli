(** Simulated end-to-end runs of the SLATE-style tiled Cholesky kernel —
    the workload behind paper Fig. 7.

    Outer parallelism: [outer] executor threads pull ready DAG tasks;
    inner parallelism: each task runs its BLAS kernel on an [inner]-way
    MKL-style team ({!Blas_model}).  Configurations mirror the paper's
    lines: BOLT (non)preemptive with stock or reverse-engineered MKL,
    and Intel OpenMP nested or flat. *)

type config =
  | Bolt of {
      kind : Preempt_core.Types.thread_kind;
      mkl : Blas_model.barrier_style;
      timer : Preempt_core.Config.timer_strategy;
      interval : float;
    }
  | Iomp of { flat : bool }

type result = {
  gflops : float;
  makespan : float;  (** seconds until the last task completed *)
  deadlocked : bool;  (** true when the run hit its watchdog deadline *)
  tasks : int;
  preemptions : int;  (** preemption signals honored (BOLT only) *)
}

val config_name : config -> string

(** [run ~tiles ~tile_dim cfg] executes one full factorization.
    Defaults: [machine] Skylake (56 workers), [outer]/[inner] 8,
    [per_core_gflops] 25. *)
val run :
  ?machine:Oskern.Machine.t ->
  ?outer:int ->
  ?inner:int ->
  ?per_core_gflops:float ->
  tiles:int ->
  tile_dim:int ->
  config ->
  result
