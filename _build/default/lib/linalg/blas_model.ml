open Preempt_core

type barrier_style = Busy_wait | Yield_wait

let spin_poll = 20e-6

let ult_team_compute rt ~kind ~style ~seconds ~inner =
  if inner <= 1 then Ult.compute seconds
  else begin
    let arrived = ref 0 in
    let per = seconds /. float_of_int inner in
    let member () =
      Ult.compute per;
      incr arrived;
      (* MKL threads spin at the team barrier until everyone arrives. *)
      match style with
      | Busy_wait ->
          while !arrived < inner do
            Ult.compute spin_poll
          done
      | Yield_wait ->
          while !arrived < inner do
            Ult.yield ()
          done
    in
    for _ = 2 to inner do
      ignore (Runtime.spawn rt ~kind ~name:"mkl-inner" member)
    done;
    member ()
  end

let omp_team_compute omp ~master ~seconds ~inner =
  let k = Ompmodel.Omp.kernel omp in
  if inner <= 1 then Oskern.Kernel.compute k master seconds
  else begin
    let arrived = ref 0 in
    let per = seconds /. float_of_int inner in
    Ompmodel.Omp.parallel omp ~master ~nthreads:inner (fun _tid klt ->
        Oskern.Kernel.compute k klt per;
        incr arrived;
        (* Stock MKL busy-wait is harmless under 1:1 threads: the OS
           preempts the spinners. *)
        Oskern.Kernel.busy_wait k klt ~poll:spin_poll (fun () -> !arrived >= inner))
  end
