(** Tiled right-looking Cholesky factorization as a task DAG with data
    dependencies — the SLATE kernel of the paper's §4.1.

    The DAG is built once and consumed both by the {e real} executor
    (operating on actual tiles, for correctness tests) and by the
    simulated runs (which only need each task's flop cost and
    dependency structure). *)

type op =
  | Potrf of int  (** factor diagonal tile [(k,k)] *)
  | Trsm of int * int  (** panel solve of tile [(i,k)] against [(k,k)] *)
  | Syrk of int * int  (** [(i,i) -= (i,k)·(i,k)ᵀ] *)
  | Gemm of int * int * int  (** [(i,j) -= (i,k)·(j,k)ᵀ] *)

type task = {
  id : int;
  op : op;
  preds : int list;  (** ids of tasks this one waits for *)
  succs : int list;  (** ids of tasks waiting for this one *)
}

(** [dag t] builds the task graph for a [t x t] tile grid.  Tasks are in
    a valid sequential order (program order). *)
val dag : int -> task array

(** Flop cost of a task for tile dimension [b]. *)
val flops : op -> b:int -> float

(** Total flops of the whole factorization. *)
val total_flops : int -> b:int -> float

(** Longest path through the DAG in flops (critical path) — a lower
    bound on parallel execution. *)
val critical_path_flops : int -> b:int -> float

(** {1 Real execution} *)

(** A matrix cut into [t x t] tiles of dimension [b]. *)
type tiles

val split : Matrix.t -> t:int -> tiles

(** Reassemble (lower triangle of the factor; upper tiles zeroed). *)
val join : tiles -> Matrix.t

(** [apply_op tiles op] runs one task's real computation. *)
val apply_op : tiles -> op -> unit

(** [factorize m ~t] = split, run all tasks in order, join. *)
val factorize : Matrix.t -> t:int -> Matrix.t

val op_name : op -> string
