type op = Getrf of int | Trsm_l of int * int | Trsm_u of int * int | Gemm of int * int * int

type task = { id : int; op : op; preds : int list; succs : int list }

let reads = function
  | Getrf _ -> []
  | Trsm_l (k, _) -> [ (k, k) ]
  | Trsm_u (_, k) -> [ (k, k) ]
  | Gemm (i, j, k) -> [ (i, k); (k, j) ]

let writes = function
  | Getrf k -> (k, k)
  | Trsm_l (k, j) -> (k, j)
  | Trsm_u (i, k) -> (i, k)
  | Gemm (i, j, _) -> (i, j)

let dag t =
  if t <= 0 then invalid_arg "Lu.dag: t <= 0";
  let ops = ref [] in
  for k = 0 to t - 1 do
    ops := Getrf k :: !ops;
    for j = k + 1 to t - 1 do
      ops := Trsm_l (k, j) :: !ops
    done;
    for i = k + 1 to t - 1 do
      ops := Trsm_u (i, k) :: !ops
    done;
    for i = k + 1 to t - 1 do
      for j = k + 1 to t - 1 do
        ops := Gemm (i, j, k) :: !ops
      done
    done
  done;
  let ops = Array.of_list (List.rev !ops) in
  let n = Array.length ops in
  let last_writer : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let preds = Array.make n [] in
  let succs = Array.make n [] in
  Array.iteri
    (fun id op ->
      let tiles = writes op :: reads op in
      let ps =
        List.sort_uniq compare
          (List.filter_map (fun tile -> Hashtbl.find_opt last_writer tile) tiles)
      in
      preds.(id) <- ps;
      List.iter (fun p -> succs.(p) <- id :: succs.(p)) ps;
      Hashtbl.replace last_writer (writes op) id)
    ops;
  Array.init n (fun id ->
      { id; op = ops.(id); preds = preds.(id); succs = List.rev succs.(id) })

let flops op ~b =
  let fb = float_of_int (b * b * b) in
  match op with
  | Getrf _ -> 2.0 *. fb /. 3.0
  | Trsm_l _ | Trsm_u _ -> fb
  | Gemm _ -> 2.0 *. fb

let total_flops t ~b = Array.fold_left (fun acc tk -> acc +. flops tk.op ~b) 0.0 (dag t)

(* ------------------------------------------------------------------ *)
(* Real kernels. *)

let getrf m =
  let n = Matrix.dim m in
  for k = 0 to n - 1 do
    let pivot = Matrix.get m k k in
    if Float.abs pivot < 1e-12 then failwith "Lu.getrf: zero pivot";
    for i = k + 1 to n - 1 do
      Matrix.set m i k (Matrix.get m i k /. pivot);
      for j = k + 1 to n - 1 do
        Matrix.set m i j (Matrix.get m i j -. (Matrix.get m i k *. Matrix.get m k j))
      done
    done
  done

let trsm_l l b =
  (* L·X = B with unit-lower L: forward substitution per column of B. *)
  let n = Matrix.dim l in
  for c = 0 to n - 1 do
    for i = 0 to n - 1 do
      let s = ref (Matrix.get b i c) in
      for k = 0 to i - 1 do
        s := !s -. (Matrix.get l i k *. Matrix.get b k c)
      done;
      Matrix.set b i c !s
    done
  done

let trsm_u u b =
  (* X·U = B: forward substitution per row of B. *)
  let n = Matrix.dim u in
  for r = 0 to n - 1 do
    for j = 0 to n - 1 do
      let s = ref (Matrix.get b r j) in
      for k = 0 to j - 1 do
        s := !s -. (Matrix.get b r k *. Matrix.get u k j)
      done;
      Matrix.set b r j (!s /. Matrix.get u j j)
    done
  done

let gemm a b c =
  let n = Matrix.dim a in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let s = ref 0.0 in
      for k = 0 to n - 1 do
        s := !s +. (Matrix.get a i k *. Matrix.get b k j)
      done;
      Matrix.set c i j (Matrix.get c i j -. !s)
    done
  done

let random_dd rng n =
  let m = Matrix.create n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Matrix.set m i j (Desim.Rng.range rng (-1.0) 1.0)
    done;
    Matrix.set m i i (float_of_int n +. Desim.Rng.float rng)
  done;
  m

(* Tiled execution on a block matrix (reuses Tiled's splitter). *)
let factorize m ~t =
  let n = Matrix.dim m in
  if n mod t <> 0 then invalid_arg "Lu.factorize: dim not divisible by t";
  let b = n / t in
  let tile i j =
    let blk = Matrix.create b in
    for r = 0 to b - 1 do
      for c = 0 to b - 1 do
        Matrix.set blk r c (Matrix.get m ((i * b) + r) ((j * b) + c))
      done
    done;
    blk
  in
  let blocks = Array.init (t * t) (fun idx -> tile (idx / t) (idx mod t)) in
  let blk i j = blocks.((i * t) + j) in
  Array.iter
    (fun tk ->
      match tk.op with
      | Getrf k -> getrf (blk k k)
      | Trsm_l (k, j) -> trsm_l (blk k k) (blk k j)
      | Trsm_u (i, k) -> trsm_u (blk k k) (blk i k)
      | Gemm (i, j, k) -> gemm (blk i k) (blk k j) (blk i j))
    (dag t);
  let out = Matrix.create n in
  for i = 0 to t - 1 do
    for j = 0 to t - 1 do
      let blkij = blk i j in
      for r = 0 to b - 1 do
        for c = 0 to b - 1 do
          Matrix.set out ((i * b) + r) ((j * b) + c) (Matrix.get blkij r c)
        done
      done
    done
  done;
  out

let split_lu packed =
  let n = Matrix.dim packed in
  let l = Matrix.identity n in
  let u = Matrix.create n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if j < i then Matrix.set l i j (Matrix.get packed i j)
      else Matrix.set u i j (Matrix.get packed i j)
    done
  done;
  (l, u)
