open Oskern

type team = {
  master_id : int;
  tdepth : int;  (* nesting depth of this team's regions *)
  mutable members : Kernel.klt list;  (* tids 1..n-1, in tid order *)
  mutable size : int;  (* nthreads of the current/last region *)
  mutable work : (int -> Kernel.klt -> unit) option;
  mutable work_gen : int;
  work_fut : Kernel.Futex.t;
  mutable arrived : int;
  mutable release_gen : int;
  release_fut : Kernel.Futex.t;
  mutable shutdown : bool;
}

type t = {
  k : Kernel.t;
  blocktime : float;
  bind : bool;
  teams : (int * int, team) Hashtbl.t;  (* (master klt id, nesting depth) -> hot team *)
  depth : (int, int) Hashtbl.t;  (* klt id -> current nesting depth *)
  mutable next_bind_core : int;
  mutable affinity : Cpuset.t option;  (* taskset-style mask, if any *)
  mutable nthreads_created : int;
}

let create k ?(blocktime = 0.2) ?(bind = false) () =
  {
    k;
    blocktime;
    bind;
    teams = Hashtbl.create 8;
    depth = Hashtbl.create 8;
    next_bind_core = 0;
    affinity = None;
    nthreads_created = 0;
  }

let kernel t = t.k

let team_threads t = t.nthreads_created

let team_klts t =
  Hashtbl.fold (fun _ team acc -> team.members @ acc) t.teams []

(* Spin for up to [blocktime], then sleep on [fut] — KMP_BLOCKTIME. *)
let wait_cond t klt fut cond =
  let deadline = Kernel.now t.k +. t.blocktime in
  while (not (cond ())) && Kernel.now t.k < deadline do
    Kernel.compute t.k klt 2e-6
  done;
  while not (cond ()) do
    ignore (Kernel.Futex.wait t.k klt fut ~expected:(Kernel.Futex.value fut))
  done

(* The implicit barrier at region end.  The last arriver bumps the
   release generation and wakes the sleepers. *)
let barrier_arrive t team klt =
  let my_gen = team.release_gen in
  team.arrived <- team.arrived + 1;
  if team.arrived = team.size then begin
    team.arrived <- 0;
    team.release_gen <- team.release_gen + 1;
    Kernel.Futex.set team.release_fut team.release_gen;
    ignore (Kernel.Futex.wake t.k ~waker:klt team.release_fut max_int)
  end
  else wait_cond t klt team.release_fut (fun () -> team.release_gen > my_gen)

let member_loop t team tid klt =
  let rec loop seen_gen =
    wait_cond t klt team.work_fut (fun () -> team.work_gen > seen_gen || team.shutdown);
    if not team.shutdown then begin
      let gen = team.work_gen in
      (* A hot-team member beyond the current region's size neither works
         nor joins the barrier — it just waits for the next region. *)
      if tid < team.size then begin
        Hashtbl.replace t.depth (Kernel.klt_id klt) (team.tdepth + 1);
        (match team.work with Some f -> f tid klt | None -> ());
        Hashtbl.remove t.depth (Kernel.klt_id klt);
        barrier_arrive t team klt
      end;
      loop gen
    end
  in
  loop 0

let member_affinity t =
  match t.affinity with
  | Some mask -> mask
  | None ->
      let ncores = (Kernel.machine t.k).Machine.cores in
      if t.bind then begin
        let c = t.next_bind_core mod ncores in
        t.next_bind_core <- t.next_bind_core + 1;
        Cpuset.of_list ncores [ c ]
      end
      else Cpuset.all ncores

let grow_team t team ~upto ~creator =
  let have = List.length team.members + 1 in
  if upto > have then begin
    let fresh =
      List.init (upto - have) (fun i ->
          let tid = have + i in
          t.nthreads_created <- t.nthreads_created + 1;
          Kernel.spawn t.k ~creator
            ~affinity:(member_affinity t)
            ~name:(Printf.sprintf "omp-%d.%d" team.master_id tid)
            (fun klt -> member_loop t team tid klt))
    in
    team.members <- team.members @ fresh
  end

let depth_of t klt = Option.value ~default:0 (Hashtbl.find_opt t.depth (Kernel.klt_id klt))

let team_for t master =
  let mid = (Kernel.klt_id master, depth_of t master) in
  match Hashtbl.find_opt t.teams mid with
  | Some team -> team
  | None ->
      let team =
        {
          master_id = Kernel.klt_id master;
          tdepth = depth_of t master;
          members = [];
          size = 1;
          work = None;
          work_gen = 0;
          work_fut = Kernel.Futex.create t.k 0;
          arrived = 0;
          release_gen = 0;
          release_fut = Kernel.Futex.create t.k 0;
          shutdown = false;
        }
      in
      Hashtbl.replace t.teams mid team;
      team

let parallel t ~master ~nthreads f =
  if nthreads <= 0 then invalid_arg "Omp.parallel: nthreads <= 0";
  let team = team_for t master in
  grow_team t team ~upto:nthreads ~creator:master;
  (* Fork: a couple of microseconds of runtime bookkeeping. *)
  Kernel.consume t.k master 1e-6;
  team.size <- nthreads;
  team.work <- Some f;
  team.work_gen <- team.work_gen + 1;
  Kernel.Futex.set team.work_fut team.work_gen;
  ignore (Kernel.Futex.wake t.k ~waker:master team.work_fut max_int);
  let prev_depth = depth_of t master in
  Hashtbl.replace t.depth (Kernel.klt_id master) (team.tdepth + 1);
  f 0 master;
  Hashtbl.replace t.depth (Kernel.klt_id master) prev_depth;
  barrier_arrive t team master;
  team.work <- None

let parallel_for t ~master ~nthreads ~lo ~hi f =
  let n = hi - lo in
  if n < 0 then invalid_arg "Omp.parallel_for: hi < lo";
  if n > 0 then
    parallel t ~master ~nthreads (fun tid klt ->
        let chunk = (n + nthreads - 1) / nthreads in
        let clo = lo + (tid * chunk) in
        let chi = Stdlib.min hi (clo + chunk) in
        if clo < chi then f klt clo chi)

let set_affinity_all t mask =
  t.affinity <- Some mask;
  Hashtbl.iter
    (fun _ team -> List.iter (fun klt -> Kernel.set_affinity t.k klt mask) team.members)
    t.teams

let shutdown t =
  Hashtbl.iter
    (fun _ team ->
      team.shutdown <- true;
      Kernel.Futex.set team.work_fut (team.work_gen + 1_000_000);
      ignore (Kernel.Futex.wake t.k team.work_fut max_int))
    t.teams
