lib/ompmodel/omp.mli: Oskern
