lib/ompmodel/omp.ml: Cpuset Hashtbl Kernel List Machine Option Oskern Printf Stdlib
