(** 1:1-thread OpenMP-like runtime over the simulated kernel — the
    "Intel OpenMP" baseline of the paper's evaluation.

    Teams are {e hot}: the worker KLTs of a team are created at the
    first parallel region of a given master and reused afterwards,
    blocking between regions with KMP_BLOCKTIME semantics (spin for
    [blocktime], then futex-sleep).  Nested regions create nested hot
    teams, keyed by the inner master (paper §4: "nested hot teams").

    All entry points must run in KLT process context (the [master]
    argument is the calling KLT). *)

type t

val create :
  Oskern.Kernel.t ->
  ?blocktime:float ->
  ?bind:bool ->
  unit ->
  t
(** [blocktime] defaults to 200 ms (the KMP_BLOCKTIME default the paper
    uses when not oversubscribed); [bind] pins team threads round-robin
    to cores (OMP_PROC_BIND=true). *)

val kernel : t -> Oskern.Kernel.t

(** [parallel t ~master ~nthreads f] runs [f tid klt] on [nthreads]
    threads ([tid] 0 is the master itself) and joins them (implicit
    barrier). *)
val parallel : t -> master:Oskern.Kernel.klt -> nthreads:int -> (int -> Oskern.Kernel.klt -> unit) -> unit

(** [parallel_for t ~master ~nthreads ~lo ~hi f] statically chunks
    [lo..hi-1] over the team; [f] receives [(klt, chunk_lo, chunk_hi)]
    with [chunk_hi] exclusive. *)
val parallel_for :
  t ->
  master:Oskern.Kernel.klt ->
  nthreads:int ->
  lo:int ->
  hi:int ->
  (Oskern.Kernel.klt -> int -> int -> unit) ->
  unit

(** Apply an affinity mask to every team thread created so far and to
    future ones ([taskset]-style packing, paper §4.2). *)
val set_affinity_all : t -> Oskern.Cpuset.t -> unit

(** Number of team KLTs created so far (hot-team reuse check). *)
val team_threads : t -> int

(** All team KLTs created so far (e.g. to change their scheduling
    policy, as in the SCHED_FIFO ablation). *)
val team_klts : t -> Oskern.Kernel.klt list

(** Wake every team and let its KLTs exit, so the engine can drain. *)
val shutdown : t -> unit
