(** Streaming and batch statistics used by the experiment harnesses. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float

(** Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples. *)
val stddev : t -> float

val min : t -> float

val max : t -> float

val sum : t -> float

(** [percentile t p] with [p] in [\[0, 100\]], by linear interpolation on
    the sorted samples.  @raise Invalid_argument on an empty series. *)
val percentile : t -> float -> float

val median : t -> float

(** All recorded samples in insertion order. *)
val samples : t -> float array

(** [histogram t ~bins] returns [(lo, hi, count)] rows covering the data
    range with [bins] equal-width buckets. *)
val histogram : t -> bins:int -> (float * float * int) array

val pp_summary : Format.formatter -> t -> unit
