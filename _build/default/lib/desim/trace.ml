type record = { time : float; tag : string; detail : string }

type t = {
  mutable records : record list; (* newest first *)
  mutable count : int;
  capacity : int;
  mutable on : bool;
}

let create ?(capacity = 100_000) () = { records = []; count = 0; capacity; on = false }

let enable t = t.on <- true

let disable t = t.on <- false

let enabled t = t.on

let emit t time tag detail =
  if t.on && t.count < t.capacity then begin
    t.records <- { time; tag; detail } :: t.records;
    t.count <- t.count + 1
  end

let records t = List.rev t.records

let with_tag t tag = List.filter (fun r -> r.tag = tag) (records t)

let clear t =
  t.records <- [];
  t.count <- 0

let length t = t.count

let pp ppf t =
  List.iter
    (fun r -> Format.fprintf ppf "%.9f %-20s %s@." r.time r.tag r.detail)
    (records t)
