(** Binary min-heap with stable ordering and O(log n) operations.

    Elements are ordered by a [float] key; ties are broken by insertion
    sequence number, so two elements with equal keys pop in insertion
    order.  This stability is what makes the simulation deterministic. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

(** [push h key v] inserts [v] with priority [key]. *)
val push : 'a t -> float -> 'a -> unit

(** [pop_min h] removes and returns the minimum element (key, value).
    @raise Not_found if the heap is empty. *)
val pop_min : 'a t -> float * 'a

(** [peek_min h] returns the minimum without removing it. *)
val peek_min : 'a t -> (float * 'a) option

(** [clear h] removes every element. *)
val clear : 'a t -> unit

(** [to_list h] returns all elements in unspecified order (testing aid). *)
val to_list : 'a t -> (float * 'a) list
