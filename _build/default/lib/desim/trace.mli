(** Lightweight event tracing for tests and debugging.

    A trace is a buffer of [(time, tag, detail)] records.  Tests assert
    on recorded sequences; the experiment harnesses leave tracing off. *)

type t

type record = { time : float; tag : string; detail : string }

val create : ?capacity:int -> unit -> t

(** Tracing is disabled until [enable] is called; [emit] on a disabled
    trace is free. *)
val enable : t -> unit

val disable : t -> unit

val enabled : t -> bool

val emit : t -> float -> string -> string -> unit

(** Records in emission order. *)
val records : t -> record list

(** Records whose tag equals the argument. *)
val with_tag : t -> string -> record list

val clear : t -> unit

val length : t -> int

val pp : Format.formatter -> t -> unit
