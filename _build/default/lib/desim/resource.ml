type t = {
  eng : Engine.t;
  cap : int;
  mutable used : int;
  q : unit Sync.Waitq.t;
  waits : Stats.t;
  mutable busy : float;
  mutable last_change : float;
  created_at : float;
}

let create eng ~capacity () =
  if capacity < 1 then invalid_arg "Resource.create: capacity < 1";
  {
    eng;
    cap = capacity;
    used = 0;
    q = Sync.Waitq.create ();
    waits = Stats.create ();
    busy = 0.0;
    last_change = Engine.now eng;
    created_at = Engine.now eng;
  }

let account t =
  let now = Engine.now t.eng in
  t.busy <- t.busy +. (float_of_int t.used *. (now -. t.last_change));
  t.last_change <- now

let acquire t =
  let t0 = Engine.now t.eng in
  if t.used < t.cap then begin
    account t;
    t.used <- t.used + 1
  end
  else begin
    Sync.Waitq.wait t.q
    (* the releaser transferred the slot: [used] unchanged *)
  end;
  let waited = Engine.now t.eng -. t0 in
  Stats.add t.waits waited;
  waited

let release t =
  if t.used <= 0 then invalid_arg "Resource.release: nothing held";
  if not (Sync.Waitq.wake_one t.q ()) then begin
    account t;
    t.used <- t.used - 1
  end

let use t f =
  ignore (acquire t);
  Fun.protect ~finally:(fun () -> release t) f

let capacity t = t.cap

let in_use t = t.used

let queue_length t = Sync.Waitq.length t.q

let wait_stats t = t.waits

let busy_time t =
  account t;
  t.busy

let utilization t =
  let elapsed = Engine.now t.eng -. t.created_at in
  if elapsed <= 0.0 then 0.0 else busy_time t /. (float_of_int t.cap *. elapsed)
