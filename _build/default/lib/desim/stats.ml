type t = {
  mutable data : float array;
  mutable size : int;
  mutable total : float;
  mutable sq_total : float;
  mutable lo : float;
  mutable hi : float;
}

let create () =
  { data = [||]; size = 0; total = 0.0; sq_total = 0.0; lo = infinity; hi = neg_infinity }

let add t x =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let nd = Array.make (if cap = 0 then 16 else cap * 2) 0.0 in
    Array.blit t.data 0 nd 0 t.size;
    t.data <- nd
  end;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  t.total <- t.total +. x;
  t.sq_total <- t.sq_total +. (x *. x);
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x

let count t = t.size

let sum t = t.total

let mean t = if t.size = 0 then 0.0 else t.total /. float_of_int t.size

let stddev t =
  if t.size < 2 then 0.0
  else begin
    let n = float_of_int t.size in
    let m = t.total /. n in
    let var = (t.sq_total -. (n *. m *. m)) /. (n -. 1.0) in
    if var < 0.0 then 0.0 else sqrt var
  end

let min t = t.lo

let max t = t.hi

let samples t = Array.sub t.data 0 t.size

let percentile t p =
  if t.size = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = samples t in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let median t = percentile t 50.0

let histogram t ~bins =
  if bins <= 0 then invalid_arg "Stats.histogram: bins <= 0";
  if t.size = 0 then [||]
  else begin
    let lo = t.lo and hi = t.hi in
    let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
    let counts = Array.make bins 0 in
    for i = 0 to t.size - 1 do
      let b = int_of_float ((t.data.(i) -. lo) /. width) in
      let b = if b >= bins then bins - 1 else if b < 0 then 0 else b in
      counts.(b) <- counts.(b) + 1
    done;
    Array.mapi
      (fun i c -> (lo +. (float_of_int i *. width), lo +. (float_of_int (i + 1) *. width), c))
      counts
  end

let pp_summary ppf t =
  Format.fprintf ppf "n=%d mean=%.6g sd=%.6g min=%.6g max=%.6g" t.size (mean t) (stddev t)
    (if t.size = 0 then Float.nan else t.lo)
    (if t.size = 0 then Float.nan else t.hi)
