(** Deterministic splittable pseudo-random number generator (SplitMix64).

    Every stochastic choice in the simulator draws from an [Rng.t] so
    that experiments replay bit-for-bit given a seed.  [split] derives an
    independent stream, which lets concurrent components draw without
    perturbing each other's sequences. *)

type t

val make : int -> t

(** [split t] returns a new generator whose stream is independent of the
    subsequent outputs of [t]. *)
val split : t -> t

(** [bits64 t] returns 64 uniformly random bits. *)
val bits64 : t -> int64

(** [int t bound] returns a uniform int in [\[0, bound)].  [bound > 0]. *)
val int : t -> int -> int

(** [float t] returns a uniform float in [\[0, 1)]. *)
val float : t -> float

(** [range t lo hi] returns a uniform float in [\[lo, hi)]. *)
val range : t -> float -> float -> float

(** [exponential t ~mean] draws from an exponential distribution. *)
val exponential : t -> mean:float -> float

(** [shuffle t arr] permutes [arr] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit
