type 'a entry = { key : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let length h = h.size

let is_empty h = h.size = 0

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow h e =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nd = Array.make ncap e in
    Array.blit h.data 0 nd 0 h.size;
    h.data <- nd
  end

let push h key value =
  let e = { key; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  grow h e;
  h.data.(h.size) <- e;
  h.size <- h.size + 1;
  (* sift up *)
  let i = ref (h.size - 1) in
  while !i > 0 do
    let p = (!i - 1) / 2 in
    if less h.data.(!i) h.data.(p) then begin
      let tmp = h.data.(p) in
      h.data.(p) <- h.data.(!i);
      h.data.(!i) <- tmp;
      i := p
    end
    else i := 0
  done

let sift_down h =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < h.size && less h.data.(l) h.data.(!smallest) then smallest := l;
    if r < h.size && less h.data.(r) h.data.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = h.data.(!smallest) in
      h.data.(!smallest) <- h.data.(!i);
      h.data.(!i) <- tmp;
      i := !smallest
    end
    else continue := false
  done

let pop_min h =
  if h.size = 0 then raise Not_found;
  let e = h.data.(0) in
  h.size <- h.size - 1;
  if h.size > 0 then begin
    h.data.(0) <- h.data.(h.size);
    sift_down h
  end;
  (e.key, e.value)

let peek_min h = if h.size = 0 then None else Some (h.data.(0).key, h.data.(0).value)

let clear h =
  h.data <- [||];
  h.size <- 0

let to_list h =
  let acc = ref [] in
  for i = h.size - 1 downto 0 do
    acc := (h.data.(i).key, h.data.(i).value) :: !acc
  done;
  !acc
