(** Capacity-limited resource (M/M/c-style server) with FIFO queueing
    and built-in utilization/wait statistics — a generic building block
    for discrete-event models (and a self-check for the engine: its
    measured statistics can be compared against queueing theory). *)

type t

(** [create eng ~capacity ()] — [capacity >= 1] concurrent holders. *)
val create : Engine.t -> capacity:int -> unit -> t

(** [acquire t] blocks the calling process until a slot is free;
    returns the time spent waiting. *)
val acquire : t -> float

val release : t -> unit

(** [use t f] = acquire; run [f]; release (also on exception). *)
val use : t -> (unit -> 'a) -> 'a

val capacity : t -> int

val in_use : t -> int

val queue_length : t -> int

(** Waiting-time samples of completed acquisitions. *)
val wait_stats : t -> Stats.t

(** Busy slot-seconds accumulated so far. *)
val busy_time : t -> float

(** [utilization t] = busy slot-seconds / (capacity × elapsed). *)
val utilization : t -> float
