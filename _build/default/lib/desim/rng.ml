type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let make seed = { state = Int64.of_int seed }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

let int t bound =
  assert (bound > 0);
  let b = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  b mod bound

let float t =
  (* 53 random bits scaled into [0, 1). *)
  let b = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int b *. (1.0 /. 9007199254740992.0)

let range t lo hi = lo +. ((hi -. lo) *. float t)

let exponential t ~mean =
  let u = float t in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
