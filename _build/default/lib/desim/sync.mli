(** Simulation-level synchronization primitives built on {!Engine.block}.

    These are "instantaneous" primitives: acquiring a free mutex costs no
    virtual time; contended waiters queue FIFO and are woken through the
    event heap.  Any timing cost (e.g. a kernel lock's hold time) is
    modelled by the caller with {!Engine.delay}. *)

module Mutex : sig
  type t

  val create : unit -> t

  (** FIFO-fair lock; suspends the calling process while held. *)
  val lock : t -> unit

  val unlock : t -> unit

  val try_lock : t -> bool

  val locked : t -> bool

  (** Number of processes currently queued on the lock. *)
  val waiters : t -> int
end

module Ivar : sig
  (** Write-once cell; readers block until filled. *)
  type 'a t

  val create : unit -> 'a t

  (** @raise Invalid_argument when filled twice. *)
  val fill : 'a t -> 'a -> unit

  val read : 'a t -> 'a

  val peek : 'a t -> 'a option

  val is_filled : 'a t -> bool
end

module Waitq : sig
  (** A bare FIFO wait queue: processes park and are woken with a value.
      The building block for futexes and condition variables. *)
  type 'a t

  val create : unit -> 'a t

  val wait : 'a t -> 'a

  (** [wake_one q v] wakes the oldest waiter; returns [false] if empty. *)
  val wake_one : 'a t -> 'a -> bool

  (** [wake_all q v] wakes every queued waiter; returns how many. *)
  val wake_all : 'a t -> 'a -> int

  val length : 'a t -> int

  (** [cancellable_wait q] is [wait] that can also be aborted: it
      returns a [cancel] function usable from event context before the
      process is woken; the wait result is [None] if cancelled. *)
  val wait_cancellable : 'a t -> cancel_ref:(unit -> unit) ref -> 'a option
end

module Semaphore : sig
  type t

  val create : int -> t

  val acquire : t -> unit

  val release : t -> unit

  val available : t -> int
end
