type event_record = {
  mutable alive : bool;
  callback : unit -> unit;
}

type t = {
  mutable clock : float;
  heap : event_record Heap.t;
  root_rng : Rng.t;
  mutable processed : int;
  mutable live : int;
  mutable live_names : (int * string) list; (* pid, name *)
  mutable next_pid : int;
  mutable quiescence : unit -> string option;
}

type event = event_record

exception Deadlock of string

let create ?(seed = 42) () =
  {
    clock = 0.0;
    heap = Heap.create ();
    root_rng = Rng.make seed;
    processed = 0;
    live = 0;
    live_names = [];
    next_pid = 0;
    quiescence = (fun () -> None);
  }

let now t = t.clock

let rng t = t.root_rng

let at t time f =
  if time < t.clock -. 1e-12 then
    invalid_arg
      (Printf.sprintf "Engine.at: time %g is in the past (now %g)" time t.clock);
  let ev = { alive = true; callback = f } in
  Heap.push t.heap (Float.max time t.clock) ev;
  ev

let after t dt f =
  if dt < 0.0 then invalid_arg "Engine.after: negative delay";
  at t (t.clock +. dt) f

let cancel ev =
  if ev.alive then begin
    ev.alive <- false;
    true
  end
  else false

let pending ev = ev.alive

let set_quiescence_check t f = t.quiescence <- f

let events_processed t = t.processed

let live_processes t = t.live

let live_process_names t = List.map snd t.live_names

(* ------------------------------------------------------------------ *)
(* Processes.                                                          *)

type _ Effect.t +=
  | Delay : float -> unit Effect.t
  | Block : (('a -> unit) -> unit) -> 'a Effect.t
  | Self : (t * string) Effect.t

let delay dt = Effect.perform (Delay dt)

let block register = Effect.perform (Block register)

let self_engine () = fst (Effect.perform Self)

let self_name () = snd (Effect.perform Self)

let timestamp () = now (self_engine ())

let spawn t name f =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  t.live <- t.live + 1;
  t.live_names <- (pid, name) :: t.live_names;
  let finish () =
    t.live <- t.live - 1;
    t.live_names <- List.filter (fun (p, _) -> p <> pid) t.live_names
  in
  let open Effect.Deep in
  let body () =
    match_with f ()
      {
        retc = (fun () -> finish ());
        exnc =
          (fun exn ->
            finish ();
            raise exn);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Delay dt ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    ignore (after t dt (fun () -> continue k ())))
            | Block register ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    let fired = ref false in
                    let resume v =
                      if !fired then
                        invalid_arg
                          (Printf.sprintf
                             "Engine: double resume of process %S" name);
                      fired := true;
                      (* Resumption goes through the heap so wakers never
                         run the woken process on their own stack. *)
                      ignore (after t 0.0 (fun () -> continue k v))
                    in
                    register resume)
            | Self -> Some (fun (k : (a, unit) continuation) -> continue k (t, name))
            | _ -> None);
      }
  in
  ignore (after t 0.0 body)

let run ?until ?(max_events = 50_000_000) t =
  let stop = ref false in
  while (not !stop) && not (Heap.is_empty t.heap) do
    match Heap.peek_min t.heap with
    | None -> stop := true
    | Some (time, _) ->
        (match until with
        | Some limit when time > limit ->
            t.clock <- limit;
            stop := true
        | _ ->
            let time, ev = Heap.pop_min t.heap in
            if ev.alive then begin
              ev.alive <- false;
              t.clock <- time;
              t.processed <- t.processed + 1;
              if t.processed > max_events then
                failwith
                  (Printf.sprintf "Engine.run: exceeded %d events at t=%g"
                     max_events t.clock);
              ev.callback ()
            end)
  done;
  if Heap.is_empty t.heap && t.live > 0 then
    match t.quiescence () with
    | Some msg -> raise (Deadlock msg)
    | None -> ()
