lib/desim/rng.mli:
