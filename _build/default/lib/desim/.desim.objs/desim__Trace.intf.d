lib/desim/trace.mli: Format
