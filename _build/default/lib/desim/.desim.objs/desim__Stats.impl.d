lib/desim/stats.ml: Array Float Format Stdlib
