lib/desim/resource.mli: Engine Stats
