lib/desim/engine.mli: Rng
