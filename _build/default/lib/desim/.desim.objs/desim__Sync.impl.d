lib/desim/sync.ml: Engine Option Queue
