lib/desim/engine.ml: Effect Float Heap List Printf Rng
