lib/desim/sync.mli:
