lib/desim/heap.mli:
