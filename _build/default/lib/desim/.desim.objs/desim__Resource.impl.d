lib/desim/resource.ml: Engine Fun Stats Sync
