lib/desim/trace.ml: Format List
