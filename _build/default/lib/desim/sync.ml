module Waitq = struct
  type 'a waiter = { mutable resume : ('a option -> unit) option }

  type 'a t = 'a waiter Queue.t

  let create () = Queue.create ()

  let length q = Queue.length q

  let wait q =
    let result =
      Engine.block (fun resume ->
          Queue.add { resume = Some (fun v -> resume v) } q)
    in
    match result with
    | Some v -> v
    | None -> assert false (* plain [wait] is never cancelled *)

  let wait_cancellable q ~cancel_ref =
    Engine.block (fun resume ->
        let w = { resume = Some resume } in
        Queue.add w q;
        (cancel_ref :=
           fun () ->
             match w.resume with
             | Some r ->
                 w.resume <- None;
                 r None
             | None -> ()))

  (* Waiters whose [resume] is [None] were cancelled; skip them. *)
  let rec wake_one q v =
    match Queue.take_opt q with
    | None -> false
    | Some w -> (
        match w.resume with
        | Some r ->
            w.resume <- None;
            r (Some v);
            true
        | None -> wake_one q v)

  let wake_all q v =
    let n = ref 0 in
    while wake_one q v do
      incr n
    done;
    !n
end

module Mutex = struct
  type t = { mutable held : bool; queue : unit Waitq.t }

  let create () = { held = false; queue = Waitq.create () }

  let lock t =
    if not t.held then t.held <- true
    else Waitq.wait t.queue (* ownership passed directly by [unlock] *)

  let try_lock t =
    if t.held then false
    else begin
      t.held <- true;
      true
    end

  let unlock t =
    if not t.held then invalid_arg "Sync.Mutex.unlock: not locked";
    if not (Waitq.wake_one t.queue ()) then t.held <- false

  let locked t = t.held

  let waiters t = Waitq.length t.queue
end

module Ivar = struct
  type 'a t = { mutable value : 'a option; queue : 'a Waitq.t }

  let create () = { value = None; queue = Waitq.create () }

  let fill t v =
    match t.value with
    | Some _ -> invalid_arg "Sync.Ivar.fill: already filled"
    | None ->
        t.value <- Some v;
        ignore (Waitq.wake_all t.queue v)

  let read t = match t.value with Some v -> v | None -> Waitq.wait t.queue

  let peek t = t.value

  let is_filled t = Option.is_some t.value
end

module Semaphore = struct
  type t = { mutable count : int; queue : unit Waitq.t }

  let create n =
    if n < 0 then invalid_arg "Sync.Semaphore.create: negative";
    { count = n; queue = Waitq.create () }

  let acquire t =
    if t.count > 0 then t.count <- t.count - 1 else Waitq.wait t.queue

  let release t = if not (Waitq.wake_one t.queue ()) then t.count <- t.count + 1

  let available t = t.count
end
