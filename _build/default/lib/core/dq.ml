(* Classic two-list deque: [front] in order, [back] reversed.  All pool
   sizes in the simulator are small, so occasional O(n) rebalances are
   irrelevant. *)

type 'a t = { mutable front : 'a list; mutable back : 'a list; mutable size : int }

let create () = { front = []; back = []; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let push_front t x =
  t.front <- x :: t.front;
  t.size <- t.size + 1

let push_back t x =
  t.back <- x :: t.back;
  t.size <- t.size + 1

let pop_front t =
  match t.front with
  | x :: rest ->
      t.front <- rest;
      t.size <- t.size - 1;
      Some x
  | [] -> (
      match List.rev t.back with
      | [] -> None
      | x :: rest ->
          t.back <- [];
          t.front <- rest;
          t.size <- t.size - 1;
          Some x)

let pop_back t =
  match t.back with
  | x :: rest ->
      t.back <- rest;
      t.size <- t.size - 1;
      Some x
  | [] -> (
      match List.rev t.front with
      | [] -> None
      | x :: rest ->
          t.front <- [];
          t.back <- rest;
          t.size <- t.size - 1;
          Some x)

let to_list t = t.front @ List.rev t.back

let remove t p =
  let rec split acc = function
    | [] -> None
    | x :: rest -> if p x then Some (x, List.rev_append acc rest) else split (x :: acc) rest
  in
  match split [] t.front with
  | Some (x, rest) ->
      t.front <- rest;
      t.size <- t.size - 1;
      Some x
  | None -> (
      match split [] (List.rev t.back) with
      | Some (x, rest) ->
          t.back <- List.rev rest;
          t.size <- t.size - 1;
          Some x
      | None -> None)

let clear t =
  t.front <- [];
  t.back <- [];
  t.size <- 0
