lib/core/types.ml: Config Desim Dq Hashtbl Kernel Oskern Queue
