lib/core/runtime.mli: Config Desim Oskern Types Ult
