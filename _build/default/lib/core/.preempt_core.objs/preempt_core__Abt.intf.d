lib/core/abt.mli: Oskern Runtime Types Ult Usync
