lib/core/dq.ml: List
