lib/core/sched_priority.ml: Array Dq Types
