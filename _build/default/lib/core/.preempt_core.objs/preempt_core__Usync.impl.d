lib/core/usync.ml: List Queue Runtime Types Ult
