lib/core/config.ml:
