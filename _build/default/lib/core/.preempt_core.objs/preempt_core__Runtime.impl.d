lib/core/runtime.ml: Array Buffer Config Cpuset Desim Dq Effect Engine Float Hashtbl Kernel List Machine Option Oskern Printf Queue Rng Sched_ws Stats Stdlib Trace Types Ult
