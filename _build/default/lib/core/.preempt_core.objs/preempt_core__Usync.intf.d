lib/core/usync.mli: Runtime Ult
