lib/core/sched_packing.ml: Array Dq Hashtbl Types
