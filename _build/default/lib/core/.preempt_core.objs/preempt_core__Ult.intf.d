lib/core/ult.mli: Effect Types
