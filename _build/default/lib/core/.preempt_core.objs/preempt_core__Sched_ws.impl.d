lib/core/sched_ws.ml: Array Desim Dq Types
