lib/core/ult.ml: Effect Types
