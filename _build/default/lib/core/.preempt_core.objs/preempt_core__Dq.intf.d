lib/core/dq.mli:
