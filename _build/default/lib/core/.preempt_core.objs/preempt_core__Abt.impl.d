lib/core/abt.ml: Config Runtime Types Ult Usync
