(** User-level synchronization for ULTs.

    All blocking here is {e user-level}: a blocked thread leaves its
    worker free to run other threads (the lightweight-synchronization
    advantage of M:N threads the paper leans on).  Busy-wait variants —
    the kind that deadlock nonpreemptive runtimes — live with the MKL
    model in the [linalg] library. *)

(** [join rt u] blocks the calling thread until [u] finishes. *)
val join : Runtime.t -> Ult.t -> unit

module Mutex : sig
  type t

  val create : Runtime.t -> t

  (** FIFO-fair; blocks the thread, not the worker. *)
  val lock : t -> unit

  val unlock : t -> unit

  val try_lock : t -> bool

  val locked : t -> bool
end

module Barrier : sig
  type t

  (** [create rt n] makes a barrier for [n] parties. *)
  val create : Runtime.t -> int -> t

  (** Blocks until [n] threads arrive; reusable across phases. *)
  val wait : t -> unit

  (** Number of threads currently waiting. *)
  val waiting : t -> int
end

module Ivar : sig
  (** Write-once value readable from ULTs. *)
  type 'a t

  val create : Runtime.t -> 'a t

  (** [fill t v] may be called from any context (ULT, event, external).
      @raise Invalid_argument if filled twice. *)
  val fill : 'a t -> 'a -> unit

  (** ULT context only; blocks until filled. *)
  val read : 'a t -> 'a

  val peek : 'a t -> 'a option
end

module Channel : sig
  (** Unbounded FIFO channel between ULTs. *)
  type 'a t

  val create : Runtime.t -> 'a t

  (** Never blocks; callable from any context. *)
  val send : 'a t -> 'a -> unit

  (** ULT context; blocks while empty. *)
  val recv : 'a t -> 'a

  val length : 'a t -> int
end
