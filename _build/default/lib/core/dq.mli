(** Double-ended queue used as a thread pool.

    Supports the access patterns of the paper's schedulers: FIFO
    (push_back/pop_front), LIFO (push_back/pop_back) and work stealing
    (owner pops front, thieves pop back). *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push_front : 'a t -> 'a -> unit

val push_back : 'a t -> 'a -> unit

val pop_front : 'a t -> 'a option

val pop_back : 'a t -> 'a option

(** [remove t p] removes the first element satisfying [p]; returns it. *)
val remove : 'a t -> ('a -> bool) -> 'a option

val to_list : 'a t -> 'a list

val clear : 'a t -> unit
