(** A real, executable M:N fiber runtime on OCaml 5 effects + domains —
    the native-OCaml counterpart of the paper's M:N threading model.

    M fibers are multiplexed over N domains ("workers") with work
    stealing.  Scheduling is cooperative ([yield], [await]); preemption
    is {e safe-point based}: a ticker marks workers for preemption every
    [preempt_interval], and a fiber crossing a {!check} point (or an
    explicit {!yield}) is descheduled.  This is the GHC-style variant
    the paper's §5 discusses — portable OCaml cannot context-switch
    inside an asynchronous signal handler, so true signal-yield
    semantics are exercised in the simulator instead (see DESIGN.md). *)

type pool

type 'a promise

(** [create ~domains ()] — [domains] defaults to
    [Domain.recommended_domain_count () - 1], at least 1.
    [preempt_interval] (seconds) arms the preemption ticker; [None]
    (default) leaves the runtime purely cooperative. *)
val create : ?domains:int -> ?preempt_interval:float -> unit -> pool

val domains : pool -> int

(** [run pool main] executes [main ()] as a fiber, with the calling
    thread participating as a worker, and returns its result.  Re-raises
    any exception [main] threw.  Not reentrant from inside a fiber. *)
val run : pool -> (unit -> 'a) -> 'a

(** Stop the worker domains and join them.  The pool cannot be reused. *)
val shutdown : pool -> unit

(** {1 Fiber operations — valid only inside fibers} *)

(** Fork a child fiber. *)
val spawn : (unit -> 'a) -> 'a promise

(** Wait for a promise; re-raises if the child failed. *)
val await : 'a promise -> 'a

val yield : unit -> unit

(** [suspend_or decide] — atomic conditional suspension, the building
    block of {!Fsync}.  [decide wake] runs on the current worker; if it
    returns [`Suspended] it must have arranged for [wake] to be called
    exactly once later (from any fiber), which reschedules this fiber;
    if it returns [`Continue] the fiber proceeds and [wake] must never
    be called. *)
val suspend_or : ((unit -> unit) -> [ `Continue | `Suspended ]) -> unit

(** Preemption safe point: yields iff the ticker has marked this worker.
    Free when no preemption is requested. *)
val check : unit -> unit

(** True once the promise is fulfilled (never blocks). *)
val is_resolved : 'a promise -> bool

(** [parallel_for ~chunk lo hi f] runs [f i] for [lo <= i < hi] across
    fibers of [chunk] iterations each ([chunk] defaults to a heuristic),
    checking the preemption flag between iterations. *)
val parallel_for : ?chunk:int -> int -> int -> (int -> unit) -> unit

(** Number of preemptions taken (ticker-initiated deschedules). *)
val preemptions : pool -> int

(** [parallel_map f xs] — apply [f] to every element in parallel fibers
    (one per element; use {!parallel_for} + arrays for fine-grained
    ranges). Order preserved. *)
val parallel_map : ('a -> 'b) -> 'a list -> 'b list
