(** Fiber-level synchronization for the real runtime.

    All blocking here suspends the {e fiber}, not the worker domain —
    the lightweight-synchronization property of M:N threading.  All
    primitives are safe to use from fibers running on any worker. *)

module Mutex : sig
  type t

  val create : unit -> t

  (** Blocks the calling fiber while held.  Not reentrant. *)
  val lock : t -> unit

  val try_lock : t -> bool

  val unlock : t -> unit

  (** [with_lock t f] = lock; run [f]; unlock (also on exception). *)
  val with_lock : t -> (unit -> 'a) -> 'a
end

module Semaphore : sig
  type t

  val create : int -> t

  val acquire : t -> unit

  val release : t -> unit
end

module Channel : sig
  (** Unbounded multi-producer multi-consumer FIFO channel. *)
  type 'a t

  val create : unit -> 'a t

  (** Never blocks. *)
  val send : 'a t -> 'a -> unit

  (** Blocks the fiber while empty. *)
  val recv : 'a t -> 'a

  val try_recv : 'a t -> 'a option

  val length : 'a t -> int
end

module Barrier : sig
  type t

  (** [create n] — reusable barrier for [n] fibers. *)
  val create : int -> t

  val wait : t -> unit
end
