type 'a t = { lock : Mutex.t; mutable front : 'a list; mutable back : 'a list; mutable size : int }

let create () = { lock = Mutex.create (); front = []; back = []; size = 0 }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let push t x =
  with_lock t (fun () ->
      t.back <- x :: t.back;
      t.size <- t.size + 1)

let push_front t x =
  with_lock t (fun () ->
      t.front <- x :: t.front;
      t.size <- t.size + 1)

let pop t =
  with_lock t (fun () ->
      match t.back with
      | x :: rest ->
          t.back <- rest;
          t.size <- t.size - 1;
          Some x
      | [] -> (
          match List.rev t.front with
          | [] -> None
          | x :: rest ->
              t.front <- [];
              t.back <- rest;
              t.size <- t.size - 1;
              Some x))

let steal t =
  with_lock t (fun () ->
      match t.front with
      | x :: rest ->
          t.front <- rest;
          t.size <- t.size - 1;
          Some x
      | [] -> (
          match List.rev t.back with
          | [] -> None
          | x :: rest ->
              t.front <- rest;
              t.back <- [];
              t.size <- t.size - 1;
              Some x))

let length t = t.size
