lib/fiber/sched.mli:
