lib/fiber/sched.ml: Array Atomic Condition Deque Domain Effect List Mutex Stdlib Thread
