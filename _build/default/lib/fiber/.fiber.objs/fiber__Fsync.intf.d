lib/fiber/fsync.mli:
