lib/fiber/fiber.ml: Deque Fsync Sched
