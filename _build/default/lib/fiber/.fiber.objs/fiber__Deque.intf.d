lib/fiber/deque.mli:
