lib/fiber/deque.ml: Fun List Mutex
