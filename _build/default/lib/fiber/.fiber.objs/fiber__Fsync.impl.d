lib/fiber/fsync.ml: Fun List Queue Sched Stdlib
