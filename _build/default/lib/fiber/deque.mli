(** Mutex-protected work-stealing deque.

    The owner pushes and pops at the back (LIFO, cache-friendly);
    thieves steal from the front (FIFO, oldest work first).  A plain
    lock keeps the implementation obviously correct; the runtime it
    serves demonstrates scheduling semantics, not lock-free peak
    throughput. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit

(** Push at the thief end: the owner reaches it after everything pushed
    with {!push} (used for yields, so a yielding fiber goes behind all
    other local work). *)
val push_front : 'a t -> 'a -> unit

(** Owner end. *)
val pop : 'a t -> 'a option

(** Thief end. *)
val steal : 'a t -> 'a option

val length : 'a t -> int
