type task = unit -> unit

type worker = {
  wid : int;
  deque : task Deque.t;
  mutable preempt : bool;  (* set by the ticker, cleared at safe points *)
  mutable rng_state : int;
}

type pool = {
  workers : worker array;
  mutable doms : unit Domain.t list;
  lock : Mutex.t;  (* protects epoch/shutdown + condvar *)
  cond : Condition.t;
  mutable epoch : int;  (* bumped on every push: lost-wakeup guard *)
  mutable shutdown : bool;
  mutable active_runs : int;
  preempt_interval : float option;
  mutable ticker : Thread.t option;
  preempt_count : int Atomic.t;
}

type 'a state = Pending of (unit -> unit) list | Resolved of 'a | Failed of exn

type 'a promise = { mutex : Mutex.t; mutable state : 'a state }

type _ Effect.t +=
  | Yield : unit Effect.t
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t
  | Suspend_or :
      ((unit -> unit) -> [ `Continue | `Suspended ])
      -> unit Effect.t

(* Which worker the current thread is. *)
let current_worker : (pool * worker) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let self () =
  match Domain.DLS.get current_worker with
  | Some pw -> pw
  | None -> failwith "Fiber: not inside a fiber runtime worker"

let wake_all pool =
  Mutex.lock pool.lock;
  pool.epoch <- pool.epoch + 1;
  Condition.broadcast pool.cond;
  Mutex.unlock pool.lock

let push_task pool w task =
  Deque.push w.deque task;
  wake_all pool

(* A yielded fiber goes to the thief end: the owner (who pops LIFO)
   runs every other local task first, so yield actually gives way. *)
let push_task_yield pool w task =
  Deque.push_front w.deque task;
  wake_all pool

(* Cheap xorshift for victim selection. *)
let next_rand w =
  let x = w.rng_state in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  w.rng_state <- x land max_int;
  w.rng_state

let find_task pool w =
  match Deque.pop w.deque with
  | Some t -> Some t
  | None ->
      let n = Array.length pool.workers in
      let rec probe k =
        if k = 0 then None
        else
          let v = next_rand w mod n in
          if v = w.wid then probe (k - 1)
          else
            match Deque.steal pool.workers.(v).deque with
            | Some t -> Some t
            | None -> probe (k - 1)
      in
      (match probe (2 * n) with
      | Some t -> Some t
      | None ->
          (* Deterministic sweep so no task is missed. *)
          let rec sweep i =
            if i = n then None
            else if i = w.wid then sweep (i + 1)
            else
              match Deque.steal pool.workers.(i).deque with
              | Some t -> Some t
              | None -> sweep (i + 1)
          in
          sweep 0)

let handler pool =
  let open Effect.Deep in
  {
    retc = (fun () -> ());
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Yield ->
            Some
              (fun (k : (a, unit) continuation) ->
                let _, w = self () in
                push_task_yield pool w (fun () -> continue k ()))
        | Suspend register ->
            Some
              (fun (k : (a, unit) continuation) ->
                register (fun () ->
                    let _, w = self () in
                    push_task pool w (fun () -> continue k ())))
        | Suspend_or decide ->
            Some
              (fun (k : (a, unit) continuation) ->
                let wake () =
                  let _, w = self () in
                  push_task pool w (fun () -> continue k ())
                in
                match decide wake with
                | `Continue -> continue k ()
                | `Suspended -> ())
        | _ -> None);
  }

let make_fiber pool body = fun () -> Effect.Deep.match_with body () (handler pool)

(* ------------------------------------------------------------------ *)
(* Promises. *)

let promise () = { mutex = Mutex.create (); state = Pending [] }

let resolve p outcome =
  Mutex.lock p.mutex;
  let waiters = match p.state with Pending ws -> ws | Resolved _ | Failed _ -> [] in
  p.state <- outcome;
  Mutex.unlock p.mutex;
  List.iter (fun wake -> wake ()) waiters

let is_resolved p =
  Mutex.lock p.mutex;
  let r = match p.state with Pending _ -> false | Resolved _ | Failed _ -> true in
  Mutex.unlock p.mutex;
  r

let spawn body =
  let pool, w = self () in
  let p = promise () in
  let fiber =
    make_fiber pool (fun () ->
        match body () with
        | v -> resolve p (Resolved v)
        | exception e -> resolve p (Failed e))
  in
  push_task pool w fiber;
  p

let await p =
  let rec value () =
    match p.state with
    | Resolved v -> v
    | Failed e -> raise e
    | Pending _ ->
        Effect.perform
          (Suspend
             (fun wake ->
               Mutex.lock p.mutex;
               match p.state with
               | Pending ws ->
                   p.state <- Pending (wake :: ws);
                   Mutex.unlock p.mutex
               | Resolved _ | Failed _ ->
                   Mutex.unlock p.mutex;
                   wake ()));
        value ()
  in
  value ()

let yield () = Effect.perform Yield

let suspend_or decide = Effect.perform (Suspend_or decide)

let check () =
  let pool, w = self () in
  if w.preempt then begin
    w.preempt <- false;
    Atomic.incr pool.preempt_count;
    yield ()
  end

(* ------------------------------------------------------------------ *)
(* Workers. *)

let worker_loop pool w ~until =
  Domain.DLS.set current_worker (Some (pool, w));
  let rec loop () =
    if (not (until ())) && not pool.shutdown then begin
      let epoch_before =
        Mutex.lock pool.lock;
        let e = pool.epoch in
        Mutex.unlock pool.lock;
        e
      in
      (match find_task pool w with
      | Some task -> task ()
      | None ->
          (* Nothing found: sleep unless work arrived since we looked. *)
          Mutex.lock pool.lock;
          if pool.epoch = epoch_before && (not (until ())) && not pool.shutdown then
            Condition.wait pool.cond pool.lock;
          Mutex.unlock pool.lock);
      loop ()
    end
  in
  loop ();
  Domain.DLS.set current_worker None

let domain_main pool w = worker_loop pool w ~until:(fun () -> false)

let ticker_loop pool interval =
  while not pool.shutdown do
    Thread.delay interval;
    Array.iter (fun w -> w.preempt <- true) pool.workers
  done

let create ?domains ?preempt_interval () =
  let n =
    match domains with
    | Some d when d >= 1 -> d
    | Some _ -> invalid_arg "Fiber.create: domains < 1"
    | None -> Stdlib.max 1 (Domain.recommended_domain_count () - 1)
  in
  let workers =
    Array.init n (fun wid ->
        { wid; deque = Deque.create (); preempt = false; rng_state = (wid * 7919) + 13 })
  in
  let pool =
    {
      workers;
      doms = [];
      lock = Mutex.create ();
      cond = Condition.create ();
      epoch = 0;
      shutdown = false;
      active_runs = 0;
      preempt_interval;
      ticker = None;
      preempt_count = Atomic.make 0;
    }
  in
  (* Worker 0 is the caller inside [run]; spawn domains for the rest. *)
  pool.doms <-
    List.init (n - 1) (fun i -> Domain.spawn (fun () -> domain_main pool workers.(i + 1)));
  (match preempt_interval with
  | Some dt when dt > 0.0 -> pool.ticker <- Some (Thread.create (fun () -> ticker_loop pool dt) ())
  | Some _ -> invalid_arg "Fiber.create: preempt_interval <= 0"
  | None -> ());
  pool

let domains pool = Array.length pool.workers

let preemptions pool = Atomic.get pool.preempt_count

let run pool main =
  if pool.shutdown then invalid_arg "Fiber.run: pool is shut down";
  (match Domain.DLS.get current_worker with
  | Some _ -> invalid_arg "Fiber.run: reentrant call from inside a fiber"
  | None -> ());
  let result = ref None in
  let p = promise () in
  let fiber =
    make_fiber pool (fun () ->
        (match main () with
        | v -> result := Some (Ok v)
        | exception e -> result := Some (Error e));
        resolve p (Resolved ());
        (* Worker 0 may be asleep with nothing left to do. *)
        wake_all pool)
  in
  let w0 = pool.workers.(0) in
  Deque.push w0.deque fiber;
  wake_all pool;
  worker_loop pool w0 ~until:(fun () -> is_resolved p);
  (* Drain any leftover ready work this run created?  Fibers spawned but
     not awaited keep running on the other domains; that is by design. *)
  match !result with
  | Some (Ok v) -> v
  | Some (Error e) -> raise e
  | None -> failwith "Fiber.run: main fiber did not complete"

let shutdown pool =
  pool.shutdown <- true;
  wake_all pool;
  List.iter Domain.join pool.doms;
  (match pool.ticker with Some t -> Thread.join t | None -> ());
  pool.doms <- []

let parallel_map f xs =
  let ps = List.map (fun x -> spawn (fun () -> f x)) xs in
  List.map await ps

let parallel_for ?chunk lo hi f =
  let n = hi - lo in
  if n > 0 then begin
    let pool, _ = self () in
    let chunk =
      match chunk with
      | Some c when c > 0 -> c
      | Some _ -> invalid_arg "Fiber.parallel_for: chunk <= 0"
      | None -> Stdlib.max 1 (n / (8 * Array.length pool.workers))
    in
    let rec spawn_chunks acc i =
      if i >= hi then acc
      else
        let j = Stdlib.min hi (i + chunk) in
        let p =
          spawn (fun () ->
              for x = i to j - 1 do
                f x;
                check ()
              done)
        in
        spawn_chunks (p :: acc) j
    in
    let ps = spawn_chunks [] lo in
    List.iter (fun p -> await p) ps
  end
