(* Library facade: the runtime API plus its companion modules. *)
include Sched
module Deque = Deque
module Fsync = Fsync
