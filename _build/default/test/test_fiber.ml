(* Tests for the real (executable, multicore) fiber runtime. *)

let with_pool ?(domains = 2) ?preempt_interval f =
  let pool = Fiber.create ~domains ?preempt_interval () in
  Fun.protect ~finally:(fun () -> Fiber.shutdown pool) (fun () -> f pool)

let test_run_returns () =
  with_pool (fun pool ->
      Alcotest.(check int) "result" 42 (Fiber.run pool (fun () -> 42)))

let test_run_propagates_exception () =
  with_pool (fun pool ->
      Alcotest.check_raises "exn" Exit (fun () ->
          Fiber.run pool (fun () -> raise Exit)))

let test_spawn_await () =
  with_pool (fun pool ->
      let r =
        Fiber.run pool (fun () ->
            let p = Fiber.spawn (fun () -> 7 * 6) in
            Fiber.await p)
      in
      Alcotest.(check int) "child result" 42 r)

let test_await_failed_child () =
  with_pool (fun pool ->
      Alcotest.check_raises "child exn" Not_found (fun () ->
          Fiber.run pool (fun () -> Fiber.await (Fiber.spawn (fun () -> raise Not_found)))))

let test_many_fibers () =
  with_pool ~domains:3 (fun pool ->
      let total =
        Fiber.run pool (fun () ->
            let ps = List.init 200 (fun i -> Fiber.spawn (fun () -> i)) in
            List.fold_left (fun acc p -> acc + Fiber.await p) 0 ps)
      in
      Alcotest.(check int) "sum 0..199" (199 * 200 / 2) total)

let test_nested_spawn () =
  with_pool (fun pool ->
      let r =
        Fiber.run pool (fun () ->
            let p =
              Fiber.spawn (fun () ->
                  let q = Fiber.spawn (fun () -> 10) in
                  Fiber.await q + 1)
            in
            Fiber.await p + 1)
      in
      Alcotest.(check int) "nested" 12 r)

let test_yield_progress () =
  with_pool ~domains:1 (fun pool ->
      (* Single worker: a yielding producer and a consumer must interleave. *)
      let r =
        Fiber.run pool (fun () ->
            let flag = Atomic.make false in
            let setter = Fiber.spawn (fun () -> Atomic.set flag true) in
            (* Yield until the other fiber has run. *)
            while not (Atomic.get flag) do
              Fiber.yield ()
            done;
            Fiber.await setter;
            true)
      in
      Alcotest.(check bool) "interleaved" true r)

let test_parallel_for_covers () =
  with_pool ~domains:3 (fun pool ->
      let hits = Array.make 1000 0 in
      Fiber.run pool (fun () ->
          Fiber.parallel_for 0 1000 (fun i -> hits.(i) <- hits.(i) + 1));
      Array.iteri (fun i h -> if h <> 1 then Alcotest.failf "index %d hit %d" i h) hits)

let test_parallel_speedup_runs () =
  (* Not a timing assertion (CI noise), just that parallel fib works. *)
  with_pool ~domains:3 (fun pool ->
      let rec fib n =
        if n < 12 then seq_fib n
        else
          let a = Fiber.spawn (fun () -> fib (n - 1)) in
          let b = fib (n - 2) in
          Fiber.await a + b
      and seq_fib n = if n < 2 then n else seq_fib (n - 1) + seq_fib (n - 2) in
      let r = Fiber.run pool (fun () -> fib 20) in
      Alcotest.(check int) "fib 20" 6765 r)

let test_preemption_ticker () =
  with_pool ~domains:1 ~preempt_interval:0.005 (fun pool ->
      (* Two greedy fibers calling [check] in their loops must interleave
         even on a single worker. *)
      let r =
        Fiber.run pool (fun () ->
            let progress = Atomic.make 0 in
            let greedy _i () =
              let t0 = Unix.gettimeofday () in
              while Unix.gettimeofday () -. t0 < 0.1 do
                Atomic.incr progress;
                Fiber.check ()
              done
            in
            let a = Fiber.spawn (greedy 0) in
            let b = Fiber.spawn (greedy 1) in
            Fiber.await a;
            Fiber.await b;
            true)
      in
      Alcotest.(check bool) "completed" true r;
      Alcotest.(check bool) "preemptions happened" true (Fiber.preemptions pool > 0))

let test_pool_reuse_across_runs () =
  with_pool (fun pool ->
      Alcotest.(check int) "first" 1 (Fiber.run pool (fun () -> 1));
      Alcotest.(check int) "second" 2 (Fiber.run pool (fun () -> 2)))

let test_shutdown_rejects_run () =
  let pool = Fiber.create ~domains:1 () in
  Fiber.shutdown pool;
  Alcotest.check_raises "rejected" (Invalid_argument "Fiber.run: pool is shut down")
    (fun () -> ignore (Fiber.run pool (fun () -> ())))

let test_parallel_map () =
  with_pool ~domains:3 (fun pool ->
      let r = Fiber.run pool (fun () -> Fiber.parallel_map (fun x -> x * x) [ 1; 2; 3; 4 ]) in
      Alcotest.(check (list int)) "squares in order" [ 1; 4; 9; 16 ] r)

let test_deque_basics () =
  let d = Fiber.Deque.create () in
  Fiber.Deque.push d 1;
  Fiber.Deque.push d 2;
  Fiber.Deque.push d 3;
  Alcotest.(check (option int)) "owner LIFO" (Some 3) (Fiber.Deque.pop d);
  Alcotest.(check (option int)) "thief FIFO" (Some 1) (Fiber.Deque.steal d);
  Alcotest.(check int) "len" 1 (Fiber.Deque.length d)

let suite =
  [
    Alcotest.test_case "run returns" `Quick test_run_returns;
    Alcotest.test_case "run propagates exception" `Quick test_run_propagates_exception;
    Alcotest.test_case "spawn/await" `Quick test_spawn_await;
    Alcotest.test_case "await failed child" `Quick test_await_failed_child;
    Alcotest.test_case "many fibers" `Quick test_many_fibers;
    Alcotest.test_case "nested spawn" `Quick test_nested_spawn;
    Alcotest.test_case "yield progress (1 worker)" `Quick test_yield_progress;
    Alcotest.test_case "parallel_for covers range" `Quick test_parallel_for_covers;
    Alcotest.test_case "parallel fib" `Quick test_parallel_speedup_runs;
    Alcotest.test_case "preemption ticker" `Quick test_preemption_ticker;
    Alcotest.test_case "pool reuse" `Quick test_pool_reuse_across_runs;
    Alcotest.test_case "shutdown rejects run" `Quick test_shutdown_rejects_run;
    Alcotest.test_case "parallel_map" `Quick test_parallel_map;
    Alcotest.test_case "deque basics" `Quick test_deque_basics;
  ]
