(* End-to-end sanity of the three simulated workload drivers at small
   scale.  The full paper-scale sweeps live in the bench harness. *)

open Oskern

let small = Machine.with_cores Machine.skylake 8

let bolt kind mkl timer interval =
  Linalg.Cholesky_run.Bolt { kind; mkl; timer; interval }

let npre = Preempt_core.Types.Nonpreemptive

let ksw = Preempt_core.Types.Klt_switching

let aligned = Preempt_core.Config.Per_worker_aligned

let no_timer = Preempt_core.Config.No_timer

let run_chol cfg =
  Linalg.Cholesky_run.run ~machine:small ~outer:3 ~inner:3 ~tiles:5 ~tile_dim:400 cfg

let test_chol_bolt_completes () =
  let r = run_chol (bolt npre Linalg.Blas_model.Yield_wait no_timer 1e-3) in
  Alcotest.(check bool) "no deadlock" false r.Linalg.Cholesky_run.deadlocked;
  Alcotest.(check int) "task count" 35 r.tasks;
  Alcotest.(check bool) "gflops positive" true (r.gflops > 0.0)

let test_chol_preemptive_with_stock_mkl () =
  let r = run_chol (bolt ksw Linalg.Blas_model.Busy_wait aligned 1e-3) in
  Alcotest.(check bool) "no deadlock" false r.Linalg.Cholesky_run.deadlocked;
  Alcotest.(check bool) "preemptions happened" true (r.preemptions > 0)

let test_chol_iomp_completes () =
  let r = run_chol (Linalg.Cholesky_run.Iomp { flat = false }) in
  Alcotest.(check bool) "no deadlock" false r.Linalg.Cholesky_run.deadlocked;
  let rf = run_chol (Linalg.Cholesky_run.Iomp { flat = true }) in
  Alcotest.(check bool) "flat no deadlock" false rf.Linalg.Cholesky_run.deadlocked

let test_chol_nonpreemptive_busywait_deadlocks () =
  (* Heavy oversubscription (4x4 executors+teams on 4 cores) with stock
     busy-wait MKL on nonpreemptive threads: the paper's §4.1 failure. *)
  let machine = Machine.with_cores Machine.skylake 4 in
  let r =
    Linalg.Cholesky_run.run ~machine ~outer:4 ~inner:4 ~tiles:6 ~tile_dim:300
      (bolt npre Linalg.Blas_model.Busy_wait no_timer 1e-3)
  in
  Alcotest.(check bool) "deadlocked" true r.Linalg.Cholesky_run.deadlocked;
  (* And the same setup with preemption survives. *)
  let r2 =
    Linalg.Cholesky_run.run ~machine ~outer:4 ~inner:4 ~tiles:6 ~tile_dim:300
      (bolt ksw Linalg.Blas_model.Busy_wait aligned 1e-3)
  in
  Alcotest.(check bool) "preemption rescues" false r2.Linalg.Cholesky_run.deadlocked

let phases = Multigrid.Fmg_profile.phases ~levels:5 ~total_core_seconds:0.8

let test_packing_baseline_scales () =
  let t8 = Multigrid.Packing_run.baseline ~machine:small ~n:8 ~phases () in
  let t4 = Multigrid.Packing_run.baseline ~machine:small ~n:4 ~phases () in
  (* Half the cores: about twice the time. *)
  let ratio = t4 /. t8 in
  if ratio < 1.6 || ratio > 2.4 then Alcotest.failf "scaling ratio %f" ratio

let test_packing_preemptive_near_ideal () =
  let n_active = 5 in
  let r =
    Multigrid.Packing_run.run ~machine:small ~n_threads:8 ~n_active ~phases
      (Multigrid.Packing_run.Bolt_packing
         { kind = ksw; timer = aligned; interval = 1e-3 })
  in
  let base = Multigrid.Packing_run.baseline ~machine:small ~n:n_active ~phases () in
  let overhead = (r.Multigrid.Packing_run.time /. base) -. 1.0 in
  if overhead > 0.25 then Alcotest.failf "preemptive packing overhead %.1f%%" (overhead *. 100.0);
  Alcotest.(check bool) "preempted" true (r.preemptions > 0)

let test_packing_nonpreemptive_divisor_effect () =
  (* 8 threads: nonpreemptive packing is fine at n=4 (divisor) but pays
     ~ceil(8/5)*5/8 - 1 = 25% at n=5. *)
  let run n =
    let r =
      Multigrid.Packing_run.run ~machine:small ~n_threads:8 ~n_active:n ~phases
        (Multigrid.Packing_run.Bolt_packing
           { kind = npre; timer = no_timer; interval = 1e-3 })
    in
    let base = Multigrid.Packing_run.baseline ~machine:small ~n ~phases () in
    (r.Multigrid.Packing_run.time /. base) -. 1.0
  in
  let at4 = run 4 and at5 = run 5 in
  if at4 > 0.10 then Alcotest.failf "divisor case overhead %.1f%%" (at4 *. 100.0);
  if at5 < 0.10 then Alcotest.failf "non-divisor case too good: %.1f%%" (at5 *. 100.0)

let test_packing_iomp_runs () =
  let r =
    Multigrid.Packing_run.run ~machine:small ~n_threads:8 ~n_active:5 ~phases
      Multigrid.Packing_run.Iomp_taskset
  in
  Alcotest.(check bool) "finished" true (r.Multigrid.Packing_run.time > 0.0)

(* Paper-scale geometry (56 workers) at a size where analysis fits the
   gap+straggler capacity at interval 2 — the regime Fig. 9b describes. *)
let insitu cfg interval =
  Moldyn.Insitu_run.run ~machine:Machine.skylake ~atoms:7e6 ~steps:6
    ~analysis_interval:interval cfg

let test_insitu_baseline_and_overhead () =
  let base = insitu { Moldyn.Insitu_run.rk = Argobots; priority = true } None in
  let with_analysis = insitu { Moldyn.Insitu_run.rk = Argobots; priority = true } (Some 2) in
  Alcotest.(check bool) "baseline positive" true (base.Moldyn.Insitu_run.time > 0.0);
  Alcotest.(check bool) "analysis costs something" true
    (with_analysis.Moldyn.Insitu_run.time >= base.Moldyn.Insitu_run.time)

let test_insitu_priority_helps () =
  (* Fig. 9b regime: prioritization clearly helps Pthreads (CFS slices
     analysis against the simulation otherwise); Argobots w/ priority
     beats both Pthreads configs and stays within noise of Argobots
     w/o (whose FIFO pools already approximate priority when the
     analysis fits the gaps). *)
  let g rk priority = insitu { Moldyn.Insitu_run.rk; priority } (Some 2) in
  let anp = g Moldyn.Insitu_run.Argobots false in
  let ap = g Moldyn.Insitu_run.Argobots true in
  let pnp = g Moldyn.Insitu_run.Pthreads false in
  let pp = g Moldyn.Insitu_run.Pthreads true in
  if pp.Moldyn.Insitu_run.time > pnp.Moldyn.Insitu_run.time *. 1.005 then
    Alcotest.failf "pthreads priority hurt: %f vs %f" pp.time pnp.time;
  if ap.Moldyn.Insitu_run.time > anp.Moldyn.Insitu_run.time *. 1.03 then
    Alcotest.failf "argobots priority cost too high: %f vs %f" ap.time anp.time;
  if ap.time > pnp.time then
    Alcotest.failf "argobots w/ priority not better than pthreads w/o: %f vs %f" ap.time
      pnp.time

let test_insitu_pthreads_runs () =
  let r = insitu { Moldyn.Insitu_run.rk = Pthreads; priority = true } (Some 2) in
  Alcotest.(check bool) "finished" true (r.Moldyn.Insitu_run.time > 0.0);
  Alcotest.(check bool) "idle fraction sane" true
    (r.idle_frac >= 0.0 && r.idle_frac <= 1.0)

let suite =
  [
    Alcotest.test_case "cholesky: BOLT completes" `Quick test_chol_bolt_completes;
    Alcotest.test_case "cholesky: preemptive + stock MKL" `Quick test_chol_preemptive_with_stock_mkl;
    Alcotest.test_case "cholesky: IOMP completes" `Quick test_chol_iomp_completes;
    Alcotest.test_case "cholesky: nonpreemptive busy-wait deadlocks" `Slow
      test_chol_nonpreemptive_busywait_deadlocks;
    Alcotest.test_case "packing: baseline scales" `Quick test_packing_baseline_scales;
    Alcotest.test_case "packing: preemptive near ideal" `Quick test_packing_preemptive_near_ideal;
    Alcotest.test_case "packing: nonpreemptive divisor effect" `Quick
      test_packing_nonpreemptive_divisor_effect;
    Alcotest.test_case "packing: IOMP runs" `Quick test_packing_iomp_runs;
    Alcotest.test_case "insitu: baseline and overhead" `Quick test_insitu_baseline_and_overhead;
    Alcotest.test_case "insitu: priority helps at interval 2" `Slow test_insitu_priority_helps;
    Alcotest.test_case "insitu: pthreads runs" `Quick test_insitu_pthreads_runs;
  ]
