open Multigrid

let pi = 4.0 *. atan 1.0

(* -lap u = f with u = sin(pi x) sin(pi y) sin(pi z), f = 3 pi^2 u. *)
let u_exact x y z = sin (pi *. x) *. sin (pi *. y) *. sin (pi *. z)

let f_rhs x y z = 3.0 *. pi *. pi *. u_exact x y z

let setup n levels =
  let h = Grid3d.make ~levels ~n_finest:n in
  Grid3d.set_problem h f_rhs;
  h

let test_smoother_reduces () =
  let h = setup 15 1 in
  let lvl = Grid3d.finest h in
  let r0 = Grid3d.residual lvl in
  Grid3d.smooth lvl ~sweeps:30;
  let r1 = Grid3d.residual lvl in
  if r1 >= r0 then Alcotest.failf "no smoothing: %g -> %g" r0 r1

let test_v_cycle_contracts () =
  let h = setup 31 4 in
  let r0 = Grid3d.residual (Grid3d.finest h) in
  Grid3d.v_cycle h ~sweeps:2;
  let r1 = Grid3d.residual (Grid3d.finest h) in
  Grid3d.v_cycle h ~sweeps:2;
  let r2 = Grid3d.residual (Grid3d.finest h) in
  (* Weighted-Jacobi V(2,2) in 3D contracts by ~0.3-0.4 per cycle. *)
  if r1 > 0.45 *. r0 then Alcotest.failf "first cycle weak: %g -> %g" r0 r1;
  if r2 > 0.45 *. r1 then Alcotest.failf "second cycle weak: %g -> %g" r1 r2

let test_solve_converges () =
  let h = setup 31 4 in
  let cycles, r = Grid3d.solve h ~sweeps:2 ~tol:1e-6 ~max_cycles:30 in
  if r > 1e-6 then Alcotest.failf "did not converge: %g after %d cycles" r cycles;
  if cycles > 15 then Alcotest.failf "too many cycles: %d" cycles

let test_solution_accuracy () =
  let h = setup 31 4 in
  ignore (Grid3d.solve h ~sweeps:2 ~tol:1e-8 ~max_cycles:40);
  (* O(h^2) discretization: h = 1/32 -> error ~ 1e-3. *)
  let e = Grid3d.error_vs h u_exact in
  if e > 5e-3 then Alcotest.failf "solution error %g" e

let test_multigrid_beats_smoothing () =
  (* Same total work comparison is tricky; assert V-cycles reach in a few
     cycles what pure smoothing cannot in many sweeps. *)
  let hv = setup 31 4 in
  ignore (Grid3d.solve hv ~sweeps:2 ~tol:0.0 ~max_cycles:6 : int * float);
  let rv = Grid3d.residual (Grid3d.finest hv) in
  let hs = setup 31 1 in
  Grid3d.smooth (Grid3d.finest hs) ~sweeps:100;
  let rs = Grid3d.residual (Grid3d.finest hs) in
  if rv >= rs then Alcotest.failf "V-cycles (%g) no better than smoothing (%g)" rv rs

let test_invalid_sizes () =
  Alcotest.check_raises "even n" (Invalid_argument "Grid3d.make: n_finest must be 2^k - 1")
    (fun () -> ignore (Grid3d.make ~levels:2 ~n_finest:16));
  Alcotest.check_raises "too many levels" (Invalid_argument "Grid3d.make: too many levels")
    (fun () -> ignore (Grid3d.make ~levels:6 ~n_finest:15))

let test_zero_rhs_zero_solution () =
  let h = Grid3d.make ~levels:3 ~n_finest:15 in
  ignore (Grid3d.solve h ~sweeps:2 ~tol:1e-12 ~max_cycles:5);
  let lvl = Grid3d.finest h in
  let n = Grid3d.level_n lvl in
  let maxu = ref 0.0 in
  for i = 1 to n do
    for j = 1 to n do
      for k = 1 to n do
        maxu := Float.max !maxu (Float.abs (Grid3d.get_u lvl i j k))
      done
    done
  done;
  if !maxu > 1e-12 then Alcotest.failf "nonzero solution for zero rhs: %g" !maxu

let suite =
  [
    Alcotest.test_case "smoother reduces residual" `Quick test_smoother_reduces;
    Alcotest.test_case "V-cycle contraction" `Quick test_v_cycle_contracts;
    Alcotest.test_case "solve converges" `Quick test_solve_converges;
    Alcotest.test_case "solution accuracy O(h^2)" `Quick test_solution_accuracy;
    Alcotest.test_case "multigrid beats smoothing" `Quick test_multigrid_beats_smoothing;
    Alcotest.test_case "invalid sizes rejected" `Quick test_invalid_sizes;
    Alcotest.test_case "zero rhs, zero solution" `Quick test_zero_rhs_zero_solution;
  ]
