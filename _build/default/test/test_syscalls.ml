(* Blocking system calls under signals (paper 3.5.1). *)

open Desim
open Oskern
open Preempt_core

let sig_x = 40

let make () =
  let eng = Engine.create () in
  let k = Kernel.create eng (Machine.with_cores Machine.skylake 1) in
  (eng, k)

let test_uninterrupted_syscall () =
  let eng, k = make () in
  let r = ref (`Eintr (0.0, 0)) in
  let klt =
    Kernel.spawn k ~name:"io" (fun klt ->
        r := Kernel.blocking_syscall k klt ~duration:0.02 ~sa_restart:false)
  in
  ignore klt;
  Engine.run eng;
  (match !r with
  | `Done 0 -> ()
  | `Done n -> Alcotest.failf "unexpected restarts: %d" n
  | `Eintr _ -> Alcotest.fail "should complete");
  (* No CPU burned while blocked. *)
  if Engine.now eng < 0.02 then Alcotest.fail "finished early"

let test_sa_restart_resumes () =
  let eng, k = make () in
  Kernel.sigaction k sig_x (fun _ _ -> ());
  let result = ref (`Done (-1)) in
  let finish = ref 0.0 in
  let klt =
    Kernel.spawn k ~name:"io" (fun klt ->
        result := Kernel.blocking_syscall k klt ~duration:0.03 ~sa_restart:true;
        finish := Kernel.now k)
  in
  (* Three signals during the call. *)
  List.iter
    (fun t -> ignore (Engine.after eng t (fun () -> Kernel.kill k klt sig_x)))
    [ 0.005; 0.012; 0.02 ];
  Engine.run eng;
  (match !result with
  | `Done 3 -> ()
  | `Done n -> Alcotest.failf "restarts %d, expected 3" n
  | `Eintr _ -> Alcotest.fail "SA_RESTART must not fail");
  (* Completes around its duration plus small handler costs. *)
  if !finish < 0.03 || !finish > 0.032 then Alcotest.failf "finish %f" !finish

let test_eintr_without_restart () =
  let eng, k = make () in
  Kernel.sigaction k sig_x (fun _ _ -> ());
  let result = ref (`Done (-1)) in
  let klt =
    Kernel.spawn k ~name:"io" (fun klt ->
        result := Kernel.blocking_syscall k klt ~duration:0.03 ~sa_restart:false)
  in
  ignore (Engine.after eng 0.01 (fun () -> Kernel.kill k klt sig_x));
  Engine.run eng;
  match !result with
  | `Eintr (left, 1) ->
      if left < 0.015 || left > 0.021 then Alcotest.failf "remaining %f" left
  | `Eintr (_, n) -> Alcotest.failf "restarts %d" n
  | `Done _ -> Alcotest.fail "should have failed with EINTR"

let test_ult_blocking_io_restarted_by_preemption () =
  let eng = Engine.create () in
  let kernel = Kernel.create eng (Machine.with_cores Machine.skylake 1) in
  let config =
    {
      Config.default with
      Config.timer_strategy = Config.Per_worker_aligned;
      interval = 1e-3;
    }
  in
  let rt = Runtime.create ~config kernel ~n_workers:1 in
  let restarts = ref 0 in
  let finish = ref 0.0 in
  ignore
    (Runtime.spawn rt ~kind:Types.Signal_yield ~home:0 ~name:"io" (fun () ->
         restarts := Ult.blocking_io 0.01;
         finish := Ult.now ()));
  Runtime.start rt;
  Engine.run eng;
  (* A 10 ms call under a 1 ms timer: ~9-10 interruptions, still done. *)
  if !restarts < 5 then Alcotest.failf "too few restarts: %d" !restarts;
  if !finish < 0.01 || !finish > 0.012 then Alcotest.failf "finish %f" !finish

let test_io_does_not_deadlock_scheduler () =
  (* While one thread blocks in I/O, its worker's KLT is blocked — but a
     preemptive CPU thread on another worker keeps running. *)
  let eng = Engine.create () in
  let kernel = Kernel.create eng (Machine.with_cores Machine.skylake 2) in
  let config =
    {
      Config.default with
      Config.timer_strategy = Config.Per_worker_aligned;
      interval = 1e-3;
    }
  in
  let rt = Runtime.create ~config kernel ~n_workers:2 in
  let done_io = ref false and done_cpu = ref false in
  ignore
    (Runtime.spawn rt ~kind:Types.Signal_yield ~home:0 ~name:"io" (fun () ->
         ignore (Ult.blocking_io 0.02);
         done_io := true));
  ignore
    (Runtime.spawn rt ~kind:Types.Signal_yield ~home:1 ~name:"cpu" (fun () ->
         Ult.compute 0.01;
         done_cpu := true));
  Runtime.start rt;
  Engine.run eng;
  Alcotest.(check (pair bool bool)) "both complete" (true, true) (!done_io, !done_cpu)

let test_ablation_shape () =
  let _baseline, points = Experiments.Sec351_syscalls.series ~fast:true () in
  let find i =
    List.find (fun p -> p.Experiments.Sec351_syscalls.interval = i) points
  in
  let p100us = find 1e-4 and p10ms = find 1e-2 in
  Alcotest.(check bool) "more restarts at shorter interval" true
    (p100us.restarts > (10 * p10ms.restarts));
  Alcotest.(check bool) "more overhead at shorter interval" true
    (p100us.overhead > p10ms.overhead)

let suite =
  [
    Alcotest.test_case "uninterrupted syscall" `Quick test_uninterrupted_syscall;
    Alcotest.test_case "SA_RESTART resumes" `Quick test_sa_restart_resumes;
    Alcotest.test_case "EINTR without restart" `Quick test_eintr_without_restart;
    Alcotest.test_case "ULT blocking_io under preemption" `Quick
      test_ult_blocking_io_restarted_by_preemption;
    Alcotest.test_case "I/O does not block other workers" `Quick
      test_io_does_not_deadlock_scheduler;
    Alcotest.test_case "3.5.1 ablation shape" `Quick test_ablation_shape;
  ]
