open Desim

let test_basic_capacity () =
  let eng = Engine.create () in
  let res = Resource.create eng ~capacity:2 () in
  let active = ref 0 and peak = ref 0 in
  for i = 0 to 5 do
    Engine.spawn eng (Printf.sprintf "c%d" i) (fun () ->
        Resource.use res (fun () ->
            incr active;
            if !active > !peak then peak := !active;
            Engine.delay 1.0;
            decr active))
  done;
  Engine.run eng;
  Alcotest.(check int) "peak bounded by capacity" 2 !peak;
  Alcotest.(check (float 0.0)) "makespan = 3 rounds" 3.0 (Engine.now eng)

let test_wait_stats () =
  let eng = Engine.create () in
  let res = Resource.create eng ~capacity:1 () in
  for i = 0 to 2 do
    Engine.spawn eng (Printf.sprintf "c%d" i) (fun () ->
        Resource.use res (fun () -> Engine.delay 1.0))
  done;
  Engine.run eng;
  let s = Resource.wait_stats res in
  Alcotest.(check int) "3 samples" 3 (Stats.count s);
  (* Waits are 0, 1, 2 seconds. *)
  Alcotest.(check (float 1e-9)) "mean wait" 1.0 (Stats.mean s)

let test_utilization () =
  let eng = Engine.create () in
  let res = Resource.create eng ~capacity:2 () in
  Engine.spawn eng "lone" (fun () ->
      Resource.use res (fun () -> Engine.delay 1.0);
      Engine.delay 1.0);
  Engine.run eng;
  (* 1 slot-second busy over capacity 2 x 2s elapsed = 0.25. *)
  let u = Resource.utilization res in
  if Float.abs (u -. 0.25) > 1e-9 then Alcotest.failf "utilization %f" u

let test_release_without_hold () =
  let eng = Engine.create () in
  let res = Resource.create eng ~capacity:1 () in
  Alcotest.check_raises "bad release" (Invalid_argument "Resource.release: nothing held")
    (fun () -> Resource.release res)

let test_queue_length () =
  let eng = Engine.create () in
  let res = Resource.create eng ~capacity:1 () in
  for i = 0 to 2 do
    Engine.spawn eng (Printf.sprintf "c%d" i) (fun () ->
        Resource.use res (fun () -> Engine.delay 1.0))
  done;
  Engine.run ~until:0.5 eng;
  Alcotest.(check int) "two queued" 2 (Resource.queue_length res);
  Alcotest.(check int) "one holder" 1 (Resource.in_use res);
  Engine.run eng

(* M/D/1 sanity: Poisson arrivals (rate l), deterministic service (s):
   Pollaczek–Khinchine mean wait = l s^2 / (2 (1 - l s)). *)
let test_md1_queueing_theory () =
  let eng = Engine.create ~seed:7 () in
  let res = Resource.create eng ~capacity:1 () in
  let lambda = 0.5 and service = 1.0 in
  let rho = lambda *. service in
  let expect_wait = lambda *. service *. service /. (2.0 *. (1.0 -. rho)) in
  let rng = Rng.split (Engine.rng eng) in
  Engine.spawn eng "arrivals" (fun () ->
      for i = 0 to 4999 do
        Engine.delay (Rng.exponential rng ~mean:(1.0 /. lambda));
        Engine.spawn eng (Printf.sprintf "job%d" i) (fun () ->
            Resource.use res (fun () -> Engine.delay service))
      done);
  Engine.run eng;
  let measured = Stats.mean (Resource.wait_stats res) in
  (* 5000 jobs: within 15% of theory. *)
  let rel = Float.abs (measured -. expect_wait) /. expect_wait in
  if rel > 0.15 then
    Alcotest.failf "M/D/1 wait %f vs theory %f (%.0f%% off)" measured expect_wait
      (rel *. 100.0)

let suite =
  [
    Alcotest.test_case "capacity bound" `Quick test_basic_capacity;
    Alcotest.test_case "wait statistics" `Quick test_wait_stats;
    Alcotest.test_case "utilization" `Quick test_utilization;
    Alcotest.test_case "release without hold" `Quick test_release_without_hold;
    Alcotest.test_case "queue length" `Quick test_queue_length;
    Alcotest.test_case "M/D/1 matches queueing theory" `Quick test_md1_queueing_theory;
  ]
