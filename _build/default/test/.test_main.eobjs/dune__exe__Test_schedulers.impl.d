test/test_schedulers.ml: Alcotest Array Desim Engine Kernel List Machine Oskern Preempt_core Printf QCheck QCheck_alcotest Runtime Sched_packing Sched_priority Sched_ws
