test/test_usync.ml: Alcotest Array Config Desim Engine Kernel List Machine Oskern Preempt_core Printf Runtime Types Ult Usync
