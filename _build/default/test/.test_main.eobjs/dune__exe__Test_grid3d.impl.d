test/test_grid3d.ml: Alcotest Float Grid3d Multigrid
