test/test_abt.ml: Abt Alcotest Desim Engine Kernel List Machine Oskern Preempt_core
