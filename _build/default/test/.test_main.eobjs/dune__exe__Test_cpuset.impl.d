test/test_cpuset.ml: Alcotest Cpuset Machine Oskern
