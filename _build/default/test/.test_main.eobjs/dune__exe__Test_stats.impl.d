test/test_stats.ml: Alcotest Array Desim Gen List QCheck QCheck_alcotest Stats
