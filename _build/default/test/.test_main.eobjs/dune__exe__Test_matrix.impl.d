test/test_matrix.ml: Alcotest Desim Float Linalg Matrix QCheck QCheck_alcotest
