test/test_misc.ml: Alcotest Astring_contains Config Desim Engine Kernel Linalg List Machine Moldyn Multigrid Ompmodel Oskern Preempt_core Runtime Types Ult
