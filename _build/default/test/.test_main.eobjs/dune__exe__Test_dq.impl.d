test/test_dq.ml: Alcotest Dq List Preempt_core QCheck QCheck_alcotest
