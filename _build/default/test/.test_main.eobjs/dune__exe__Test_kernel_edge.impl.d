test/test_kernel_edge.ml: Alcotest Cpuset Desim Engine Kernel List Machine Oskern Printf
