test/test_fsync.ml: Alcotest Atomic Fiber Fun List
