test/test_heap.ml: Alcotest Desim Fun Heap List QCheck QCheck_alcotest
