test/test_grid.ml: Alcotest Float Fmg_profile Grid List Multigrid
