test/test_chart.ml: Alcotest Astring_contains Chart Experiments Filename String Sys
