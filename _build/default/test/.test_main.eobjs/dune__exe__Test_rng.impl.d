test/test_rng.ml: Alcotest Array Desim Fun QCheck QCheck_alcotest Rng Stats
