test/test_workloads.ml: Alcotest Linalg Machine Moldyn Multigrid Oskern Preempt_core
