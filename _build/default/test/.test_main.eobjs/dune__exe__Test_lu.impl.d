test/test_lu.ml: Alcotest Array Desim Linalg List Lu Matrix QCheck QCheck_alcotest
