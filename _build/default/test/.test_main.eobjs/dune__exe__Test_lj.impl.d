test/test_lj.ml: Alcotest Array Desim Float Lj Moldyn
