test/test_api_surface.ml: Alcotest Astring_contains Cpuset Desim Engine Experiments Format Kernel Machine Oskern Preempt_core Runtime Stats Types Ult
