test/test_gantt.ml: Alcotest Astring_contains Cpuset Desim Engine Experiments Gantt Hashtbl Kernel Machine Oskern Printf String Trace
