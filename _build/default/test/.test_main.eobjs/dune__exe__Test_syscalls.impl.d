test/test_syscalls.ml: Alcotest Config Desim Engine Experiments Kernel List Machine Oskern Preempt_core Runtime Types Ult
