test/test_omp.ml: Alcotest Array Cpuset Desim Engine Gen Kernel List Machine Omp Ompmodel Oskern QCheck QCheck_alcotest Stdlib
