test/test_resource.ml: Alcotest Desim Engine Float Printf Resource Rng Stats
