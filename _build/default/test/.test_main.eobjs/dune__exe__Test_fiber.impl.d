test/test_fiber.ml: Alcotest Array Atomic Fiber Fun List Unix
