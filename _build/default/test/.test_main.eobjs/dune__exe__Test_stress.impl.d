test/test_stress.ml: Alcotest Array Config Desim Engine Kernel List Machine Oskern Preempt_core Printf QCheck QCheck_alcotest Rng Runtime Sched_packing Types Ult Usync
