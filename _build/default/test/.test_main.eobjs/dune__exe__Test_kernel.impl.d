test/test_kernel.ml: Alcotest Array Cpuset Desim Engine Float Hashtbl Kernel List Machine Option Oskern Printf Stats
