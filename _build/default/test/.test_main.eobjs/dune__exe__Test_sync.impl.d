test/test_sync.ml: Alcotest Desim Engine List Printf Sync Trace
