test/test_rt_policy.ml: Alcotest Desim Engine Kernel List Machine Oskern Printf
