test/test_runtime.ml: Alcotest Array Config Desim Engine Float Kernel List Machine Oskern Preempt_core Printf Runtime Sched_packing Sched_priority Stats Types Ult Usync
