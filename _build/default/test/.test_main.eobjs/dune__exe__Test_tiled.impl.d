test/test_tiled.ml: Alcotest Array Desim Linalg List Matrix QCheck QCheck_alcotest Tiled
