test/test_engine.ml: Alcotest Buffer Desim Engine List Printf Rng
