(* Shape-level regression tests for the experiment harnesses: these
   assert the qualitative claims of each figure/table at reduced scale,
   so a refactor that breaks a reproduced phenomenon fails loudly. *)

open Experiments

let test_fig4_shapes () =
  let strategies = Fig4_interrupt.strategies in
  ignore strategies;
  let mean ~workers ~strategy =
    (Fig4_interrupt.measure ~workers ~strategy ~intervals:30).Fig4_interrupt.mean
  in
  let naive1 = mean ~workers:1 ~strategy:Preempt_core.Config.Per_worker_creation in
  let naive32 = mean ~workers:32 ~strategy:Preempt_core.Config.Per_worker_creation in
  let aligned32 = mean ~workers:32 ~strategy:Preempt_core.Config.Per_worker_aligned in
  let chain32 = mean ~workers:32 ~strategy:Preempt_core.Config.Per_process_chain in
  let one_to_all32 =
    mean ~workers:32 ~strategy:Preempt_core.Config.Per_process_one_to_all
  in
  (* Naive grows with workers; aligned stays flat. *)
  if naive32 < 4.0 *. naive1 then
    Alcotest.failf "naive contention missing: %g -> %g" naive1 naive32;
  if aligned32 > naive1 *. 1.5 then Alcotest.failf "aligned not flat: %g" aligned32;
  (* Chain flat but above aligned; one-to-all contends. *)
  if chain32 <= aligned32 then Alcotest.fail "chain should cost more than aligned";
  if chain32 > 3.0 *. aligned32 then Alcotest.failf "chain not flat: %g" chain32;
  if one_to_all32 < 2.0 *. chain32 then
    Alcotest.failf "one-to-all should contend: %g vs chain %g" one_to_all32 chain32

let test_table1_ordering () =
  let r = Table1_preempt_cost.measure Oskern.Machine.skylake "Skylake" ~preemptions:100 in
  let open Table1_preempt_cost in
  Alcotest.(check bool) "1:1 < signal-yield" true (r.one_to_one < r.signal_yield);
  Alcotest.(check bool) "signal-yield < KLT-switching" true
    (r.signal_yield < r.klt_switching);
  (* Magnitudes within 2x of the paper's Skylake numbers. *)
  let near paper v = v > paper /. 2.0 && v < paper *. 2.0 in
  Alcotest.(check bool) "1:1 ~2.8us" true (near 2.8e-6 r.one_to_one);
  Alcotest.(check bool) "sy ~3.5us" true (near 3.5e-6 r.signal_yield);
  Alcotest.(check bool) "ks ~9.9us" true (near 9.9e-6 r.klt_switching)

let test_fig6_ordering () =
  (* At a 100us interval on Skylake: timer-only ~ signal-yield, and each
     KLT-switching optimization strictly reduces overhead. *)
  let run variant =
    let baseline = 0.05 in
    let t =
      Fig6_overhead.run_once Oskern.Machine.skylake ~workers:8 ~threads_per_worker:4
        ~per_thread:(baseline /. 4.0) ~variant ~interval:(Some 1e-4)
    in
    let base =
      Fig6_overhead.run_once Oskern.Machine.skylake ~workers:8 ~threads_per_worker:4
        ~per_thread:(baseline /. 4.0) ~variant:Fig6_overhead.Timer_only ~interval:None
    in
    (t /. base) -. 1.0
  in
  let timer_only = run Fig6_overhead.Timer_only in
  let sy = run Fig6_overhead.Signal_yield_v in
  let naive = run Fig6_overhead.Klt_naive in
  let futex = run Fig6_overhead.Klt_futex in
  let local = run Fig6_overhead.Klt_futex_local in
  if Float.abs (sy -. timer_only) > 0.02 then
    Alcotest.failf "signal-yield (%g) should track timer-only (%g)" sy timer_only;
  (* The sigsuspend->futex step is a clear win; the worker-local pool is
     within noise of the global pool in our model (its real-world gain is
     mostly avoided affinity/cache syscalls priced near zero for cold
     pool KLTs) — assert it does not regress materially. *)
  if not (naive > futex) then
    Alcotest.failf "futex must beat sigsuspend: naive %g futex %g" naive futex;
  if local > futex *. 1.10 then
    Alcotest.failf "local pool regressed: futex %g local %g" futex local;
  if local < sy then Alcotest.failf "KLT-switching cheaper than signal-yield?";
  if naive > 0.5 then Alcotest.failf "naive KLT-switching imploded: %g" naive

let suite =
  [
    Alcotest.test_case "fig4: contention shapes" `Slow test_fig4_shapes;
    Alcotest.test_case "table1: ordering + magnitude" `Slow test_table1_ordering;
    Alcotest.test_case "fig6: optimization ladder" `Slow test_fig6_ordering;
  ]
