open Linalg

let rng () = Desim.Rng.make 321

let test_getrf_reconstructs () =
  let a = Lu.random_dd (rng ()) 10 in
  let packed = Matrix.copy a in
  Lu.getrf packed;
  let l, u = Lu.split_lu packed in
  let lu = Matrix.matmul l u in
  let rel = Matrix.norm (Matrix.sub a lu) /. Matrix.norm a in
  if rel > 1e-10 then Alcotest.failf "LU reconstruction error %g" rel

let test_trsm_l () =
  let r = rng () in
  let a = Lu.random_dd r 8 in
  let packed = Matrix.copy a in
  Lu.getrf packed;
  let l, _ = Lu.split_lu packed in
  let b0 = Lu.random_dd r 8 in
  let x = Matrix.copy b0 in
  Lu.trsm_l l x;
  let back = Matrix.matmul l x in
  let rel = Matrix.norm (Matrix.sub b0 back) /. Matrix.norm b0 in
  if rel > 1e-10 then Alcotest.failf "trsm_l error %g" rel

let test_trsm_u () =
  let r = rng () in
  let a = Lu.random_dd r 8 in
  let packed = Matrix.copy a in
  Lu.getrf packed;
  let _, u = Lu.split_lu packed in
  let b0 = Lu.random_dd r 8 in
  let x = Matrix.copy b0 in
  Lu.trsm_u u x;
  let back = Matrix.matmul x u in
  let rel = Matrix.norm (Matrix.sub b0 back) /. Matrix.norm b0 in
  if rel > 1e-10 then Alcotest.failf "trsm_u error %g" rel

let test_tiled_matches_reference () =
  let a = Lu.random_dd (rng ()) 24 in
  let reference = Matrix.copy a in
  Lu.getrf reference;
  let tiled = Lu.factorize a ~t:4 in
  let rel = Matrix.norm (Matrix.sub reference tiled) /. Matrix.norm reference in
  if rel > 1e-9 then Alcotest.failf "tiled vs reference %g" rel

let test_dag_counts () =
  (* T getrf + T(T-1) trsm_l + T(T-1) trsm_u... per k: (t-1-k) each, and
     (t-1-k)^2 gemms. *)
  let tasks = Lu.dag 4 in
  let count p = Array.fold_left (fun acc tk -> if p tk.Lu.op then acc + 1 else acc) 0 tasks in
  Alcotest.(check int) "getrf" 4 (count (function Lu.Getrf _ -> true | _ -> false));
  Alcotest.(check int) "trsm_l" 6 (count (function Lu.Trsm_l _ -> true | _ -> false));
  Alcotest.(check int) "trsm_u" 6 (count (function Lu.Trsm_u _ -> true | _ -> false));
  Alcotest.(check int) "gemm" 14 (count (function Lu.Gemm _ -> true | _ -> false))

let test_dag_program_order () =
  Array.iter
    (fun (tk : Lu.task) ->
      List.iter (fun p -> if p >= tk.id then Alcotest.failf "forward dep") tk.preds)
    (Lu.dag 6)

let test_total_flops_positive () =
  Alcotest.(check bool) "flops grow with t" true
    (Lu.total_flops 6 ~b:10 > Lu.total_flops 4 ~b:10)

let prop_random_topo_order_correct =
  QCheck.Test.make ~name:"LU: random topological order is correct" ~count:8
    QCheck.small_nat
    (fun seed ->
      let r = Desim.Rng.make (seed + 11) in
      let t = 3 in
      let n = t * 6 in
      let a = Lu.random_dd r n in
      let reference = Matrix.copy a in
      Lu.getrf reference;
      (* Execute the DAG in a random dependency-respecting order on tiles. *)
      let b = n / t in
      let blocks =
        Array.init (t * t) (fun idx ->
            let i = idx / t and j = idx mod t in
            let blk = Matrix.create b in
            for rr = 0 to b - 1 do
              for cc = 0 to b - 1 do
                Matrix.set blk rr cc (Matrix.get a ((i * b) + rr) ((j * b) + cc))
              done
            done;
            blk)
      in
      let blk i j = blocks.((i * t) + j) in
      let tasks = Lu.dag t in
      let remaining = Array.map (fun (tk : Lu.task) -> List.length tk.preds) tasks in
      let ready = ref (Array.to_list tasks |> List.filter (fun tk -> tk.Lu.preds = [])) in
      while !ready <> [] do
        let idx = Desim.Rng.int r (List.length !ready) in
        let tk = List.nth !ready idx in
        ready := List.filter (fun x -> x != tk) !ready;
        (match tk.Lu.op with
        | Lu.Getrf k -> Lu.getrf (blk k k)
        | Lu.Trsm_l (k, j) -> Lu.trsm_l (blk k k) (blk k j)
        | Lu.Trsm_u (i, k) -> Lu.trsm_u (blk k k) (blk i k)
        | Lu.Gemm (i, j, k) -> Lu.gemm (blk i k) (blk k j) (blk i j));
        List.iter
          (fun s ->
            remaining.(s) <- remaining.(s) - 1;
            if remaining.(s) = 0 then ready := tasks.(s) :: !ready)
          tk.Lu.succs
      done;
      let out = Matrix.create n in
      for i = 0 to t - 1 do
        for j = 0 to t - 1 do
          for rr = 0 to b - 1 do
            for cc = 0 to b - 1 do
              Matrix.set out ((i * b) + rr) ((j * b) + cc) (Matrix.get (blk i j) rr cc)
            done
          done
        done
      done;
      Matrix.norm (Matrix.sub out reference) /. Matrix.norm reference < 1e-9)

let suite =
  [
    Alcotest.test_case "getrf reconstructs" `Quick test_getrf_reconstructs;
    Alcotest.test_case "trsm_l solves" `Quick test_trsm_l;
    Alcotest.test_case "trsm_u solves" `Quick test_trsm_u;
    Alcotest.test_case "tiled = reference" `Quick test_tiled_matches_reference;
    Alcotest.test_case "dag counts" `Quick test_dag_counts;
    Alcotest.test_case "dag program order" `Quick test_dag_program_order;
    Alcotest.test_case "flops monotone" `Quick test_total_flops_positive;
    QCheck_alcotest.to_alcotest prop_random_topo_order_correct;
  ]
