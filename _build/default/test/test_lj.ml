open Moldyn

let make ?(cells = 3) () = Lj.create (Desim.Rng.make 42) ~cells_per_side:cells ()

let test_atom_count () =
  let md = make ~cells:3 () in
  Alcotest.(check int) "4 per fcc cell" (4 * 27) (Lj.atoms md)

let test_initial_momentum_zero () =
  let md = make () in
  if Lj.momentum md > 1e-9 then Alcotest.failf "net momentum %g" (Lj.momentum md)

let test_momentum_conserved () =
  let md = make () in
  for _ = 1 to 20 do
    Lj.step md ~dt:0.002
  done;
  if Lj.momentum md > 1e-6 then Alcotest.failf "momentum drift %g" (Lj.momentum md)

let test_energy_drift_small () =
  let md = make () in
  (* Equilibrate the lattice a little first. *)
  for _ = 1 to 10 do
    Lj.step md ~dt:0.002
  done;
  let e0 = Lj.total_energy md in
  for _ = 1 to 100 do
    Lj.step md ~dt:0.002
  done;
  let e1 = Lj.total_energy md in
  let rel = Float.abs (e1 -. e0) /. Float.abs e0 in
  if rel > 0.02 then Alcotest.failf "energy drift %.3f%% (%g -> %g)" (rel *. 100.0) e0 e1

let test_forces_finite () =
  let md = make () in
  for _ = 1 to 5 do
    Lj.step md ~dt:0.002
  done;
  let f = Lj.max_force md in
  if not (Float.is_finite f) then Alcotest.fail "non-finite force";
  if f > 1e4 then Alcotest.failf "suspicious force %g" f

let test_temperature_positive () =
  let md = make () in
  Alcotest.(check bool) "T > 0" true (Lj.temperature md > 0.0)

let test_lattice_potential_negative () =
  (* A dense LJ lattice is bound: potential energy below zero. *)
  let md = make () in
  if Lj.potential_energy md >= 0.0 then
    Alcotest.failf "unbound lattice: PE %g" (Lj.potential_energy md)

let test_snapshot_independent () =
  let md = make () in
  let x, _, _ = Lj.snapshot md in
  let x0 = x.(0) in
  for _ = 1 to 5 do
    Lj.step md ~dt:0.002
  done;
  Alcotest.(check (float 0.0)) "snapshot unchanged by stepping" x0 x.(0)

let test_rdf_liquid_structure () =
  let md = make ~cells:3 () in
  for _ = 1 to 20 do
    Lj.step md ~dt:0.002
  done;
  (* r_max must stay below box/2 for minimum-image distances. *)
  let r_max = Lj.box md /. 2.2 in
  let bins = 32 in
  let g = Lj.rdf md ~bins ~r_max (Lj.snapshot md) in
  (* Excluded volume: no pairs well inside the core (r ~ 0.25 sigma). *)
  Alcotest.(check (float 0.0)) "g(small r) = 0" 0.0 g.(2);
  (* First coordination shell peaks well above 1. *)
  let peak = Array.fold_left Float.max 0.0 g in
  if peak < 1.5 then Alcotest.failf "no liquid structure: peak g = %f" peak;
  (* Large-r tail approaches the ideal-gas value 1 (noisy: 108 atoms). *)
  let tail = (g.(bins - 3) +. g.(bins - 2)) /. 2.0 in
  if tail < 0.5 || tail > 1.6 then Alcotest.failf "tail g = %f" tail

let test_speed_histogram_total () =
  let md = make () in
  let h = Lj.speed_histogram md ~bins:16 ~v_max:10.0 in
  Alcotest.(check int) "sums to atom count" (Lj.atoms md) (Array.fold_left ( + ) 0 h)

let test_rdf_invalid () =
  let md = make () in
  Alcotest.check_raises "bad bins" (Invalid_argument "Lj.rdf: bad parameters") (fun () ->
      ignore (Lj.rdf md ~bins:0 ~r_max:1.0 (Lj.snapshot md)))

let suite =
  [
    Alcotest.test_case "atom count" `Quick test_atom_count;
    Alcotest.test_case "initial momentum zero" `Quick test_initial_momentum_zero;
    Alcotest.test_case "momentum conserved" `Quick test_momentum_conserved;
    Alcotest.test_case "energy drift small" `Quick test_energy_drift_small;
    Alcotest.test_case "forces finite" `Quick test_forces_finite;
    Alcotest.test_case "temperature positive" `Quick test_temperature_positive;
    Alcotest.test_case "lattice is bound" `Quick test_lattice_potential_negative;
    Alcotest.test_case "snapshot is a copy" `Quick test_snapshot_independent;
    Alcotest.test_case "rdf shows liquid structure" `Quick test_rdf_liquid_structure;
    Alcotest.test_case "speed histogram total" `Quick test_speed_histogram_total;
    Alcotest.test_case "rdf invalid args" `Quick test_rdf_invalid;
  ]
