open Desim
open Oskern

let sig_preempt = 34 (* SIGRTMIN-ish *)

let make ?(cores = 2) () =
  let eng = Engine.create () in
  let machine = Machine.with_cores Machine.skylake cores in
  let k = Kernel.create eng machine in
  (eng, k)

let run = Engine.run

let test_single_compute () =
  let eng, k = make ~cores:1 () in
  let finished_at = ref 0.0 in
  let klt =
    Kernel.spawn k ~name:"worker" (fun klt ->
        Kernel.compute k klt 0.01;
        finished_at := Engine.now eng)
  in
  run eng;
  (* 10 ms of work plus dispatch overhead, alone on a free core. *)
  if !finished_at < 0.01 || !finished_at > 0.0101 then
    Alcotest.failf "finished at %.6f, expected ~0.010" !finished_at;
  Alcotest.(check bool) "cpu_time ~ work" true (Kernel.cpu_time klt >= 0.01);
  Alcotest.(check string) "zombie" "zombie" (Kernel.state_name klt)

let test_parallel_on_two_cores () =
  let eng, k = make ~cores:2 () in
  let finished = ref [] in
  for i = 0 to 1 do
    ignore
      (Kernel.spawn k ~name:(Printf.sprintf "w%d" i) (fun klt ->
           Kernel.compute k klt 0.01;
           finished := Engine.now eng :: !finished))
  done;
  run eng;
  List.iter
    (fun t ->
      if t > 0.0102 then Alcotest.failf "no parallelism: finished at %.6f" t)
    !finished

let test_timeslicing_two_on_one () =
  let eng, k = make ~cores:1 () in
  let finish = Array.make 2 0.0 in
  for i = 0 to 1 do
    ignore
      (Kernel.spawn k ~name:(Printf.sprintf "w%d" i) (fun klt ->
           Kernel.compute k klt 0.05;
           finish.(i) <- Engine.now eng))
  done;
  run eng;
  (* 100 ms total work on one core: both finish near 0.1, and neither can
     finish before its own 50 ms of work is done. *)
  Array.iteri
    (fun i t ->
      if t < 0.05 then Alcotest.failf "w%d finished impossibly early: %f" i t;
      if t > 0.105 then Alcotest.failf "w%d finished too late: %f" i t)
    finish;
  (* Fairness: both within one slice of each other at the end. *)
  let d = Float.abs (finish.(0) -. finish.(1)) in
  if d > 0.02 then Alcotest.failf "unfair finish spread: %f" d

let test_nice_weights () =
  let eng, k = make ~cores:1 () in
  (* A nice-0 and a nice-5 spinner share a core for 1 s; CFS weights give
     the nice-0 thread 1.25^5 ~ 3x the CPU. *)
  let heavy = ref None and light = ref None in
  let spin klt = Kernel.compute k klt 10.0 in
  heavy := Some (Kernel.spawn k ~name:"nice0" spin);
  light := Some (Kernel.spawn k ~nice:5 ~name:"nice5" spin);
  Engine.run ~until:1.0 eng;
  let heavy_cpu = Kernel.cpu_time (Option.get !heavy) in
  let light_cpu = Kernel.cpu_time (Option.get !light) in
  let ratio = heavy_cpu /. light_cpu in
  if ratio < 2.0 || ratio > 4.5 then
    Alcotest.failf "nice ratio out of band: %.2f (%.4f vs %.4f)" ratio heavy_cpu light_cpu

let test_affinity_respected () =
  let eng, k = make ~cores:2 () in
  let cores_seen = Hashtbl.create 8 in
  for i = 0 to 3 do
    ignore
      (Kernel.spawn k
         ~affinity:(Cpuset.of_list 2 [ 1 ])
         ~name:(Printf.sprintf "pinned%d" i)
         (fun klt ->
           for _ = 1 to 20 do
             Kernel.compute k klt 0.001;
             match Kernel.running_core klt with
             | Some c -> Hashtbl.replace cores_seen c ()
             | None -> ()
           done))
  done;
  run eng;
  Alcotest.(check (list int)) "only core 1 used" [ 1 ]
    (List.sort compare (Hashtbl.fold (fun c () acc -> c :: acc) cores_seen []))

let test_sleep_duration () =
  let eng, k = make () in
  let woke = ref 0.0 in
  let klt =
    Kernel.spawn k ~name:"sleeper" (fun klt ->
        Kernel.sleep k klt 0.2;
        woke := Engine.now eng)
  in
  run eng;
  if !woke < 0.2 || !woke > 0.201 then Alcotest.failf "woke at %f" !woke;
  (* Sleep consumes no CPU. *)
  if Kernel.cpu_time klt > 0.001 then
    Alcotest.failf "sleeper burned cpu: %f" (Kernel.cpu_time klt)

let test_yield_rotates () =
  let eng, k = make ~cores:1 () in
  let order = ref [] in
  for i = 0 to 1 do
    ignore
      (Kernel.spawn k ~name:(Printf.sprintf "y%d" i) (fun klt ->
           for _ = 1 to 3 do
             Kernel.compute k klt 1e-4;
             order := i :: !order;
             Kernel.yield k klt
           done))
  done;
  run eng;
  (* With yields, the two KLTs alternate rather than running to completion. *)
  let seq = List.rev !order in
  Alcotest.(check (list int)) "alternation" [ 0; 1; 0; 1; 0; 1 ] seq

let test_join () =
  let eng, k = make () in
  let events = ref [] in
  let target =
    Kernel.spawn k ~name:"target" (fun klt ->
        Kernel.compute k klt 0.05;
        events := ("target-done", Engine.now eng) :: !events)
  in
  ignore
    (Kernel.spawn k ~name:"joiner" (fun klt ->
         Kernel.join k ~joiner:klt target;
         events := ("joined", Engine.now eng) :: !events));
  run eng;
  match List.rev !events with
  | [ ("target-done", t1); ("joined", t2) ] ->
      if t2 < t1 then Alcotest.fail "joined before target finished"
  | evs -> Alcotest.failf "unexpected events: %d" (List.length evs)

let test_join_zombie_is_immediate () =
  let eng, k = make () in
  let target = Kernel.spawn k ~name:"quick" (fun _ -> ()) in
  let joined = ref false in
  ignore
    (Kernel.spawn k ~name:"late-joiner" (fun klt ->
         Kernel.sleep k klt 0.1;
         Kernel.join k ~joiner:klt target;
         joined := true));
  run eng;
  Alcotest.(check bool) "joined" true !joined

let test_signal_handler_runs () =
  let eng, k = make () in
  let handled = ref [] in
  Kernel.sigaction k sig_preempt (fun _k klt ->
      handled := (Kernel.klt_name klt, Engine.now eng) :: !handled);
  let klt = Kernel.spawn k ~name:"victim" (fun klt -> Kernel.compute k klt 0.1) in
  ignore (Engine.after eng 0.02 (fun () -> Kernel.kill k klt sig_preempt));
  run eng;
  (match !handled with
  | [ ("victim", t) ] ->
      (* Delivered promptly, not at the end of the compute. *)
      if t > 0.03 then Alcotest.failf "late delivery: %f" t
  | _ -> Alcotest.fail "handler did not run exactly once");
  Alcotest.(check int) "delivered count" 1 (Kernel.signals_delivered k)

let test_signal_interrupts_compute_once () =
  let eng, k = make ~cores:1 () in
  let finished_at = ref 0.0 in
  Kernel.sigaction k sig_preempt (fun _ _ -> ());
  let klt =
    Kernel.spawn k ~name:"v" (fun klt ->
        Kernel.compute k klt 0.1;
        finished_at := Engine.now eng)
  in
  ignore (Engine.after eng 0.05 (fun () -> Kernel.kill k klt sig_preempt));
  run eng;
  (* Work completes in full despite the interruption; handler cost added. *)
  if !finished_at < 0.1 then Alcotest.fail "lost compute time";
  if !finished_at > 0.1005 then Alcotest.failf "too much overhead: %f" !finished_at

let test_masked_signal_deferred () =
  let eng, k = make () in
  let handled_at = ref 0.0 in
  Kernel.sigaction k sig_preempt (fun _ _ -> handled_at := Engine.now eng);
  ignore
    (Kernel.spawn k ~name:"m" (fun klt ->
         Kernel.sigblock k klt sig_preempt;
         Kernel.compute k klt 0.05;
         (* Signal sent at t=0.01 while blocked must not run yet. *)
         Alcotest.(check (float 0.0)) "not yet handled" 0.0 !handled_at;
         Kernel.sigunblock k klt sig_preempt;
         (* Delivered at the next interruption point. *)
         Kernel.compute k klt 0.001));
  let klt = List.hd (Kernel.live_klts k) in
  ignore (Engine.after eng 0.01 (fun () -> Kernel.kill k klt sig_preempt));
  run eng;
  if !handled_at < 0.05 then Alcotest.failf "handled while masked: %f" !handled_at

let test_signal_wakes_pause () =
  let eng, k = make () in
  let resumed = ref 0.0 in
  Kernel.sigaction k sig_preempt (fun _ _ -> ());
  let klt =
    Kernel.spawn k ~name:"pauser" (fun klt ->
        Kernel.pause k klt;
        resumed := Engine.now eng)
  in
  ignore (Engine.after eng 0.03 (fun () -> Kernel.kill k klt sig_preempt));
  run eng;
  if !resumed < 0.03 || !resumed > 0.031 then Alcotest.failf "resumed at %f" !resumed

let test_pthread_kill_charges_sender () =
  let eng, k = make () in
  Kernel.sigaction k sig_preempt (fun _ _ -> ());
  let target = Kernel.spawn k ~name:"t" (fun klt -> Kernel.sleep k klt 0.01) in
  let sender =
    Kernel.spawn k ~name:"s" (fun klt -> Kernel.pthread_kill k ~sender:klt target sig_preempt)
  in
  run eng;
  let c = (Kernel.costs k).Machine.pthread_kill in
  if Kernel.cpu_time sender < c then Alcotest.fail "sender not charged"

let test_timer_fires_periodically () =
  let eng, k = make () in
  let count = ref 0 in
  Kernel.sigaction k sig_preempt (fun _ _ -> incr count);
  let klt = Kernel.spawn k ~name:"w" (fun klt -> Kernel.compute k klt 0.0105) in
  let tm =
    Kernel.Timer.create k ~interval:0.001 ~signo:sig_preempt
      ~target:(fun () -> if Kernel.state_name klt <> "zombie" then Some klt else None)
      ()
  in
  Engine.run ~until:0.02 eng;
  Kernel.Timer.cancel tm;
  Alcotest.(check bool) "timer active flag" false (Kernel.Timer.active tm);
  (* ~10 fires while the worker lived (work takes slightly over 10.5ms). *)
  if !count < 8 || !count > 12 then Alcotest.failf "fired %d times" !count;
  Alcotest.(check int) "fires counted" (Kernel.Timer.fires tm) ((Kernel.Timer.fires tm / 1) * 1)

let test_timer_first_offset () =
  let eng, k = make () in
  let first_at = ref 0.0 in
  Kernel.sigaction k sig_preempt (fun _ _ -> if !first_at = 0.0 then first_at := Engine.now eng);
  let klt = Kernel.spawn k ~name:"w" (fun klt -> Kernel.compute k klt 0.05) in
  let tm =
    Kernel.Timer.create k ~first:0.0123 ~interval:0.01 ~signo:sig_preempt
      ~target:(fun () -> Some klt)
      ()
  in
  Engine.run ~until:0.04 eng;
  Kernel.Timer.cancel tm;
  if Float.abs (!first_at -. 0.0123) > 5e-4 then Alcotest.failf "first fire at %f" !first_at

let test_futex_wait_wake () =
  let eng, k = make () in
  let fut = Kernel.Futex.create k 0 in
  let woke_at = ref 0.0 in
  ignore
    (Kernel.spawn k ~name:"waiter" (fun klt ->
         (match Kernel.Futex.wait k klt fut ~expected:0 with
         | `Ok -> ()
         | `Again -> Alcotest.fail "should have blocked");
         woke_at := Engine.now eng));
  ignore
    (Kernel.spawn k ~name:"waker" (fun klt ->
         Kernel.sleep k klt 0.05;
         Kernel.Futex.set fut 1;
         ignore (Kernel.Futex.wake k ~waker:klt fut 1)));
  run eng;
  if !woke_at < 0.05 || !woke_at > 0.0501 then Alcotest.failf "woke at %f" !woke_at

let test_futex_value_mismatch () =
  let eng, k = make () in
  let fut = Kernel.Futex.create k 7 in
  let result = ref `Ok in
  ignore
    (Kernel.spawn k ~name:"w" (fun klt -> result := Kernel.Futex.wait k klt fut ~expected:0));
  run eng;
  Alcotest.(check bool) "EAGAIN" true (!result = `Again)

let test_futex_wake_count () =
  let eng, k = make ~cores:4 () in
  let fut = Kernel.Futex.create k 0 in
  let woken = ref 0 in
  for i = 0 to 2 do
    ignore
      (Kernel.spawn k ~name:(Printf.sprintf "w%d" i) (fun klt ->
           ignore (Kernel.Futex.wait k klt fut ~expected:0);
           incr woken))
  done;
  ignore
    (Kernel.spawn k ~name:"waker" (fun klt ->
         Kernel.sleep k klt 0.01;
         Alcotest.(check int) "3 waiting" 3 (Kernel.Futex.waiters fut);
         let n = Kernel.Futex.wake k ~waker:klt fut 2 in
         Alcotest.(check int) "woke 2" 2 n;
         Kernel.sleep k klt 0.01;
         Alcotest.(check int) "woken so far" 2 !woken;
         ignore (Kernel.Futex.wake k ~waker:klt fut 10)));
  run eng;
  Alcotest.(check int) "all woken" 3 !woken

let test_signal_lock_contention () =
  (* The Fig. 4 mechanism: when N workers handle a signal at the same
     instant, the serialized kernel lock makes the average handler
     completion latency grow roughly linearly in N. *)
  let latency_for n =
    let eng = Engine.create () in
    let machine = Machine.with_cores Machine.skylake n in
    let k = Kernel.create eng machine in
    let stats = Stats.create () in
    let sent = ref 0.0 in
    Kernel.sigaction k sig_preempt (fun _ _ -> Stats.add stats (Engine.now eng -. !sent));
    let klts =
      List.init n (fun i ->
          Kernel.spawn k
            ~affinity:(Cpuset.of_list n [ i ])
            ~name:(Printf.sprintf "w%d" i)
            (fun klt -> Kernel.compute k klt 0.1))
    in
    ignore
      (Engine.after eng 0.01 (fun () ->
           sent := Engine.now eng;
           List.iter (fun klt -> Kernel.kill k klt sig_preempt) klts));
    Engine.run ~until:0.05 eng;
    Stats.mean stats
  in
  let l1 = latency_for 1 and l16 = latency_for 16 in
  if l16 < 4.0 *. l1 then
    Alcotest.failf "no contention effect: n=1 %.3g vs n=16 %.3g" l1 l16

let test_compute_stoppable () =
  let eng, k = make () in
  let stop = ref false in
  let leftover = ref 0.0 in
  Kernel.sigaction k sig_preempt (fun _ _ -> stop := true);
  let klt =
    Kernel.spawn k ~name:"s" (fun klt ->
        leftover := Kernel.compute_stoppable k klt 0.1 ~should_stop:(fun () -> !stop))
  in
  ignore (Engine.after eng 0.03 (fun () -> Kernel.kill k klt sig_preempt));
  run eng;
  (* Stopped ~30 ms in: ~70 ms left. *)
  if !leftover < 0.06 || !leftover > 0.08 then Alcotest.failf "leftover %f" !leftover

let test_busy_wait () =
  let eng, k = make () in
  let flag = ref false in
  let done_at = ref 0.0 in
  let spinner =
    Kernel.spawn k ~name:"spin" (fun klt ->
        Kernel.busy_wait k klt (fun () -> !flag);
        done_at := Engine.now eng)
  in
  ignore (Engine.after eng 0.02 (fun () -> flag := true));
  run eng;
  if !done_at < 0.02 || !done_at > 0.0205 then Alcotest.failf "done at %f" !done_at;
  (* Busy waiting burns CPU, unlike sleep. *)
  if Kernel.cpu_time spinner < 0.015 then Alcotest.fail "spinner did not burn cpu"

let test_utilization_accounting () =
  let eng, k = make ~cores:2 () in
  ignore (Kernel.spawn k ~name:"w" (fun klt -> Kernel.compute k klt 0.1));
  Engine.run eng;
  (* One core busy for the whole run, the other idle. *)
  let u = Kernel.utilization k in
  if u < 0.45 || u > 0.55 then Alcotest.failf "utilization %f" u;
  Alcotest.(check (float 1e-3)) "busy ~ work" 0.1 (Kernel.total_busy_time k)

let test_set_affinity_migrates_queued () =
  let eng, k = make ~cores:2 () in
  (* Three spinners on core 0: one stays queued; repinning it to core 1
     must migrate it there. *)
  let pin0 = Cpuset.of_list 2 [ 0 ] in
  let klts =
    List.init 3 (fun i ->
        Kernel.spawn k ~affinity:pin0 ~name:(Printf.sprintf "w%d" i) (fun klt ->
            Kernel.compute k klt 0.5))
  in
  let target = List.nth klts 2 in
  ignore
    (Engine.after eng 0.05 (fun () ->
         Kernel.set_affinity k target (Cpuset.of_list 2 [ 1 ])));
  Engine.run ~until:0.2 eng;
  (* It must have run on core 1 by now (it was starving on core 0). *)
  if Kernel.cpu_time target < 0.05 then
    Alcotest.failf "pinned-away KLT starved: %f" (Kernel.cpu_time target)

let test_load_balancing_spreads () =
  let eng, k = make ~cores:2 () in
  let klts =
    List.init 4 (fun i ->
        Kernel.spawn k ~name:(Printf.sprintf "w%d" i) (fun klt -> Kernel.compute k klt 0.2))
  in
  Engine.run ~until:0.35 eng;
  (* 0.8s of work on 2 cores: all should finish by ~0.4s and each get a
     fair share of CPU by 0.35s. *)
  List.iter
    (fun klt ->
      let c = Kernel.cpu_time klt in
      if c < 0.1 then Alcotest.failf "%s starved: %f" (Kernel.klt_name klt) c)
    klts

let suite =
  [
    Alcotest.test_case "single compute" `Quick test_single_compute;
    Alcotest.test_case "parallel on two cores" `Quick test_parallel_on_two_cores;
    Alcotest.test_case "timeslicing two on one" `Quick test_timeslicing_two_on_one;
    Alcotest.test_case "nice weights bias CPU share" `Quick test_nice_weights;
    Alcotest.test_case "affinity respected" `Quick test_affinity_respected;
    Alcotest.test_case "sleep duration, no cpu" `Quick test_sleep_duration;
    Alcotest.test_case "yield rotates" `Quick test_yield_rotates;
    Alcotest.test_case "join waits for exit" `Quick test_join;
    Alcotest.test_case "join on zombie immediate" `Quick test_join_zombie_is_immediate;
    Alcotest.test_case "signal handler runs" `Quick test_signal_handler_runs;
    Alcotest.test_case "signal interrupts compute" `Quick test_signal_interrupts_compute_once;
    Alcotest.test_case "masked signal deferred" `Quick test_masked_signal_deferred;
    Alcotest.test_case "signal wakes pause" `Quick test_signal_wakes_pause;
    Alcotest.test_case "pthread_kill charges sender" `Quick test_pthread_kill_charges_sender;
    Alcotest.test_case "timer fires periodically" `Quick test_timer_fires_periodically;
    Alcotest.test_case "timer first offset" `Quick test_timer_first_offset;
    Alcotest.test_case "futex wait/wake" `Quick test_futex_wait_wake;
    Alcotest.test_case "futex value mismatch" `Quick test_futex_value_mismatch;
    Alcotest.test_case "futex wake count" `Quick test_futex_wake_count;
    Alcotest.test_case "signal lock contention grows with N" `Quick test_signal_lock_contention;
    Alcotest.test_case "compute_stoppable returns remainder" `Quick test_compute_stoppable;
    Alcotest.test_case "busy_wait burns cpu until flag" `Quick test_busy_wait;
    Alcotest.test_case "utilization accounting" `Quick test_utilization_accounting;
    Alcotest.test_case "set_affinity migrates queued KLT" `Quick test_set_affinity_migrates_queued;
    Alcotest.test_case "load balancing avoids starvation" `Quick test_load_balancing_spreads;
  ]
