(* Unit-level tests of the scheduler policies, driving [next]/[on_ready]
   directly on runtime state without running the simulation. *)

open Desim
open Oskern
open Preempt_core
open Preempt_core.Types

let make_rt ?(workers = 4) scheduler =
  let eng = Engine.create () in
  let kernel = Kernel.create eng (Machine.with_cores Machine.skylake workers) in
  Runtime.create ~scheduler kernel ~n_workers:workers

let worker rt i = (rt : Runtime.t).workers.(i)

(* ULTs contain closures: compare physically. *)
let is_u got u = match got with Some x -> x == u | None -> false

let is_none = function None -> true | Some _ -> false

let spawn_home rt ~home ?(priority = 0) name =
  Runtime.spawn rt ~home ~priority ~name (fun () -> ())

(* --------------------------------------------------------------- *)
(* Work stealing. *)

let test_ws_prefers_own_queue () =
  let rt = make_rt (Sched_ws.make ()) in
  let a = spawn_home rt ~home:0 "a" in
  let b = spawn_home rt ~home:1 "b" in
  let got = (rt.sched.next rt (worker rt 0) : ult option) in
  Alcotest.(check bool) "own first" true (is_u got a);
  let got = rt.sched.next rt (worker rt 1) in
  Alcotest.(check bool) "own for w1" true (is_u got b)

let test_ws_steals_when_empty () =
  let rt = make_rt (Sched_ws.make ()) in
  let a = spawn_home rt ~home:0 "a" in
  let got = rt.sched.next rt (worker rt 3) in
  Alcotest.(check bool) "stolen" true (is_u got a);
  Alcotest.(check bool) "nothing left" true (is_none (rt.sched.next rt (worker rt 0)))

let test_ws_fifo_order_within_queue () =
  let rt = make_rt (Sched_ws.make ()) in
  let a = spawn_home rt ~home:0 "a" in
  let b = spawn_home rt ~home:0 "b" in
  let w = worker rt 0 in
  Alcotest.(check bool) "a first" true (is_u (rt.sched.next rt w) a);
  Alcotest.(check bool) "b second" true (is_u (rt.sched.next rt w) b)

(* --------------------------------------------------------------- *)
(* Packing scheduler: Algorithm 1. *)

let test_packing_private_pools_partition () =
  let rt = make_rt ~workers:4 (Sched_packing.make ()) in
  Runtime.set_active_workers rt 2;
  (* N_total=4, N_active=2 -> N_private=4: pools 0..3 all private:
     worker 0 owns {0,2}, worker 1 owns {1,3}. *)
  let t0 = spawn_home rt ~home:0 "p0" in
  let t1 = spawn_home rt ~home:1 "p1" in
  let t2 = spawn_home rt ~home:2 "p2" in
  let t3 = spawn_home rt ~home:3 "p3" in
  let w0 = worker rt 0 and w1 = worker rt 1 in
  let pair_is a b x y = (is_u a x && is_u b y) || (is_u a y && is_u b x) in
  let n0a = rt.sched.next rt w0 in
  let n0b = rt.sched.next rt w0 in
  Alcotest.(check bool) "w0 gets pools 0 and 2" true (pair_is n0a n0b t0 t2);
  let n1a = rt.sched.next rt w1 in
  let n1b = rt.sched.next rt w1 in
  Alcotest.(check bool) "w1 gets pools 1 and 3" true (pair_is n1a n1b t1 t3)

let test_packing_shared_pools_when_indivisible () =
  let rt = make_rt ~workers:4 (Sched_packing.make ()) in
  Runtime.set_active_workers rt 3;
  (* N_total=4, N_active=3 -> N_private = 3*(4/3) = 3: pools 0..2
     private to workers 0..2; pool 3 shared by everyone. *)
  let shared = spawn_home rt ~home:3 "s" in
  (* Any active worker can pick the shared thread. *)
  let got = rt.sched.next rt (worker rt 1) in
  Alcotest.(check bool) "shared reachable from w1" true (is_u got shared)

let test_packing_preempted_returns_home () =
  let rt = make_rt ~workers:4 (Sched_packing.make ()) in
  (* N_active=3: pool 3 is in the shared range. *)
  Runtime.set_active_workers rt 3;
  let t = spawn_home rt ~home:3 "t" in
  (* Simulate: worker 0 ran it and it got preempted. *)
  (match rt.sched.next rt (worker rt 0) with
  | Some u when u == t -> ()
  | _ -> Alcotest.fail "expected to pick t");
  t.ustate <- U_ready;
  rt.sched.on_preempted rt (worker rt 0) t;
  (* It must be back in pool 3 (its home), reachable via the shared scan
     by worker 1 too. *)
  let got = rt.sched.next rt (worker rt 1) in
  Alcotest.(check bool) "back in home pool" true (is_u got t)

let test_packing_full_active_behaves_locally () =
  let rt = make_rt ~workers:4 (Sched_packing.make ()) in
  (* All active: every pool is private to its own worker. *)
  let t2 = spawn_home rt ~home:2 "t2" in
  Alcotest.(check bool) "w2 finds own" true (is_u (rt.sched.next rt (worker rt 2)) t2);
  let t0 = spawn_home rt ~home:0 "t0" in
  Alcotest.(check bool) "w1 cannot reach w0's private pool" true
    (is_none (rt.sched.next rt (worker rt 1)));
  Alcotest.(check bool) "w0 can" true (is_u (rt.sched.next rt (worker rt 0)) t0)

(* --------------------------------------------------------------- *)
(* Priority scheduler. *)

let test_priority_sim_before_analysis () =
  let rt = make_rt (Sched_priority.make ()) in
  let analysis = spawn_home rt ~home:0 ~priority:1 "an" in
  let sim = spawn_home rt ~home:0 ~priority:0 "sim" in
  let w = worker rt 0 in
  Alcotest.(check bool) "sim first" true (is_u (rt.sched.next rt w) sim);
  Alcotest.(check bool) "then analysis" true (is_u (rt.sched.next rt w) analysis)

let test_priority_steals_sim_across_workers () =
  let rt = make_rt (Sched_priority.make ()) in
  let analysis = spawn_home rt ~home:0 ~priority:1 "an" in
  let sim = spawn_home rt ~home:2 ~priority:0 "sim" in
  (* Worker 0 has local analysis but must steal the remote sim first. *)
  let got = rt.sched.next rt (worker rt 0) in
  Alcotest.(check bool) "remote sim preferred" true (is_u got sim);
  Alcotest.(check bool) "then local analysis" true
    (is_u (rt.sched.next rt (worker rt 0)) analysis)

let test_priority_analysis_is_lifo () =
  let rt = make_rt (Sched_priority.make ()) in
  let a1 = spawn_home rt ~home:0 ~priority:1 "a1" in
  let a2 = spawn_home rt ~home:0 ~priority:1 "a2" in
  ignore a1;
  let w = worker rt 0 in
  (* LIFO: the most recently pushed analysis thread runs first (cache). *)
  Alcotest.(check bool) "lifo pick" true (is_u (rt.sched.next rt w) a2)

let prop_packing_no_thread_lost =
  QCheck.Test.make ~name:"packing: every spawned thread is reachable" ~count:50
    QCheck.(pair (int_bound 20) (int_bound 3))
    (fun (n_threads, active_minus1) ->
      let rt = make_rt ~workers:4 (Sched_packing.make ()) in
      Runtime.set_active_workers rt (active_minus1 + 1);
      let spawned =
        List.init n_threads (fun i -> spawn_home rt ~home:(i mod 4) (Printf.sprintf "t%d" i))
      in
      (* Drain using only the active workers. *)
      let drained = ref [] in
      let continue = ref true in
      while !continue do
        continue := false;
        for w = 0 to Runtime.n_active rt - 1 do
          match rt.sched.next rt (worker rt w) with
          | Some u ->
              drained := u :: !drained;
              continue := true
          | None -> ()
        done
      done;
      List.length !drained = List.length spawned
      && List.for_all (fun u -> List.memq u !drained) spawned)

let suite =
  [
    Alcotest.test_case "ws: own queue first" `Quick test_ws_prefers_own_queue;
    Alcotest.test_case "ws: steals when empty" `Quick test_ws_steals_when_empty;
    Alcotest.test_case "ws: FIFO within queue" `Quick test_ws_fifo_order_within_queue;
    Alcotest.test_case "packing: private partition" `Quick test_packing_private_pools_partition;
    Alcotest.test_case "packing: shared pools" `Quick test_packing_shared_pools_when_indivisible;
    Alcotest.test_case "packing: preempted goes home" `Quick test_packing_preempted_returns_home;
    Alcotest.test_case "packing: all-active locality" `Quick test_packing_full_active_behaves_locally;
    Alcotest.test_case "priority: sim before analysis" `Quick test_priority_sim_before_analysis;
    Alcotest.test_case "priority: steals sim first" `Quick test_priority_steals_sim_across_workers;
    Alcotest.test_case "priority: analysis LIFO" `Quick test_priority_analysis_is_lifo;
    QCheck_alcotest.to_alcotest prop_packing_no_thread_lost;
  ]
