(* Cross-cutting smaller behaviours: the MKL team model, config naming,
   cost-model invariants, and the SCHED_FIFO in-situ ablation. *)

open Desim
open Oskern
open Preempt_core

let small = Machine.with_cores Machine.skylake 4

(* ---------------- Blas_model ---------------- *)

let run_ult_team ~kind ~style ~inner =
  let eng = Engine.create () in
  let kernel = Kernel.create eng small in
  let rt = Runtime.create kernel ~n_workers:4 in
  let finish = ref 0.0 in
  ignore
    (Runtime.spawn rt ~kind ~name:"task" (fun () ->
         Linalg.Blas_model.ult_team_compute rt ~kind ~style ~seconds:0.02 ~inner;
         finish := Ult.now ()));
  Runtime.start rt;
  Engine.run ~until:2.0 eng;
  (!finish, Runtime.unfinished rt)

let test_team_parallelizes () =
  let t1, left1 = run_ult_team ~kind:Types.Nonpreemptive ~style:Linalg.Blas_model.Yield_wait ~inner:1 in
  let t4, left4 = run_ult_team ~kind:Types.Nonpreemptive ~style:Linalg.Blas_model.Yield_wait ~inner:4 in
  Alcotest.(check int) "all done (1)" 0 left1;
  Alcotest.(check int) "all done (4)" 0 left4;
  (* 20 ms of team work over 4 workers: ~5 ms. *)
  if t4 > t1 /. 2.5 then Alcotest.failf "no speedup: %f vs %f" t4 t1

let test_busywait_team_on_free_cores_completes () =
  let t, left = run_ult_team ~kind:Types.Nonpreemptive ~style:Linalg.Blas_model.Busy_wait ~inner:4 in
  Alcotest.(check int) "completes when cores free" 0 left;
  Alcotest.(check bool) "took some time" true (t > 0.0)

let test_omp_team_compute () =
  let eng = Engine.create () in
  let kernel = Kernel.create eng small in
  let omp = Ompmodel.Omp.create kernel ~blocktime:0.0 () in
  let finish = ref 0.0 in
  ignore
    (Kernel.spawn kernel ~name:"main" (fun master ->
         Linalg.Blas_model.omp_team_compute omp ~master ~seconds:0.02 ~inner:4;
         finish := Kernel.now kernel;
         Ompmodel.Omp.shutdown omp));
  Engine.run eng;
  if !finish > 0.012 || !finish < 0.005 then Alcotest.failf "omp team time %f" !finish

(* ---------------- names and configs ---------------- *)

let test_config_names () =
  Alcotest.(check string) "none" "none" (Config.timer_strategy_name Config.No_timer);
  Alcotest.(check string) "aligned" "per-worker (aligned)"
    (Config.timer_strategy_name Config.Per_worker_aligned);
  let n =
    Linalg.Cholesky_run.config_name
      (Linalg.Cholesky_run.Bolt
         {
           kind = Types.Klt_switching;
           mkl = Linalg.Blas_model.Busy_wait;
           timer = Config.Per_worker_aligned;
           interval = 1e-3;
         })
  in
  Alcotest.(check bool) "mentions interval" true (Astring_contains.contains n "1ms");
  Alcotest.(check string) "iomp flat" "IOMP (flat)"
    (Linalg.Cholesky_run.config_name (Linalg.Cholesky_run.Iomp { flat = true }));
  Alcotest.(check string) "insitu name" "Argobots (w/ priority)"
    (Moldyn.Insitu_run.config_name { Moldyn.Insitu_run.rk = Argobots; priority = true });
  Alcotest.(check string) "packing name" "BOLT (nonpreemptive)"
    (Multigrid.Packing_run.config_name
       (Multigrid.Packing_run.Bolt_packing
          { kind = Types.Nonpreemptive; timer = Config.No_timer; interval = 1e-3 }))

(* ---------------- cost model invariants ---------------- *)

let test_cost_model_invariants () =
  List.iter
    (fun (m : Machine.t) ->
      let c = m.Machine.costs in
      Alcotest.(check bool) "ult switch < klt switch" true
        (c.Machine.ult_ctx_switch < c.Machine.klt_ctx_switch);
      Alcotest.(check bool) "signal costs positive" true
        (c.Machine.signal_lock_hold > 0.0 && c.Machine.signal_handler_entry > 0.0);
      Alcotest.(check bool) "slices sane" true
        (c.Machine.min_granularity <= c.Machine.sched_latency))
    [ Machine.skylake; Machine.knl ];
  (* KNL syscall-ish costs scale up vs Skylake. *)
  Alcotest.(check bool) "knl pricier" true
    (Machine.knl.Machine.costs.Machine.klt_ctx_switch
    > Machine.skylake.Machine.costs.Machine.klt_ctx_switch)

(* ---------------- SCHED_FIFO in-situ ablation ---------------- *)

let test_fifo_ablation_runs_and_prioritizes () =
  let machine = Machine.with_cores Machine.skylake 8 in
  let atoms = 7e5 and steps = 4 in
  let base =
    Moldyn.Insitu_run.run ~machine ~workers:8 ~atoms ~steps ~analysis_interval:None
      { Moldyn.Insitu_run.rk = Argobots; priority = true }
  in
  let fifo =
    Moldyn.Insitu_run.run_pthreads_fifo ~machine ~workers:8 ~atoms ~steps
      ~analysis_interval:(Some 2) ()
  in
  Alcotest.(check bool) "completes" true (fifo.Moldyn.Insitu_run.time > 0.0);
  (* Strict RT priority: simulation is never delayed; total time is the
     baseline plus at most a trailing analysis tail. *)
  Alcotest.(check bool) "no pathological overhead" true
    (fifo.time < base.Moldyn.Insitu_run.time *. 1.6)

(* ---------------- fmg profile edges ---------------- *)

let test_profile_invalid () =
  Alcotest.check_raises "levels < 2" (Invalid_argument "Fmg_profile.phases: levels < 2")
    (fun () -> ignore (Multigrid.Fmg_profile.phases ~levels:1 ~total_core_seconds:1.0))

let test_profile_scaling_linear () =
  let p1 = Multigrid.Fmg_profile.phases ~levels:5 ~total_core_seconds:1.0 in
  let p2 = Multigrid.Fmg_profile.phases ~levels:5 ~total_core_seconds:2.0 in
  Alcotest.(check int) "same structure" (List.length p1) (List.length p2);
  List.iter2
    (fun (a : Multigrid.Fmg_profile.phase) (b : Multigrid.Fmg_profile.phase) ->
      Alcotest.(check (float 1e-9)) "double" (a.work *. 2.0) b.work)
    p1 p2

let test_recommend_kind () =
  (* Paper 3.4 verbatim. *)
  Alcotest.(check bool) "no preemption -> nonpreemptive" true
    (Config.recommend_kind ~needs_preemption:false ~klt_dependent:None = `Nonpreemptive);
  Alcotest.(check bool) "KLT-independent -> signal-yield" true
    (Config.recommend_kind ~needs_preemption:true ~klt_dependent:(Some false)
    = `Signal_yield);
  Alcotest.(check bool) "KLT-dependent -> KLT-switching" true
    (Config.recommend_kind ~needs_preemption:true ~klt_dependent:(Some true)
    = `Klt_switching);
  Alcotest.(check bool) "unknown (third-party) -> KLT-switching" true
    (Config.recommend_kind ~needs_preemption:true ~klt_dependent:None = `Klt_switching)

let test_stats_summary () =
  let eng = Engine.create () in
  let kernel = Kernel.create eng small in
  let config =
    {
      Config.default with
      Config.timer_strategy = Config.Per_worker_aligned;
      interval = 1e-3;
    }
  in
  let rt = Runtime.create ~config kernel ~n_workers:4 in
  ignore
    (Runtime.spawn rt ~kind:Types.Signal_yield ~name:"w" (fun () -> Ult.compute 5e-3));
  Runtime.start rt;
  Engine.run eng;
  let s = Runtime.stats_summary rt in
  Alcotest.(check bool) "mentions workers" true (Astring_contains.contains s "4 workers");
  Alcotest.(check bool) "per-worker lines" true (Astring_contains.contains s "worker0");
  Alcotest.(check bool) "signals" true (Astring_contains.contains s "signals honored")

let suite =
  [
    Alcotest.test_case "ULT team parallelizes" `Quick test_team_parallelizes;
    Alcotest.test_case "busy-wait team completes when free" `Quick
      test_busywait_team_on_free_cores_completes;
    Alcotest.test_case "omp team compute" `Quick test_omp_team_compute;
    Alcotest.test_case "config names" `Quick test_config_names;
    Alcotest.test_case "cost model invariants" `Quick test_cost_model_invariants;
    Alcotest.test_case "SCHED_FIFO ablation" `Quick test_fifo_ablation_runs_and_prioritizes;
    Alcotest.test_case "fmg profile invalid" `Quick test_profile_invalid;
    Alcotest.test_case "fmg profile scales linearly" `Quick test_profile_scaling_linear;
    Alcotest.test_case "runtime stats summary" `Quick test_stats_summary;
    Alcotest.test_case "3.4 thread-type guidance" `Quick test_recommend_kind;
  ]
