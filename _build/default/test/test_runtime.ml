open Desim
open Oskern
open Preempt_core

let make ?(cores = 4) ?(workers = 4) ?(config = Config.default) () =
  let eng = Engine.create () in
  let kernel = Kernel.create eng (Machine.with_cores Machine.skylake cores) in
  let rt = Runtime.create ~config kernel ~n_workers:workers in
  (eng, kernel, rt)

let preemptive_config strategy interval =
  { Config.default with Config.timer_strategy = strategy; interval }

let test_single_ult () =
  let eng, _k, rt = make ~cores:1 ~workers:1 () in
  let done_at = ref 0.0 in
  let u =
    Runtime.spawn rt ~name:"solo" (fun () ->
        Ult.compute 0.01;
        done_at := Ult.now ())
  in
  Runtime.start rt;
  Engine.run eng;
  if !done_at < 0.01 || !done_at > 0.0102 then Alcotest.failf "done at %f" !done_at;
  Alcotest.(check bool) "finished" true (Ult.finished u);
  Alcotest.(check int) "none unfinished" 0 (Runtime.unfinished rt);
  Alcotest.(check bool) "stopped" true (Runtime.is_stopping rt)

let test_parallel_ults () =
  let eng, _k, rt = make ~cores:4 ~workers:4 () in
  let finish = ref [] in
  for i = 0 to 3 do
    ignore
      (Runtime.spawn rt ~name:(Printf.sprintf "u%d" i) (fun () ->
           Ult.compute 0.02;
           finish := Ult.now () :: !finish))
  done;
  Runtime.start rt;
  Engine.run eng;
  List.iter (fun t -> if t > 0.021 then Alcotest.failf "not parallel: %f" t) !finish

let test_more_ults_than_workers () =
  let eng, _k, rt = make ~cores:2 ~workers:2 () in
  let last_finish = ref 0.0 in
  for i = 0 to 7 do
    ignore
      (Runtime.spawn rt ~name:(Printf.sprintf "u%d" i) (fun () ->
           Ult.compute 0.01;
           last_finish := Float.max !last_finish (Ult.now ())))
  done;
  Runtime.start rt;
  Engine.run eng;
  (* 80 ms of work across 2 workers: nonpreemptive run-to-completion is
     work-conserving. *)
  if !last_finish < 0.04 || !last_finish > 0.041 then
    Alcotest.failf "makespan %f" !last_finish

let test_work_stealing_spreads () =
  (* All threads start in worker 0's pool; stealing must spread them. *)
  let eng, _k, rt = make ~cores:4 ~workers:4 () in
  for i = 0 to 3 do
    ignore (Runtime.spawn rt ~home:0 ~name:(Printf.sprintf "u%d" i) (fun () -> Ult.compute 0.02))
  done;
  Runtime.start rt;
  Engine.run eng;
  let t = Engine.now eng in
  if t > 0.025 then Alcotest.failf "stealing failed: makespan %f" t

let test_yield_interleaves () =
  let eng, _k, rt = make ~cores:1 ~workers:1 () in
  let log = ref [] in
  for i = 0 to 1 do
    ignore
      (Runtime.spawn rt ~name:(Printf.sprintf "y%d" i) (fun () ->
           for _ = 1 to 3 do
             Ult.compute 1e-4;
             log := i :: !log;
             Ult.yield ()
           done))
  done;
  Runtime.start rt;
  Engine.run eng;
  Alcotest.(check (list int)) "alternating" [ 0; 1; 0; 1; 0; 1 ] (List.rev !log)

let test_spawn_from_ult () =
  let eng, _k, rt = make () in
  let child_done = ref false in
  ignore
    (Runtime.spawn rt ~name:"parent" (fun () ->
         Ult.compute 1e-3;
         ignore
           (Runtime.spawn rt ~name:"child" (fun () ->
                Ult.compute 1e-3;
                child_done := true))));
  Runtime.start rt;
  Engine.run eng;
  Alcotest.(check bool) "child ran" true !child_done

let test_nonpreemptive_hogs () =
  (* Without preemption a long-running thread starves queued ones: the
     short thread finishes only after the hog. *)
  let eng, _k, rt = make ~cores:1 ~workers:1 () in
  let short_done = ref 0.0 in
  ignore (Runtime.spawn rt ~home:0 ~name:"hog" (fun () -> Ult.compute 0.1));
  ignore
    (Runtime.spawn rt ~home:0 ~name:"short" (fun () ->
         Ult.compute 1e-3;
         short_done := Ult.now ()));
  Runtime.start rt;
  Engine.run eng;
  if !short_done < 0.1 then Alcotest.failf "short ran before hog finished: %f" !short_done

let test_signal_yield_timeslices () =
  (* Same scenario as above but preemptive: the short thread no longer
     waits for the hog. *)
  let config = preemptive_config Config.Per_worker_aligned 1e-3 in
  let eng, _k, rt = make ~cores:1 ~workers:1 ~config () in
  let short_done = ref 0.0 in
  ignore (Runtime.spawn rt ~kind:Types.Signal_yield ~home:0 ~name:"hog" (fun () -> Ult.compute 0.1));
  ignore
    (Runtime.spawn rt ~kind:Types.Signal_yield ~home:0 ~name:"short" (fun () ->
         Ult.compute 1e-3;
         short_done := Ult.now ()));
  Runtime.start rt;
  Engine.run eng;
  if !short_done > 0.01 then Alcotest.failf "preemption did not help: %f" !short_done;
  Alcotest.(check bool) "preemptions happened" true (Runtime.preempt_signals rt > 0)

let test_signal_yield_fair_finish () =
  let config = preemptive_config Config.Per_worker_aligned 1e-3 in
  let eng, _k, rt = make ~cores:1 ~workers:1 ~config () in
  let finish = Array.make 2 0.0 in
  for i = 0 to 1 do
    ignore
      (Runtime.spawn rt ~kind:Types.Signal_yield ~home:0 ~name:(Printf.sprintf "s%d" i)
         (fun () ->
           Ult.compute 0.05;
           finish.(i) <- Ult.now ()))
  done;
  Runtime.start rt;
  Engine.run eng;
  (* Round-robin at 1 ms: both finish within ~one interval of each other. *)
  let d = Float.abs (finish.(0) -. finish.(1)) in
  if d > 0.004 then Alcotest.failf "unfair spread %f (%f vs %f)" d finish.(0) finish.(1)

let test_klt_switching_basic () =
  let config = preemptive_config Config.Per_worker_aligned 1e-3 in
  let eng, _k, rt = make ~cores:1 ~workers:1 ~config () in
  let finish = Array.make 2 0.0 in
  for i = 0 to 1 do
    ignore
      (Runtime.spawn rt ~kind:Types.Klt_switching ~home:0 ~name:(Printf.sprintf "k%d" i)
         (fun () ->
           Ult.compute 0.05;
           finish.(i) <- Ult.now ()))
  done;
  Runtime.start rt;
  Engine.run eng;
  Alcotest.(check bool) "switches happened" true (Runtime.klt_switches rt > 0);
  Alcotest.(check bool) "extra KLTs created" true (Runtime.klts_created rt >= 1);
  (* Preemptive sharing: both finish well before a run-to-completion
     schedule would allow (sequential: first at 0.05), and the combined
     100 ms of work completes with small overhead. *)
  let first = Float.min finish.(0) finish.(1) in
  let last = Float.max finish.(0) finish.(1) in
  if first < 0.08 then Alcotest.failf "not time-shared: first finish %f" first;
  if last > 0.105 then Alcotest.failf "too much overhead: %f" last

let test_klt_switching_sigsuspend_mode () =
  let config =
    {
      (preemptive_config Config.Per_worker_aligned 1e-3) with
      Config.suspend_mode = Config.Sigsuspend;
    }
  in
  let eng, _k, rt = make ~cores:1 ~workers:1 ~config () in
  let finished = ref 0 in
  for i = 0 to 1 do
    ignore
      (Runtime.spawn rt ~kind:Types.Klt_switching ~home:0 ~name:(Printf.sprintf "k%d" i)
         (fun () ->
           Ult.compute 0.03;
           incr finished))
  done;
  Runtime.start rt;
  Engine.run eng;
  Alcotest.(check int) "both finish under sigsuspend mode" 2 !finished;
  Alcotest.(check bool) "switches happened" true (Runtime.klt_switches rt > 0)

let test_busy_wait_deadlock_nonpreemptive () =
  (* The paper's motivating failure: a nonpreemptive thread busy-waits on
     a flag that only a queued thread can set. *)
  let eng, _k, rt = make ~cores:1 ~workers:1 () in
  let flag = ref false in
  ignore
    (Runtime.spawn rt ~home:0 ~name:"spinner" (fun () ->
         while not !flag do
           Ult.compute 20e-6
         done));
  ignore (Runtime.spawn rt ~home:0 ~name:"setter" (fun () -> flag := true));
  Runtime.start rt;
  Engine.run ~until:0.05 eng;
  Alcotest.(check int) "deadlocked: both unfinished" 2 (Runtime.unfinished rt)

let test_busy_wait_rescued_by_preemption () =
  let config = preemptive_config Config.Per_worker_aligned 1e-3 in
  let eng, _k, rt = make ~cores:1 ~workers:1 ~config () in
  let flag = ref false in
  ignore
    (Runtime.spawn rt ~kind:Types.Signal_yield ~home:0 ~name:"spinner" (fun () ->
         while not !flag do
           Ult.compute 20e-6
         done));
  ignore (Runtime.spawn rt ~home:0 ~name:"setter" (fun () -> flag := true));
  Runtime.start rt;
  Engine.run ~until:0.5 eng;
  Alcotest.(check int) "no deadlock" 0 (Runtime.unfinished rt)

let test_mixed_thread_types () =
  let config = preemptive_config Config.Per_worker_aligned 1e-3 in
  let eng, _k, rt = make ~cores:2 ~workers:2 ~config () in
  let finished = ref 0 in
  let mk kind name = ignore (Runtime.spawn rt ~kind ~name (fun () -> Ult.compute 5e-3; incr finished)) in
  mk Types.Nonpreemptive "np";
  mk Types.Signal_yield "sy";
  mk Types.Klt_switching "ks";
  Runtime.start rt;
  Engine.run eng;
  Alcotest.(check int) "all kinds coexist" 3 !finished

let test_join () =
  let eng, _k, rt = make () in
  let order = ref [] in
  let a =
    Runtime.spawn rt ~name:"a" (fun () ->
        Ult.compute 5e-3;
        order := "a" :: !order)
  in
  ignore
    (Runtime.spawn rt ~name:"b" (fun () ->
         Usync.join rt a;
         order := "b" :: !order));
  Runtime.start rt;
  Engine.run eng;
  Alcotest.(check (list string)) "join ordering" [ "a"; "b" ] (List.rev !order)

let test_mutex_exclusion () =
  let eng, _k, rt = make ~cores:4 ~workers:4 () in
  let m = Usync.Mutex.create rt in
  let inside = ref 0 and peak = ref 0 in
  for i = 0 to 3 do
    ignore
      (Runtime.spawn rt ~name:(Printf.sprintf "m%d" i) (fun () ->
           Usync.Mutex.lock m;
           incr inside;
           if !inside > !peak then peak := !inside;
           Ult.compute 1e-3;
           decr inside;
           Usync.Mutex.unlock m))
  done;
  Runtime.start rt;
  Engine.run eng;
  Alcotest.(check int) "mutual exclusion" 1 !peak

let test_barrier () =
  let eng, _k, rt = make ~cores:4 ~workers:4 () in
  let b = Usync.Barrier.create rt 4 in
  let after = ref [] in
  for i = 0 to 3 do
    ignore
      (Runtime.spawn rt ~name:(Printf.sprintf "b%d" i) (fun () ->
           Ult.compute (float_of_int (i + 1) *. 1e-3);
           Usync.Barrier.wait b;
           after := Ult.now () :: !after))
  done;
  Runtime.start rt;
  Engine.run eng;
  (* All leave the barrier at/after the slowest arrival (4 ms). *)
  List.iter (fun t -> if t < 0.004 then Alcotest.failf "left barrier early: %f" t) !after;
  Alcotest.(check int) "all passed" 4 (List.length !after)

let test_ivar_channel () =
  let eng, _k, rt = make ~cores:2 ~workers:2 () in
  let iv = Usync.Ivar.create rt in
  let ch = Usync.Channel.create rt in
  let got = ref (-1) and sum = ref 0 in
  ignore
    (Runtime.spawn rt ~name:"producer" (fun () ->
         Ult.compute 1e-3;
         Usync.Ivar.fill iv 42;
         for i = 1 to 3 do
           Usync.Channel.send ch i
         done));
  ignore
    (Runtime.spawn rt ~name:"consumer" (fun () ->
         got := Usync.Ivar.read iv;
         for _ = 1 to 3 do
           sum := !sum + Usync.Channel.recv ch
         done));
  Runtime.start rt;
  Engine.run eng;
  Alcotest.(check int) "ivar" 42 !got;
  Alcotest.(check int) "channel" 6 !sum

let test_packing_scheduler_runs_all () =
  (* 4 workers, 8 threads, then pack to 2 active workers: everything
     still completes, executed by the active workers. *)
  let config = preemptive_config Config.Per_worker_aligned 1e-3 in
  let eng, kernel, rt =
    let eng = Engine.create () in
    let kernel = Kernel.create eng (Machine.with_cores Machine.skylake 4) in
    let rt =
      Runtime.create ~config ~scheduler:(Sched_packing.make ()) kernel ~n_workers:4
    in
    (eng, kernel, rt)
  in
  ignore kernel;
  let finished = ref 0 in
  for i = 0 to 7 do
    ignore
      (Runtime.spawn rt ~kind:Types.Klt_switching ~home:i ~name:(Printf.sprintf "p%d" i)
         (fun () ->
           Ult.compute 0.01;
           incr finished))
  done;
  Runtime.start rt;
  ignore (Engine.after eng 0.002 (fun () -> Runtime.set_active_workers rt 2));
  Engine.run ~until:1.0 eng;
  Alcotest.(check int) "all finished under packing" 8 !finished;
  Alcotest.(check int) "2 active" 2 (Runtime.n_active rt);
  (* 80 ms of work on mostly 2 cores: makespan near 40 ms, far below the
     1-core or broken-scheduler cases. *)
  let t = Engine.now eng in
  if t > 0.06 then Alcotest.failf "packing too slow: %f" t

let test_priority_scheduler_orders () =
  let eng, _k, rt =
    let eng = Engine.create () in
    let kernel = Kernel.create eng (Machine.with_cores Machine.skylake 1) in
    let rt = Runtime.create ~scheduler:(Sched_priority.make ()) kernel ~n_workers:1 in
    (eng, kernel, rt)
  in
  let order = ref [] in
  (* Spawn low-priority (analysis) first; the high-priority (simulation)
     thread must still run first. *)
  ignore
    (Runtime.spawn rt ~priority:1 ~home:0 ~name:"analysis" (fun () ->
         Ult.compute 1e-3;
         order := "analysis" :: !order));
  ignore
    (Runtime.spawn rt ~priority:0 ~home:0 ~name:"sim" (fun () ->
         Ult.compute 1e-3;
         order := "sim" :: !order));
  Runtime.start rt;
  Engine.run eng;
  Alcotest.(check (list string)) "sim first" [ "sim"; "analysis" ] (List.rev !order)

let test_interrupt_stats_recorded () =
  let config = preemptive_config Config.Per_worker_aligned 1e-3 in
  let eng, _k, rt = make ~cores:2 ~workers:2 ~config () in
  for i = 0 to 1 do
    ignore
      (Runtime.spawn rt ~kind:Types.Signal_yield ~home:i ~name:(Printf.sprintf "w%d" i)
         (fun () -> Ult.compute 0.02))
  done;
  Runtime.start rt;
  Engine.run eng;
  let s = Runtime.interrupt_stats rt in
  Alcotest.(check bool) "samples recorded" true (Stats.count s > 10);
  (* Aligned timers on an idle-ish system: ~handler cost, microseconds. *)
  if Stats.mean s > 20e-6 then Alcotest.failf "interrupt time too high: %g" (Stats.mean s)

let test_preempt_latency_recorded () =
  let config = preemptive_config Config.Per_worker_aligned 1e-3 in
  let eng, _k, rt = make ~cores:1 ~workers:1 ~config () in
  for i = 0 to 1 do
    ignore
      (Runtime.spawn rt ~kind:Types.Signal_yield ~home:0 ~name:(Printf.sprintf "s%d" i)
         (fun () -> Ult.compute 0.02))
  done;
  Runtime.start rt;
  Engine.run eng;
  let s = Runtime.preempt_latency_stats rt in
  Alcotest.(check bool) "latency samples" true (Stats.count s > 5);
  let med = Stats.median s in
  (* Signal-yield preemption costs a few microseconds (paper Table 1:
     3.5 us on Skylake). *)
  if med < 0.5e-6 || med > 20e-6 then Alcotest.failf "median latency %g" med

let test_per_process_chain_reaches_workers () =
  let config = preemptive_config Config.Per_process_chain 1e-3 in
  let eng, _k, rt = make ~cores:4 ~workers:4 ~config () in
  let preempted = Array.make 4 false in
  for i = 0 to 3 do
    ignore
      (Runtime.spawn rt ~kind:Types.Signal_yield ~home:i ~name:(Printf.sprintf "c%d" i)
         (fun () ->
           Ult.compute 0.02;
           preempted.(i) <- Ult.preemptions (Ult.self ()) > 0))
  done;
  Runtime.start rt;
  Engine.run eng;
  Array.iteri
    (fun i p -> if not p then Alcotest.failf "worker %d never preempted via chain" i)
    preempted

let test_no_timer_means_no_preemption () =
  let eng, _k, rt = make ~cores:1 ~workers:1 () in
  let u = Runtime.spawn rt ~kind:Types.Signal_yield ~home:0 ~name:"s" (fun () -> Ult.compute 0.02) in
  Runtime.start rt;
  Engine.run eng;
  Alcotest.(check int) "no preemptions without timer" 0 (Ult.preemptions u)

let test_dynamic_interval () =
  let config = preemptive_config Config.Per_worker_aligned 10e-3 in
  let eng, _k, rt = make ~cores:1 ~workers:1 ~config () in
  let u =
    Runtime.spawn rt ~kind:Types.Signal_yield ~home:0 ~name:"spin" (fun () ->
        Ult.compute 0.05)
  in
  ignore (Runtime.spawn rt ~kind:Types.Signal_yield ~home:0 ~name:"peer" (fun () ->
       Ult.compute 0.05));
  Runtime.start rt;
  Alcotest.(check (float 0.0)) "initial interval" 10e-3 (Runtime.preemption_interval rt);
  (* Tighten the interval mid-run: preemption rate jumps by ~10x. *)
  ignore (Engine.after eng 0.02 (fun () -> Runtime.set_preemption_interval rt 1e-3));
  Engine.run eng;
  Alcotest.(check (float 0.0)) "new interval" 1e-3 (Runtime.preemption_interval rt);
  (* 100 ms of work: ~2 preemptions in the first 20 ms, then ~80 at 1 ms:
     far more than the ~10 a pure 10 ms timer would deliver. *)
  if Ult.preemptions u + Runtime.preempt_signals rt < 20 then
    Alcotest.failf "interval change had no effect: %d signals" (Runtime.preempt_signals rt)

let test_stop_is_idempotent () =
  let eng, _k, rt = make () in
  ignore (Runtime.spawn rt ~name:"x" (fun () -> Ult.compute 1e-3));
  Runtime.start rt;
  Engine.run eng;
  Runtime.stop rt;
  Runtime.stop rt;
  Alcotest.(check bool) "still stopped" true (Runtime.is_stopping rt)

let suite =
  [
    Alcotest.test_case "single ULT" `Quick test_single_ult;
    Alcotest.test_case "parallel ULTs" `Quick test_parallel_ults;
    Alcotest.test_case "more ULTs than workers" `Quick test_more_ults_than_workers;
    Alcotest.test_case "work stealing spreads" `Quick test_work_stealing_spreads;
    Alcotest.test_case "yield interleaves" `Quick test_yield_interleaves;
    Alcotest.test_case "spawn from ULT" `Quick test_spawn_from_ult;
    Alcotest.test_case "nonpreemptive hogs" `Quick test_nonpreemptive_hogs;
    Alcotest.test_case "signal-yield timeslices" `Quick test_signal_yield_timeslices;
    Alcotest.test_case "signal-yield fair finish" `Quick test_signal_yield_fair_finish;
    Alcotest.test_case "KLT-switching basic" `Quick test_klt_switching_basic;
    Alcotest.test_case "KLT-switching sigsuspend mode" `Quick test_klt_switching_sigsuspend_mode;
    Alcotest.test_case "busy-wait deadlock (nonpreemptive)" `Quick test_busy_wait_deadlock_nonpreemptive;
    Alcotest.test_case "busy-wait rescued by preemption" `Quick test_busy_wait_rescued_by_preemption;
    Alcotest.test_case "mixed thread types" `Quick test_mixed_thread_types;
    Alcotest.test_case "join" `Quick test_join;
    Alcotest.test_case "ULT mutex exclusion" `Quick test_mutex_exclusion;
    Alcotest.test_case "ULT barrier" `Quick test_barrier;
    Alcotest.test_case "ivar + channel" `Quick test_ivar_channel;
    Alcotest.test_case "packing scheduler completes" `Quick test_packing_scheduler_runs_all;
    Alcotest.test_case "priority scheduler orders" `Quick test_priority_scheduler_orders;
    Alcotest.test_case "interrupt stats recorded" `Quick test_interrupt_stats_recorded;
    Alcotest.test_case "preempt latency recorded" `Quick test_preempt_latency_recorded;
    Alcotest.test_case "per-process chain reaches workers" `Quick test_per_process_chain_reaches_workers;
    Alcotest.test_case "no timer, no preemption" `Quick test_no_timer_means_no_preemption;
    Alcotest.test_case "dynamic preemption interval" `Quick test_dynamic_interval;
    Alcotest.test_case "stop idempotent" `Quick test_stop_is_idempotent;
  ]
