open Linalg

let test_dag_sizes () =
  (* T tiles: T potrf + T(T-1)/2 trsm + T(T-1)/2 syrk + T(T-1)(T-2)/6 gemm. *)
  let count t =
    let tasks = Tiled.dag t in
    let p = ref 0 and tr = ref 0 and sy = ref 0 and ge = ref 0 in
    Array.iter
      (fun (tk : Tiled.task) ->
        match tk.op with
        | Tiled.Potrf _ -> incr p
        | Tiled.Trsm _ -> incr tr
        | Tiled.Syrk _ -> incr sy
        | Tiled.Gemm _ -> incr ge)
      tasks;
    (!p, !tr, !sy, !ge)
  in
  Alcotest.(check (pair (pair int int) (pair int int)))
    "t=4"
    ((4, 6), (6, 4))
    (let a, b, c, d = count 4 in
     ((a, b), (c, d)));
  let a, b, c, d = count 6 in
  Alcotest.(check int) "potrf" 6 a;
  Alcotest.(check int) "trsm" 15 b;
  Alcotest.(check int) "syrk" 15 c;
  Alcotest.(check int) "gemm" 20 d

let test_dag_program_order_valid () =
  (* Every task's predecessors have smaller ids (program order). *)
  Array.iter
    (fun (tk : Tiled.task) ->
      List.iter (fun p -> if p >= tk.id then Alcotest.failf "forward dep %d -> %d" tk.id p)
        tk.preds)
    (Tiled.dag 8)

let test_dag_succs_match_preds () =
  let tasks = Tiled.dag 6 in
  Array.iter
    (fun (tk : Tiled.task) ->
      List.iter
        (fun s ->
          if not (List.mem tk.id tasks.(s).Tiled.preds) then
            Alcotest.failf "succ %d of %d lacks back-edge" s tk.id)
        tk.succs)
    tasks

let test_first_task_is_potrf0 () =
  let tasks = Tiled.dag 5 in
  (match tasks.(0).Tiled.op with
  | Tiled.Potrf 0 -> ()
  | op -> Alcotest.failf "first task is %s" (Tiled.op_name op));
  Alcotest.(check (list int)) "no deps" [] tasks.(0).Tiled.preds

let test_trsm_depends_on_potrf () =
  let tasks = Tiled.dag 4 in
  Array.iter
    (fun (tk : Tiled.task) ->
      match tk.op with
      | Tiled.Trsm (_, k) ->
          let dep_ok =
            List.exists
              (fun p -> match tasks.(p).Tiled.op with Tiled.Potrf k' -> k' = k | _ -> false)
              tk.preds
          in
          if not dep_ok then Alcotest.failf "%s lacks potrf dep" (Tiled.op_name tk.op)
      | _ -> ())
    tasks

let test_critical_path_bounds () =
  let b = 10 in
  let total = Tiled.total_flops 6 ~b in
  let cp = Tiled.critical_path_flops 6 ~b in
  Alcotest.(check bool) "cp <= total" true (cp <= total);
  Alcotest.(check bool) "cp > single task" true (cp > Matrix.flops_potrf b);
  (* t=1: the only task is potrf. *)
  Alcotest.(check (float 1e-9)) "t=1 cp" (Matrix.flops_potrf b) (Tiled.critical_path_flops 1 ~b)

let test_tiled_factorize_matches_reference () =
  let r = Desim.Rng.make 77 in
  let a = Matrix.random_spd r 24 in
  let l_ref = Matrix.cholesky a in
  let l_tiled = Tiled.factorize a ~t:4 in
  let rel = Matrix.norm (Matrix.sub l_ref l_tiled) /. Matrix.norm l_ref in
  if rel > 1e-9 then Alcotest.failf "tiled vs reference: %g" rel

let test_tiled_reconstructs () =
  let r = Desim.Rng.make 78 in
  let a = Matrix.random_spd r 30 in
  let l = Tiled.factorize a ~t:5 in
  let llt = Matrix.matmul l (Matrix.transpose l) in
  let rel = Matrix.norm (Matrix.sub a llt) /. Matrix.norm a in
  if rel > 1e-9 then Alcotest.failf "LLt error %g" rel

let test_split_join_roundtrip () =
  let r = Desim.Rng.make 79 in
  let a = Matrix.random_spd r 12 in
  let low = Matrix.lower a in
  let ts = Tiled.split low ~t:3 in
  let back = Tiled.join ts in
  Alcotest.(check (float 0.0)) "roundtrip (lower)" 0.0 (Matrix.norm (Matrix.sub low back))

let prop_any_task_order_with_deps_is_correct =
  (* Execute the DAG in random dependency-respecting order; the factor
     must match the sequential one — validating that [preds] captures
     every true data dependence. *)
  QCheck.Test.make ~name:"random topological order factorizes correctly" ~count:10
    QCheck.small_nat
    (fun seed ->
      let r = Desim.Rng.make (seed + 5) in
      let t = 4 in
      let a = Matrix.random_spd r (t * 6) in
      let reference = Matrix.cholesky a in
      let tasks = Tiled.dag t in
      let ts = Tiled.split a ~t in
      let remaining = Array.map (fun (tk : Tiled.task) -> List.length tk.preds) tasks in
      let ready = ref (Array.to_list tasks |> List.filter (fun tk -> tk.Tiled.preds = [])) in
      let done_count = ref 0 in
      while !ready <> [] do
        let idx = Desim.Rng.int r (List.length !ready) in
        let tk = List.nth !ready idx in
        ready := List.filter (fun x -> x != tk) !ready;
        Tiled.apply_op ts tk.Tiled.op;
        incr done_count;
        List.iter
          (fun s ->
            remaining.(s) <- remaining.(s) - 1;
            if remaining.(s) = 0 then ready := tasks.(s) :: !ready)
          tk.Tiled.succs
      done;
      !done_count = Array.length tasks
      &&
      let l = Tiled.join ts in
      Matrix.norm (Matrix.sub l reference) /. Matrix.norm reference < 1e-9)

let suite =
  [
    Alcotest.test_case "dag task counts" `Quick test_dag_sizes;
    Alcotest.test_case "program order valid" `Quick test_dag_program_order_valid;
    Alcotest.test_case "succs match preds" `Quick test_dag_succs_match_preds;
    Alcotest.test_case "first task potrf(0)" `Quick test_first_task_is_potrf0;
    Alcotest.test_case "trsm depends on potrf" `Quick test_trsm_depends_on_potrf;
    Alcotest.test_case "critical path bounds" `Quick test_critical_path_bounds;
    Alcotest.test_case "tiled = reference factor" `Quick test_tiled_factorize_matches_reference;
    Alcotest.test_case "tiled reconstructs A" `Quick test_tiled_reconstructs;
    Alcotest.test_case "split/join roundtrip" `Quick test_split_join_roundtrip;
    QCheck_alcotest.to_alcotest prop_any_task_order_with_deps_is_correct;
  ]
