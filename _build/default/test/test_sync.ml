open Desim

let run_sim f =
  let e = Engine.create () in
  f e;
  Engine.run e;
  e

let test_mutex_exclusion () =
  let m = Sync.Mutex.create () in
  let inside = ref 0 and max_inside = ref 0 and order = ref [] in
  let _ =
    run_sim (fun e ->
        for i = 0 to 3 do
          Engine.spawn e (Printf.sprintf "p%d" i) (fun () ->
              Sync.Mutex.lock m;
              incr inside;
              if !inside > !max_inside then max_inside := !inside;
              Engine.delay 1.0;
              order := i :: !order;
              decr inside;
              Sync.Mutex.unlock m)
        done)
  in
  Alcotest.(check int) "mutual exclusion" 1 !max_inside;
  Alcotest.(check (list int)) "FIFO fairness" [ 0; 1; 2; 3 ] (List.rev !order)

let test_mutex_try_lock () =
  let m = Sync.Mutex.create () in
  Alcotest.(check bool) "free try_lock" true (Sync.Mutex.try_lock m);
  Alcotest.(check bool) "held try_lock" false (Sync.Mutex.try_lock m);
  Sync.Mutex.unlock m;
  Alcotest.(check bool) "released" false (Sync.Mutex.locked m)

let test_mutex_unlock_unlocked () =
  let m = Sync.Mutex.create () in
  Alcotest.check_raises "unlock unlocked"
    (Invalid_argument "Sync.Mutex.unlock: not locked") (fun () ->
      Sync.Mutex.unlock m)

let test_mutex_waiters () =
  let m = Sync.Mutex.create () in
  let e = Engine.create () in
  Engine.spawn e "holder" (fun () ->
      Sync.Mutex.lock m;
      Engine.delay 10.0;
      Sync.Mutex.unlock m);
  for i = 1 to 3 do
    Engine.spawn e (Printf.sprintf "w%d" i) (fun () ->
        Engine.delay 1.0;
        Sync.Mutex.lock m;
        Sync.Mutex.unlock m)
  done;
  Engine.run ~until:5.0 e;
  Alcotest.(check int) "3 queued" 3 (Sync.Mutex.waiters m);
  Engine.run e;
  Alcotest.(check int) "drained" 0 (Sync.Mutex.waiters m)

let test_ivar () =
  let iv = Sync.Ivar.create () in
  let got = ref [] in
  let _ =
    run_sim (fun e ->
        for i = 0 to 2 do
          Engine.spawn e (Printf.sprintf "r%d" i) (fun () ->
              let v = Sync.Ivar.read iv in
              got := (i, v) :: !got)
        done;
        Engine.spawn e "writer" (fun () ->
            Engine.delay 2.0;
            Sync.Ivar.fill iv 7))
  in
  Alcotest.(check int) "all readers woken" 3 (List.length !got);
  List.iter (fun (_, v) -> Alcotest.(check int) "value" 7 v) !got

let test_ivar_read_after_fill () =
  let iv = Sync.Ivar.create () in
  Sync.Ivar.fill iv "x";
  Alcotest.(check bool) "filled" true (Sync.Ivar.is_filled iv);
  Alcotest.(check (option string)) "peek" (Some "x") (Sync.Ivar.peek iv);
  let got = ref "" in
  let _ = run_sim (fun e -> Engine.spawn e "r" (fun () -> got := Sync.Ivar.read iv)) in
  Alcotest.(check string) "immediate read" "x" !got

let test_ivar_double_fill () =
  let iv = Sync.Ivar.create () in
  Sync.Ivar.fill iv 1;
  Alcotest.check_raises "double fill" (Invalid_argument "Sync.Ivar.fill: already filled")
    (fun () -> Sync.Ivar.fill iv 2)

let test_waitq_wake_one_order () =
  let q = Sync.Waitq.create () in
  let woken = ref [] in
  let e = Engine.create () in
  for i = 0 to 2 do
    Engine.spawn e (Printf.sprintf "w%d" i) (fun () ->
        let v = Sync.Waitq.wait q in
        woken := (i, v) :: !woken)
  done;
  ignore
    (Engine.after e 1.0 (fun () ->
         ignore (Sync.Waitq.wake_one q "first");
         ignore (Sync.Waitq.wake_one q "second")));
  ignore (Engine.after e 2.0 (fun () -> ignore (Sync.Waitq.wake_all q "rest")));
  Engine.run e;
  Alcotest.(check (list (pair int string)))
    "FIFO wake order"
    [ (0, "first"); (1, "second"); (2, "rest") ]
    (List.rev !woken)

let test_waitq_wake_empty () =
  let q = Sync.Waitq.create () in
  Alcotest.(check bool) "wake_one empty" false (Sync.Waitq.wake_one q ());
  Alcotest.(check int) "wake_all empty" 0 (Sync.Waitq.wake_all q ())

let test_waitq_cancellable () =
  let q = Sync.Waitq.create () in
  let result = ref (Some "unset") in
  let cancel = ref (fun () -> ()) in
  let e = Engine.create () in
  Engine.spawn e "w" (fun () -> result := Sync.Waitq.wait_cancellable q ~cancel_ref:cancel);
  ignore (Engine.after e 1.0 (fun () -> !cancel ()));
  Engine.run e;
  Alcotest.(check (option string)) "cancelled yields None" None !result;
  (* A cancelled waiter must not absorb wakes. *)
  Alcotest.(check bool) "queue logically empty" false (Sync.Waitq.wake_one q "x")

let test_semaphore () =
  let sem = Sync.Semaphore.create 2 in
  let active = ref 0 and peak = ref 0 in
  let _ =
    run_sim (fun e ->
        for i = 0 to 5 do
          Engine.spawn e (Printf.sprintf "s%d" i) (fun () ->
              Sync.Semaphore.acquire sem;
              incr active;
              if !active > !peak then peak := !active;
              Engine.delay 1.0;
              decr active;
              Sync.Semaphore.release sem)
        done)
  in
  Alcotest.(check int) "at most 2 concurrent" 2 !peak

let test_semaphore_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Sync.Semaphore.create: negative")
    (fun () -> ignore (Sync.Semaphore.create (-1)))

let test_trace () =
  let tr = Trace.create () in
  Trace.emit tr 0.0 "off" "ignored";
  Alcotest.(check int) "disabled trace records nothing" 0 (Trace.length tr);
  Trace.enable tr;
  Trace.emit tr 1.0 "sched" "a";
  Trace.emit tr 2.0 "signal" "b";
  Trace.emit tr 3.0 "sched" "c";
  Alcotest.(check int) "3 records" 3 (Trace.length tr);
  let scheds = Trace.with_tag tr "sched" in
  Alcotest.(check int) "filtered" 2 (List.length scheds);
  Alcotest.(check string) "order kept" "a" (List.hd scheds).Trace.detail;
  Trace.clear tr;
  Alcotest.(check int) "cleared" 0 (Trace.length tr)

let suite =
  [
    Alcotest.test_case "mutex mutual exclusion + FIFO" `Quick test_mutex_exclusion;
    Alcotest.test_case "mutex try_lock" `Quick test_mutex_try_lock;
    Alcotest.test_case "mutex unlock unlocked" `Quick test_mutex_unlock_unlocked;
    Alcotest.test_case "mutex waiter count" `Quick test_mutex_waiters;
    Alcotest.test_case "ivar broadcast" `Quick test_ivar;
    Alcotest.test_case "ivar read after fill" `Quick test_ivar_read_after_fill;
    Alcotest.test_case "ivar double fill" `Quick test_ivar_double_fill;
    Alcotest.test_case "waitq wake order" `Quick test_waitq_wake_one_order;
    Alcotest.test_case "waitq wake empty" `Quick test_waitq_wake_empty;
    Alcotest.test_case "waitq cancellable" `Quick test_waitq_cancellable;
    Alcotest.test_case "semaphore limits concurrency" `Quick test_semaphore;
    Alcotest.test_case "semaphore negative init" `Quick test_semaphore_negative;
    Alcotest.test_case "trace enable/filter/clear" `Quick test_trace;
  ]
