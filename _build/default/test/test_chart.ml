open Experiments

let series label points = { Chart.label; points }

let test_render_contains_glyphs_and_legend () =
  let out =
    Chart.render ~width:20 ~height:6
      [ series "alpha" [ (0.0, 0.0); (1.0, 1.0) ]; series "beta" [ (0.5, 0.5) ] ]
  in
  Alcotest.(check bool) "legend alpha" true
    (Astring_contains.contains out "alpha");
  Alcotest.(check bool) "legend beta" true (Astring_contains.contains out "beta");
  Alcotest.(check bool) "glyph *" true (String.contains out '*');
  Alcotest.(check bool) "glyph o" true (String.contains out 'o')

let test_render_empty () =
  Alcotest.(check string) "no data" "(no data)\n" (Chart.render [])

let test_render_log_skips_nonpositive () =
  let out =
    Chart.render ~x_log:true ~y_log:true
      [ series "s" [ (0.0, 1.0); (10.0, 100.0); (100.0, 1000.0) ] ]
  in
  (* The (0,1) point is dropped; rendering still works. *)
  Alcotest.(check bool) "rendered" true (String.length out > 0);
  Alcotest.(check bool) "log marker" true (Astring_contains.contains out "[log]")

let test_render_single_point () =
  let out = Chart.render [ series "p" [ (5.0, 5.0) ] ] in
  Alcotest.(check bool) "single point ok" true (String.contains out '*')

let test_csv_format () =
  let csv = Chart.to_csv ~header:[ "a"; "b" ] [ [ 1.0; 2.5 ]; [ 3.0; 4.0 ] ] in
  Alcotest.(check string) "csv" "a,b\n1,2.5\n3,4\n" csv

let test_write_csv_roundtrip () =
  let path = Filename.temp_file "preempt" ".csv" in
  Chart.write_csv path ~header:[ "x" ] [ [ 42.0 ] ];
  let ic = open_in path in
  let l1 = input_line ic in
  let l2 = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check (pair string string)) "contents" ("x", "42") (l1, l2)

let suite =
  [
    Alcotest.test_case "render: glyphs + legend" `Quick test_render_contains_glyphs_and_legend;
    Alcotest.test_case "render: empty" `Quick test_render_empty;
    Alcotest.test_case "render: log axes skip <=0" `Quick test_render_log_skips_nonpositive;
    Alcotest.test_case "render: single point" `Quick test_render_single_point;
    Alcotest.test_case "csv format" `Quick test_csv_format;
    Alcotest.test_case "write_csv roundtrip" `Quick test_write_csv_roundtrip;
  ]
