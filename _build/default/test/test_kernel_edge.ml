(* Edge cases of the kernel model beyond test_kernel.ml's basics. *)

open Desim
open Oskern

let sig_a = 50

let sig_b = 51

let make ?(cores = 2) () =
  let eng = Engine.create () in
  let k = Kernel.create eng (Machine.with_cores Machine.skylake cores) in
  (eng, k)

let test_two_signals_fifo () =
  let eng, k = make () in
  let order = ref [] in
  Kernel.sigaction k sig_a (fun _ _ -> order := "a" :: !order);
  Kernel.sigaction k sig_b (fun _ _ -> order := "b" :: !order);
  let klt = Kernel.spawn k ~name:"v" (fun klt -> Kernel.compute k klt 0.05) in
  ignore
    (Engine.after eng 0.01 (fun () ->
         Kernel.kill k klt sig_a;
         Kernel.kill k klt sig_b));
  Engine.run eng;
  Alcotest.(check (list string)) "delivery order" [ "a"; "b" ] (List.rev !order)

let test_signal_handler_computes () =
  (* Handler doing real work extends the victim's completion time. *)
  let eng, k = make ~cores:1 () in
  Kernel.sigaction k sig_a (fun k klt -> Kernel.compute k klt 0.005);
  let finish = ref 0.0 in
  let klt =
    Kernel.spawn k ~name:"v" (fun klt ->
        Kernel.compute k klt 0.02;
        finish := Kernel.now k)
  in
  ignore (Engine.after eng 0.01 (fun () -> Kernel.kill k klt sig_a));
  Engine.run eng;
  if !finish < 0.025 then Alcotest.failf "handler work not charged: %f" !finish

let test_nested_signal_other_signo () =
  (* A different signal arriving during a handler is delivered after it
     (the handler's own signo stays blocked; others queue until the next
     delivery point). *)
  let eng, k = make () in
  let order = ref [] in
  Kernel.sigaction k sig_a (fun k klt ->
      order := "a-start" :: !order;
      Kernel.kill k klt sig_b;
      Kernel.consume k klt 1e-4;
      order := "a-end" :: !order);
  Kernel.sigaction k sig_b (fun _ _ -> order := "b" :: !order);
  let klt = Kernel.spawn k ~name:"v" (fun klt -> Kernel.compute k klt 0.02) in
  ignore (Engine.after eng 0.005 (fun () -> Kernel.kill k klt sig_a));
  Engine.run eng;
  Alcotest.(check (list string)) "b after a" [ "a-start"; "a-end"; "b" ] (List.rev !order)

let test_signal_to_zombie_ignored () =
  let eng, k = make () in
  Kernel.sigaction k sig_a (fun _ _ -> Alcotest.fail "handler ran for zombie");
  let klt = Kernel.spawn k ~name:"quick" (fun _ -> ()) in
  ignore (Engine.after eng 0.01 (fun () -> Kernel.kill k klt sig_a));
  Engine.run eng

let test_timer_cancel_stops_fires () =
  let eng, k = make () in
  let count = ref 0 in
  Kernel.sigaction k sig_a (fun _ _ -> incr count);
  let klt = Kernel.spawn k ~name:"v" (fun klt -> Kernel.compute k klt 0.1) in
  let tm =
    Kernel.Timer.create k ~interval:0.01 ~signo:sig_a ~target:(fun () -> Some klt) ()
  in
  ignore (Engine.after eng 0.035 (fun () -> Kernel.Timer.cancel tm));
  Engine.run eng;
  Alcotest.(check int) "3 fires then silence" 3 !count;
  Alcotest.(check int) "fires counter" 3 (Kernel.Timer.fires tm)

let test_timer_none_target_skips () =
  let eng, k = make () in
  let count = ref 0 in
  Kernel.sigaction k sig_a (fun _ _ -> incr count);
  ignore (Kernel.spawn k ~name:"v" (fun klt -> Kernel.compute k klt 0.05));
  let tm = Kernel.Timer.create k ~interval:0.01 ~signo:sig_a ~target:(fun () -> None) () in
  Engine.run ~until:0.06 eng;
  Kernel.Timer.cancel tm;
  Alcotest.(check int) "no deliveries" 0 !count;
  Alcotest.(check bool) "still fired internally" true (Kernel.Timer.fires tm >= 4)

let test_join_chain () =
  let eng, k = make () in
  let order = ref [] in
  let a = Kernel.spawn k ~name:"a" (fun klt -> Kernel.compute k klt 0.01) in
  let rec chain prev i =
    if i = 0 then prev
    else
      let t =
        Kernel.spawn k ~name:(Printf.sprintf "c%d" i) (fun klt ->
            Kernel.join k ~joiner:klt prev;
            order := i :: !order)
      in
      chain t (i - 1)
  in
  ignore (chain a 4);
  Engine.run eng;
  Alcotest.(check (list int)) "chain unwinds in order" [ 4; 3; 2; 1 ] (List.rev !order)

let test_yield_alone_is_noop () =
  let eng, k = make ~cores:1 () in
  let t_end = ref 0.0 in
  ignore
    (Kernel.spawn k ~name:"solo" (fun klt ->
         Kernel.compute k klt 0.01;
         Kernel.yield k klt;
         Kernel.compute k klt 0.01;
         t_end := Kernel.now k));
  Engine.run eng;
  if !t_end > 0.0205 then Alcotest.failf "lonely yield cost too much: %f" !t_end

let test_futex_set_before_wait () =
  let eng, k = make () in
  let fut = Kernel.Futex.create k 0 in
  Kernel.Futex.set fut 1;
  let r = ref `Ok in
  ignore (Kernel.spawn k ~name:"w" (fun klt -> r := Kernel.Futex.wait k klt fut ~expected:0));
  Engine.run eng;
  Alcotest.(check bool) "EAGAIN on stale expected" true (!r = `Again)

let test_sleep_zero_and_negative () =
  let eng, k = make () in
  let ok = ref false in
  ignore
    (Kernel.spawn k ~name:"s" (fun klt ->
         Kernel.sleep k klt 0.0;
         (match Kernel.sleep k klt (-1.0) with
         | () -> ()
         | exception Invalid_argument _ -> ok := true)));
  Engine.run eng;
  Alcotest.(check bool) "negative rejected, zero fine" true !ok

let test_affinity_width_mismatch () =
  let _eng, k = make ~cores:2 () in
  Alcotest.check_raises "spawn mask" (Invalid_argument "Kernel.spawn: affinity width mismatch")
    (fun () ->
      ignore (Kernel.spawn k ~affinity:(Cpuset.all 4) ~name:"bad" (fun _ -> ())))

let suite =
  [
    Alcotest.test_case "two signals FIFO" `Quick test_two_signals_fifo;
    Alcotest.test_case "handler work charged" `Quick test_signal_handler_computes;
    Alcotest.test_case "nested other-signo signal" `Quick test_nested_signal_other_signo;
    Alcotest.test_case "signal to zombie ignored" `Quick test_signal_to_zombie_ignored;
    Alcotest.test_case "timer cancel" `Quick test_timer_cancel_stops_fires;
    Alcotest.test_case "timer None target skips" `Quick test_timer_none_target_skips;
    Alcotest.test_case "join chain" `Quick test_join_chain;
    Alcotest.test_case "lonely yield ~free" `Quick test_yield_alone_is_noop;
    Alcotest.test_case "futex stale expected" `Quick test_futex_set_before_wait;
    Alcotest.test_case "sleep zero/negative" `Quick test_sleep_zero_and_negative;
    Alcotest.test_case "affinity width mismatch" `Quick test_affinity_width_mismatch;
  ]
