open Desim

let test_deterministic () =
  let a = Rng.make 7 and b = Rng.make 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.make 1 and b = Rng.make 2 in
  Alcotest.(check bool) "different seeds differ" true (Rng.bits64 a <> Rng.bits64 b)

let test_split_independent () =
  let a = Rng.make 3 in
  let c = Rng.split a in
  let next_a = Rng.bits64 a in
  let next_c = Rng.bits64 c in
  Alcotest.(check bool) "split stream differs" true (next_a <> next_c)

let test_int_bounds () =
  let r = Rng.make 11 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done

let test_float_bounds () =
  let r = Rng.make 12 in
  for _ = 1 to 1000 do
    let v = Rng.float r in
    if v < 0.0 || v >= 1.0 then Alcotest.failf "out of range: %f" v
  done

let test_range () =
  let r = Rng.make 13 in
  for _ = 1 to 1000 do
    let v = Rng.range r 5.0 6.0 in
    if v < 5.0 || v >= 6.0 then Alcotest.failf "out of range: %f" v
  done

let test_exponential_positive () =
  let r = Rng.make 14 in
  let s = Stats.create () in
  for _ = 1 to 5000 do
    let v = Rng.exponential r ~mean:2.0 in
    if v < 0.0 then Alcotest.failf "negative: %f" v;
    Stats.add s v
  done;
  (* Mean of Exp(2) should land near 2 with 5000 samples. *)
  let m = Stats.mean s in
  if m < 1.8 || m > 2.2 then Alcotest.failf "mean off: %f" m

let test_shuffle_permutation () =
  let r = Rng.make 15 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_float_mean () =
  let r = Rng.make 16 in
  let s = Stats.create () in
  for _ = 1 to 10_000 do
    Stats.add s (Rng.float r)
  done;
  let m = Stats.mean s in
  if m < 0.48 || m > 0.52 then Alcotest.failf "uniform mean off: %f" m

let prop_int_uniformish =
  QCheck.Test.make ~name:"int bound respected for any bound" ~count:200
    QCheck.(pair small_nat small_nat)
    (fun (seed, bound) ->
      let bound = bound + 1 in
      let r = Rng.make seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Rng.int r bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "deterministic stream" `Quick test_deterministic;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "range bounds" `Quick test_range;
    Alcotest.test_case "exponential positive, mean ok" `Quick test_exponential_positive;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "uniform mean near 0.5" `Quick test_float_mean;
    QCheck_alcotest.to_alcotest prop_int_uniformish;
  ]
