open Linalg

let rng () = Desim.Rng.make 1234

let check_close msg tol a b =
  if Float.abs (a -. b) > tol then Alcotest.failf "%s: %g vs %g" msg a b

let test_identity_matmul () =
  let r = rng () in
  let a = Matrix.random_spd r 8 in
  let i = Matrix.identity 8 in
  let ai = Matrix.matmul a i in
  check_close "A*I = A" 1e-12 0.0 (Matrix.norm (Matrix.sub a ai))

let test_transpose_involution () =
  let r = rng () in
  let a = Matrix.random_spd r 6 in
  let att = Matrix.transpose (Matrix.transpose a) in
  check_close "transpose^2 = id" 0.0 0.0 (Matrix.norm (Matrix.sub a att))

let test_spd_symmetric () =
  let r = rng () in
  let a = Matrix.random_spd r 10 in
  check_close "symmetric" 1e-9 0.0 (Matrix.norm (Matrix.sub a (Matrix.transpose a)))

let test_cholesky_reconstructs () =
  let r = rng () in
  let a = Matrix.random_spd r 12 in
  let l = Matrix.cholesky a in
  let llt = Matrix.matmul l (Matrix.transpose l) in
  let rel = Matrix.norm (Matrix.sub a llt) /. Matrix.norm a in
  if rel > 1e-10 then Alcotest.failf "reconstruction error %g" rel

let test_potrf_rejects_non_spd () =
  let m = Matrix.create 3 in
  Matrix.set m 0 0 (-1.0);
  Alcotest.check_raises "non-spd" (Failure "Matrix.potrf: not positive definite")
    (fun () -> Matrix.potrf m)

let test_trsm_solves () =
  let r = rng () in
  let a = Matrix.random_spd r 7 in
  let l = Matrix.cholesky a in
  (* Pick B, solve X·Lᵀ = B, check X·Lᵀ = B. *)
  let b = Matrix.random_spd r 7 in
  let x = Matrix.copy b in
  Matrix.trsm l x;
  let back = Matrix.matmul x (Matrix.transpose l) in
  let rel = Matrix.norm (Matrix.sub b back) /. Matrix.norm b in
  if rel > 1e-10 then Alcotest.failf "trsm error %g" rel

let test_syrk_gemm () =
  let r = rng () in
  let a = Matrix.random_spd r 5 in
  let b = Matrix.random_spd r 5 in
  let c0 = Matrix.random_spd r 5 in
  (* syrk: c - a·aᵀ *)
  let c = Matrix.copy c0 in
  Matrix.syrk a c;
  let expect = Matrix.sub c0 (Matrix.matmul a (Matrix.transpose a)) in
  check_close "syrk" 1e-9 0.0 (Matrix.norm (Matrix.sub c expect));
  (* gemm: c - a·bᵀ *)
  let c = Matrix.copy c0 in
  Matrix.gemm a b c;
  let expect = Matrix.sub c0 (Matrix.matmul a (Matrix.transpose b)) in
  check_close "gemm" 1e-9 0.0 (Matrix.norm (Matrix.sub c expect))

let test_flop_counts () =
  check_close "gemm flops" 0.0 (Matrix.flops_gemm 10) 2000.0;
  check_close "trsm flops" 0.0 (Matrix.flops_trsm 10) 1000.0;
  Alcotest.(check bool) "potrf cheapest" true (Matrix.flops_potrf 10 < Matrix.flops_trsm 10)

let prop_cholesky_any_seed =
  QCheck.Test.make ~name:"cholesky reconstructs for random SPD" ~count:25
    QCheck.(pair small_nat small_nat)
    (fun (seed, dim) ->
      let dim = 2 + (dim mod 10) in
      let r = Desim.Rng.make (seed + 1) in
      let a = Matrix.random_spd r dim in
      let l = Matrix.cholesky a in
      let llt = Matrix.matmul l (Matrix.transpose l) in
      Matrix.norm (Matrix.sub a llt) /. Matrix.norm a < 1e-9)

let suite =
  [
    Alcotest.test_case "A*I = A" `Quick test_identity_matmul;
    Alcotest.test_case "transpose involution" `Quick test_transpose_involution;
    Alcotest.test_case "random_spd symmetric" `Quick test_spd_symmetric;
    Alcotest.test_case "cholesky reconstructs" `Quick test_cholesky_reconstructs;
    Alcotest.test_case "potrf rejects non-SPD" `Quick test_potrf_rejects_non_spd;
    Alcotest.test_case "trsm solves" `Quick test_trsm_solves;
    Alcotest.test_case "syrk and gemm" `Quick test_syrk_gemm;
    Alcotest.test_case "flop counts" `Quick test_flop_counts;
    QCheck_alcotest.to_alcotest prop_cholesky_any_seed;
  ]
