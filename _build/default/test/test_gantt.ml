open Desim
open Oskern
open Experiments

let test_occupancy_from_real_trace () =
  let eng = Engine.create () in
  let tr = Trace.create () in
  Trace.enable tr;
  let k = Kernel.create ~trace:tr eng (Machine.with_cores Machine.skylake 2) in
  ignore (Kernel.spawn k ~affinity:(Cpuset.of_list 2 [ 0 ]) ~name:"alpha" (fun klt ->
      Kernel.compute k klt 0.01));
  ignore (Kernel.spawn k ~affinity:(Cpuset.of_list 2 [ 1 ]) ~name:"beta" (fun klt ->
      Kernel.compute k klt 0.02));
  Engine.run eng;
  let g = Gantt.of_trace ~cores:2 tr in
  Alcotest.(check (option string)) "alpha on core0" (Some "alpha")
    (Gantt.occupant g ~core:0 ~time:0.005);
  Alcotest.(check (option string)) "beta on core1" (Some "beta")
    (Gantt.occupant g ~core:1 ~time:0.015);
  Alcotest.(check (option string)) "core0 idle after exit" None
    (Gantt.occupant g ~core:0 ~time:0.015);
  let out = Gantt.render ~t0:0.0 ~t1:0.02 g in
  Alcotest.(check bool) "legend alpha" true (Astring_contains.contains out "alpha");
  Alcotest.(check bool) "legend beta" true (Astring_contains.contains out "beta");
  Alcotest.(check bool) "idle dots" true (String.contains out '.')

let test_timeslice_alternation_visible () =
  let eng = Engine.create () in
  let tr = Trace.create () in
  Trace.enable tr;
  let k = Kernel.create ~trace:tr eng (Machine.with_cores Machine.skylake 1) in
  for i = 0 to 1 do
    ignore (Kernel.spawn k ~name:(Printf.sprintf "t%d" i) (fun klt -> Kernel.compute k klt 0.03))
  done;
  Engine.run eng;
  let g = Gantt.of_trace ~cores:1 tr in
  (* Both threads appear on core 0 over the run (CFS alternation). *)
  let seen = Hashtbl.create 4 in
  for b = 0 to 99 do
    match Gantt.occupant g ~core:0 ~time:(0.0006 *. float_of_int b) with
    | Some n -> Hashtbl.replace seen n ()
    | None -> ()
  done;
  Alcotest.(check int) "both threads visible" 2 (Hashtbl.length seen)

let test_render_bad_window () =
  let g = Gantt.of_trace ~cores:1 (Trace.create ()) in
  Alcotest.check_raises "empty window" (Invalid_argument "Gantt.render: empty window")
    (fun () -> ignore (Gantt.render ~t0:1.0 ~t1:1.0 g))

let suite =
  [
    Alcotest.test_case "occupancy from trace" `Quick test_occupancy_from_real_trace;
    Alcotest.test_case "timeslice alternation visible" `Quick test_timeslice_alternation_visible;
    Alcotest.test_case "bad window rejected" `Quick test_render_bad_window;
  ]
