open Desim

let feed values =
  let s = Stats.create () in
  List.iter (Stats.add s) values;
  s

let test_mean_std () =
  let s = feed [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.mean s);
  (* Sample stddev of this classic data set: sqrt(32/7). *)
  Alcotest.(check (float 1e-9)) "stddev" (sqrt (32.0 /. 7.0)) (Stats.stddev s)

let test_minmax_sum () =
  let s = feed [ 3.0; -1.0; 10.0 ] in
  Alcotest.(check (float 0.0)) "min" (-1.0) (Stats.min s);
  Alcotest.(check (float 0.0)) "max" 10.0 (Stats.max s);
  Alcotest.(check (float 1e-9)) "sum" 12.0 (Stats.sum s);
  Alcotest.(check int) "count" 3 (Stats.count s)

let test_percentiles () =
  let s = feed [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile s 0.0);
  Alcotest.(check (float 1e-9)) "p50" 3.0 (Stats.percentile s 50.0);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Stats.percentile s 100.0);
  Alcotest.(check (float 1e-9)) "p25" 2.0 (Stats.percentile s 25.0);
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.median s)

let test_percentile_interpolation () =
  let s = feed [ 0.0; 10.0 ] in
  Alcotest.(check (float 1e-9)) "p75 interpolates" 7.5 (Stats.percentile s 75.0)

let test_empty_stats () =
  let s = Stats.create () in
  Alcotest.(check (float 0.0)) "mean of empty" 0.0 (Stats.mean s);
  Alcotest.(check (float 0.0)) "stddev of empty" 0.0 (Stats.stddev s);
  Alcotest.check_raises "percentile empty"
    (Invalid_argument "Stats.percentile: empty") (fun () ->
      ignore (Stats.percentile s 50.0))

let test_single_sample () =
  let s = feed [ 42.0 ] in
  Alcotest.(check (float 0.0)) "mean" 42.0 (Stats.mean s);
  Alcotest.(check (float 0.0)) "stddev" 0.0 (Stats.stddev s);
  Alcotest.(check (float 0.0)) "median" 42.0 (Stats.median s)

let test_histogram () =
  let s = feed [ 0.0; 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0; 8.0; 9.0 ] in
  let h = Stats.histogram s ~bins:3 in
  Alcotest.(check int) "3 bins" 3 (Array.length h);
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  Alcotest.(check int) "all samples binned" 10 total

let test_histogram_constant () =
  let s = feed [ 5.0; 5.0; 5.0 ] in
  let h = Stats.histogram s ~bins:4 in
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  Alcotest.(check int) "constant data binned" 3 total

let prop_mean_bounds =
  QCheck.Test.make ~name:"mean lies within [min,max]" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 100.0))
    (fun values ->
      let s = feed values in
      Stats.mean s >= Stats.min s -. 1e-9 && Stats.mean s <= Stats.max s +. 1e-9)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentiles are monotone" ~count:200
    QCheck.(list_of_size Gen.(2 -- 50) (float_bound_exclusive 100.0))
    (fun values ->
      let s = feed values in
      let ps = [ 0.0; 10.0; 25.0; 50.0; 75.0; 90.0; 100.0 ] in
      let vals = List.map (Stats.percentile s) ps in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && mono rest
        | _ -> true
      in
      mono vals)

let suite =
  [
    Alcotest.test_case "mean and stddev" `Quick test_mean_std;
    Alcotest.test_case "min/max/sum/count" `Quick test_minmax_sum;
    Alcotest.test_case "percentiles exact" `Quick test_percentiles;
    Alcotest.test_case "percentile interpolation" `Quick test_percentile_interpolation;
    Alcotest.test_case "empty stats" `Quick test_empty_stats;
    Alcotest.test_case "single sample" `Quick test_single_sample;
    Alcotest.test_case "histogram covers samples" `Quick test_histogram;
    Alcotest.test_case "histogram constant data" `Quick test_histogram_constant;
    QCheck_alcotest.to_alcotest prop_mean_bounds;
    QCheck_alcotest.to_alcotest prop_percentile_monotone;
  ]
