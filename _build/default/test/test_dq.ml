open Preempt_core

let rec pops n pop =
  if n = 0 then []
  else
    let x = pop () in
    x :: pops (n - 1) pop

let test_fifo () =
  let q = Dq.create () in
  List.iter (Dq.push_back q) [ 1; 2; 3 ];
  Alcotest.(check (list (option int)))
    "fifo order"
    [ Some 1; Some 2; Some 3; None ]
    (pops 4 (fun () -> Dq.pop_front q))

let test_lifo () =
  let q = Dq.create () in
  List.iter (Dq.push_back q) [ 1; 2; 3 ];
  Alcotest.(check (list (option int)))
    "lifo order"
    [ Some 3; Some 2; Some 1 ]
    (pops 3 (fun () -> Dq.pop_back q))

let test_steal_pattern () =
  let q = Dq.create () in
  List.iter (Dq.push_back q) [ 1; 2; 3; 4 ];
  Alcotest.(check (option int)) "owner front" (Some 1) (Dq.pop_front q);
  Alcotest.(check (option int)) "thief back" (Some 4) (Dq.pop_back q);
  Alcotest.(check int) "two left" 2 (Dq.length q)

let test_push_front () =
  let q = Dq.create () in
  Dq.push_back q 2;
  Dq.push_front q 1;
  Alcotest.(check (list int)) "order" [ 1; 2 ] (Dq.to_list q)

let test_remove () =
  let q = Dq.create () in
  List.iter (Dq.push_back q) [ 1; 2; 3; 4 ];
  Alcotest.(check (option int)) "remove 3" (Some 3) (Dq.remove q (fun x -> x = 3));
  Alcotest.(check (option int)) "remove missing" None (Dq.remove q (fun x -> x = 9));
  Alcotest.(check (list int)) "rest intact" [ 1; 2; 4 ] (Dq.to_list q)

let test_clear_empty () =
  let q = Dq.create () in
  Alcotest.(check bool) "empty" true (Dq.is_empty q);
  Dq.push_back q 1;
  Dq.clear q;
  Alcotest.(check bool) "cleared" true (Dq.is_empty q);
  Alcotest.(check (option int)) "pop empty" None (Dq.pop_back q)

let prop_deque_model =
  (* Compare against a list model under random front/back operations. *)
  QCheck.Test.make ~name:"deque matches list model" ~count:300
    QCheck.(list (pair bool (pair bool small_nat)))
    (fun ops ->
      let q = Dq.create () in
      let model = ref [] in
      let ok = ref true in
      List.iter
        (fun (is_push, (front, v)) ->
          if is_push then
            if front then begin
              Dq.push_front q v;
              model := v :: !model
            end
            else begin
              Dq.push_back q v;
              model := !model @ [ v ]
            end
          else if front then begin
            let got = Dq.pop_front q in
            let expect =
              match !model with
              | [] -> None
              | x :: rest ->
                  model := rest;
                  Some x
            in
            if got <> expect then ok := false
          end
          else begin
            let got = Dq.pop_back q in
            let expect =
              match List.rev !model with
              | [] -> None
              | x :: rest ->
                  model := List.rev rest;
                  Some x
            in
            if got <> expect then ok := false
          end)
        ops;
      !ok && Dq.to_list q = !model)

let suite =
  [
    Alcotest.test_case "fifo" `Quick test_fifo;
    Alcotest.test_case "lifo" `Quick test_lifo;
    Alcotest.test_case "steal pattern" `Quick test_steal_pattern;
    Alcotest.test_case "push_front" `Quick test_push_front;
    Alcotest.test_case "remove" `Quick test_remove;
    Alcotest.test_case "clear/empty" `Quick test_clear_empty;
    QCheck_alcotest.to_alcotest prop_deque_model;
  ]
