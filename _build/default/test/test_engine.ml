open Desim

let test_clock_starts_at_zero () =
  let e = Engine.create () in
  Alcotest.(check (float 0.0)) "t=0" 0.0 (Engine.now e)

let test_events_fire_in_order () =
  let e = Engine.create () in
  let order = ref [] in
  ignore (Engine.after e 3.0 (fun () -> order := 3 :: !order));
  ignore (Engine.after e 1.0 (fun () -> order := 1 :: !order));
  ignore (Engine.after e 2.0 (fun () -> order := 2 :: !order));
  Engine.run e;
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !order);
  Alcotest.(check (float 0.0)) "final time" 3.0 (Engine.now e)

let test_same_time_fifo () =
  let e = Engine.create () in
  let order = ref [] in
  for i = 0 to 4 do
    ignore (Engine.after e 1.0 (fun () -> order := i :: !order))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo" [ 0; 1; 2; 3; 4 ] (List.rev !order)

let test_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let ev = Engine.after e 1.0 (fun () -> fired := true) in
  Alcotest.(check bool) "pending" true (Engine.pending ev);
  Alcotest.(check bool) "cancel ok" true (Engine.cancel ev);
  Alcotest.(check bool) "cancel twice fails" false (Engine.cancel ev);
  Engine.run e;
  Alcotest.(check bool) "not fired" false !fired

let test_until () =
  let e = Engine.create () in
  let fired = ref [] in
  ignore (Engine.after e 1.0 (fun () -> fired := 1 :: !fired));
  ignore (Engine.after e 5.0 (fun () -> fired := 5 :: !fired));
  Engine.run ~until:2.0 e;
  Alcotest.(check (list int)) "only early event" [ 1 ] !fired;
  Alcotest.(check (float 0.0)) "clock clamped" 2.0 (Engine.now e);
  Engine.run e;
  Alcotest.(check (list int)) "rest runs" [ 5; 1 ] !fired

let test_negative_delay_rejected () =
  let e = Engine.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Engine.after: negative delay")
    (fun () -> ignore (Engine.after e (-1.0) (fun () -> ())))

let test_process_delay () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.spawn e "p" (fun () ->
      log := (Engine.timestamp (), "start") :: !log;
      Engine.delay 2.5;
      log := (Engine.timestamp (), "end") :: !log);
  Engine.run e;
  Alcotest.(check (list (pair (float 0.0) string)))
    "timeline"
    [ (0.0, "start"); (2.5, "end") ]
    (List.rev !log)

let test_process_self_name () =
  let e = Engine.create () in
  let name = ref "" in
  Engine.spawn e "alice" (fun () -> name := Engine.self_name ());
  Engine.run e;
  Alcotest.(check string) "name" "alice" !name

let test_two_processes_interleave () =
  let e = Engine.create () in
  let log = ref [] in
  let tick name periods =
    Engine.spawn e name (fun () ->
        List.iter
          (fun p ->
            Engine.delay p;
            log := (Engine.timestamp (), name) :: !log)
          periods)
  in
  tick "a" [ 1.0; 2.0 ];
  (* a at t=1,3 *)
  tick "b" [ 2.0; 2.0 ];
  (* b at t=2,4 *)
  Engine.run e;
  Alcotest.(check (list (pair (float 0.0) string)))
    "interleaving"
    [ (1.0, "a"); (2.0, "b"); (3.0, "a"); (4.0, "b") ]
    (List.rev !log)

let test_block_resume () =
  let e = Engine.create () in
  let resumer = ref (fun (_ : int) -> ()) in
  let got = ref 0 in
  Engine.spawn e "waiter" (fun () ->
      let v = Engine.block (fun resume -> resumer := resume) in
      got := v);
  ignore (Engine.after e 5.0 (fun () -> !resumer 99));
  Engine.run e;
  Alcotest.(check int) "value delivered" 99 !got;
  Alcotest.(check int) "no live processes" 0 (Engine.live_processes e)

let test_block_double_resume_rejected () =
  let e = Engine.create () in
  let resumer = ref (fun () -> ()) in
  Engine.spawn e "w" (fun () -> Engine.block (fun resume -> resumer := resume));
  ignore
    (Engine.after e 1.0 (fun () ->
         !resumer ();
         match !resumer () with
         | () -> Alcotest.fail "second resume should raise"
         | exception Invalid_argument _ -> ()));
  Engine.run e

let test_live_processes () =
  let e = Engine.create () in
  Engine.spawn e "sleeper" (fun () -> Engine.delay 10.0);
  Alcotest.(check int) "live after spawn" 1 (Engine.live_processes e);
  Engine.run ~until:5.0 e;
  Alcotest.(check int) "still live" 1 (Engine.live_processes e);
  Alcotest.(check (list string)) "named" [ "sleeper" ] (Engine.live_process_names e);
  Engine.run e;
  Alcotest.(check int) "done" 0 (Engine.live_processes e)

let test_quiescence_deadlock () =
  let e = Engine.create () in
  Engine.spawn e "stuck" (fun () -> ignore (Engine.block (fun _resume -> ())));
  Engine.set_quiescence_check e (fun () ->
      if Engine.live_processes e > 0 then Some "stuck processes" else None);
  Alcotest.check_raises "deadlock" (Engine.Deadlock "stuck processes") (fun () ->
      Engine.run e)

let test_quiescence_accepts_daemons () =
  let e = Engine.create () in
  Engine.spawn e "daemon" (fun () -> ignore (Engine.block (fun _resume -> ())));
  Engine.run e (* default check accepts *)

let test_max_events () =
  let e = Engine.create () in
  let rec forever () =
    Engine.delay 1.0;
    forever ()
  in
  Engine.spawn e "loop" forever;
  match Engine.run ~max_events:100 e with
  | () -> Alcotest.fail "should hit event limit"
  | exception Failure _ -> ()

let test_spawn_from_process () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.spawn e "parent" (fun () ->
      Engine.delay 1.0;
      let eng = Engine.self_engine () in
      Engine.spawn eng "child" (fun () ->
          Engine.delay 1.0;
          log := ("child", Engine.timestamp ()) :: !log);
      Engine.delay 0.5;
      log := ("parent", Engine.timestamp ()) :: !log);
  Engine.run e;
  Alcotest.(check (list (pair string (float 0.0))))
    "child starts at spawn time"
    [ ("parent", 1.5); ("child", 2.0) ]
    (List.rev !log)

let test_determinism () =
  let run_once () =
    let e = Engine.create ~seed:5 () in
    let log = Buffer.create 64 in
    for i = 0 to 9 do
      Engine.spawn e (string_of_int i) (fun () ->
          let r = Rng.split (Engine.rng e) in
          Engine.delay (Rng.float r);
          Buffer.add_string log (Printf.sprintf "%d@%.6f;" i (Engine.timestamp ())))
    done;
    Engine.run e;
    Buffer.contents log
  in
  Alcotest.(check string) "identical replay" (run_once ()) (run_once ())

let suite =
  [
    Alcotest.test_case "clock starts at 0" `Quick test_clock_starts_at_zero;
    Alcotest.test_case "events fire in order" `Quick test_events_fire_in_order;
    Alcotest.test_case "same-time events FIFO" `Quick test_same_time_fifo;
    Alcotest.test_case "cancel prevents firing" `Quick test_cancel;
    Alcotest.test_case "run ~until" `Quick test_until;
    Alcotest.test_case "negative delay rejected" `Quick test_negative_delay_rejected;
    Alcotest.test_case "process delay timeline" `Quick test_process_delay;
    Alcotest.test_case "process self name" `Quick test_process_self_name;
    Alcotest.test_case "two processes interleave" `Quick test_two_processes_interleave;
    Alcotest.test_case "block/resume with value" `Quick test_block_resume;
    Alcotest.test_case "double resume rejected" `Quick test_block_double_resume_rejected;
    Alcotest.test_case "live process accounting" `Quick test_live_processes;
    Alcotest.test_case "quiescence check raises Deadlock" `Quick test_quiescence_deadlock;
    Alcotest.test_case "quiescence accepts daemons" `Quick test_quiescence_accepts_daemons;
    Alcotest.test_case "max_events guard" `Quick test_max_events;
    Alcotest.test_case "spawn from process" `Quick test_spawn_from_process;
    Alcotest.test_case "deterministic replay" `Quick test_determinism;
  ]
