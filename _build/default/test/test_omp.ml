open Desim
open Oskern
open Ompmodel

let make ?(cores = 4) ?(blocktime = 0.0) ?(bind = false) () =
  let eng = Engine.create () in
  let k = Kernel.create eng (Machine.with_cores Machine.skylake cores) in
  let omp = Omp.create k ~blocktime ~bind () in
  (eng, k, omp)

let run_main k omp f =
  ignore
    (Kernel.spawn k ~name:"main" (fun klt ->
         f klt;
         Omp.shutdown omp))

let test_parallel_runs_all () =
  let eng, k, omp = make () in
  let ran = Array.make 4 false in
  run_main k omp (fun master ->
      Omp.parallel omp ~master ~nthreads:4 (fun tid klt ->
          Kernel.compute k klt 1e-3;
          ran.(tid) <- true));
  Engine.run eng;
  Array.iteri (fun i r -> if not r then Alcotest.failf "tid %d did not run" i) ran

let test_parallel_is_parallel () =
  let eng, k, omp = make ~cores:4 () in
  let t_end = ref 0.0 in
  run_main k omp (fun master ->
      Omp.parallel omp ~master ~nthreads:4 (fun _ klt -> Kernel.compute k klt 0.01);
      t_end := Kernel.now k);
  Engine.run eng;
  (* 40 ms of work on 4 cores: ~10 ms wall. *)
  if !t_end > 0.013 then Alcotest.failf "region took %f" !t_end

let test_implicit_barrier () =
  let eng, k, omp = make () in
  let after_region = ref 0.0 in
  run_main k omp (fun master ->
      Omp.parallel omp ~master ~nthreads:4 (fun tid klt ->
          Kernel.compute k klt (float_of_int (tid + 1) *. 1e-3));
      after_region := Kernel.now k);
  Engine.run eng;
  (* Region ends only when the slowest thread (4 ms) is done. *)
  if !after_region < 0.004 then Alcotest.failf "no barrier: %f" !after_region

let test_hot_team_reuse () =
  let eng, k, omp = make () in
  run_main k omp (fun master ->
      for _ = 1 to 5 do
        Omp.parallel omp ~master ~nthreads:4 (fun _ klt -> Kernel.compute k klt 1e-4)
      done);
  Engine.run eng;
  (* 3 extra threads for the team, created once. *)
  Alcotest.(check int) "hot team: 3 threads total" 3 (Omp.team_threads omp)

let test_shrinking_region () =
  let eng, k, omp = make () in
  let count = ref 0 in
  run_main k omp (fun master ->
      Omp.parallel omp ~master ~nthreads:4 (fun _ klt -> Kernel.compute k klt 1e-4);
      Omp.parallel omp ~master ~nthreads:2 (fun _ klt ->
          Kernel.compute k klt 1e-4;
          incr count);
      (* Extra members idle but the team still works. *)
      Omp.parallel omp ~master ~nthreads:4 (fun _ klt -> Kernel.compute k klt 1e-4));
  Engine.run eng;
  Alcotest.(check int) "only 2 ran in small region" 2 !count

let test_nested_teams () =
  let eng, k, omp = make ~cores:4 () in
  let leaf_runs = ref 0 in
  run_main k omp (fun master ->
      Omp.parallel omp ~master ~nthreads:2 (fun _tid klt ->
          Omp.parallel omp ~master:klt ~nthreads:2 (fun _ inner ->
              Kernel.compute k inner 1e-3;
              incr leaf_runs)));
  Engine.run eng;
  Alcotest.(check int) "2x2 nested" 4 !leaf_runs

let test_parallel_for_coverage () =
  let eng, k, omp = make () in
  let hits = Array.make 100 0 in
  run_main k omp (fun master ->
      Omp.parallel_for omp ~master ~nthreads:4 ~lo:0 ~hi:100 (fun klt lo hi ->
          Kernel.compute k klt 1e-5;
          for i = lo to hi - 1 do
            hits.(i) <- hits.(i) + 1
          done));
  Engine.run eng;
  Array.iteri (fun i h -> if h <> 1 then Alcotest.failf "index %d hit %d times" i h) hits

let test_blocktime_spin_vs_sleep () =
  (* With blocktime=0 team members sleep between regions (no cpu);
     with a large blocktime they spin (cpu burned). *)
  let cpu_with blocktime =
    let eng, k, omp = make ~cores:4 ~blocktime () in
    run_main k omp (fun master ->
        Omp.parallel omp ~master ~nthreads:4 (fun _ klt -> Kernel.compute k klt 1e-3);
        (* idle gap before next region *)
        Kernel.sleep k master 0.02;
        Omp.parallel omp ~master ~nthreads:4 (fun _ klt -> Kernel.compute k klt 1e-3));
    Engine.run eng;
    Kernel.total_busy_time k
  in
  let sleeping = cpu_with 0.0 in
  let spinning = cpu_with 0.5 in
  if spinning < sleeping +. 0.03 then
    Alcotest.failf "spinning %f vs sleeping %f" spinning sleeping

let test_taskset_packing () =
  let eng, k, omp = make ~cores:4 () in
  let t_end = ref 0.0 in
  run_main k omp (fun master ->
      (* Warm the team, then pack everything onto core 0. *)
      Omp.parallel omp ~master ~nthreads:4 (fun _ klt -> Kernel.compute k klt 1e-4);
      let mask = Cpuset.of_list 4 [ 0 ] in
      Omp.set_affinity_all omp mask;
      Kernel.set_affinity k master mask;
      Omp.parallel omp ~master ~nthreads:4 (fun _ klt -> Kernel.compute k klt 5e-3);
      t_end := Kernel.now k);
  Engine.run eng;
  (* 20 ms of work forced onto one core: at least ~20 ms wall. *)
  if !t_end < 0.02 then Alcotest.failf "packing ignored: %f" !t_end

let test_master_participates () =
  let eng, k, omp = make () in
  let master_tid_ran = ref false in
  run_main k omp (fun master ->
      Omp.parallel omp ~master ~nthreads:4 (fun tid klt ->
          ignore klt;
          if tid = 0 then master_tid_ran := true));
  Engine.run eng;
  Alcotest.(check bool) "tid 0 is master" true !master_tid_ran

(* Property: any random sequence of region sizes executes each region
   with exactly its requested thread count, reusing hot-team threads. *)
let prop_random_region_sequences =
  QCheck.Test.make ~name:"random region sequences execute exactly" ~count:25
    QCheck.(list_of_size Gen.(1 -- 8) (int_range 1 6))
    (fun sizes ->
      let eng, k, omp = make ~cores:6 () in
      let counts = ref [] in
      run_main k omp (fun master ->
          List.iter
            (fun n ->
              let c = ref 0 in
              Omp.parallel omp ~master ~nthreads:n (fun _tid klt ->
                  Kernel.compute k klt 1e-5;
                  incr c);
              counts := !c :: !counts)
            sizes);
      Engine.run eng;
      (* Threads created never exceed the max region size - 1. *)
      List.rev !counts = sizes
      && Omp.team_threads omp <= List.fold_left Stdlib.max 1 sizes - 1 + 1)

let test_team_klts_listed () =
  let eng, k, omp = make () in
  run_main k omp (fun master ->
      Omp.parallel omp ~master ~nthreads:4 (fun _ klt -> Kernel.compute k klt 1e-4));
  Engine.run eng;
  Alcotest.(check int) "3 members listed" 3 (List.length (Omp.team_klts omp))

let suite =
  [
    Alcotest.test_case "parallel runs all tids" `Quick test_parallel_runs_all;
    Alcotest.test_case "parallel is parallel" `Quick test_parallel_is_parallel;
    Alcotest.test_case "implicit barrier" `Quick test_implicit_barrier;
    Alcotest.test_case "hot team reuse" `Quick test_hot_team_reuse;
    Alcotest.test_case "shrinking region" `Quick test_shrinking_region;
    Alcotest.test_case "nested teams" `Quick test_nested_teams;
    Alcotest.test_case "parallel_for coverage" `Quick test_parallel_for_coverage;
    Alcotest.test_case "blocktime spin vs sleep" `Quick test_blocktime_spin_vs_sleep;
    Alcotest.test_case "taskset packing" `Quick test_taskset_packing;
    Alcotest.test_case "master participates" `Quick test_master_participates;
    Alcotest.test_case "team_klts listed" `Quick test_team_klts_listed;
    QCheck_alcotest.to_alcotest prop_random_region_sequences;
  ]
