(* SCHED_FIFO real-time policy in the simulated kernel — the strict
   prioritization the paper's §4.3 says needs root on real systems. *)

open Desim
open Oskern

let make () =
  let eng = Engine.create () in
  let k = Kernel.create eng (Machine.with_cores Machine.skylake 1) in
  (eng, k)

let test_fifo_beats_cfs () =
  let eng, k = make () in
  let order = ref [] in
  (* CFS hog starts first; an RT task wakes later and must finish first. *)
  ignore
    (Kernel.spawn k ~name:"cfs-hog" (fun klt ->
         Kernel.compute k klt 0.05;
         order := "cfs" :: !order));
  let rt =
    Kernel.spawn k ~name:"rt" (fun klt ->
        Kernel.sleep k klt 0.01;
        Kernel.compute k klt 0.02;
        order := "rt" :: !order)
  in
  Kernel.set_policy k rt (`Fifo 10);
  Engine.run eng;
  Alcotest.(check (list string)) "rt first" [ "rt"; "cfs" ] (List.rev !order)

let test_fifo_runs_to_completion () =
  let eng, k = make () in
  let rt_done = ref 0.0 in
  let rt =
    Kernel.spawn k ~name:"rt" (fun klt ->
        Kernel.compute k klt 0.05;
        rt_done := Kernel.now k)
  in
  Kernel.set_policy k rt (`Fifo 5);
  ignore (Kernel.spawn k ~name:"cfs" (fun klt -> Kernel.compute k klt 0.05));
  Engine.run eng;
  (* No timeslicing against CFS: the RT task monopolizes the core. *)
  if !rt_done > 0.051 then Alcotest.failf "RT task was timesliced: done at %f" !rt_done

let test_fifo_priorities () =
  let eng, k = make () in
  let order = ref [] in
  let mk name prio delay =
    let klt =
      Kernel.spawn k ~name (fun klt ->
          if delay > 0.0 then Kernel.sleep k klt delay;
          Kernel.compute k klt 0.02;
          order := name :: !order)
    in
    Kernel.set_policy k klt (`Fifo prio)
  in
  mk "low" 1 0.0;
  (* high wakes while low is running and must preempt it *)
  mk "high" 9 0.005;
  Engine.run eng;
  Alcotest.(check (list string)) "high preempts low" [ "high"; "low" ] (List.rev !order)

let test_equal_fifo_is_fifo () =
  let eng, k = make () in
  let order = ref [] in
  for i = 0 to 2 do
    let klt =
      Kernel.spawn k
        ~name:(Printf.sprintf "rt%d" i)
        (fun klt ->
          Kernel.compute k klt 0.01;
          order := i :: !order)
    in
    Kernel.set_policy k klt (`Fifo 5)
  done;
  Engine.run eng;
  (* Same priority: run in arrival order, each to completion. *)
  Alcotest.(check (list int)) "arrival order" [ 0; 1; 2 ] (List.rev !order)

let test_policy_name () =
  let _eng, k = make () in
  let klt = Kernel.spawn k ~name:"x" (fun _ -> ()) in
  Alcotest.(check string) "default" "SCHED_OTHER" (Kernel.policy_name klt);
  Kernel.set_policy k klt (`Fifo 42);
  Alcotest.(check string) "fifo" "SCHED_FIFO:42" (Kernel.policy_name klt);
  Kernel.set_policy k klt `Other;
  Alcotest.(check string) "back" "SCHED_OTHER" (Kernel.policy_name klt)

let test_cfs_starves_under_rt_load () =
  (* Two RT spinners saturate the core: a CFS task makes no progress
     until they finish — the reason real systems gate SCHED_FIFO. *)
  let eng, k = make () in
  let cfs_done = ref 0.0 in
  ignore
    (Kernel.spawn k ~name:"cfs" (fun klt ->
         Kernel.compute k klt 0.01;
         cfs_done := Kernel.now k));
  for i = 0 to 1 do
    let klt =
      Kernel.spawn k ~name:(Printf.sprintf "rt%d" i) (fun klt -> Kernel.compute k klt 0.03)
    in
    Kernel.set_policy k klt (`Fifo 3)
  done;
  Engine.run eng;
  if !cfs_done < 0.06 then Alcotest.failf "CFS ran under RT load: %f" !cfs_done

let test_wake_preempt_survives_kernel_section () =
  (* Regression: an RT wake landing while the current KLT is inside a
     non-preemptible kernel charge used to be dropped silently. *)
  let eng, k = make () in
  let first_rt_progress = ref 0.0 in
  ignore
    (Kernel.spawn k ~name:"cfs-hog" (fun klt ->
         (* Long compute: the initial dispatch overhead consumption is
            the non-preemptible window the RT wake can land in. *)
         Kernel.compute k klt 0.05));
  let rt =
    Kernel.spawn k ~name:"rt" (fun klt ->
        Kernel.compute k klt 0.01;
        first_rt_progress := Kernel.now k)
  in
  Kernel.set_policy k rt (`Fifo 7);
  Engine.run eng;
  (* The RT task must run promptly, not after the hog's 50 ms. *)
  if !first_rt_progress > 0.02 then
    Alcotest.failf "RT delayed to %f (wake preempt dropped)" !first_rt_progress

let suite =
  [
    Alcotest.test_case "FIFO beats CFS" `Quick test_fifo_beats_cfs;
    Alcotest.test_case "FIFO runs to completion" `Quick test_fifo_runs_to_completion;
    Alcotest.test_case "higher FIFO priority preempts" `Quick test_fifo_priorities;
    Alcotest.test_case "equal FIFO is arrival-ordered" `Quick test_equal_fifo_is_fifo;
    Alcotest.test_case "policy names" `Quick test_policy_name;
    Alcotest.test_case "CFS starves under RT load" `Quick test_cfs_starves_under_rt_load;
    Alcotest.test_case "wake preempt survives kernel section" `Quick
      test_wake_preempt_survives_kernel_section;
  ]
