open Desim

let test_empty () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check int) "length" 0 (Heap.length h);
  Alcotest.(check bool) "peek none" true (Heap.peek_min h = None);
  Alcotest.check_raises "pop raises" Not_found (fun () -> ignore (Heap.pop_min h))

let test_ordering () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h k (int_of_float k)) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let out = List.init 5 (fun _ -> fst (Heap.pop_min h)) in
  Alcotest.(check (list (float 0.0))) "sorted" [ 1.0; 2.0; 3.0; 4.0; 5.0 ] out

let test_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h 1.0 v) [ "a"; "b"; "c" ];
  Heap.push h 0.5 "first";
  let out = List.init 4 (fun _ -> snd (Heap.pop_min h)) in
  Alcotest.(check (list string)) "tie order is FIFO" [ "first"; "a"; "b"; "c" ] out

let test_interleaved () =
  let h = Heap.create () in
  Heap.push h 2.0 2;
  Heap.push h 1.0 1;
  Alcotest.(check int) "min" 1 (snd (Heap.pop_min h));
  Heap.push h 0.5 0;
  Alcotest.(check int) "new min" 0 (snd (Heap.pop_min h));
  Alcotest.(check int) "last" 2 (snd (Heap.pop_min h))

let test_clear () =
  let h = Heap.create () in
  Heap.push h 1.0 ();
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

let test_to_list () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h k ()) [ 3.0; 1.0; 2.0 ];
  let keys = List.sort compare (List.map fst (Heap.to_list h)) in
  Alcotest.(check (list (float 0.0))) "all present" [ 1.0; 2.0; 3.0 ] keys

let prop_heap_sort =
  QCheck.Test.make ~name:"heap sorts any float list" ~count:200
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun floats ->
      let h = Heap.create () in
      List.iter (fun f -> Heap.push h f ()) floats;
      let popped = List.init (List.length floats) (fun _ -> fst (Heap.pop_min h)) in
      popped = List.sort compare floats)

let prop_stable =
  QCheck.Test.make ~name:"equal keys pop FIFO" ~count:100
    QCheck.(small_nat)
    (fun n ->
      let n = n + 1 in
      let h = Heap.create () in
      for i = 0 to n - 1 do
        Heap.push h 1.0 i
      done;
      let popped = List.init n (fun _ -> snd (Heap.pop_min h)) in
      popped = List.init n Fun.id)

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "pop in key order" `Quick test_ordering;
    Alcotest.test_case "FIFO on equal keys" `Quick test_fifo_ties;
    Alcotest.test_case "interleaved push/pop" `Quick test_interleaved;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "to_list" `Quick test_to_list;
    QCheck_alcotest.to_alcotest prop_heap_sort;
    QCheck_alcotest.to_alcotest prop_stable;
  ]
