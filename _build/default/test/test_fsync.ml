(* Fiber-level synchronization on the real multicore runtime. *)

module Fsync = Fiber.Fsync

let with_pool ?(domains = 3) f =
  let pool = Fiber.create ~domains () in
  Fun.protect ~finally:(fun () -> Fiber.shutdown pool) (fun () -> f pool)

let test_mutex_counter () =
  with_pool (fun pool ->
      let m = Fsync.Mutex.create () in
      let counter = ref 0 in
      Fiber.run pool (fun () ->
          let ps =
            List.init 8 (fun _ ->
                Fiber.spawn (fun () ->
                    for _ = 1 to 500 do
                      Fsync.Mutex.with_lock m (fun () -> incr counter)
                    done))
          in
          List.iter Fiber.await ps);
      Alcotest.(check int) "no lost updates" 4000 !counter)

let test_mutex_trylock () =
  with_pool ~domains:1 (fun pool ->
      Fiber.run pool (fun () ->
          let m = Fsync.Mutex.create () in
          Alcotest.(check bool) "free" true (Fsync.Mutex.try_lock m);
          Alcotest.(check bool) "held" false (Fsync.Mutex.try_lock m);
          Fsync.Mutex.unlock m;
          Alcotest.(check bool) "free again" true (Fsync.Mutex.try_lock m);
          Fsync.Mutex.unlock m))

let test_mutex_unlock_unlocked () =
  with_pool ~domains:1 (fun pool ->
      Fiber.run pool (fun () ->
          let m = Fsync.Mutex.create () in
          Alcotest.check_raises "invalid"
            (Invalid_argument "Fsync.Mutex.unlock: not locked") (fun () ->
              Fsync.Mutex.unlock m)))

let test_semaphore_bound () =
  with_pool (fun pool ->
      let sem = Fsync.Semaphore.create 2 in
      let active = Atomic.make 0 in
      let peak = Atomic.make 0 in
      Fiber.run pool (fun () ->
          let ps =
            List.init 10 (fun _ ->
                Fiber.spawn (fun () ->
                    Fsync.Semaphore.acquire sem;
                    let a = Atomic.fetch_and_add active 1 + 1 in
                    let rec bump () =
                      let p = Atomic.get peak in
                      if a > p && not (Atomic.compare_and_set peak p a) then bump ()
                    in
                    bump ();
                    Fiber.yield ();
                    ignore (Atomic.fetch_and_add active (-1));
                    Fsync.Semaphore.release sem))
          in
          List.iter Fiber.await ps);
      if Atomic.get peak > 2 then Alcotest.failf "peak %d > 2" (Atomic.get peak))

let test_channel_spmc () =
  with_pool (fun pool ->
      let ch = Fsync.Channel.create () in
      let total = Atomic.make 0 in
      Fiber.run pool (fun () ->
          let consumers =
            List.init 4 (fun _ ->
                Fiber.spawn (fun () ->
                    for _ = 1 to 25 do
                      ignore (Atomic.fetch_and_add total (Fsync.Channel.recv ch))
                    done))
          in
          for i = 1 to 100 do
            Fsync.Channel.send ch i
          done;
          List.iter Fiber.await consumers);
      Alcotest.(check int) "all received once" 5050 (Atomic.get total);
      Alcotest.(check int) "drained" 0 (Fsync.Channel.length ch))

let test_channel_try_recv () =
  with_pool ~domains:1 (fun pool ->
      Fiber.run pool (fun () ->
          let ch = Fsync.Channel.create () in
          Alcotest.(check (option int)) "empty" None (Fsync.Channel.try_recv ch);
          Fsync.Channel.send ch 5;
          Alcotest.(check (option int)) "item" (Some 5) (Fsync.Channel.try_recv ch)))

let test_barrier_phases () =
  with_pool (fun pool ->
      let n = 4 in
      let b = Fsync.Barrier.create n in
      let phase = Atomic.make 0 in
      let errors = Atomic.make 0 in
      Fiber.run pool (fun () ->
          let ps =
            List.init n (fun _ ->
                Fiber.spawn (fun () ->
                    for expected = 0 to 4 do
                      (* Everyone must observe the same phase here. *)
                      if Atomic.get phase <> expected then Atomic.incr errors;
                      Fsync.Barrier.wait b;
                      (* Exactly one CAS succeeds between the barriers. *)
                      ignore (Atomic.compare_and_set phase expected (expected + 1));
                      Fsync.Barrier.wait b
                    done))
          in
          List.iter Fiber.await ps);
      Alcotest.(check int) "no phase tearing" 0 (Atomic.get errors))

let test_producer_consumer_pipeline () =
  with_pool (fun pool ->
      let stage1 = Fsync.Channel.create () in
      let stage2 = Fsync.Channel.create () in
      let result = Fiber.run pool (fun () ->
          let squarer =
            Fiber.spawn (fun () ->
                for _ = 1 to 50 do
                  Fsync.Channel.send stage2 (Fsync.Channel.recv stage1 * 2)
                done)
          in
          let sum = Fiber.spawn (fun () ->
              let acc = ref 0 in
              for _ = 1 to 50 do
                acc := !acc + Fsync.Channel.recv stage2
              done;
              !acc)
          in
          for i = 1 to 50 do
            Fsync.Channel.send stage1 i
          done;
          Fiber.await squarer;
          Fiber.await sum)
      in
      Alcotest.(check int) "pipeline sum" (2 * 50 * 51 / 2) result)

let suite =
  [
    Alcotest.test_case "mutex protects counter" `Quick test_mutex_counter;
    Alcotest.test_case "mutex try_lock" `Quick test_mutex_trylock;
    Alcotest.test_case "mutex unlock unlocked" `Quick test_mutex_unlock_unlocked;
    Alcotest.test_case "semaphore bounds concurrency" `Quick test_semaphore_bound;
    Alcotest.test_case "channel SPMC" `Quick test_channel_spmc;
    Alcotest.test_case "channel try_recv" `Quick test_channel_try_recv;
    Alcotest.test_case "barrier phases" `Quick test_barrier_phases;
    Alcotest.test_case "producer/consumer pipeline" `Quick test_producer_consumer_pipeline;
  ]
