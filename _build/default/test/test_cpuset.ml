open Oskern

let test_all () =
  let s = Cpuset.all 4 in
  Alcotest.(check int) "count" 4 (Cpuset.count s);
  Alcotest.(check (list int)) "members" [ 0; 1; 2; 3 ] (Cpuset.to_list s);
  Alcotest.(check bool) "mem" true (Cpuset.mem s 3);
  Alcotest.(check bool) "out of range" false (Cpuset.mem s 4);
  Alcotest.(check int) "width" 4 (Cpuset.width s)

let test_of_list () =
  let s = Cpuset.of_list 8 [ 1; 5 ] in
  Alcotest.(check (list int)) "members" [ 1; 5 ] (Cpuset.to_list s);
  Alcotest.(check bool) "not member" false (Cpuset.mem s 0)

let test_range () =
  let s = Cpuset.range 8 2 4 in
  Alcotest.(check (list int)) "range" [ 2; 3; 4 ] (Cpuset.to_list s)

let test_equal () =
  Alcotest.(check bool) "equal" true
    (Cpuset.equal (Cpuset.of_list 4 [ 0; 2 ]) (Cpuset.of_list 4 [ 2; 0 ]));
  Alcotest.(check bool) "not equal" false
    (Cpuset.equal (Cpuset.of_list 4 [ 0 ]) (Cpuset.of_list 4 [ 1 ]))

let test_invalid () =
  Alcotest.check_raises "bad core" (Invalid_argument "Cpuset.of_list: core out of range")
    (fun () -> ignore (Cpuset.of_list 2 [ 2 ]));
  Alcotest.check_raises "bad range" (Invalid_argument "Cpuset.range: bad range")
    (fun () -> ignore (Cpuset.range 4 3 1))

let test_machine_presets () =
  Alcotest.(check int) "skylake cores" 56 Machine.skylake.Machine.cores;
  Alcotest.(check int) "knl cores" 68 Machine.knl.Machine.cores;
  let small = Machine.with_cores Machine.skylake 4 in
  Alcotest.(check int) "with_cores" 4 small.Machine.cores;
  Alcotest.check_raises "with_cores 0" (Invalid_argument "Machine.with_cores: n <= 0")
    (fun () -> ignore (Machine.with_cores Machine.skylake 0))

let test_flops_seconds () =
  let s = Machine.flops_seconds Machine.skylake ~per_core_gflops:10.0 1e10 in
  Alcotest.(check (float 1e-9)) "1 second of flops" 1.0 s

let suite =
  [
    Alcotest.test_case "all" `Quick test_all;
    Alcotest.test_case "of_list" `Quick test_of_list;
    Alcotest.test_case "range" `Quick test_range;
    Alcotest.test_case "equal" `Quick test_equal;
    Alcotest.test_case "invalid arguments" `Quick test_invalid;
    Alcotest.test_case "machine presets" `Quick test_machine_presets;
    Alcotest.test_case "flops_seconds" `Quick test_flops_seconds;
  ]
