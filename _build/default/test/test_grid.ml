open Multigrid

let pi = 4.0 *. atan 1.0

(* -u'' = f with u = sin(pi x): f = pi^2 sin(pi x). *)
let setup n_finest levels =
  let h = Grid.make_hierarchy ~levels ~n_finest in
  let err =
    Grid.set_problem h
      (fun x -> pi *. pi *. sin (pi *. x))
      (fun x -> sin (pi *. x))
  in
  (h, err)

let test_direct_solver_exact () =
  let h, err = setup 63 1 in
  Grid.solve_direct (Grid.finest h);
  (* Second-order discretization error only. *)
  let e = err () in
  if e > 1e-3 then Alcotest.failf "direct solve error %g" e

let test_smoother_reduces_residual () =
  let h, _ = setup 63 1 in
  let lvl = Grid.finest h in
  let r0 = Grid.residual lvl in
  Grid.smooth lvl ~sweeps:50;
  let r1 = Grid.residual lvl in
  if r1 >= r0 then Alcotest.failf "smoother did not reduce residual: %g -> %g" r0 r1

let test_v_cycles_converge () =
  let h, _ = setup 127 5 in
  let lvl = Grid.finest h in
  let r0 = Grid.residual lvl in
  for _ = 1 to 8 do
    Grid.v_cycle h ~sweeps:2 ()
  done;
  let r1 = Grid.residual lvl in
  if r1 > r0 *. 1e-6 then Alcotest.failf "V-cycles stalled: %g -> %g" r0 r1

let test_v_cycle_rate () =
  (* Multigrid contraction: each V(2,2) cycle should shrink the residual
     by a healthy constant factor. *)
  let h, _ = setup 127 5 in
  let lvl = Grid.finest h in
  Grid.v_cycle h ~sweeps:2 ();
  let r1 = Grid.residual lvl in
  Grid.v_cycle h ~sweeps:2 ();
  let r2 = Grid.residual lvl in
  if r2 > 0.35 *. r1 then Alcotest.failf "poor contraction: %g -> %g" r1 r2

let test_fmg_accuracy () =
  let h, err = setup 255 7 in
  ignore (Grid.fmg h ~sweeps:2);
  (* FMG should reach discretization-level accuracy (O(h^2) ~ 1.5e-5). *)
  let e = err () in
  if e > 1e-4 then Alcotest.failf "FMG error %g" e

let test_fmg_beats_smoothing () =
  let h1, err1 = setup 127 6 in
  ignore (Grid.fmg h1 ~sweeps:2);
  let h2, err2 = setup 127 1 in
  Grid.smooth (Grid.finest h2) ~sweeps:100;
  if err1 () >= err2 () then Alcotest.fail "FMG no better than plain smoothing"

let test_profile_total_and_structure () =
  let ps = Fmg_profile.phases ~levels:7 ~total_core_seconds:25.0 in
  Alcotest.(check (float 1e-6)) "total scaled" 25.0 (Fmg_profile.total_work ps);
  Alcotest.(check bool) "many phases" true (Fmg_profile.count ps > 50);
  (* Finest-level phases dominate the work. *)
  let finest_work =
    List.fold_left
      (fun acc (p : Fmg_profile.phase) -> if p.level = 0 then acc +. p.work else acc)
      0.0 ps
  in
  if finest_work < 0.7 *. 25.0 then Alcotest.failf "finest work only %g" finest_work;
  List.iter
    (fun (p : Fmg_profile.phase) ->
      if p.work <= 0.0 then Alcotest.fail "non-positive phase work")
    ps

let test_profile_levels_span_orders () =
  let ps = Fmg_profile.phases ~levels:7 ~total_core_seconds:25.0 in
  let works = List.map (fun (p : Fmg_profile.phase) -> p.work) ps in
  let lo = List.fold_left Float.min infinity works in
  let hi = List.fold_left Float.max 0.0 works in
  if hi /. lo < 1000.0 then Alcotest.failf "phase sizes too uniform: %g..%g" lo hi

let suite =
  [
    Alcotest.test_case "direct solver exact" `Quick test_direct_solver_exact;
    Alcotest.test_case "smoother reduces residual" `Quick test_smoother_reduces_residual;
    Alcotest.test_case "V-cycles converge" `Quick test_v_cycles_converge;
    Alcotest.test_case "V-cycle contraction rate" `Quick test_v_cycle_rate;
    Alcotest.test_case "FMG reaches discretization accuracy" `Quick test_fmg_accuracy;
    Alcotest.test_case "FMG beats smoothing" `Quick test_fmg_beats_smoothing;
    Alcotest.test_case "phase profile total/structure" `Quick test_profile_total_and_structure;
    Alcotest.test_case "phase sizes span orders" `Quick test_profile_levels_span_orders;
  ]
