examples/insitu_priority.ml: List Moldyn Printf
