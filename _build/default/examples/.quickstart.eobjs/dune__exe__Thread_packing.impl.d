examples/thread_packing.ml: Config List Multigrid Oskern Preempt_core Printf Types
