examples/quickstart.mli:
