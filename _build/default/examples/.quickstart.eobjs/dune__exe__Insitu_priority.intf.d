examples/insitu_priority.mli:
