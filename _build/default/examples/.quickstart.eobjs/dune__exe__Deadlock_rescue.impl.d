examples/deadlock_rescue.ml: Config Desim Engine Kernel Linalg Machine Oskern Preempt_core Printf Runtime Types Ult
