examples/tiled_lu.ml: Array Config Desim Engine Kernel Linalg List Lu Machine Matrix Oskern Preempt_core Printf Rng Runtime Types Ult Usync
