examples/fiber_pipeline.ml: Array Fiber Printf Unix
