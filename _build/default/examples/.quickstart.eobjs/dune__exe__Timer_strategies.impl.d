examples/timer_strategies.ml: Config Desim Engine Kernel List Machine Oskern Preempt_core Printf Runtime Stats Types Ult
