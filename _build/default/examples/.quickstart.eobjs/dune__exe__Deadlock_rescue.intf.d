examples/deadlock_rescue.mli:
