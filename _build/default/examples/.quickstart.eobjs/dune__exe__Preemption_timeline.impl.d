examples/preemption_timeline.ml: Config Desim Engine Experiments Kernel Machine Oskern Preempt_core Printf Runtime Trace Types Ult
