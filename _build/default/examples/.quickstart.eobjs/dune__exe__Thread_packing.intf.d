examples/thread_packing.mli:
