examples/quickstart.ml: Atomic Fiber List Printf Unix
