examples/fiber_pipeline.mli:
