examples/timer_strategies.mli:
