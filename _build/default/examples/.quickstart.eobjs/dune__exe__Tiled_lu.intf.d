examples/tiled_lu.mli:
