(* The paper's motivating failure and its fix, §4.1, on the simulated
   runtime: a busy-wait synchronization (stock Intel MKL style) running
   on nonpreemptive M:N threads deadlocks; the same program on
   KLT-switching preemptive threads completes.

   Run with:  dune exec examples/deadlock_rescue.exe *)

open Desim
open Oskern
open Preempt_core

(* Two threads pinned to one worker: the first busy-waits on a flag only
   the second can set.  Without preemption the second never runs. *)
let scenario ~kind ~timer label =
  let eng = Engine.create () in
  let kernel = Kernel.create eng (Machine.with_cores Machine.skylake 1) in
  let config = { Config.default with Config.timer_strategy = timer; interval = 1e-3 } in
  let rt = Runtime.create ~config kernel ~n_workers:1 in
  let flag = ref false in
  ignore
    (Runtime.spawn rt ~kind ~home:0 ~name:"spinner" (fun () ->
         (* e.g. MKL's team barrier: spin on a memory flag, never yield *)
         while not !flag do
           Ult.compute 20e-6
         done));
  ignore (Runtime.spawn rt ~kind ~home:0 ~name:"setter" (fun () -> flag := true));
  Runtime.start rt;
  Engine.run ~until:0.25 eng;
  if Runtime.unfinished rt > 0 then
    Printf.printf "%-28s DEADLOCK after %.2fs of virtual time (%d threads stuck)\n" label
      (Engine.now eng) (Runtime.unfinished rt)
  else
    Printf.printf "%-28s completed at t=%.6fs (%d preemptions, %d KLT switches)\n" label
      (Engine.now eng) (Runtime.preempt_signals rt) (Runtime.klt_switches rt)

let () =
  print_endline "Busy-wait flag synchronization on one worker, two M:N threads:";
  scenario ~kind:Types.Nonpreemptive ~timer:Config.No_timer "nonpreemptive:";
  scenario ~kind:Types.Signal_yield ~timer:Config.Per_worker_aligned "signal-yield (1 ms):";
  scenario ~kind:Types.Klt_switching ~timer:Config.Per_worker_aligned "KLT-switching (1 ms):";
  print_newline ();
  print_endline "And the paper's real case — tiled Cholesky whose inner BLAS teams";
  print_endline "busy-wait like stock Intel MKL (4 outer x 4 inner on 4 cores):";
  let machine = Machine.with_cores Machine.skylake 4 in
  let run label cfg =
    let r = Linalg.Cholesky_run.run ~machine ~outer:4 ~inner:4 ~tiles:6 ~tile_dim:300 cfg in
    if r.Linalg.Cholesky_run.deadlocked then Printf.printf "%-38s DEADLOCK\n" label
    else Printf.printf "%-38s %.1f GFLOPS\n" label r.gflops
  in
  run "BOLT nonpreemptive + stock MKL:"
    (Linalg.Cholesky_run.Bolt
       {
         kind = Types.Nonpreemptive;
         mkl = Linalg.Blas_model.Busy_wait;
         timer = Config.No_timer;
         interval = 1e-3;
       });
  run "BOLT KLT-switching 1 ms + stock MKL:"
    (Linalg.Cholesky_run.Bolt
       {
         kind = Types.Klt_switching;
         mkl = Linalg.Blas_model.Busy_wait;
         timer = Config.Per_worker_aligned;
         interval = 1e-3;
       })
