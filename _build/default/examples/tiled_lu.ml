(* Real numerics on the simulated preemptive runtime: every task of a
   tiled LU factorization runs as a user-level thread that (a) performs
   the actual floating-point tile kernel, and (b) charges its simulated
   cost so the schedule is realistic.  Dependencies are enforced with
   the runtime's ULT-level synchronization, and preemption keeps the
   workers responsive while a "monitoring" thread runs alongside.

   Run with:  dune exec examples/tiled_lu.exe *)

open Desim
open Oskern
open Preempt_core
open Linalg

let tiles = 4

let tile_dim = 16

let () =
  let eng = Engine.create () in
  let kernel = Kernel.create eng (Machine.with_cores Machine.skylake 4) in
  let config =
    {
      Config.default with
      Config.timer_strategy = Config.Per_worker_aligned;
      interval = 1e-3;
    }
  in
  let rt = Runtime.create ~config kernel ~n_workers:4 in

  (* Real matrix, real tiles. *)
  let n = tiles * tile_dim in
  let a = Lu.random_dd (Rng.make 2024) n in
  let reference = Matrix.copy a in
  Lu.getrf reference;
  let b = tile_dim in
  let blocks =
    Array.init (tiles * tiles) (fun idx ->
        let i = idx / tiles and j = idx mod tiles in
        let blk = Matrix.create b in
        for r = 0 to b - 1 do
          for c = 0 to b - 1 do
            Matrix.set blk r c (Matrix.get a ((i * b) + r) ((j * b) + c))
          done
        done;
        blk)
  in
  let blk i j = blocks.((i * tiles) + j) in

  (* One ULT per DAG task; each waits for its predecessors' ivars. *)
  let tasks = Lu.dag tiles in
  let done_ivars = Array.map (fun _ -> Usync.Ivar.create rt) tasks in
  let simulated_seconds op = Lu.flops op ~b:1000 /. 25e9 (* as if tiles were 1000^2 *) in
  Array.iter
    (fun (tk : Lu.task) ->
      ignore
        (Runtime.spawn rt ~kind:Types.Klt_switching ~name:"lu-task" (fun () ->
             List.iter (fun p -> ignore (Usync.Ivar.read done_ivars.(p))) tk.preds;
             (* The real computation... *)
             (match tk.op with
             | Lu.Getrf k -> Lu.getrf (blk k k)
             | Lu.Trsm_l (k, j) -> Lu.trsm_l (blk k k) (blk k j)
             | Lu.Trsm_u (i, k) -> Lu.trsm_u (blk k k) (blk i k)
             | Lu.Gemm (i, j, k) -> Lu.gemm (blk i k) (blk k j) (blk i j));
             (* ...and its simulated cost. *)
             Ult.compute (simulated_seconds tk.op);
             Usync.Ivar.fill done_ivars.(tk.id) ())))
    tasks;

  (* A low-duty-cycle monitor thread shares the workers thanks to
     preemption — with nonpreemptive tasks it would be starved. *)
  let samples = ref 0 in
  ignore
    (Runtime.spawn rt ~kind:Types.Signal_yield ~name:"monitor" (fun () ->
         for _ = 1 to 20 do
           Ult.compute 2e-3;
           incr samples
         done));

  Runtime.start rt;
  Engine.run eng;

  (* Validate the factorization computed under the simulated schedule. *)
  let out = Matrix.create n in
  for i = 0 to tiles - 1 do
    for j = 0 to tiles - 1 do
      for r = 0 to b - 1 do
        for c = 0 to b - 1 do
          Matrix.set out ((i * b) + r) ((j * b) + c) (Matrix.get (blk i j) r c)
        done
      done
    done
  done;
  let rel = Matrix.norm (Matrix.sub out reference) /. Matrix.norm reference in
  Printf.printf "tiled LU of a %dx%d matrix on 4 simulated workers\n" n n;
  Printf.printf "  %d tasks, virtual makespan %.3fs, %d preemptions, %d KLT switches\n"
    (Array.length tasks) (Engine.now eng)
    (Runtime.preempt_signals rt) (Runtime.klt_switches rt);
  Printf.printf "  monitor thread sampled %d/20 times while LU ran\n" !samples;
  Printf.printf "  factorization error vs reference: %.2e  (%s)\n" rel
    (if rel < 1e-9 then "CORRECT" else "WRONG");
  exit (if rel < 1e-9 then 0 else 1)
