(* Fibers + channels on real cores: a sorting service built from the
   fiber runtime's synchronization primitives.

   Run with:  dune exec examples/fiber_pipeline.exe *)

module Fsync = Fiber.Fsync

(* Parallel mergesort: fork the left half as a fiber, recurse right. *)
let rec msort (a : int array) lo hi =
  let n = hi - lo in
  if n <= 4096 then begin
    let sub = Array.sub a lo n in
    Array.sort compare sub;
    Array.blit sub 0 a lo n
  end
  else begin
    let mid = lo + (n / 2) in
    let left = Fiber.spawn (fun () -> msort a lo mid) in
    msort a mid hi;
    Fiber.await left;
    (* merge in place via scratch *)
    let scratch = Array.make n 0 in
    let i = ref lo and j = ref mid and k = ref 0 in
    while !i < mid && !j < hi do
      if a.(!i) <= a.(!j) then begin
        scratch.(!k) <- a.(!i);
        incr i
      end
      else begin
        scratch.(!k) <- a.(!j);
        incr j
      end;
      incr k
    done;
    while !i < mid do
      scratch.(!k) <- a.(!i);
      incr i;
      incr k
    done;
    while !j < hi do
      scratch.(!k) <- a.(!j);
      incr j;
      incr k
    done;
    Array.blit scratch 0 a lo n
  end

let is_sorted a =
  let ok = ref true in
  for i = 1 to Array.length a - 1 do
    if a.(i - 1) > a.(i) then ok := false
  done;
  !ok

let () =
  let pool = Fiber.create () in
  Printf.printf "sorting service on %d worker domain(s)\n%!" (Fiber.domains pool);
  let requests = Fsync.Channel.create () in
  let replies = Fsync.Channel.create () in
  let n_jobs = 8 in
  Fiber.run pool (fun () ->
      (* A service fiber that sorts whatever arrives on [requests]. *)
      let service =
        Fiber.spawn (fun () ->
            for _ = 1 to n_jobs do
              let id, arr = Fsync.Channel.recv requests in
              msort arr 0 (Array.length arr);
              Fsync.Channel.send replies (id, is_sorted arr)
            done)
      in
      (* Clients submit jobs of varying sizes concurrently. *)
      let t0 = Unix.gettimeofday () in
      for id = 1 to n_jobs do
        let n = 20_000 * id in
        let arr = Array.init n (fun i -> (i * 7919 + id * 104729) mod 1_000_003) in
        Fsync.Channel.send requests (id, arr)
      done;
      for _ = 1 to n_jobs do
        let id, ok = Fsync.Channel.recv replies in
        Printf.printf "  job %d: %s\n%!" id (if ok then "sorted" else "FAILED")
      done;
      Fiber.await service;
      Printf.printf "all %d jobs done in %.3fs\n%!" n_jobs (Unix.gettimeofday () -. t0));
  Fiber.shutdown pool
