(* Visualize what KLT-switching actually does to the cores: a Gantt
   timeline of one worker preempting two compute threads.  Watch the
   worker's kernel thread change identity at every switch — the thread
   pool's KLTs (pool-klt0, pool-klt1, ...) take over while the original
   worker KLT sleeps bound to its preempted thread.

   Run with:  dune exec examples/preemption_timeline.exe *)

open Desim
open Oskern
open Preempt_core

let () =
  let eng = Engine.create () in
  let tr = Trace.create () in
  Trace.enable tr;
  let kernel = Kernel.create ~trace:tr eng (Machine.with_cores Machine.skylake 1) in
  let config =
    {
      Config.default with
      Config.timer_strategy = Config.Per_worker_aligned;
      interval = 2e-3;
    }
  in
  let rt = Runtime.create ~config kernel ~n_workers:1 in
  for i = 0 to 1 do
    ignore
      (Runtime.spawn rt ~kind:Types.Klt_switching ~home:0
         ~name:(Printf.sprintf "thread%d" i)
         (fun () -> Ult.compute 0.012))
  done;
  Runtime.start rt;
  Engine.run eng;
  Printf.printf
    "One worker, two KLT-switching threads (12 ms each), 2 ms preemption timer.\n";
  Printf.printf "%d preemptions, %d KLT switches, %d extra KLTs created.\n\n"
    (Runtime.preempt_signals rt) (Runtime.klt_switches rt) (Runtime.klts_created rt);
  let g = Experiments.Gantt.of_trace ~cores:1 tr in
  print_string (Experiments.Gantt.render ~width:72 ~t0:0.0 ~t1:(Engine.now eng) g);
  print_newline ();
  print_endline "Each glyph change on the core lane is a kernel-thread switch: the";
  print_endline "original worker KLT sleeps bound to the preempted user-level thread";
  print_endline "(paper Fig. 2), and a pooled KLT carries the worker on (Fig. 3)."
