(* The four preemption-timer strategies of paper §3.2, head to head:
   how long does one timer interruption take as workers scale up?

   Run with:  dune exec examples/timer_strategies.exe *)

open Desim
open Oskern
open Preempt_core

let measure ~workers ~strategy =
  let eng = Engine.create () in
  let kernel = Kernel.create eng (Machine.with_cores Machine.skylake workers) in
  let config =
    { Config.default with Config.timer_strategy = strategy; interval = 1e-3 }
  in
  let rt = Runtime.create ~config kernel ~n_workers:workers in
  for i = 0 to workers - 1 do
    ignore
      (Runtime.spawn rt ~kind:Types.Signal_yield ~home:i
         ~name:(Printf.sprintf "spin%d" i) (fun () -> Ult.compute 1.0))
  done;
  Runtime.start rt;
  Engine.run ~until:0.05 eng;
  Stats.mean (Runtime.interrupt_stats rt)

let () =
  let strategies =
    [
      Config.Per_worker_creation;
      Config.Per_worker_aligned;
      Config.Per_process_one_to_all;
      Config.Per_process_chain;
    ]
  in
  Printf.printf "mean time per timer interruption (1 ms interval)\n\n%-10s" "#workers";
  List.iter (fun s -> Printf.printf "%28s" (Config.timer_strategy_name s)) strategies;
  print_newline ();
  List.iter
    (fun workers ->
      Printf.printf "%-10d" workers;
      List.iter
        (fun strategy ->
          Printf.printf "%25.2f us" (1e6 *. measure ~workers ~strategy))
        strategies;
      print_newline ())
    [ 1; 8; 28; 56 ];
  print_newline ();
  print_endline "Naive per-worker timers contend on the kernel signal lock; aligning";
  print_endline "them (or chaining per-process signals) keeps interruption time flat."
