(* Quickstart for the REAL fiber runtime: spawn a parallel computation
   on OCaml 5 domains with work stealing and safe-point preemption.

   Run with:  dune exec examples/quickstart.exe *)

let fib_threshold = 15

let rec seq_fib n = if n < 2 then n else seq_fib (n - 1) + seq_fib (n - 2)

(* Fork-join recursion: each [spawn] creates a fiber that any worker
   domain may steal. *)
let rec par_fib n =
  if n < fib_threshold then seq_fib n
  else
    let a = Fiber.spawn (fun () -> par_fib (n - 1)) in
    let b = par_fib (n - 2) in
    Fiber.await a + b

let () =
  (* A pool of workers (domains), with a 5 ms preemption ticker: fibers
     that call [Fiber.check] at safe points get descheduled when their
     time slice is up — the paper's preemption model, GHC-style. *)
  let pool = Fiber.create ~preempt_interval:5e-3 () in
  Printf.printf "fiber pool: %d worker domain(s)\n%!" (Fiber.domains pool);

  (* 1. Fork-join parallelism. *)
  let t0 = Unix.gettimeofday () in
  let r = Fiber.run pool (fun () -> par_fib 32) in
  Printf.printf "par_fib 32 = %d  (%.3fs)\n%!" r (Unix.gettimeofday () -. t0);

  (* 2. parallel_for with automatic chunking and preemption checks. *)
  let n = 1_000_000 in
  let acc = Atomic.make 0 in
  Fiber.run pool (fun () ->
      Fiber.parallel_for 0 n (fun i -> if i mod 97 = 0 then Atomic.incr acc));
  Printf.printf "multiples of 97 below %d: %d\n%!" n (Atomic.get acc);

  (* 3. A long-running fiber coexists with short ones thanks to
     preemption checks in its loop. *)
  let fairness = Fiber.run pool (fun () ->
      let done_short = Atomic.make 0 in
      let long =
        Fiber.spawn (fun () ->
            let t0 = Unix.gettimeofday () in
            while Unix.gettimeofday () -. t0 < 0.05 do
              Fiber.check () (* safe point: yields if the ticker fired *)
            done)
      in
      let shorts = List.init 16 (fun _ -> Fiber.spawn (fun () -> Atomic.incr done_short)) in
      List.iter Fiber.await shorts;
      Fiber.await long;
      Atomic.get done_short)
  in
  Printf.printf "short fibers completed alongside a hog: %d/16 (preemptions: %d)\n%!"
    fairness (Fiber.preemptions pool);
  Fiber.shutdown pool
