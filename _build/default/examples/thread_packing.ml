(* Thread packing (paper §4.2): 8 threads with barrier-separated phases
   are packed onto fewer cores.  The packing scheduler (Algorithm 1)
   plus preemption keeps the load balanced; nonpreemptive execution is
   fine only when the active core count divides the thread count; a
   taskset'd 1:1 runtime is at the mercy of the CFS model.

   Run with:  dune exec examples/thread_packing.exe *)

open Preempt_core
module PR = Multigrid.Packing_run

let () =
  let phases = Multigrid.Fmg_profile.phases ~levels:6 ~total_core_seconds:4.0 in
  Printf.printf "HPGMG-style FMG profile: %d phases, %.1f core-seconds total\n\n"
    (Multigrid.Fmg_profile.count phases)
    (Multigrid.Fmg_profile.total_work phases);
  Printf.printf "%-4s%16s%22s%22s%14s\n" "n" "ideal (s)" "nonpreemptive" "preemptive 1ms" "IOMP";
  List.iter
    (fun n ->
      let base = PR.baseline ~machine:Oskern.Machine.skylake ~n ~phases () in
      let time cfg = (PR.run ~n_threads:8 ~n_active:n ~phases cfg).PR.time in
      let np =
        time (PR.Bolt_packing
                { kind = Types.Nonpreemptive; timer = Config.No_timer; interval = 1e-3 })
      in
      let pre =
        time (PR.Bolt_packing
                {
                  kind = Types.Klt_switching;
                  timer = Config.Per_worker_aligned;
                  interval = 1e-3;
                })
      in
      let iomp = time PR.Iomp_taskset in
      let pct t = 100.0 *. ((t /. base) -. 1.0) in
      Printf.printf "%-4d%16.3f%15.3f (%+.0f%%)%15.3f (%+.0f%%)%7.3f (%+.0f%%)\n" n base np
        (pct np) pre (pct pre) iomp (pct iomp))
    [ 2; 3; 4; 5; 6; 7; 8 ];
  print_newline ();
  print_endline "Note the nonpreemptive column: near-ideal when n divides 8 (2, 4, 8)";
  print_endline "but paying the ceil(8/n) effect elsewhere; preemption cuts that";
  print_endline "penalty several-fold (Fig. 8 runs the full 28-thread version)."
