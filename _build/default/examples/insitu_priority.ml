(* Priority scheduling for in-situ analysis (paper §4.3): simulation
   threads must not be delayed by analysis threads, which should run in
   the MPI gaps and straggler slack.  Preemptive signal-yield analysis
   threads + a priority scheduler achieve that without root privileges.

   Run with:  dune exec examples/insitu_priority.exe *)

module IR = Moldyn.Insitu_run

let () =
  let atoms = 7e6 and steps = 12 in
  let base =
    IR.run ~atoms ~steps ~analysis_interval:None { IR.rk = IR.Argobots; priority = true }
  in
  Printf.printf "LAMMPS-style MD, %.0e atoms/node, %d steps on 56 workers\n" atoms steps;
  Printf.printf "simulation-only baseline: %.3fs\n\n" base.IR.time;
  Printf.printf "%-26s%12s%12s%12s\n" "configuration" "time (s)" "overhead" "core idle";
  List.iter
    (fun cfg ->
      let r = IR.run ~atoms ~steps ~analysis_interval:(Some 2) cfg in
      Printf.printf "%-26s%12.3f%11.1f%%%11.1f%%\n" (IR.config_name cfg) r.IR.time
        (100.0 *. ((r.IR.time /. base.IR.time) -. 1.0))
        (100.0 *. r.IR.idle_frac))
    [
      { IR.rk = IR.Pthreads; priority = false };
      { IR.rk = IR.Pthreads; priority = true };
      { IR.rk = IR.Argobots; priority = false };
      { IR.rk = IR.Argobots; priority = true };
    ];
  print_newline ();
  print_endline "Pthreads gets priority via nice(19); Argobots gets it from the";
  print_endline "user-level scheduler plus preemptive (signal-yield) analysis threads."
