(* Perf-regression harness for the engine/runtime hot paths.

   Times the paths every experiment in the repro leans on — engine event
   dispatch, ULT spawn/yield, the two preemption round-trips
   (signal-yield and KLT-switching), usync ops, the fiber deque, and the
   fig4/fig6 fast presets — and emits a machine-readable JSON report
   (BENCH_core.json).  A compare mode diffs a fresh run against a
   committed baseline with a tolerance band, so `dune build @perf-smoke`
   fails when a tracked metric regresses.

     perf run   [--out FILE] [--baseline FILE] [--quick]
     perf compare --baseline FILE --current FILE [--tolerance T]
     perf check [--baseline FILE] [--tolerance T] [--quick]

   All simulated-runtime entries are deterministic in *virtual* time;
   what varies between machines is the wall clock per simulated event,
   which is exactly what this harness tracks.  See README.md
   ("Performance tracking") for the workflow. *)

open Desim
open Oskern
open Preempt_core

let wall = Unix.gettimeofday

(* [domains] is the number of *host* domains the entry exercises: 1 for
   every simulated-runtime path (the simulator is single-threaded
   regardless of how many cores it models) and >1 for the real fiber
   runtime's multi-domain entries, so the scaling gate below can pair
   d1/d4 figures. *)
type entry = { name : string; ops : float; wall_s : float; domains : int }

(* ------------------------------------------------------------------ *)
(* Benchmark bodies.  Each returns the number of "operations" it
   performed; the driver measures wall time around it. *)

(* Pure engine dispatch: self-rescheduling callback chains over a heap
   with background depth, plus the schedule-then-cancel churn the kernel
   slice/chunk machinery generates on every dispatch. *)
let engine_dispatch ~scale () =
  let eng = Engine.create () in
  (* Backlog far in the future: keeps the heap a few levels deep. *)
  for i = 0 to 255 do
    ignore (Engine.after eng (1e6 +. float_of_int i) (fun () -> ()))
  done;
  let chains = 8 in
  let per = 25_000 * scale in
  for c = 0 to chains - 1 do
    let count = ref 0 in
    let rec step () =
      incr count;
      let decoy = Engine.after eng 1.0 (fun () -> ()) in
      ignore (Engine.cancel decoy);
      if !count < per then ignore (Engine.after eng 1e-6 (fun () -> step ()))
    in
    ignore (Engine.after eng (1e-6 *. float_of_int c) (fun () -> step ()))
  done;
  Engine.run ~until:1e3 eng;
  float_of_int (Engine.events_processed eng)

(* ULT spawn + cooperative yield throughput on the simulated M:N
   runtime (the scheduler-loop fast path, no preemption). *)
let spawn_yield ~scale () =
  let eng = Engine.create () in
  let kernel = Kernel.create eng (Machine.with_cores Machine.skylake 4) in
  let rt = Runtime.create kernel ~n_workers:4 in
  let threads = 64 and yields = 400 * scale in
  for i = 0 to threads - 1 do
    ignore
      (Runtime.spawn rt ~home:(i mod 4) ~name:(Printf.sprintf "y%d" i) (fun () ->
           for _ = 1 to yields do
             Ult.yield ()
           done))
  done;
  Runtime.start rt;
  Engine.run eng;
  float_of_int (threads * yields)

(* Preemption round-trip: spinning preemptive threads under per-worker
   aligned timers; ops = preemption signals honored. *)
let preempt_roundtrip ~kind ~scale () =
  let workers = 8 in
  let eng = Engine.create () in
  let kernel = Kernel.create eng (Machine.with_cores Machine.skylake workers) in
  let interval = 1e-3 in
  let config =
    {
      Config.default with
      Config.timer_strategy = Config.Per_worker_aligned;
      interval;
      suspend_mode = Config.Futex_suspend;
      use_local_klt_pool = true;
    }
  in
  let rt = Runtime.create ~config kernel ~n_workers:workers in
  let horizon = interval *. float_of_int (250 * scale) in
  for i = 0 to (2 * workers) - 1 do
    ignore
      (Runtime.spawn rt ~kind ~footprint:0.0 ~home:(i mod workers)
         ~name:(Printf.sprintf "spin%d" i)
         (fun () -> Ult.compute (horizon +. 1.0)))
  done;
  Runtime.start rt;
  Engine.run ~until:horizon eng;
  float_of_int (Runtime.preempt_signals rt)

(* Flight-recorder overhead on the dispatch-heavy preemption path.
   [enabled:false] is the shipped default — the recorder exists but
   every instrumentation site reduces to one boolean load; this is the
   same workload as preempt_klt_switch, so the pair (measured in the
   same process) isolates the recorder's disabled-path cost from
   machine speed.  [enabled:true] records every event into the rings
   (wrapping), i.e. the always-on recording cost. *)
let recorder_dispatch ~enabled ~scale () =
  let workers = 8 in
  let eng = Engine.create () in
  let kernel = Kernel.create eng (Machine.with_cores Machine.skylake workers) in
  let interval = 1e-3 in
  let config =
    {
      Config.default with
      Config.timer_strategy = Config.Per_worker_aligned;
      interval;
      suspend_mode = Config.Futex_suspend;
      use_local_klt_pool = true;
      recorder_enabled = enabled;
    }
  in
  let rt = Runtime.create ~config kernel ~n_workers:workers in
  let horizon = interval *. float_of_int (250 * scale) in
  for i = 0 to (2 * workers) - 1 do
    ignore
      (Runtime.spawn rt ~kind:Types.Klt_switching ~footprint:0.0
         ~home:(i mod workers)
         ~name:(Printf.sprintf "spin%d" i)
         (fun () -> Ult.compute (horizon +. 1.0)))
  done;
  Runtime.start rt;
  Engine.run ~until:horizon eng;
  float_of_int (Runtime.preempt_signals rt)

(* User-level sync: mutex hand-offs and channel send/recv pairs. *)
let usync_ops ~scale () =
  let eng = Engine.create () in
  let kernel = Kernel.create eng (Machine.with_cores Machine.skylake 2) in
  let rt = Runtime.create kernel ~n_workers:2 in
  let rounds = 10_000 * scale in
  let m = Usync.Mutex.create rt in
  let ch = Usync.Channel.create rt in
  for i = 0 to 1 do
    ignore
      (Runtime.spawn rt ~home:i ~name:(Printf.sprintf "lk%d" i) (fun () ->
           for _ = 1 to rounds do
             Usync.Mutex.lock m;
             Ult.compute 1e-8;
             Usync.Mutex.unlock m
           done))
  done;
  ignore
    (Runtime.spawn rt ~home:0 ~name:"producer" (fun () ->
         for k = 1 to rounds do
           Usync.Channel.send ch k;
           if k mod 64 = 0 then Ult.yield ()
         done));
  ignore
    (Runtime.spawn rt ~home:1 ~name:"consumer" (fun () ->
         for _ = 1 to rounds do
           ignore (Usync.Channel.recv ch)
         done));
  Runtime.start rt;
  Engine.run eng;
  float_of_int (6 * rounds)

(* Contended-lock hand-off: four ULTs across two workers hammering one
   lock, comparing the Usync futex mutex against the Ulock algorithm
   ports (ticket, TTAS+backoff, MCS).  ops = acquire/release pairs, so
   ns/op is the full hand-off cost including parks and wakeups. *)
let lock_contended ~make ~scale () =
  let eng = Engine.create () in
  let kernel = Kernel.create eng (Machine.with_cores Machine.skylake 2) in
  let rt = Runtime.create kernel ~n_workers:2 in
  let rounds = 5_000 * scale in
  let lock, unlock = make rt in
  for i = 0 to 3 do
    ignore
      (Runtime.spawn rt ~home:(i mod 2)
         ~name:(Printf.sprintf "lk%d" i)
         (fun () ->
           for _ = 1 to rounds do
             lock ();
             Ult.compute 1e-8;
             unlock ()
           done))
  done;
  Runtime.start rt;
  Engine.run eng;
  float_of_int (4 * rounds)

let usync_lock rt =
  let m = Usync.Mutex.create rt in
  ((fun () -> Usync.Mutex.lock m), fun () -> Usync.Mutex.unlock m)

let ticket_lock rt =
  let t = Ulock.Ticket.create rt in
  ((fun () -> Ulock.Ticket.lock t), fun () -> Ulock.Ticket.unlock t)

let ttas_lock rt =
  let t = Ulock.Ttas.create rt in
  ((fun () -> Ulock.Ttas.lock t), fun () -> Ulock.Ttas.unlock t)

let mcs_lock rt =
  let t = Ulock.Mcs.create rt in
  ((fun () -> Ulock.Mcs.lock t), fun () -> Ulock.Mcs.unlock t)

(* The real (native-parallel) fiber runtime's deque, single-threaded:
   owner push/pop plus the steal path. *)
let fiber_deque_ops ~scale () =
  let d = Fiber.Deque.create () in
  let n = 200_000 * scale in
  for i = 1 to n do
    Fiber.Deque.push d i
  done;
  for _ = 1 to n / 2 do
    ignore (Fiber.Deque.pop d)
  done;
  for _ = 1 to n / 2 do
    ignore (Fiber.Deque.steal d)
  done;
  float_of_int (2 * n)

(* ------------------------------------------------------------------ *)
(* The real (native-parallel) fiber runtime, end to end, at a given
   host-domain count.  Pool construction and shutdown are inside the
   measured body: they are a constant few hundred microseconds and keep
   every rep independent. *)

(* Contended spawn/steal throughput: one root fiber fans out waves of
   trivial children from worker 0's deque; every other domain feeds off
   that one deque, so this is exactly the spawn -> steal path the
   lock-free deque and the targeted-wakeup protocol serve. *)
let fiber_spawn_steal ~domains ~scale () =
  let pool = Fiber.create ~domains () in
  let tasks = 50_000 * scale in
  Fiber.run pool (fun () ->
      let batch = 256 in
      let rem = ref tasks in
      while !rem > 0 do
        let k = Stdlib.min batch !rem in
        let ps = List.init k (fun _ -> Fiber.spawn (fun () -> ())) in
        List.iter Fiber.await ps;
        rem := !rem - k
      done);
  Fiber.shutdown pool;
  float_of_int tasks

(* Alloc-free spawn steady state: the wave-spawn loop of
   fiber_spawn_steal on one domain, with the dead-fiber free-list
   either at its default size ([recycle:true]) or disabled
   ([recycle:false], spawn_freelist 0 — every spawn takes the cold
   path).  The pair is measured in one process, so the off/on ns-per-op
   delta isolates what the recycling fast path costs or saves per
   spawn: reuse eliminates the fiber record, runner and effect-handler
   allocations (minor words drop measurably), but the payload store
   into an old cell is a write barrier that promotes payloads live
   across a minor GC, so the raw ns/op verdict is workload- and
   GC-pacing-dependent — which is exactly why both variants are
   tracked. *)
let fiber_spawn_recycle ~recycle ~scale () =
  let pool =
    Fiber.make
      (Fiber.Config.make ~domains:1
         ~spawn_freelist:(if recycle then 64 else 0)
         ())
  in
  let tasks = 50_000 * scale in
  Fiber.run pool (fun () ->
      let batch = 256 in
      let rem = ref tasks in
      while !rem > 0 do
        let k = Stdlib.min batch !rem in
        let ps = List.init k (fun _ -> Fiber.spawn (fun () -> ())) in
        List.iter Fiber.await ps;
        rem := !rem - k
      done);
  Fiber.shutdown pool;
  float_of_int tasks

(* Fork–join fan-out: a binary spawn tree over a summed range, the
   classic divide-and-conquer shape (steals happen near the root,
   owner-local LIFO pops near the leaves). *)
let fiber_forkjoin ~domains ~scale () =
  let pool = Fiber.create ~domains () in
  let n = 60_000 * scale in
  let cutoff = 128 in
  let total =
    Fiber.run pool (fun () ->
        let rec go lo hi =
          if hi - lo <= cutoff then begin
            let s = ref 0 in
            for i = lo to hi - 1 do
              s := !s + i
            done;
            !s
          end
          else begin
            let mid = (lo + hi) / 2 in
            let right = Fiber.spawn (fun () -> go mid hi) in
            let left = go lo mid in
            left + Fiber.await right
          end
        in
        go 0 n)
  in
  Fiber.shutdown pool;
  assert (total = n * (n - 1) / 2);
  float_of_int n

(* Yield ping-pong: two fibers alternating through the yield re-queue
   (push_front into the CAS-swapped segment) — the preemption
   descheduling path without a ticker. *)
let fiber_pingpong ~domains ~scale () =
  let pool = Fiber.create ~domains () in
  let yields = 40_000 * scale in
  Fiber.run pool (fun () ->
      let ps =
        List.init 2 (fun _ ->
            Fiber.spawn (fun () ->
                for _ = 1 to yields do
                  Fiber.yield ()
                done))
      in
      List.iter Fiber.await ps);
  Fiber.shutdown pool;
  float_of_int (2 * yields)

(* Preemption overhead with the real ticker armed: greedy fibers
   crossing a [check] safe point per iteration.  ops = iterations, so
   ns/op is the per-safe-point cost including any preemption yields the
   1 ms ticker induces — the LibPreemptible-style "how much does
   preemptibility cost the hot loop" number. *)
let fiber_preempt ~domains ~scale () =
  let pool = Fiber.create ~domains ~preempt_interval:0.001 () in
  let iters = 250_000 * scale in
  let fibers = 2 * domains in
  Fiber.run pool (fun () ->
      let ps =
        List.init fibers (fun _ ->
            Fiber.spawn (fun () ->
                for _ = 1 to iters do
                  Fiber.check ()
                done))
      in
      List.iter Fiber.await ps);
  Fiber.shutdown pool;
  float_of_int (fibers * iters)

(* Telemetry overhead on the same safe-point loop as fiber_preempt_d2:
   [telemetry:false] is the shipped default — the rings exist but the
   ticker pays one boolean load per sweep and the fiber-side hooks
   nothing at all; [telemetry:true] snapshots every worker into its
   time-series ring on the default cadence (every 4th sweep).  The
   workload matches fiber_preempt_d2 exactly, so comparing the pair in
   one process isolates what live telemetry costs from machine speed
   (the budget gate below asserts the disabled path). *)
let dispatch_telemetry ~telemetry ~scale () =
  let domains = 2 in
  let pool =
    Fiber.make
      (Fiber.Config.make ~domains ~preempt_interval:0.001 ~telemetry ())
  in
  let iters = 250_000 * scale in
  let fibers = 2 * domains in
  Fiber.run pool (fun () ->
      let ps =
        List.init fibers (fun _ ->
            Fiber.spawn (fun () ->
                for _ = 1 to iters do
                  Fiber.check ()
                done))
      in
      List.iter Fiber.await ps);
  Fiber.shutdown pool;
  float_of_int (fibers * iters)

(* Sub-pool isolation: a saturating compute backlog plus spawn-to-run
   latency probes, the paper's in-situ-analysis shape.  [flat] pushes
   both through one shared 4-worker pool, so every probe queues behind
   the backlog already scattered across the workers; [sharded] pins the
   backlog to a 3-worker "compute" sub-pool and the probes to a
   1-worker "analysis" sub-pool with overflow disabled, so probe
   latency never sees the backlog.  Each probe's spawn->first-run
   latency goes into a [Metrics.Hist]; ops = elapsed/p99, so the
   reported ns/op reads as the probe p99 itself (up to pool
   setup/teardown, identical in both variants).  The isolation gate
   below asserts the flat/sharded p99 ratio. *)
let pool_isolation ~sharded ~scale () =
  let domains = 4 in
  let pool =
    if sharded then
      Fiber.make
        (Fiber.Config.make ~domains
           ~subpools:
             [
               Fiber.Config.subpool ~name:"compute" ~workers:[ 0; 1; 2 ] ();
               Fiber.Config.subpool ~name:"analysis" ~workers:[ 3 ]
                 ~overflow:false ();
             ]
           ())
    else Fiber.create ~domains ()
  in
  let load_pool = if sharded then "compute" else "default" in
  let probe_pool = if sharded then "analysis" else "default" in
  let n_load = 800 * scale in
  let n_probes = 64 in
  let task_s = 50e-6 in
  (* Probes write disjoint slots; the histogram is filled afterwards so
     no Hist.add races across workers. *)
  let lat = Array.make n_probes 0.0 in
  let t0 = wall () in
  Fiber.run pool (fun () ->
      let loads =
        List.init n_load (fun _ ->
            Fiber.spawn ~pool:load_pool (fun () ->
                let deadline = wall () +. task_s in
                while wall () < deadline do
                  ()
                done))
      in
      let probes =
        List.init n_probes (fun i ->
            let t = wall () in
            Fiber.spawn ~pool:probe_pool (fun () -> lat.(i) <- wall () -. t))
      in
      List.iter Fiber.await probes;
      List.iter Fiber.await loads);
  let elapsed = wall () -. t0 in
  Fiber.shutdown pool;
  let h = Metrics.Hist.create () in
  Array.iter (Metrics.Hist.add h) lat;
  let p99 = Metrics.Hist.quantile h 99.0 in
  elapsed /. Stdlib.max 1e-9 p99

(* Open-loop serving latency at a gated overload point (docs/serving.md):
   the lib/serve injector at an offered rate above the 3 serving
   workers' capacity, fixed quantum vs the adaptive controller.  Like
   pool_isolation, ops = elapsed/p99 so the reported ns/op reads as the
   short-class sojourn p99 itself; the serve gate below asserts the
   fixed/adaptive ratio. *)
let serve_rate = 40_000.0

let serve_report ~adaptive ~scale =
  Serve.run
    {
      Serve.default with
      Serve.rate = serve_rate;
      duration = 0.15 *. float_of_int scale;
      domains = 4;
      adaptive;
    }

let serve_short_p99 ~adaptive ~scale =
  let rep = serve_report ~adaptive ~scale in
  rep.Serve.r_short.Serve.cr_p99

let serve_p99 ~adaptive ~scale () =
  let rep = serve_report ~adaptive ~scale in
  rep.Serve.r_elapsed
  /. Stdlib.max 1e-9 rep.Serve.r_short.Serve.cr_p99

(* Fast presets of the two figures whose sweeps dominate bench wall
   time; ops = 1, the metric is the preset's wall clock itself. *)
let fig4_fast () =
  ignore (Experiments.Fig4_interrupt.series ~fast:true ());
  1.0

let fig6_fast () =
  ignore (Experiments.Fig6_overhead.series_for Machine.skylake ~fast:true ());
  1.0

(* ------------------------------------------------------------------ *)
(* Driver. *)

let benchmarks ~quick =
  let scale = if quick then 1 else 2 in
  [
    ("engine_dispatch", 1, engine_dispatch ~scale);
    ("spawn_yield", 1, spawn_yield ~scale);
    ("preempt_signal_yield", 1, preempt_roundtrip ~kind:Types.Signal_yield ~scale);
    ("preempt_klt_switch", 1, preempt_roundtrip ~kind:Types.Klt_switching ~scale);
    ("dispatch_recorder_off", 1, recorder_dispatch ~enabled:false ~scale);
    ("dispatch_recorder_on", 1, recorder_dispatch ~enabled:true ~scale);
    ("usync_ops", 1, usync_ops ~scale);
    ("lock_contended_usync", 1, lock_contended ~make:usync_lock ~scale);
    ("lock_contended_ticket", 1, lock_contended ~make:ticket_lock ~scale);
    ("lock_contended_ttas", 1, lock_contended ~make:ttas_lock ~scale);
    ("lock_contended_mcs", 1, lock_contended ~make:mcs_lock ~scale);
    ("fiber_deque_ops", 1, fiber_deque_ops ~scale);
    ("fiber_spawn_steal_d1", 1, fiber_spawn_steal ~domains:1 ~scale);
    ("fiber_spawn_steal_d2", 2, fiber_spawn_steal ~domains:2 ~scale);
    ("fiber_spawn_steal_d4", 4, fiber_spawn_steal ~domains:4 ~scale);
    ("fiber_spawn_recycle_off", 1, fiber_spawn_recycle ~recycle:false ~scale);
    ("fiber_spawn_recycle_on", 1, fiber_spawn_recycle ~recycle:true ~scale);
    ("fiber_forkjoin_d4", 4, fiber_forkjoin ~domains:4 ~scale);
    ("fiber_pingpong_d2", 2, fiber_pingpong ~domains:2 ~scale);
    ("fiber_preempt_d1", 1, fiber_preempt ~domains:1 ~scale);
    ("fiber_preempt_d2", 2, fiber_preempt ~domains:2 ~scale);
    ("fiber_preempt_d4", 4, fiber_preempt ~domains:4 ~scale);
    ("fiber_preempt_d8", 8, fiber_preempt ~domains:8 ~scale);
    ("dispatch_telemetry_off", 2, dispatch_telemetry ~telemetry:false ~scale);
    ("dispatch_telemetry_on", 2, dispatch_telemetry ~telemetry:true ~scale);
    ("pool_isolation_flat", 4, pool_isolation ~sharded:false ~scale);
    ("pool_isolation_sharded", 4, pool_isolation ~sharded:true ~scale);
    ("serve_p99_fixed", 4, serve_p99 ~adaptive:false ~scale);
    ("serve_p99_adaptive", 4, serve_p99 ~adaptive:true ~scale);
    ("fig4_fast_preset", 1, fig4_fast);
    ("fig6_fast_preset", 1, fig6_fast);
  ]

let measure ~reps (name, domains, f) =
  (* Warm-up run, then best-of-[reps]: minimizes GC/scheduling noise
     while keeping the harness fast enough for a smoke alias. *)
  ignore (f ());
  let best = ref infinity in
  let ops = ref 0.0 in
  for _ = 1 to reps do
    let t0 = wall () in
    ops := f ();
    let dt = wall () -. t0 in
    if dt < !best then best := dt
  done;
  Printf.printf "  %-22s %10.0f ops  %8.3f s  %10.1f ns/op  (d%d)\n%!" name !ops
    !best
    (!best /. !ops *. 1e9)
    domains;
  { name; ops = !ops; wall_s = !best; domains }

(* ------------------------------------------------------------------ *)
(* JSON in and out. *)

let json_of_entries ~preset ~baseline entries =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"preempt-perf/1\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"preset\": %S,\n" preset);
  Buffer.add_string buf "  \"entries\": [\n";
  let n = List.length entries in
  List.iteri
    (fun i e ->
      let base = List.assoc_opt e.name baseline in
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"name\": %S, \"domains\": %d, \"ops\": %.0f, \"wall_s\": %.6f, \
            \"ns_per_op\": %.2f"
           e.name e.domains e.ops e.wall_s
           (e.wall_s /. e.ops *. 1e9));
      (match base with
      | Some b ->
          Buffer.add_string buf
            (Printf.sprintf
               ",\n      \"baseline_wall_s\": %.6f, \"baseline_ns_per_op\": %.2f, \
                \"improvement_pct\": %.1f"
               b.wall_s
               (b.wall_s /. b.ops *. 1e9)
               ((b.wall_s -. e.wall_s) /. b.wall_s *. 100.0))
      | None -> ());
      Buffer.add_string buf (if i = n - 1 then " }\n" else " },\n"))
    entries;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let load_entries path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let open Experiments.Chrome_trace.Json in
  match parse s with
  | Error msg -> failwith (Printf.sprintf "%s: JSON parse error: %s" path msg)
  | Ok j -> (
      match member "entries" j with
      | Some (Arr es) ->
          List.filter_map
            (fun e ->
              match (member "name" e, member "ops" e, member "wall_s" e) with
              | Some (Str name), Some (Num ops), Some (Num wall_s) ->
                  let domains =
                    match member "domains" e with
                    | Some (Num d) -> int_of_float d
                    | _ -> 1
                  in
                  Some (name, { name; ops; wall_s; domains })
              | _ -> None)
            es
      | _ -> failwith (Printf.sprintf "%s: no \"entries\" array" path))

(* ------------------------------------------------------------------ *)
(* Compare: current vs baseline within a tolerance band. *)

(* Compare ns/op, not raw wall time: the quick preset runs fewer ops
   than the default preset the committed baseline was captured with, so
   per-op cost is the only scale-invariant metric. *)
let compare_entries ~tolerance ~baseline ~current =
  let regressions = ref [] in
  let ns_per_op e = e.wall_s /. e.ops *. 1e9 in
  let host_cores = Domain.recommended_domain_count () in
  Printf.printf "%-22s %14s %14s %9s\n" "entry" "base ns/op" "cur ns/op" "delta";
  List.iter
    (fun (name, cur) ->
      match List.assoc_opt name baseline with
      | None -> Printf.printf "%-22s %14s %12.2f %9s\n" name "(new)" (ns_per_op cur) "-"
      | Some b ->
          let delta = (ns_per_op cur -. ns_per_op b) /. ns_per_op b in
          let flag =
            if delta > tolerance then
              if cur.domains > host_cores then
                (* An entry running more domains than the host has cores
                   measures the OS scheduler, not us: record it, don't
                   gate on it.  (On a big enough host it gates.) *)
                "  (oversubscribed; informational)"
              else if
                String.starts_with ~prefix:"pool_isolation" name
                || String.starts_with ~prefix:"serve_p99" name
              then
                (* Absolute probe p99 swings with host load; the
                   flat/sharded (resp. fixed/adaptive) *ratio* is the
                   tracked claim and the gates below assert it. *)
                "  (latency probe; informational)"
              else begin
                regressions := name :: !regressions;
                "  REGRESSED"
              end
            else ""
          in
          Printf.printf "%-22s %14.2f %14.2f %+8.1f%%%s\n" name (ns_per_op b) (ns_per_op cur)
            (delta *. 100.0) flag)
    current;
  match !regressions with
  | [] ->
      Printf.printf "perf-smoke: OK (tolerance %.0f%%)\n" (tolerance *. 100.0);
      true
  | names ->
      Printf.printf "perf-smoke: FAIL — %s regressed beyond %.0f%%\n"
        (String.concat ", " (List.rev names))
        (tolerance *. 100.0);
      false

(* ------------------------------------------------------------------ *)
(* Recorder disabled-path budget.

   dispatch_recorder_off runs the exact preempt_klt_switch workload, so
   comparing the two within one run isolates what the recorder's
   presence costs when disabled (it must reduce to one boolean load per
   instrumentation site).  Unlike the baseline comparison this pair is
   machine-independent — same process, same scale, correlated noise —
   so it gets a tight 2% budget where the cross-machine band is wide. *)

let recorder_off_budget = 0.02

let recorder_budget_check entries =
  let ns_per_op name =
    List.find_opt (fun e -> e.name = name) entries
    |> Option.map (fun e -> e.wall_s /. e.ops *. 1e9)
  in
  match
    ( ns_per_op "preempt_klt_switch",
      ns_per_op "dispatch_recorder_off",
      ns_per_op "dispatch_recorder_on" )
  with
  | Some plain, Some off, Some on ->
      let delta = (off -. plain) /. plain in
      Printf.printf
        "recorder disabled-path cost: %+.1f%% vs plain dispatch (budget \
         %.0f%%); recording: %+.1f%%\n"
        (delta *. 100.0)
        (recorder_off_budget *. 100.0)
        ((on -. plain) /. plain *. 100.0);
      if delta > recorder_off_budget then begin
        Printf.printf
          "perf-smoke: FAIL — disabled flight recorder regressed dispatch \
           beyond %.0f%%\n"
          (recorder_off_budget *. 100.0);
        false
      end
      else true
  | _ -> true

(* ------------------------------------------------------------------ *)
(* Telemetry disabled-path budget.

   dispatch_telemetry_off runs the exact fiber_preempt_d2 workload on
   a pool whose telemetry rings exist but are disabled, so the
   plain/off ns-per-op ratio measured in one process isolates what the
   telemetry subsystem's presence costs when off (one boolean load in
   the ticker, nothing per safe point).  Budget: the disabled path may
   cost at most 2%, i.e. the ratio must stay >= 1/1.02.  Both entries
   run 2 domains, so unlike the 4-core gates this one asserts on
   nearly any host; [Gate]'s single re-measure absorbs loaded-host
   blips. *)

let telemetry_off_budget = 0.02

let telemetry_min = 1.0 /. (1.0 +. telemetry_off_budget)

let telemetry_remeasure () =
  let sample f =
    let t0 = wall () in
    let ops = f () in
    (wall () -. t0) /. ops *. 1e9
  in
  let plain = sample (fiber_preempt ~domains:2 ~scale:1) in
  let off = sample (dispatch_telemetry ~telemetry:false ~scale:1) in
  plain /. Stdlib.max 1e-9 off

let telemetry_budget_check entries =
  let ns_per_op name =
    List.find_opt (fun e -> e.name = name) entries
    |> Option.map (fun e -> e.wall_s /. e.ops *. 1e9)
  in
  match
    ( ns_per_op "fiber_preempt_d2",
      ns_per_op "dispatch_telemetry_off",
      ns_per_op "dispatch_telemetry_on" )
  with
  | Some plain, Some off, Some on ->
      Printf.printf
        "telemetry disabled-path cost: %+.1f%% vs plain safe-point loop \
         (budget %.0f%%); sampling: %+.1f%%\n"
        ((off -. plain) /. plain *. 100.0)
        (telemetry_off_budget *. 100.0)
        ((on -. plain) /. plain *. 100.0);
      Experiments.Gate.report
        ~name:"telemetry disabled path (plain/off safe-point cost)"
        ~minimum:telemetry_min
        (Experiments.Gate.ratio_gate ~required_cores:2 ~minimum:telemetry_min
           ~remeasure:telemetry_remeasure
           (plain /. Stdlib.max 1e-9 off))
  | _ -> true

(* ------------------------------------------------------------------ *)
(* Multi-domain scaling gate.

   The contended spawn/steal pair (d4 vs d1) is measured in the same
   process, so like the recorder budget it is machine-independent — but
   it is only *meaningful* when the host actually has 4 cores to run 4
   domains on.  On a smaller host (CI containers are routinely pinned to
   1–2 cores) 4 oversubscribed domains cannot beat 1, so the gate
   reports the ratio and skips the assertion rather than failing on
   hardware the claim was never about. *)

let scaling_min = 2.0

(* One fresh back-to-back d1/d4 sample, for the gate's single retry. *)
let scaling_remeasure () =
  let sample domains =
    let t0 = wall () in
    let ops = fiber_spawn_steal ~domains ~scale:1 () in
    ops /. (wall () -. t0)
  in
  let t1 = sample 1 in
  sample 4 /. Stdlib.max 1e-9 t1

let scaling_check entries =
  let tput name =
    List.find_opt (fun e -> e.name = name) entries
    |> Option.map (fun e -> e.ops /. e.wall_s)
  in
  match (tput "fiber_spawn_steal_d1", tput "fiber_spawn_steal_d4") with
  | Some t1, Some t4 ->
      Experiments.Gate.report ~name:"fiber spawn/steal scaling (d4 vs d1)"
        ~minimum:scaling_min
        (Experiments.Gate.ratio_gate ~required_cores:4 ~minimum:scaling_min
           ~remeasure:scaling_remeasure (t4 /. t1))
  | _ -> true

(* ------------------------------------------------------------------ *)
(* Spawn/steal contention gate.

   The scaling gate above asserts throughput; this one bounds the
   *per-op* price of contention: with 4 domains hammering one deque,
   a spawn/steal op may cost at most [contention_max] times its
   single-domain cost.  Batched steals are what keep this bounded —
   a thief amortizes one raid over half the victim's run instead of
   paying a CAS per task.  The gate ratio is (max * d1) / d4 ns/op,
   so >= 1.0 means d4 stayed inside the budget and the printed figure
   reads as headroom.  Same-process and machine-independent like the
   scaling gate, and like it the claim needs 4 real cores — on fewer,
   oversubscribed domains serialize and the per-op cost measures the
   OS scheduler, so the gate prints the ratio and skips. *)

let contention_max = 3.0

let contention_remeasure () =
  let sample domains =
    let t0 = wall () in
    let ops = fiber_spawn_steal ~domains ~scale:1 () in
    (wall () -. t0) /. ops *. 1e9
  in
  let d1 = sample 1 in
  let d4 = sample 4 in
  contention_max *. d1 /. Stdlib.max 1e-9 d4

let contention_check entries =
  let ns_per_op name =
    List.find_opt (fun e -> e.name = name) entries
    |> Option.map (fun e -> e.wall_s /. e.ops *. 1e9)
  in
  match (ns_per_op "fiber_spawn_steal_d1", ns_per_op "fiber_spawn_steal_d4") with
  | Some d1, Some d4 ->
      Experiments.Gate.report
        ~name:"fiber spawn/steal contention (3x d1 vs d4 ns/op)" ~minimum:1.0
        (Experiments.Gate.ratio_gate ~required_cores:4 ~minimum:1.0
           ~remeasure:contention_remeasure
           (contention_max *. d1 /. Stdlib.max 1e-9 d4))
  | _ -> true

(* ------------------------------------------------------------------ *)
(* Sub-pool isolation gate.

   The pool_isolation pair reports probe p99 as its ns/op, so the
   flat/sharded ns-per-op ratio *is* the isolation factor: how much
   spawn-to-run latency a dedicated, overflow-fenced analysis sub-pool
   buys over sharing one pool with the compute backlog.  Like the
   scaling gate it is same-process and machine-independent, and like it
   the claim needs 4 real cores — on a smaller host the "idle" analysis
   worker time-slices with the backlog it is supposed to be isolated
   from, so the gate prints the ratio and skips the assertion. *)

let isolation_min = 3.0

(* Unlike core count, host load is transient: on a busy machine the
   "dedicated" analysis core time-slices with whatever else is running
   and the ratio can legitimately collapse for one sample.  A fresh
   back-to-back re-measure of just the pair costs ~a second and
   separates a loaded-host blip from a real isolation regression. *)
let isolation_remeasure () =
  let sample sharded =
    let t0 = wall () in
    let ops = pool_isolation ~sharded ~scale:1 () in
    (wall () -. t0) /. ops *. 1e9
  in
  let flat = sample false in
  let sharded = sample true in
  flat /. Stdlib.max 1e-9 sharded

let isolation_check entries =
  let ns_per_op name =
    List.find_opt (fun e -> e.name = name) entries
    |> Option.map (fun e -> e.wall_s /. e.ops *. 1e9)
  in
  match
    (ns_per_op "pool_isolation_flat", ns_per_op "pool_isolation_sharded")
  with
  | Some flat, Some sharded ->
      Experiments.Gate.report
        ~name:"sub-pool isolation (flat/sharded probe p99)"
        ~minimum:isolation_min
        (Experiments.Gate.ratio_gate ~required_cores:4 ~minimum:isolation_min
           ~remeasure:isolation_remeasure
           (flat /. Stdlib.max 1e-9 sharded))
  | _ -> true

(* ------------------------------------------------------------------ *)
(* Serve overload gate.

   The serve_p99 pair reports the short-class sojourn p99 as its ns/op,
   so the fixed/adaptive ns-per-op ratio is the tail win the adaptive
   quantum controller buys at the gated overload point: >= 1.0 means
   adaptive never loses to the fixed base quantum.  Same-process and
   machine-independent like the other gates; the open-loop claim needs
   4 real cores (on fewer, the injector time-slices with the servers
   and the offered rate itself collapses), so the gate skips below
   that with the ratio printed. *)

let serve_min = 1.0

let serve_remeasure () =
  let fixed = serve_short_p99 ~adaptive:false ~scale:1 in
  let adaptive = serve_short_p99 ~adaptive:true ~scale:1 in
  fixed /. Stdlib.max 1e-9 adaptive

let serve_check entries =
  let ns_per_op name =
    List.find_opt (fun e -> e.name = name) entries
    |> Option.map (fun e -> e.wall_s /. e.ops *. 1e9)
  in
  match (ns_per_op "serve_p99_fixed", ns_per_op "serve_p99_adaptive") with
  | Some fixed, Some adaptive ->
      Experiments.Gate.report
        ~name:"serve overload p99 (fixed vs adaptive quantum)"
        ~minimum:serve_min
        (Experiments.Gate.ratio_gate ~required_cores:4 ~minimum:serve_min
           ~remeasure:serve_remeasure
           (fixed /. Stdlib.max 1e-9 adaptive))
  | _ -> true

(* ------------------------------------------------------------------ *)
(* CLI. *)

let usage () =
  print_endline
    "usage: perf run [--out FILE] [--baseline FILE] [--quick]\n\
    \       perf compare --baseline FILE --current FILE [--tolerance T]\n\
    \       perf check [--baseline FILE] [--tolerance T] [--quick]";
  exit 2

let arg_value args key =
  let rec go = function
    | k :: v :: _ when k = key -> Some v
    | _ :: rest -> go rest
    | [] -> None
  in
  go args

let () =
  match Array.to_list Sys.argv with
  | _ :: "run" :: args ->
      let quick = List.mem "--quick" args in
      let out = Option.value ~default:"BENCH_core.json" (arg_value args "--out") in
      let baseline =
        match arg_value args "--baseline" with Some p -> load_entries p | None -> []
      in
      let selected =
        match arg_value args "--only" with
        | None -> benchmarks ~quick
        | Some names ->
            let wanted = String.split_on_char ',' names in
            List.filter (fun (n, _, _) -> List.mem n wanted) (benchmarks ~quick)
      in
      Printf.printf "perf run (%s preset)\n" (if quick then "quick" else "default");
      let entries = List.map (measure ~reps:(if quick then 1 else 3)) selected in
      let json =
        json_of_entries ~preset:(if quick then "quick" else "default") ~baseline entries
      in
      let oc = open_out out in
      output_string oc json;
      close_out oc;
      Printf.printf "wrote %s\n" out
  | _ :: "compare" :: args -> (
      match (arg_value args "--baseline", arg_value args "--current") with
      | Some b, Some c ->
          let tolerance =
            Option.value ~default:0.35
              (Option.bind (arg_value args "--tolerance") float_of_string_opt)
          in
          if not (compare_entries ~tolerance ~baseline:(load_entries b) ~current:(load_entries c))
          then exit 1
      | _ -> usage ())
  | _ :: "check" :: args ->
      let quick = true in
      let baseline_path = Option.value ~default:"BENCH_core.json" (arg_value args "--baseline") in
      let tolerance =
        Option.value ~default:0.5
          (Option.bind (arg_value args "--tolerance") float_of_string_opt)
      in
      Printf.printf "perf check vs %s\n" baseline_path;
      let baseline = load_entries baseline_path in
      let entries = List.map (measure ~reps:2) (benchmarks ~quick) in
      let current = List.map (fun e -> (e.name, e)) entries in
      let baseline_ok = compare_entries ~tolerance ~baseline ~current in
      let budget_ok = recorder_budget_check entries in
      let telemetry_ok = telemetry_budget_check entries in
      let scaling_ok = scaling_check entries in
      let contention_ok = contention_check entries in
      let isolation_ok = isolation_check entries in
      let serve_ok = serve_check entries in
      if
        not
          (baseline_ok && budget_ok && telemetry_ok && scaling_ok
         && contention_ok && isolation_ok && serve_ok)
      then exit 1
  | _ -> usage ()
