(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Fig. 4, Fig. 6, Table 1, Fig. 7, Fig. 8, Fig. 9) on the
   simulated substrate, then runs Bechamel microbenchmarks of the real
   fiber runtime (the native-hardware analogue of Table 1's "threading
   operations are cheap" claim).

   Default is the fast preset (a subset of each sweep; ~ a few minutes).
   Pass --full for the paper-scale sweeps. *)

let wall = Unix.gettimeofday

let section name f =
  let t0 = wall () in
  let r = f () in
  Printf.printf "[%s done in %.1fs wall]\n%!" name (wall () -. t0);
  r

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the real fiber runtime. *)

let fiber_microbench () =
  print_newline ();
  Experiments.Exputil.heading "Real fiber runtime microbenchmarks (Bechamel, this machine)";
  let pool = Fiber.create ~domains:2 () in
  let spawn_join_n n () =
    Fiber.run pool (fun () ->
        let ps = List.init n (fun i -> Fiber.spawn (fun () -> i)) in
        List.iter (fun p -> ignore (Fiber.await p)) ps)
  in
  let yields_n n () =
    Fiber.run pool (fun () ->
        for _ = 1 to n do
          Fiber.yield ()
        done)
  in
  let deque_ops n () =
    let d = Fiber.Deque.create () in
    for i = 1 to n do
      Fiber.Deque.push d i
    done;
    for _ = 1 to n do
      ignore (Fiber.Deque.pop d)
    done
  in
  let open Bechamel in
  let test =
    Test.make_grouped ~name:"fiber"
      [
        Test.make ~name:"spawn+await x100" (Staged.stage (spawn_join_n 100));
        Test.make ~name:"yield x1000" (Staged.stage (yields_n 1000));
        Test.make ~name:"deque push/pop x1000" (Staged.stage (deque_ops 1000));
      ]
  in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
    let raw = Benchmark.all cfg instances test in
    let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
    Hashtbl.iter
      (fun name ols_result ->
        match Analyze.OLS.estimates ols_result with
        | Some [ est ] -> Printf.printf "%-30s %12.0f ns/run\n" name est
        | _ -> Printf.printf "%-30s (no estimate)\n" name)
      results
  in
  benchmark ();
  Fiber.shutdown pool

let () =
  let full = Array.exists (fun a -> a = "--full") Sys.argv in
  let fast = not full in
  (* Observability flags: --metrics prints counters + latency histograms
     of the last instrumented run; --chrome-trace FILE exports it as a
     Chrome trace_events JSON (see docs/observability.md). *)
  let rec parse_obs = function
    | "--metrics" :: rest ->
        Experiments.Exputil.Obs.metrics := true;
        parse_obs rest
    | "--chrome-trace" :: file :: rest ->
        Experiments.Exputil.Obs.chrome_trace := Some file;
        parse_obs rest
    | _ :: rest -> parse_obs rest
    | [] -> ()
  in
  parse_obs (Array.to_list Sys.argv);
  Printf.printf "preempt benchmark harness — %s preset\n"
    (if fast then "fast (use --full for paper-scale sweeps)" else "full");
  section "fig4" (fun () -> ignore (Experiments.Fig4_interrupt.run ~fast ()));
  section "fig6" (fun () -> ignore (Experiments.Fig6_overhead.run ~fast ()));
  section "table1" (fun () -> ignore (Experiments.Table1_preempt_cost.run ~fast ()));
  section "fig7" (fun () -> ignore (Experiments.Fig7_cholesky.run ~fast ()));
  section "fig8" (fun () -> ignore (Experiments.Fig8_packing.run ~fast ()));
  section "fig9" (fun () -> ignore (Experiments.Fig9_insitu.run ~fast ()));
  section "sec3.5.1" (fun () -> ignore (Experiments.Sec351_syscalls.run ~fast ()));
  section "fiber-microbench" fiber_microbench;
  if Experiments.Exputil.Obs.requested () then Experiments.Exputil.Obs.report ();
  print_newline ();
  print_endline "All tables and figures regenerated. See EXPERIMENTS.md for the";
  print_endline "paper-vs-measured comparison."
