(** Classic lock algorithms as ULT-level primitives — ticket,
    test-and-test-and-set with exponential backoff, and MCS — ported
    to the M:N runtime in the style of "Basic Lock Algorithms in
    Lightweight Thread Environments".

    Every waiter spins a bounded number of cooperative yields and then
    parks on {!Ult.suspend}, so a preempted holder can always reclaim
    the worker; parks and wakes feed the runtime's sync metrics, which
    keeps the checker's lost-wakeup accounting balanced.

    Each lock carries an optional {e seeded broken variant}
    reproducing a classic porting bug; the checker's scenario registry
    uses them as caught-violation regressions:
    - {!Ticket.create}[ ~unfair:true]: LIFO barging wakeups — mutual
      exclusion holds, FIFO fairness breaks.
    - {!Ttas.create}[ ~racy:true]: preemptible test-to-set window —
      mutual exclusion breaks.
    - {!Mcs.create}[ ~drop_handoff:true]: release ignores an
      in-flight enqueuer — the successor parks forever (deadlock). *)

(** Ticket lock: fetch-and-add for a ticket, FIFO grants by ticket
    number. *)
module Ticket : sig
  type t

  val create : ?unfair:bool -> Runtime.t -> t

  (** Blocks (bounded spin, then park) until the caller's ticket is
      served.  Call from ULT context only. *)
  val lock : t -> unit

  val unlock : t -> unit

  (** [(arrival order, grant order)] as ticket numbers — feed to a
      {e FIFO fairness} oracle: the two must be equal. *)
  val history : t -> int list * int list
end

(** Test-and-test-and-set lock with exponential backoff.  No fairness
    guarantee (barging by design), so only the exclusion oracle
    applies. *)
module Ttas : sig
  type t

  val create : ?racy:bool -> Runtime.t -> t

  val lock : t -> unit

  val try_lock : t -> bool

  val unlock : t -> unit
end

(** MCS queue lock: waiters enqueue on an atomic tail swap and each
    spins/parks on its own node; release hands off to the linked
    successor (waiting out the swap-to-link window). *)
module Mcs : sig
  type t

  val create : ?drop_handoff:bool -> Runtime.t -> t

  val lock : t -> unit

  val unlock : t -> unit

  (** [(arrival order, grant order)] as enqueue numbers (FIFO oracle). *)
  val history : t -> int list * int list
end
