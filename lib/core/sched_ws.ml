(** Work-stealing scheduler (BOLT's default, paper §4.1).

    Each worker owns a FIFO queue; it runs threads from its own queue
    and steals from the back of a randomly chosen victim when empty.
    A preempted thread is pushed to the preempting worker's local FIFO
    queue, so every ready thread is rescheduled within a bounded number
    of preemption intervals — the property that prevents busy-wait
    deadlocks (paper §4.1). *)

open Types

let steal rt (w : worker) =
  let n = Array.length rt.workers in
  if n <= 1 then None
  else begin
    (* A few random probes, then a deterministic sweep so a lone ready
       thread cannot be missed forever.  Under a schedule controller the
       victim of each probe is a choice point instead of an RNG draw. *)
    let ctrl = Desim.Engine.controller (Oskern.Kernel.engine rt.kernel) in
    let attempt () =
      let v =
        match ctrl with
        | Some c -> Desim.Choice.pick c ~n ~tag:"steal.victim"
        | None -> Desim.Rng.int w.w_rng n
      in
      if v = w.rank then None else Dq.pop_back rt.workers.(v).q_main
    in
    let rec probes k = if k = 0 then None else match attempt () with Some u -> Some u | None -> probes (k - 1) in
    match probes 2 with
    | Some u -> Some u
    | None ->
        (* Fallback sweep, starting after ourselves so victim pressure
           is spread instead of always draining worker 0 first. *)
        let rec sweep k =
          if k = n then None
          else
            let i = (w.rank + 1 + k) mod n in
            if i = w.rank then sweep (k + 1)
            else
              match Dq.pop_back rt.workers.(i).q_main with
              | Some u -> Some u
              | None -> sweep (k + 1)
        in
        sweep 0
  end

let next rt (w : worker) =
  match Dq.pop_front w.q_main with
  | Some u -> Some u
  | None ->
      let stolen = steal rt w in
      (match stolen with
      | Some u ->
          Metrics.incr_steals rt.metrics w.rank;
          if rt.recorder.Recorder.on then
            Recorder.emit rt.recorder w.rank
              (Oskern.Kernel.now rt.kernel)
              Recorder.ev_steal u.uid u.home
      | None -> ());
      stolen

let on_ready rt (u : ult) =
  let w = rt.workers.(u.home mod Array.length rt.workers) in
  Dq.push_back w.q_main u

let on_preempted _rt (w : worker) (u : ult) = Dq.push_back w.q_main u

let on_yielded _rt (w : worker) (u : ult) = Dq.push_back w.q_main u

let make () = { sched_name = "work-stealing"; next; on_ready; on_preempted; on_yielded }
