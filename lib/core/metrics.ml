(* Runtime observability: per-worker counters + log-scale histograms.
   Shapes follow LibPreemptible's per-quantum accounting: cheap fixed
   counters on the hot paths, percentiles recovered from fixed buckets
   rather than stored samples, so the cost is O(1) per event and the
   memory bound is static. *)

module Hist = struct
  (* Buckets cover [1e-9, 1e2) seconds, 8 per decade, plus underflow and
     overflow.  The boundary table is the single source of truth;
     [bucket_of] is a binary search on it, so edge values bucket
     exactly (no log() rounding at the boundaries). *)

  let decade_lo = -9

  let decade_hi = 2

  let per_decade = 8

  let n_core = (decade_hi - decade_lo) * per_decade

  let n_buckets = n_core + 2

  let bounds =
    Array.init (n_core + 1) (fun i ->
        10.0 ** (float_of_int decade_lo +. (float_of_int i /. float_of_int per_decade)))

  let bucket_of v =
    if not (v >= bounds.(0)) then 0 (* negatives, NaN, < 1 ns *)
    else if v >= bounds.(n_core) then n_buckets - 1
    else begin
      (* Largest i with bounds.(i) <= v; invariant bounds.(lo) <= v < bounds.(hi). *)
      let lo = ref 0 and hi = ref n_core in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if bounds.(mid) <= v then lo := mid else hi := mid
      done;
      1 + !lo
    end

  let bucket_bounds b =
    if b < 0 || b >= n_buckets then invalid_arg "Metrics.Hist.bucket_bounds";
    if b = 0 then (neg_infinity, bounds.(0))
    else if b = n_buckets - 1 then (bounds.(n_core), infinity)
    else (bounds.(b - 1), bounds.(b))

  type t = { counts : int array; mutable n : int; mutable total : float }

  let create () = { counts = Array.make n_buckets 0; n = 0; total = 0.0 }

  let add t v =
    let b = bucket_of v in
    t.counts.(b) <- t.counts.(b) + 1;
    t.n <- t.n + 1;
    t.total <- t.total +. v

  let count t = t.n

  let sum t = t.total

  let mean t = if t.n = 0 then 0.0 else t.total /. float_of_int t.n

  let bucket_count t b =
    if b < 0 || b >= n_buckets then invalid_arg "Metrics.Hist.bucket_count";
    t.counts.(b)

  let nonzero t =
    let rows = ref [] in
    for b = n_buckets - 1 downto 0 do
      if t.counts.(b) > 0 then
        let lo, hi = bucket_bounds b in
        rows := (lo, hi, t.counts.(b)) :: !rows
    done;
    Array.of_list !rows

  (* Representative value of a bucket: geometric midpoint for core
     buckets, the finite edge for the open-ended ones. *)
  let representative b =
    if b = 0 then bounds.(0)
    else if b = n_buckets - 1 then bounds.(n_core)
    else sqrt (bounds.(b - 1) *. bounds.(b))

  let percentile t p =
    if t.n = 0 then invalid_arg "Metrics.Hist.percentile: empty histogram";
    if p < 0.0 || p > 100.0 then invalid_arg "Metrics.Hist.percentile: p outside [0,100]";
    let target = Stdlib.max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int t.n))) in
    let rec go b acc =
      let acc = acc + t.counts.(b) in
      if acc >= target then representative b else go (b + 1) acc
    in
    go 0 0

  (* [quantile] refines [percentile] by interpolating inside the target
     bucket: the quantile rank's fractional position among the bucket's
     samples picks a point between the bucket edges on a log scale
     (matching the buckets' geometric spacing).  The open-ended buckets
     have no second edge, so they fall back to [representative]. *)
  let quantile t p =
    if t.n = 0 then invalid_arg "Metrics.Hist.quantile: empty histogram";
    if p < 0.0 || p > 100.0 then invalid_arg "Metrics.Hist.quantile: p outside [0,100]";
    let target = Stdlib.max 1.0 (p /. 100.0 *. float_of_int t.n) in
    let rec go b acc =
      let here = t.counts.(b) in
      let acc' = float_of_int (acc + here) in
      if acc' >= target && here > 0 then
        if b = 0 || b = n_buckets - 1 then representative b
        else begin
          let lo, hi = bucket_bounds b in
          let frac = (target -. float_of_int acc) /. float_of_int here in
          let frac = Float.min 1.0 (Float.max 0.0 frac) in
          lo *. ((hi /. lo) ** frac)
        end
      else go (b + 1) (acc + here)
    in
    go 0 0

  let copy t = { counts = Array.copy t.counts; n = t.n; total = t.total }

  (* Bucket-wise sum.  The bucket table is a compile-time constant, so
     two histograms built by this module always agree on shape; the
     length check guards histograms that crossed a dump/decode boundary
     (or a future table change) from silently mis-merging. *)
  let merge a b =
    if Array.length a.counts <> Array.length b.counts then
      invalid_arg "Metrics.Hist.merge: bucket shape mismatch";
    let counts = Array.init (Array.length a.counts) (fun i -> a.counts.(i) + b.counts.(i)) in
    { counts; n = a.n + b.n; total = a.total +. b.total }

  let clear t =
    Array.fill t.counts 0 n_buckets 0;
    t.n <- 0;
    t.total <- 0.0
end

type wcounters = {
  mutable preempts : int;
  mutable signal_yields : int;
  mutable klt_switches : int;
  mutable pool_gets : int;
  mutable pool_puts : int;
  mutable steals : int;
  mutable timer_fires : int;
  mutable io_restarts : int;
}

let zero_wcounters () =
  {
    preempts = 0;
    signal_yields = 0;
    klt_switches = 0;
    pool_gets = 0;
    pool_puts = 0;
    steals = 0;
    timer_fires = 0;
    io_restarts = 0;
  }

let copy_wcounters c = { c with preempts = c.preempts }

type t = {
  mutable on : bool;
  workers : wcounters array;
  mutable sync_blocks : int;
  mutable sync_wakeups : int;
  sig_to_switch : Hist.t;
  sched_delay : Hist.t;
  run_quantum : Hist.t;
}

let create ~n_workers =
  {
    on = false;
    workers = Array.init n_workers (fun _ -> zero_wcounters ());
    sync_blocks = 0;
    sync_wakeups = 0;
    sig_to_switch = Hist.create ();
    sched_delay = Hist.create ();
    run_quantum = Hist.create ();
  }

let enabled t = t.on

let set_enabled t b = t.on <- b

let reset t =
  Array.iteri (fun i _ -> t.workers.(i) <- zero_wcounters ()) t.workers;
  t.sync_blocks <- 0;
  t.sync_wakeups <- 0;
  Hist.clear t.sig_to_switch;
  Hist.clear t.sched_delay;
  Hist.clear t.run_quantum

let observe_sig_to_switch t v = if t.on then Hist.add t.sig_to_switch v

let observe_sched_delay t v = if t.on then Hist.add t.sched_delay v

let observe_run_quantum t v = if t.on then Hist.add t.run_quantum v

let incr_preempts t r =
  if t.on then
    let c = t.workers.(r) in
    c.preempts <- c.preempts + 1

let incr_signal_yields t r =
  if t.on then
    let c = t.workers.(r) in
    c.signal_yields <- c.signal_yields + 1

let incr_klt_switches t r =
  if t.on then
    let c = t.workers.(r) in
    c.klt_switches <- c.klt_switches + 1

let incr_pool_gets t r =
  if t.on then
    let c = t.workers.(r) in
    c.pool_gets <- c.pool_gets + 1

let incr_pool_puts t r =
  if t.on then
    let c = t.workers.(r) in
    c.pool_puts <- c.pool_puts + 1

let incr_steals t r =
  if t.on then
    let c = t.workers.(r) in
    c.steals <- c.steals + 1

let incr_timer_fires t r =
  if t.on then
    let c = t.workers.(r) in
    c.timer_fires <- c.timer_fires + 1

let add_io_restarts t r n =
  if t.on && n > 0 then
    let c = t.workers.(r) in
    c.io_restarts <- c.io_restarts + n

let incr_sync_blocks t = if t.on then t.sync_blocks <- t.sync_blocks + 1

let incr_sync_wakeups t = if t.on then t.sync_wakeups <- t.sync_wakeups + 1

type snapshot = {
  s_workers : wcounters array;
  s_totals : wcounters;
  s_sync_blocks : int;
  s_sync_wakeups : int;
  s_sig_to_switch : Hist.t;
  s_sched_delay : Hist.t;
  s_run_quantum : Hist.t;
}

let snapshot t =
  let totals = zero_wcounters () in
  Array.iter
    (fun c ->
      totals.preempts <- totals.preempts + c.preempts;
      totals.signal_yields <- totals.signal_yields + c.signal_yields;
      totals.klt_switches <- totals.klt_switches + c.klt_switches;
      totals.pool_gets <- totals.pool_gets + c.pool_gets;
      totals.pool_puts <- totals.pool_puts + c.pool_puts;
      totals.steals <- totals.steals + c.steals;
      totals.timer_fires <- totals.timer_fires + c.timer_fires;
      totals.io_restarts <- totals.io_restarts + c.io_restarts)
    t.workers;
  {
    s_workers = Array.map copy_wcounters t.workers;
    s_totals = totals;
    s_sync_blocks = t.sync_blocks;
    s_sync_wakeups = t.sync_wakeups;
    s_sig_to_switch = Hist.copy t.sig_to_switch;
    s_sched_delay = Hist.copy t.sched_delay;
    s_run_quantum = Hist.copy t.run_quantum;
  }

let summary s =
  let buf = Buffer.create 1024 in
  let t = s.s_totals in
  Buffer.add_string buf
    (Printf.sprintf
       "metrics: %d preempts delivered, %d signal-yields, %d KLT switches\n\
       \         pool get/put %d/%d, %d steals, %d timer fires, %d io restarts\n\
       \         sync blocks/wakeups %d/%d\n"
       t.preempts t.signal_yields t.klt_switches t.pool_gets t.pool_puts t.steals
       t.timer_fires t.io_restarts s.s_sync_blocks s.s_sync_wakeups);
  Array.iteri
    (fun r c ->
      Buffer.add_string buf
        (Printf.sprintf
           "  worker%-3d preempts=%-5d sigyield=%-5d kltswitch=%-5d get/put=%d/%d \
            steals=%-5d timer=%-5d io-restarts=%d\n"
           r c.preempts c.signal_yields c.klt_switches c.pool_gets c.pool_puts c.steals
           c.timer_fires c.io_restarts))
    s.s_workers;
  let hist name h =
    match Hist.count h with
    | 0 -> Buffer.add_string buf (Printf.sprintf "  %-22s (no samples)\n" name)
    | n ->
        Buffer.add_string buf
          (Printf.sprintf
             "  %-22s n=%-6d mean=%8.2f us  p50=%8.2f us  p90=%8.2f us  p99=%8.2f us\n"
             name n (Hist.mean h *. 1e6)
             (Hist.quantile h 50.0 *. 1e6)
             (Hist.quantile h 90.0 *. 1e6)
             (Hist.quantile h 99.0 *. 1e6))
  in
  hist "signal->switch" s.s_sig_to_switch;
  hist "sched delay" s.s_sched_delay;
  hist "run quantum" s.s_run_quantum;
  Buffer.contents buf
