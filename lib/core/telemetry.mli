(** Live telemetry: fixed-capacity per-worker time-series rings of
    scheduler state, sampled by the runtime's preemption ticker every N
    quanta, plus sliding-window sojourn quantile sketches fed by the
    serving workload.

    Where {!Metrics} is an end-of-run snapshot and {!Recorder} a
    post-mortem event log, this module is the {e online} view: the live
    top display ([repro top]) and any future adaptive policy (elastic
    workers, oversubscription response) read it while the pool runs.

    Overhead discipline matches the recorder exactly: every write path
    is guarded by one boolean load when disabled; an enabled {!sample}
    is one plain store per field into preallocated arrays — no
    allocation, locks or atomics.  Each per-worker ring has a single
    writer (the ticker); each worker's window sketches are written only
    by that worker ({!observe}).  Concurrent readers may see a torn
    point at the wrap boundary — acceptable for a display refreshed at
    1 Hz, and exact once the writer is quiescent. *)

(** One sample of a worker's state.  Counter fields are cumulative
    (since pool start), so rates are first differences between
    consecutive points. *)
type point = {
  p_seq : int;  (** sample index within the worker's series (monotone) *)
  p_ts : float;  (** seconds since the pool's epoch *)
  p_depth : int;  (** run-queue depth of the worker's sub-pool *)
  p_steals_in : int;  (** cumulative work acquired by stealing *)
  p_steals_out : int;  (** cumulative work stolen away from the sub-pool *)
  p_parks : int;  (** cumulative condvar parks *)
  p_wakes : int;  (** cumulative wakes after a park *)
  p_quantum : float;  (** current preemption quantum, seconds *)
  p_util : float;  (** fraction of the last sample period unparked, [0,1] *)
}

(** Sliding-window quantile sketch: two-histogram rotation.  {!add}
    feeds the current bucket; {!rotate} retires the previous one;
    {!sketch} is [Hist.merge previous current], so it always covers
    between one and two rotation periods — a rolling window with no
    per-sample timestamps and O(1) memory. *)
module Window : sig
  type t

  val create : unit -> t

  val add : t -> float -> unit

  val rotate : t -> unit

  val sketch : t -> Metrics.Hist.t

  val count : t -> int
  (** Samples currently covered (current + previous). *)
end

type t

val create : n_workers:int -> capacity:int -> channels:int -> t
(** One ring of [capacity] points per worker, and [channels] window
    sketches per worker (e.g. one per service class), disabled.
    @raise Invalid_argument if [n_workers <= 0], [capacity <= 0] or
    [channels < 0]. *)

val enabled : t -> bool

val set_enabled : t -> bool -> unit

val capacity : t -> int

val n_workers : t -> int

val channels : t -> int

val sample :
  t ->
  worker:int ->
  ts:float ->
  depth:int ->
  steals_in:int ->
  steals_out:int ->
  parks:int ->
  wakes:int ->
  quantum:float ->
  util:float ->
  unit
(** Store one point in [worker]'s ring.  No-op while disabled (the
    ticker also checks {!enabled} first, so the disabled runtime pays
    one boolean load per sweep and nothing per worker).  Negative
    counter transients — the sampler reads racy plain counters — are
    clamped to 0, and [util] to [\[0,1\]], so stored points are always
    well-formed. *)

val total_samples : t -> int
(** Samples written over the telemetry's lifetime, all workers. *)

val samples : t -> worker:int -> int
(** Samples ever written to [worker]'s ring (not just retained). *)

val series : t -> worker:int -> point array
(** Retained points of one worker, oldest first.  After the ring wraps
    these are exactly the last [capacity] samples, with monotone
    [p_seq] starting at [samples - capacity]. *)

val latest : t -> worker:int -> point option

val clear : t -> unit
(** Drop all points and window samples (the enabled flag is
    unchanged). *)

(** {1 Sojourn windows} *)

val observe : t -> worker:int -> channel:int -> float -> unit
(** Add a sojourn sample to [worker]'s window for [channel].  Called
    by the workload on the worker that completed the request, so each
    window keeps a single writer.  No-op while disabled or for an
    out-of-range channel. *)

val rotate_windows : t -> unit
(** Rotate every window (ticker-driven, every few sample sweeps).
    Races benignly with {!observe}: a concurrent sample lands in one
    of the two histograms the next {!sketch} still covers. *)

val channel_sketch : t -> channel:int -> Metrics.Hist.t
(** Rolling cross-worker sketch for one channel:
    [Metrics.Hist.merge] over every worker's window. *)
