(** The M:N preemptive threading runtime — the paper's contribution.

    M user-level threads ({!Ult.t}) are multiplexed over N workers, each
    pinned to a core.  Nonpreemptive workers map 1:1 to KLTs; when a
    KLT-switching thread is preempted, its worker is remapped to a fresh
    KLT from a pool while the old KLT sleeps bound to the thread (paper
    Figs. 1–3).  The three thread types coexist freely in one runtime.

    Typical use:
    {[
      let eng = Engine.create () in
      let kernel = Kernel.create eng Machine.skylake in
      let rt = Runtime.create kernel ~n_workers:56
                 ~config:{ Config.default with
                           timer_strategy = Config.Per_worker_aligned;
                           interval = 1e-3 } in
      let _u = Runtime.spawn rt ~kind:Types.Klt_switching body in
      Runtime.start rt;
      Engine.run eng        (* returns once all threads finished *)
    ]} *)

type t = Types.rt

val create :
  ?config:Config.t ->
  ?scheduler:Types.scheduler ->
  Oskern.Kernel.t ->
  n_workers:int ->
  t

(** Spawn the worker KLTs, the KLT creator, and the preemption timers. *)
val start : t -> unit

(** Request shutdown: cancels timers, wakes parked KLTs and suspended
    workers.  Called automatically when the last thread finishes and
    [config.autostop] is set. *)
val stop : t -> unit

(** [spawn rt body] creates a user-level thread.  [kind] defaults to
    {!Types.Nonpreemptive}; [priority] (smaller = more urgent) defaults
    to 0; [home] selects the pool the thread starts in (default:
    round-robin).  Callable before or after {!start}, from ULT bodies,
    or from event context. *)
val spawn :
  t ->
  ?kind:Types.thread_kind ->
  ?priority:int ->
  ?footprint:float ->
  ?home:int ->
  ?name:string ->
  (unit -> unit) ->
  Ult.t
(** [footprint] (default 1.0) scales the cache-refill penalty the thread
    pays when it resumes on a different worker: ~0 for threads with no
    working set (spin loops), 1 for cache-filling kernels. *)

(** Move a thread blocked by {!Ult.suspend} back to the ready pools. *)
val ready : t -> Ult.t -> unit

(** {1 Thread packing (paper §4.2)} *)

(** [set_active_workers rt n]: workers with rank >= n suspend at their
    next scheduling point; shrinking and growing are both allowed. *)
val set_active_workers : t -> int -> unit

(** Re-arm the preemption timers at a new interval ("configurable
    preemption intervals", paper §4.2).  Callable at any time. *)
val set_preemption_interval : t -> float -> unit

val preemption_interval : t -> float

val n_active : t -> int

(** {1 Introspection} *)

val kernel : t -> Oskern.Kernel.t

val n_workers : t -> int

(** Threads spawned and not yet finished. *)
val unfinished : t -> int

val is_stopping : t -> bool

(** Per-delivery latency of preemption-timer signals: post → handler
    completion (the paper's Fig. 4 metric). *)
val interrupt_stats : t -> Desim.Stats.t

(** Latency from preemption signal to the next thread running on the
    worker (the paper's Table 1 metric). *)
val preempt_latency_stats : t -> Desim.Stats.t

(** Preemption requests honored (signals that hit a preemptive thread). *)
val preempt_signals : t -> int

(** Completed KLT-switch suspend operations. *)
val klt_switches : t -> int

(** Extra KLTs created by the KLT creator. *)
val klts_created : t -> int

(** Seconds worker [rank] spent spinning without work. *)
val worker_idle_time : t -> int -> float

(** Preemptions taken by worker [rank]. *)
val worker_preempts : t -> int -> int

(** Size of the global KLT pool (parked KLTs, excluding worker-local
    pools). *)
val global_pool_size : t -> int

(** Multi-line human-readable summary: per-worker preemptions and idle
    time, KLT-switch counts, pool sizes, timer statistics — plus the
    {!Metrics} summary when metrics are enabled. *)
val stats_summary : t -> string

(** {1 Metrics (see [docs/observability.md])} *)

(** Immutable snapshot of the runtime's {!Metrics}: per-worker event
    counters plus signal-to-switch / scheduling-delay / run-quantum
    latency histograms.  All zeros unless metrics were enabled
    ([Config.metrics_enabled] or {!set_metrics_enabled}). *)
val metrics : t -> Metrics.snapshot

val metrics_enabled : t -> bool

(** Toggle metric recording at any point (counters keep accumulating
    across toggles; use {!Metrics.reset} semantics by taking snapshots
    and differencing instead). *)
val set_metrics_enabled : t -> bool -> unit

(** {1 Flight recorder (see [docs/observability.md])} *)

(** The runtime's {!Recorder}: per-worker ring buffers of timestamped
    lifecycle, preemption and kernel events.  Recording is off unless
    [Config.recorder_enabled] was set or {!set_recorder_enabled} was
    called; a disabled recorder costs one boolean load per hook. *)
val recorder : t -> Recorder.t

val recorder_enabled : t -> bool

(** Toggle event recording.  Enabling also installs the engine observer
    that forwards kernel events (timer fires, signal deliveries, futex
    sleeps/wakes, KLT dispatches) into the global ring; disabling
    removes it, restoring the kernel's zero-overhead path. *)
val set_recorder_enabled : t -> bool -> unit

(** All retained events, merged across rings in timestamp order. *)
val flight_events : t -> Recorder.event array

(** The binary flight-record dump ({!Recorder.encode}); decode with
    {!Recorder.decode} / [repro observe --load]. *)
val flight_dump : t -> string

val save_flight : t -> path:string -> unit
