(** Priority scheduler for in-situ analysis (paper §4.3).

    Threads with priority 0 ("simulation") live in per-worker FIFO
    queues with work stealing; lower-priority threads ("analysis") live
    in per-worker LIFO queues.  A worker always exhausts reachable
    simulation threads before touching analysis threads, and a preempted
    analysis thread goes back to the local LIFO so its cache stays warm
    (the paper's stated reason for LIFO). *)

open Types

let steal_main rt (w : worker) =
  let n = Array.length rt.workers in
  let rec sweep i =
    if i = n then None
    else
      let v = (w.rank + 1 + i) mod n in
      match Dq.pop_back rt.workers.(v).q_main with Some u -> Some u | None -> sweep (i + 1)
  in
  if n <= 1 then None else sweep 0

let next rt (w : worker) =
  match Dq.pop_front w.q_main with
  | Some u -> Some u
  | None -> (
      match steal_main rt w with
      | Some u ->
          Metrics.incr_steals rt.metrics w.rank;
          if rt.recorder.Recorder.on then
            Recorder.emit rt.recorder w.rank
              (Oskern.Kernel.now rt.kernel)
              Recorder.ev_steal u.uid u.home;
          Some u
      | None -> Dq.pop_back w.q_aux (* LIFO *))

let on_ready rt (u : ult) =
  let w = rt.workers.(u.home mod Array.length rt.workers) in
  if u.priority <= 0 then Dq.push_back w.q_main u else Dq.push_back w.q_aux u

let on_preempted _rt (w : worker) (u : ult) =
  if u.priority <= 0 then Dq.push_back w.q_main u else Dq.push_back w.q_aux u

let on_yielded rt (w : worker) (u : ult) = on_preempted rt w u

let make () = { sched_name = "priority"; next; on_ready; on_preempted; on_yielded }
