type runtime = Runtime.t

type thread = Ult.t

type kind = Cooperative | Preemptive_signal_yield | Preemptive_klt_switching

let to_types_kind = function
  | Cooperative -> Types.Nonpreemptive
  | Preemptive_signal_yield -> Types.Signal_yield
  | Preemptive_klt_switching -> Types.Klt_switching

let init ?scheduler ?preemption ?suspend_mode ?timer_strategy kernel ~num_xstreams () =
  let config =
    match preemption with
    | None -> Config.make ?suspend_mode ?timer_strategy ()
    | Some interval ->
        (* A preemption interval arms per-worker aligned timers unless a
           strategy is chosen explicitly. *)
        let timer_strategy =
          match timer_strategy with
          | Some s -> s
          | None -> Config.Per_worker_aligned
        in
        Config.make ~timer_strategy ~interval ?suspend_mode ()
  in
  let rt = Runtime.create ~config ?scheduler kernel ~n_workers:num_xstreams in
  Runtime.start rt;
  rt

let finalize = Runtime.stop

let num_xstreams = Runtime.n_workers

let thread_create rt ?(kind = Cooperative) ?priority ?name body =
  Runtime.spawn rt ~kind:(to_types_kind kind) ?priority ?name body

let thread_join rt t = Usync.join rt t

let self_yield () = Ult.yield ()

let self_suspend register = Ult.suspend register

let thread_resume rt t = Runtime.ready rt t

let work = Ult.compute

module Mutex = Usync.Mutex
module Barrier = Usync.Barrier
module Eventual = Usync.Ivar
