type t = Types.ult

type _ Effect.t +=
  | Compute : float -> unit Effect.t
  | Blocking_io : float -> int Effect.t
  | Yield : unit Effect.t
  | Now : float Effect.t
  | Self : Types.ult Effect.t
  | Suspend : (Types.ult -> unit) -> unit Effect.t

let compute d = Effect.perform (Compute d)

let yield () = Effect.perform Yield

let blocking_io d = Effect.perform (Blocking_io d)

let now () = Effect.perform Now

let self () = Effect.perform Self

let suspend register = Effect.perform (Suspend register)

let id (u : t) = u.Types.uid

let name (u : t) = u.Types.uname

let kind (u : t) = u.Types.kind

let priority (u : t) = u.Types.priority

let set_priority (u : t) p = u.Types.priority <- p

let finished (u : t) = u.Types.ustate = Types.U_finished

let blocked (u : t) = u.Types.ustate = Types.U_blocked

let state_name (u : t) =
  match u.Types.ustate with
  | Types.U_ready -> "ready"
  | Types.U_running -> "running"
  | Types.U_bound -> "bound"
  | Types.U_blocked -> "blocked"
  | Types.U_finished -> "finished"

let preemptions (u : t) = u.Types.preemptions

let cpu (u : t) = u.Types.ult_cpu
