(* Live telemetry: ticker-driven time-series sampling of per-worker
   scheduler state, plus sliding-window sojourn sketches fed from the
   serving workload.  The write discipline matches [Recorder]: callers
   guard on [t.on] (one boolean load when disabled); an enabled sample
   is one plain store per field into preallocated per-worker rings —
   no allocation, no locks, no atomics.  Each ring has a single
   writer: the ticker thread writes every [sample] field, and each
   worker owns its own window sketches through [observe].  Readers
   (the live view, tests) reconstruct series from [count mod capacity]
   exactly like [Recorder.ring_events]; a torn read can show a point
   mid-overwrite at the wrap boundary, which a 1 Hz display tolerates
   by construction. *)

type point = {
  p_seq : int;  (* sample index within the worker's series (monotone) *)
  p_ts : float;  (* seconds since the pool's epoch *)
  p_depth : int;  (* run-queue depth of the worker's sub-pool *)
  p_steals_in : int;  (* cumulative: work acquired by stealing *)
  p_steals_out : int;  (* cumulative: work stolen away from the sub-pool *)
  p_parks : int;  (* cumulative: times the worker parked on the condvar *)
  p_wakes : int;  (* cumulative: times the worker was woken after a park *)
  p_quantum : float;  (* current preemption quantum, seconds *)
  p_util : float;  (* fraction of the last sample period spent unparked *)
}

(* Structure-of-arrays ring per worker: one plain store per field on
   the sample path, no per-point allocation. *)
type wring = {
  w_ts : float array;
  w_depth : int array;
  w_sin : int array;
  w_sout : int array;
  w_parks : int array;
  w_wakes : int array;
  w_quantum : float array;
  w_util : float array;
  mutable w_count : int;  (* total samples ever written to this ring *)
}

let make_wring capacity =
  {
    w_ts = Array.make capacity 0.0;
    w_depth = Array.make capacity 0;
    w_sin = Array.make capacity 0;
    w_sout = Array.make capacity 0;
    w_parks = Array.make capacity 0;
    w_wakes = Array.make capacity 0;
    w_quantum = Array.make capacity 0.0;
    w_util = Array.make capacity 0.0;
    w_count = 0;
  }

(* ------------------------------------------------------------------ *)
(* Sliding-window quantile sketches: two-bucket rotation.  [add] goes
   to the current histogram; [rotate] retires the previous one and
   starts a fresh current; [sketch] merges previous + current
   (Hist.merge), so the sketch always covers between one and two
   rotation periods of samples — a rolling window without per-sample
   timestamps. *)

module Window = struct
  module Hist = Metrics.Hist

  type t = { mutable cur : Hist.t; mutable prev : Hist.t }

  let create () = { cur = Hist.create (); prev = Hist.create () }

  let add t v = Hist.add t.cur v

  let rotate t =
    let retired = t.prev in
    t.prev <- t.cur;
    Hist.clear retired;
    t.cur <- retired

  let sketch t = Hist.merge t.prev t.cur

  let count t = Hist.count t.cur + Hist.count t.prev
end

(* ------------------------------------------------------------------ *)

type t = {
  mutable on : bool;
  capacity : int;
  rings : wring array;  (* index = worker id *)
  windows : Window.t array array;  (* windows.(worker).(channel) *)
}

let create ~n_workers ~capacity ~channels =
  if n_workers <= 0 then invalid_arg "Telemetry.create: n_workers <= 0";
  if capacity <= 0 then invalid_arg "Telemetry.create: capacity <= 0";
  if channels < 0 then invalid_arg "Telemetry.create: channels < 0";
  {
    on = false;
    capacity;
    rings = Array.init n_workers (fun _ -> make_wring capacity);
    windows = Array.init n_workers (fun _ -> Array.init channels (fun _ -> Window.create ()));
  }

let enabled t = t.on

let set_enabled t b = t.on <- b

let capacity t = t.capacity

let n_workers t = Array.length t.rings

let channels t = if Array.length t.windows = 0 then 0 else Array.length t.windows.(0)

(* The sampler reads racy plain counters maintained by other threads;
   clamp transients here so a stored point never shows a negative
   count or an out-of-range utilization. *)
let sample t ~worker ~ts ~depth ~steals_in ~steals_out ~parks ~wakes ~quantum ~util =
  if t.on then begin
    let r = t.rings.(worker) in
    let i = r.w_count mod t.capacity in
    let clamp v = if v < 0 then 0 else v in
    r.w_ts.(i) <- ts;
    r.w_depth.(i) <- clamp depth;
    r.w_sin.(i) <- clamp steals_in;
    r.w_sout.(i) <- clamp steals_out;
    r.w_parks.(i) <- clamp parks;
    r.w_wakes.(i) <- clamp wakes;
    r.w_quantum.(i) <- quantum;
    r.w_util.(i) <- (if util < 0.0 then 0.0 else if util > 1.0 then 1.0 else util);
    r.w_count <- r.w_count + 1
  end

let total_samples t = Array.fold_left (fun acc r -> acc + r.w_count) 0 t.rings

let samples t ~worker = t.rings.(worker).w_count

let series t ~worker =
  let r = t.rings.(worker) in
  let kept = min r.w_count t.capacity in
  let first = r.w_count - kept in
  Array.init kept (fun k ->
      let seq = first + k in
      let i = seq mod t.capacity in
      {
        p_seq = seq;
        p_ts = r.w_ts.(i);
        p_depth = r.w_depth.(i);
        p_steals_in = r.w_sin.(i);
        p_steals_out = r.w_sout.(i);
        p_parks = r.w_parks.(i);
        p_wakes = r.w_wakes.(i);
        p_quantum = r.w_quantum.(i);
        p_util = r.w_util.(i);
      })

let latest t ~worker =
  let r = t.rings.(worker) in
  if r.w_count = 0 then None
  else
    let seq = r.w_count - 1 in
    let i = seq mod t.capacity in
    Some
      {
        p_seq = seq;
        p_ts = r.w_ts.(i);
        p_depth = r.w_depth.(i);
        p_steals_in = r.w_sin.(i);
        p_steals_out = r.w_sout.(i);
        p_parks = r.w_parks.(i);
        p_wakes = r.w_wakes.(i);
        p_quantum = r.w_quantum.(i);
        p_util = r.w_util.(i);
      }

let clear t =
  Array.iter (fun r -> r.w_count <- 0) t.rings;
  Array.iter
    (fun ws ->
      Array.iter
        (fun w ->
          Metrics.Hist.clear w.Window.cur;
          Metrics.Hist.clear w.Window.prev)
        ws)
    t.windows

(* ------------------------------------------------------------------ *)
(* Window feed.  [observe] is called from the owning worker only (its
   windows are single-writer); [rotate_windows] is called from the
   ticker, racing benignly with [observe] — a sample added during a
   rotation lands in either the retiring or the fresh histogram, both
   of which the next [sketch] covers. *)

let observe t ~worker ~channel v =
  if t.on then begin
    let ws = t.windows.(worker) in
    if channel >= 0 && channel < Array.length ws then Window.add ws.(channel) v
  end

let rotate_windows t =
  Array.iter (fun ws -> Array.iter Window.rotate ws) t.windows

(* Cross-worker rolling sketch for one channel: Hist.merge over every
   worker's window — the aggregation path Hist.merge exists for. *)
let channel_sketch t ~channel =
  let acc = ref (Metrics.Hist.create ()) in
  Array.iter
    (fun ws ->
      if channel >= 0 && channel < Array.length ws then
        acc := Metrics.Hist.merge !acc (Window.sketch ws.(channel)))
    t.windows;
  !acc
