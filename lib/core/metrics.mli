(** First-class runtime observability: per-worker event counters and
    fixed-bucket log-scale latency histograms.

    Everything here is off by default.  Each instrumentation hook in the
    runtime is guarded by one boolean load — like {!Desim.Trace.emit} on
    a disabled trace, the disabled path records nothing and costs a
    single branch.  Enable at construction time via
    [Config.metrics_enabled] or at any point with
    {!Runtime.set_metrics_enabled}; read results with {!Runtime.metrics}
    (a {!snapshot}).

    See [docs/observability.md] for the full metric catalogue. *)

module Hist : sig
  (** Fixed-bucket log-scale histogram of durations in seconds.

      Buckets cover [\[1e-9, 1e2)] with 8 buckets per decade, plus an
      underflow bucket (index 0, everything below 1 ns — including
      negatives and non-finite values) and an overflow bucket (the last
      index).  The boundaries are a fixed table, so histograms from
      different runs are comparable bucket-for-bucket and bucketing is
      exact at the edges (no log rounding). *)

  type t

  val create : unit -> t

  (** Total number of buckets, underflow and overflow included. *)
  val n_buckets : int

  (** [bucket_of v] is the index of the bucket that [add] would count
      [v] in: 0 for underflow, [n_buckets - 1] for overflow, otherwise
      the unique [b] such that [lo <= v < hi] where
      [(lo, hi) = bucket_bounds b].  Decided by binary search on the
      boundary table, so a value exactly equal to a bucket's lower edge
      lands in that bucket. *)
  val bucket_of : float -> int

  (** Bounds of bucket [b] as [(lo, hi)], with [lo] inclusive and [hi]
      exclusive.  The underflow bucket reports [(neg_infinity, 1e-9)]
      and the overflow bucket [(hi_last, infinity)].
      @raise Invalid_argument if [b] is out of range. *)
  val bucket_bounds : int -> float * float

  val add : t -> float -> unit

  val count : t -> int

  (** Exact sum of all added values (not reconstructed from buckets). *)
  val sum : t -> float

  (** [sum /. count]; 0 when empty. *)
  val mean : t -> float

  (** [bucket_count t b] — samples recorded in bucket [b]. *)
  val bucket_count : t -> int -> int

  (** Non-empty buckets as [(lo, hi, count)] rows, index-ascending. *)
  val nonzero : t -> (float * float * int) array

  (** [percentile t p] with [p] in [\[0, 100\]]: the representative
      value (geometric bucket midpoint; the finite edge for the
      underflow/overflow buckets) of the bucket containing the [p]-th
      percentile sample.  @raise Invalid_argument on an empty histogram
      or [p] outside [\[0, 100\]]. *)
  val percentile : t -> float -> float

  (** [quantile t p] refines {!percentile} by interpolating inside the
      target bucket: the quantile rank's fractional position among the
      bucket's samples picks a point between the bucket edges on a log
      scale (matching the geometric bucket spacing), so estimates move
      smoothly with [p] instead of jumping per bucket.  Agrees with
      {!percentile} to within one bucket width by construction.  The
      open-ended underflow/overflow buckets fall back to the
      representative edge value.  @raise Invalid_argument under the same
      conditions as {!percentile}. *)
  val quantile : t -> float -> float

  val copy : t -> t

  (** Zero every bucket, the count and the sum (shape is untouched). *)
  val clear : t -> unit

  (** [merge a b] — a fresh histogram whose every bucket holds
      [bucket_count a i + bucket_count b i], with summed [count] and
      [sum].  Neither input is modified.  Because the bucket table is
      fixed, quantiles of the merge are exactly the quantiles of the
      pooled sample stream — this is the supported way to aggregate
      per-worker or per-class histograms.
      @raise Invalid_argument if the two histograms disagree on bucket
      shape. *)
  val merge : t -> t -> t
end

(** Per-worker event counters.  The runtime bumps these directly on its
    hot paths (they are mutable by design); read them through
    {!snapshot}, which deep-copies. *)
type wcounters = {
  mutable preempts : int;
      (** preemption-signal deliveries that hit (and flagged) a
          preemptive thread on this worker *)
  mutable signal_yields : int;  (** signal-yield preemptions taken *)
  mutable klt_switches : int;  (** KLT-switching suspends taken *)
  mutable pool_gets : int;
      (** replacement KLTs acquired from the local or global pool *)
  mutable pool_puts : int;  (** KLTs returned to a pool *)
  mutable steals : int;
      (** ready threads acquired from another worker's pool *)
  mutable timer_fires : int;
      (** preemption-timer expiries that targeted this worker *)
  mutable io_restarts : int;
      (** SA_RESTART resumptions of blocking I/O after a signal *)
}

type t = {
  mutable on : bool;
  workers : wcounters array;
  mutable sync_blocks : int;
      (** ULTs that blocked on a [Usync] primitive (contended mutex,
          barrier wait, empty channel/ivar, join) *)
  mutable sync_wakeups : int;
      (** ULTs readied by a [Usync] primitive (handoff, release,
          broadcast) *)
  sig_to_switch : Hist.t;
      (** preemption-signal post -> next thread running on the worker
          (the paper's Table 1 metric, as a distribution) *)
  sched_delay : Hist.t;  (** thread became ready -> thread running *)
  run_quantum : Hist.t;
      (** length of a run slice ended by preemption, yield or suspend *)
}

val create : n_workers:int -> t

val enabled : t -> bool

val set_enabled : t -> bool -> unit

(** Zero all counters and histograms (the enabled flag is unchanged). *)
val reset : t -> unit

(** {1 Guarded hooks}

    All of these are no-ops while disabled; the counter increments in
    the runtime test [t.on] inline instead. *)

val observe_sig_to_switch : t -> float -> unit

val observe_sched_delay : t -> float -> unit

val observe_run_quantum : t -> float -> unit

val incr_preempts : t -> int -> unit

val incr_signal_yields : t -> int -> unit

val incr_klt_switches : t -> int -> unit

val incr_pool_gets : t -> int -> unit

val incr_pool_puts : t -> int -> unit

val incr_steals : t -> int -> unit

val incr_timer_fires : t -> int -> unit

(** [add_io_restarts t rank n] *)
val add_io_restarts : t -> int -> int -> unit

val incr_sync_blocks : t -> unit

val incr_sync_wakeups : t -> unit

(** {1 Snapshots} *)

type snapshot = {
  s_workers : wcounters array;  (** deep copies, one per worker *)
  s_totals : wcounters;  (** field-wise sums over all workers *)
  s_sync_blocks : int;
  s_sync_wakeups : int;
  s_sig_to_switch : Hist.t;
  s_sched_delay : Hist.t;
  s_run_quantum : Hist.t;
}

(** Immutable deep copy of the current state.  Snapshots taken at the
    same point of two identical seeded runs compare equal with [(=)]. *)
val snapshot : t -> snapshot

(** Human-readable multi-line report: totals, per-worker counters, and
    count/mean plus interpolated p50/p90/p99 ({!Hist.quantile}) for each
    histogram. *)
val summary : snapshot -> string
