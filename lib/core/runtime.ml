open Desim
open Types
open Oskern

type t = rt

let kernel rt = rt.kernel

let n_workers rt = Array.length rt.workers

let n_active rt = rt.n_active

let unfinished rt = rt.unfinished

let is_stopping rt = rt.stopping

let interrupt_stats rt = rt.interrupt_stats

let preempt_latency_stats rt = rt.preempt_latency_stats

let metrics rt = Metrics.snapshot rt.metrics

let metrics_enabled rt = Metrics.enabled rt.metrics

let set_metrics_enabled rt b = Metrics.set_enabled rt.metrics b

let preempt_signals rt = rt.preempt_signals

let klt_switches rt = rt.klt_switches

let klts_created rt = rt.klts_created

let worker_idle_time rt r = rt.workers.(r).idle_time

let worker_preempts rt r = rt.workers.(r).preempts_taken

let global_pool_size rt = Queue.length rt.global_klts

let now rt = Kernel.now rt.kernel

let costs rt = Kernel.costs rt.kernel

(* Flight-recorder emits.  Call sites guard on [rt.recorder.Recorder.on]
   (one boolean load when disabled, like the Metrics hooks); [rec_w]
   writes to the current worker's ring, [rec_g] to the global ring for
   events that can fire outside any worker context. *)
let rec_w rt (w : worker) code a b = Recorder.emit rt.recorder w.rank (now rt) code a b

let rec_g rt code a b =
  Recorder.emit rt.recorder (Recorder.global_ring rt.recorder) (now rt) code a b

(* Kernel events arrive through the engine observer (installed only
   while the recorder is enabled, so a disabled recorder costs the
   kernel one option check per site) and land in the global ring. *)
let kernel_observer rt ts code a b =
  let code =
    if code = Kernel.obs_timer_fire then Recorder.ev_timer_fire
    else if code = Kernel.obs_sig_deliver then Recorder.ev_sig_deliver
    else if code = Kernel.obs_futex_wait then Recorder.ev_futex_wait
    else if code = Kernel.obs_futex_wake then Recorder.ev_futex_wake
    else if code = Kernel.obs_klt_dispatch then Recorder.ev_klt_dispatch
    else if code = Kernel.obs_klt_block then Recorder.ev_klt_block
    else 0
  in
  if code <> 0 then
    Recorder.emit rt.recorder (Recorder.global_ring rt.recorder) ts code a b

let recorder rt = rt.recorder

let recorder_enabled rt = Recorder.enabled rt.recorder

let set_recorder_enabled rt b =
  Recorder.set_enabled rt.recorder b;
  Engine.set_observer (Kernel.engine rt.kernel)
    (if b then Some (kernel_observer rt) else None)

let flight_events rt = Recorder.events rt.recorder

let flight_dump rt = Recorder.encode rt.recorder

let save_flight rt ~path = Recorder.save rt.recorder ~path

let worker_of rt klt = Itab.find rt.worker_of_klt (Kernel.klt_id klt)

(* Re-pinning a pooled KLT to a new worker's core costs
   [affinity_reset] — the overhead that worker-local KLT pools avoid
   (paper §3.3.2). *)
let klt_pin rt klt rank =
  let prev =
    match Itab.find rt.klt_pinned (Kernel.klt_id klt) with Some r -> r | None -> -1
  in
  if prev <> rank then begin
    let ncores = (Kernel.machine rt.kernel).Machine.cores in
    Kernel.set_affinity rt.kernel klt (Cpuset.of_list ncores [ rank mod ncores ]);
    Itab.set rt.klt_pinned (Kernel.klt_id klt) rank;
    if prev >= 0 then Kernel.add_overhead rt.kernel klt (costs rt).Machine.affinity_reset
  end

let attach_klt rt (w : worker) klt =
  w.wklt <- Some klt;
  Itab.set rt.worker_of_klt (Kernel.klt_id klt) w;
  klt_pin rt klt w.rank

let detach_klt rt klt = Itab.remove rt.worker_of_klt (Kernel.klt_id klt)

let parking_of rt klt = Itab.get rt.parked (Kernel.klt_id klt)

let send_parked rt ?waker klt msg =
  let p = parking_of rt klt in
  p.pmsg <- Some msg;
  Kernel.Futex.set p.pfut 1;
  ignore (Kernel.Futex.wake rt.kernel ?waker p.pfut 1)

let pool_push rt (w : worker) klt =
  Metrics.incr_pool_puts rt.metrics w.rank;
  if rt.cfg.Config.use_local_klt_pool
     && Queue.length w.local_klts < rt.cfg.Config.local_pool_capacity
  then Queue.push klt w.local_klts
  else Queue.push klt rt.global_klts

(* Acquire a replacement KLT at preemption: worker-local pool first
   (already pinned here), then the global pool.  Must stay
   "async-signal-safe": pure queue pops, no blocking.  A schedule
   controller can override the pool pick (local vs global when both
   have stock) or inject pool exhaustion — the paper's "no spare KLT"
   slow path — to drive the creator-request machinery. *)
let acquire_klt rt (w : worker) =
  let got =
    match Engine.controller (Kernel.engine rt.kernel) with
    | Some c when Choice.fault c ~tag:"klt.exhausted" -> None
    | (Some _ as ctrl) when rt.cfg.Config.use_local_klt_pool
                            && (not (Queue.is_empty w.local_klts))
                            && not (Queue.is_empty rt.global_klts) ->
        let c = Option.get ctrl in
        if Choice.pick c ~n:2 ~tag:"klt.pool" = 0 then Some (Queue.pop w.local_klts)
        else Queue.take_opt rt.global_klts
    | Some _ | None ->
        if rt.cfg.Config.use_local_klt_pool && not (Queue.is_empty w.local_klts) then
          Some (Queue.pop w.local_klts)
        else Queue.take_opt rt.global_klts
  in
  (match got with Some _ -> Metrics.incr_pool_gets rt.metrics w.rank | None -> ());
  got

(* One request per failed preemption attempt (the paper's "issue another
   request and go through the same cycle again"); the creator's
   low-water check keeps the total bounded near actual demand. *)
let request_klt_creation rt (_w : worker) ~waker =
  rt.creator_requests <- rt.creator_requests + 1;
  match rt.creator_fut with
  | Some fut ->
      Kernel.Futex.set fut 1;
      ignore (Kernel.Futex.wake rt.kernel ~waker fut 1)
  | None -> ()

(* ------------------------------------------------------------------ *)
(* ULT lifecycle. *)

let ready rt (u : ult) =
  match u.ustate with
  | U_blocked ->
      u.ustate <- U_ready;
      if rt.metrics.Metrics.on then u.ready_at <- now rt;
      if rt.recorder.Recorder.on then rec_g rt Recorder.ev_ready u.uid 0;
      rt.sched.on_ready rt u
  | U_ready | U_running | U_bound | U_finished ->
      invalid_arg (Printf.sprintf "Runtime.ready: %s is not blocked" u.uname)

let on_finish rt (u : ult) =
  u.ustate <- U_finished;
  u.work <- None;
  u.cur_worker <- None;
  if rt.recorder.Recorder.on then rec_g rt Recorder.ev_finish u.uid 0;
  rt.unfinished <- rt.unfinished - 1;
  let waiters = u.join_waiters in
  u.join_waiters <- [];
  List.iter (fun f -> f ()) waiters

(* Signal-yield preemption (paper §3.1.1): the "handler" performs a
   user-level context switch back to the scheduler; the thread (with the
   handler frame on its stack, modeled by the continuation) goes back to
   the ready pool. *)
let signal_yield_preempt rt (w : worker) (u : ult) cont =
  (match w.wklt with
  | Some klt ->
      (* Switching out of the handler saves both the handler's and the
         thread's contexts (paper §3.1.1). *)
      Kernel.consume rt.kernel klt
        ((costs rt).Machine.ult_ctx_switch +. (costs rt).Machine.handler_ctx_switch)
  | None -> ());
  if rt.metrics.Metrics.on then begin
    Metrics.incr_signal_yields rt.metrics w.rank;
    Metrics.observe_run_quantum rt.metrics (now rt -. u.run_started);
    u.ready_at <- now rt
  end;
  if rt.recorder.Recorder.on then rec_w rt w Recorder.ev_preempt u.uid 0;
  u.work <- Some cont;
  u.ustate <- U_ready;
  u.cur_worker <- None;
  w.current <- None;
  rt.sched.on_preempted rt w u

(* KLT-switching suspend path (paper Fig. 2). *)
let klt_switch_preempt rt (w : worker) (u : ult) klt cont_left =
  rt.klt_switches <- rt.klt_switches + 1;
  if rt.metrics.Metrics.on then begin
    Metrics.incr_klt_switches rt.metrics w.rank;
    Metrics.observe_run_quantum rt.metrics (now rt -. u.run_started);
    u.ready_at <- now rt
  end;
  Kernel.consume rt.kernel klt (costs rt).Machine.handler_ctx_switch;
  if rt.recorder.Recorder.on then rec_w rt w Recorder.ev_preempt u.uid 1;
  u.ustate <- U_bound;
  u.bound_klt <- Some klt;
  u.resume_worker <- None;
  let fut = Kernel.Futex.create rt.kernel 0 in
  (u.bound_wake <-
     Some
       (fun waker_klt w2 ->
         u.resume_worker <- Some w2;
         (* The portable sigsuspend/pthread_kill resume costs the waker a
            pthread_kill syscall on top of the wakeup (paper §3.3.1). *)
         (match rt.cfg.Config.suspend_mode with
         | Config.Sigsuspend ->
             Kernel.consume rt.kernel waker_klt (costs rt).Machine.pthread_kill
         | Config.Futex_suspend -> ());
         Kernel.Futex.set fut 1;
         ignore (Kernel.Futex.wake rt.kernel ~waker:waker_klt fut 1)));
  rt.sched.on_preempted rt w u;
  (* Remap the worker to a fresh KLT (the acquirer already holds it). *)
  w.current <- None;
  (* Sleep until a scheduler pops us (paper Fig. 3a–b). *)
  while u.resume_worker = None do
    ignore (Kernel.Futex.wait rt.kernel klt fut ~expected:0)
  done;
  (* A sigsuspend-based suspend resolves an extra signal round-trip on
     the woken KLT before control returns (paper §3.3.1). *)
  (match rt.cfg.Config.suspend_mode with
  | Config.Sigsuspend -> Kernel.consume rt.kernel klt (costs rt).Machine.sigsuspend_extra
  | Config.Futex_suspend -> ());
  (* Fig. 3c: resume the thread on the popping worker. *)
  let w2 = Option.get u.resume_worker in
  u.resume_worker <- None;
  u.bound_klt <- None;
  u.bound_wake <- None;
  u.ustate <- U_running;
  u.cur_worker <- Some w2;
  w2.current <- Some u;
  if rt.recorder.Recorder.on then rec_w rt w2 Recorder.ev_resume u.uid 0;
  if rt.metrics.Metrics.on then begin
    if not (Float.is_nan u.ready_at) then
      Metrics.observe_sched_delay rt.metrics (now rt -. u.ready_at);
    u.ready_at <- Float.nan;
    u.run_started <- now rt
  end;
  (* The thread moves *together with* its bound KLT: the kernel's
     migration penalty on that KLT's dispatch already prices the cache
     refill — charging the ULT-level penalty too would double-count. *)
  if u.last_worker <> w2.rank then u.ult_cpu_since_move <- 0.0;
  u.last_worker <- w2.rank;
  cont_left ()

(* ------------------------------------------------------------------ *)
(* The ULT effect handler. *)

let rec do_compute rt (u : ult) k d =
  let rec go remaining =
    let w = Option.get u.cur_worker in
    match w.wklt with
    | None -> assert false
    | Some klt ->
        let left =
          Kernel.compute_stoppable rt.kernel klt remaining ~should_stop:(fun () ->
              w.preempt_request)
        in
        let progressed = Float.max 0.0 (remaining -. left) in
        u.ult_cpu <- u.ult_cpu +. progressed;
        u.ult_cpu_since_move <- u.ult_cpu_since_move +. progressed;
        if left <= 0.0 then Effect.Deep.continue k ()
        else begin
          w.preempt_request <- false;
          u.preemptions <- u.preemptions + 1;
          w.preempts_taken <- w.preempts_taken + 1;
          match u.kind with
          | Nonpreemptive ->
              (* Defensive: nonpreemptive threads are never flagged. *)
              go left
          | Signal_yield -> signal_yield_preempt rt w u (fun () -> go left)
          | Klt_switching -> (
              match acquire_klt rt w with
              | None ->
                  (* No spare KLT: ask the creator and keep running until
                     the next signal (paper §3.1.2 — no livelock: worst
                     case deteriorates to 1:1). *)
                  request_klt_creation rt w ~waker:klt;
                  go left
              | Some nklt ->
                  (* Hand the worker over before sleeping. *)
                  detach_klt rt klt;
                  attach_klt rt w nklt;
                  if rt.recorder.Recorder.on then
                    rec_w rt w Recorder.ev_klt_remap (Kernel.klt_id nklt) 0;
                  send_parked rt ~waker:klt nklt (`Attach w);
                  klt_switch_preempt rt w u klt (fun () -> go left))
        end
  in
  go d

and handler rt (u : ult) : (unit, unit) Effect.Deep.handler =
  {
    retc = (fun () -> on_finish rt u);
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Ult.Compute d ->
            Some (fun (k : (a, unit) Effect.Deep.continuation) -> do_compute rt u k d)
        | Ult.Blocking_io d ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                let w = Option.get u.cur_worker in
                let klt = Option.get w.wklt in
                (* The syscall blocks this worker's KLT; preemption
                   signals interrupt it and SA_RESTART resumes it. *)
                let restarts =
                  match
                    Kernel.blocking_syscall rt.kernel klt ~duration:d ~sa_restart:true
                  with
                  | `Done r -> r
                  | `Eintr _ -> assert false (* sa_restart never fails *)
                in
                (* Signals while blocked may have flagged a preemption
                   that no longer applies. *)
                w.preempt_request <- false;
                Metrics.add_io_restarts rt.metrics w.rank restarts;
                Effect.Deep.continue k restarts)
        | Ult.Yield ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                let w = Option.get u.cur_worker in
                (match w.wklt with
                | Some klt -> Kernel.consume rt.kernel klt (costs rt).Machine.ult_ctx_switch
                | None -> ());
                if rt.metrics.Metrics.on then begin
                  Metrics.observe_run_quantum rt.metrics (now rt -. u.run_started);
                  u.ready_at <- now rt
                end;
                if rt.recorder.Recorder.on then rec_w rt w Recorder.ev_yield u.uid 0;
                u.work <- Some (fun () -> Effect.Deep.continue k ());
                u.ustate <- U_ready;
                u.cur_worker <- None;
                w.current <- None;
                rt.sched.on_yielded rt w u)
        | Ult.Now ->
            Some (fun (k : (a, unit) Effect.Deep.continuation) ->
                Effect.Deep.continue k (now rt))
        | Ult.Self ->
            Some (fun (k : (a, unit) Effect.Deep.continuation) -> Effect.Deep.continue k u)
        | Ult.Suspend f ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                let w = Option.get u.cur_worker in
                if rt.metrics.Metrics.on then
                  Metrics.observe_run_quantum rt.metrics (now rt -. u.run_started);
                if rt.recorder.Recorder.on then rec_w rt w Recorder.ev_block u.uid 0;
                u.work <- Some (fun () -> Effect.Deep.continue k ());
                u.ustate <- U_blocked;
                u.cur_worker <- None;
                w.current <- None;
                f u)
        | _ -> None);
  }

(* ------------------------------------------------------------------ *)
(* Worker scheduler loop. *)

let initiate_stop rt =
  if not rt.stopping then begin
    rt.stopping <- true;
    List.iter Kernel.Timer.cancel rt.timers;
    Itab.iter
      (fun _ p ->
        p.pmsg <- Some `Exit;
        Kernel.Futex.set p.pfut 1;
        ignore (Kernel.Futex.wake rt.kernel p.pfut 1))
      rt.parked;
    Array.iter
      (fun w ->
        w.active <- true;
        match w.wake_fut with
        | Some f ->
            Kernel.Futex.set f 1;
            ignore (Kernel.Futex.wake rt.kernel f 1)
        | None -> ())
      rt.workers;
    match rt.creator_fut with
    | Some f ->
        Kernel.Futex.set f 1;
        ignore (Kernel.Futex.wake rt.kernel f 1)
    | None -> ()
  end

let stop = initiate_stop

let rec sched_loop rt klt =
  if not rt.stopping then
    match worker_of rt klt with
    | None -> park_klt rt klt
    | Some w ->
        if not w.active then begin
          suspend_worker rt w klt;
          sched_loop rt klt
        end
        else begin
          (* Injected worker stall: the scheduler loop loses its core to
             unrelated kernel work for one poll quantum, widening the
             window in which other workers must make progress alone. *)
          (match Engine.controller (Kernel.engine rt.kernel) with
          | Some c when Choice.fault c ~tag:"worker.stall" ->
              Kernel.compute rt.kernel klt rt.cfg.Config.idle_poll
          | Some _ | None -> ());
          (match rt.sched.next rt w with
          | Some u -> run_entry rt w klt u
          | None ->
              if rt.unfinished <= 0 && rt.cfg.Config.autostop then initiate_stop rt
              else idle_spin rt w klt);
          sched_loop rt klt
        end

and park_klt rt klt =
  let p = parking_of rt klt in
  let rec wait () =
    if not rt.stopping then
      match p.pmsg with
      | Some (`Attach _w) ->
          p.pmsg <- None;
          Kernel.Futex.set p.pfut 0;
          sched_loop rt klt
      | Some `Exit -> ()
      | None ->
          ignore (Kernel.Futex.wait rt.kernel klt p.pfut ~expected:0);
          wait ()
  in
  wait ()

and suspend_worker rt (w : worker) klt =
  let fut = Kernel.Futex.create rt.kernel 0 in
  w.wake_fut <- Some fut;
  Trace.emit (Kernel.trace rt.kernel) (now rt) "worker-suspend" (string_of_int w.rank);
  ignore (Kernel.Futex.wait rt.kernel klt fut ~expected:0);
  w.wake_fut <- None;
  Trace.emit (Kernel.trace rt.kernel) (now rt) "worker-resume" (string_of_int w.rank)

and idle_spin rt (w : worker) klt =
  let t0 = now rt in
  Kernel.compute rt.kernel klt rt.cfg.Config.idle_poll;
  w.idle_time <- w.idle_time +. (now rt -. t0)

and run_entry rt (w : worker) klt (u : ult) =
  match u.ustate with
  | U_ready ->
      w.preempt_request <- false;
      u.ustate <- U_running;
      u.cur_worker <- Some w;
      w.current <- Some u;
      Kernel.consume rt.kernel klt (costs rt).Machine.ult_ctx_switch;
      if u.last_worker >= 0 && u.last_worker <> w.rank then begin
        (* Cache refill scales with the thread's working set and with how
           much state it built on its previous worker (fully hot after
           ~1 ms of CPU). *)
        let hotness = Float.min 1.0 (u.ult_cpu_since_move /. 1e-3) in
        Kernel.add_overhead rt.kernel klt
          ((costs rt).Machine.ult_migration_cache_penalty *. hotness *. u.footprint);
        u.ult_cpu_since_move <- 0.0
      end;
      u.last_worker <- w.rank;
      if rt.recorder.Recorder.on then rec_w rt w Recorder.ev_run u.uid 0;
      if w.measure_preempt then begin
        Stats.add rt.preempt_latency_stats (now rt -. w.preempt_post_time);
        Metrics.observe_sig_to_switch rt.metrics (now rt -. w.preempt_post_time);
        if rt.recorder.Recorder.on then
          rec_w rt w Recorder.ev_preempt_done u.uid
            (int_of_float ((now rt -. w.preempt_post_time) *. 1e9));
        w.measure_preempt <- false
      end;
      if rt.metrics.Metrics.on then begin
        if not (Float.is_nan u.ready_at) then
          Metrics.observe_sched_delay rt.metrics (now rt -. u.ready_at);
        u.ready_at <- Float.nan;
        u.run_started <- now rt
      end;
      (match u.work with
      | Some work ->
          u.work <- None;
          work ()
      | None -> assert false);
      (* After a KLT switch this process may now serve a different
         worker (or none): consult the mapping, not [w]. *)
      (match worker_of rt klt with Some w' -> w'.current <- None | None -> ())
  | U_bound -> resume_bound rt w klt u
  | U_running | U_blocked | U_finished ->
      invalid_arg (Printf.sprintf "Runtime: scheduled %s in state %s" u.uname
           (match u.ustate with
           | U_running -> "running"
           | U_blocked -> "blocked"
           | U_finished -> "finished"
           | U_ready | U_bound -> assert false))

(* Resume path of KLT-switching (paper Fig. 3): wake the KLT bound to
   the thread, hand it our worker, and park our own KLT. *)
and resume_bound rt (w : worker) klt (u : ult) =
  let bklt = Option.get u.bound_klt in
  if w.measure_preempt then begin
    Stats.add rt.preempt_latency_stats (now rt -. w.preempt_post_time);
    Metrics.observe_sig_to_switch rt.metrics (now rt -. w.preempt_post_time);
    if rt.recorder.Recorder.on then
      rec_w rt w Recorder.ev_preempt_done u.uid
        (int_of_float ((now rt -. w.preempt_post_time) *. 1e9));
    w.measure_preempt <- false
  end;
  detach_klt rt klt;
  attach_klt rt w bklt;
  w.current <- None;
  (match u.bound_wake with Some f -> f klt w | None -> assert false);
  pool_push rt w klt

(* ------------------------------------------------------------------ *)
(* Preemption signal handling. *)

let has_preemptive (w : worker) =
  match w.current with Some u -> u.kind <> Nonpreemptive | None -> false

let maybe_request_preempt rt (w : worker) posted =
  match w.current with
  | Some u when u.kind <> Nonpreemptive && not w.preempt_request ->
      w.preempt_request <- true;
      w.preempt_post_time <- posted;
      w.measure_preempt <- true;
      rt.preempt_signals <- rt.preempt_signals + 1;
      if rt.recorder.Recorder.on then rec_w rt w Recorder.ev_preempt_req u.uid 0;
      Metrics.incr_preempts rt.metrics w.rank
  | _ -> ()

let post_forward rt ~sender (w : worker) =
  match w.wklt with
  | Some klt ->
      Itab.Float.set rt.signal_posted (Kernel.klt_id klt) (now rt);
      if rt.recorder.Recorder.on then rec_w rt w Recorder.ev_sig_post w.rank 1;
      Kernel.pthread_kill rt.kernel ~sender klt sig_forward
  | None -> ()

let on_preempt_signal rt ~from_timer _k klt =
  (* NaN = no post time recorded (stray signal). *)
  let posted = Itab.Float.take rt.signal_posted (Kernel.klt_id klt) in
  (match worker_of rt klt with
  | None -> () (* parked or bound KLT caught a stray signal *)
  | Some w -> (
      maybe_request_preempt rt w (if Float.is_nan posted then now rt else posted);
      match rt.cfg.Config.timer_strategy with
      | Config.Per_process_one_to_all when from_timer ->
          Array.iter
            (fun w' -> if w' != w && has_preemptive w' then post_forward rt ~sender:klt w')
            rt.workers
      | Config.Per_process_chain ->
          (* Forward to the next worker (in rank order) running a
             preemptive thread — one hop per handler. *)
          let n = Array.length rt.workers in
          let rec probe i =
            if i < n then
              let w' = rt.workers.(i) in
              if w' != w && has_preemptive w' then post_forward rt ~sender:klt w'
              else probe (i + 1)
          in
          probe (w.rank + 1)
      | Config.No_timer | Config.Per_worker_creation | Config.Per_worker_aligned
      | Config.Per_process_one_to_all ->
          ()));
  if not (Float.is_nan posted) then Stats.add rt.interrupt_stats (now rt -. posted)

(* ------------------------------------------------------------------ *)
(* KLT creator (paper §3.1.2): KLT creation is not async-signal-safe, so
   preemption handlers delegate it to this dedicated KLT. *)

let spawn_pool_klt rt ?creator () =
  let name = Printf.sprintf "pool-klt%d" rt.klts_created in
  rt.klts_created <- rt.klts_created + 1;
  let klt =
    Kernel.spawn rt.kernel ?creator ~name (fun klt ->
        if not rt.stopping then park_klt rt klt)
  in
  (* Carrier KLT: its own state is a thin stack; thread-data movement is
     charged per-ULT (see Types.ult.footprint). *)
  Kernel.set_footprint rt.kernel klt 0.05;
  Itab.set rt.parked (Kernel.klt_id klt)
    { pfut = Kernel.Futex.create rt.kernel 0; pmsg = None };
  klt

let creator_loop rt klt =
  let fut = Option.get rt.creator_fut in
  let rec loop () =
    if not rt.stopping then
      if rt.creator_requests > 0 then begin
        rt.creator_requests <- rt.creator_requests - 1;
        (* Top up only while the free pool is low: demand (bound KLTs)
           pulls supply up to at most one KLT per suspended thread — the
           paper's "deteriorates to 1:1" worst case — while a stale
           request backlog cannot overshoot. *)
        if Queue.length rt.global_klts < Array.length rt.workers then begin
          let nklt = spawn_pool_klt rt ~creator:klt () in
          Queue.push nklt rt.global_klts
        end;
        loop ()
      end
      else begin
        Kernel.Futex.set fut 0;
        ignore (Kernel.Futex.wait rt.kernel klt fut ~expected:0);
        loop ()
      end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Construction. *)

let create ?(config = Config.default) ?scheduler kernel ~n_workers =
  if n_workers <= 0 then invalid_arg "Runtime.create: n_workers <= 0";
  if n_workers > (Kernel.machine kernel).Machine.cores then
    invalid_arg "Runtime.create: more workers than cores";
  let config = Config.validate config in
  let sched = match scheduler with Some s -> s | None -> Sched_ws.make () in
  let rng = Rng.split (Engine.rng (Kernel.engine kernel)) in
  let workers =
    Array.init n_workers (fun rank ->
        {
          rank;
          wklt = None;
          current = None;
          preempt_request = false;
          preempt_post_time = 0.0;
          measure_preempt = false;
          active = true;
          wake_fut = None;
          klt_requested = false;
          q_main = Dq.create ();
          q_aux = Dq.create ();
          local_klts = Queue.create ();
          w_rng = Rng.split rng;
          idle_time = 0.0;
          preempts_taken = 0;
        })
  in
  {
    kernel;
    cfg = config;
    workers;
    sched;
    n_active = n_workers;
    creator_fut = Some (Kernel.Futex.create kernel 0);
    global_klts = Queue.create ();
    parked = Itab.create 64;
    klt_pinned = Itab.create 64;
    worker_of_klt = Itab.create 64;
    creator_requests = 0;
    klts_created = 0;
    unfinished = 0;
    stopping = false;
    started = false;
    cur_interval = config.Config.interval;
    timers = [];
    signal_posted = Itab.Float.create 64;
    interrupt_stats = Stats.create ();
    preempt_latency_stats = Stats.create ();
    next_uid = 0;
    rt_rng = rng;
    preempt_signals = 0;
    klt_switches = 0;
    metrics =
      (let m = Metrics.create ~n_workers in
       Metrics.set_enabled m config.Config.metrics_enabled;
       m);
    recorder = Recorder.create ~n_workers ~capacity:config.Config.recorder_capacity;
  }

let create ?config ?scheduler kernel ~n_workers =
  let rt = create ?config ?scheduler kernel ~n_workers in
  (* Installing the engine observer only while recording keeps the
     kernel's disabled path at one option check per emit site. *)
  if rt.cfg.Config.recorder_enabled then set_recorder_enabled rt true;
  rt

let spawn rt ?(kind = Nonpreemptive) ?(priority = 0) ?(footprint = 1.0) ?home ?name body =
  let uid = rt.next_uid in
  rt.next_uid <- uid + 1;
  let uname = match name with Some n -> n | None -> Printf.sprintf "ult%d" uid in
  let home = match home with Some h -> h | None -> uid mod Array.length rt.workers in
  let u =
    {
      uid;
      uname;
      kind;
      priority;
      footprint;
      ustate = U_ready;
      work = None;
      cur_worker = None;
      home;
      last_worker = -1;
      bound_klt = None;
      bound_wake = None;
      resume_worker = None;
      join_waiters = [];
      preemptions = 0;
      ult_cpu = 0.0;
      ult_cpu_since_move = 0.0;
      ready_at = Float.nan;
      run_started = 0.0;
    }
  in
  u.work <- Some (fun () -> Effect.Deep.match_with body () (handler rt u));
  rt.unfinished <- rt.unfinished + 1;
  if rt.metrics.Metrics.on then u.ready_at <- now rt;
  if rt.recorder.Recorder.on then rec_g rt Recorder.ev_spawn u.uid 0;
  rt.sched.on_ready rt u;
  u

let install_timers rt =
  let interval = rt.cur_interval in
  let target_of (w : worker) () =
    if rt.stopping then None
    else
      match w.wklt with
      | Some klt ->
          Itab.Float.set rt.signal_posted (Kernel.klt_id klt) (now rt);
          Metrics.incr_timer_fires rt.metrics w.rank;
          if rt.recorder.Recorder.on then rec_w rt w Recorder.ev_sig_post w.rank 0;
          Some klt
      | None -> None
  in
  let per_worker first_of =
    Array.to_list rt.workers
    |> List.map (fun w ->
           Kernel.Timer.create rt.kernel ~first:(first_of w) ~interval ~signo:sig_timer
             ~target:(target_of w) ())
  in
  match rt.cfg.Config.timer_strategy with
  | Config.No_timer -> []
  | Config.Per_worker_creation -> per_worker (fun _ -> interval)
  | Config.Per_worker_aligned ->
      (* "Timer alignment": spread expiries across the interval so
         deliveries never coincide (paper §3.2.1). *)
      let n = float_of_int (Array.length rt.workers) in
      per_worker (fun w -> interval *. (float_of_int (w.rank + 1) /. n))
  | Config.Per_process_one_to_all | Config.Per_process_chain ->
      [
        Kernel.Timer.create rt.kernel ~interval ~signo:sig_timer
          ~target:(target_of rt.workers.(0))
          ();
      ]

let start rt =
  if rt.started then invalid_arg "Runtime.start: already started";
  rt.started <- true;
  Kernel.sigaction rt.kernel sig_timer (fun k klt -> on_preempt_signal rt ~from_timer:true k klt);
  Kernel.sigaction rt.kernel sig_forward (fun k klt ->
      on_preempt_signal rt ~from_timer:false k klt);
  Kernel.sigaction rt.kernel sig_resume (fun _ _ -> ());
  let ncores = (Kernel.machine rt.kernel).Machine.cores in
  Array.iter
    (fun w ->
      let klt =
        Kernel.spawn rt.kernel
          ~affinity:(Cpuset.of_list ncores [ w.rank ])
          ~name:(Printf.sprintf "worker%d" w.rank)
          (fun klt ->
            attach_klt rt w klt;
            sched_loop rt klt)
      in
      Kernel.set_footprint rt.kernel klt 0.05;
      Itab.set rt.parked (Kernel.klt_id klt)
        { pfut = Kernel.Futex.create rt.kernel 0; pmsg = None };
      Itab.set rt.klt_pinned (Kernel.klt_id klt) w.rank)
    rt.workers;
  ignore (Kernel.spawn rt.kernel ~name:"klt-creator" (fun klt -> creator_loop rt klt));
  rt.timers <- install_timers rt

(* Re-arm the preemption timers at a new interval — the paper's
   "configurable preemption intervals" (§4.2): packing favours short
   intervals, compute-heavy phases favour long ones. *)
let set_preemption_interval rt interval =
  if interval <= 0.0 then invalid_arg "Runtime.set_preemption_interval: interval <= 0";
  rt.cur_interval <- interval;
  if rt.started && not rt.stopping then begin
    List.iter Kernel.Timer.cancel rt.timers;
    rt.timers <- install_timers rt
  end

let preemption_interval rt = rt.cur_interval

let stats_summary rt =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "runtime: %d workers (%d active), %d unfinished threads\n\
        preemption: %d signals honored, %d KLT switches, %d KLTs created\n"
       (Array.length rt.workers) rt.n_active rt.unfinished rt.preempt_signals
       rt.klt_switches rt.klts_created);
  (match Stats.count rt.interrupt_stats with
  | 0 -> ()
  | n ->
      Buffer.add_string buf
        (Printf.sprintf "timer interruptions: %d, mean %.2f us\n" n
           (Stats.mean rt.interrupt_stats *. 1e6)));
  (match Stats.count rt.preempt_latency_stats with
  | 0 -> ()
  | n ->
      Buffer.add_string buf
        (Printf.sprintf "preemption latency: %d samples, median %.2f us\n" n
           (Stats.median rt.preempt_latency_stats *. 1e6)));
  Buffer.add_string buf
    (Printf.sprintf "global KLT pool: %d parked\n" (Queue.length rt.global_klts));
  Array.iter
    (fun w ->
      Buffer.add_string buf
        (Printf.sprintf "  worker%-3d preempts=%-6d idle=%.4fs local-pool=%d%s\n" w.rank
           w.preempts_taken w.idle_time (Queue.length w.local_klts)
           (if w.active then "" else " (suspended)")))
    rt.workers;
  if Metrics.enabled rt.metrics then
    Buffer.add_string buf (Metrics.summary (Metrics.snapshot rt.metrics));
  Buffer.contents buf

let set_active_workers rt n =
  let n = Stdlib.max 1 (Stdlib.min n (Array.length rt.workers)) in
  rt.n_active <- n;
  Array.iter
    (fun w ->
      if w.rank < n then begin
        w.active <- true;
        match w.wake_fut with
        | Some f ->
            Kernel.Futex.set f 1;
            ignore (Kernel.Futex.wake rt.kernel f 1)
        | None -> ()
      end
      else w.active <- false)
    rt.workers
