(** Growable int-keyed tables keyed by small sequential ids (KLT ids).

    Flat-array replacements for the runtime's per-KLT Hashtbls: O(1)
    reads with no hashing, and [find] returns the stored option without
    allocating.  Not sparse-friendly — capacity is the largest key ever
    set — which is exactly the KLT-id shape. *)

type 'a t

(** [create n] makes an empty table with initial capacity [n]. *)
val create : int -> 'a t

val set : 'a t -> int -> 'a -> unit

val remove : 'a t -> int -> unit

(** [find t i] is the stored binding or [None]; never allocates. *)
val find : 'a t -> int -> 'a option

(** Like {!find} but raises [Not_found] when absent. *)
val get : 'a t -> int -> 'a

(** Iterates bindings in ascending key order (deterministic). *)
val iter : (int -> 'a -> unit) -> 'a t -> unit

(** Unboxed [int -> float] map; NaN encodes absence, so neither [set]
    nor [take] allocates. *)
module Float : sig
  type t

  val create : int -> t

  val set : t -> int -> float -> unit

  (** [take t i] returns the binding (NaN if absent) and clears it. *)
  val take : t -> int -> float
end
