(* Growable int-keyed tables for the runtime's per-KLT maps.

   KLT ids are small sequential ints, so a flat array beats a Hashtbl on
   every hot lookup: no hashing, no bucket chase, and [find] returns the
   stored option without allocating.  [Float] is the fully unboxed
   variant for float-valued maps (NaN encodes absence), used on the
   signal-post path where even a [Some] per timer fire would churn. *)

type 'a t = { mutable data : 'a option array }

let create n = { data = Array.make (if n < 1 then 1 else n) None }

let ensure t i =
  let len = Array.length t.data in
  if i >= len then begin
    let cap = ref (len * 2) in
    while i >= !cap do
      cap := !cap * 2
    done;
    let nd = Array.make !cap None in
    Array.blit t.data 0 nd 0 len;
    t.data <- nd
  end

let set t i v =
  ensure t i;
  t.data.(i) <- Some v

let remove t i = if i < Array.length t.data then t.data.(i) <- None

let find t i = if i < Array.length t.data then Array.unsafe_get t.data i else None

let get t i = match find t i with Some v -> v | None -> raise Not_found

(* Ascending key order — deterministic, unlike Hashtbl.iter. *)
let iter f t =
  Array.iteri (fun i o -> match o with Some v -> f i v | None -> ()) t.data

module Float = struct
  type t = { mutable data : float array }

  let create n = { data = Array.make (if n < 1 then 1 else n) Float.nan }

  let ensure t i =
    let len = Array.length t.data in
    if i >= len then begin
      let cap = ref (len * 2) in
      while i >= !cap do
        cap := !cap * 2
      done;
      let nd = Array.make !cap Float.nan in
      Array.blit t.data 0 nd 0 len;
      t.data <- nd
    end

  let set t i v =
    ensure t i;
    t.data.(i) <- v

  (* Read-and-clear; NaN when the key is absent. *)
  let take t i =
    if i < Array.length t.data then begin
      let v = Array.unsafe_get t.data i in
      Array.unsafe_set t.data i Float.nan;
      v
    end
    else Float.nan
end
