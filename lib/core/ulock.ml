open Types

(* Classic lock algorithms ported to the ULT layer, after "Basic Lock
   Algorithms in Lightweight Thread Environments": ticket, test-and-
   test-and-set with exponential backoff, and MCS.  In an M:N runtime a
   waiter must not spin on its worker forever — a preempted holder may
   need that very worker to run — so every algorithm bounds its spin
   with cooperative yields and then parks on [Ult.suspend], exactly the
   state the checker's deadlock watchdog and lost-wakeup accounting
   observe.  Parks and wakes bump the runtime's sync metrics (like
   [Usync]) so the [no_lost_wakeups] oracle stays balanced.

   Each lock has a seeded broken variant for the checker's regression
   scenarios:
   - [Ticket ~unfair] wakes the most recently parked waiter (LIFO
     barging) instead of the next ticket — mutual exclusion holds but
     FIFO fairness breaks.
   - [Ttas ~racy] opens a preemptible window between the test and the
     set — the classic torn test-and-set, mutual exclusion breaks.
   - [Mcs ~drop_handoff] releases without waiting for a mid-enqueue
     successor to link itself — the successor parks forever (deadlock).

   Simulation note: code between two effects executes atomically (the
   simulator only interleaves at effect boundaries), so the "atomic"
   instructions (fetch-and-add, swap, CAS) are plain OCaml here and the
   broken variants insert explicit [Ult.compute] windows where the
   ported algorithm has a real preemptible gap. *)

let spins_before_park = 2

let obs rt code (u : ult) =
  if rt.recorder.Recorder.on then
    Recorder.emit rt.recorder
      (Recorder.global_ring rt.recorder)
      (Oskern.Kernel.now rt.kernel) code u.uid 0

let park rt register =
  Ult.suspend (fun self ->
      Metrics.incr_sync_blocks rt.metrics;
      obs rt Recorder.ev_sync_block self;
      register self)

let wake rt (u : ult) =
  Metrics.incr_sync_wakeups rt.metrics;
  obs rt Recorder.ev_sync_wake u;
  Runtime.ready rt u

module Ticket = struct
  type t = {
    rt : Runtime.t;
    unfair : bool;
    mutable next_ticket : int;
    mutable serving : int;
    mutable parked : (int * ult) list;  (* most recently parked first *)
    mutable arrivals : int list;  (* reversed *)
    mutable grants : int list;  (* reversed *)
  }

  let create ?(unfair = false) rt =
    { rt; unfair; next_ticket = 0; serving = 0; parked = []; arrivals = [];
      grants = [] }

  let lock t =
    let my = t.next_ticket in
    t.next_ticket <- my + 1 (* fetch-and-add *);
    t.arrivals <- my :: t.arrivals;
    let rec wait spins =
      if t.serving <> my then
        if spins > 0 then begin
          Ult.yield ();
          wait (spins - 1)
        end
        else begin
          (* The serving check and the park are one atomic step, so an
             unlock cannot slip between them — no lost-wakeup window. *)
          park t.rt (fun self -> t.parked <- (my, self) :: t.parked);
          wait 1 (* woken: re-check, spurious-wake safe *)
        end
    in
    wait spins_before_park;
    t.grants <- my :: t.grants

  let unlock t =
    if t.unfair then
      (* Broken variant: barging hand-off to the most recently parked
         waiter, skipping the ticket order.  Exclusion still holds (only
         the woken waiter observes [serving] = its ticket) but grants go
         LIFO — the FIFO oracle catches it. *)
      match t.parked with
      | (tk, u) :: rest ->
          t.parked <- rest;
          t.serving <- tk;
          wake t.rt u
      | [] -> t.serving <- t.serving + 1
    else begin
      t.serving <- t.serving + 1;
      match List.assoc_opt t.serving t.parked with
      | Some u ->
          t.parked <- List.remove_assoc t.serving t.parked;
          wake t.rt u
      | None -> () (* next holder is still spinning, it will see serving *)
    end

  let history t = (List.rev t.arrivals, List.rev t.grants)
end

module Ttas = struct
  type t = { rt : Runtime.t; racy : bool; mutable busy : bool }

  let create ?(racy = false) rt = { rt; racy; busy = false }

  let lock t =
    let rec acquire backoff =
      if t.busy then begin
        (* Test loop: burn the backoff (preemptible), yield, retry with
           the window doubled — the classic contention throttle. *)
        Ult.compute backoff;
        Ult.yield ();
        acquire (Float.min 8e-5 (backoff *. 2.0))
      end
      else if t.racy then begin
        (* Broken variant: the test and the set are separated by a
           preemptible window, so two threads can both see [busy =
           false] and both enter. *)
        Ult.compute 1e-5;
        t.busy <- true
      end
      else t.busy <- true (* test-and-set: atomic step *)
    in
    acquire 1e-6

  let try_lock t =
    if t.busy then false
    else begin
      t.busy <- true;
      true
    end

  let unlock t =
    if not t.busy then invalid_arg "Ulock.Ttas.unlock: not locked";
    t.busy <- false
end

module Mcs = struct
  type node = {
    nseq : int;
    mutable granted : bool;
    mutable next : node option;
    mutable nparked : ult option;
  }

  type t = {
    rt : Runtime.t;
    drop_handoff : bool;
    mutable tail : node option;
    mutable holder : node option;
    mutable nseq_ctr : int;
    mutable arrivals : int list;  (* reversed *)
    mutable grants : int list;  (* reversed *)
  }

  let create ?(drop_handoff = false) rt =
    { rt; drop_handoff; tail = None; holder = None; nseq_ctr = 0;
      arrivals = []; grants = [] }

  let lock t =
    let seq = t.nseq_ctr in
    t.nseq_ctr <- seq + 1;
    let me = { nseq = seq; granted = false; next = None; nparked = None } in
    t.arrivals <- seq :: t.arrivals;
    let prev = t.tail in
    t.tail <- Some me (* atomic swap *);
    (match prev with
    | None -> me.granted <- true
    | Some p ->
        (* Between the tail swap and linking into the predecessor the
           enqueuer can be preempted — the window every MCS port must
           handle at release time. *)
        Ult.compute 2e-5;
        p.next <- Some me;
        let rec wait spins =
          if not me.granted then
            if spins > 0 then begin
              Ult.yield ();
              wait (spins - 1)
            end
            else begin
              park t.rt (fun self -> me.nparked <- Some self);
              wait 1
            end
        in
        wait spins_before_park);
    t.holder <- Some me;
    t.grants <- seq :: t.grants

  let grant t n =
    n.granted <- true;
    match n.nparked with
    | Some u ->
        n.nparked <- None;
        wake t.rt u
    | None -> () (* successor still spinning, it will see granted *)

  let unlock t =
    let me =
      match t.holder with
      | Some n -> n
      | None -> invalid_arg "Ulock.Mcs.unlock: not locked"
    in
    t.holder <- None;
    match me.next with
    | Some n -> grant t n
    | None -> (
        match t.tail with
        | Some tl when tl == me -> t.tail <- None (* CAS: atomic step *)
        | _ ->
            (* A successor has swapped the tail but not linked yet. *)
            if t.drop_handoff then
              (* Broken variant: walk away instead of waiting for the
                 link — the successor is never granted and parks
                 forever (deadlock, caught by the watchdog). *)
              ()
            else
              let rec await () =
                match me.next with
                | Some n -> grant t n
                | None ->
                    Ult.yield ();
                    await ()
              in
              await ())

  let history t = (List.rev t.arrivals, List.rev t.grants)
end
