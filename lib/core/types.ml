(* Shared mutable records of the M:N runtime.  Internal to
   [preempt_core]; the public faces are [Runtime], [Ult] and [Usync]. *)

open Oskern

type thread_kind =
  | Nonpreemptive  (* classic M:N thread: explicit yields only *)
  | Signal_yield  (* preemptible; must be KLT-independent (paper §3.1.1) *)
  | Klt_switching  (* preemptible and KLT-dependent-safe (paper §3.1.2) *)

type ustate =
  | U_ready  (* in a pool, [work] set *)
  | U_running
  | U_bound  (* preempted via KLT-switching; its KLT sleeps bound to it *)
  | U_blocked  (* suspended on user-level sync; some waker holds it *)
  | U_finished

type ult = {
  uid : int;
  uname : string;
  kind : thread_kind;
  mutable priority : int;  (* smaller = more urgent (priority scheduler) *)
  footprint : float;
      (* relative cache working set in [0,1]: scales the refill penalty
         when the thread resumes on a different worker (a pure spin loop
         is ~0, a tile kernel ~1) *)
  mutable ustate : ustate;
  mutable work : (unit -> unit) option;  (* start thunk or captured continuation *)
  mutable cur_worker : worker option;
  mutable home : int;  (* pool index this thread belongs to *)
  mutable last_worker : int;  (* for the ULT migration cache penalty *)
  mutable bound_klt : Kernel.klt option;
  mutable bound_wake : (Kernel.klt -> worker -> unit) option;
      (* args: the waking KLT (charged for the wake syscall) and the
         worker the thread resumes on *)
  mutable resume_worker : worker option;
  mutable join_waiters : (unit -> unit) list;
  mutable preemptions : int;
  mutable ult_cpu : float;  (* CPU consumed by this thread's computes *)
  mutable ult_cpu_since_move : float;  (* cache hotness on the current worker *)
  mutable ready_at : float;
      (* when the thread last became ready (Metrics sched-delay
         histogram); NaN when unknown, e.g. metrics were enabled
         mid-run *)
  mutable run_started : float;  (* when the current run slice started *)
}

and worker = {
  rank : int;
  mutable wklt : Kernel.klt option;
  mutable current : ult option;
  mutable preempt_request : bool;
  mutable preempt_post_time : float;  (* when the preempting signal was posted *)
  mutable measure_preempt : bool;  (* pending Table-1 style latency sample *)
  mutable active : bool;  (* thread packing: inactive workers suspend *)
  mutable wake_fut : Kernel.Futex.t option;  (* set while suspended *)
  mutable klt_requested : bool;  (* outstanding KLT-creation request *)
  q_main : ult Dq.t;  (* primary pool (FIFO / packing pool) *)
  q_aux : ult Dq.t;  (* secondary pool (priority scheduler: analysis LIFO) *)
  local_klts : Kernel.klt Queue.t;  (* worker-local KLT pool *)
  w_rng : Desim.Rng.t;
  mutable idle_time : float;  (* time spent spinning with no work *)
  mutable preempts_taken : int;
}

type scheduler = {
  sched_name : string;
  next : rt -> worker -> ult option;
  on_ready : rt -> ult -> unit;  (* freshly spawned or unblocked *)
  on_preempted : rt -> worker -> ult -> unit;
  on_yielded : rt -> worker -> ult -> unit;
}

and parking = {
  pfut : Kernel.Futex.t;
  mutable pmsg : [ `Attach of worker | `Exit ] option;
}

and rt = {
  kernel : Kernel.t;
  cfg : Config.t;
  workers : worker array;
  mutable sched : scheduler;
  mutable n_active : int;
  global_klts : Kernel.klt Queue.t;
  parked : parking Itab.t;  (* klt id -> mailbox *)
  klt_pinned : int Itab.t;  (* klt id -> core it is pinned to *)
  worker_of_klt : worker Itab.t;
  mutable creator_fut : Kernel.Futex.t option;
  mutable creator_requests : int;
  mutable klts_created : int;
  mutable unfinished : int;
  mutable stopping : bool;
  mutable started : bool;
  mutable cur_interval : float;  (* live preemption interval *)
  mutable timers : Kernel.Timer.t list;
  signal_posted : Itab.Float.t;  (* klt id -> post time; NaN = none *)
  interrupt_stats : Desim.Stats.t;  (* Fig. 4 metric *)
  preempt_latency_stats : Desim.Stats.t;  (* Table 1 metric *)
  mutable next_uid : int;
  rt_rng : Desim.Rng.t;
  mutable preempt_signals : int;
  mutable klt_switches : int;
  metrics : Metrics.t;  (* per-worker counters + latency histograms *)
  recorder : Recorder.t;  (* flight recorder: per-worker event rings *)
}

let sig_timer = 34 (* leader timer signal (SIGRTMIN) *)

let sig_forward = 35 (* forwarded preemption signal *)

let sig_resume = 36 (* sigsuspend-mode resume signal *)
