(** Operations available {e inside} a user-level thread's body.

    ULT bodies are plain OCaml functions; these operations are effects
    interpreted by the worker that is currently executing the thread.
    Calling them outside a ULT raises [Effect.Unhandled]. *)

type t = Types.ult

(** Consume [d] seconds of CPU.  This is the (only) preemption point:
    a signal-yield or KLT-switching thread can be preempted while
    computing, a nonpreemptive thread cannot. *)
val compute : float -> unit

(** Cooperative yield: back to the scheduler, thread returns to a pool. *)
val yield : unit -> unit

(** [blocking_io d] — a blocking system call of wall duration [d] (no
    CPU consumed), restarted transparently when preemption signals
    interrupt it (SA_RESTART, paper §3.5.1).  Note that it blocks the
    {e worker's KLT}, like real M:N runtimes.  Returns the number of
    signal-induced restarts. *)
val blocking_io : float -> int

(** Current virtual time. *)
val now : unit -> float

(** The thread's own record (identity, statistics). *)
val self : unit -> t

(** [suspend register] blocks the calling thread; [register u] runs
    immediately (still on the worker) and must arrange for
    [Runtime.ready] to be called on [u] later.  Building block for
    user-level synchronization ({!Usync}). *)
val suspend : (Types.ult -> unit) -> unit

val id : t -> int

val name : t -> string

val kind : t -> Types.thread_kind

val priority : t -> int

val set_priority : t -> int -> unit

val finished : t -> bool

(** True while the thread is suspended on user-level synchronization
    (the state a deadlock oracle watches for). *)
val blocked : t -> bool

(** Human-readable state ("ready", "running", "bound", "blocked",
    "finished") — for violation reports and tests. *)
val state_name : t -> string

(** Number of times this thread has been preempted. *)
val preemptions : t -> int

(** CPU seconds consumed by this thread's [compute] calls. *)
val cpu : t -> float

(** {1 Effects (interpreted by the runtime's worker loop)} *)

type _ Effect.t +=
  | Compute : float -> unit Effect.t
  | Blocking_io : float -> int Effect.t
  | Yield : unit Effect.t
  | Now : float Effect.t
  | Self : Types.ult Effect.t
  | Suspend : (Types.ult -> unit) -> unit Effect.t
