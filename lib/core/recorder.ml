(* Flight recorder: always-on per-worker ring buffers of int-coded
   timestamped events, in the style of Go's execution tracer and
   magic-trace.  The write path is the same discipline as [Metrics]:
   callers guard on [t.on] (one boolean load when disabled); an enabled
   emit is one bounds-free modulo index plus four array stores.  The
   analysis passes below — lifecycle reconstruction, preemption-latency
   attribution, anomaly detection — run post-mortem on a decoded copy,
   never on the hot path. *)

(* ------------------------------------------------------------------ *)
(* Event codes.  [a]/[b] meanings are per-code; see [code_name]. *)

let ev_spawn = 1 (* a = uid *)

let ev_ready = 2 (* a = uid *)

let ev_run = 3 (* a = uid *)

let ev_preempt = 4 (* a = uid, b = 0 signal-yield / 1 klt-switch *)

let ev_yield = 5 (* a = uid *)

let ev_block = 6 (* a = uid *)

let ev_resume = 7 (* a = uid (bound thread resumed after a KLT switch) *)

let ev_finish = 8 (* a = uid *)

let ev_steal = 9 (* a = uid, b = home pool it was taken from *)

let ev_sig_post = 10 (* a = worker rank, b = 0 timer / 1 forwarded *)

let ev_preempt_req = 11 (* a = uid (preemption flagged by the handler) *)

let ev_preempt_done = 12 (* a = next uid running, b = latency in ns *)

let ev_sync_block = 13 (* a = uid *)

let ev_sync_wake = 14 (* a = uid *)

let ev_klt_remap = 15 (* a = new klt id carrying the worker *)

(* Kernel-side events, forwarded through the engine observer. *)

let ev_timer_fire = 16 (* a = target klt id (-1 skipped) *)

let ev_sig_deliver = 17 (* a = klt id, b = signo *)

let ev_futex_wait = 18 (* a = klt id *)

let ev_futex_wake = 19 (* a = woken, b = requested *)

let ev_klt_dispatch = 20 (* a = klt id, b = core *)

let ev_klt_block = 21 (* a = klt id *)

let ev_pool_steal = 22
(* a = thief sub-pool id, b = victim sub-pool id.  Emitted by the real
   fiber runtime (lib/fiber) on every successful steal: [a = b] is a
   same-sub-pool steal, [a <> b] a cross-sub-pool overflow steal. *)

let ev_quantum_change = 23
(* a = worker id, b = new preemption quantum in ns.  Emitted into the
   global ring by the real fiber runtime's adaptive ticker
   (lib/fiber/sched.ml) whenever the Quantum controller moves a
   worker's quantum — the ticker is the only writer of the global
   ring there, so worker-local rings stay single-writer. *)

(* Per-request span events, emitted by the serving workload (lib/serve)
   through [Fiber.emit_flight].  [a] is always the request id; every
   event lands in the ring of the worker that emitted it, so the ring
   index doubles as the worker attribution. *)

let ev_req_arrival = 24 (* a = request id, b = service class (0 short / 1 long) *)

let ev_req_enqueue = 25 (* a = request id (submitted to the pool) *)

let ev_req_dispatch = 26 (* a = request id (first instruction of the body) *)

let ev_req_preempt = 27 (* a = request id (preemption flag observed; yielding) *)

let ev_req_resume = 28 (* a = request id (running again after the yield) *)

let ev_req_done = 29 (* a = request id, b = measured sojourn in ns *)

let ev_steal_batch = 30
(* a = batch size (tasks claimed in one raid, including the one the
   thief runs itself), b = victim sub-pool id.  Emitted by the real
   fiber runtime alongside [ev_pool_steal] on every successful
   batched raid; `repro observe` folds these into the steal-split
   batch-size histogram. *)

let code_name = function
  | 1 -> "spawn"
  | 2 -> "ready"
  | 3 -> "run"
  | 4 -> "preempt"
  | 5 -> "yield"
  | 6 -> "block"
  | 7 -> "resume"
  | 8 -> "finish"
  | 9 -> "steal"
  | 10 -> "sig-post"
  | 11 -> "preempt-req"
  | 12 -> "preempt-done"
  | 13 -> "sync-block"
  | 14 -> "sync-wake"
  | 15 -> "klt-remap"
  | 16 -> "timer-fire"
  | 17 -> "sig-deliver"
  | 18 -> "futex-wait"
  | 19 -> "futex-wake"
  | 20 -> "klt-dispatch"
  | 21 -> "klt-block"
  | 22 -> "pool-steal"
  | 23 -> "quantum-change"
  | 24 -> "req-arrival"
  | 25 -> "req-enqueue"
  | 26 -> "req-dispatch"
  | 27 -> "req-preempt"
  | 28 -> "req-resume"
  | 29 -> "req-done"
  | 30 -> "steal-batch"
  | c -> Printf.sprintf "code%d" c

(* ------------------------------------------------------------------ *)
(* Rings. *)

type ring = {
  r_ts : float array;
  r_code : int array;
  r_a : int array;
  r_b : int array;
  mutable r_count : int;  (* total events ever emitted to this ring *)
}

type t = {
  mutable on : bool;
  capacity : int;
  rings : ring array;  (* index = worker rank; the last ring is global *)
}

let make_ring capacity =
  {
    r_ts = Array.make capacity 0.0;
    r_code = Array.make capacity 0;
    r_a = Array.make capacity 0;
    r_b = Array.make capacity 0;
    r_count = 0;
  }

let create ~n_workers ~capacity =
  if n_workers <= 0 then invalid_arg "Recorder.create: n_workers <= 0";
  if capacity <= 0 then invalid_arg "Recorder.create: capacity <= 0";
  {
    on = false;
    capacity;
    rings = Array.init (n_workers + 1) (fun _ -> make_ring capacity);
  }

let enabled t = t.on

let set_enabled t b = t.on <- b

let capacity t = t.capacity

let n_rings t = Array.length t.rings

let global_ring t = Array.length t.rings - 1

let total_emitted t = Array.fold_left (fun acc r -> acc + r.r_count) 0 t.rings

(* Events lost to wraparound: everything emitted past [capacity]
   overwrote the ring's oldest record.  Zero until the ring wraps. *)
let overwritten t ring =
  let r = t.rings.(ring) in
  Stdlib.max 0 (r.r_count - t.capacity)

let total_overwritten t =
  let acc = ref 0 in
  for ring = 0 to n_rings t - 1 do
    acc := !acc + overwritten t ring
  done;
  !acc

let clear t =
  Array.iter (fun r -> r.r_count <- 0) t.rings;
  ()

let emit t ring ts code a b =
  if t.on then begin
    let r = t.rings.(ring) in
    let i = r.r_count mod t.capacity in
    r.r_ts.(i) <- ts;
    r.r_code.(i) <- code;
    r.r_a.(i) <- a;
    r.r_b.(i) <- b;
    r.r_count <- r.r_count + 1
  end

(* ------------------------------------------------------------------ *)
(* Decoding. *)

type event = {
  e_ts : float;
  e_ring : int;
  e_seq : int;  (* emission index within its ring (monotone) *)
  e_code : int;
  e_a : int;
  e_b : int;
}

let ring_events t ring =
  let r = t.rings.(ring) in
  let kept = min r.r_count t.capacity in
  let first = r.r_count - kept in
  Array.init kept (fun k ->
      let seq = first + k in
      let i = seq mod t.capacity in
      {
        e_ts = r.r_ts.(i);
        e_ring = ring;
        e_seq = seq;
        e_code = r.r_code.(i);
        e_a = r.r_a.(i);
        e_b = r.r_b.(i);
      })

let order a b =
  let c = compare a.e_ts b.e_ts in
  if c <> 0 then c
  else
    let c = compare a.e_ring b.e_ring in
    if c <> 0 then c else compare a.e_seq b.e_seq

let events t =
  let all = Array.concat (List.init (n_rings t) (fun i -> ring_events t i)) in
  Array.sort order all;
  all

let event_to_string e =
  Printf.sprintf "%.9f ring%d #%d %-12s a=%d b=%d" e.e_ts e.e_ring e.e_seq
    (code_name e.e_code) e.e_a e.e_b

(* ------------------------------------------------------------------ *)
(* Binary dump format — the crash-dump artifact [lib/check] writes next
   to a counterexample trail.  Little-endian:

     "FLTREC01" | n_rings u32 | capacity u32
     per ring: total_count u32 | stored u32 | stored records
     record: ts (float bits) u64 | code u32 | a s64 | b s64            *)

let magic = "FLTREC01"

let encode t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_int32_le buf (Int32.of_int (n_rings t));
  Buffer.add_int32_le buf (Int32.of_int t.capacity);
  for ring = 0 to n_rings t - 1 do
    let evs = ring_events t ring in
    Buffer.add_int32_le buf (Int32.of_int t.rings.(ring).r_count);
    Buffer.add_int32_le buf (Int32.of_int (Array.length evs));
    Array.iter
      (fun e ->
        Buffer.add_int64_le buf (Int64.bits_of_float e.e_ts);
        Buffer.add_int32_le buf (Int32.of_int e.e_code);
        Buffer.add_int64_le buf (Int64.of_int e.e_a);
        Buffer.add_int64_le buf (Int64.of_int e.e_b))
      evs
  done;
  Buffer.contents buf

let save t ~path =
  let oc = open_out_bin path in
  output_string oc (encode t);
  close_out oc

type dump = {
  d_n_rings : int;
  d_capacity : int;
  d_events : event array;
  d_overwritten : int array;  (* per ring: events lost to wraparound *)
}

let decode s =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let len = String.length s in
  if len < 16 then fail "flight dump: truncated header (%d bytes)" len
  else if String.sub s 0 8 <> magic then
    fail "flight dump: bad magic %S (want %S)" (String.sub s 0 8) magic
  else begin
    let u32 off = Int32.to_int (String.get_int32_le s off) in
    let n_rings = u32 8 and cap = u32 12 in
    if n_rings <= 0 || n_rings > 4096 then
      fail "flight dump: implausible ring count %d" n_rings
    else begin
      let pos = ref 16 in
      let out = ref [] in
      let ok = ref true in
      let err = ref "" in
      let lost = Array.make n_rings 0 in
      (try
         for ring = 0 to n_rings - 1 do
           if !pos + 8 > len then failwith "truncated ring header";
           let count = u32 !pos and stored = u32 (!pos + 4) in
           pos := !pos + 8;
           (* The writer stores min(count, capacity) records; the excess
              was overwritten in place before the dump was taken. *)
           lost.(ring) <- Stdlib.max 0 (count - stored);
           if stored < 0 || stored > cap || !pos + (stored * 28) > len then
             failwith "truncated ring body";
           for k = 0 to stored - 1 do
             let off = !pos + (k * 28) in
             let ts = Int64.float_of_bits (String.get_int64_le s off) in
             let code = Int32.to_int (String.get_int32_le s (off + 8)) in
             let a = Int64.to_int (String.get_int64_le s (off + 12)) in
             let b = Int64.to_int (String.get_int64_le s (off + 20)) in
             out :=
               { e_ts = ts; e_ring = ring; e_seq = count - stored + k; e_code = code; e_a = a; e_b = b }
               :: !out
           done;
           pos := !pos + (stored * 28)
         done
       with Failure m ->
         ok := false;
         err := m);
      if not !ok then fail "flight dump: %s" !err
      else begin
        let all = Array.of_list (List.rev !out) in
        Array.sort order all;
        Ok { d_n_rings = n_rings; d_capacity = cap; d_events = all; d_overwritten = lost }
      end
    end
  end

let load ~path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  decode s

(* ------------------------------------------------------------------ *)
(* Lifecycle reconstruction: per-ULT state machine replayed from the
   merged event stream. *)

type phase = P_ready | P_running | P_bound | P_blocked | P_finished

let phase_name = function
  | P_ready -> "ready"
  | P_running -> "running"
  | P_bound -> "bound"
  | P_blocked -> "blocked"
  | P_finished -> "finished"

type span = { s_phase : phase; s_from : float; s_to : float }

type lifecycle = {
  lc_uid : int;
  mutable lc_spawned : float;  (* NaN if the spawn fell off the ring *)
  mutable lc_finished : float;  (* NaN if unfinished (or lost) *)
  mutable lc_runs : int;
  mutable lc_preempts : int;
  mutable lc_yields : int;
  mutable lc_blocks : int;
  mutable lc_steals : int;
  mutable lc_run_time : float;
  mutable lc_spans : span list;  (* reverse chronological while building *)
  mutable lc_open : (phase * float) option;
}

let lifecycles evs =
  let tab : (int, lifecycle) Hashtbl.t = Hashtbl.create 64 in
  let get uid =
    match Hashtbl.find_opt tab uid with
    | Some lc -> lc
    | None ->
        let lc =
          {
            lc_uid = uid;
            lc_spawned = Float.nan;
            lc_finished = Float.nan;
            lc_runs = 0;
            lc_preempts = 0;
            lc_yields = 0;
            lc_blocks = 0;
            lc_steals = 0;
            lc_run_time = 0.0;
            lc_spans = [];
            lc_open = None;
          }
        in
        Hashtbl.add tab uid lc;
        lc
  in
  let close lc ts =
    match lc.lc_open with
    | None -> ()
    | Some (ph, t0) ->
        lc.lc_spans <- { s_phase = ph; s_from = t0; s_to = ts } :: lc.lc_spans;
        if ph = P_running then lc.lc_run_time <- lc.lc_run_time +. (ts -. t0);
        lc.lc_open <- None
  in
  let transition lc ts ph =
    close lc ts;
    lc.lc_open <- Some (ph, ts)
  in
  Array.iter
    (fun e ->
      let code = e.e_code and ts = e.e_ts in
      if code >= ev_spawn && code <= ev_steal then begin
        let lc = get e.e_a in
        if code = ev_spawn then begin
          lc.lc_spawned <- ts;
          transition lc ts P_ready
        end
        else if code = ev_ready then transition lc ts P_ready
        else if code = ev_run then begin
          lc.lc_runs <- lc.lc_runs + 1;
          transition lc ts P_running
        end
        else if code = ev_resume then begin
          lc.lc_runs <- lc.lc_runs + 1;
          transition lc ts P_running
        end
        else if code = ev_preempt then begin
          lc.lc_preempts <- lc.lc_preempts + 1;
          transition lc ts (if e.e_b = 1 then P_bound else P_ready)
        end
        else if code = ev_yield then begin
          lc.lc_yields <- lc.lc_yields + 1;
          transition lc ts P_ready
        end
        else if code = ev_block then begin
          lc.lc_blocks <- lc.lc_blocks + 1;
          transition lc ts P_blocked
        end
        else if code = ev_finish then begin
          lc.lc_finished <- ts;
          close lc ts;
          lc.lc_open <- Some (P_finished, ts)
        end
        else if code = ev_steal then lc.lc_steals <- lc.lc_steals + 1
      end)
    evs;
  let all = Hashtbl.fold (fun _ lc acc -> lc :: acc) tab [] in
  List.iter
    (fun lc ->
      (match lc.lc_open with
      | Some (ph, t0) when ph <> P_finished ->
          lc.lc_spans <- { s_phase = ph; s_from = t0; s_to = Float.nan } :: lc.lc_spans
      | _ -> ());
      lc.lc_spans <- List.rev lc.lc_spans)
    all;
  List.sort (fun a b -> compare a.lc_uid b.lc_uid) all

(* ------------------------------------------------------------------ *)
(* Preemption-latency attribution.

   Each worker has at most one measured preemption in flight (the
   runtime's [measure_preempt] latch), so the per-worker event order
   pairs the stages exactly:

     sig-post t0  ->  preempt-req t1  ->  preempt t2  ->  preempt-done t3

   and the stage durations (t1-t0, t2-t1, t3-t2) sum to t3-t0, the very
   sample the runtime feeds the signal->switch histogram — both sides
   compute it from the same stored timestamps, so the totals agree
   bit-for-bit unless the chain's head fell off the ring. *)

type chain = {
  at_worker : int;
  at_uid : int;  (* the thread that was preempted *)
  at_next_uid : int;  (* the thread running after the switch *)
  at_mode : int;  (* 0 signal-yield, 1 KLT-switch, -1 no switch seen *)
  at_t0 : float;  (* when the preempting signal was posted *)
  at_fire_to_handler : float;  (* t1 - t0: post -> handler running *)
  at_handler_to_switch : float;  (* t2 - t1: handler -> context switch *)
  at_switch_to_run : float;  (* t3 - t2: switch -> next thread running *)
}

let chain_total c = c.at_fire_to_handler +. c.at_handler_to_switch +. c.at_switch_to_run

type anomaly =
  | Never_landed of { an_worker : int; an_t0 : float; an_uid : int }
      (** a preemption was flagged but no thread switch ever completed *)
  | Coalesced of { an_worker : int; an_at : float; an_gap : float }
      (** gap between consecutive timer posts far above the interval *)
  | Starved of { an_uid : int; an_ready : float; an_wait : float }
      (** a ready thread waited more than [starve_after] to run *)

let anomaly_to_string = function
  | Never_landed a ->
      Printf.sprintf
        "never-landed: worker%d flagged preemption of ult%d at %.6fs but no switch completed"
        a.an_worker a.an_uid a.an_t0
  | Coalesced a ->
      Printf.sprintf
        "timer-coalescing: worker%d saw a %.2f us gap between timer posts at %.6fs"
        a.an_worker (a.an_gap *. 1e6) a.an_at
  | Starved a ->
      Printf.sprintf "starvation: ult%d ready at %.6fs waited %.2f us to run"
        a.an_uid a.an_ready (a.an_wait *. 1e6)

type pending = No_chain | Flagged of float * float * int | Switched of float * float * float * int * int

let attribute ~n_workers evs =
  let chains = ref [] in
  let anomalies = ref [] in
  for w = 0 to n_workers - 1 do
    let post = ref Float.nan in
    let st = ref No_chain in
    let abort t0 uid =
      anomalies := Never_landed { an_worker = w; an_t0 = t0; an_uid = uid } :: !anomalies
    in
    Array.iter
      (fun e ->
        if e.e_ring = w then
          if e.e_code = ev_sig_post then post := e.e_ts
          else if e.e_code = ev_preempt_req then begin
            (match !st with
            | No_chain -> ()
            | Flagged (t0, _, uid) | Switched (t0, _, _, uid, _) -> abort t0 uid);
            let t0 = if Float.is_nan !post || !post > e.e_ts then e.e_ts else !post in
            post := Float.nan;
            st := Flagged (t0, e.e_ts, e.e_a)
          end
          else if e.e_code = ev_preempt then begin
            match !st with
            | Flagged (t0, t1, uid) -> st := Switched (t0, t1, e.e_ts, uid, e.e_b)
            | No_chain | Switched _ -> ()
          end
          else if e.e_code = ev_preempt_done then begin
            let t3 = e.e_ts in
            (match !st with
            | Flagged (t0, t1, uid) ->
                (* The flagged thread never switched (it finished or
                   blocked first); the handler->switch stage collapses. *)
                chains :=
                  {
                    at_worker = w;
                    at_uid = uid;
                    at_next_uid = e.e_a;
                    at_mode = -1;
                    at_t0 = t0;
                    at_fire_to_handler = t1 -. t0;
                    at_handler_to_switch = 0.0;
                    at_switch_to_run = t3 -. t1;
                  }
                  :: !chains
            | Switched (t0, t1, t2, uid, mode) ->
                chains :=
                  {
                    at_worker = w;
                    at_uid = uid;
                    at_next_uid = e.e_a;
                    at_mode = mode;
                    at_t0 = t0;
                    at_fire_to_handler = t1 -. t0;
                    at_handler_to_switch = t2 -. t1;
                    at_switch_to_run = t3 -. t2;
                  }
                  :: !chains
            | No_chain -> ());
            st := No_chain
          end)
      evs;
    match !st with
    | Flagged (t0, _, uid) | Switched (t0, _, _, uid, _) -> abort t0 uid
    | No_chain -> ()
  done;
  (List.rev !chains, List.rev !anomalies)

let detect_anomalies ~n_workers ~interval ?(starve_after = 8.0) evs =
  let anomalies = ref [] in
  (* Timer coalescing: per-worker gap between consecutive timer-origin
     signal posts well beyond the configured interval. *)
  for w = 0 to n_workers - 1 do
    let last = ref Float.nan in
    Array.iter
      (fun e ->
        if e.e_ring = w && e.e_code = ev_sig_post && e.e_b = 0 then begin
          (if not (Float.is_nan !last) then
             let gap = e.e_ts -. !last in
             if gap > 1.75 *. interval then
               anomalies := Coalesced { an_worker = w; an_at = e.e_ts; an_gap = gap } :: !anomalies);
          last := e.e_ts
        end)
      evs
  done;
  (* Starvation: ready -> run gaps beyond [starve_after] intervals. *)
  let ready_at : (int, float) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun e ->
      if e.e_code = ev_ready || e.e_code = ev_spawn then
        Hashtbl.replace ready_at e.e_a e.e_ts
      else if e.e_code = ev_run || e.e_code = ev_resume then begin
        (match Hashtbl.find_opt ready_at e.e_a with
        | Some t0 ->
            let wait = e.e_ts -. t0 in
            if wait > starve_after *. interval then
              anomalies := Starved { an_uid = e.e_a; an_ready = t0; an_wait = wait } :: !anomalies
        | None -> ());
        Hashtbl.remove ready_at e.e_a
      end)
    evs;
  List.rev !anomalies
