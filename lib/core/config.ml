(** Runtime configuration knobs — each maps to a design choice analyzed
    in the paper (see DESIGN.md §4 for the experiment that sweeps it). *)

type timer_strategy =
  | No_timer  (** preemption disabled (pure nonpreemptive runtime) *)
  | Per_worker_creation
      (** one OS timer per worker, armed at creation: fires coincide and
          contend on the kernel signal lock (paper Fig. 4, naive) *)
  | Per_worker_aligned
      (** per-worker timers with phases spread across the interval
          ("timer alignment", paper §3.2.1) *)
  | Per_process_one_to_all
      (** one timer; the leader signals every worker with a preemptive
          thread (paper §3.2.2, unoptimized) *)
  | Per_process_chain
      (** one timer; workers forward the signal one-by-one ("chained
          signals", paper §3.2.2) *)

type suspend_mode =
  | Sigsuspend  (** portable sigsuspend/pthread_kill suspend–resume *)
  | Futex_suspend  (** futex-based suspend–resume (paper §3.3.1) *)

type t = {
  timer_strategy : timer_strategy;
  interval : float;  (** preemption timer interval (s) *)
  suspend_mode : suspend_mode;
  use_local_klt_pool : bool;  (** worker-local KLT pools (paper §3.3.2) *)
  local_pool_capacity : int;
  idle_poll : float;  (** scheduler spin granularity when out of work *)
  autostop : bool;  (** stop workers when no unfinished ULTs remain *)
  metrics_enabled : bool;
      (** record {!Metrics} counters and latency histograms; off by
          default — the disabled path is a single branch per hook *)
  recorder_enabled : bool;
      (** record flight-recorder events ({!Recorder}); off by default —
          same single-branch discipline as [metrics_enabled] *)
  recorder_capacity : int;
      (** events retained per flight-recorder ring (one ring per worker
          plus a global ring) *)
}

let default =
  {
    timer_strategy = No_timer;
    interval = 1e-3;
    suspend_mode = Futex_suspend;
    use_local_klt_pool = true;
    local_pool_capacity = 2;
    idle_poll = 10e-6;
    autostop = true;
    metrics_enabled = false;
    recorder_enabled = false;
    recorder_capacity = 4096;
  }

(* Every rejection names the offending field, the value it was given
   and the requirement, in one uniform shape:
     Config: <field> = <value> (must be <requirement>)
   [not (x > 0.0)] also catches NaN. *)
let reject field value requirement =
  invalid_arg (Printf.sprintf "Config: %s = %s (must be %s)" field value requirement)

let validate c =
  if not (c.interval > 0.0) then
    reject "interval" (Printf.sprintf "%g" c.interval) "positive";
  if c.local_pool_capacity < 0 then
    reject "local_pool_capacity" (string_of_int c.local_pool_capacity) "non-negative";
  if not (c.idle_poll > 0.0) then
    reject "idle_poll" (Printf.sprintf "%g" c.idle_poll) "positive";
  if c.recorder_capacity <= 0 then
    reject "recorder_capacity" (string_of_int c.recorder_capacity) "positive";
  c

let make ?(timer_strategy = default.timer_strategy) ?(interval = default.interval)
    ?(suspend_mode = default.suspend_mode)
    ?(use_local_klt_pool = default.use_local_klt_pool)
    ?(local_pool_capacity = default.local_pool_capacity)
    ?(idle_poll = default.idle_poll) ?(autostop = default.autostop)
    ?(metrics_enabled = default.metrics_enabled)
    ?(recorder_enabled = default.recorder_enabled)
    ?(recorder_capacity = default.recorder_capacity) () =
  validate
    {
      timer_strategy;
      interval;
      suspend_mode;
      use_local_klt_pool;
      local_pool_capacity;
      idle_poll;
      autostop;
      metrics_enabled;
      recorder_enabled;
      recorder_capacity;
    }

(* The paper's §3.4 guidance on choosing a thread type, as a function:
   nonpreemptive when no preemption is needed (cheapest); signal-yield
   when preemption is needed and the function is KLT-independent;
   KLT-switching when it is KLT-dependent or unknown (safe default for
   third-party code). *)
let recommend_kind ~needs_preemption ~klt_dependent =
  match (needs_preemption, klt_dependent) with
  | false, _ -> `Nonpreemptive
  | true, Some false -> `Signal_yield
  | true, (Some true | None) -> `Klt_switching

let timer_strategy_name = function
  | No_timer -> "none"
  | Per_worker_creation -> "per-worker (creation-time)"
  | Per_worker_aligned -> "per-worker (aligned)"
  | Per_process_one_to_all -> "per-process (one-to-all)"
  | Per_process_chain -> "per-process (chain)"
