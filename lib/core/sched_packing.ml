(** Thread-packing scheduler — paper Algorithm 1 (§4.2).

    There are [N_total] pools, one per (initial) worker; pool [i] is
    [rt.workers.(i).q_main].  With [N_active] workers active, each
    active worker owns the "private" pools [rank, rank+N_active, ...]
    below [N_private = N_active * floor(N_total/N_active)], while pools
    [N_private .. N_total-1] are shared by everyone.  Each scheduling
    round alternates: one thread from a private pool, then one from a
    shared pool, so shared threads are sliced round-robin across active
    workers at the preemption interval while private threads keep
    locality. *)

open Types

let pool rt i = rt.workers.(i).q_main

let n_private rt =
  let n_total = Array.length rt.workers in
  rt.n_active * (n_total / rt.n_active)

let pop_private rt (w : worker) =
  let np = n_private rt in
  let rec scan i =
    if i >= np then None
    else match Dq.pop_front (pool rt i) with Some u -> Some u | None -> scan (i + rt.n_active)
  in
  scan w.rank

let pop_shared rt (w : worker) =
  let n_total = Array.length rt.workers in
  let np = n_private rt in
  let rec scan i =
    if i >= n_total then None
    else
      match Dq.pop_front (pool rt i) with
      | Some u ->
          (* A grab from a shared pool that is not the worker's own
             counts as a (cooperative) steal for the metrics layer. *)
          if i <> w.rank then begin
            Metrics.incr_steals rt.metrics w.rank;
            if rt.recorder.Recorder.on then
              Recorder.emit rt.recorder w.rank
                (Oskern.Kernel.now rt.kernel)
                Recorder.ev_steal u.uid i
          end;
          Some u
      | None -> scan (i + 1)
  in
  scan np

(* Threads always return to their own pool, so a suspended worker's pool
   keeps feeding the active workers through the shared range. *)
let on_ready rt (u : ult) = Dq.push_back (pool rt (u.home mod Array.length rt.workers)) u

let on_preempted rt (_w : worker) (u : ult) = on_ready rt u

let on_yielded rt (_w : worker) (u : ult) = on_ready rt u

let make () =
  (* Per-worker phase toggles, private to this scheduler instance:
     Algorithm 1 alternates private/shared within one loop iteration;
     [next] is called once per thread, so we alternate across calls. *)
  let phase : (int, bool) Hashtbl.t = Hashtbl.create 64 in
  let shared_first w =
    match Hashtbl.find_opt phase w.rank with Some b -> b | None -> false
  in
  let next rt (w : worker) =
    let sf = shared_first w in
    Hashtbl.replace phase w.rank (not sf);
    let first, second = if sf then (pop_shared, pop_private) else (pop_private, pop_shared) in
    match first rt w with Some u -> Some u | None -> second rt w
  in
  { sched_name = "thread-packing"; next; on_ready; on_preempted; on_yielded }
