(** Flight recorder: always-on, fixed-memory event rings plus the
    post-mortem passes built on them.

    One ring per worker plus a global ring (for events emitted outside
    any worker context: spawns, ready wakeups, sync operations, and the
    kernel events forwarded through {!Desim.Engine.set_observer}).  Each
    ring keeps the last [capacity] events; older ones are overwritten.

    Write discipline matches {!Metrics}: call sites guard on {!field:on}
    so a disabled recorder costs one boolean load; an enabled {!emit} is
    a modulo index and four array stores.  Everything else in this
    module — decoding, lifecycle reconstruction, latency attribution,
    anomaly detection, the binary dump — runs post-mortem. *)

(** {1 Event codes}

    Raw events are [(ts, code, a, b)].  The per-code meaning of [a]/[b]
    is given below; [a] is a ULT uid for all runtime lifecycle codes. *)

val ev_spawn : int
(** ULT created ([a] = uid). Global ring. *)

val ev_ready : int
(** ULT enqueued runnable ([a] = uid). Global ring (wakers may be
    outside worker context). *)

val ev_run : int
(** ULT starts running on a worker ([a] = uid). Worker ring. *)

val ev_preempt : int
(** ULT preempted ([a] = uid, [b] = 0 signal-yield / 1 KLT-switch). *)

val ev_yield : int
(** Voluntary yield ([a] = uid). *)

val ev_block : int
(** ULT blocks in the scheduler ([a] = uid). *)

val ev_resume : int
(** Bound ULT resumed after a KLT switch ([a] = uid). *)

val ev_finish : int
(** ULT body returned ([a] = uid). Global ring. *)

val ev_steal : int
(** ULT migrated by work stealing ([a] = uid, [b] = victim pool). *)

val ev_sig_post : int
(** Preemption signal posted towards a worker ([a] = rank, [b] = 0
    timer-origin / 1 forwarded).  Timestamp is the value the runtime's
    latency instrumentation uses as t0. *)

val ev_preempt_req : int
(** Signal handler flagged a preemption ([a] = uid of the running ULT);
    t1 of the attribution chain. *)

val ev_preempt_done : int
(** The post-switch thread is running and the end-to-end latency sample
    was recorded ([a] = next uid, [b] = latency in ns); t3. *)

val ev_sync_block : int
(** ULT blocked on a usync primitive ([a] = uid). Global ring. *)

val ev_sync_wake : int
(** ULT woken by a usync primitive ([a] = uid). Global ring. *)

val ev_klt_remap : int
(** Worker continued on a fresh KLT after switching away from a bound
    thread ([a] = new klt id). *)

val ev_timer_fire : int
(** Kernel: interval timer expiry ([a] = target klt id, [-1] skipped,
    [b] = cumulative fires). Global ring. *)

val ev_sig_deliver : int
(** Kernel: signal handler about to run ([a] = klt id, [b] = signo). *)

val ev_futex_wait : int
(** Kernel: KLT sleeps on a futex ([a] = klt id). *)

val ev_futex_wake : int
(** Kernel: futex wake ([a] = woken, [b] = requested). *)

val ev_klt_dispatch : int
(** Kernel: KLT placed on a core ([a] = klt id, [b] = core). *)

val ev_klt_block : int
(** Kernel: KLT blocked, releasing its core ([a] = klt id). *)

val ev_pool_steal : int
(** Real fiber runtime: successful steal attributed to sub-pools
    ([a] = thief sub-pool id, [b] = victim sub-pool id; [a = b] is a
    same-sub-pool steal, [a <> b] cross-sub-pool overflow). *)

val ev_quantum_change : int
(** Real fiber runtime, adaptive ticker: a worker's preemption quantum
    moved ([a] = worker id, [b] = new quantum in nanoseconds).  Emitted
    into the {e global} ring — the ticker thread is its only writer
    there, keeping every worker ring single-writer. *)

(** {2 Per-request span codes}

    Emitted by the serving workload ([lib/serve]) through
    [Fiber.emit_flight]; [a] is always the request id and the ring an
    event lands in names the worker that emitted it.  Together the six
    codes decompose a request's sojourn into queueing (arrival ->
    dispatch), service (dispatch -> done minus yields) and
    preemption-overhead (each preempt -> resume gap). *)

val ev_req_arrival : int
(** Request's {e scheduled} arrival ([a] = request id, [b] = service
    class, 0 short / 1 long).  Emitted by the injector with the
    schedule's offset as the timestamp, so injector lateness shows up
    as arrival -> enqueue gap. *)

val ev_req_enqueue : int
(** Request submitted to the pool ([a] = request id). *)

val ev_req_dispatch : int
(** First instruction of the request body ([a] = request id). *)

val ev_req_preempt : int
(** Request observed its worker's preemption flag and is about to
    yield ([a] = request id). *)

val ev_req_resume : int
(** Request running again after a preemption yield ([a] = request
    id). *)

val ev_req_done : int
(** Request completed ([a] = request id, [b] = measured sojourn in
    nanoseconds — derived from the same clock read as the workload's
    latency sample, so span totals and the sojourn histogram agree). *)

val ev_steal_batch : int
(** Real fiber runtime: size of a successful batched raid ([a] = tasks
    claimed in the raid, counting the one the thief runs itself;
    [b] = victim sub-pool id).  Emitted alongside {!ev_pool_steal} —
    every raid carries both events — and folded by [repro observe]
    into the steal-split batch-size histogram. *)

val code_name : int -> string
(** Short stable name of an event code (["spawn"], ["preempt-req"], …). *)

(** {1 Rings} *)

type ring = {
  r_ts : float array;
  r_code : int array;
  r_a : int array;
  r_b : int array;
  mutable r_count : int;  (** total events ever emitted to this ring *)
}

type t = {
  mutable on : bool;
      (** write-enable flag; read directly by emit sites, like
          [Metrics.on] *)
  capacity : int;
  rings : ring array;  (** index = worker rank; last ring is global *)
}

val create : n_workers:int -> capacity:int -> t
(** [n_workers + 1] rings of [capacity] events each, disabled.
    @raise Invalid_argument if either argument is [<= 0]. *)

val enabled : t -> bool

val set_enabled : t -> bool -> unit

val capacity : t -> int

val n_rings : t -> int

val global_ring : t -> int
(** Index of the global (non-worker) ring, always [n_rings t - 1]. *)

val total_emitted : t -> int
(** Events emitted over the recorder's lifetime (not just retained). *)

val overwritten : t -> int -> int
(** [overwritten t ring] — events of [ring] lost to wraparound
    (emitted past [capacity], overwriting the oldest records).  Zero
    until the ring wraps. *)

val total_overwritten : t -> int
(** Sum of {!overwritten} over all rings. *)

val clear : t -> unit

val emit : t -> int -> float -> int -> int -> int -> unit
(** [emit t ring ts code a b].  No-op when disabled.  Hot paths should
    guard on [t.on] themselves and call this only when enabled. *)

(** {1 Decoding} *)

type event = {
  e_ts : float;
  e_ring : int;
  e_seq : int;  (** emission index within its ring (monotone) *)
  e_code : int;
  e_a : int;
  e_b : int;
}

val ring_events : t -> int -> event array
(** Retained events of one ring, oldest first. *)

val events : t -> event array
(** All retained events merged, ordered by [(ts, ring, seq)]. *)

val event_to_string : event -> string

(** {1 Binary dump}

    The crash-dump artifact: [lib/check] writes one next to a
    counterexample trail, and [repro observe --load] decodes it
    offline.  Format: ["FLTREC01"] magic, ring count, capacity, then
    per-ring headers and fixed 28-byte records (little-endian). *)

val encode : t -> string

val save : t -> path:string -> unit

type dump = {
  d_n_rings : int;
  d_capacity : int;
  d_events : event array;
  d_overwritten : int array;
      (** per ring: events lost to wraparound before the dump was
          taken, recovered from the ring headers' [total_count -
          stored] (no format change) — lets analyses label truncated
          attributions instead of presenting them as complete *)
}

val decode : string -> (dump, string) result

val load : path:string -> (dump, string) result

(** {1 Lifecycle reconstruction} *)

type phase = P_ready | P_running | P_bound | P_blocked | P_finished

val phase_name : phase -> string

type span = { s_phase : phase; s_from : float; s_to : float }
(** [s_to] is NaN for a span still open when recording stopped. *)

type lifecycle = {
  lc_uid : int;
  mutable lc_spawned : float;  (** NaN if the spawn fell off the ring *)
  mutable lc_finished : float;  (** NaN if unfinished (or lost) *)
  mutable lc_runs : int;
  mutable lc_preempts : int;
  mutable lc_yields : int;
  mutable lc_blocks : int;
  mutable lc_steals : int;
  mutable lc_run_time : float;
  mutable lc_spans : span list;  (** chronological *)
  mutable lc_open : (phase * float) option;  (** internal *)
}

val lifecycles : event array -> lifecycle list
(** Replays the merged event stream into one state machine per ULT.
    Sorted by uid. *)

(** {1 Preemption-latency attribution}

    Each worker holds at most one measured preemption at a time (the
    runtime's [measure_preempt] latch), so within one worker's ring the
    chain [sig-post (t0) -> preempt-req (t1) -> preempt (t2) ->
    preempt-done (t3)] pairs up exactly.  Stage durations sum to
    [t3 - t0] — the same sample, computed from the same timestamps, that
    the runtime feeds its signal-to-switch histogram. *)

type chain = {
  at_worker : int;
  at_uid : int;  (** the preempted thread *)
  at_next_uid : int;  (** the thread running after the switch *)
  at_mode : int;  (** 0 signal-yield, 1 KLT-switch, -1 no switch seen *)
  at_t0 : float;  (** when the preempting signal was posted *)
  at_fire_to_handler : float;  (** t1 - t0 *)
  at_handler_to_switch : float;  (** t2 - t1 *)
  at_switch_to_run : float;  (** t3 - t2 *)
}

val chain_total : chain -> float
(** Sum of the three stages = end-to-end latency [t3 - t0]. *)

type anomaly =
  | Never_landed of { an_worker : int; an_t0 : float; an_uid : int }
      (** a preemption was flagged but no switch ever completed *)
  | Coalesced of { an_worker : int; an_at : float; an_gap : float }
      (** gap between consecutive timer posts > 1.75 x interval *)
  | Starved of { an_uid : int; an_ready : float; an_wait : float }
      (** a ready thread waited more than [starve_after] intervals *)

val anomaly_to_string : anomaly -> string

val attribute : n_workers:int -> event array -> chain list * anomaly list
(** Walks each worker ring in order; returns completed chains
    (chronological) and the never-landed anomalies found on the way. *)

val detect_anomalies :
  n_workers:int -> interval:float -> ?starve_after:float -> event array -> anomaly list
(** Timer-coalescing and starvation scans.  [interval] is the configured
    preemption interval; [starve_after] (default 8.) is the ready-to-run
    wait threshold in multiples of [interval]. *)
