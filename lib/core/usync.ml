open Types

(* Every primitive here reports to the metrics layer (when enabled):
   a thread that blocks bumps [sync_blocks], a thread that is readied
   by a release/handoff/broadcast bumps [sync_wakeups].  Lost-wakeup
   bugs show up as blocks > wakeups + threads-still-blocked.  The same
   sites feed the flight recorder (sync-block / sync-wake events on the
   global ring), so a decoded flight record shows who was parked on a
   primitive and who released them. *)

let obs rt code (u : ult) =
  if rt.recorder.Recorder.on then
    Recorder.emit rt.recorder
      (Recorder.global_ring rt.recorder)
      (Oskern.Kernel.now rt.kernel) code u.uid 0

let join rt (u : ult) =
  if u.ustate <> U_finished then
    Ult.suspend (fun self ->
        Metrics.incr_sync_blocks rt.metrics;
        obs rt Recorder.ev_sync_block self;
        u.join_waiters <-
          (fun () ->
            Metrics.incr_sync_wakeups rt.metrics;
            obs rt Recorder.ev_sync_wake self;
            Runtime.ready rt self)
          :: u.join_waiters)

module Mutex = struct
  type t = { rt : Runtime.t; mutable held : bool; waiters : ult Queue.t }

  let create rt = { rt; held = false; waiters = Queue.create () }

  let lock m =
    if not m.held then m.held <- true
    else
      Ult.suspend (fun self ->
          Metrics.incr_sync_blocks m.rt.metrics;
          obs m.rt Recorder.ev_sync_block self;
          Queue.add self m.waiters)

  let try_lock m =
    if m.held then false
    else begin
      m.held <- true;
      true
    end

  let unlock m =
    if not m.held then invalid_arg "Usync.Mutex.unlock: not locked";
    match Queue.take_opt m.waiters with
    | Some next ->
        Metrics.incr_sync_wakeups m.rt.metrics;
        obs m.rt Recorder.ev_sync_wake next;
        Runtime.ready m.rt next (* ownership handed over *)
    | None -> m.held <- false

  let locked m = m.held
end

module Barrier = struct
  type t = {
    rt : Runtime.t;
    parties : int;
    mutable arrived : int;
    mutable blocked : ult list;
  }

  let create rt parties =
    if parties <= 0 then invalid_arg "Usync.Barrier.create: parties <= 0";
    { rt; parties; arrived = 0; blocked = [] }

  let wait b =
    b.arrived <- b.arrived + 1;
    if b.arrived = b.parties then begin
      let blocked = b.blocked in
      b.blocked <- [];
      b.arrived <- 0;
      List.iter
        (fun u ->
          Metrics.incr_sync_wakeups b.rt.metrics;
          obs b.rt Recorder.ev_sync_wake u;
          Runtime.ready b.rt u)
        (List.rev blocked)
    end
    else
      Ult.suspend (fun self ->
          Metrics.incr_sync_blocks b.rt.metrics;
          obs b.rt Recorder.ev_sync_block self;
          b.blocked <- self :: b.blocked)

  let waiting b = List.length b.blocked
end

module Ivar = struct
  type 'a t = { rt : Runtime.t; mutable value : 'a option; mutable readers : ult list }

  let create rt = { rt; value = None; readers = [] }

  let fill t v =
    match t.value with
    | Some _ -> invalid_arg "Usync.Ivar.fill: already filled"
    | None ->
        t.value <- Some v;
        let readers = t.readers in
        t.readers <- [];
        List.iter
          (fun u ->
            Metrics.incr_sync_wakeups t.rt.metrics;
            obs t.rt Recorder.ev_sync_wake u;
            Runtime.ready t.rt u)
          (List.rev readers)

  let rec read t =
    match t.value with
    | Some v -> v
    | None ->
        Ult.suspend (fun self ->
            Metrics.incr_sync_blocks t.rt.metrics;
            obs t.rt Recorder.ev_sync_block self;
            t.readers <- self :: t.readers);
        read t

  let peek t = t.value
end

module Channel = struct
  type 'a t = { rt : Runtime.t; items : 'a Queue.t; mutable readers : ult list }

  let create rt = { rt; items = Queue.create (); readers = [] }

  let send t v =
    Queue.add v t.items;
    match t.readers with
    | [] -> ()
    | u :: rest ->
        t.readers <- rest;
        Metrics.incr_sync_wakeups t.rt.metrics;
        obs t.rt Recorder.ev_sync_wake u;
        Runtime.ready t.rt u

  let rec recv t =
    match Queue.take_opt t.items with
    | Some v -> v
    | None ->
        Ult.suspend (fun self ->
            Metrics.incr_sync_blocks t.rt.metrics;
            obs t.rt Recorder.ev_sync_block self;
            t.readers <- t.readers @ [ self ])
        ;
        recv t

  let length t = Queue.length t.items
end
