(** Argobots-flavored facade over {!Runtime}.

    The paper's implementation extends Argobots, so this module offers
    the familiar vocabulary — execution streams, pools, ULTs — as thin
    aliases for porting Argobots-style code onto the simulated runtime:

    {[
      let rt = Abt.init kernel ~num_xstreams:56 () in
      let t = Abt.thread_create rt ~kind:Abt.Preemptive_klt_switching body in
      ... Abt.self_yield () ... (* inside a ULT *)
      Abt.thread_join rt t
    ]} *)

type runtime = Runtime.t

type thread = Ult.t

(** Thread kinds, named after the paper's three coexisting types. *)
type kind =
  | Cooperative  (** classic nonpreemptive M:N thread *)
  | Preemptive_signal_yield
  | Preemptive_klt_switching

(** [init kernel ~num_xstreams ()] builds and starts a runtime.
    [preemption] arms preemption timers at the given interval —
    per-worker aligned unless [timer_strategy] chooses otherwise.
    [suspend_mode]/[timer_strategy] default to {!Config.default}'s.
    The configuration goes through {!Config.make}, so invalid values
    raise [Invalid_argument]. *)
val init :
  ?scheduler:Types.scheduler ->
  ?preemption:float ->
  ?suspend_mode:Config.suspend_mode ->
  ?timer_strategy:Config.timer_strategy ->
  Oskern.Kernel.t ->
  num_xstreams:int ->
  unit ->
  runtime

(** Request shutdown (threads still running keep their workers until
    they finish; see {!Runtime.stop}). *)
val finalize : runtime -> unit

val num_xstreams : runtime -> int

(** [thread_create rt body] — a ULT on the runtime's pools. *)
val thread_create :
  runtime -> ?kind:kind -> ?priority:int -> ?name:string -> (unit -> unit) -> thread

(** Block the calling ULT until [t] finishes. *)
val thread_join : runtime -> thread -> unit

(** {1 Self operations (inside a ULT)} *)

val self_yield : unit -> unit

val self_suspend : (thread -> unit) -> unit

(** Resume a thread parked by {!self_suspend}. *)
val thread_resume : runtime -> thread -> unit

(** Burn CPU — the unit of preemptible work. *)
val work : float -> unit

(** {1 Synchronization (Argobots naming)} *)

module Mutex = Usync.Mutex
module Barrier = Usync.Barrier
module Eventual = Usync.Ivar
