(** Runtime configuration knobs — each maps to a design choice analyzed
    in the paper (see DESIGN.md §4 for the experiment that sweeps it).

    Build configurations with {!make} (validating smart constructor) or
    by record update on {!default}; both {!Runtime.create} and
    {!Abt.init} run {!validate} on whatever they are given. *)

type timer_strategy =
  | No_timer  (** preemption disabled (pure nonpreemptive runtime) *)
  | Per_worker_creation
      (** one OS timer per worker, armed at creation: fires coincide and
          contend on the kernel signal lock (paper Fig. 4, naive) *)
  | Per_worker_aligned
      (** per-worker timers with phases spread across the interval
          ("timer alignment", paper §3.2.1) *)
  | Per_process_one_to_all
      (** one timer; the leader signals every worker with a preemptive
          thread (paper §3.2.2, unoptimized) *)
  | Per_process_chain
      (** one timer; workers forward the signal one-by-one ("chained
          signals", paper §3.2.2) *)

type suspend_mode =
  | Sigsuspend  (** portable sigsuspend/pthread_kill suspend–resume *)
  | Futex_suspend  (** futex-based suspend–resume (paper §3.3.1) *)

type t = {
  timer_strategy : timer_strategy;
  interval : float;  (** preemption timer interval (s) *)
  suspend_mode : suspend_mode;
  use_local_klt_pool : bool;  (** worker-local KLT pools (paper §3.3.2) *)
  local_pool_capacity : int;
  idle_poll : float;  (** scheduler spin granularity when out of work *)
  autostop : bool;  (** stop workers when no unfinished ULTs remain *)
  metrics_enabled : bool;
      (** record {!Metrics} counters and latency histograms; off by
          default — the disabled path is a single branch per hook *)
  recorder_enabled : bool;
      (** record flight-recorder events ({!Recorder}); off by default —
          same single-branch discipline as [metrics_enabled] *)
  recorder_capacity : int;
      (** events retained per flight-recorder ring (one ring per worker
          plus a global ring) *)
}

val default : t

(** [validate c] returns [c] or raises [Invalid_argument] if a field is
    out of range: non-positive or NaN [interval], negative
    [local_pool_capacity], non-positive or NaN [idle_poll], non-positive
    [recorder_capacity]. *)
val validate : t -> t

(** [make ()] builds a validated configuration; every argument defaults
    to its {!default} value.  (The deprecated [enable_metrics] alias for
    [metrics_enabled] was removed; see docs/INTERNALS.md.)
    @raise Invalid_argument under the same conditions as {!validate}. *)
val make :
  ?timer_strategy:timer_strategy ->
  ?interval:float ->
  ?suspend_mode:suspend_mode ->
  ?use_local_klt_pool:bool ->
  ?local_pool_capacity:int ->
  ?idle_poll:float ->
  ?autostop:bool ->
  ?metrics_enabled:bool ->
  ?recorder_enabled:bool ->
  ?recorder_capacity:int ->
  unit ->
  t

(** Paper §3.4 guidance on choosing a thread type: nonpreemptive when no
    preemption is needed (cheapest); signal-yield when preemption is
    needed and the function is KLT-independent; KLT-switching when it is
    KLT-dependent or unknown (safe default for third-party code). *)
val recommend_kind :
  needs_preemption:bool ->
  klt_dependent:bool option ->
  [ `Nonpreemptive | `Signal_yield | `Klt_switching ]

val timer_strategy_name : timer_strategy -> string
