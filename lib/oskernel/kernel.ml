open Desim
open Types

type klt = Types.klt

type t = {
  eng : Engine.t;
  machine : Machine.t;
  c : Machine.costs;
  cores : core_state array;
  mutable all_klts : klt list;
  signal_lock : Sync.Mutex.t;
  handlers : (int, t -> klt -> unit) Hashtbl.t;
  mutable next_kid : int;
  tr : Trace.t;
  mutable balance_on : bool;
  mutable balance_running : bool;
  mutable delivered : int;
}

let engine t = t.eng

let machine t = t.machine

let costs t = t.c

let now t = Engine.now t.eng

let trace t = t.tr

let klt_id k = k.kid

let klt_name k = k.kname

let state_name k =
  match k.state with
  | Created -> "created"
  | Runnable -> "runnable"
  | Running -> "running"
  | Blocked r -> "blocked:" ^ r
  | Zombie -> "zombie"

let running_core k = k.core

let cpu_time k = k.cpu_time

let migrations k = k.migrations

let nice k = k.nice

let live_klts t = List.filter (fun k -> k.state <> Zombie) t.all_klts

let signals_delivered t = t.delivered

let set_load_balancing t b = t.balance_on <- b

let total_busy_time t = Array.fold_left (fun acc c -> acc +. c.busy_time) 0.0 t.cores

let core_busy_time t i = t.cores.(i).busy_time

let utilization t =
  let elapsed = now t in
  if elapsed <= 0.0 then 0.0
  else total_busy_time t /. (elapsed *. float_of_int (Array.length t.cores))

let total_migrations t = List.fold_left (fun acc k -> acc + k.migrations) 0 t.all_klts

let emit t tag detail = Trace.emit t.tr (now t) tag detail

(* Flight-recorder hook: kernel-level events are reported through the
   engine's observer as int-coded records, so the runtime's recorder
   (a layer the kernel cannot depend on) can fold them into its rings.
   With no observer installed each site costs one option check. *)

let obs_timer_fire = 1 (* a = target klt id (-1 skipped), b = fire count *)

let obs_sig_deliver = 2 (* a = klt id, b = signo *)

let obs_futex_wait = 3 (* a = klt id *)

let obs_futex_wake = 4 (* a = woken, b = requested *)

let obs_klt_dispatch = 5 (* a = klt id, b = core *)

let obs_klt_block = 6 (* a = klt id *)

let obs t code a b =
  match Engine.observer t.eng with
  | None -> ()
  | Some f -> f (Engine.now t.eng) code a b

(* ------------------------------------------------------------------ *)
(* Runqueue management.  Queues are small (tens of entries), so sorted
   lists keep the code obvious. *)

(* Queue ordering: SCHED_FIFO tasks come first (by descending RT
   priority, FIFO among equals), then CFS tasks by vruntime. *)
let queue_before a b =
  match (a.policy, b.policy) with
  | Sched_fifo pa, Sched_fifo pb -> pa > pb
  | Sched_fifo _, Sched_other -> true
  | Sched_other, Sched_fifo _ -> false
  | Sched_other, Sched_other -> a.vruntime < b.vruntime

let queue_insert core klt =
  let rec ins = function
    | [] -> [ klt ]
    | x :: rest as l -> if queue_before klt x then klt :: l else x :: ins rest
  in
  core.queued <- ins core.queued

let queue_remove core klt = core.queued <- List.filter (fun k -> k != klt) core.queued

let core_load core = List.length core.queued + match core.current with Some _ -> 1 | None -> 0

(* ------------------------------------------------------------------ *)
(* Accounting. *)

let charge t klt elapsed =
  if elapsed > 0.0 then begin
    klt.cpu_time <- klt.cpu_time +. elapsed;
    klt.cpu_since_move <- klt.cpu_since_move +. elapsed;
    klt.vruntime <- klt.vruntime +. (elapsed *. 1024.0 /. nice_weight klt.nice);
    match klt.core with
    | Some c -> t.cores.(c).busy_time <- t.cores.(c).busy_time +. elapsed
    | None -> ()
  end

(* Charge a Running KLT for time elapsed since its last accounting
   point.  Safe to call from event context (e.g. slice ticks), so
   [cpu_time] stays fresh even inside long compute chunks. *)
let account_running t klt =
  match klt.state with
  | Running ->
      let e = now t -. klt.exec_start in
      if e > 0.0 then begin
        charge t klt e;
        klt.exec_start <- now t
      end
  | Created | Runnable | Blocked _ | Zombie -> ()

(* Consume CPU from process context without any interruption point
   (kernel-mode section). *)
let charge_running t klt dt =
  if dt > 0.0 then begin
    klt.exec_start <- now t;
    Engine.delay dt;
    account_running t klt
  end

(* ------------------------------------------------------------------ *)
(* Dispatching. *)

let cancel_slice core =
  match core.slice_ev with
  | Some ev ->
      ignore (Engine.cancel ev);
      core.slice_ev <- None
  | None -> ()

let rec set_slice t core =
  cancel_slice core;
  let nr = 1 + List.length core.queued in
  let slice = Float.max t.c.min_granularity (t.c.sched_latency /. float_of_int nr) in
  core.slice_deadline <- now t +. slice;
  core.slice_ev <- Some (Engine.after t.eng slice (fun () -> slice_expired t core))

(* A task was enqueued behind a running one: make sure the current slice
   ends within a tick-like bound (real CFS re-checks every scheduler
   tick; an armed-when-alone slice must not starve the newcomer). *)
and tighten_slice t core =
  match core.current with
  | None -> ()
  | Some _ ->
      let want = now t +. t.c.min_granularity in
      if want < core.slice_deadline then begin
        cancel_slice core;
        core.slice_deadline <- want;
        core.slice_ev <-
          Some (Engine.after t.eng t.c.min_granularity (fun () -> slice_expired t core))
      end

and slice_expired t core =
  core.slice_ev <- None;
  match core.current with
  | None -> ()
  | Some klt -> (
      account_running t klt;
      let fifo_keeps_core =
        match klt.policy with
        | Sched_fifo p ->
            (* FIFO runs until it blocks or a higher-priority task
               arrives; it never round-robins with CFS tasks. *)
            not
              (List.exists
                 (fun k -> match k.policy with Sched_fifo p' -> p' > p | Sched_other -> false)
                 core.queued)
        | Sched_other -> false
      in
      if
        (core.queued = [] || fifo_keeps_core) && Cpuset.mem klt.affinity core.cid
      then set_slice t core
      else
        match klt.on_interrupt with
        | Some intr -> intr Slice_end
        | None ->
            (* Non-preemptible (kernel) section; retry shortly. *)
            set_slice t core)

and dispatch t core =
  match core.current with
  | Some _ -> ()
  | None -> (
      match core.queued with
      | [] ->
          cancel_slice core;
          newidle_balance t core
      | klt :: rest ->
          core.queued <- rest;
          core.current <- Some klt;
          klt.state <- Running;
          klt.core <- Some core.cid;
          core.min_vruntime <- Float.max core.min_vruntime klt.vruntime;
          if klt.last_core <> core.cid then begin
            klt.migrations <- klt.migrations + 1;
            (* Cache-refill cost scales with how hot the thread was on
               its previous core (fully hot after ~1 ms of CPU). *)
            let hotness = Float.min 1.0 (klt.cpu_since_move /. 1e-3) in
            klt.pending_overhead <-
              klt.pending_overhead
              +. (t.c.migration_cache_penalty *. hotness *. klt.kfootprint);
            klt.cpu_since_move <- 0.0;
            emit t "migrate" (Printf.sprintf "%s -> core%d" klt.kname core.cid)
          end;
          klt.last_core <- core.cid;
          if core.last_klt <> klt.kid then
            klt.pending_overhead <- klt.pending_overhead +. t.c.klt_ctx_switch;
          core.last_klt <- klt.kid;
          set_slice t core;
          emit t "dispatch" (Printf.sprintf "%s on core%d" klt.kname core.cid);
          obs t obs_klt_dispatch klt.kid core.cid;
          (match klt.on_dispatch with
          | Some resume ->
              klt.on_dispatch <- None;
              resume ()
          | None -> ( (* the process will observe Running synchronously *) )))

and newidle_balance t core =
  let tnow = now t in
  if tnow -. core.last_newidle >= t.c.newidle_min_interval then begin
    core.last_newidle <- tnow;
    (* Pull a queued (not running) KLT from the busiest eligible core. *)
    let best = ref None in
    Array.iter
      (fun other ->
        if other.cid <> core.cid then
          let eligible =
            List.filter (fun k -> Cpuset.mem k.affinity core.cid) other.queued
          in
          match eligible with
          | [] -> ()
          | k :: _ -> (
              let load = core_load other in
              match !best with
              | Some (bl, _, _) when bl >= load -> ()
              | _ -> best := Some (load, other, k)))
      t.cores;
    match !best with
    | Some (load, other, k) when load >= 2 ->
        queue_remove other k;
        queue_insert core k;
        emit t "newidle" (Printf.sprintf "core%d pulls %s from core%d" core.cid k.kname other.cid);
        dispatch t core
    | _ -> ()
  end

(* Wake-time core selection: prefer the previous core when it is idle or
   no more loaded than the best alternative (cache affinity, like CFS
   wake_affine), otherwise the least-loaded allowed core. *)
let select_core t klt =
  let allowed = List.filter (fun c -> Cpuset.mem klt.affinity c.cid) (Array.to_list t.cores) in
  match allowed with
  | [] -> invalid_arg (Printf.sprintf "Kernel: %s has empty affinity" klt.kname)
  | first :: _ -> (
      let last = if Cpuset.mem klt.affinity klt.last_core then Some t.cores.(klt.last_core) else None in
      match last with
      | Some c when core_load c = 0 -> c
      | _ -> (
          let idle = List.find_opt (fun c -> core_load c = 0) allowed in
          match idle with
          | Some c -> c
          | None ->
              let least =
                List.fold_left
                  (fun acc c -> if core_load c < core_load acc then c else acc)
                  first allowed
              in
              (match last with
              | Some c when core_load c <= core_load least -> c
              | _ -> least)))

(* Enqueue a newly-runnable KLT on [core], with CFS sleeper-fairness
   vruntime normalization. *)
let enqueue t core klt =
  klt.state <- Runnable;
  klt.core <- None;
  klt.vruntime <- Float.max klt.vruntime (core.min_vruntime -. t.c.sched_latency);
  queue_insert core klt

let wake_preempt_check t core woken =
  match core.current with
  | None -> ()
  | Some cur ->
      let should_preempt =
        match (woken.policy, cur.policy) with
        | Sched_fifo pw, Sched_fifo pc -> pw > pc
        | Sched_fifo _, Sched_other -> true
        | Sched_other, Sched_fifo _ -> false
        | Sched_other, Sched_other ->
            woken.vruntime +. t.c.wakeup_granularity < cur.vruntime
      in
      if should_preempt then
        match cur.on_interrupt with
        | Some intr -> intr Wake_preempt
        | None ->
            (* Non-preemptible kernel section: re-check via the slice
               path as soon as it ends instead of dropping the preempt. *)
            cancel_slice core;
            core.slice_ev <-
              Some (Engine.after t.eng 2e-6 (fun () -> slice_expired t core))

(* Transition to Runnable and suspend the current process until the
   scheduler dispatches this KLT.  Process context. *)
let wait_dispatch _t klt =
  if klt.state <> Running then
    Engine.block (fun resume -> klt.on_dispatch <- Some resume)

let become_runnable t klt =
  klt.wakeups <- klt.wakeups + 1;
  let core = select_core t klt in
  enqueue t core klt;
  if core.current = None then dispatch t core
  else begin
    wake_preempt_check t core klt;
    tighten_slice t core
  end

(* Release the core this KLT is running on (process context). *)
let release_core t klt ~reason =
  match klt.core with
  | None -> ()
  | Some cid ->
      let core = t.cores.(cid) in
      core.current <- None;
      core.last_klt <- klt.kid;
      cancel_slice core;
      klt.core <- None;
      klt.state <- (match reason with `Blocked r -> Blocked r | `Runnable -> Runnable);
      dispatch t core

(* Deschedule after a slice/wake preemption: back on this core's queue. *)
let preempt_self t klt =
  match klt.core with
  | None -> ()
  | Some cid ->
      let core = t.cores.(cid) in
      core.current <- None;
      core.last_klt <- klt.kid;
      emit t "preempt" klt.kname;
      if Cpuset.mem klt.affinity core.cid then begin
        enqueue t core klt;
        dispatch t core
      end
      else begin
        (* Repinned away while running: migrate at this scheduling point. *)
        let dest = select_core t klt in
        enqueue t dest klt;
        dispatch t core;
        if dest.current = None then dispatch t dest
      end

(* ------------------------------------------------------------------ *)
(* Signals. *)

let signal_blocked klt signo = List.mem signo klt.sigmask

let deliverable klt =
  let rec pick acc = function
    | [] -> None
    | s :: rest ->
        if signal_blocked klt s then pick (s :: acc) rest
        else Some (s, List.rev_append acc rest)
  in
  pick [] klt.pending_signals

let sigaction t signo handler = Hashtbl.replace t.handlers signo handler

let sigblock _t klt signo = klt.sigmask <- signo :: klt.sigmask

let sigunblock _t klt signo =
  let rec remove_one = function
    | [] -> []
    | s :: rest -> if s = signo then rest else s :: remove_one rest
  in
  klt.sigmask <- remove_one klt.sigmask

(* Run handlers for every deliverable pending signal.  Process context,
   Running.  Models the serialized in-kernel delivery path: the global
   signal lock is held for [signal_lock_hold]; waiting for it consumes
   CPU (the KLT spins in kernel mode), which is the Fig. 4 contention
   mechanism. *)
let rec process_signals t klt =
  match deliverable klt with
  | None -> ()
  | Some (signo, rest) ->
      klt.pending_signals <- rest;
      (* Waiting for the lock spins in kernel mode: it burns core time. *)
      klt.exec_start <- now t;
      Sync.Mutex.lock t.signal_lock;
      account_running t klt;
      Engine.delay t.c.signal_lock_hold;
      account_running t klt;
      Sync.Mutex.unlock t.signal_lock;
      charge_running t klt t.c.signal_handler_entry;
      t.delivered <- t.delivered + 1;
      emit t "signal" (Printf.sprintf "%s <- sig%d" klt.kname signo);
      obs t obs_sig_deliver klt.kid signo;
      sigblock t klt signo;
      (match Hashtbl.find_opt t.handlers signo with
      | Some h -> h t klt
      | None -> ());
      sigunblock t klt signo;
      process_signals t klt

let kill _t klt signo =
  if klt.state <> Zombie then begin
    klt.pending_signals <- klt.pending_signals @ [ signo ];
    if not (signal_blocked klt signo) then
      match klt.state with
      | Running -> (
          match klt.on_interrupt with Some intr -> intr Signal_pending | None -> ())
      | Blocked _ -> (
          match klt.on_blocked_signal with Some f -> f () | None -> ())
      | Runnable | Created | Zombie -> ()
  end

(* ------------------------------------------------------------------ *)
(* The interruptible compute loop — the heart of the kernel model. *)

type chunk_result = Chunk_done | Chunk_interrupted of interrupt_reason

let run_chunk t klt dt =
  let chunk_start = now t in
  klt.exec_start <- chunk_start;
  let result =
    Engine.block (fun resume ->
        let ev = Engine.after t.eng dt (fun () -> resume Chunk_done) in
        klt.on_interrupt <-
          Some
            (fun reason ->
              if Engine.cancel ev then resume (Chunk_interrupted reason)))
  in
  klt.on_interrupt <- None;
  (* [account_running] may have charged part of this chunk already (at
     slice ticks); charge the rest and report total chunk progress. *)
  account_running t klt;
  let elapsed = now t -. chunk_start in
  (elapsed, result)

let eps = 1e-12

let compute_stoppable t klt amount ~should_stop =
  if amount < 0.0 then invalid_arg "Kernel.compute: negative amount";
  let remaining = ref amount in
  let finished = ref false in
  let result = ref 0.0 in
  while not !finished do
    wait_dispatch t klt;
    (* Deferred dispatch/migration/timer costs are consumed here, before
       any signal handler runs — so e.g. a timer expiry's kernel work
       sits inside the measured preemption-latency window, as on real
       systems. *)
    let overhead = klt.pending_overhead in
    klt.pending_overhead <- 0.0;
    charge_running t klt overhead;
    process_signals t klt;
    if should_stop () then begin
      finished := true;
      result := Float.max 0.0 !remaining
    end
    else if !remaining <= eps then begin
      finished := true;
      result := 0.0
    end
    else begin
      let elapsed, r = run_chunk t klt !remaining in
      remaining := !remaining -. elapsed;
      match r with
      | Chunk_done -> ()
      | Chunk_interrupted Signal_pending -> ()
      | Chunk_interrupted (Slice_end | Wake_preempt) -> preempt_self t klt
    end
  done;
  !result

let compute t klt amount =
  let leftover = compute_stoppable t klt amount ~should_stop:(fun () -> false) in
  assert (leftover = 0.0)

let busy_wait t klt ?(poll = 20e-6) cond =
  while not (cond ()) do
    compute t klt poll
  done

let consume = charge_running

let add_overhead _t klt d =
  if d < 0.0 then invalid_arg "Kernel.add_overhead: negative";
  klt.pending_overhead <- klt.pending_overhead +. d

let has_pending_signal klt = deliverable klt <> None

(* ------------------------------------------------------------------ *)
(* Blocking. *)

(* Suspend the calling KLT, releasing its core.  [setup deliver] runs
   synchronously and must arrange for [deliver] to be called exactly
   once later.  If [interruptible], an unmasked signal also wakes the
   KLT (returning [`Eintr]); its handler runs before we return. *)
let suspend (type a) t klt ~reason ~interruptible (setup : (a -> unit) -> unit) :
    [ `Value of a | `Eintr ] =
  if interruptible && deliverable klt <> None then begin
    (* A deliverable signal is already pending: like sigsuspend, run its
       handler and return immediately instead of sleeping forever. *)
    process_signals t klt;
    `Eintr
  end
  else begin
    obs t obs_klt_block klt.kid 0;
    release_core t klt ~reason:(`Blocked reason);
  let r =
    Engine.block (fun resume ->
        let fired = ref false in
        let once v =
          if not !fired then begin
            fired := true;
            klt.on_blocked_signal <- None;
            resume v
          end
        in
        if interruptible then klt.on_blocked_signal <- Some (fun () -> once `Eintr);
        setup (fun v -> once (`Value v)))
  in
    become_runnable t klt;
    wait_dispatch t klt;
    process_signals t klt;
    r
  end

let sleep t klt dt =
  if dt < 0.0 then invalid_arg "Kernel.sleep: negative";
  if dt > 0.0 then
    match
      suspend t klt ~reason:"sleep" ~interruptible:false (fun deliver ->
          Engine.post_after t.eng dt (fun () -> deliver ()))
    with
    | `Value () -> ()
    | `Eintr -> assert false

(* Blocking-syscall model (paper §3.5.1): interruptible wait; SA_RESTART
   resumes with the remaining time after the handler, paying a kernel
   re-entry cost per restart. *)
let blocking_syscall t klt ~duration ~sa_restart =
  if duration < 0.0 then invalid_arg "Kernel.blocking_syscall: negative";
  let restarts = ref 0 in
  let rec attempt remaining =
    if remaining <= 0.0 then `Done !restarts
    else begin
      let started = now t in
      let r =
        suspend t klt ~reason:"syscall" ~interruptible:true (fun deliver ->
            Engine.post_after t.eng remaining (fun () -> deliver ()))
      in
      match r with
      | `Value () -> `Done !restarts
      | `Eintr ->
          (* The signal handler has already run (inside [suspend]'s wake
             path).  Pay the syscall re-entry cost and decide. *)
          incr restarts;
          let left = Float.max 0.0 (remaining -. (now t -. started)) in
          charge_running t klt (t.c.signal_handler_entry /. 2.0);
          if sa_restart then attempt left else `Eintr (left, !restarts)
    end
  in
  attempt duration

let pause t klt =
  match suspend t klt ~reason:"pause" ~interruptible:true (fun (_ : unit -> unit) -> ()) with
  | `Eintr -> ()
  | `Value () -> assert false (* nothing ever delivers a value to pause *)

let yield t klt =
  match klt.core with
  | None -> ()
  | Some cid ->
      let core = t.cores.(cid) in
      if core.queued <> [] then begin
        (* CFS yield: behind everything currently queued here. *)
        let maxv =
          List.fold_left (fun acc k -> Float.max acc k.vruntime) klt.vruntime core.queued
        in
        klt.vruntime <- maxv +. 1e-9;
        preempt_self t klt;
        wait_dispatch t klt;
        process_signals t klt
      end

let join t ~joiner target =
  if target.state <> Zombie then
    match
      suspend t joiner ~reason:"join" ~interruptible:false (fun deliver ->
          target.exit_waiters <- (fun () -> deliver ()) :: target.exit_waiters)
    with
    | `Value () -> ()
    | `Eintr -> assert false

let pthread_kill t ~sender target signo =
  charge_running t sender t.c.pthread_kill;
  kill t target signo

(* The balance timer is armed lazily (first spawn) and disarms itself
   once every KLT has exited, so [Engine.run] can terminate. *)
let rec balance_tick t =
  if live_klts t = [] then t.balance_running <- false
  else
    Engine.post_after t.eng t.c.balance_interval (fun () ->
         if t.balance_on then begin
           let busiest = ref t.cores.(0) and idlest = ref t.cores.(0) in
           Array.iter
             (fun c ->
               if core_load c > core_load !busiest then busiest := c;
               if core_load c < core_load !idlest then idlest := c)
             t.cores;
           (* Move queued tasks from the busiest to the idlest core until
              the imbalance halves (Linux moves up to the imbalance). *)
           let moves =
             ref ((core_load !busiest - core_load !idlest) / 2)
           in
           while
             !moves > 0
             && core_load !busiest >= core_load !idlest + 2
             &&
             match
               List.find_opt
                 (fun k -> Cpuset.mem k.affinity !idlest.cid)
                 (List.rev !busiest.queued)
             with
             | Some k ->
                 queue_remove !busiest k;
                 queue_insert !idlest k;
                 emit t "balance"
                   (Printf.sprintf "%s core%d -> core%d" k.kname !busiest.cid !idlest.cid);
                 if !idlest.current = None then dispatch t !idlest;
                 true
             | None -> false
           do
             decr moves
           done
         end;
         balance_tick t)

(* ------------------------------------------------------------------ *)
(* KLT lifecycle. *)

let exit_klt t klt =
  release_core t klt ~reason:(`Blocked "exiting");
  klt.state <- Zombie;
  let waiters = klt.exit_waiters in
  klt.exit_waiters <- [];
  List.iter (fun f -> f ()) waiters;
  emit t "exit" klt.kname

let spawn t ?(nice = 0) ?affinity ?creator ~name body =
  let affinity =
    match affinity with Some a -> a | None -> Cpuset.all (Array.length t.cores)
  in
  if Cpuset.width affinity <> Array.length t.cores then
    invalid_arg "Kernel.spawn: affinity width mismatch";
  let klt =
    {
      kid = t.next_kid;
      kname = name;
      state = Created;
      nice;
      policy = Sched_other;
      vruntime = 0.0;
      affinity;
      core = None;
      last_core =
        (* Spread initial placement round-robin over the allowed cores:
           a newborn thread has no cache affinity, and biasing them all
           to the first core starves whatever runs there. *)
        (match Cpuset.to_list affinity with
        | [] -> 0
        | allowed -> List.nth allowed (t.next_kid mod List.length allowed));
      pending_signals = [];
      sigmask = [];
      cpu_since_move = 0.0;
      kfootprint = 1.0;
      on_dispatch = None;
      on_interrupt = None;
      on_blocked_signal = None;
      exit_waiters = [];
      cpu_time = 0.0;
      exec_start = 0.0;
      migrations = 0;
      pending_overhead = 0.0;
      wakeups = 0;
    }
  in
  t.next_kid <- t.next_kid + 1;
  t.all_klts <- klt :: t.all_klts;
  if not t.balance_running then begin
    t.balance_running <- true;
    balance_tick t
  end;
  (match creator with Some c -> charge_running t c t.c.klt_create | None -> ());
  Engine.spawn t.eng name (fun () ->
      become_runnable t klt;
      wait_dispatch t klt;
      process_signals t klt;
      body klt;
      exit_klt t klt);
  klt

let set_nice _t klt n = klt.nice <- n

let set_footprint _t klt f =
  if f < 0.0 || f > 1.0 then invalid_arg "Kernel.set_footprint: out of [0,1]";
  klt.kfootprint <- f

let set_policy _t klt p =
  klt.policy <- (match p with `Fifo prio -> Sched_fifo prio | `Other -> Sched_other)

let policy_name klt =
  match klt.policy with
  | Sched_other -> "SCHED_OTHER"
  | Sched_fifo p -> Printf.sprintf "SCHED_FIFO:%d" p

let set_affinity t klt mask =
  if Cpuset.width mask <> Array.length t.cores then
    invalid_arg "Kernel.set_affinity: width mismatch";
  klt.affinity <- mask;
  match klt.state with
  | Runnable ->
      (* If queued on a forbidden core, migrate now. *)
      let holding =
        Array.to_list t.cores |> List.find_opt (fun c -> List.memq klt c.queued)
      in
      (match holding with
      | Some core when not (Cpuset.mem mask core.cid) ->
          queue_remove core klt;
          let dest = select_core t klt in
          queue_insert dest klt;
          if dest.current = None then dispatch t dest
      | _ -> ())
  | Running | Created | Blocked _ | Zombie -> ()

(* ------------------------------------------------------------------ *)
(* Futex. *)

module Futex = struct
  type waiter = { mutable alive : bool; deliver : unit -> unit }

  type nonrec t = { k : t; mutable value : int; mutable fwaiters : waiter list }

  let create k v = { k; value = v; fwaiters = [] }

  let value f = f.value

  let set f v = f.value <- v

  let waiters f = List.length (List.filter (fun w -> w.alive) f.fwaiters)

  let wait k klt f ~expected =
    if f.value <> expected then `Again
    else begin
      match Engine.controller k.eng with
      | Some c when Choice.fault c ~tag:"futex.spurious" ->
          (* Injected spurious wakeup: return without ever sleeping, the
             word unchanged.  Every in-tree waiter re-checks its
             predicate in a loop, exactly because real futexes allow
             this. *)
          `Ok
      | _ -> (
          obs k obs_futex_wait klt.kid 0;
          match
            suspend k klt ~reason:"futex" ~interruptible:false (fun deliver ->
                f.fwaiters <- f.fwaiters @ [ { alive = true; deliver = (fun () -> deliver ()) } ])
          with
          | `Value () -> `Ok
          | `Eintr -> assert false)
    end

  let wake k ?waker f n =
    (match waker with Some w -> charge_running k w k.c.futex_wake | None -> ());
    let woken = ref 0 in
    let rec pop () =
      if !woken < n then
        match f.fwaiters with
        | [] -> ()
        | w :: rest ->
            f.fwaiters <- rest;
            if w.alive then begin
              w.alive <- false;
              incr woken;
              Engine.post_after k.eng k.c.futex_wake_latency (fun () -> w.deliver ())
            end;
            pop ()
    in
    pop ();
    if !woken > 0 then obs k obs_futex_wake !woken n;
    !woken
end

(* ------------------------------------------------------------------ *)
(* Timers. *)

module Timer = struct
  type nonrec t = {
    k : t;
    interval : float;
    signo : int;
    target : unit -> klt option;
    mutable on : bool;
    mutable ev : Engine.event option;
    mutable count : int;
  }

  let fire tm =
    tm.count <- tm.count + 1;
    match tm.target () with
    | Some klt ->
        obs tm.k obs_timer_fire klt.kid tm.count;
        klt.pending_overhead <- klt.pending_overhead +. tm.k.c.timer_fire;
        kill tm.k klt tm.signo
    | None -> obs tm.k obs_timer_fire (-1) tm.count

  let create k ?first ~interval ~signo ~target () =
    if interval <= 0.0 then invalid_arg "Kernel.Timer.create: interval <= 0";
    let tm = { k; interval; signo; target; on = true; ev = None; count = 0 } in
    let first = match first with Some f -> f | None -> interval in
    (* One tick closure for the timer's whole life; the fire-then-rearm
       order fixes where the re-arm's sequence number is drawn, so it
       must not change.  A schedule controller may shift a fire by a
       bounded offset (exploring preemption-timer phases) or coalesce it
       into the next expiry (delayed/merged signal fault injection); the
       uncontrolled path is byte-for-byte the historical one. *)
    let rec fire_rearm () =
      if tm.on then begin
        fire tm;
        tm.ev <- Some (Engine.after k.eng tm.interval tick)
      end
    and tick () =
      if tm.on then
        match Engine.controller k.eng with
        | None -> fire_rearm ()
        | Some c ->
            if Choice.fault c ~tag:"timer.coalesce" then
              tm.ev <- Some (Engine.after k.eng tm.interval tick)
            else
              let d = Choice.delay c ~tag:"timer.fire" ~max:(tm.interval *. 0.5) in
              if d > 0.0 then tm.ev <- Some (Engine.after k.eng d fire_rearm)
              else fire_rearm ()
    in
    tm.ev <- Some (Engine.after k.eng first tick);
    tm

  let cancel tm =
    tm.on <- false;
    match tm.ev with
    | Some ev ->
        ignore (Engine.cancel ev);
        tm.ev <- None
    | None -> ()

  let active tm = tm.on

  let fires tm = tm.count
end

(* ------------------------------------------------------------------ *)
(* Periodic load balancing. *)

let create ?trace eng machine =
  let tr = match trace with Some tr -> tr | None -> Trace.create () in
  let cores =
    Array.init machine.Machine.cores (fun cid ->
        {
          cid;
          current = None;
          queued = [];
          slice_ev = None;
          slice_deadline = infinity;
          min_vruntime = 0.0;
          last_newidle = -1.0;
          last_klt = -1;
          busy_time = 0.0;
        })
  in
  let t =
    {
      eng;
      machine;
      c = machine.Machine.costs;
      cores;
      all_klts = [];
      signal_lock = Sync.Mutex.create ();
      handlers = Hashtbl.create 16;
      next_kid = 0;
      tr;
      balance_on = true;
      balance_running = false;
      delivered = 0;
    }
  in
  t
