(** Simulated OS kernel: cores, kernel-level threads (KLTs), a CFS-like
    scheduler, POSIX-style signals with a contended in-kernel delivery
    lock, futexes and interval timers.

    KLT bodies run as {!Desim.Engine} processes; every function below
    marked "process context" must be called from the body of the KLT it
    operates on.  A KLT only makes progress while the scheduler has
    placed it on a core, so [compute] may take longer in virtual time
    than the amount of CPU it consumes. *)

type t

type klt

(** {1 Construction} *)

val create : ?trace:Desim.Trace.t -> Desim.Engine.t -> Machine.t -> t

val engine : t -> Desim.Engine.t

val machine : t -> Machine.t

val costs : t -> Machine.costs

val now : t -> float

val trace : t -> Desim.Trace.t

(** {1 KLTs} *)

(** [spawn t ~name body] creates a KLT; [body] runs once the scheduler
    first dispatches it.  [creator], when given, is charged the
    [klt_create] cost (it must be in process context).  Default
    affinity: all cores; default nice: 0. *)
val spawn :
  t ->
  ?nice:int ->
  ?affinity:Cpuset.t ->
  ?creator:klt ->
  name:string ->
  (klt -> unit) ->
  klt

val klt_id : klt -> int

val klt_name : klt -> string

val state_name : klt -> string
(** ["created" | "runnable" | "running" | "blocked:<reason>" | "zombie"] *)

val running_core : klt -> int option

val cpu_time : klt -> float

val migrations : klt -> int

val nice : klt -> int

val set_nice : t -> klt -> int -> unit

(** [set_footprint t klt f] — relative cache working set in [0,1]
    scaling this KLT's migration penalty.  Default 1.  An M:N runtime
    sets its carrier KLTs near 0 because thread data movement is charged
    at the user level. *)
val set_footprint : t -> klt -> float -> unit

(** [set_policy t klt (`Fifo prio)] switches the KLT to POSIX SCHED_FIFO
    (real-time, runs until it blocks; higher [prio] preempts lower and
    any CFS task); [`Other] returns it to fair scheduling.  The paper's
    §4.3 notes such policies would give strict in-situ prioritization
    but need root on real systems — the simulator has no such limits, so
    the ablation is available (see bench). *)
val set_policy : t -> klt -> [ `Fifo of int | `Other ] -> unit

val policy_name : klt -> string

val set_affinity : t -> klt -> Cpuset.t -> unit
(** Re-pins a KLT.  If it is queued on a now-forbidden core it is
    migrated immediately; if it is running there it migrates at the next
    scheduling point. *)

val live_klts : t -> klt list

(** {1 Process-context operations} *)

(** [compute t klt d] consumes [d] seconds of CPU.  Pending signals are
    handled at interruption points inside. *)
val compute : t -> klt -> float -> unit

(** [compute_stoppable t klt d ~should_stop] is [compute] that re-checks
    [should_stop] after every signal delivery and scheduler preemption;
    if it returns [true] the call returns the unconsumed remainder.
    Returns [0.] when [d] was consumed in full. *)
val compute_stoppable : t -> klt -> float -> should_stop:(unit -> bool) -> float

(** [busy_wait t klt ~poll cond] spins, consuming CPU in [poll]-sized
    chunks, until [cond ()] holds.  Models flag-polling synchronization
    (e.g. Intel MKL barriers). *)
val busy_wait : t -> klt -> ?poll:float -> (unit -> bool) -> unit

(** [consume t klt d] burns [d] seconds of CPU with no interruption
    point (models short non-preemptible runtime sections, e.g. a
    user-level context switch). Process context. *)
val consume : t -> klt -> float -> unit

(** [add_overhead t klt d] defers [d] seconds of extra CPU cost to
    [klt]'s next compute (e.g. an affinity reset paid when a pooled KLT
    is re-attached). Callable from any context. *)
val add_overhead : t -> klt -> float -> unit

(** True if [klt] has a pending deliverable (unmasked) signal. *)
val has_pending_signal : klt -> bool

(** Blocks without consuming CPU (nanosleep-like; uninterruptible). *)
val sleep : t -> klt -> float -> unit

(** [blocking_syscall t klt ~duration ~sa_restart] models a blocking
    system call (e.g. I/O) of wall duration [duration] that signals can
    interrupt (paper §3.5.1).  Each interruption runs the handler, pays
    a kernel re-entry cost, and — with [sa_restart] — resumes the call
    for its remaining time; without it the call fails and the caller is
    told how much was left.  Returns [`Done] or [`Eintr of remaining].
    [restarts] counts interruptions either way. *)
val blocking_syscall :
  t ->
  klt ->
  duration:float ->
  sa_restart:bool ->
  [ `Done of int | `Eintr of float * int ]

(** [sched_yield]-like: go to the back of this core's runqueue. *)
val yield : t -> klt -> unit

(** [join t ~joiner target] blocks [joiner] until [target] exits. *)
val join : t -> joiner:klt -> klt -> unit

(** {1 Signals} *)

(** [sigaction t signo handler] installs the process-wide handler.  The
    handler runs in the context of the interrupted KLT, with [signo]
    blocked for its duration. *)
val sigaction : t -> int -> (t -> klt -> unit) -> unit

(** Deliver a signal from outside any KLT (timers, test harnesses). *)
val kill : t -> klt -> int -> unit

(** [pthread_kill t ~sender target signo] charges [sender] the syscall
    cost, then delivers. *)
val pthread_kill : t -> sender:klt -> klt -> int -> unit

val sigblock : t -> klt -> int -> unit

val sigunblock : t -> klt -> int -> unit

val signal_blocked : klt -> int -> bool

(** [pause t klt] blocks until a signal is delivered and its handler has
    run (sigsuspend-like). *)
val pause : t -> klt -> unit

(** Number of signals delivered (handlers executed) so far. *)
val signals_delivered : t -> int

(** {1 Futexes} *)

module Futex : sig
  type kernel := t

  type t

  val create : kernel -> int -> t

  val value : t -> int

  val set : t -> int -> unit

  (** [wait k klt fut ~expected] returns [`Again] immediately if the
      value differs, otherwise blocks until woken. *)
  val wait : kernel -> klt -> t -> expected:int -> [ `Ok | `Again ]

  (** [wake k ~waker fut n] wakes up to [n] waiters, charging [waker]
      (if given) the syscall cost per call.  Returns the number woken. *)
  val wake : kernel -> ?waker:klt -> t -> int -> int

  val waiters : t -> int
end

(** {1 Interval timers} *)

module Timer : sig
  type kernel := t

  type t

  (** [create k ~first ~interval ~signo ~target ()] arms a periodic
      timer.  [target] is evaluated at each expiry, so signals can
      follow a moving target (e.g. "the current KLT of worker 3");
      [None] skips that expiry.  [first] defaults to [interval]. *)
  val create :
    kernel ->
    ?first:float ->
    interval:float ->
    signo:int ->
    target:(unit -> klt option) ->
    unit ->
    t

  val cancel : t -> unit

  val active : t -> bool

  val fires : t -> int
end

(** {1 Observer event codes}

    The kernel reports low-level events — timer expiries, signal
    deliveries, futex sleeps/wakes, KLT dispatches and blocks — through
    the engine's observer hook ({!Desim.Engine.set_observer}) as
    [(ts, code, a, b)] records, using the codes below.  The runtime's
    flight recorder installs the observer and folds these into its event
    rings; with no observer installed each site costs one option
    check. *)

(** Timer expiry evaluated: [a] = target klt id ([-1] when the expiry
    was skipped), [b] = cumulative fire count of that timer. *)
val obs_timer_fire : int

(** Signal handler about to run: [a] = klt id, [b] = signo. *)
val obs_sig_deliver : int

(** KLT goes to sleep on a futex: [a] = klt id. *)
val obs_futex_wait : int

(** Futex wake delivered: [a] = waiters woken, [b] = requested. *)
val obs_futex_wake : int

(** Scheduler placed a KLT on a core: [a] = klt id, [b] = core. *)
val obs_klt_dispatch : int

(** KLT blocks (releases its core): [a] = klt id. *)
val obs_klt_block : int

(** {1 Metrics} *)

(** Sum of per-core busy time. *)
val total_busy_time : t -> float

(** [busy/(cores*now)]; 0 at time 0. *)
val utilization : t -> float

val core_busy_time : t -> int -> float

val total_migrations : t -> int

(** Enable/disable the periodic CFS load balancer (on by default). *)
val set_load_balancing : t -> bool -> unit
