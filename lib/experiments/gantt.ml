type segment = { from_t : float; name : string }

type t = { cores : int; lanes : segment list array (* newest first *) }

(* Trace details: dispatch = "<name> on core<k>"; exit = "<name>";
   preempt = "<name>".  Occupancy changes on dispatch; an exit or
   preempt of the current occupant frees the core until the next
   dispatch. *)
let parse_dispatch detail =
  match String.rindex_opt detail ' ' with
  | None -> None
  | Some i ->
      let target = String.sub detail (i + 1) (String.length detail - i - 1) in
      if String.length target > 4 && String.sub target 0 4 = "core" then
        let name = String.sub detail 0 (String.index detail ' ') in
        match int_of_string_opt (String.sub target 4 (String.length target - 4)) with
        | Some core -> Some (name, core)
        | None -> None
      else None

let of_trace ~cores trace =
  let lanes = Array.make cores [] in
  let current = Array.make cores None in
  List.iter
    (fun (r : Desim.Trace.record) ->
      match r.tag with
      | "dispatch" -> (
          match parse_dispatch r.detail with
          | Some (name, core) when core < cores ->
              lanes.(core) <- { from_t = r.time; name } :: lanes.(core);
              current.(core) <- Some name
          | _ -> ())
      | "exit" | "preempt" ->
          Array.iteri
            (fun c occ ->
              if occ = Some r.detail then begin
                lanes.(c) <- { from_t = r.time; name = "" } :: lanes.(c);
                current.(c) <- None
              end)
            current
      | _ -> ())
    (Desim.Trace.records trace);
  { cores; lanes }

let spans t ~t_end =
  let out = ref [] in
  for c = 0 to t.cores - 1 do
    let close name t0 t1 = if name <> "" && t1 >= t0 then out := (c, name, t0, t1) :: !out in
    let rec go cur = function
      | [] -> ( match cur with Some (n, t0) -> close n t0 (Float.max t_end t0) | None -> ())
      | seg :: rest ->
          (match cur with Some (n, t0) -> close n t0 seg.from_t | None -> ());
          go (if seg.name = "" then None else Some (seg.name, seg.from_t)) rest
    in
    go None (List.rev t.lanes.(c))
  done;
  List.rev !out

let occupant t ~core ~time =
  if core < 0 || core >= t.cores then None
  else
    let rec find = function
      | [] -> None
      | seg :: rest -> if seg.from_t <= time then Some seg.name else find rest
    in
    match find t.lanes.(core) with Some "" | None -> None | Some n -> Some n

let render ?(width = 72) ~t0 ~t1 t =
  if t1 <= t0 then invalid_arg "Gantt.render: empty window";
  let names = Hashtbl.create 16 in
  let glyph_of name =
    match Hashtbl.find_opt names name with
    | Some g -> g
    | None ->
        let glyphs = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789" in
        let g = glyphs.[Hashtbl.length names mod String.length glyphs] in
        Hashtbl.add names name g;
        g
  in
  let buf = Buffer.create (t.cores * (width + 12)) in
  Buffer.add_string buf (Printf.sprintf "t = %.6f .. %.6f s\n" t0 t1);
  for c = 0 to t.cores - 1 do
    Buffer.add_string buf (Printf.sprintf "core%-3d|" c);
    for b = 0 to width - 1 do
      let time = t0 +. ((t1 -. t0) *. (float_of_int b +. 0.5) /. float_of_int width) in
      match occupant t ~core:c ~time with
      | Some name -> Buffer.add_char buf (glyph_of name)
      | None -> Buffer.add_char buf '.'
    done;
    Buffer.add_char buf '\n'
  done;
  let legend =
    Hashtbl.fold (fun name g acc -> (g, name) :: acc) names []
    |> List.sort compare
  in
  List.iter (fun (g, name) -> Buffer.add_string buf (Printf.sprintf "  %c = %s\n" g name)) legend;
  Buffer.contents buf
