(** Shared output helpers for the experiment harnesses. *)

let heading title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subheading title = Printf.printf "\n-- %s --\n" title

let row_f fmt = Printf.printf fmt

(* Render a series table: first column is the x value, one column per
   line of the figure. *)
let table ~x_label ~columns ~rows ~cell =
  let w = 24 in
  Printf.printf "%-10s" x_label;
  List.iter (fun c -> Printf.printf "%*s" w c) columns;
  print_newline ();
  List.iter
    (fun r ->
      Printf.printf "%-10s" (fst r);
      List.iteri (fun i _ -> Printf.printf "%*s" w (cell (snd r) i)) columns;
      print_newline ())
    rows

let us v = Printf.sprintf "%.2f us" (v *. 1e6)

let pct v = Printf.sprintf "%.2f%%" (v *. 100.0)

let seconds v = Printf.sprintf "%.3f s" v

(* ------------------------------------------------------------------ *)
(* Observability requests (--metrics / --chrome-trace) from the repro
   and bench front ends.  Experiments opt in by creating their kernels
   through [Obs.kernel], their configs through [Obs.config], and calling
   [Obs.capture rt] after each run; the front end then calls
   [Obs.report ()] once, which prints the metrics of the last captured
   run and/or writes its Chrome trace. *)
module Obs = struct
  let metrics : bool ref = ref false

  let chrome_trace : string option ref = ref None

  let requested () = !metrics || !chrome_trace <> None

  let kernel eng machine =
    if !chrome_trace <> None then begin
      let tr = Desim.Trace.create () in
      Desim.Trace.enable tr;
      Oskern.Kernel.create ~trace:tr eng machine
    end
    else Oskern.Kernel.create eng machine

  let config (c : Preempt_core.Config.t) =
    if !metrics then { c with Preempt_core.Config.metrics_enabled = true } else c

  (* Latest instrumented run: (trace, cores, t_end, metrics snapshot). *)
  let last : (Desim.Trace.t * int * float * Preempt_core.Metrics.snapshot) option ref =
    ref None

  let capture rt =
    if requested () then begin
      let kernel = Preempt_core.Runtime.kernel rt in
      last :=
        Some
          ( Oskern.Kernel.trace kernel,
            (Oskern.Kernel.machine kernel).Oskern.Machine.cores,
            Oskern.Kernel.now kernel,
            Preempt_core.Runtime.metrics rt )
    end

  let report () =
    match !last with
    | None ->
        if requested () then
          print_endline
            "(--metrics/--chrome-trace: this experiment has no instrumented runtime run)"
    | Some (tr, cores, t_end, snap) ->
        if !metrics then begin
          subheading "runtime metrics (--metrics, last configuration measured)";
          print_string (Preempt_core.Metrics.summary snap)
        end;
        (match !chrome_trace with
        | Some path ->
            let events = Chrome_trace.of_trace ~cores ~metrics:snap ~t_end tr in
            Chrome_trace.write ~path events;
            Printf.printf
              "chrome trace: %d events -> %s (load in chrome://tracing or ui.perfetto.dev)\n"
              (List.length events) path
        | None -> ());
        last := None
end
