(** [repro observe] — flight-recorder demonstration and report.

    Runs a small preemption-heavy workload (two KLT-switching compute
    threads sharing one worker under a 2 ms aligned timer, mirroring
    [examples/preemption_timeline.ml]) with the {!Preempt_core.Recorder}
    enabled, then reconstructs ULT lifecycles, attributes preemption
    latency to its stages, scans for anomalies, and cross-checks the
    ring-derived stage sums against the live [sig_to_switch] histogram.
    The same report renders a loaded binary dump ([--load]), minus the
    metrics cross-check.  See docs/observability.md. *)

val interval : float
(** Preemption interval of the demo workload (2 ms). *)

val run_workload : unit -> Preempt_core.Runtime.t * int list
(** Build and run the demo workload to completion; returns the runtime
    (recorder and metrics populated) and the spawned uids. *)

(** Attribution chains grouped by preempted thread; durations are mean
    seconds per stage. *)
type row = {
  rw_uid : int;
  rw_n : int;
  rw_fire_to_handler : float;
  rw_handler_to_switch : float;
  rw_switch_to_run : float;
  rw_total : float;
}

type consistency = {
  cs_chains : int;  (** completed attribution chains *)
  cs_samples : int;  (** samples in the sig_to_switch histogram *)
  cs_chain_p50 : float;  (** interpolated p50 of the chain totals *)
  cs_hist_p50 : float;  (** interpolated p50 of sig_to_switch *)
  cs_bucket_distance : int;
      (** |bucket(chain p50) - bucket(hist p50)|; acceptance bound 1 *)
}

(** Sub-pool steal attribution, reconstructed from
    [Recorder.ev_pool_steal] events in dumps saved by the real fiber
    runtime ([Fiber] with [Config.recorder]).  Each event carries
    (thief sub-pool, victim sub-pool): equal ids are same-sub-pool
    (local) steals, differing ids are cross-sub-pool overflow. *)
type steal_split = {
  ss_local : int;  (** same-sub-pool steals (thief = victim) *)
  ss_overflow : int;  (** cross-sub-pool overflow steals *)
  ss_pairs : (int * int * int) list;
      (** overflow breakdown: (thief sub-pool, victim sub-pool, count),
          sorted *)
  ss_batches : (int * int) list;
      (** batch-size histogram from [Recorder.ev_steal_batch]: (batch
          size, raids of that size), ascending; a raid's size counts
          every task it claimed, including the one the thief ran
          itself.  Empty for dumps predating batched raids. *)
}

(** Adaptive-quantum attribution, reconstructed from
    [Recorder.ev_quantum_change] events in dumps saved by an adaptive
    fiber pool ([Config.adaptive]).  Each event carries (worker id, new
    quantum in ns); per-worker change ordering is the ticker's emission
    order (single writer).  See docs/observability.md for the event
    schema. *)
type quantum_row = {
  qr_worker : int;
  qr_changes : int;
  qr_min : float;  (** smallest quantum reached, seconds *)
  qr_max : float;  (** largest quantum reached, seconds *)
  qr_last : float;  (** quantum at end of record, seconds *)
}

type quantum_split = {
  qs_changes : int;
  qs_shrinks : int;  (** changes that tightened the quantum *)
  qs_grows : int;  (** changes that relaxed it back toward base *)
  qs_rows : quantum_row list;  (** per worker, sorted by worker id *)
}

(** Per-request span decomposition, reconstructed from the
    [Recorder.ev_req_arrival] .. [ev_req_done] events emitted by a
    recorder-armed serving run ([Serve] with [recorder = true]).  The
    request's sojourn splits into queueing (arrival -> first
    dispatch), preemption overhead (each bracketed preempt -> resume
    gap) and service (the rest); the stage sum is checked
    bucket-for-bucket against the measured sojourn carried in
    [ev_req_done]'s payload. *)
type span_row = {
  sr_req : int;
  sr_class : int;  (** service class from [ev_req_arrival]; -1 unknown *)
  sr_queue : float;  (** arrival -> first dispatch, seconds *)
  sr_service : float;  (** dispatch -> done minus overhead *)
  sr_overhead : float;  (** sum of preempt -> resume gaps *)
  sr_preempts : int;  (** bracketed preemption yields *)
  sr_total : float;  (** stage sum = queue + service + overhead *)
  sr_sojourn : float;  (** measured sojourn ([ev_req_done].b), NaN if lost *)
  sr_exact : bool;  (** bucket(stage sum) = bucket(measured sojourn) *)
}

type span_split = {
  spn_requests : int;  (** distinct request ids seen in the record *)
  spn_complete : int;  (** spans with arrival, dispatch and done intact *)
  spn_verified : int;
      (** complete spans whose stage sum reproduces the measured
          sojourn bucket-for-bucket *)
  spn_queue : Preempt_core.Metrics.Hist.t;
      (** queueing stage over complete spans *)
  spn_service : Preempt_core.Metrics.Hist.t;
  spn_overhead : Preempt_core.Metrics.Hist.t;
  spn_total : Preempt_core.Metrics.Hist.t;
      (** stage sums over complete spans *)
  spn_rows : span_row list;  (** complete spans, slowest first *)
}

type report = {
  r_events : Preempt_core.Recorder.event array;
  r_emitted : int;  (** events emitted over the recorder's lifetime *)
  r_rings : int;
  r_capacity : int;
  r_overwritten : int array;
      (** per ring: events lost to wraparound; non-zero counts mean
          reconstructions below may be truncated *)
  r_lifecycles : Preempt_core.Recorder.lifecycle list;
  r_chains : Preempt_core.Recorder.chain list;
  r_rows : row list;  (** chains grouped by preempted uid *)
  r_anomalies : Preempt_core.Recorder.anomaly list;
  r_consistency : consistency option;  (** [None] without live metrics *)
  r_steals : steal_split option;
      (** [None] when the record carries no pool-steal events (the
          simulated runtime never emits them) *)
  r_quanta : quantum_split option;
      (** [None] when the record carries no quantum-change events
          (fixed-interval pools, simulated runtime) *)
  r_spans : span_split option;
      (** [None] when the record carries no per-request span events
          (anything but a recorder-armed serving run) *)
}

val of_runtime : Preempt_core.Runtime.t -> report
(** Analyze a runtime's current flight record against its metrics. *)

val of_dump : Preempt_core.Recorder.dump -> report
(** Analyze a decoded binary dump (no metrics cross-check). *)

val print_text : report -> unit
(** Human-readable tables on stdout. *)

val to_json : report -> string

val smoke : spawned:int list -> report -> (unit, string) result
(** The [@obs-smoke] assertions: every spawned ULT has a non-empty
    reconstructed lifecycle, at least one attribution chain completed,
    chain count matches the histogram sample count with p50s within one
    bucket, and {!Chrome_trace.of_flight} output passes
    {!Chrome_trace.validate}. *)
