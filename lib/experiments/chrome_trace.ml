(* Chrome trace_events exporter (see the "Trace Event Format" document
   published with the Chromium project).  Only the stable subset is
   emitted: X/i/C/M phases with ts in microseconds. *)

type arg = A_str of string | A_num of float

type event = {
  name : string;
  cat : string;
  ph : string;
  ts : float;
  dur : float option;
  pid : int;
  tid : int;
  args : (string * arg) list;
}

let us t = t *. 1e6

(* ------------------------------------------------------------------ *)
(* Building events from a trace. *)

let pid = 1

let instant_tags =
  [ "signal"; "preempt"; "migrate"; "newidle"; "balance"; "worker-suspend"; "worker-resume" ]

let of_trace ~cores ?metrics ?t_end trace =
  let records = Desim.Trace.records trace in
  let t_end =
    match t_end with
    | Some t -> t
    | None -> List.fold_left (fun acc (r : Desim.Trace.record) -> Float.max acc r.time) 0.0 records
  in
  let events = ref [] in
  let push e = events := e :: !events in
  (* Core occupancy -> complete events, one track per core. *)
  let gantt = Gantt.of_trace ~cores trace in
  let spans = Gantt.spans gantt ~t_end in
  List.iter
    (fun (core, name, t0, t1) ->
      push
        {
          name;
          cat = "klt";
          ph = "X";
          ts = us t0;
          dur = Some (us (t1 -. t0));
          pid;
          tid = core;
          args = [];
        })
    spans;
  (* Everything that is not a dispatch/exit becomes an instant event on
     an "events" track above the core lanes. *)
  List.iter
    (fun (r : Desim.Trace.record) ->
      if List.mem r.tag instant_tags then
        push
          {
            name = r.tag;
            cat = "kernel";
            ph = "i";
            ts = us r.time;
            dur = None;
            pid;
            tid = cores;
            args = [ ("detail", A_str r.detail) ];
          })
    records;
  (* Metric counters: one "C" sample per worker at the end of the run
     (the runtime keeps totals, not time series). *)
  (match metrics with
  | None -> ()
  | Some (snap : Preempt_core.Metrics.snapshot) ->
      Array.iteri
        (fun rank (c : Preempt_core.Metrics.wcounters) ->
          push
            {
              name = Printf.sprintf "worker%d counters" rank;
              cat = "metrics";
              ph = "C";
              ts = us t_end;
              dur = None;
              pid;
              tid = rank;
              args =
                [
                  ("preempts", A_num (float_of_int c.preempts));
                  ("signal_yields", A_num (float_of_int c.signal_yields));
                  ("klt_switches", A_num (float_of_int c.klt_switches));
                  ("pool_gets", A_num (float_of_int c.pool_gets));
                  ("pool_puts", A_num (float_of_int c.pool_puts));
                  ("steals", A_num (float_of_int c.steals));
                  ("timer_fires", A_num (float_of_int c.timer_fires));
                  ("io_restarts", A_num (float_of_int c.io_restarts));
                ];
            })
        snap.Preempt_core.Metrics.s_workers);
  (* Track names, only when there is something to label. *)
  if !events <> [] then begin
    push
      {
        name = "process_name";
        cat = "__metadata";
        ph = "M";
        ts = 0.0;
        dur = None;
        pid;
        tid = 0;
        args = [ ("name", A_str "preempt-sim") ];
      };
    for c = 0 to cores - 1 do
      push
        {
          name = "thread_name";
          cat = "__metadata";
          ph = "M";
          ts = 0.0;
          dur = None;
          pid;
          tid = c;
          args = [ ("name", A_str (Printf.sprintf "core%d" c)) ];
        }
    done;
    push
      {
        name = "thread_name";
        cat = "__metadata";
        ph = "M";
        ts = 0.0;
        dur = None;
        pid;
        tid = cores;
        args = [ ("name", A_str "kernel events") ];
      }
  end;
  List.rev !events

(* ------------------------------------------------------------------ *)
(* Building events from a flight record: one lane per ULT showing its
   reconstructed lifecycle phases as complete events, plus an instant
   lane for the preemption machinery (timer fires, signal posts,
   preemption requests/completions, steals). *)

let flight_pid = 2

(* Per-request lanes (serving-workload dumps): requests render as a
   separate Perfetto process, one lane per request id, with its span
   events ([ev_req_arrival] .. [ev_req_done]) reconstructed into
   queued / running / preempted slices. *)
let request_pid = 3

let request_events (evs : Preempt_core.Recorder.event array) ~t_end push =
  let open Preempt_core in
  let req_evs =
    Array.to_list evs
    |> List.filter (fun (e : Recorder.event) ->
           let c = e.Recorder.e_code in
           c >= Recorder.ev_req_arrival && c <= Recorder.ev_req_done)
    |> List.stable_sort (fun (a : Recorder.event) (b : Recorder.event) ->
           compare a.Recorder.e_ts b.Recorder.e_ts)
  in
  if req_evs = [] then false
  else begin
    (* Walk each request's events in time order; slices open at a state
       change and close at the next (or at t_end when the tail of the
       span was lost to ring wraparound). *)
    let state = Hashtbl.create 64 in
    (* req -> (slice name, open ts) *)
    let ids = Hashtbl.create 64 in
    let close req t1 =
      match Hashtbl.find_opt state req with
      | Some (name, t0) when t1 >= t0 ->
          Hashtbl.remove state req;
          push
            {
              name;
              cat = "request";
              ph = "X";
              ts = us t0;
              dur = Some (us (t1 -. t0));
              pid = request_pid;
              tid = req;
              args = [];
            }
      | Some _ -> Hashtbl.remove state req
      | None -> ()
    in
    List.iter
      (fun (e : Recorder.event) ->
        let c = e.Recorder.e_code and req = e.Recorder.e_a in
        let ts = e.Recorder.e_ts in
        if not (Hashtbl.mem ids req) then Hashtbl.replace ids req e.Recorder.e_b;
        if c = Recorder.ev_req_arrival || c = Recorder.ev_req_enqueue then begin
          if not (Hashtbl.mem state req) then
            Hashtbl.replace state req ("queued", ts)
        end
        else if c = Recorder.ev_req_dispatch || c = Recorder.ev_req_resume
        then begin
          close req ts;
          Hashtbl.replace state req ("running", ts)
        end
        else if c = Recorder.ev_req_preempt then begin
          close req ts;
          Hashtbl.replace state req ("preempted", ts)
        end
        else if c = Recorder.ev_req_done then close req ts)
      req_evs;
    (* Slices still open lost their closing event to wraparound; extend
       them to the end of the record so the lane stays visible. *)
    Hashtbl.iter (fun req _ -> close req t_end) (Hashtbl.copy state);
    push
      {
        name = "process_name";
        cat = "__metadata";
        ph = "M";
        ts = 0.0;
        dur = None;
        pid = request_pid;
        tid = 0;
        args = [ ("name", A_str "requests") ];
      };
    Hashtbl.iter
      (fun req _ ->
        push
          {
            name = "thread_name";
            cat = "__metadata";
            ph = "M";
            ts = 0.0;
            dur = None;
            pid = request_pid;
            tid = req;
            args = [ ("name", A_str (Printf.sprintf "req%d" req)) ];
          })
      ids;
    true
  end

let of_flight (evs : Preempt_core.Recorder.event array) =
  let open Preempt_core in
  let t_end = Array.fold_left (fun acc e -> Float.max acc e.Recorder.e_ts) 0.0 evs in
  let events = ref [] in
  let push e = events := e :: !events in
  let lcs = Recorder.lifecycles evs in
  let max_uid = List.fold_left (fun acc lc -> max acc lc.Recorder.lc_uid) (-1) lcs in
  let instant_tid = max_uid + 1 in
  List.iter
    (fun (lc : Recorder.lifecycle) ->
      List.iter
        (fun (sp : Recorder.span) ->
          let t1 = if Float.is_nan sp.Recorder.s_to then t_end else sp.Recorder.s_to in
          if sp.Recorder.s_phase <> Recorder.P_finished && t1 >= sp.Recorder.s_from then
            push
              {
                name = Recorder.phase_name sp.Recorder.s_phase;
                cat = "ult";
                ph = "X";
                ts = us sp.Recorder.s_from;
                dur = Some (us (t1 -. sp.Recorder.s_from));
                pid = flight_pid;
                tid = lc.Recorder.lc_uid;
                args = [];
              })
        lc.Recorder.lc_spans)
    lcs;
  Array.iter
    (fun (e : Recorder.event) ->
      let c = e.Recorder.e_code in
      if
        c = Recorder.ev_sig_post || c = Recorder.ev_preempt_req
        || c = Recorder.ev_preempt_done || c = Recorder.ev_timer_fire
        || c = Recorder.ev_steal || c = Recorder.ev_klt_remap
        || c = Recorder.ev_pool_steal || c = Recorder.ev_quantum_change
      then
        push
          {
            name = Recorder.code_name c;
            cat = "flight";
            ph = "i";
            ts = us e.Recorder.e_ts;
            dur = None;
            pid = flight_pid;
            tid = instant_tid;
            args =
              [
                ("ring", A_num (float_of_int e.Recorder.e_ring));
                ("a", A_num (float_of_int e.Recorder.e_a));
                ("b", A_num (float_of_int e.Recorder.e_b));
              ];
          })
    evs;
  ignore (request_events evs ~t_end push : bool);
  if !events <> [] then begin
    push
      {
        name = "process_name";
        cat = "__metadata";
        ph = "M";
        ts = 0.0;
        dur = None;
        pid = flight_pid;
        tid = 0;
        args = [ ("name", A_str "flight-recorder") ];
      };
    List.iter
      (fun (lc : Recorder.lifecycle) ->
        push
          {
            name = "thread_name";
            cat = "__metadata";
            ph = "M";
            ts = 0.0;
            dur = None;
            pid = flight_pid;
            tid = lc.Recorder.lc_uid;
            args = [ ("name", A_str (Printf.sprintf "ult%d" lc.Recorder.lc_uid)) ];
          })
      lcs;
    push
      {
        name = "thread_name";
        cat = "__metadata";
        ph = "M";
        ts = 0.0;
        dur = None;
        pid = flight_pid;
        tid = instant_tid;
        args = [ ("name", A_str "preemption events") ];
      }
  end;
  List.rev !events

(* ------------------------------------------------------------------ *)
(* Serialization. *)

let escape buf s =
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_num buf v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" v)
  else Buffer.add_string buf (Printf.sprintf "%.6g" v)

let add_event buf e =
  Buffer.add_string buf "{\"name\":\"";
  escape buf e.name;
  Buffer.add_string buf "\",\"cat\":\"";
  escape buf e.cat;
  Buffer.add_string buf "\",\"ph\":\"";
  escape buf e.ph;
  Buffer.add_string buf "\",\"ts\":";
  add_num buf e.ts;
  (match e.dur with
  | Some d ->
      Buffer.add_string buf ",\"dur\":";
      add_num buf d
  | None -> ());
  Buffer.add_string buf (Printf.sprintf ",\"pid\":%d,\"tid\":%d" e.pid e.tid);
  if e.args <> [] then begin
    Buffer.add_string buf ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape buf k;
        Buffer.add_string buf "\":";
        match v with
        | A_num n -> add_num buf n
        | A_str s ->
            Buffer.add_char buf '"';
            escape buf s;
            Buffer.add_char buf '"')
      e.args;
    Buffer.add_char buf '}'
  end;
  Buffer.add_char buf '}'

let to_json events =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",\n";
      add_event buf e)
    events;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf

let write ~path events =
  let oc = open_out path in
  output_string oc (to_json events);
  output_char oc '\n';
  close_out oc

(* ------------------------------------------------------------------ *)
(* Minimal JSON parser, used to validate the exporter's own output. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Fail of int * string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Fail (!pos, msg)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        let c = s.[!pos] in
        advance ();
        if c = '"' then Buffer.contents buf
        else if c = '\\' then begin
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
              if !pos + 4 > n then fail "bad \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
              in
              (* Encode as UTF-8 (BMP only; good enough for validation). *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
          | _ -> fail "unknown escape");
          go ()
        end
        else begin
          Buffer.add_char buf c;
          go ()
        end
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
      in
      while !pos < n && is_num_char s.[!pos] do
        advance ()
      done;
      if !pos = start then fail "expected number";
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "malformed number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  Obj (List.rev ((k, v) :: acc))
              | _ -> fail "expected ',' or '}'"
            in
            members []
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            Arr []
          end
          else begin
            let rec elements acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elements (v :: acc)
              | Some ']' ->
                  advance ();
                  Arr (List.rev (v :: acc))
              | _ -> fail "expected ',' or ']'"
            in
            elements []
          end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (parse_number ())
    in
    try
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
      else Ok v
    with Fail (p, msg) -> Error (Printf.sprintf "%s at offset %d" msg p)

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None
end

let validate s =
  match Json.parse s with
  | Error e -> Error ("not valid JSON: " ^ e)
  | Ok root -> (
      match Json.member "traceEvents" root with
      | None -> Error "missing traceEvents"
      | Some (Json.Arr events) ->
          let check i ev =
            let want_num field =
              match Json.member field ev with
              | Some (Json.Num _) -> Ok ()
              | _ -> Error (Printf.sprintf "event %d: missing numeric %S" i field)
            in
            let want_str field =
              match Json.member field ev with
              | Some (Json.Str _) -> Ok ()
              | _ -> Error (Printf.sprintf "event %d: missing string %S" i field)
            in
            let ( let* ) r f = Result.bind r f in
            let* () = want_str "ph" in
            let* () = want_num "ts" in
            let* () = want_num "pid" in
            want_num "tid"
          in
          let rec go i = function
            | [] -> Ok (List.length events)
            | ev :: rest -> ( match check i ev with Ok () -> go (i + 1) rest | Error e -> Error e)
          in
          go 0 events
      | Some _ -> Error "traceEvents is not an array")
