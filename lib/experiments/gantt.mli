(** ASCII Gantt charts of simulated core occupancy, reconstructed from
    the kernel trace ("dispatch"/"exit" records).

    Each core is a lane; each time bucket shows a glyph identifying the
    KLT that occupied the core (the most recent dispatch), or '.' when
    idle.  A legend maps glyphs to KLT names. *)

type t

(** [of_trace ~cores trace] replays the trace into per-core timelines. *)
val of_trace : cores:int -> Desim.Trace.t -> t

(** [render ~t0 ~t1 ~width t] draws the window [t0, t1) in [width]
    buckets per lane. *)
val render : ?width:int -> t0:float -> t1:float -> t -> string

(** The KLT (if any) occupying [core] at [time] — for tests. *)
val occupant : t -> core:int -> time:float -> string option

(** [spans t ~t_end] flattens the lanes into occupied intervals
    [(core, klt_name, t0, t1)], time-ascending within each core.  A span
    still open at the end of the trace is closed at [t_end] (clamped so
    [t1 >= t0]).  This is the input of the Chrome trace exporter. *)
val spans : t -> t_end:float -> (int * string * float * float) list
