(** Paper Table 1: median per-preemption overhead at a 10 ms interval.

    1:1 threads are measured by a throughput probe on the raw kernel: a
    pinned spinner is preempted every 10 ms by a woken sleeper, and the
    spinner's completion delay (minus the sleeper's own work) divided by
    the number of preemptions is the per-preemption cost — both context
    switches included, like an OS-preemption round trip.

    The M:N rows use the runtime's preemption-latency probe: time from
    the preemption signal being posted to the next thread running on the
    worker (median over many preemptions). *)

open Desim
open Oskern
open Preempt_core

type row = { machine : string; one_to_one : float; signal_yield : float; klt_switching : float }

let one_to_one machine ~preemptions =
  let eng = Engine.create () in
  let kernel = Kernel.create eng (Machine.with_cores machine 1) in
  let interval = 10e-3 in
  let work = float_of_int preemptions *. interval in
  let intruder_work = 1e-6 in
  let finish = ref 0.0 in
  let wakeups = ref 0 in
  ignore
    (Kernel.spawn kernel ~name:"spinner" (fun klt ->
         Kernel.compute kernel klt work;
         finish := Kernel.now kernel));
  ignore
    (Kernel.spawn kernel ~name:"intruder" (fun klt ->
         (* Sleep-wake every interval; each wake preempts the spinner. *)
         while Kernel.now kernel < work do
           Kernel.sleep kernel klt interval;
           Kernel.compute kernel klt intruder_work;
           incr wakeups
         done));
  Engine.run eng;
  let n = float_of_int !wakeups in
  if n = 0.0 then 0.0
  else (!finish -. work -. (n *. intruder_work)) /. n

let mn machine ~kind ~preemptions =
  let eng = Engine.create () in
  let kernel = Exputil.Obs.kernel eng (Machine.with_cores machine 1) in
  let interval = 10e-3 in
  let config =
    Exputil.Obs.config
      { Config.default with Config.timer_strategy = Config.Per_worker_aligned; interval }
  in
  let rt = Runtime.create ~config kernel ~n_workers:1 in
  let per_thread = float_of_int preemptions *. interval /. 2.0 in
  for i = 0 to 1 do
    ignore
      (Runtime.spawn rt ~kind ~footprint:0.0 ~home:0 ~name:(Printf.sprintf "t%d" i)
         (fun () -> Ult.compute per_thread))
  done;
  Runtime.start rt;
  Engine.run eng;
  Exputil.Obs.capture rt;
  let s = Runtime.preempt_latency_stats rt in
  if Stats.count s = 0 then 0.0 else Stats.median s

let measure machine name ~preemptions =
  {
    machine = name;
    one_to_one = one_to_one machine ~preemptions;
    signal_yield = mn machine ~kind:Types.Signal_yield ~preemptions;
    klt_switching = mn machine ~kind:Types.Klt_switching ~preemptions;
  }

let run ?(fast = false) () =
  let preemptions = if fast then 200 else 1000 in
  Exputil.heading "Table 1: overhead of preemption (median, 10 ms interval)";
  let rows =
    [
      measure Machine.skylake "Skylake" ~preemptions;
      measure Machine.knl "KNL" ~preemptions;
    ]
  in
  Printf.printf "%-10s%22s%18s%18s\n" "" "1:1 threads (Pthreads)" "Signal-yield"
    "KLT-switching";
  List.iter
    (fun r ->
      Printf.printf "%-10s%22s%18s%18s\n" r.machine (Exputil.us r.one_to_one)
        (Exputil.us r.signal_yield) (Exputil.us r.klt_switching))
    rows;
  Printf.printf
    "\nPaper:     Skylake 2.8 / 3.5 / 9.9 us;  KNL 15 / 18 / 62 us\n\
     (signal-yield ~1.2x and KLT-switching ~4x the 1:1 cost).\n";
  rows
