(** Chrome [trace_events] JSON exporter.

    Converts a {!Desim.Trace} buffer (via {!Gantt} core occupancy) plus
    an optional {!Preempt_core.Metrics.snapshot} into a file loadable in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}:

    - every occupied core span becomes a complete ("X") duration event
      on track [tid = core] (so the Gantt chart renders natively),
    - every other trace record (signals, migrations, worker
      suspend/resume, load balancing) becomes an instant ("i") event,
    - metric counters become one counter ("C") event per worker.

    Timestamps are microseconds, as the format requires.  The output is
    the JSON Object Format: [{"traceEvents": [...]}].

    No external JSON library exists in this environment, so a minimal
    parser ({!Json}) ships here too; the tests use it to validate the
    exporter's output, and it is handy for consuming the files
    programmatically. *)

type arg = A_str of string | A_num of float

type event = {
  name : string;
  cat : string;
  ph : string;  (** "X" complete, "i" instant, "C" counter, "M" metadata *)
  ts : float;  (** microseconds *)
  dur : float option;  (** microseconds; ["X"] events only *)
  pid : int;
  tid : int;
  args : (string * arg) list;
}

(** [of_trace ~cores trace] builds the event list.  [t_end] (default:
    the last record's timestamp) closes still-open spans.  [metrics]
    appends per-worker counter events at [t_end].  An empty trace with
    no metrics yields [[]]. *)
val of_trace :
  cores:int ->
  ?metrics:Preempt_core.Metrics.snapshot ->
  ?t_end:float ->
  Desim.Trace.t ->
  event list

(** [of_flight evs] renders a decoded flight record
    ({!Preempt_core.Recorder.events} or a loaded dump) as one lane per
    ULT — its reconstructed lifecycle phases (ready / running / bound /
    blocked) as complete events — plus an instant lane for the
    preemption machinery (timer fires, signal posts, preemption
    requests/completions, steals, KLT remaps).  Uses [pid = 2], so the
    result can be appended to an {!of_trace} list (which uses [pid = 1])
    and viewed in one Perfetto session.

    When the record carries per-request span events
    ([Recorder.ev_req_arrival] .. [ev_req_done], emitted by a
    recorder-armed serving run), the requests additionally render as a
    third Perfetto process ([pid = 3], named "requests"): one lane per
    request id with queued / running / preempted slices reconstructed
    from its span events.  Slices whose closing event was overwritten
    by ring wraparound extend to the end of the record. *)
val of_flight : Preempt_core.Recorder.event array -> event list

(** Serialize to the Chrome JSON Object Format. *)
val to_json : event list -> string

(** [write ~path events] writes [to_json events] to [path]. *)
val write : path:string -> event list -> unit

(** [validate s] parses [s] and checks it is a trace-event object —
    a JSON object with a ["traceEvents"] array whose elements all carry
    ["ph"] (string), ["ts"] (number), ["pid"] and ["tid"] (numbers).
    Returns the number of events, or a description of the first
    problem. *)
val validate : string -> (int, string) result

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  (** Strict-enough JSON parser (objects, arrays, strings with escapes,
      numbers, literals).  Returns [Error msg] with a character offset
      on malformed input. *)
  val parse : string -> (t, string) result

  (** Object field lookup; [None] on missing key or non-object. *)
  val member : string -> t -> t option
end
