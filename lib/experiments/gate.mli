(** Re-measure-once ratio gates for wall-clock perf assertions.

    The shared decision logic behind bench/perf.ml's same-process
    gates (sub-pool isolation, d4/d1 scaling, fixed-vs-adaptive serve
    p99): a ratio must clear a minimum; the claim needs a minimum core
    count or the assertion is skipped (ratio still printed); and a
    failing first sample earns exactly one fresh re-measure — host
    load is transient, a real regression reproduces — before the gate
    fails.  Pure given its inputs, so unit-testable with stub
    measurements (see test/test_serve.ml). *)

type verdict =
  | Pass of { ratio : float; retried : bool }
  | Fail of { ratio : float }  (** the ratio of the failed retry *)
  | Skipped of { ratio : float; cores : int }

(** [ratio_gate ?required_cores ?host_cores ~minimum ~remeasure first]:
    skip when the host has fewer than [required_cores] (default 1,
    i.e. never skip; [host_cores] defaults to
    [Domain.recommended_domain_count ()] and exists for tests); pass
    when [first >= minimum]; otherwise call [remeasure] exactly once
    and pass/fail on the fresh sample. *)
val ratio_gate :
  ?required_cores:int ->
  ?host_cores:int ->
  minimum:float ->
  remeasure:(unit -> float) ->
  float ->
  verdict

(** Print the verdict in the smoke log's uniform format; [false] only
    on [Fail] (a skipped assertion is not a failure). *)
val report : name:string -> minimum:float -> verdict -> bool
