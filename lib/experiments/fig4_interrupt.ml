(** Paper Fig. 4: average time of an OS timer interruption (1 ms
    interval) versus the number of workers, for the four preemption
    timer strategies.

    Expected shape: "Per-worker (creation-time)" and "Per-process
    (one-to-all)" grow roughly linearly with worker count (kernel
    signal-lock contention, pthread_kill bursts); "Per-worker (aligned)"
    stays flat; "Per-process (chain)" stays flat, slightly above aligned
    (the extra pthread_kill per hop). *)

open Desim
open Oskern
open Preempt_core

type point = { workers : int; mean : float; stddev : float; samples : int }

type series = { strategy : Config.timer_strategy; points : point list }

let strategies =
  [
    Config.Per_worker_creation;
    Config.Per_worker_aligned;
    Config.Per_process_one_to_all;
    Config.Per_process_chain;
  ]

let measure ~workers ~strategy ~intervals =
  let eng = Engine.create () in
  (* Up to 112 workers: treat hyperthreads as cores, as the paper does. *)
  let machine = Machine.with_cores Machine.skylake workers in
  let kernel = Exputil.Obs.kernel eng machine in
  let interval = 1e-3 in
  let config =
    Exputil.Obs.config { Config.default with Config.timer_strategy = strategy; interval }
  in
  let rt = Runtime.create ~config kernel ~n_workers:workers in
  let horizon = interval *. float_of_int (intervals + 2) in
  for i = 0 to workers - 1 do
    ignore
      (Runtime.spawn rt ~kind:Types.Signal_yield ~footprint:0.0 ~home:i
         ~name:(Printf.sprintf "spin%d" i)
         (fun () ->
           (* Spin past the horizon; the run is cut off by ~until. *)
           Ult.compute (horizon +. 1.0)))
  done;
  Runtime.start rt;
  Engine.run ~until:horizon eng;
  Exputil.Obs.capture rt;
  let s = Runtime.interrupt_stats rt in
  {
    workers;
    mean = Stats.mean s;
    stddev = Stats.stddev s;
    samples = Stats.count s;
  }

let worker_counts ~fast =
  if fast then [ 1; 4; 16; 56 ] else [ 1; 2; 4; 8; 16; 32; 56; 84; 112 ]

let series ?(fast = false) () =
  let intervals = if fast then 30 else 100 in
  List.map
    (fun strategy ->
      {
        strategy;
        points =
          List.map (fun workers -> measure ~workers ~strategy ~intervals) (worker_counts ~fast);
      })
    strategies

let run ?(fast = false) () =
  Exputil.heading "Figure 4: timer interruption time vs #workers (1 ms interval, Skylake)";
  let data = series ~fast () in
  let counts = worker_counts ~fast in
  Exputil.table ~x_label:"#workers"
    ~columns:(List.map (fun s -> Config.timer_strategy_name s.strategy) data)
    ~rows:(List.map (fun w -> (string_of_int w, w)) counts)
    ~cell:(fun w i ->
      let s = List.nth data i in
      match List.find_opt (fun p -> p.workers = w) s.points with
      | Some p -> Printf.sprintf "%s +-%.1f" (Exputil.us p.mean) (p.stddev *. 1e6)
      | None -> "-");
  let chart_series =
    List.map
      (fun s ->
        {
          Chart.label = Config.timer_strategy_name s.strategy;
          points = List.map (fun p -> (float_of_int p.workers, p.mean *. 1e6)) s.points;
        })
      data
  in
  print_newline ();
  print_string
    (Chart.render ~x_log:true ~y_log:true ~x_label:"#workers" ~y_label:"interrupt us"
       chart_series);
  Chart.write_csv "results/fig4.csv"
    ~header:[ "workers"; "creation_us"; "aligned_us"; "one_to_all_us"; "chain_us" ]
    (List.map
       (fun w ->
         float_of_int w
         :: List.map
              (fun s ->
                match List.find_opt (fun p -> p.workers = w) s.points with
                | Some p -> p.mean *. 1e6
                | None -> Float.nan)
              data)
       (worker_counts ~fast));
  Printf.printf
    "\nPaper: creation-time/one-to-all grow ~linearly (to ~100 us / tens of us at 112);\n\
     aligned stays ~1 us; chain flat, slightly above aligned. (results/fig4.csv)\n";
  data
