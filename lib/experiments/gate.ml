(* Re-measure-once ratio gates for wall-clock perf assertions.

   Every same-process perf gate in bench/perf.ml has the same shape: a
   ratio of two measurements must clear a minimum, the claim only holds
   on hosts with enough cores, and a transiently loaded host can
   legitimately collapse the ratio for one sample — so a failing first
   sample earns exactly one fresh re-measure before the gate fails.
   The decision logic lives here, parameterized by the measurement
   thunk, so the unit tests can drive it with fake measurements. *)

type verdict =
  | Pass of { ratio : float; retried : bool }
  | Fail of { ratio : float }  (* the retry's ratio *)
  | Skipped of { ratio : float; cores : int }

let ratio_gate ?(required_cores = 1) ?host_cores ~minimum ~remeasure first =
  let cores =
    match host_cores with
    | Some c -> c
    | None -> Domain.recommended_domain_count ()
  in
  if cores < required_cores then Skipped { ratio = first; cores }
  else if first >= minimum then Pass { ratio = first; retried = false }
  else
    let retry = remeasure () in
    if retry >= minimum then Pass { ratio = retry; retried = true }
    else Fail { ratio = retry }

(* Shared rendering so every gate reads the same in the smoke log.
   Returns [false] only on [Fail] — a skip is not a failure. *)
let report ~name ~minimum verdict =
  (match verdict with
  | Pass { ratio; retried = false } ->
      Printf.printf "%s: %.2fx (minimum %.2fx)\n" name ratio minimum
  | Pass { ratio; retried = true } ->
      Printf.printf
        "%s: first sample below %.2fx, retry %.2fx — transient host load\n"
        name minimum ratio
  | Fail { ratio } ->
      Printf.printf "perf-smoke: FAIL — %s at %.2fx < %.2fx on retry\n" name
        ratio minimum
  | Skipped { ratio; cores } ->
      Printf.printf
        "%s: %.2fx — assertion skipped, host has only %d core(s)\n" name
        ratio cores);
  match verdict with Fail _ -> false | Pass _ | Skipped _ -> true
