(* [repro observe] — run a small preemption-heavy workload with the
   flight recorder on, reconstruct what happened from the event rings
   alone, and cross-check the reconstruction against the live metrics.

   The workload mirrors examples/preemption_timeline.ml: one core, one
   worker, two KLT-switching compute threads sharing it under a 2 ms
   aligned preemption timer — every timer fire forces a measurable
   preemption, so the attribution chains exercise all three stages.

   The same report also renders a loaded binary dump ([--load]), in
   which case no live metrics exist and the consistency check is
   skipped. *)

open Oskern
open Preempt_core

let interval = 2e-3

let n_workers = 1

let n_ults = 2

let run_workload () =
  let eng = Desim.Engine.create () in
  let machine = Machine.with_cores Machine.skylake 1 in
  let kernel = Kernel.create eng machine in
  let config =
    Config.make ~timer_strategy:Config.Per_worker_aligned ~interval
      ~metrics_enabled:true ~recorder_enabled:true ()
  in
  let rt = Runtime.create ~config kernel ~n_workers in
  let uids =
    List.init n_ults (fun i ->
        let u =
          Runtime.spawn rt ~kind:Types.Klt_switching ~home:0
            ~name:(Printf.sprintf "thread%d" i) (fun () -> Ult.compute 0.012)
        in
        u.Types.uid)
  in
  Runtime.start rt;
  Desim.Engine.run eng;
  (rt, uids)

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)
(* ------------------------------------------------------------------ *)

(* Attribution chains grouped by preempted thread: count and per-stage
   means, in seconds. *)
type row = {
  rw_uid : int;
  rw_n : int;
  rw_fire_to_handler : float;
  rw_handler_to_switch : float;
  rw_switch_to_run : float;
  rw_total : float;
}

type consistency = {
  cs_chains : int;  (** completed attribution chains *)
  cs_samples : int;  (** samples in the sig_to_switch histogram *)
  cs_chain_p50 : float;  (** interpolated p50 of the chain totals *)
  cs_hist_p50 : float;  (** interpolated p50 of sig_to_switch *)
  cs_bucket_distance : int;
      (** |bucket(chain p50) - bucket(hist p50)|; the acceptance bound
          is <= 1 *)
}

(* Sub-pool steal attribution (real fiber runtime dumps): every
   successful steal is an [ev_pool_steal] with (thief sub-pool, victim
   sub-pool), so local steals and cross-sub-pool overflow separate by
   whether the two ids agree. *)
type steal_split = {
  ss_local : int;  (** same-sub-pool steals (thief = victim) *)
  ss_overflow : int;  (** cross-sub-pool overflow steals *)
  ss_pairs : (int * int * int) list;
      (** overflow breakdown: (thief sub-pool, victim sub-pool, count),
          sorted *)
  ss_batches : (int * int) list;
      (** batch-size histogram from [ev_steal_batch]: (batch size,
          raids of that size), ascending.  Size counts every task a
          raid claimed, including the one the thief ran itself; empty
          for dumps predating batched raids. *)
}

(* Adaptive-quantum attribution (real fiber runtime dumps): the ticker
   emits [ev_quantum_change] with (worker id, new quantum in ns) each
   time the controller moves a worker's quantum, so the record shows
   how far and how often preemption tightened under load. *)
type quantum_row = {
  qr_worker : int;
  qr_changes : int;
  qr_min : float;  (** smallest quantum reached, seconds *)
  qr_max : float;  (** largest quantum reached, seconds *)
  qr_last : float;  (** quantum at end of record, seconds *)
}

type quantum_split = {
  qs_changes : int;
  qs_shrinks : int;  (** changes that tightened the quantum *)
  qs_grows : int;  (** changes that relaxed it back toward base *)
  qs_rows : quantum_row list;  (** per worker, sorted by worker id *)
}

(* Per-request span decomposition (serving-workload dumps): each
   request's [ev_req_arrival .. ev_req_done] events split its sojourn
   into queueing (arrival -> first dispatch), preemption overhead
   (each preempt -> resume gap) and service (the rest).  The stage sum
   is compared bucket-for-bucket against the measured sojourn the
   workload stored in [ev_req_done]'s payload — both derive from the
   same clock reads, so a complete span verifies exactly. *)
type span_row = {
  sr_req : int;
  sr_class : int;  (** service class from [ev_req_arrival]; -1 unknown *)
  sr_queue : float;  (** arrival -> first dispatch, seconds *)
  sr_service : float;  (** dispatch -> done minus overhead *)
  sr_overhead : float;  (** sum of preempt -> resume gaps *)
  sr_preempts : int;  (** bracketed preemption yields *)
  sr_total : float;  (** stage sum = queue + service + overhead *)
  sr_sojourn : float;  (** measured sojourn ([ev_req_done].b), NaN if lost *)
  sr_exact : bool;  (** bucket(stage sum) = bucket(measured sojourn) *)
}

type span_split = {
  spn_requests : int;  (** distinct request ids seen in the record *)
  spn_complete : int;  (** spans with arrival, dispatch and done intact *)
  spn_verified : int;  (** complete spans whose stage sum reproduces the
                           measured sojourn bucket-for-bucket *)
  spn_queue : Metrics.Hist.t;  (** queueing stage over complete spans *)
  spn_service : Metrics.Hist.t;
  spn_overhead : Metrics.Hist.t;
  spn_total : Metrics.Hist.t;  (** stage sums over complete spans *)
  spn_rows : span_row list;  (** complete spans, slowest first *)
}

type report = {
  r_events : Recorder.event array;
  r_emitted : int;
  r_rings : int;
  r_capacity : int;
  r_overwritten : int array;
      (** per ring: events lost to wraparound; non-empty counts mean
          reconstructions below may be truncated *)
  r_lifecycles : Recorder.lifecycle list;
  r_chains : Recorder.chain list;
  r_rows : row list;  (** chains grouped by preempted uid *)
  r_anomalies : Recorder.anomaly list;
  r_consistency : consistency option;  (** [None] without live metrics *)
  r_steals : steal_split option;
      (** [None] when the record carries no pool-steal events (the
          simulated runtime never emits them) *)
  r_quanta : quantum_split option;
      (** [None] when the record carries no quantum-change events
          (fixed-interval pools, simulated runtime) *)
  r_spans : span_split option;
      (** [None] when the record carries no per-request span events
          (anything but a recorder-armed serving run) *)
}

let rows_of_chains chains =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (c : Recorder.chain) ->
      let n, f, h, s, t =
        Option.value (Hashtbl.find_opt tbl c.Recorder.at_uid)
          ~default:(0, 0., 0., 0., 0.)
      in
      Hashtbl.replace tbl c.Recorder.at_uid
        ( n + 1,
          f +. c.Recorder.at_fire_to_handler,
          h +. c.Recorder.at_handler_to_switch,
          s +. c.Recorder.at_switch_to_run,
          t +. Recorder.chain_total c ))
    chains;
  Hashtbl.fold
    (fun uid (n, f, h, s, t) acc ->
      let m x = x /. float_of_int n in
      {
        rw_uid = uid;
        rw_n = n;
        rw_fire_to_handler = m f;
        rw_handler_to_switch = m h;
        rw_switch_to_run = m s;
        rw_total = m t;
      }
      :: acc)
    tbl []
  |> List.sort (fun a b -> compare a.rw_uid b.rw_uid)

let consistency_of chains (m : Metrics.snapshot) =
  let samples = Metrics.Hist.count m.Metrics.s_sig_to_switch in
  if chains = [] || samples = 0 then None
  else begin
    let ch = Metrics.Hist.create () in
    List.iter (fun c -> Metrics.Hist.add ch (Recorder.chain_total c)) chains;
    let chain_p50 = Metrics.Hist.quantile ch 50. in
    let hist_p50 = Metrics.Hist.quantile m.Metrics.s_sig_to_switch 50. in
    Some
      {
        cs_chains = List.length chains;
        cs_samples = samples;
        cs_chain_p50 = chain_p50;
        cs_hist_p50 = hist_p50;
        cs_bucket_distance =
          abs
            (Metrics.Hist.bucket_of chain_p50
            - Metrics.Hist.bucket_of hist_p50);
      }
  end

let steal_split_of events =
  let local = ref 0 in
  let pairs = Hashtbl.create 8 in
  let batches = Hashtbl.create 8 in
  Array.iter
    (fun (e : Recorder.event) ->
      if e.Recorder.e_code = Recorder.ev_pool_steal then begin
        if e.Recorder.e_a = e.Recorder.e_b then incr local
        else
          let key = (e.Recorder.e_a, e.Recorder.e_b) in
          Hashtbl.replace pairs key
            (1 + Option.value ~default:0 (Hashtbl.find_opt pairs key))
      end
      else if e.Recorder.e_code = Recorder.ev_steal_batch then
        let size = e.Recorder.e_a in
        Hashtbl.replace batches size
          (1 + Option.value ~default:0 (Hashtbl.find_opt batches size)))
    events;
  let overflow = Hashtbl.fold (fun _ n acc -> acc + n) pairs 0 in
  if !local = 0 && overflow = 0 then None
  else
    Some
      {
        ss_local = !local;
        ss_overflow = overflow;
        ss_pairs =
          Hashtbl.fold (fun (t, v) n acc -> (t, v, n) :: acc) pairs []
          |> List.sort compare;
        ss_batches =
          Hashtbl.fold (fun size n acc -> (size, n) :: acc) batches []
          |> List.sort compare;
      }

let quantum_split_of events =
  (* Per worker: (changes, min, max, last).  Events come from the single
     ticker writer, so per-worker order survives the ring merge. *)
  let tbl = Hashtbl.create 8 in
  let shrinks = ref 0 and grows = ref 0 in
  Array.iter
    (fun (e : Recorder.event) ->
      if e.Recorder.e_code = Recorder.ev_quantum_change then begin
        let w = e.Recorder.e_a in
        let q = float_of_int e.Recorder.e_b *. 1e-9 in
        (match Hashtbl.find_opt tbl w with
        | None -> Hashtbl.replace tbl w (1, q, q, q)
        | Some (n, lo, hi, last) ->
            if q < last then incr shrinks else if q > last then incr grows;
            Hashtbl.replace tbl w (n + 1, Float.min lo q, Float.max hi q, q))
      end)
    events;
  if Hashtbl.length tbl = 0 then None
  else
    let rows =
      Hashtbl.fold
        (fun w (n, lo, hi, last) acc ->
          { qr_worker = w; qr_changes = n; qr_min = lo; qr_max = hi;
            qr_last = last }
          :: acc)
        tbl []
      |> List.sort (fun a b -> compare a.qr_worker b.qr_worker)
    in
    Some
      {
        qs_changes = List.fold_left (fun a r -> a + r.qr_changes) 0 rows;
        qs_shrinks = !shrinks;
        qs_grows = !grows;
        qs_rows = rows;
      }

(* Walking state per request while scanning the (ts-ordered) event
   stream. *)
type span_acc = {
  mutable sa_class : int;
  mutable sa_arrival : float;
  mutable sa_dispatch : float;
  mutable sa_done : float;
  mutable sa_sojourn_ns : int;
  mutable sa_pending : float;  (* open preempt, NaN if none *)
  mutable sa_overhead : float;
  mutable sa_preempts : int;
}

let span_split_of events =
  let tbl : (int, span_acc) Hashtbl.t = Hashtbl.create 256 in
  let get req =
    match Hashtbl.find_opt tbl req with
    | Some a -> a
    | None ->
        let a =
          {
            sa_class = -1;
            sa_arrival = Float.nan;
            sa_dispatch = Float.nan;
            sa_done = Float.nan;
            sa_sojourn_ns = -1;
            sa_pending = Float.nan;
            sa_overhead = 0.0;
            sa_preempts = 0;
          }
        in
        Hashtbl.add tbl req a;
        a
  in
  Array.iter
    (fun (e : Recorder.event) ->
      let code = e.Recorder.e_code in
      if code >= Recorder.ev_req_arrival && code <= Recorder.ev_req_done then begin
        let a = get e.Recorder.e_a in
        let ts = e.Recorder.e_ts in
        if code = Recorder.ev_req_arrival then begin
          a.sa_arrival <- ts;
          a.sa_class <- e.Recorder.e_b
        end
        else if code = Recorder.ev_req_dispatch then begin
          if Float.is_nan a.sa_dispatch then a.sa_dispatch <- ts
        end
        else if code = Recorder.ev_req_preempt then a.sa_pending <- ts
        else if code = Recorder.ev_req_resume then begin
          if not (Float.is_nan a.sa_pending) then begin
            a.sa_overhead <- a.sa_overhead +. Float.max 0.0 (ts -. a.sa_pending);
            a.sa_preempts <- a.sa_preempts + 1;
            a.sa_pending <- Float.nan
          end
        end
        else if code = Recorder.ev_req_done then begin
          a.sa_done <- ts;
          a.sa_sojourn_ns <- e.Recorder.e_b
        end
      end)
    events;
  if Hashtbl.length tbl = 0 then None
  else begin
    let queue_h = Metrics.Hist.create () in
    let service_h = Metrics.Hist.create () in
    let overhead_h = Metrics.Hist.create () in
    let total_h = Metrics.Hist.create () in
    let rows = ref [] in
    let complete = ref 0 in
    let verified = ref 0 in
    Hashtbl.iter
      (fun req a ->
        if
          not
            (Float.is_nan a.sa_arrival
            || Float.is_nan a.sa_dispatch
            || Float.is_nan a.sa_done)
        then begin
          incr complete;
          let queue = a.sa_dispatch -. a.sa_arrival in
          let busy = a.sa_done -. a.sa_dispatch in
          let service = busy -. a.sa_overhead in
          let total = queue +. service +. a.sa_overhead in
          let sojourn =
            if a.sa_sojourn_ns < 0 then Float.nan
            else float_of_int a.sa_sojourn_ns *. 1e-9
          in
          let exact =
            (not (Float.is_nan sojourn))
            && Metrics.Hist.bucket_of total = Metrics.Hist.bucket_of sojourn
          in
          if exact then incr verified;
          Metrics.Hist.add queue_h queue;
          Metrics.Hist.add service_h service;
          Metrics.Hist.add overhead_h a.sa_overhead;
          Metrics.Hist.add total_h total;
          rows :=
            {
              sr_req = req;
              sr_class = a.sa_class;
              sr_queue = queue;
              sr_service = service;
              sr_overhead = a.sa_overhead;
              sr_preempts = a.sa_preempts;
              sr_total = total;
              sr_sojourn = sojourn;
              sr_exact = exact;
            }
            :: !rows
        end)
      tbl;
    Some
      {
        spn_requests = Hashtbl.length tbl;
        spn_complete = !complete;
        spn_verified = !verified;
        spn_queue = queue_h;
        spn_service = service_h;
        spn_overhead = overhead_h;
        spn_total = total_h;
        spn_rows =
          List.sort (fun x y -> compare y.sr_total x.sr_total) !rows;
      }
  end

let analyze ?metrics ?(overwritten = [||]) ~n_workers ~rings ~capacity ~emitted
    events =
  let chains, never = Recorder.attribute ~n_workers events in
  let timing = Recorder.detect_anomalies ~n_workers ~interval events in
  {
    r_events = events;
    r_emitted = emitted;
    r_rings = rings;
    r_capacity = capacity;
    r_overwritten = overwritten;
    r_lifecycles = Recorder.lifecycles events;
    r_chains = chains;
    r_rows = rows_of_chains chains;
    r_anomalies = never @ timing;
    r_consistency = Option.bind metrics (consistency_of chains);
    r_steals = steal_split_of events;
    r_quanta = quantum_split_of events;
    r_spans = span_split_of events;
  }

let of_runtime rt =
  let rec_ = Runtime.recorder rt in
  analyze
    ~metrics:(Runtime.metrics rt)
    ~overwritten:
      (Array.init (Recorder.n_rings rec_) (Recorder.overwritten rec_))
    ~n_workers ~rings:(Recorder.n_rings rec_)
    ~capacity:(Recorder.capacity rec_)
    ~emitted:(Recorder.total_emitted rec_)
    (Runtime.flight_events rt)

let of_dump (d : Recorder.dump) =
  analyze
    ~overwritten:d.Recorder.d_overwritten
    ~n_workers:(d.Recorder.d_n_rings - 1)
    ~rings:d.Recorder.d_n_rings ~capacity:d.Recorder.d_capacity
    ~emitted:(Array.length d.Recorder.d_events)
    d.Recorder.d_events

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let ms v = if Float.is_nan v then "-" else Printf.sprintf "%.3f" (v *. 1e3)

let us v = v *. 1e6

let print_text r =
  Printf.printf "flight record: %d event(s) retained (%d rings x %d), %d emitted\n"
    (Array.length r.r_events) r.r_rings r.r_capacity r.r_emitted;
  let lost = Array.fold_left ( + ) 0 r.r_overwritten in
  if lost > 0 then begin
    Printf.printf
      "  %d event(s) overwritten by ring wraparound — reconstructions below \
       may be truncated\n"
      lost;
    Array.iteri
      (fun ring n ->
        if n > 0 then
          Printf.printf "    ring %d: %d event(s) lost (oldest first)\n" ring n)
      r.r_overwritten
  end;
  print_newline ();
  Printf.printf "per-ULT lifecycles\n";
  Printf.printf "  %4s %10s %11s %5s %9s %7s %7s %7s %9s\n" "uid" "spawn ms"
    "finish ms" "runs" "preempts" "yields" "blocks" "steals" "run ms";
  List.iter
    (fun (lc : Recorder.lifecycle) ->
      Printf.printf "  %4d %10s %11s %5d %9d %7d %7d %7d %9s\n"
        lc.Recorder.lc_uid (ms lc.Recorder.lc_spawned)
        (ms lc.Recorder.lc_finished) lc.Recorder.lc_runs
        lc.Recorder.lc_preempts lc.Recorder.lc_yields lc.Recorder.lc_blocks
        lc.Recorder.lc_steals (ms lc.Recorder.lc_run_time))
    r.r_lifecycles;
  Printf.printf "\npreemption-latency attribution (mean us per stage)\n";
  if r.r_rows = [] then Printf.printf "  no completed preemption chains\n"
  else begin
    Printf.printf "  %4s %4s %14s %16s %13s %9s\n" "uid" "n" "fire->handler"
      "handler->switch" "switch->run" "total";
    List.iter
      (fun rw ->
        Printf.printf "  %4d %4d %14.2f %16.2f %13.2f %9.2f\n" rw.rw_uid
          rw.rw_n
          (us rw.rw_fire_to_handler)
          (us rw.rw_handler_to_switch)
          (us rw.rw_switch_to_run) (us rw.rw_total))
      r.r_rows
  end;
  (match r.r_consistency with
  | None -> ()
  | Some c ->
      Printf.printf
        "\nconsistency: %d chain(s) vs %d histogram sample(s); stage-sum p50 \
         = %.2f us, sig_to_switch p50 = %.2f us (%s)\n"
        c.cs_chains c.cs_samples (us c.cs_chain_p50) (us c.cs_hist_p50)
        (match c.cs_bucket_distance with
        | 0 -> "same bucket"
        | 1 -> "adjacent buckets"
        | d -> Printf.sprintf "%d buckets apart" d));
  (match r.r_steals with
  | None -> ()
  | Some s ->
      Printf.printf
        "\nsub-pool steal attribution: %d local, %d cross-pool overflow\n"
        s.ss_local s.ss_overflow;
      List.iter
        (fun (thief, victim, n) ->
          Printf.printf "  sub-pool %d stole %d task(s) from sub-pool %d\n"
            thief n victim)
        s.ss_pairs;
      if s.ss_batches <> [] then begin
        let raids = List.fold_left (fun acc (_, n) -> acc + n) 0 s.ss_batches in
        let tasks =
          List.fold_left (fun acc (size, n) -> acc + (size * n)) 0 s.ss_batches
        in
        Printf.printf
          "  batch sizes: %d raid(s) carried %d task(s) (%.2f per raid)\n"
          raids tasks
          (float_of_int tasks /. float_of_int (max 1 raids));
        List.iter
          (fun (size, n) ->
            Printf.printf "    size %2d: %d raid(s)\n" size n)
          s.ss_batches
      end);
  (match r.r_quanta with
  | None -> ()
  | Some q ->
      Printf.printf
        "\nadaptive-quantum attribution: %d change(s) (%d shrink, %d grow)\n"
        q.qs_changes q.qs_shrinks q.qs_grows;
      List.iter
        (fun row ->
          Printf.printf
            "  worker %d: %d change(s), quantum %s..%s ms, last %s ms\n"
            row.qr_worker row.qr_changes (ms row.qr_min) (ms row.qr_max)
            (ms row.qr_last))
        q.qs_rows);
  (match r.r_spans with
  | None -> ()
  | Some s ->
      Printf.printf
        "\nper-request spans: %d request(s), %d complete, %d/%d verified \
         (stage sum = measured sojourn, bucket-for-bucket)\n"
        s.spn_requests s.spn_complete s.spn_verified s.spn_complete;
      let stage name h =
        if Metrics.Hist.count h > 0 then
          Printf.printf
            "  %-9s n=%-6d mean %9.1f us  p50 %9.1f us  p99 %9.1f us\n" name
            (Metrics.Hist.count h)
            (us (Metrics.Hist.mean h))
            (us (Metrics.Hist.quantile h 50.0))
            (us (Metrics.Hist.quantile h 99.0))
      in
      stage "queueing" s.spn_queue;
      stage "service" s.spn_service;
      stage "overhead" s.spn_overhead;
      stage "sojourn" s.spn_total;
      let rec take n = function
        | x :: tl when n > 0 -> x :: take (n - 1) tl
        | _ -> []
      in
      (match take 5 s.spn_rows with
      | [] -> ()
      | worst ->
          Printf.printf "  slowest requests (us): %6s %5s %9s %9s %9s %8s %s\n"
            "req" "class" "queue" "service" "overhead" "preempts" "ok";
          List.iter
            (fun row ->
              Printf.printf
                "                         %6d %5d %9.1f %9.1f %9.1f %8d %s\n"
                row.sr_req row.sr_class (us row.sr_queue) (us row.sr_service)
                (us row.sr_overhead) row.sr_preempts
                (if row.sr_exact then "=" else "~"))
            worst));
  Printf.printf "\nanomalies: %s\n"
    (if r.r_anomalies = [] then "none"
     else
       String.concat "\n  "
         ("" :: List.map Recorder.anomaly_to_string r.r_anomalies))

(* Minimal JSON emission; NaN (open spans, lost spawns) maps to null. *)
let jf v =
  if Float.is_nan v then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let jstr s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let to_json r =
  let b = Buffer.create 4096 in
  let lc_json (lc : Recorder.lifecycle) =
    Printf.sprintf
      "{\"uid\":%d,\"spawned\":%s,\"finished\":%s,\"runs\":%d,\"preempts\":%d,\"yields\":%d,\"blocks\":%d,\"steals\":%d,\"run_time\":%s}"
      lc.Recorder.lc_uid (jf lc.Recorder.lc_spawned)
      (jf lc.Recorder.lc_finished) lc.Recorder.lc_runs lc.Recorder.lc_preempts
      lc.Recorder.lc_yields lc.Recorder.lc_blocks lc.Recorder.lc_steals
      (jf lc.Recorder.lc_run_time)
  in
  let chain_json (c : Recorder.chain) =
    Printf.sprintf
      "{\"worker\":%d,\"uid\":%d,\"next_uid\":%d,\"mode\":%d,\"t0\":%s,\"fire_to_handler\":%s,\"handler_to_switch\":%s,\"switch_to_run\":%s,\"total\":%s}"
      c.Recorder.at_worker c.Recorder.at_uid c.Recorder.at_next_uid
      c.Recorder.at_mode (jf c.Recorder.at_t0)
      (jf c.Recorder.at_fire_to_handler)
      (jf c.Recorder.at_handler_to_switch)
      (jf c.Recorder.at_switch_to_run)
      (jf (Recorder.chain_total c))
  in
  Buffer.add_string b "{";
  Buffer.add_string b
    (Printf.sprintf
       "\"events\":%d,\"rings\":%d,\"capacity\":%d,\"emitted\":%d,\"overwritten\":[%s],"
       (Array.length r.r_events) r.r_rings r.r_capacity r.r_emitted
       (String.concat ","
          (Array.to_list (Array.map string_of_int r.r_overwritten))));
  Buffer.add_string b "\"lifecycles\":[";
  Buffer.add_string b
    (String.concat "," (List.map lc_json r.r_lifecycles));
  Buffer.add_string b "],\"chains\":[";
  Buffer.add_string b (String.concat "," (List.map chain_json r.r_chains));
  Buffer.add_string b "],\"anomalies\":[";
  Buffer.add_string b
    (String.concat ","
       (List.map
          (fun a -> jstr (Recorder.anomaly_to_string a))
          r.r_anomalies));
  Buffer.add_string b "]";
  (match r.r_consistency with
  | None -> ()
  | Some c ->
      Buffer.add_string b
        (Printf.sprintf
           ",\"consistency\":{\"chains\":%d,\"samples\":%d,\"chain_p50\":%s,\"hist_p50\":%s,\"bucket_distance\":%d}"
           c.cs_chains c.cs_samples (jf c.cs_chain_p50) (jf c.cs_hist_p50)
           c.cs_bucket_distance));
  (match r.r_steals with
  | None -> ()
  | Some s ->
      Buffer.add_string b
        (Printf.sprintf
           ",\"steals\":{\"local\":%d,\"overflow\":%d,\"pairs\":[%s],\"batches\":[%s]}"
           s.ss_local s.ss_overflow
           (String.concat ","
              (List.map
                 (fun (t, v, n) ->
                   Printf.sprintf
                     "{\"thief\":%d,\"victim\":%d,\"count\":%d}" t v n)
                 s.ss_pairs))
           (String.concat ","
              (List.map
                 (fun (size, n) ->
                   Printf.sprintf "{\"size\":%d,\"count\":%d}" size n)
                 s.ss_batches))));
  (match r.r_quanta with
  | None -> ()
  | Some q ->
      Buffer.add_string b
        (Printf.sprintf
           ",\"quanta\":{\"changes\":%d,\"shrinks\":%d,\"grows\":%d,\"workers\":[%s]}"
           q.qs_changes q.qs_shrinks q.qs_grows
           (String.concat ","
              (List.map
                 (fun row ->
                   Printf.sprintf
                     "{\"worker\":%d,\"changes\":%d,\"min\":%s,\"max\":%s,\"last\":%s}"
                     row.qr_worker row.qr_changes (jf row.qr_min)
                     (jf row.qr_max) (jf row.qr_last))
                 q.qs_rows))));
  (match r.r_spans with
  | None -> ()
  | Some s ->
      let stage h =
        if Metrics.Hist.count h = 0 then "null"
        else
          Printf.sprintf "{\"n\":%d,\"mean\":%s,\"p50\":%s,\"p99\":%s}"
            (Metrics.Hist.count h)
            (jf (Metrics.Hist.mean h))
            (jf (Metrics.Hist.quantile h 50.0))
            (jf (Metrics.Hist.quantile h 99.0))
      in
      Buffer.add_string b
        (Printf.sprintf
           ",\"spans\":{\"requests\":%d,\"complete\":%d,\"verified\":%d,\"queueing\":%s,\"service\":%s,\"overhead\":%s,\"sojourn\":%s}"
           s.spn_requests s.spn_complete s.spn_verified (stage s.spn_queue)
           (stage s.spn_service) (stage s.spn_overhead) (stage s.spn_total)));
  Buffer.add_string b "}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Smoke checks ([repro observe --smoke], wired into @obs-smoke)       *)
(* ------------------------------------------------------------------ *)

let smoke ~spawned r =
  let check cond fmt =
    Printf.ksprintf (fun msg -> if cond then Ok () else Error msg) fmt
  in
  let ( let* ) = Result.bind in
  let* () =
    check (Array.length r.r_events > 0) "no events retained in the ring"
  in
  let* () =
    List.fold_left
      (fun acc uid ->
        let* () = acc in
        match
          List.find_opt
            (fun lc -> lc.Recorder.lc_uid = uid)
            r.r_lifecycles
        with
        | None -> Error (Printf.sprintf "ULT %d has no lifecycle" uid)
        | Some lc ->
            check
              (lc.Recorder.lc_runs > 0 && lc.Recorder.lc_spans <> [])
              "ULT %d lifecycle is empty (%d runs, %d spans)" uid
              lc.Recorder.lc_runs
              (List.length lc.Recorder.lc_spans))
      (Ok ()) spawned
  in
  let* () =
    check (r.r_chains <> []) "no completed preemption-attribution chains"
  in
  let* () =
    match r.r_consistency with
    | None -> Error "no live metrics to cross-check against"
    | Some c ->
        let* () =
          check (c.cs_chains = c.cs_samples)
            "chain count %d <> sig_to_switch sample count %d" c.cs_chains
            c.cs_samples
        in
        check
          (c.cs_bucket_distance <= 1)
          "stage-sum p50 %.3g and histogram p50 %.3g are %d buckets apart"
          c.cs_chain_p50 c.cs_hist_p50 c.cs_bucket_distance
  in
  let json = Chrome_trace.to_json (Chrome_trace.of_flight r.r_events) in
  match Chrome_trace.validate json with
  | Ok n -> check (n > 0) "flight-record Chrome trace is empty"
  | Error e -> Error (Printf.sprintf "flight-record Chrome trace invalid: %s" e)
