(* Pluggable sub-pool schedulers for the real fiber runtime.

   A sub-pool (Sched) owns one scheduler instance covering its member
   workers, addressed by *slot* — the member's index within the
   sub-pool, not its global worker id.  Callers outside the sub-pool
   (targeted spawns, cross-sub-pool wakes, overflow thieves) pass
   [slot = -1]; every implementation must make that path safe from any
   domain.  The contract per operation:

   - [push ~slot ~prio]: make a task runnable.  [slot >= 0] is the
     owning member's fast path; [slot = -1] is an external submission.
     [prio] is a hint only the priority scheduler reads ([> 0] = in-situ
     analysis work).
   - [push_front ~slot ~prio]: re-queue a yielded task such that it does
     not run before other pending local work (yield must give way).
   - [pop ~slot]: the member's own next task; owner-only.
   - [steal ~slot ~rng]: take a task another member made runnable
     ([slot >= 0]), or — with [slot = -1] — hand one to a foreign
     worker (cross-sub-pool overflow).  [rng ()] returns a fresh
     non-negative pseudo-random int for victim selection.
   - [steal_batch ~slot ~rng ~max ~spill]: like [steal], but claim up
     to [max] tasks from one victim in a single raid: the first is
     returned, the rest go to [spill] in queue order.  [spill] must
     never be invoked with an internal lock held (the runtime's spill
     re-enters [push] on the thief's own scheduler; a held victim lock
     would build a thief->victim lock cycle across workers raiding
     each other).  Implementations cap the batch at half the victim's
     run so the victim stays supplied.
   - [steal_from ~victim]: directed steal from one member's queue
     ([0 <= victim < slots]), for joiners leapfrogging on the worker
     that published the work they are waiting for.  Never touches
     analysis (aux) work.
   - [length]: racy size snapshot (diagnostics / idleness heuristics),
     never negative.

   Three policies ship, all behind the same [SCHEDULER] interface:
   [Ws] (the Chase–Lev work stealing the flat pool always had) and
   ports of the paper's two simulated schedulers, [Packing]
   (lib/core/sched_packing.ml, Algorithm 1) and [Priority]
   (lib/core/sched_priority.ml, §4.3 in-situ).  The latter two trade
   the lock-free fast path for the paper's pool structures — a mutex
   per FIFO pool is fine off the default path. *)

type task = unit -> unit

module type SCHEDULER = sig
  type t

  val name : string

  val create : slots:int -> t

  val push : t -> slot:int -> prio:int -> task -> unit

  val push_front : t -> slot:int -> prio:int -> task -> unit

  val pop : t -> slot:int -> task option

  val steal : t -> slot:int -> rng:(unit -> int) -> task option

  val steal_batch :
    t ->
    slot:int ->
    rng:(unit -> int) ->
    max:int ->
    spill:(task -> unit) ->
    task option

  val steal_from : t -> victim:int -> task option

  val length : t -> int
end

(* ------------------------------------------------------------------ *)
(* Work stealing: one Chase–Lev deque per member (lock-free, LIFO owner
   end, FIFO thief end).  External pushes cannot enter a Chase–Lev ring
   (the owner end admits a single producer), so they land in the front
   segment of a round-robin-chosen deque, where both the member and any
   thief will find them. *)

module Ws : SCHEDULER = struct
  type t = { deques : task Deque.t array; ext : int Atomic.t }

  let name = "ws"

  let create ~slots =
    { deques = Array.init slots (fun _ -> Deque.create ()); ext = Atomic.make 0 }

  let ext_slot t = Atomic.fetch_and_add t.ext 1 mod Array.length t.deques

  let push t ~slot ~prio:_ x =
    if slot >= 0 then Deque.push t.deques.(slot) x
    else Deque.push_front t.deques.(ext_slot t) x

  let push_front t ~slot ~prio:_ x =
    if slot >= 0 then Deque.push_front t.deques.(slot) x
    else Deque.push_front t.deques.(ext_slot t) x

  let pop t ~slot = Deque.pop t.deques.(slot)

  (* Random probes first (contention spread), then a deterministic
     sweep so no runnable task can be missed by an idle member.
     [take] is the per-victim raid (single steal or a batched one). *)
  let raid t ~slot ~rng ~take =
    let n = Array.length t.deques in
    let rec probe k =
      if k = 0 then None
      else
        let v = rng () mod n in
        if v = slot then probe (k - 1)
        else
          match take t.deques.(v) with
          | Some _ as r -> r
          | None -> probe (k - 1)
    in
    match probe (2 * n) with
    | Some _ as r -> r
    | None ->
        let rec sweep i =
          if i = n then None
          else if i = slot then sweep (i + 1)
          else
            match take t.deques.(i) with
            | Some _ as r -> r
            | None -> sweep (i + 1)
        in
        sweep 0

  let steal t ~slot ~rng = raid t ~slot ~rng ~take:Deque.steal

  (* The deque's own steal-half does the batching: one raid claims up
     to half the victim's run, lock-free ([spill] runs with no lock
     held by construction). *)
  let steal_batch t ~slot ~rng ~max ~spill =
    raid t ~slot ~rng ~take:(fun d -> Deque.steal_batch d ~max ~spill)

  let steal_from t ~victim = Deque.steal t.deques.(victim)

  let length t = Array.fold_left (fun acc d -> acc + Deque.length d) 0 t.deques
end

(* ------------------------------------------------------------------ *)
(* Mutex-protected FIFO pool, the building block of the two ported
   simulator schedulers. *)

module Lq = struct
  type 'a t = { m : Mutex.t; q : 'a Queue.t }

  let create () = { m = Mutex.create (); q = Queue.create () }

  let push t x =
    Mutex.lock t.m;
    Queue.add x t.q;
    Mutex.unlock t.m

  let pop t =
    Mutex.lock t.m;
    let r = Queue.take_opt t.q in
    Mutex.unlock t.m;
    r

  let length t =
    Mutex.lock t.m;
    let n = Queue.length t.q in
    Mutex.unlock t.m;
    n

  (* Batched pop: up to [max] items, capped at half the queue (the
     steal-half policy), in one lock hold.  Extras are *returned*
     (oldest first) rather than spilled under the lock, so the caller
     can re-push them on its own scheduler without holding this
     mutex — raiding workers spilling into each other while holding
     victim locks would otherwise form a lock cycle. *)
  let pop_batch t ~max =
    Mutex.lock t.m;
    let r = Queue.take_opt t.q in
    let extras =
      match r with
      | None -> []
      | Some _ ->
          let want =
            Stdlib.min (max - 1) ((Queue.length t.q + 1) / 2)
          in
          let rec take k acc =
            if k = 0 then List.rev acc
            else
              match Queue.take_opt t.q with
              | Some x -> take (k - 1) (x :: acc)
              | None -> List.rev acc
          in
          take want []
    in
    Mutex.unlock t.m;
    (r, extras)
end

(* Thread packing (port of lib/core/sched_packing.ml, Algorithm 1):
   each member owns a private FIFO pool; external work enters a shared
   pool; a member alternates private-first and shared-first phases per
   consultation so neither side starves.  Steals drain the shared pool
   before raiding a sibling's private pool. *)

module Packing : SCHEDULER = struct
  type t = {
    priv : task Lq.t array;
    shared : task Lq.t;
    (* Per-slot phase toggle; each cell is owner-written only. *)
    phase : bool array;
  }

  let name = "packing"

  let create ~slots =
    {
      priv = Array.init slots (fun _ -> Lq.create ());
      shared = Lq.create ();
      phase = Array.make slots false;
    }

  let push t ~slot ~prio:_ x =
    if slot >= 0 then Lq.push t.priv.(slot) x else Lq.push t.shared x

  (* FIFO pools: the back of the own pool is already behind all other
     local work, so a yield re-queue is a plain push. *)
  let push_front = push

  let pop t ~slot =
    let shared_first = t.phase.(slot) in
    t.phase.(slot) <- not shared_first;
    if shared_first then
      match Lq.pop t.shared with None -> Lq.pop t.priv.(slot) | r -> r
    else
      match Lq.pop t.priv.(slot) with None -> Lq.pop t.shared | r -> r

  let steal t ~slot ~rng =
    match Lq.pop t.shared with
    | Some _ as r -> r
    | None ->
        let n = Array.length t.priv in
        let start = rng () mod n in
        let rec sweep k =
          if k = n then None
          else
            let v = (start + k) mod n in
            if v = slot then sweep (k + 1)
            else
              match Lq.pop t.priv.(v) with
              | Some _ as r -> r
              | None -> sweep (k + 1)
        in
        sweep 0

  (* Batched raid: drain up to half of one pool — shared first, then a
     sibling's private pool — in a single lock hold, spilling the
     extras only after the victim mutex is released. *)
  let steal_batch t ~slot ~rng ~max ~spill =
    let finish (r, extras) =
      List.iter spill extras;
      r
    in
    match Lq.pop_batch t.shared ~max with
    | (Some _, _) as hit -> finish hit
    | None, _ ->
        let n = Array.length t.priv in
        let start = rng () mod n in
        let rec sweep k =
          if k = n then None
          else
            let v = (start + k) mod n in
            if v = slot then sweep (k + 1)
            else
              match Lq.pop_batch t.priv.(v) ~max with
              | (Some _, _) as hit -> finish hit
              | None, _ -> sweep (k + 1)
        in
        sweep 0

  let steal_from t ~victim = Lq.pop t.priv.(victim)

  let length t =
    Lq.length t.shared + Array.fold_left (fun a q -> a + Lq.length q) 0 t.priv
end

(* In-situ priority (port of lib/core/sched_priority.ml, §4.3):
   [prio <= 0] (simulation) enters a member's main FIFO and may be
   stolen; [prio > 0] (in-situ analysis) runs only when no main work is
   in reach and is never handed to a cross-sub-pool thief — analysis
   stays inside the sub-pool, where its data is.

   Analysis routing depends on who pushes.  A member's own analysis
   work ([slot >= 0]) enters its private aux LIFO.  An *external*
   analysis submission ([slot = -1]) enters a sub-pool-shared aux
   stack instead: a private aux is only ever drained by its owner, so
   parking an external task there would strand it whenever the wakeup
   (one signal to an arbitrary sleeper) lands on a different member —
   the shared stack is reachable from every member's steal path. *)

module Priority : SCHEDULER = struct
  type stack = { sm : Mutex.t; mutable items : task list }

  type t = {
    main : task Lq.t array;
    aux : stack array;
    shared_aux : stack;
    ext : int Atomic.t;
  }

  let name = "priority"

  let create ~slots =
    {
      main = Array.init slots (fun _ -> Lq.create ());
      aux = Array.init slots (fun _ -> { sm = Mutex.create (); items = [] });
      shared_aux = { sm = Mutex.create (); items = [] };
      ext = Atomic.make 0;
    }

  let aux_push s x =
    Mutex.lock s.sm;
    s.items <- x :: s.items;
    Mutex.unlock s.sm

  let aux_pop s =
    Mutex.lock s.sm;
    let r =
      match s.items with
      | [] -> None
      | x :: r ->
          s.items <- r;
          Some x
    in
    Mutex.unlock s.sm;
    r

  let aux_length s =
    Mutex.lock s.sm;
    let n = List.length s.items in
    Mutex.unlock s.sm;
    n

  let push t ~slot ~prio x =
    if prio > 0 then
      aux_push (if slot >= 0 then t.aux.(slot) else t.shared_aux) x
    else
      let h =
        if slot >= 0 then slot
        else Atomic.fetch_and_add t.ext 1 mod Array.length t.main
      in
      Lq.push t.main.(h) x

  (* Yield re-queue: main work goes to the back of its FIFO (behind
     local work); analysis work re-enters its LIFO, matching the
     simulator's on_yielded. *)
  let push_front = push

  let pop t ~slot = Lq.pop t.main.(slot)

  (* Aux only once no main work is reachable, and only for a member
     ([slot >= 0]): analysis never leaves the sub-pool.  Own LIFO
     first (its data is hot here), then the shared stack, so whichever
     member the pusher's single wakeup lands on can serve an external
     analysis submission. *)
  let aux_fallback t ~slot =
    if slot >= 0 then
      match aux_pop t.aux.(slot) with
      | Some _ as r -> r
      | None -> aux_pop t.shared_aux
    else None

  let steal t ~slot ~rng =
    let n = Array.length t.main in
    let start = rng () mod n in
    let rec sweep k =
      if k = n then None
      else
        let v = (start + k) mod n in
        if v = slot then sweep (k + 1)
        else
          match Lq.pop t.main.(v) with
          | Some _ as r -> r
          | None -> sweep (k + 1)
    in
    match sweep 0 with
    | Some _ as r -> r
    | None -> aux_fallback t ~slot

  (* Only main (simulation) FIFOs are batched; analysis work is taken
     one task at a time — batching a LIFO whose whole point is running
     where its data is would bulk-migrate it away.  Extras spill after
     the victim mutex is released (see [Lq.pop_batch]). *)
  let steal_batch t ~slot ~rng ~max ~spill =
    let n = Array.length t.main in
    let start = rng () mod n in
    let rec sweep k =
      if k = n then None
      else
        let v = (start + k) mod n in
        if v = slot then sweep (k + 1)
        else
          match Lq.pop_batch t.main.(v) ~max with
          | Some _ as r, extras ->
              List.iter spill extras;
              r
          | None, _ -> sweep (k + 1)
    in
    match sweep 0 with
    | Some _ as r -> r
    | None -> aux_fallback t ~slot

  let steal_from t ~victim = Lq.pop t.main.(victim)

  let length t =
    Array.fold_left (fun a q -> a + Lq.length q) 0 t.main
    + Array.fold_left (fun a s -> a + aux_length s) 0 t.aux
    + aux_length t.shared_aux
end

(* ------------------------------------------------------------------ *)
(* First-class plumbing. *)

type t = (module SCHEDULER)

let ws : t = (module Ws)

let packing : t = (module Packing)

let priority : t = (module Priority)

let name (module S : SCHEDULER) = S.name

let builtin = [ ws; packing; priority ]

let of_name n = List.find_opt (fun s -> name s = n) builtin

(* A scheduler instantiated for one sub-pool: the state is closed over
   once at pool construction, so the runtime's hot path pays a single
   indirect call per operation instead of unpacking a first-class
   module. *)
type instance = {
  i_name : string;
  i_push : slot:int -> prio:int -> task -> unit;
  i_push_front : slot:int -> prio:int -> task -> unit;
  i_pop : slot:int -> task option;
  i_steal : slot:int -> rng:(unit -> int) -> task option;
  i_steal_batch :
    slot:int -> rng:(unit -> int) -> max:int -> spill:(task -> unit) -> task option;
  i_steal_from : victim:int -> task option;
  i_length : unit -> int;
}

let instantiate (module S : SCHEDULER) ~slots =
  if slots < 1 then invalid_arg "Scheduler.instantiate: slots < 1";
  let st = S.create ~slots in
  {
    i_name = S.name;
    i_push = (fun ~slot ~prio x -> S.push st ~slot ~prio x);
    i_push_front = (fun ~slot ~prio x -> S.push_front st ~slot ~prio x);
    i_pop = (fun ~slot -> S.pop st ~slot);
    i_steal = (fun ~slot ~rng -> S.steal st ~slot ~rng);
    i_steal_batch =
      (fun ~slot ~rng ~max ~spill -> S.steal_batch st ~slot ~rng ~max ~spill);
    i_steal_from = (fun ~victim -> S.steal_from st ~victim);
    i_length = (fun () -> S.length st);
  }
