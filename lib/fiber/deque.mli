(** Lock-free work-stealing deque (Chase–Lev).

    The owner pushes and pops at the back (LIFO, cache-friendly);
    thieves steal from the front (FIFO, oldest work first).  No
    operation takes a lock: the owner synchronizes with thieves through
    two atomic indices, with a single CAS only on the last-element race;
    thieves claim elements by CASing the steal index.  See the
    implementation header for the memory-ordering argument and
    docs/INTERNALS.md ("Real runtime hot paths") for how the scheduler
    leans on it. *)

type 'a t

val create : unit -> 'a t

(** Owner only. *)
val push : 'a t -> 'a -> unit

(** Push at the thief end: thieves take it before anything pushed with
    {!push}, and the owner reaches it only after everything pushed with
    {!push} (used for yields, so a yielding fiber goes behind all other
    local work).  Callable from any domain; lands in a CAS-swapped side
    segment, not the Chase–Lev ring. *)
val push_front : 'a t -> 'a -> unit

(** Owner end. *)
val pop : 'a t -> 'a option

(** Thief end.  Callable from any domain; returns [None] only when the
    deque was observed empty (internal CAS races retry). *)
val steal : 'a t -> 'a option

(** Batched steal ("steal-half").  [steal_batch t ~max ~spill] claims
    up to [max] elements, capped at half the run observed when the
    claim starts, from the thief end: the oldest is returned, every
    further one is passed to [spill] in ring (FIFO) order.  Callable
    from any domain; each element is claimed by the same validated
    single-index CAS as {!steal} (see the implementation header for
    why a one-shot range claim would be unsound against the owner's
    lock-free pop), so exactly-once delivery is preserved under any
    interleaving with the owner and other thieves.  A front-segment
    element (yield re-queue) is never batched: if one is pending it is
    returned alone.  [max <= 1] degrades to {!steal}. *)
val steal_batch : 'a t -> max:int -> spill:('a -> unit) -> 'a option

(** Snapshot of the atomic indices plus the front-segment count.
    Exact when no other domain is operating on the deque; under
    concurrency it is an approximation (indices are read one after the
    other), suitable for victim selection and diagnostics only. *)
val length : 'a t -> int
