(** Adaptive preemption-quantum controller: a {e pure} function from a
    queueing-pressure snapshot to the next per-worker quantum
    (LibPreemptible-style adaptive user-space scheduling).

    The ticker thread of an adaptive pool ({!Config.make}
    [~adaptive:true]) calls {!next} once per expired per-worker
    deadline; because the controller is a pure function of [stats],
    its shrink/grow/clamp behaviour is pinned deterministically by
    [test/test_serve.ml] with hand-built snapshot sequences — no wall
    clock or domains involved.  Re-exported as [Serve.Quantum]. *)

type stats = {
  q_current : float;  (** the worker's quantum as of the last decision *)
  q_base : float;  (** the configured [preempt_interval] *)
  q_min : float;  (** floor ([Config.quantum_min]) *)
  q_max : float;  (** ceiling ([Config.quantum_max]) *)
  q_depth : int;  (** run-queue depth of the worker's sub-pool *)
  q_members : int;  (** workers serving that sub-pool *)
}

(** The next quantum, always within [[q_min, q_max]]:

    - [q_depth > 0] (loaded): [q_current / (1 + q_depth/q_members)] —
      monotone in queue depth (deeper queue, equal-or-shorter quantum)
      and proportional to the per-worker backlog;
    - [q_depth = 0] (idle): half the gap back toward [q_base] per
      decision, snapping onto [q_base] once within 1%. *)
val next : stats -> float

(** Bound defaults when the config leaves them unset: [base /. 8.] and
    [base] respectively. *)
val default_min : base:float -> float

val default_max : base:float -> float
