(* Adaptive preemption-quantum controller — a pure function from a
   queueing-pressure snapshot to the next per-worker quantum, in the
   spirit of LibPreemptible's fast adaptive user-space scheduling: the
   quantum shrinks multiplicatively while the worker's sub-pool has a
   run-queue backlog (more frequent preemption protects the tail of
   short requests queued behind long ones) and decays geometrically
   back toward the configured base interval once the backlog drains.

   Purity is the point: the ticker thread in [Sched] feeds it live
   snapshots, while test_serve feeds it hand-built sequences and pins
   shrink/grow/clamp behaviour with no wall clock or domains involved. *)

type stats = {
  q_current : float;  (* the worker's quantum as of the last decision *)
  q_base : float;  (* the configured preempt_interval *)
  q_min : float;  (* floor (Config.quantum_min) *)
  q_max : float;  (* ceiling (Config.quantum_max) *)
  q_depth : int;  (* run-queue depth of the worker's sub-pool *)
  q_members : int;  (* workers serving that sub-pool *)
}

let clamp s v = Float.max s.q_min (Float.min s.q_max v)

(* Loaded: divide the quantum by (1 + depth/members).  Dividing by the
   per-worker backlog makes the response monotone in queue depth —
   deeper queues always mean an equal-or-shorter next quantum — and
   proportional: one queued task halves the quantum of a 1-worker
   sub-pool but barely moves an 8-worker one.

   Idle: close half the gap to the base interval per decision (snapping
   exactly onto the base once within 1%), so a pressure spike decays in
   a few ticks instead of lingering at the floor. *)
let next s =
  if s.q_depth <= 0 then begin
    let toward = s.q_current +. ((s.q_base -. s.q_current) /. 2.0) in
    let toward =
      if Float.abs (toward -. s.q_base) <= 0.01 *. s.q_base then s.q_base
      else toward
    in
    clamp s toward
  end
  else
    let pressure =
      float_of_int s.q_depth /. float_of_int (Stdlib.max 1 s.q_members)
    in
    clamp s (s.q_current /. (1.0 +. pressure))

(* Defaults used when Config leaves the bounds unset: the ceiling is
   the base interval itself and the floor is base/8 — one eighth keeps
   the adaptive ticker's extra wakeups bounded while still cutting the
   worst-case hold time of a long fiber by ~an order of magnitude. *)
let default_min ~base = base /. 8.0

let default_max ~base = base
