(** Pluggable sub-pool schedulers for the real fiber runtime.

    Every sub-pool of a {!Sched.pool} carries one scheduler instance
    over its member workers.  Members are addressed by {e slot} — the
    worker's index within the sub-pool — and non-members (targeted
    spawns, cross-sub-pool wakes, overflow thieves) pass [slot = -1];
    implementations must make the external path safe from any domain.

    Three policies ship behind the same interface: {!ws} (the Chase–Lev
    work stealing the flat pool always had), and ports of the paper's
    simulated schedulers {!packing} (thread packing, Algorithm 1 /
    [lib/core/sched_packing.ml]) and {!priority} (§4.3 in-situ
    priorities / [lib/core/sched_priority.ml]).  Custom policies plug
    in by implementing {!SCHEDULER} and passing the packed module to
    {!Config.subpool}. *)

type task = unit -> unit

module type SCHEDULER = sig
  type t

  val name : string
  (** Stable identifier, reported by {!Sched.stats}. *)

  val create : slots:int -> t
  (** Fresh state for a sub-pool of [slots] members. *)

  val push : t -> slot:int -> prio:int -> task -> unit
  (** Make a task runnable.  [slot >= 0] is the owning member's fast
      path; [slot = -1] an external submission (any domain).  [prio] is
      a hint only priority-aware schedulers read ([> 0] = in-situ
      analysis work). *)

  val push_front : t -> slot:int -> prio:int -> task -> unit
  (** Re-queue a yielded task such that it does not run before other
      pending local work (yield must give way). *)

  val pop : t -> slot:int -> task option
  (** The member's own next task; owner-only, [slot >= 0]. *)

  val steal : t -> slot:int -> rng:(unit -> int) -> task option
  (** Take a task another member made runnable ([slot >= 0] skips the
      caller's own slot), or hand one to a foreign worker
      ([slot = -1], cross-sub-pool overflow).  [rng ()] supplies fresh
      non-negative pseudo-random ints for victim selection.  Returning
      [None] means no stealable task was observed. *)

  val steal_batch :
    t ->
    slot:int ->
    rng:(unit -> int) ->
    max:int ->
    spill:(task -> unit) ->
    task option
  (** Like {!steal}, but claim up to [max] tasks from a single victim
      in one raid (capped at half the victim's run, so the victim
      stays supplied): the first is returned, the rest are handed to
      [spill] in queue order.  Implementations must never invoke
      [spill] while holding an internal lock — the runtime's spill
      re-pushes on the thief's own scheduler, and thieves raiding each
      other under held victim locks would form a lock cycle.
      Analysis-priority work ([prio > 0] under {!priority}) is never
      batched.  [max <= 1] behaves as {!steal}. *)

  val steal_from : t -> victim:int -> task option
  (** Directed steal from member [victim]'s own queue
      ([0 <= victim < slots]); used by joiners leapfrogging on the
      worker that published the work they are waiting for.  Never
      serves analysis (aux) work. *)

  val length : t -> int
  (** Racy size snapshot (diagnostics, idleness heuristics); never
      negative. *)
end

type t = (module SCHEDULER)

val ws : t
val packing : t
val priority : t

val name : t -> string

(** The built-in policy registered under that name, if any
    (["ws"], ["packing"], ["priority"]). *)
val of_name : string -> t option

(** {2 Instantiation (used by the runtime)} *)

(** A scheduler instantiated for one sub-pool: state closed over once
    at pool construction, one indirect call per operation. *)
type instance = {
  i_name : string;
  i_push : slot:int -> prio:int -> task -> unit;
  i_push_front : slot:int -> prio:int -> task -> unit;
  i_pop : slot:int -> task option;
  i_steal : slot:int -> rng:(unit -> int) -> task option;
  i_steal_batch :
    slot:int -> rng:(unit -> int) -> max:int -> spill:(task -> unit) -> task option;
  i_steal_from : victim:int -> task option;
  i_length : unit -> int;
}

(** @raise Invalid_argument if [slots < 1]. *)
val instantiate : t -> slots:int -> instance
