(* Worker records are written from two sides: the owner bumps
   [rng_state] on every steal probe while the ticker thread sets
   [preempt] once per interval.  Both get their own cache-line
   neighborhood: the record is padded past 64 bytes so adjacent workers
   in [pool.workers] do not share a line, and each [preempt] atomic is
   allocated with a live filler ([pad_keep]) between it and the next
   worker's atomic so the flags do not end up packed into one line
   either (the filler is reachable from the record, so compaction cannot
   drop it and re-pack the atomics). *)
(* A recyclable fiber record: the free-list currency of the alloc-free
   spawn fast path.  [rc_fiber] is the permanent trampoline closure —
   it (and the effect handler it installs) is allocated once when the
   cell is first created and reused for every subsequent spawn through
   the cell; a recycle-hit spawn only writes the payload field and
   allocates nothing but the promise and the payload pair.  [rc_task]
   holds the ((unit -> Obj.t) * Obj.t promise) pair — body and its
   promise — through [Obj.repr]: the uniform value representation
   makes the punning sound, and the field is only ever read back (in
   the cell's own runner) at the type it was stored at.  One field
   rather than two keeps the spawn fast path at a single write
   barrier: the cell is old, the payload young, and each such store
   costs a ref-table entry the next minor GC must scan.  A cell is
   released back to a free-list exactly once, in the handler's [retc]
   — i.e. when the fiber body has returned and its promise is
   resolved — so a parked free cell is never concurrently live. *)
type rcell = {
  rc_sp : int; (* home sub-pool: the trampoline's handler requeues there *)
  mutable rc_task : Obj.t;
  mutable rc_fiber : unit -> unit;
}

type worker = {
  wid : int;
  w_sp : int; (* owning sub-pool id *)
  w_slot : int; (* index within the sub-pool's scheduler *)
  preempt : bool Atomic.t; (* set by the ticker, cleared at safe points *)
  (* Current preemption quantum in seconds.  Written only by the ticker
     thread (at most once per quantum expiry), read racily by [stats];
     a stale read is fine for diagnostics.  Fixed-interval pools keep it
     pinned at [preempt_interval]; tickerless pools at 0. *)
  mutable w_quantum : float;
  mutable rng_state : int;
  (* Owner-written counters, aggregated racily by [stats] (stale reads
     are fine for diagnostics); keeping them plain avoids shared-atomic
     traffic on the spawn/steal fast paths. *)
  mutable w_spawned : int;
  mutable w_local_steals : int;
  mutable w_overflow_in : int;
  (* Raw-speed pass counters, same discipline: [w_batch_stolen] counts
     the extra tasks a batched raid flushed into this worker's own
     queue (beyond the one returned to run); [w_recycled] /
     [w_recycle_miss] the spawn fast path's free-list hits and misses;
     [w_leapfrog] tasks run inline by a joiner leapfrogging on its
     victim before parking. *)
  mutable w_batch_stolen : int;
  mutable w_recycled : int;
  mutable w_recycle_miss : int;
  mutable w_leapfrog : int;
  (* Dead-fiber free-list (bounded stack, owner-only): spawn pops,
     fiber completion on this worker pushes.  [w_spill] is the cached
     re-push closure handed to batched raids, and [w_pending0] the
     worker's preallocated initial promise state [Pending {pw = [];
     pv = wid}] — immutable, so every locally spawned promise can
     share the one block (the victim hint for leapfrogging). *)
  w_free : rcell array;
  mutable w_free_n : int;
  mutable w_spill : (unit -> unit) -> unit;
  w_pending0 : Obj.t;
  (* Park accounting, owner-written on the park slow path only (the
     spin path never touches them): parks/wakes count condvar sleeps,
     [w_idle_s] accumulates the seconds spent inside them.  The
     telemetry sampler differences [w_idle_s] between sweeps to derive
     utilization. *)
  mutable w_parks : int;
  mutable w_wakes : int;
  mutable w_idle_s : float;
  pad_keep : int array;
  mutable pad0 : int;
  mutable pad1 : int;
  mutable pad2 : int;
  mutable pad3 : int;
}

(* A named sub-pool: a worker subset with its own scheduler instance
   and its own park group.  Parking is per-sub-pool so a push can wake
   a worker that will actually serve it: a member first, else (via
   [notify_push]'s second branch) an overflow-capable sleeper from
   another sub-pool. *)
type subpool = {
  sp_id : int;
  sp_name : string;
  sp_overflow : bool; (* members may steal cross-sub-pool when idle *)
  sp_members : int array; (* global worker ids, slot order *)
  inst : Scheduler.instance;
  sp_lock : Mutex.t; (* held only to park and to signal sleepers *)
  sp_cond : Condition.t;
  sp_epoch : int Atomic.t; (* bumped on every push: lost-wakeup guard *)
  sp_sleepers : int Atomic.t; (* members inside the parking protocol *)
  sp_ext_spawned : int Atomic.t; (* targeted/external submissions *)
  sp_stolen_away : int Atomic.t; (* tasks overflow-stolen from here *)
  (* Shared overflow free-stack for recycled fiber cells homed to this
     sub-pool (Treiber stack, approximately bounded by [sp_free_cap]).
     Touched only when a cell dies away from home or a worker's own
     bounded list is full/empty — the common release/acquire path is
     the owner-only [w_free]. *)
  sp_free : rcell list Atomic.t;
  sp_free_n : int Atomic.t;
  sp_free_cap : int;
}

type pool = {
  workers : worker array;
  subpools : subpool array;
  mutable doms : unit Domain.t list;
  total_sleepers : int Atomic.t; (* sum of all sp_sleepers *)
  shutdown : bool Atomic.t;
  preempt_interval : float option;
  quantum_bounds : (float * float) option; (* (min, max); Some iff adaptive *)
  mutable ticker : Thread.t option;
  preempt_count : int Atomic.t;
  recorder : Preempt_core.Recorder.t;
  rec_t0 : float; (* wall-clock origin of recorder timestamps *)
  telemetry : Preempt_core.Telemetry.t;
  tel_every : int; (* sample every N ticker sweeps *)
}

(* Promise state machine: one atomic word, CAS [Pending -> Resolved /
   Failed].  [resolve] and [await]'s fast path never touch a lock;
   waiters accumulate by CAS-consing onto the pending list and are woken
   in FIFO registration order (the cons list is reversed once on
   resolve).  [pv] is the leapfrogging hint: the global id of the worker
   that spawned the fiber behind this promise (-1 when unknown —
   external submissions, targeted spawns).  A joiner about to park
   raids that worker's queue directly first, on the bet that the work
   it is waiting for (or work feeding it) is still sitting there. *)
type 'a state =
  | Pending of { pw : (unit -> unit) list; pv : int }
  | Resolved of 'a
  | Failed of exn

type 'a promise = 'a state Atomic.t

type _ Effect.t +=
  | Yield : unit Effect.t
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t
  | Suspend_or :
      ((unit -> unit) -> [ `Continue | `Suspended ])
      -> unit Effect.t

(* Which worker the current thread is. *)
let current_worker : (pool * worker) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let self () =
  match Domain.DLS.get current_worker with
  | Some pw -> pw
  | None -> failwith "Fiber: not inside a fiber runtime worker"

(* ------------------------------------------------------------------ *)
(* Wakeups.

   Pushers never broadcast.  Per sub-pool, the protocol against lost
   wakeups is the one the flat pool used:

     pusher:  scheduler push; incr sp_epoch; if sp_sleepers > 0 then
              lock; signal; unlock
     sleeper: incr sp_sleepers (and the pool total); e := sp_epoch;
              full find_task sweep; if still empty: lock; if sp_epoch =
              e then wait; unlock; decr both

   All counters are SC atomics, so either the pusher observes the
   sleeper's [sp_sleepers] increment (and signals under the lock the
   sleeper waits on), or the sleeper's subsequent sweep observes the
   pusher's push — the under-lock [sp_epoch = e] re-check then fails and
   the sleeper retries instead of sleeping.

   The sub-pool twist: when the target sub-pool has no sleeper of its
   own (all members busy) but somebody is parked elsewhere, the pusher
   wakes one overflow-capable sleeper from another sub-pool — its
   re-sweep reaches the task through the cross-sub-pool overflow path.
   That sleeper's own epoch is bumped first so the wake cannot be lost
   to its park-time re-check.  Pools with no sleepers anywhere pay one
   atomic increment and two atomic loads per push — no mutex, no
   condvar. *)

let signal_sp sp =
  Mutex.lock sp.sp_lock;
  Condition.signal sp.sp_cond;
  Mutex.unlock sp.sp_lock

let notify_push pool sp =
  Atomic.incr sp.sp_epoch;
  if Atomic.get sp.sp_sleepers > 0 then signal_sp sp
  else if Atomic.get pool.total_sleepers > 0 then begin
    let sps = pool.subpools in
    let k = Array.length sps in
    let rec wake_other i =
      if i < k then
        let q = sps.(i) in
        if q.sp_id <> sp.sp_id && q.sp_overflow && Atomic.get q.sp_sleepers > 0
        then begin
          Atomic.incr q.sp_epoch;
          signal_sp q
        end
        else wake_other (i + 1)
    in
    wake_other 0
  end

(* Broadcast: only for state visible to *every* worker — shutdown and
   run-completion ([until] flipping), where one targeted signal could
   wake the wrong sleeper and strand the one whose predicate changed. *)
let notify_all pool =
  Array.iter
    (fun sp ->
      Atomic.incr sp.sp_epoch;
      Mutex.lock sp.sp_lock;
      Condition.broadcast sp.sp_cond;
      Mutex.unlock sp.sp_lock)
    pool.subpools

(* Re-queue a task belonging to sub-pool [sp] (yield re-queues, wakes
   after suspension).  Fibers are pinned: no matter which worker runs
   the wake — an overflow thief, a sibling sub-pool's member resolving
   a promise, a non-worker thread — the fiber goes back to its home
   sub-pool, on the fast path when the current worker is a member. *)
let requeue pool sp ~prio ~front task =
  (match Domain.DLS.get current_worker with
  | Some (_, w) when w.w_sp = sp.sp_id ->
      if front then sp.inst.i_push_front ~slot:w.w_slot ~prio task
      else sp.inst.i_push ~slot:w.w_slot ~prio task
  | _ ->
      if front then sp.inst.i_push_front ~slot:(-1) ~prio task
      else sp.inst.i_push ~slot:(-1) ~prio task);
  notify_push pool sp

(* Cheap xorshift for victim selection. *)
let next_rand w =
  let x = w.rng_state in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  w.rng_state <- x land max_int;
  w.rng_state

let record_steal pool w ~thief ~victim ~batch =
  let r = pool.recorder in
  if Preempt_core.Recorder.enabled r then begin
    let ts = Unix.gettimeofday () -. pool.rec_t0 in
    Preempt_core.Recorder.emit r w.wid ts Preempt_core.Recorder.ev_pool_steal
      thief victim;
    Preempt_core.Recorder.emit r w.wid ts Preempt_core.Recorder.ev_steal_batch
      batch victim
  end

(* Batched-raid caps.  A same-sub-pool raid may carry up to
   [batch_local] tasks home in one trip (the deque's steal-half cap
   takes over on short runs, so a victim is never drained past half);
   cross-sub-pool overflow raids stay small — the thief is only
   helping out, and hauling a large batch across the isolation
   boundary would invert the sub-pools' pinning intent. *)
let batch_local = 8
let batch_overflow = 2

(* The steal protocol: own sub-pool first (pop, then same-sub-pool
   batched steal); only a member whose own sub-pool had nothing
   runnable overflows cross-sub-pool — and only if its sub-pool allows
   it.  Raids are batched: the first stolen task is returned to run,
   the rest are flushed into the thief's own slot through [w.w_spill]
   (which also counts them), amortizing victim selection, counters and
   flight events over the whole batch.  Every successful raid is
   attributed: per-worker counters always, an [ev_pool_steal] plus an
   [ev_steal_batch] (batch size, victim sub-pool) flight event when
   the recorder is armed.  After a batch with extras we bump the
   epoch via [notify_push]: the spilled tasks are now stealable from
   our slot, and a sibling mid-park-protocol must not sleep through
   them (we would run them eventually, but a waking sibling drains
   them sooner). *)
let find_task pool w =
  let sp = pool.subpools.(w.w_sp) in
  match sp.inst.i_pop ~slot:w.w_slot with
  | Some _ as r -> r
  | None -> (
      let rng () = next_rand w in
      (* [w_batch_stolen] only moves when a raid returns [Some] (spill
         is never invoked on a failed raid), so one baseline serves
         both the local and the overflow attempts. *)
      let b0 = w.w_batch_stolen in
      match
        sp.inst.i_steal_batch ~slot:w.w_slot ~rng ~max:batch_local
          ~spill:w.w_spill
      with
      | Some _ as r ->
          w.w_local_steals <- w.w_local_steals + 1;
          let batch = 1 + w.w_batch_stolen - b0 in
          if batch > 1 then notify_push pool sp;
          record_steal pool w ~thief:sp.sp_id ~victim:sp.sp_id ~batch;
          r
      | None ->
          let k = Array.length pool.subpools in
          if k > 1 && sp.sp_overflow then begin
            let start = next_rand w mod k in
            let rec overflow i =
              if i = k then None
              else
                let v = pool.subpools.((start + i) mod k) in
                if v.sp_id = sp.sp_id then overflow (i + 1)
                else
                  match
                    v.inst.i_steal_batch ~slot:(-1) ~rng ~max:batch_overflow
                      ~spill:w.w_spill
                  with
                  | Some _ as r ->
                      w.w_overflow_in <- w.w_overflow_in + 1;
                      let batch = 1 + w.w_batch_stolen - b0 in
                      (* Spilled tasks migrated too: each one left [v]. *)
                      for _ = 1 to batch do
                        Atomic.incr v.sp_stolen_away
                      done;
                      if batch > 1 then notify_push pool sp;
                      record_steal pool w ~thief:sp.sp_id ~victim:v.sp_id ~batch;
                      r
                  | None -> overflow (i + 1)
            in
            overflow 0
          end
          else None)

let handler pool sp ~prio =
  let open Effect.Deep in
  {
    retc = (fun () -> ());
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Yield ->
            Some
              (fun (k : (a, unit) continuation) ->
                (* Front of the home scheduler: the owner runs every
                   other local task first, so yield actually gives
                   way. *)
                requeue pool sp ~prio ~front:true (fun () -> continue k ()))
        | Suspend register ->
            Some
              (fun (k : (a, unit) continuation) ->
                register (fun () ->
                    requeue pool sp ~prio ~front:false (fun () -> continue k ())))
        | Suspend_or decide ->
            Some
              (fun (k : (a, unit) continuation) ->
                let wake () =
                  requeue pool sp ~prio ~front:false (fun () -> continue k ())
                in
                match decide wake with
                | `Continue -> continue k ()
                | `Suspended -> ())
        | _ -> None);
  }

let make_fiber pool sp ~prio body =
 fun () -> Effect.Deep.match_with body () (handler pool sp ~prio)

(* ------------------------------------------------------------------ *)
(* Promises. *)

(* The hintless initial state is an immutable static block shared by
   every promise without a victim ([[]] and [-1] are immediates, so
   the constructor is a compile-time constant and the binding stays
   polymorphic). *)
let pending_none = Pending { pw = []; pv = -1 }

let promise () = Atomic.make pending_none

let rec resolve p outcome =
  match Atomic.get p with
  | Pending { pw; _ } as cur ->
      if Atomic.compare_and_set p cur outcome then
        (* [pw] accumulated newest-first; wake in FIFO registration
           order (test_fsync pins this). *)
        List.iter (fun wake -> wake ()) (List.rev pw)
      else resolve p outcome
  | Resolved _ | Failed _ -> ()

let is_resolved p =
  match Atomic.get p with Pending _ -> false | Resolved _ | Failed _ -> true

(* ------------------------------------------------------------------ *)
(* Fiber recycling.

   The spawn fast path reuses a dead fiber's [rcell] instead of
   allocating: a recycle-hit spawn writes the cell's payload pair and
   allocates only the promise and that pair (the promise's initial
   [Pending] block is the spawning worker's shared [w_pending0]),
   then pushes the cell's permanent trampoline.  The lifecycle is

     spawn (pop free-list / miss -> new_cell)
       -> rc_task written, rc_fiber pushed
       -> trampoline runs the body under the cell's handler
       -> body returns, promise resolved
       -> handler [retc] releases the cell (exactly once)
       -> free-list, ready for the next spawn

   A suspended fiber never reaches [retc] — the effect branch stashes
   the continuation and [match_with] returns without it — so a cell is
   only ever parked after its body has fully returned, and nothing can
   alias a cell on a free-list.  Release targets the finishing
   worker's own bounded list when that worker belongs to the cell's
   home sub-pool (cells capture their sub-pool in the trampoline's
   handler, so reuse across sub-pools would requeue yields to the
   wrong place); otherwise the cell's home sub-pool's shared stack. *)

let obj_nil = Obj.repr 0

let dummy_cell = { rc_sp = -1; rc_task = obj_nil; rc_fiber = (fun () -> ()) }

let rec sp_free_push sp cell =
  if Atomic.get sp.sp_free_n < sp.sp_free_cap then begin
    let cur = Atomic.get sp.sp_free in
    if Atomic.compare_and_set sp.sp_free cur (cell :: cur) then
      Atomic.incr sp.sp_free_n
    else sp_free_push sp cell
  end
(* else: drop it — the GC reclaims the cell like any dead fiber *)

let rec sp_free_pop sp =
  match Atomic.get sp.sp_free with
  | [] -> None
  | cell :: rest as cur ->
      if Atomic.compare_and_set sp.sp_free cur rest then begin
        Atomic.decr sp.sp_free_n;
        Some cell
      end
      else sp_free_pop sp

let release_cell pool cell =
  (* Drop the payload reference first so a parked cell never pins the
     dead body or its promise against the GC. *)
  cell.rc_task <- obj_nil;
  match Domain.DLS.get current_worker with
  | Some (_, w) when w.w_sp = cell.rc_sp && w.w_free_n < Array.length w.w_free
    ->
      w.w_free.(w.w_free_n) <- cell;
      w.w_free_n <- w.w_free_n + 1
  | _ -> sp_free_push pool.subpools.(cell.rc_sp) cell

(* A fresh cell — the recycle-miss path.  The runner, the handler and
   the trampoline are allocated once here and amortized over every
   later spawn through the cell.  The payload fields are read back at
   exactly the types the spawn fast path stored them at; the uniform
   value representation makes the [Obj] punning sound (the body's
   ['a] result is passed through untouched as an [Obj.t]). *)
(* Shared terminal state for every body whose result is the immediate
   0 — (), 0, false and None all share that representation, and a
   [Resolved] block is immutable, so one static block serves them
   all.  Recycled promises are often already promoted when they
   resolve (the old cell referenced their payload across a minor GC),
   and a fresh young [Resolved] stored into an old atomic is a
   ref-table entry plus a promotion; the common unit-returning
   fan-out fiber skips both. *)
let resolved_nil : Obj.t state = Resolved obj_nil

let new_cell pool sp =
  let cell = { rc_sp = sp.sp_id; rc_task = obj_nil; rc_fiber = (fun () -> ()) } in
  let runner () =
    let ((body : unit -> Obj.t), (p : Obj.t promise)) = Obj.obj cell.rc_task in
    match body () with
    | v ->
        resolve p (if v == obj_nil then resolved_nil else Resolved v)
    | exception e -> resolve p (Failed e)
  in
  let h =
    let open Effect.Deep in
    { (handler pool sp ~prio:0) with retc = (fun () -> release_cell pool cell) }
  in
  cell.rc_fiber <- (fun () -> Effect.Deep.match_with runner () h);
  cell

let find_sp pool name =
  let sps = pool.subpools in
  let rec go i =
    if i = Array.length sps then
      invalid_arg (Printf.sprintf "Fiber: unknown sub-pool %S" name)
    else if sps.(i).sp_name = name then sps.(i)
    else go (i + 1)
  in
  go 0

(* [hint] is the global id of the spawning worker (the leapfrogging
   victim hint baked into the promise), or -1 for external/targeted
   submissions where no useful victim exists. *)
let spawn_in pool sp ~prio ~slot ~hint body =
  let p =
    if hint >= 0 then Atomic.make (Pending { pw = []; pv = hint })
    else promise ()
  in
  let fiber =
    make_fiber pool sp ~prio (fun () ->
        match body () with
        | v -> resolve p (Resolved v)
        | exception e -> resolve p (Failed e))
  in
  if slot >= 0 then sp.inst.i_push ~slot ~prio fiber
  else begin
    sp.inst.i_push ~slot:(-1) ~prio fiber;
    Atomic.incr sp.sp_ext_spawned
  end;
  notify_push pool sp;
  p

let spawn ?pool:target ?(prio = 0) body =
  let pool, w = self () in
  match target with
  | None ->
      (* Classic fork: a LIFO child of the calling worker, inside the
         caller's own sub-pool. *)
      let sp = pool.subpools.(w.w_sp) in
      w.w_spawned <- w.w_spawned + 1;
      if prio = 0 && Array.length w.w_free > 0 then begin
        (* Recycle fast path: steady-state spawn allocates only the
           promise — the initial [Pending] block is the worker's
           shared [w_pending0] (carrying the victim hint), and the
           fiber record, runner, handler and trampoline all come back
           from the free-list with the cell. *)
        let p = Atomic.make (Obj.magic w.w_pending0 : _ state) in
        let cell =
          if w.w_free_n > 0 then begin
            (* The popped slot is left stale rather than cleared: a
               push always overwrites [w_free.(w_free_n)] before
               bumping the count, so a stale entry is never re-popped,
               and clearing it would cost a write barrier per spawn to
               unpin at most [spawn_freelist] small dead cells. *)
            let i = w.w_free_n - 1 in
            w.w_free_n <- i;
            w.w_recycled <- w.w_recycled + 1;
            w.w_free.(i)
          end
          else
            match sp_free_pop sp with
            | Some c ->
                w.w_recycled <- w.w_recycled + 1;
                c
            | None ->
                w.w_recycle_miss <- w.w_recycle_miss + 1;
                new_cell pool sp
        in
        cell.rc_task <- Obj.repr (body, p);
        sp.inst.i_push ~slot:w.w_slot ~prio:0 cell.rc_fiber;
        notify_push pool sp;
        p
      end
      else spawn_in pool sp ~prio ~slot:w.w_slot ~hint:w.wid body
  | Some name ->
      (* Targeted spawn: a submission to the named sub-pool as a whole.
         It takes the external path even when the caller is a member,
         so it is served like any other incoming request rather than as
         the caller's LIFO child. *)
      spawn_in pool (find_sp pool name) ~prio ~slot:(-1) ~hint:(-1) body

let submit p ?pool:target ?(prio = 0) body =
  let sp = match target with Some name -> find_sp p name | None -> p.subpools.(0) in
  spawn_in p sp ~prio ~slot:(-1) ~hint:(-1) body

(* Leapfrogging cap: a joiner runs at most this many victim tasks
   inline per blocking attempt before falling back to suspension, so a
   deep victim queue cannot starve the joiner's own continuation
   indefinitely once the promise resolves. *)
let leapfrog_budget = 32

(* Before suspending on an unresolved promise, raid the queue of the
   worker that spawned the awaited fiber (the [pv] hint) and run what
   we find inline: the awaited work — or work feeding it — is likely
   still sitting there, and executing it directly both shortens the
   critical path and keeps this worker busy instead of parking.  Only
   same-sub-pool victims are raided (the directed steal goes through
   the sub-pool's scheduler instance, and crossing the boundary would
   bypass the overflow policy); the stolen tasks are complete fibers
   that install their own handlers, so running them inside the
   joiner's stack nests cleanly. *)
let leapfrog p =
  match Atomic.get p with
  | Pending { pv; _ } when pv >= 0 -> (
      match Domain.DLS.get current_worker with
      | Some (pool, w) when pv <> w.wid && pv < Array.length pool.workers ->
          let vw = pool.workers.(pv) in
          if vw.w_sp = w.w_sp then begin
            let sp = pool.subpools.(w.w_sp) in
            let budget = ref leapfrog_budget in
            let more = ref true in
            while !more && !budget > 0 && not (is_resolved p) do
              match sp.inst.i_steal_from ~victim:vw.w_slot with
              | Some task ->
                  w.w_leapfrog <- w.w_leapfrog + 1;
                  decr budget;
                  task ()
              | None -> more := false
            done
          end
      | _ -> ())
  | _ -> ()

let await p =
  let rec value () =
    match Atomic.get p with
    | Resolved v -> v
    | Failed e -> raise e
    | Pending _ ->
        leapfrog p;
        if not (is_resolved p) then
          Effect.perform
            (Suspend
               (fun wake ->
                 let rec register () =
                   match Atomic.get p with
                   | Pending { pw; pv } as cur ->
                       if
                         not
                           (Atomic.compare_and_set p cur
                              (Pending { pw = wake :: pw; pv }))
                       then register ()
                   | Resolved _ | Failed _ -> wake ()
                 in
                 register ()));
        value ()
  in
  value ()

let yield () = Effect.perform Yield

let suspend_or decide = Effect.perform (Suspend_or decide)

let check () =
  let pool, w = self () in
  (* Fast path: one atomic load. *)
  if Atomic.get w.preempt then begin
    Atomic.set w.preempt false;
    Atomic.incr pool.preempt_count;
    yield ()
  end

(* ------------------------------------------------------------------ *)
(* Workers. *)

(* Spin-then-park: a worker that found nothing re-probes a few times
   with exponentially growing [cpu_relax] backoff before touching the
   sub-pool mutex.  Short idle gaps (the common case in fork–join churn)
   resolve without a futex round-trip; persistent idleness parks. *)
let spin_rounds = 8

let backoff round =
  let spins = 1 lsl (if round < 6 then round else 6) in
  for _ = 1 to spins do
    Domain.cpu_relax ()
  done

let worker_loop pool w ~until =
  Domain.DLS.set current_worker (Some (pool, w));
  let sp = pool.subpools.(w.w_sp) in
  let stop () = until () || Atomic.get pool.shutdown in
  (* Returns [None] only when [stop] was observed. *)
  let rec next_task round =
    if stop () then None
    else
      match find_task pool w with
      | Some _ as r -> r
      | None ->
          if round < spin_rounds then begin
            backoff round;
            next_task (round + 1)
          end
          else park ()
  and park () =
    Atomic.incr sp.sp_sleepers;
    Atomic.incr pool.total_sleepers;
    let e = Atomic.get sp.sp_epoch in
    (* Re-sweep after announcing: a pusher that missed our increment
       must have bumped [sp_epoch] first, failing the re-check below.
       The sweep includes the overflow path, so a member only parks
       when no task it may legally take exists anywhere. *)
    match find_task pool w with
    | Some _ as r ->
        Atomic.decr sp.sp_sleepers;
        Atomic.decr pool.total_sleepers;
        r
    | None ->
        Mutex.lock sp.sp_lock;
        if Atomic.get sp.sp_epoch = e && not (stop ()) then begin
          w.w_parks <- w.w_parks + 1;
          let t0 = Unix.gettimeofday () in
          Condition.wait sp.sp_cond sp.sp_lock;
          w.w_idle_s <- w.w_idle_s +. (Unix.gettimeofday () -. t0);
          w.w_wakes <- w.w_wakes + 1
        end;
        Mutex.unlock sp.sp_lock;
        Atomic.decr sp.sp_sleepers;
        Atomic.decr pool.total_sleepers;
        next_task 0
  in
  let rec loop () =
    match next_task 0 with
    | Some task ->
        task ();
        loop ()
    | None -> ()
  in
  loop ();
  Domain.DLS.set current_worker None

let domain_main pool w = worker_loop pool w ~until:(fun () -> false)

(* ------------------------------------------------------------------ *)
(* Telemetry sampling.  The sampler rides the preemption ticker: every
   [pool.tel_every] sweeps it stores one point per worker into the
   telemetry rings (making the ticker thread the rings' single
   writer).  All inputs are racy plain-counter reads — Telemetry
   clamps transients — and utilization is derived by differencing each
   worker's cumulative park-idle seconds against the previous sweep,
   using sampler-private state.  Every [tel_rotate] samples the
   sliding sojourn windows rotate, so the rolling sketches cover
   between one and two rotation periods. *)

let tel_rotate = 32

let make_sampler pool =
  let tel = pool.telemetry in
  let n = Array.length pool.workers in
  let prev_idle = Array.make n 0.0 in
  let prev_ts = ref (Unix.gettimeofday ()) in
  let samples = ref 0 in
  fun () ->
    let now = Unix.gettimeofday () in
    let ts = now -. pool.rec_t0 in
    let dt = now -. !prev_ts in
    Array.iter
      (fun w ->
        let sp = pool.subpools.(w.w_sp) in
        let idle = w.w_idle_s in
        let util =
          if dt <= 0.0 then 1.0 else 1.0 -. ((idle -. prev_idle.(w.wid)) /. dt)
        in
        prev_idle.(w.wid) <- idle;
        Preempt_core.Telemetry.sample tel ~worker:w.wid ~ts
          ~depth:(sp.inst.i_length ())
          ~steals_in:(w.w_local_steals + w.w_overflow_in)
          ~steals_out:(Atomic.get sp.sp_stolen_away)
          ~parks:w.w_parks ~wakes:w.w_wakes ~quantum:w.w_quantum ~util)
      pool.workers;
    prev_ts := now;
    incr samples;
    if !samples mod tel_rotate = 0 then Preempt_core.Telemetry.rotate_windows tel

let ticker_loop pool interval =
  let tel = pool.telemetry in
  let sampler = make_sampler pool in
  let sweeps = ref 0 in
  while not (Atomic.get pool.shutdown) do
    Thread.delay interval;
    Array.iter (fun w -> Atomic.set w.preempt true) pool.workers;
    incr sweeps;
    if Preempt_core.Telemetry.enabled tel && !sweeps mod pool.tel_every = 0 then
      sampler ()
  done

(* Adaptive ticker: each worker keeps its own expiry deadline.  When a
   deadline passes, the worker is flagged for preemption and the pure
   [Quantum] controller picks its next quantum from the current
   run-queue depth of the worker's sub-pool (external submissions
   included — [i_length] counts them), shrinking under backlog and
   decaying back toward [interval] when idle.  Deadlines are
   ticker-thread private; only the resulting [w_quantum] is published
   (for [stats]) and an [ev_quantum_change] recorded per move.  The
   sleep between sweeps tracks the nearest deadline, floored at a
   quarter of the adaptive floor so a deeply-shrunk pool does not turn
   the ticker into a spin loop. *)
let ticker_adaptive pool interval ~q_min ~q_max =
  let n = Array.length pool.workers in
  let now0 = Unix.gettimeofday () in
  let deadline = Array.make n (now0 +. interval) in
  let r = pool.recorder in
  let tel = pool.telemetry in
  let sampler = make_sampler pool in
  let sweeps = ref 0 in
  while not (Atomic.get pool.shutdown) do
    let now = Unix.gettimeofday () in
    let nearest = ref infinity in
    Array.iteri
      (fun i w ->
        if now >= deadline.(i) then begin
          Atomic.set w.preempt true;
          let sp = pool.subpools.(w.w_sp) in
          let q =
            Quantum.next
              {
                Quantum.q_current = w.w_quantum;
                q_base = interval;
                q_min;
                q_max;
                q_depth = sp.inst.i_length ();
                q_members = Array.length sp.sp_members;
              }
          in
          if q <> w.w_quantum then begin
            if Preempt_core.Recorder.enabled r then
              Preempt_core.Recorder.emit r
                (Preempt_core.Recorder.global_ring r)
                (now -. pool.rec_t0)
                Preempt_core.Recorder.ev_quantum_change w.wid
                (int_of_float (q *. 1e9));
            w.w_quantum <- q
          end;
          deadline.(i) <- now +. q
        end;
        if deadline.(i) < !nearest then nearest := deadline.(i))
      pool.workers;
    incr sweeps;
    if Preempt_core.Telemetry.enabled tel && !sweeps mod pool.tel_every = 0 then
      sampler ();
    let sleep = !nearest -. Unix.gettimeofday () in
    Thread.delay (Float.min interval (Float.max (q_min /. 4.0) sleep))
  done

let make (cfg : Config.t) =
  (* [Config.make] already validated; re-validate so hand-built records
     go through the same gate. *)
  Config.validate cfg;
  let n = cfg.Config.domains in
  let sp_of = Array.make n (-1) in
  let slot_of = Array.make n (-1) in
  let subpools =
    Array.mapi
      (fun id (s : Config.subpool) ->
        let members = Array.of_list (List.sort_uniq compare s.Config.sp_workers) in
        Array.iteri
          (fun slot wid ->
            sp_of.(wid) <- id;
            slot_of.(wid) <- slot)
          members;
        {
          sp_id = id;
          sp_name = s.Config.sp_name;
          sp_overflow = s.Config.sp_overflow;
          sp_members = members;
          inst = Scheduler.instantiate s.Config.sp_sched ~slots:(Array.length members);
          sp_lock = Mutex.create ();
          sp_cond = Condition.create ();
          sp_epoch = Atomic.make 0;
          sp_sleepers = Atomic.make 0;
          sp_ext_spawned = Atomic.make 0;
          sp_stolen_away = Atomic.make 0;
          sp_free = Atomic.make [];
          sp_free_n = Atomic.make 0;
          sp_free_cap = cfg.Config.spawn_freelist * Array.length members;
        })
      (Array.of_list cfg.Config.subpools)
  in
  let interval0 =
    match cfg.Config.preempt_interval with Some dt -> dt | None -> 0.0
  in
  let quantum_bounds =
    if cfg.Config.adaptive then
      Some
        ( Option.value cfg.Config.quantum_min
            ~default:(Quantum.default_min ~base:interval0),
          Option.value cfg.Config.quantum_max
            ~default:(Quantum.default_max ~base:interval0) )
    else None
  in
  let workers =
    Array.init n (fun wid ->
        {
          wid;
          w_sp = sp_of.(wid);
          w_slot = slot_of.(wid);
          preempt = Atomic.make false;
          w_quantum = interval0;
          (* Live spacer between consecutive [preempt] atomics; see the
             [worker] comment. *)
          pad_keep = Array.make 8 0;
          rng_state = (wid * 7919) + 13;
          w_spawned = 0;
          w_local_steals = 0;
          w_overflow_in = 0;
          w_batch_stolen = 0;
          w_recycled = 0;
          w_recycle_miss = 0;
          w_leapfrog = 0;
          w_free = Array.make cfg.Config.spawn_freelist dummy_cell;
          w_free_n = 0;
          w_spill = ignore;
          w_pending0 = Obj.repr (Pending { pw = []; pv = wid } : unit state);
          w_parks = 0;
          w_wakes = 0;
          w_idle_s = 0.0;
          pad0 = 0;
          pad1 = 0;
          pad2 = 0;
          pad3 = 0;
        })
  in
  (* The spill closure a batched raid flushes extra tasks through:
     fixed per worker (it needs both the worker record and its
     sub-pool instance, so it is tied after both exist), pushing on
     the worker's own slot and counting the haul. *)
  Array.iter
    (fun w ->
      let sp = subpools.(w.w_sp) in
      w.w_spill <-
        (fun task ->
          w.w_batch_stolen <- w.w_batch_stolen + 1;
          sp.inst.i_push ~slot:w.w_slot ~prio:0 task))
    workers;
  let recorder =
    (* A disabled recorder keeps only a token ring so pools without
       observability pay no memory for it. *)
    let capacity =
      if cfg.Config.recorder_enabled then cfg.Config.recorder_capacity else 16
    in
    let r = Preempt_core.Recorder.create ~n_workers:n ~capacity in
    Preempt_core.Recorder.set_enabled r cfg.Config.recorder_enabled;
    r
  in
  let telemetry =
    (* Same discipline as the recorder: a disabled telemetry keeps only
       token rings (and no windows) so it costs no memory. *)
    let capacity =
      if cfg.Config.telemetry_enabled then cfg.Config.telemetry_capacity else 4
    in
    let channels =
      if cfg.Config.telemetry_enabled then cfg.Config.telemetry_channels else 0
    in
    let t = Preempt_core.Telemetry.create ~n_workers:n ~capacity ~channels in
    Preempt_core.Telemetry.set_enabled t cfg.Config.telemetry_enabled;
    t
  in
  let pool =
    {
      workers;
      subpools;
      doms = [];
      total_sleepers = Atomic.make 0;
      shutdown = Atomic.make false;
      preempt_interval = cfg.Config.preempt_interval;
      quantum_bounds;
      ticker = None;
      preempt_count = Atomic.make 0;
      recorder;
      rec_t0 = Unix.gettimeofday ();
      telemetry;
      tel_every = cfg.Config.telemetry_every;
    }
  in
  (* Worker 0 is the caller inside [run]; spawn domains for the rest. *)
  pool.doms <-
    List.init (n - 1) (fun i ->
        Domain.spawn (fun () -> domain_main pool workers.(i + 1)));
  (match (cfg.Config.preempt_interval, quantum_bounds) with
  | Some dt, Some (q_min, q_max) ->
      pool.ticker <-
        Some (Thread.create (fun () -> ticker_adaptive pool dt ~q_min ~q_max) ())
  | Some dt, None ->
      pool.ticker <- Some (Thread.create (fun () -> ticker_loop pool dt) ())
  | None, _ -> ());
  pool

(* Deprecated single-pool shim: one "default" sub-pool spanning every
   worker under the work-stealing scheduler — exactly the historical
   flat pool.  New code should build a [Config.t]. *)
let create ?domains ?preempt_interval () =
  make (Config.make ?domains ?preempt_interval ())

let domains pool = Array.length pool.workers

let subpools pool =
  Array.to_list (Array.map (fun sp -> sp.sp_name) pool.subpools)

let preemptions pool = Atomic.get pool.preempt_count

let recorder pool = pool.recorder

let telemetry pool = pool.telemetry

(* True while the current worker's preemption flag is raised, without
   consuming it: one DLS read plus one atomic load.  Lets a workload
   bracket the [check ()] it is about to take with span events —
   benignly racy (a flag raised after the load is simply seen by the
   next probe). *)
let preempt_pending () =
  match Domain.DLS.get current_worker with
  | Some (_, w) -> Atomic.get w.preempt
  | None -> false

(* Emit a flight event from inside a fiber into the current worker's
   ring — the fiber runs on exactly one worker at a time, so the ring
   stays single-writer.  No-op outside a worker or with the recorder
   disabled (one boolean load).  [at] is an absolute wall-clock time
   overriding "now", for events whose logical time precedes the call
   (e.g. a request's scheduled arrival). *)
let emit_flight ?at code a b =
  match Domain.DLS.get current_worker with
  | Some (pool, w) ->
      let r = pool.recorder in
      if Preempt_core.Recorder.enabled r then
        let wall = match at with Some t -> t | None -> Unix.gettimeofday () in
        Preempt_core.Recorder.emit r w.wid (wall -. pool.rec_t0) code a b
  | None -> ()

(* Feed the current worker's sliding sojourn window for [channel].
   Called on the worker that completed the request, so each window
   keeps its single writer.  No-op outside a worker or with telemetry
   disabled. *)
let telemetry_observe ~channel v =
  match Domain.DLS.get current_worker with
  | Some (pool, w) ->
      let tel = pool.telemetry in
      if Preempt_core.Telemetry.enabled tel then
        Preempt_core.Telemetry.observe tel ~worker:w.wid ~channel v
  | None -> ()

(* Wall-clock origin of recorder/telemetry timestamps, for callers
   that emit events with [~at] or align external clocks. *)
let clock_origin pool = pool.rec_t0

type subpool_stats = {
  st_name : string;
  st_sched : string;
  st_workers : int;
  st_spawned : int;
  st_local_steals : int;
  st_overflow_in : int;
  st_overflow_out : int;
  st_batch_stolen : int;
  st_recycled : int;
  st_recycle_miss : int;
  st_leapfrog : int;
  st_pending : int;
  st_quanta : (int * float) list;
}

let adaptive pool = pool.quantum_bounds <> None

let stats pool =
  Array.to_list
    (Array.map
       (fun sp ->
         let spawned = ref (Atomic.get sp.sp_ext_spawned) in
         let local = ref 0 in
         let ovin = ref 0 in
         let batched = ref 0 in
         let recycled = ref 0 in
         let misses = ref 0 in
         let leap = ref 0 in
         Array.iter
           (fun wid ->
             let w = pool.workers.(wid) in
             spawned := !spawned + w.w_spawned;
             local := !local + w.w_local_steals;
             ovin := !ovin + w.w_overflow_in;
             batched := !batched + w.w_batch_stolen;
             recycled := !recycled + w.w_recycled;
             misses := !misses + w.w_recycle_miss;
             leap := !leap + w.w_leapfrog)
           sp.sp_members;
         (* The sums above read plain owner-written cells while the
            owners keep bumping them; clamp negative transients the
            same way [Deque.length] does so a concurrent sampler never
            reports a negative count. *)
         let c v = Stdlib.max 0 v in
         {
           st_name = sp.sp_name;
           st_sched = sp.inst.i_name;
           st_workers = Array.length sp.sp_members;
           st_spawned = c !spawned;
           st_local_steals = c !local;
           st_overflow_in = c !ovin;
           st_overflow_out = c (Atomic.get sp.sp_stolen_away);
           st_batch_stolen = c !batched;
           st_recycled = c !recycled;
           st_recycle_miss = c !misses;
           st_leapfrog = c !leap;
           st_pending = c (sp.inst.i_length ());
           st_quanta =
             Array.to_list
               (Array.map
                  (fun wid -> (wid, pool.workers.(wid).w_quantum))
                  sp.sp_members);
         })
       pool.subpools)

let run pool main =
  if Atomic.get pool.shutdown then invalid_arg "Fiber.run: pool is shut down";
  (match Domain.DLS.get current_worker with
  | Some _ -> invalid_arg "Fiber.run: reentrant call from inside a fiber"
  | None -> ());
  let result = ref None in
  let p = promise () in
  let w0 = pool.workers.(0) in
  let sp0 = pool.subpools.(w0.w_sp) in
  let fiber =
    make_fiber pool sp0 ~prio:0 (fun () ->
        (match main () with
        | v -> result := Some (Ok v)
        | exception e -> result := Some (Error e));
        resolve p (Resolved ());
        (* Worker 0's [until] just flipped; it may be parked, and a
           targeted signal could wake somebody else instead. *)
        notify_all pool)
  in
  (* External path: the calling thread only becomes worker 0 inside
     [worker_loop] below. *)
  sp0.inst.i_push ~slot:(-1) ~prio:0 fiber;
  notify_push pool sp0;
  worker_loop pool w0 ~until:(fun () -> is_resolved p);
  match !result with
  | Some (Ok v) -> v
  | Some (Error e) -> raise e
  | None -> failwith "Fiber.run: main fiber did not complete"

let shutdown pool =
  Atomic.set pool.shutdown true;
  notify_all pool;
  List.iter Domain.join pool.doms;
  (match pool.ticker with Some t -> Thread.join t | None -> ());
  pool.doms <- []

let parallel_map f xs =
  let ps = List.map (fun x -> spawn (fun () -> f x)) xs in
  List.map await ps

let parallel_for ?chunk lo hi f =
  let n = hi - lo in
  if n > 0 then begin
    let pool, w = self () in
    let chunk =
      match chunk with
      | Some c when c > 0 -> c
      | Some _ -> invalid_arg "Fiber.parallel_for: chunk <= 0"
      | None ->
          (* Size chunks to the caller's sub-pool, not the whole pool:
             that is who will run them (overflow aside). *)
          let members = Array.length pool.subpools.(w.w_sp).sp_members in
          Stdlib.max 1 (n / (8 * members))
    in
    let rec spawn_chunks acc i =
      if i >= hi then acc
      else
        let j = Stdlib.min hi (i + chunk) in
        let p =
          spawn (fun () ->
              for x = i to j - 1 do
                f x;
                check ()
              done)
        in
        spawn_chunks (p :: acc) j
    in
    let ps = spawn_chunks [] lo in
    List.iter (fun p -> await p) ps
  end
