type task = unit -> unit

(* Worker records are written from two sides: the owner bumps
   [rng_state] on every steal probe while the ticker thread sets
   [preempt] once per interval.  Both get their own cache-line
   neighborhood: the record is padded past 64 bytes so adjacent workers
   in [pool.workers] do not share a line, and each [preempt] atomic is
   allocated with a live filler ([pad_keep]) between it and the next
   worker's atomic so the flags do not end up packed into one line
   either (the filler is reachable from the record, so compaction cannot
   drop it and re-pack the atomics). *)
type worker = {
  wid : int;
  deque : task Deque.t;
  preempt : bool Atomic.t; (* set by the ticker, cleared at safe points *)
  mutable rng_state : int;
  pad_keep : int array;
  mutable pad0 : int;
  mutable pad1 : int;
  mutable pad2 : int;
  mutable pad3 : int;
}

type pool = {
  workers : worker array;
  mutable doms : unit Domain.t list;
  park_lock : Mutex.t; (* held only to park and to signal sleepers *)
  cond : Condition.t;
  epoch : int Atomic.t; (* bumped on every push: lost-wakeup guard *)
  n_sleepers : int Atomic.t; (* workers inside the parking protocol *)
  shutdown : bool Atomic.t;
  preempt_interval : float option;
  mutable ticker : Thread.t option;
  preempt_count : int Atomic.t;
}

(* Promise state machine: one atomic word, CAS [Pending -> Resolved /
   Failed].  [resolve] and [await]'s fast path never touch a lock;
   waiters accumulate by CAS-consing onto the pending list and are woken
   in FIFO registration order (the cons list is reversed once on
   resolve). *)
type 'a state = Pending of (unit -> unit) list | Resolved of 'a | Failed of exn

type 'a promise = 'a state Atomic.t

type _ Effect.t +=
  | Yield : unit Effect.t
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t
  | Suspend_or :
      ((unit -> unit) -> [ `Continue | `Suspended ])
      -> unit Effect.t

(* Which worker the current thread is. *)
let current_worker : (pool * worker) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let self () =
  match Domain.DLS.get current_worker with
  | Some pw -> pw
  | None -> failwith "Fiber: not inside a fiber runtime worker"

(* ------------------------------------------------------------------ *)
(* Wakeups.

   Pushers never broadcast.  The protocol against lost wakeups:

     pusher:  deque push; incr epoch; if n_sleepers > 0 then
              lock; signal; unlock
     sleeper: incr n_sleepers; e := epoch; full find_task sweep;
              if still empty: lock; if epoch = e then wait; unlock;
              decr n_sleepers

   All counters are SC atomics, so either the pusher observes the
   sleeper's [n_sleepers] increment (and signals under the lock the
   sleeper waits on), or the sleeper's subsequent reads observe the
   pusher's epoch bump — the under-lock [epoch = e] re-check then fails
   and the sleeper retries instead of sleeping.  Either way a push
   cannot slip between a failed sweep and [Condition.wait].  Workers
   with no sleepers in sight pay one atomic increment and one atomic
   load per push — no mutex, no condvar. *)

let notify_one pool =
  Atomic.incr pool.epoch;
  if Atomic.get pool.n_sleepers > 0 then begin
    Mutex.lock pool.park_lock;
    Condition.signal pool.cond;
    Mutex.unlock pool.park_lock
  end

(* Broadcast: only for state visible to *every* worker — shutdown and
   run-completion ([until] flipping), where one targeted signal could
   wake the wrong sleeper and strand the one whose predicate changed. *)
let notify_all pool =
  Atomic.incr pool.epoch;
  Mutex.lock pool.park_lock;
  Condition.broadcast pool.cond;
  Mutex.unlock pool.park_lock

let push_task pool w task =
  Deque.push w.deque task;
  notify_one pool

(* A yielded fiber goes to the thief end: the owner (who pops LIFO)
   runs every other local task first, so yield actually gives way. *)
let push_task_yield pool w task =
  Deque.push_front w.deque task;
  notify_one pool

(* Cheap xorshift for victim selection. *)
let next_rand w =
  let x = w.rng_state in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  w.rng_state <- x land max_int;
  w.rng_state

let find_task pool w =
  match Deque.pop w.deque with
  | Some t -> Some t
  | None ->
      let n = Array.length pool.workers in
      let rec probe k =
        if k = 0 then None
        else
          let v = next_rand w mod n in
          if v = w.wid then probe (k - 1)
          else
            match Deque.steal pool.workers.(v).deque with
            | Some t -> Some t
            | None -> probe (k - 1)
      in
      (match probe (2 * n) with
      | Some t -> Some t
      | None ->
          (* Deterministic sweep so no task is missed. *)
          let rec sweep i =
            if i = n then None
            else if i = w.wid then sweep (i + 1)
            else
              match Deque.steal pool.workers.(i).deque with
              | Some t -> Some t
              | None -> sweep (i + 1)
          in
          sweep 0)

let handler pool =
  let open Effect.Deep in
  {
    retc = (fun () -> ());
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Yield ->
            Some
              (fun (k : (a, unit) continuation) ->
                let _, w = self () in
                push_task_yield pool w (fun () -> continue k ()))
        | Suspend register ->
            Some
              (fun (k : (a, unit) continuation) ->
                register (fun () ->
                    let _, w = self () in
                    push_task pool w (fun () -> continue k ())))
        | Suspend_or decide ->
            Some
              (fun (k : (a, unit) continuation) ->
                let wake () =
                  let _, w = self () in
                  push_task pool w (fun () -> continue k ())
                in
                match decide wake with
                | `Continue -> continue k ()
                | `Suspended -> ())
        | _ -> None);
  }

let make_fiber pool body = fun () -> Effect.Deep.match_with body () (handler pool)

(* ------------------------------------------------------------------ *)
(* Promises. *)

let promise () = Atomic.make (Pending [])

let rec resolve p outcome =
  match Atomic.get p with
  | Pending ws as cur ->
      if Atomic.compare_and_set p cur outcome then
        (* [ws] accumulated newest-first; wake in FIFO registration
           order (test_fsync pins this). *)
        List.iter (fun wake -> wake ()) (List.rev ws)
      else resolve p outcome
  | Resolved _ | Failed _ -> ()

let is_resolved p =
  match Atomic.get p with Pending _ -> false | Resolved _ | Failed _ -> true

let spawn body =
  let pool, w = self () in
  let p = promise () in
  let fiber =
    make_fiber pool (fun () ->
        match body () with
        | v -> resolve p (Resolved v)
        | exception e -> resolve p (Failed e))
  in
  push_task pool w fiber;
  p

let await p =
  let rec value () =
    match Atomic.get p with
    | Resolved v -> v
    | Failed e -> raise e
    | Pending _ ->
        Effect.perform
          (Suspend
             (fun wake ->
               let rec register () =
                 match Atomic.get p with
                 | Pending ws as cur ->
                     if not (Atomic.compare_and_set p cur (Pending (wake :: ws)))
                     then register ()
                 | Resolved _ | Failed _ -> wake ()
               in
               register ()));
        value ()
  in
  value ()

let yield () = Effect.perform Yield

let suspend_or decide = Effect.perform (Suspend_or decide)

let check () =
  let pool, w = self () in
  (* Fast path: one atomic load. *)
  if Atomic.get w.preempt then begin
    Atomic.set w.preempt false;
    Atomic.incr pool.preempt_count;
    yield ()
  end

(* ------------------------------------------------------------------ *)
(* Workers. *)

(* Spin-then-park: a worker that found nothing re-probes a few times
   with exponentially growing [cpu_relax] backoff before touching the
   pool mutex.  Short idle gaps (the common case in fork–join churn)
   resolve without a futex round-trip; persistent idleness parks. *)
let spin_rounds = 8

let backoff round =
  let spins = 1 lsl (if round < 6 then round else 6) in
  for _ = 1 to spins do
    Domain.cpu_relax ()
  done

let worker_loop pool w ~until =
  Domain.DLS.set current_worker (Some (pool, w));
  let stop () = until () || Atomic.get pool.shutdown in
  (* Returns [None] only when [stop] was observed. *)
  let rec next_task round =
    if stop () then None
    else
      match find_task pool w with
      | Some _ as r -> r
      | None ->
          if round < spin_rounds then begin
            backoff round;
            next_task (round + 1)
          end
          else park ()
  and park () =
    Atomic.incr pool.n_sleepers;
    let e = Atomic.get pool.epoch in
    (* Re-sweep after announcing: a pusher that missed our increment
       must have bumped [epoch] first, failing the re-check below. *)
    match find_task pool w with
    | Some _ as r ->
        Atomic.decr pool.n_sleepers;
        r
    | None ->
        Mutex.lock pool.park_lock;
        if Atomic.get pool.epoch = e && not (stop ()) then
          Condition.wait pool.cond pool.park_lock;
        Mutex.unlock pool.park_lock;
        Atomic.decr pool.n_sleepers;
        next_task 0
  in
  let rec loop () =
    match next_task 0 with
    | Some task ->
        task ();
        loop ()
    | None -> ()
  in
  loop ();
  Domain.DLS.set current_worker None

let domain_main pool w = worker_loop pool w ~until:(fun () -> false)

let ticker_loop pool interval =
  while not (Atomic.get pool.shutdown) do
    Thread.delay interval;
    Array.iter (fun w -> Atomic.set w.preempt true) pool.workers
  done

let create ?domains ?preempt_interval () =
  let n =
    match domains with
    | Some d when d >= 1 -> d
    | Some _ -> invalid_arg "Fiber.create: domains < 1"
    | None -> Stdlib.max 1 (Domain.recommended_domain_count () - 1)
  in
  let workers =
    Array.init n (fun wid ->
        {
          wid;
          deque = Deque.create ();
          preempt = Atomic.make false;
          (* Live spacer between consecutive [preempt] atomics; see the
             [worker] comment. *)
          pad_keep = Array.make 8 0;
          rng_state = (wid * 7919) + 13;
          pad0 = 0;
          pad1 = 0;
          pad2 = 0;
          pad3 = 0;
        })
  in
  let pool =
    {
      workers;
      doms = [];
      park_lock = Mutex.create ();
      cond = Condition.create ();
      epoch = Atomic.make 0;
      n_sleepers = Atomic.make 0;
      shutdown = Atomic.make false;
      preempt_interval;
      ticker = None;
      preempt_count = Atomic.make 0;
    }
  in
  (* Worker 0 is the caller inside [run]; spawn domains for the rest. *)
  pool.doms <-
    List.init (n - 1) (fun i -> Domain.spawn (fun () -> domain_main pool workers.(i + 1)));
  (match preempt_interval with
  | Some dt when dt > 0.0 -> pool.ticker <- Some (Thread.create (fun () -> ticker_loop pool dt) ())
  | Some _ -> invalid_arg "Fiber.create: preempt_interval <= 0"
  | None -> ());
  pool

let domains pool = Array.length pool.workers

let preemptions pool = Atomic.get pool.preempt_count

let run pool main =
  if Atomic.get pool.shutdown then invalid_arg "Fiber.run: pool is shut down";
  (match Domain.DLS.get current_worker with
  | Some _ -> invalid_arg "Fiber.run: reentrant call from inside a fiber"
  | None -> ());
  let result = ref None in
  let p = promise () in
  let fiber =
    make_fiber pool (fun () ->
        (match main () with
        | v -> result := Some (Ok v)
        | exception e -> result := Some (Error e));
        resolve p (Resolved ());
        (* Worker 0's [until] just flipped; it may be parked, and a
           targeted signal could wake somebody else instead. *)
        notify_all pool)
  in
  let w0 = pool.workers.(0) in
  Deque.push w0.deque fiber;
  notify_one pool;
  worker_loop pool w0 ~until:(fun () -> is_resolved p);
  (* Drain any leftover ready work this run created?  Fibers spawned but
     not awaited keep running on the other domains; that is by design. *)
  match !result with
  | Some (Ok v) -> v
  | Some (Error e) -> raise e
  | None -> failwith "Fiber.run: main fiber did not complete"

let shutdown pool =
  Atomic.set pool.shutdown true;
  notify_all pool;
  List.iter Domain.join pool.doms;
  (match pool.ticker with Some t -> Thread.join t | None -> ());
  pool.doms <- []

let parallel_map f xs =
  let ps = List.map (fun x -> spawn (fun () -> f x)) xs in
  List.map await ps

let parallel_for ?chunk lo hi f =
  let n = hi - lo in
  if n > 0 then begin
    let pool, _ = self () in
    let chunk =
      match chunk with
      | Some c when c > 0 -> c
      | Some _ -> invalid_arg "Fiber.parallel_for: chunk <= 0"
      | None -> Stdlib.max 1 (n / (8 * Array.length pool.workers))
    in
    let rec spawn_chunks acc i =
      if i >= hi then acc
      else
        let j = Stdlib.min hi (i + chunk) in
        let p =
          spawn (fun () ->
              for x = i to j - 1 do
                f x;
                check ()
              done)
        in
        spawn_chunks (p :: acc) j
    in
    let ps = spawn_chunks [] lo in
    List.iter (fun p -> await p) ps
  end
