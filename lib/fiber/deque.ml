(* Chase–Lev lock-free work-stealing deque (Chase & Lev, SPAA '05) on
   OCaml [Atomic], plus a lock-free front segment for [push_front].

   The ring holds everything pushed with [push]: a power-of-two
   ['a option array] indexed by free-running [top] (steal end) and
   [bottom] (owner end).  The owner pushes and pops at [bottom] with no
   CAS except on the last-element race; a thief CASes [top] to claim the
   oldest element.  No mutex is taken on any operation — the spawn →
   steal fast path of the scheduler is lock-free end to end (grep
   invariant: no [Mutex.lock] in this file).

   Memory-ordering argument (OCaml memory model, all [Atomic] accesses
   are SC):

   - The owner publishes an element with a plain array store followed by
     [Atomic.set bottom].  A thief reads [top]; then [bottom]; then the
     buffer.  Observing [bottom > top] therefore happens-after the
     publishing store, so the plain read of the slot sees the element.
   - Slot reuse cannot hand a thief a wrong value: the owner only
     rewrites slot [i land mask] for index [i = top + capacity] after a
     push observed [top] advanced past the thief's claim, which forces
     the thief's CAS on [top] to fail and the stale read to be
     discarded.
   - The buffer itself lives in an [Atomic] so that a thief that
     observed a [bottom] written after a grow is guaranteed (by the SC
     total order: grow's buffer store precedes that [bottom] store) to
     also observe the grown buffer rather than indexing a too-small
     stale one.
   - On the last-element race both the owner and the thief CAS
     [top]; exactly one wins, the loser reports empty/retries.

   Stolen slots are not cleared (a thief writing the array would race
   with an owner push one lap ahead); at most [capacity] already-claimed
   elements are therefore kept live until their slot is overwritten or
   the ring grows.  For the scheduler's task closures this retention is
   short-lived and bounded.  The owner does clear slots it pops.

   [push_front] (yield re-queue: rare, a handful per preemption tick)
   cannot go into a Chase–Lev ring — the top end admits no producer — so
   it lands in an owner-agnostic front segment: an immutable two-list
   deque swapped by CAS.  Logically the segment sits wholly on the thief
   side of the ring, preserving the historical order: thieves take the
   newest front-pushed element first, the owner reaches the oldest
   front-pushed element only after draining the ring. *)

type 'a seg = {
  snew : 'a list; (* head = thief end (newest push_front) *)
  sold : 'a list; (* head = owner end (oldest push_front) *)
  slen : int;
}

let empty_seg = { snew = []; sold = []; slen = 0 }

type 'a t = {
  top : int Atomic.t; (* next steal index *)
  bottom : int Atomic.t; (* next push index; ring size = bottom - top *)
  buf : 'a option array Atomic.t;
  front : 'a seg Atomic.t;
}

let min_capacity = 16

let create () =
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buf = Atomic.make (Array.make min_capacity None);
    front = Atomic.make empty_seg;
  }

(* Owner only.  Indices are preserved across the copy (free-running,
   wrapped by the new mask), so concurrent thieves keep working: every
   live index is valid in both the old and the new buffer. *)
let grow t b tp a =
  let n = Array.length a in
  let na = Array.make (2 * n) None in
  for i = tp to b - 1 do
    na.(i land ((2 * n) - 1)) <- a.(i land (n - 1))
  done;
  Atomic.set t.buf na

let push t x =
  let b = Atomic.get t.bottom in
  let tp = Atomic.get t.top in
  let a = Atomic.get t.buf in
  let a =
    if b - tp >= Array.length a then begin
      grow t b tp a;
      Atomic.get t.buf
    end
    else a
  in
  a.(b land (Array.length a - 1)) <- Some x;
  Atomic.set t.bottom (b + 1)

(* CAS-swap the front segment through [f] until it sticks.  Lock-free:
   a failed CAS means another operation completed. *)
let rec seg_update t f =
  let s = Atomic.get t.front in
  match f s with
  | None -> None
  | Some (x, s') ->
      if Atomic.compare_and_set t.front s s' then Some x else seg_update t f

let push_front t x =
  ignore
    (seg_update t (fun s ->
         Some (x, { s with snew = x :: s.snew; slen = s.slen + 1 })))

(* Thief end of the segment: newest front-pushed element. *)
let seg_steal t =
  if (Atomic.get t.front).slen = 0 then None
  else
    seg_update t (fun s ->
        match s.snew with
        | x :: r -> Some (x, { s with snew = r; slen = s.slen - 1 })
        | [] -> (
            match List.rev s.sold with
            | [] -> None
            | x :: r -> Some (x, { snew = r; sold = []; slen = s.slen - 1 })))

(* Owner end of the segment: oldest front-pushed element. *)
let seg_pop t =
  if (Atomic.get t.front).slen = 0 then None
  else
    seg_update t (fun s ->
        match s.sold with
        | x :: r -> Some (x, { s with sold = r; slen = s.slen - 1 })
        | [] -> (
            match List.rev s.snew with
            | [] -> None
            | x :: r -> Some (x, { snew = []; sold = r; slen = s.slen - 1 })))

let pop t =
  let b0 = Atomic.get t.bottom in
  if b0 = Atomic.get t.top then
    (* Ring empty from the owner's side ([bottom] is owner-written, so
       this view is exact); fall through to the front segment. *)
    seg_pop t
  else begin
    let b = b0 - 1 in
    Atomic.set t.bottom b;
    (* SC store-then-load: thieves that miss this [bottom] cannot claim
       index [b] behind our back. *)
    let tp = Atomic.get t.top in
    if b < tp then begin
      (* Raced to empty after the pre-check. *)
      Atomic.set t.bottom (b + 1);
      seg_pop t
    end
    else begin
      let a = Atomic.get t.buf in
      let i = b land (Array.length a - 1) in
      if b > tp then begin
        let x = a.(i) in
        a.(i) <- None;
        x
      end
      else begin
        (* Last ring element: race a thief for it via [top]. *)
        let x = a.(i) in
        let won = Atomic.compare_and_set t.top tp (tp + 1) in
        Atomic.set t.bottom (b + 1);
        if won then begin
          a.(i) <- None;
          x
        end
        else seg_pop t
      end
    end
  end

let rec steal t =
  match seg_steal t with
  | Some _ as r -> r
  | None ->
      let tp = Atomic.get t.top in
      let b = Atomic.get t.bottom in
      if b - tp <= 0 then None
      else
        let a = Atomic.get t.buf in
        let x = a.(tp land (Array.length a - 1)) in
        if Atomic.compare_and_set t.top tp (tp + 1) then x
        else
          (* Another thief (or the owner's last-element pop) claimed
             index [tp]; someone made progress, so retry. *)
          steal t

(* Batched steal ("steal-half"): claim up to [max] elements, capped at
   half the run observed on the first probe, returning the oldest and
   handing the rest — in ring (FIFO) order — to [spill].

   Why this is an *iterated* claim rather than one CAS covering the
   whole range [tp, tp+k): a one-shot range claim is unsound against
   this deque's owner, in both possible orders.

   - Copy-out before CAS: the thief reads slots tp..tp+k-1, then CASes
     [top] from [tp] to [tp+k].  The owner's [pop] plain-takes any
     index [j] with [j > top]; for k >= 2 the interior indices
     tp+1..tp+k-1 satisfy that, so the owner can consume one while
     [top] still reads [tp] — and the thief's CAS, which only
     witnesses [top], still succeeds.  Both sides return index [j]:
     double execution.  (The classic k = 1 steal is immune precisely
     because the only claimed index *is* [top], which the owner may
     take only by winning the very CAS the thief is attempting.)
   - CAS before copy-out: once [top] = tp+k is published, the owner's
     push-grow check ([bottom - top >= capacity]) no longer protects
     the claimed-but-uncopied slots; a push one lap ahead may rewrite
     slot [tp land mask] while the thief is still reading it.  Fixing
     that needs a second "copied up to" index the owner consults —
     and the owner's race-to-empty restore still erases the evidence
     of interior pops from a concurrent thief's view of [bottom].

   Closing either hole requires pessimizing the owner's lock-free pop
   (a per-slot CAS, or a published-reservation handshake read on every
   near-empty pop).  Instead each iteration below is exactly the
   proven single steal — fresh [top]/[bottom]/buffer reads validate
   the slot read, one CAS claims one index — and the batching win is
   architectural: after the first successful CAS the thief's core
   holds the [top] cache line exclusively, so the remaining claims are
   unconteded near-local CASes, and the scheduler above amortizes
   victim selection, segment probes, counter updates and recorder
   traffic over the whole batch.  A CAS that fails after the first
   success means another thief (or the owner's last-element race) is
   active; we keep what we have instead of fighting for the rest.

   The cap of half the observed run keeps the victim supplied (the
   steal-half policy from the fork-join work-stealing literature); the
   front segment is never batched — it holds yield re-queues whose
   order [push_front] guarantees individually. *)
let steal_batch t ~max ~spill =
  if max <= 1 then steal t
  else
    match seg_steal t with
    | Some _ as r -> r
    | None ->
        let first = ref None in
        let taken = ref 0 in
        let want = ref max in
        let stop = ref false in
        while (not !stop) && !taken < !want do
          let tp = Atomic.get t.top in
          let b = Atomic.get t.bottom in
          let run = b - tp in
          if run <= 0 then stop := true
          else begin
            if !taken = 0 then want := Stdlib.min max ((run + 1) / 2);
            let a = Atomic.get t.buf in
            let x = a.(tp land (Array.length a - 1)) in
            if Atomic.compare_and_set t.top tp (tp + 1) then begin
              (if !taken = 0 then first := x
               else match x with Some v -> spill v | None -> ());
              incr taken
            end
            else if !taken > 0 then stop := true
          end
        done;
        !first

(* Racy snapshot: [top] may advance and the segment may churn between
   the reads, so concurrent callers get an approximation — good enough
   for victim selection.  Sequentially (owner-only) it is exact.

   The ring term can be transiently negative under concurrency and must
   be clamped before it is combined with the segment count: the owner's
   [pop] briefly holds [bottom = top - 1] on the race-to-empty path, and
   a thief's CAS can advance [top] between our two index reads — either
   way a raw [bottom - top] would drag the total below the (always
   non-negative) segment contribution, and callers that sum snapshots
   across deques (sub-pool idleness heuristics) would see phantom
   negative backlogs.  test_deque_model and fiber_smoke's concurrent
   sampler pin [length >= 0]. *)
let length t =
  let s = Atomic.get t.front in
  let ring = Atomic.get t.bottom - Atomic.get t.top in
  Stdlib.max 0 ring + s.slen
