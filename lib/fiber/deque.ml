(* Mutex-protected ring buffer.  One contiguous power-of-two array with
   [head, tail) live: push/pop at the tail (owner LIFO), steal and
   push_front at the head.  Versus the old two-list deque this drops the
   per-operation [Fun.protect] closure, the cons per push and the O(n)
   [List.rev] rebalances — the lock is held for a couple of array ops. *)

type 'a t = {
  lock : Mutex.t;
  mutable buf : 'a array;
  mutable head : int; (* next steal slot; grows downward via push_front *)
  mutable tail : int; (* next push slot; size = tail - head *)
}

let create () = { lock = Mutex.create (); buf = [||]; head = 0; tail = 0 }

(* Indices are free-running; [land mask] wraps them (negative included,
   two's complement).  The pushed value doubles as the array fill so no
   dummy element is needed. *)
let grow t x =
  let cap = Array.length t.buf in
  if t.tail - t.head = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nb = Array.make ncap x in
    let mask = cap - 1 in
    for i = 0 to cap - 1 do
      Array.unsafe_set nb i (Array.unsafe_get t.buf ((t.head + i) land mask))
    done;
    t.buf <- nb;
    t.head <- 0;
    t.tail <- cap
  end

let push t x =
  Mutex.lock t.lock;
  grow t x;
  t.buf.(t.tail land (Array.length t.buf - 1)) <- x;
  t.tail <- t.tail + 1;
  Mutex.unlock t.lock

let push_front t x =
  Mutex.lock t.lock;
  grow t x;
  t.head <- t.head - 1;
  t.buf.(t.head land (Array.length t.buf - 1)) <- x;
  Mutex.unlock t.lock

let pop t =
  Mutex.lock t.lock;
  let r =
    if t.tail = t.head then None
    else begin
      t.tail <- t.tail - 1;
      Some t.buf.(t.tail land (Array.length t.buf - 1))
    end
  in
  Mutex.unlock t.lock;
  r

let steal t =
  Mutex.lock t.lock;
  let r =
    if t.tail = t.head then None
    else begin
      let x = t.buf.(t.head land (Array.length t.buf - 1)) in
      t.head <- t.head + 1;
      Some x
    end
  in
  Mutex.unlock t.lock;
  r

let length t = t.tail - t.head
