(** Validated construction for the real fiber runtime, in the style of
    [Core.Config]: {!make} rejects nonsensical pool shapes up front —
    bad worker partitions, overlapping pins, empty sub-pools — with the
    uniform ["Config: <field> = <value> (must be <requirement>)"]
    message instead of letting them surface as a hung pool.

    A pool is a set of named sub-pools.  Each sub-pool pins a subset of
    the worker domains and carries its own {!Scheduler.t}; together the
    sub-pools must partition workers [0 .. domains-1] exactly (every
    worker pinned to exactly one sub-pool). *)

type subpool = {
  sp_name : string;  (** unique, non-empty *)
  sp_workers : int list;  (** global worker ids pinned to this sub-pool *)
  sp_sched : Scheduler.t;
  sp_overflow : bool;
      (** when [true] (default), idle members steal cross-sub-pool
          once their own sub-pool has nothing runnable; [false]
          reserves the members exclusively (paper §6 in-situ
          isolation) *)
}

type t = {
  domains : int;
  preempt_interval : float option;
  adaptive : bool;
      (** per-worker adaptive preemption quanta ({!Quantum}); requires
          [preempt_interval] *)
  quantum_min : float option;
      (** adaptive floor; defaults to [preempt_interval /. 8.] *)
  quantum_max : float option;
      (** adaptive ceiling; defaults to [preempt_interval] *)
  subpools : subpool list;
  recorder_enabled : bool;
  recorder_capacity : int;
  telemetry_enabled : bool;
      (** live per-worker time-series sampling
          ({!Preempt_core.Telemetry}) driven by the preemption ticker;
          requires [preempt_interval] *)
  telemetry_capacity : int;  (** points per worker ring *)
  telemetry_every : int;
      (** sample every N ticker sweeps (≈ every N quanta) *)
  telemetry_channels : int;
      (** sliding-window sojourn sketches per worker (the serving
          workload uses one per service class) *)
  spawn_freelist : int;
      (** per-worker bound on the dead-fiber free-list backing
          alloc-free spawn ({!Sched.spawn}'s recycle fast path); [0]
          disables recycling entirely *)
}

(** [subpool ~name ~workers ()] — [sched] defaults to {!Scheduler.ws},
    [overflow] to [true].  Validation happens in {!make}, not here. *)
val subpool :
  ?sched:Scheduler.t ->
  ?overflow:bool ->
  name:string ->
  workers:int list ->
  unit ->
  subpool

(** [make ()] — [domains] defaults to
    [Domain.recommended_domain_count () - 1] (at least 1); [subpools]
    defaults to a single ["default"] sub-pool spanning every worker
    (the shape of the historical flat pool); [preempt_interval]
    (seconds, positive) arms the preemption ticker; [adaptive] (default
    [false]) switches the ticker from one fixed global interval to
    per-worker quanta driven by the pure {!Quantum} controller, within
    [[quantum_min, quantum_max]] (both positive; defaults
    [preempt_interval /. 8.] and [preempt_interval]); [recorder]
    (default off) arms the flight recorder with [recorder_capacity]
    events per worker ring (default 4096); [telemetry] (default off,
    requires [preempt_interval]) arms live time-series sampling with
    [telemetry_capacity] points per worker ring (default 256), sampled
    every [telemetry_every] ticker sweeps (default 4), with
    [telemetry_channels] sojourn-window sketches per worker (default
    2); [spawn_freelist] (default 64, [>= 0]) bounds each worker's
    dead-fiber free-list — the pool of recycled fiber records behind
    the alloc-free spawn fast path — with [0] disabling recycling.

    @raise Invalid_argument with the uniform message above when a field
    is out of range ([quantum_min <= 0], [quantum_min > quantum_max],
    [adaptive] without [preempt_interval], ...) or the sub-pools do not
    partition the workers. *)
val make :
  ?domains:int ->
  ?preempt_interval:float ->
  ?adaptive:bool ->
  ?quantum_min:float ->
  ?quantum_max:float ->
  ?subpools:subpool list ->
  ?recorder:bool ->
  ?recorder_capacity:int ->
  ?telemetry:bool ->
  ?telemetry_capacity:int ->
  ?telemetry_every:int ->
  ?telemetry_channels:int ->
  ?spawn_freelist:int ->
  unit ->
  t

(** The default worker count ([recommended_domain_count () - 1], at
    least 1). *)
val default_domains : unit -> int

(** @raise Invalid_argument — same checks as {!make}, for configs built
    by hand. *)
val validate : t -> unit
