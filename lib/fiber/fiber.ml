(* Library facade: the runtime API plus its companion modules. *)
include Sched
module Config = Config
module Quantum = Quantum
module Scheduler = Scheduler
module Deque = Deque
module Fsync = Fsync
