(* All primitives follow the same pattern: a host [Mutex.t] protects the
   state; blocked fibers park a wake closure (provided by
   [Fiber.suspend]) in the state and are re-queued by whoever changes
   it.  The host lock is only held for O(1) bookkeeping.

   Wakes always run *outside* the host lock (calling into the scheduler
   while holding it would invert the lock order with the pool's park
   path), and always in FIFO registration order: Mutex/Semaphore/Channel
   keep their waiters in a [Queue], Barrier releases its accumulated
   list oldest-arrival-first.  test_fsync.ml pins the FIFO order.

   Sub-pool pinning: a wake closure re-queues the blocked fiber on the
   fiber's *home* sub-pool (Sched's Suspend/Suspend_or handlers capture
   it), not on the waker's.  A mutex shared across sub-pools therefore
   never migrates fibers between them — an "analysis" fiber woken by a
   "compute" fiber goes back to the analysis sub-pool's scheduler. *)

module Mutex = struct
  type t = {
    lock : Stdlib.Mutex.t;
    mutable held : bool;
    waiters : (unit -> unit) Queue.t;
  }

  let create () = { lock = Stdlib.Mutex.create (); held = false; waiters = Queue.create () }

  let lock t =
    let acquired = ref false in
    while not !acquired do
      Sched.suspend_or (fun wake ->
          Stdlib.Mutex.lock t.lock;
          if not t.held then begin
            t.held <- true;
            acquired := true;
            Stdlib.Mutex.unlock t.lock;
            `Continue
          end
          else begin
            Queue.add wake t.waiters;
            Stdlib.Mutex.unlock t.lock;
            `Suspended
          end)
    done

  let try_lock t =
    Stdlib.Mutex.lock t.lock;
    let got = not t.held in
    if got then t.held <- true;
    Stdlib.Mutex.unlock t.lock;
    got

  let unlock t =
    Stdlib.Mutex.lock t.lock;
    if not t.held then begin
      Stdlib.Mutex.unlock t.lock;
      invalid_arg "Fsync.Mutex.unlock: not locked"
    end
    else begin
      (* Release and wake one candidate; it re-contends (barging is fine
         and avoids lock-ownership transfer subtleties). *)
      t.held <- false;
      let w = Queue.take_opt t.waiters in
      Stdlib.Mutex.unlock t.lock;
      match w with Some wake -> wake () | None -> ()
    end

  let with_lock t f =
    lock t;
    Fun.protect ~finally:(fun () -> unlock t) f
end

module Semaphore = struct
  type t = {
    lock : Stdlib.Mutex.t;
    mutable count : int;
    waiters : (unit -> unit) Queue.t;
  }

  let create n =
    if n < 0 then invalid_arg "Fsync.Semaphore.create: negative";
    { lock = Stdlib.Mutex.create (); count = n; waiters = Queue.create () }

  let acquire t =
    let acquired = ref false in
    while not !acquired do
      Sched.suspend_or (fun wake ->
          Stdlib.Mutex.lock t.lock;
          if t.count > 0 then begin
            t.count <- t.count - 1;
            acquired := true;
            Stdlib.Mutex.unlock t.lock;
            `Continue
          end
          else begin
            Queue.add wake t.waiters;
            Stdlib.Mutex.unlock t.lock;
            `Suspended
          end)
    done

  let release t =
    Stdlib.Mutex.lock t.lock;
    t.count <- t.count + 1;
    let w = Queue.take_opt t.waiters in
    Stdlib.Mutex.unlock t.lock;
    match w with Some wake -> wake () | None -> ()
end

module Channel = struct
  type 'a t = {
    lock : Stdlib.Mutex.t;
    items : 'a Queue.t;
    readers : (unit -> unit) Queue.t;
  }

  let create () =
    { lock = Stdlib.Mutex.create (); items = Queue.create (); readers = Queue.create () }

  let send t v =
    Stdlib.Mutex.lock t.lock;
    Queue.add v t.items;
    let r = Queue.take_opt t.readers in
    Stdlib.Mutex.unlock t.lock;
    match r with Some wake -> wake () | None -> ()

  let try_recv t =
    Stdlib.Mutex.lock t.lock;
    let v = Queue.take_opt t.items in
    Stdlib.Mutex.unlock t.lock;
    v

  let rec recv t =
    match try_recv t with
    | Some v -> v
    | None ->
        Sched.suspend_or (fun wake ->
            Stdlib.Mutex.lock t.lock;
            if Queue.is_empty t.items then begin
              Queue.add wake t.readers;
              Stdlib.Mutex.unlock t.lock;
              `Suspended
            end
            else begin
              Stdlib.Mutex.unlock t.lock;
              `Continue
            end);
        recv t

  let length t =
    Stdlib.Mutex.lock t.lock;
    let n = Queue.length t.items in
    Stdlib.Mutex.unlock t.lock;
    n
end

module Barrier = struct
  type t = {
    lock : Stdlib.Mutex.t;
    parties : int;
    mutable arrived : int;
    mutable generation : int;
    mutable waiters : (unit -> unit) list;
  }

  let create parties =
    if parties <= 0 then invalid_arg "Fsync.Barrier.create: parties <= 0";
    {
      lock = Stdlib.Mutex.create ();
      parties;
      arrived = 0;
      generation = 0;
      waiters = [];
    }

  let wait t =
    let passed = ref false in
    while not !passed do
      Sched.suspend_or (fun wake ->
          Stdlib.Mutex.lock t.lock;
          t.arrived <- t.arrived + 1;
          if t.arrived = t.parties then begin
            t.arrived <- 0;
            t.generation <- t.generation + 1;
            let ws = t.waiters in
            t.waiters <- [];
            passed := true;
            Stdlib.Mutex.unlock t.lock;
            (* [waiters] accumulated newest-first; release in arrival
               (FIFO) order. *)
            List.iter (fun w -> w ()) (List.rev ws);
            `Continue
          end
          else begin
            t.waiters <- wake :: t.waiters;
            passed := true (* will pass once woken *);
            Stdlib.Mutex.unlock t.lock;
            `Suspended
          end)
    done
end
