(** A real, executable M:N fiber runtime on OCaml 5 effects + domains —
    the native-OCaml counterpart of the paper's M:N threading model.

    M fibers are multiplexed over N domains ("workers") organized into
    {e named sub-pools}: each sub-pool pins a subset of the workers and
    carries its own pluggable {!Scheduler.t} (work stealing by default,
    or the ported packing / in-situ priority policies).  Spawns may
    target a sub-pool ([spawn ~pool:"analysis"]); steals prefer
    same-sub-pool victims and overflow cross-sub-pool only when a
    member's own sub-pool has nothing runnable (and the sub-pool's
    [overflow] flag allows it).  Construction goes through the
    validating {!Config.make}.

    Scheduling is cooperative ([yield], [await]); preemption is
    {e safe-point based}: a ticker marks workers for preemption every
    [preempt_interval], and a fiber crossing a {!check} point (or an
    explicit {!yield}) is descheduled.  This is the GHC-style variant
    the paper's §5 discusses — portable OCaml cannot context-switch
    inside an asynchronous signal handler, so true signal-yield
    semantics are exercised in the simulator instead (see DESIGN.md). *)

type pool

type 'a promise

(** [make cfg] builds the pool described by a validated {!Config.t}:
    one scheduler instance per sub-pool, worker domains spawned for
    every worker but 0 (worker 0 is the caller inside {!run}), the
    preemption ticker armed if [cfg.preempt_interval] is set, and the
    flight recorder armed if [cfg.recorder_enabled].
    @raise Invalid_argument via {!Config.validate} on a hand-built
    record that does not partition the workers. *)
val make : Config.t -> pool

(** Deprecated single-pool shim, kept for source compatibility: builds
    [make (Config.make ?domains ?preempt_interval ())] — one
    ["default"] sub-pool spanning every worker under the work-stealing
    scheduler, exactly the historical flat pool.  New code should build
    a {!Config.t}; validation errors accordingly come in
    [Config.make]'s uniform format. *)
val create : ?domains:int -> ?preempt_interval:float -> unit -> pool

(** Total worker count across all sub-pools. *)
val domains : pool -> int

(** Sub-pool names, in configuration order (the first is the default
    target of {!submit}). *)
val subpools : pool -> string list

(** [run pool main] executes [main ()] as a fiber (in worker 0's
    sub-pool), with the calling thread participating as a worker, and
    returns its result.  Re-raises any exception [main] threw.  Not
    reentrant from inside a fiber. *)
val run : pool -> (unit -> 'a) -> 'a

(** Stop the worker domains and join them.  The pool cannot be reused. *)
val shutdown : pool -> unit

(** [submit pool ~pool:name body] — external submission from {e outside}
    the runtime (or from any fiber): enqueues [body] on the named
    sub-pool (default: the first one) via the scheduler's external path
    and returns its promise.  [prio] as in {!spawn}.
    @raise Invalid_argument on an unknown sub-pool name. *)
val submit : pool -> ?pool:string -> ?prio:int -> (unit -> 'a) -> 'a promise

(** {1 Fiber operations — valid only inside fibers} *)

(** Fork a child fiber.  Without [~pool], the child is a LIFO child of
    the calling worker inside the caller's own sub-pool (fork–join
    locality).  With [~pool:name], the fiber is {e submitted} to the
    named sub-pool as a whole: it takes the scheduler's external path
    even when the caller is a member, and is served like any other
    incoming request.  [prio] (default [0]) is a scheduler hint: under
    {!Scheduler.priority}, [prio > 0] marks in-situ analysis work.
    The fiber is pinned: wherever it suspends or yields, it re-enters
    its home sub-pool.

    Untargeted [prio = 0] spawns take the {e recycle fast path}: the
    fiber record and its effect-handler closures come from a
    per-worker free-list of dead fibers (bounded by
    [Config.spawn_freelist]), so a steady-state spawn allocates only
    the promise.  Hits and misses are visible as
    {!subpool_stats}[.st_recycled] / [.st_recycle_miss].
    @raise Invalid_argument on an unknown sub-pool name. *)
val spawn : ?pool:string -> ?prio:int -> (unit -> 'a) -> 'a promise

(** Wait for a promise; re-raises if the child failed.  Before
    suspending, a fiber joining on an unresolved promise {e leapfrogs}:
    it raids the queue of the worker that spawned the awaited fiber
    (a hint carried in the promise) and runs what it finds inline,
    shortening the critical path instead of parking. *)
val await : 'a promise -> 'a

val yield : unit -> unit

(** [suspend_or decide] — atomic conditional suspension, the building
    block of {!Fsync}.  [decide wake] runs on the current worker; if it
    returns [`Suspended] it must have arranged for [wake] to be called
    exactly once later (from any fiber), which reschedules this fiber
    on its home sub-pool; if it returns [`Continue] the fiber proceeds
    and [wake] must never be called. *)
val suspend_or : ((unit -> unit) -> [ `Continue | `Suspended ]) -> unit

(** Preemption safe point: yields iff the ticker has marked this worker.
    Free when no preemption is requested. *)
val check : unit -> unit

(** True once the promise is fulfilled (never blocks). *)
val is_resolved : 'a promise -> bool

(** [parallel_for ~chunk lo hi f] runs [f i] for [lo <= i < hi] across
    fibers of [chunk] iterations each ([chunk] defaults to a heuristic
    sized to the caller's sub-pool), checking the preemption flag
    between iterations. *)
val parallel_for : ?chunk:int -> int -> int -> (int -> unit) -> unit

(** Number of preemptions taken (ticker-initiated deschedules). *)
val preemptions : pool -> int

(** [parallel_map f xs] — apply [f] to every element in parallel fibers
    (one per element; use {!parallel_for} + arrays for fine-grained
    ranges). Order preserved. *)
val parallel_map : ('a -> 'b) -> 'a list -> 'b list

(** {1 Observability} *)

(** Per-sub-pool counters, aggregated racily from per-worker cells
    (stale by a few operations under load; exact once quiescent).
    Negative transients from torn reads are clamped to 0, so a
    concurrent sampler always sees well-formed counts. *)
type subpool_stats = {
  st_name : string;
  st_sched : string;  (** scheduler name, e.g. ["ws"] *)
  st_workers : int;
  st_spawned : int;  (** local forks + targeted/external submissions *)
  st_local_steals : int;  (** same-sub-pool steals by members *)
  st_overflow_in : int;  (** tasks members took from other sub-pools *)
  st_overflow_out : int;  (** tasks other sub-pools took from here *)
  st_batch_stolen : int;
      (** extra tasks batched raids flushed into members' own queues
          (beyond the one-per-raid counted by [st_local_steals] /
          [st_overflow_in]) *)
  st_recycled : int;  (** spawns served from the dead-fiber free-list *)
  st_recycle_miss : int;
      (** recycle-eligible spawns that had to allocate a fresh fiber
          record (cold start, free-list exhausted) *)
  st_leapfrog : int;
      (** tasks joiners ran inline by leapfrogging on their await
          victim instead of parking *)
  st_pending : int;  (** scheduler length snapshot *)
  st_quanta : (int * float) list;
      (** [(worker id, current preemption quantum in seconds)] per
          member, slot order.  Pinned at [preempt_interval] on a
          fixed-interval pool ([0.] without a ticker); on an adaptive
          pool ({!Config.t}[.adaptive]) it tracks the per-worker
          quantum the {!Quantum} controller last chose. *)
}

(** One entry per sub-pool, in configuration order. *)
val stats : pool -> subpool_stats list

(** True iff the pool was built with [Config.adaptive] (per-worker
    quanta driven by the {!Quantum} controller). *)
val adaptive : pool -> bool

(** The pool's flight recorder (armed via [Config.recorder]): every
    successful steal emits [Recorder.ev_pool_steal] with (thief
    sub-pool, victim sub-pool) into the thief's worker ring, so a saved
    dump lets [repro observe --load] attribute cross-sub-pool overflow
    separately from local steals. *)
val recorder : pool -> Preempt_core.Recorder.t

(** The pool's live telemetry (armed via [Config.telemetry]): the
    preemption ticker samples every worker's state — run-queue depth,
    steals in/out, park/wake counts, current quantum, utilization since
    the last sample — into fixed-capacity per-worker time-series rings
    every [Config.telemetry_every] sweeps.  The live view ([repro top])
    reads it while the pool runs; disabled it costs one boolean load
    per ticker sweep and nothing on any worker's path. *)
val telemetry : pool -> Preempt_core.Telemetry.t

(** Wall-clock origin of recorder and telemetry timestamps (the
    instant the pool was built), for callers aligning external clocks
    or emitting events with {!emit_flight}[ ~at]. *)
val clock_origin : pool -> float

(** True while the current worker's preemption flag is raised, without
    consuming it — one atomic load.  Lets a workload bracket the
    {!check} it is about to take with span events.  Benignly racy: a
    flag raised after the load is seen by the next probe.  [false]
    outside a worker. *)
val preempt_pending : unit -> bool

(** [emit_flight ?at code a b] — emit a flight event from inside a
    fiber into the {e current worker's} ring (a fiber runs on exactly
    one worker at a time, so rings stay single-writer).  No-op outside
    a worker or with the recorder disabled.  [at] is an absolute
    wall-clock time overriding "now", for events whose logical time
    precedes the call (e.g. a request's scheduled arrival); it is
    translated to the recorder's clock via {!clock_origin}.  The
    serving workload uses this for its per-request span codes
    ([Recorder.ev_req_arrival] ... [ev_req_done]). *)
val emit_flight : ?at:float -> int -> int -> int -> unit

(** [telemetry_observe ~channel v] — add a sojourn sample to the
    current worker's sliding window for [channel] (the serving
    workload uses one channel per service class).  Single-writer per
    window by construction; no-op outside a worker or with telemetry
    disabled. *)
val telemetry_observe : channel:int -> float -> unit
