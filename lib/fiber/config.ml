(* Validated construction for the real fiber runtime, in the style of
   Core.Config: a smart constructor rejects nonsensical pool shapes up
   front with a uniform message — "Config: <field> = <value> (must be
   <requirement>)" — instead of letting a bad worker partition surface
   as a hung or misbehaving pool.  test_api_surface pins the shape. *)

type subpool = {
  sp_name : string;
  sp_workers : int list; (* global worker ids pinned to this sub-pool *)
  sp_sched : Scheduler.t;
  sp_overflow : bool; (* members may steal cross-sub-pool when idle *)
}

type t = {
  domains : int;
  preempt_interval : float option;
  adaptive : bool;
  quantum_min : float option;
  quantum_max : float option;
  subpools : subpool list;
  recorder_enabled : bool;
  recorder_capacity : int;
  telemetry_enabled : bool;
  telemetry_capacity : int;
  telemetry_every : int;
  telemetry_channels : int;
  spawn_freelist : int;
}

let reject field value requirement =
  invalid_arg
    (Printf.sprintf "Config: %s = %s (must be %s)" field value requirement)

let subpool ?(sched = Scheduler.ws) ?(overflow = true) ~name ~workers () =
  { sp_name = name; sp_workers = workers; sp_sched = sched; sp_overflow = overflow }

let default_domains () = Stdlib.max 1 (Domain.recommended_domain_count () - 1)

let validate t =
  if t.domains < 1 then reject "domains" (string_of_int t.domains) ">= 1";
  (match t.preempt_interval with
  | Some dt when dt <= 0.0 ->
      reject "preempt_interval" (Printf.sprintf "%g" dt) "positive"
  | _ -> ());
  (* Adaptive-quantum knobs.  The bounds are rejected whenever they are
     nonsensical — even on a non-adaptive pool, where they are merely
     dormant — so a typo fails fast instead of surfacing only once
     [adaptive] is flipped on. *)
  (match t.quantum_min with
  | Some q when q <= 0.0 || Float.is_nan q ->
      reject "quantum_min" (Printf.sprintf "%g" q) "positive"
  | _ -> ());
  (match t.quantum_max with
  | Some q when q <= 0.0 || Float.is_nan q ->
      reject "quantum_max" (Printf.sprintf "%g" q) "positive"
  | _ -> ());
  (match (t.quantum_min, t.quantum_max) with
  | Some lo, Some hi when lo > hi ->
      reject "quantum_min" (Printf.sprintf "%g" lo)
        (Printf.sprintf "<= quantum_max (%g)" hi)
  | _ -> ());
  if t.adaptive && t.preempt_interval = None then
    reject "adaptive" "true" "combined with preempt_interval";
  if t.recorder_capacity < 1 then
    reject "recorder_capacity" (string_of_int t.recorder_capacity) "positive";
  if t.telemetry_capacity < 1 then
    reject "telemetry_capacity" (string_of_int t.telemetry_capacity) "positive";
  if t.telemetry_every < 1 then
    reject "telemetry_every" (string_of_int t.telemetry_every) "positive";
  if t.telemetry_channels < 0 then
    reject "telemetry_channels" (string_of_int t.telemetry_channels) ">= 0";
  (* Per-worker dead-fiber free-list bound; 0 disables recycling. *)
  if t.spawn_freelist < 0 then
    reject "spawn_freelist" (string_of_int t.spawn_freelist) ">= 0";
  (* The sampler rides the preemption ticker; without a ticker there is
     nothing to drive it. *)
  if t.telemetry_enabled && t.preempt_interval = None then
    reject "telemetry" "true" "combined with preempt_interval";
  if t.subpools = [] then reject "subpools" "[]" "non-empty";
  (* [owner.(w)] = name of the sub-pool worker [w] is pinned to. *)
  let owner = Array.make t.domains None in
  let seen_names = Hashtbl.create 8 in
  List.iter
    (fun sp ->
      if sp.sp_name = "" then reject "subpool.name" "\"\"" "non-empty";
      if Hashtbl.mem seen_names sp.sp_name then
        reject "subpool.name" (Printf.sprintf "%S" sp.sp_name) "unique";
      Hashtbl.add seen_names sp.sp_name ();
      let field = Printf.sprintf "subpools[%s].workers" sp.sp_name in
      if sp.sp_workers = [] then reject field "[]" "non-empty";
      List.iter
        (fun w ->
          if w < 0 || w >= t.domains then
            reject field (string_of_int w)
              (Printf.sprintf "within 0..%d (domains = %d)" (t.domains - 1)
                 t.domains);
          match owner.(w) with
          | Some _ -> reject field (string_of_int w) "pinned to exactly one sub-pool"
          | None -> owner.(w) <- Some sp.sp_name)
        sp.sp_workers)
    t.subpools;
  Array.iteri
    (fun w o ->
      if o = None then
        reject "subpools"
          (Printf.sprintf "{%s}"
             (String.concat ", " (List.map (fun sp -> sp.sp_name) t.subpools)))
          (Printf.sprintf "a partition of workers 0..%d: worker %d is unpinned"
             (t.domains - 1) w))
    owner

let make ?domains ?preempt_interval ?(adaptive = false) ?quantum_min
    ?quantum_max ?subpools ?(recorder = false) ?(recorder_capacity = 4096)
    ?(telemetry = false) ?(telemetry_capacity = 256) ?(telemetry_every = 4)
    ?(telemetry_channels = 2) ?(spawn_freelist = 64) () =
  let domains = match domains with Some d -> d | None -> default_domains () in
  let subpools =
    match subpools with
    | Some sps -> sps
    | None when domains >= 1 ->
        [ subpool ~name:"default" ~workers:(List.init domains Fun.id) () ]
    | None -> []
  in
  let t =
    {
      domains;
      preempt_interval;
      adaptive;
      quantum_min;
      quantum_max;
      subpools;
      recorder_enabled = recorder;
      recorder_capacity;
      telemetry_enabled = telemetry;
      telemetry_capacity;
      telemetry_every;
      telemetry_channels;
      spawn_freelist;
    }
  in
  validate t;
  t
