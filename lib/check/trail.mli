(** Recorded controller decisions for one schedule — the replayable
    encoding of an interleaving.  [picked = 0] is always the default
    (uncontrolled) outcome; see {!Check} for how trails are produced,
    replayed and shrunk. *)

type entry = {
  tag : string;  (** which choice point ("engine.tie", "steal.victim", ...) *)
  n : int;  (** arity the controller was consulted with *)
  picked : int;  (** chosen alternative, [0 <= picked < n] *)
}

type t = entry array

val length : t -> int

(** Number of non-default ([picked <> 0]) decisions — the quantity
    schedule shrinking minimizes. *)
val forced : t -> int

(** Fingerprint of the pick sequence, equal iff the schedules are
    pick-for-pick identical.  Used to deduplicate explored schedules. *)
val signature : t -> string

(** One-line human-readable summary listing the forced decisions. *)
val to_string : ?max_forced:int -> t -> string

val pp : Format.formatter -> t -> unit
